/// Domain example: solving through simulated hardware failures
/// (paper Section 4.5). Three levels of resilience:
///
///   1. Passive (the paper's observation): failed components are
///      reassigned by the runtime after a delay; the asynchronous
///      iteration absorbs the fault with only a bounded slowdown.
///   2. Scripted scenarios: composable fault timelines — several
///      failure waves, transient halo corruption — via
///      resilience::FaultScenario.
///   3. Active recovery: a resilience::Policy adds checkpointing,
///      online silent-error detection with rollback, and a watchdog
///      that reassigns stalled components on its own.
///
///   build/examples/fault_tolerant_solve

#include <iostream>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"

int main() {
  using namespace bars;

  const Csr a = trefethen(2000);
  const Vector b(2000, 1.0);

  const auto run = [&](const char* label, const BlockAsyncOptions& opts) {
    const BlockAsyncResult r = block_async_solve(a, b, opts);
    std::cout << label << ": "
              << (r.solve.ok() ? "converged" : "STAGNATED") << " after "
              << r.solve.iterations << " global iterations (residual "
              << r.solve.final_residual << ")\n";
    return r;
  };
  const auto base = [] {
    BlockAsyncOptions o;
    o.block_size = 448;
    o.local_iters = 5;
    o.matrix_name = "Trefethen_2000";
    o.solve.tol = 1e-12;
    o.solve.max_iters = 500;
    return o;
  };

  // 1. Passive fault tolerance (legacy single-event FaultPlan).
  const auto clean = run("no failure           ", base());

  gpusim::FaultPlan recover;
  recover.fail_at = 10;
  recover.fraction = 0.25;
  recover.recover_after = 20;
  BlockAsyncOptions rec_opts = base();
  rec_opts.fault = recover;
  const auto rec = run("25% fail, recover(20)", rec_opts);

  if (clean.solve.ok() && rec.solve.ok()) {
    const double extra = 100.0 *
                         (static_cast<double>(rec.solve.iterations) /
                              static_cast<double>(clean.solve.iterations) -
                          1.0);
    std::cout << "recovery cost only " << extra
              << "% extra iterations — no checkpointing needed "
                 "(paper Table 6 reports 8-32%).\n\n";
  }

  // 2. A scripted timeline: two failure waves plus a burst of corrupted
  // halo reads while the first wave is down.
  resilience::FaultScenario script;
  script.fail_components(/*at=*/10, /*fraction=*/0.25, /*recover_after=*/20)
      .fail_components(/*at=*/45, /*fraction=*/0.10, /*recover_after=*/20)
      .corrupt_halo(/*at=*/15, /*duration=*/5, /*magnitude=*/1e3,
                    /*probability=*/0.1);
  BlockAsyncOptions scripted = base();
  scripted.scenario = script;
  const auto waves = run("scripted two waves   ", scripted);
  std::cout << "(" << waves.resilience.halo_corruptions
            << " halo reads corrupted along the way)\n\n";

  // 3. Active recovery: nobody reassigns this failure — the watchdog
  // notices the contraction stall and frees the components itself.
  resilience::FaultScenario permanent;
  permanent.fail_components(10, 0.25, /*recover_after=*/std::nullopt);
  BlockAsyncOptions unsupervised = base();
  unsupervised.solve.max_iters = 200;
  unsupervised.scenario = permanent;
  (void)run("permanent, no watchdog", unsupervised);

  BlockAsyncOptions supervised = base();
  supervised.scenario = permanent;
  supervised.resilience = resilience::Policy{};  // defaults: all on
  const auto guarded = run("permanent, watchdog  ", supervised);
  std::cout << "watchdog reassigned " << guarded.resilience.components_reassigned
            << " components in " << guarded.resilience.watchdog_reassignments
            << " event(s); " << guarded.resilience.checkpoints_saved
            << " checkpoints were kept for rollback.\n";

  return clean.solve.ok() && rec.solve.ok() &&
                 waves.solve.ok() && guarded.solve.ok()
             ? 0
             : 1;
}

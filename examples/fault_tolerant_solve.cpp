/// Domain example: solving through a simulated hardware failure
/// (paper Section 4.5). 25% of the components stop updating at
/// iteration 10; the operating system reassigns them after 20 more
/// iterations, and the solve completes with only a bounded delay —
/// no checkpoint/restart needed.
///
///   build/examples/fault_tolerant_solve

#include <iostream>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"

int main() {
  using namespace bars;

  const Csr a = trefethen(2000);
  const Vector b(2000, 1.0);

  const auto run = [&](const char* label,
                       std::optional<gpusim::FaultPlan> fault) {
    BlockAsyncOptions o;
    o.block_size = 448;
    o.local_iters = 5;
    o.matrix_name = "Trefethen_2000";
    o.fault = fault;
    o.solve.tol = 1e-12;
    o.solve.max_iters = 500;
    const BlockAsyncResult r = block_async_solve(a, b, o);
    std::cout << label << ": "
              << (r.solve.converged ? "converged" : "STAGNATED") << " after "
              << r.solve.iterations << " global iterations (residual "
              << r.solve.final_residual << ")\n";
    return r;
  };

  const auto clean = run("no failure          ", std::nullopt);

  gpusim::FaultPlan recover;
  recover.fail_at = 10;
  recover.fraction = 0.25;
  recover.recover_after = 20;
  const auto rec = run("25% fail, recover(20)", recover);

  gpusim::FaultPlan lost;
  lost.fail_at = 10;
  lost.fraction = 0.25;
  lost.recover_after = std::nullopt;
  (void)run("25% fail, no recovery", lost);

  if (clean.solve.converged && rec.solve.converged) {
    const double extra = 100.0 *
                         (static_cast<double>(rec.solve.iterations) /
                              static_cast<double>(clean.solve.iterations) -
                          1.0);
    std::cout << "\nRecovery cost only " << extra
              << "% extra iterations — the asynchronous method needs no "
                 "checkpointing (paper Table 6 reports 8-32%).\n";
  }
  return clean.solve.converged && rec.solve.converged ? 0 : 1;
}

/// Domain example: solve the 2D Poisson equation -Δu = f on the unit
/// square (Dirichlet boundary) two ways — directly with async-(5), and
/// with geometric multigrid using block-asynchronous smoothing (the
/// paper's Section 5 future-work scenario) — and verify against the
/// analytic solution.
///
///   build/examples/poisson2d [m]   (grid size, default 63)

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numbers>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"
#include "mg/multigrid.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 63;
  const double h = 1.0 / static_cast<double>(m + 1);

  // Manufactured solution u = sin(pi x) sin(pi y):
  // -Δu = 2 pi^2 sin(pi x) sin(pi y). The unscaled 5-point stencil
  // solves (h^2 * -Δ) u = h^2 f.
  Vector f(static_cast<std::size_t>(m * m));
  Vector exact(f.size());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      const double x = static_cast<double>(i + 1) * h;
      const double y = static_cast<double>(j + 1) * h;
      const double s = std::sin(std::numbers::pi * x) *
                       std::sin(std::numbers::pi * y);
      exact[i * m + j] = s;
      f[i * m + j] = 2.0 * std::numbers::pi * std::numbers::pi * s * h * h;
    }
  }

  const auto report_error = [&](const Vector& u, const char* label) {
    double err = 0.0;
    for (std::size_t k = 0; k < u.size(); ++k) {
      err = std::max(err, std::abs(u[k] - exact[k]));
    }
    std::cout << label << ": max error vs analytic solution = " << err
              << " (discretization error ~ " << h * h << ")\n";
    return err < 10.0 * h * h;
  };

  // Route 1: plain async-(5) on the fine grid.
  const Csr a = fv_like(m, 0.0);
  BlockAsyncOptions o;
  o.block_size = 448;
  o.local_iters = 5;
  o.solve.tol = 1e-11;
  o.solve.max_iters = 200000;
  const BlockAsyncResult direct = block_async_solve(a, f, o);
  std::cout << "async-(5) direct: " << direct.solve.iterations
            << " global iterations\n";
  const bool ok1 = report_error(direct.solve.x, "async-(5) direct");

  // Route 2: multigrid with block-asynchronous smoothing.
  const mg::PoissonMultigrid mgsolver(m, 0.0,
                                      mg::block_async_smoother(64, 2, 7));
  bars::mg::MgOptions mgo;
  mgo.solve.tol = 1e-11;
  const bars::SolveResult mgr = mgsolver.solve(f, mgo);
  std::cout << "multigrid(async smoother): " << mgr.iterations << " V-cycles\n";
  const bool ok2 = report_error(mgr.x, "multigrid(async)");

  return ok1 && ok2 ? 0 : 1;
}

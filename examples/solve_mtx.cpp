/// Command-line solver: load a MatrixMarket system and solve it with
/// any solver in the registry (the downstream-user entry point).
///
///   build/examples/solve_mtx --matrix=path/to/A.mtx \
///       [--solver=block-async] [--tol=1e-10] [--max-iters=1000]
///       [--block-size=448] [--local-iters=5] [--omega=1.0] [--rcm]
///
/// Without --matrix, solves the built-in Trefethen_2000 demo system.

#include <iostream>

#include "core/registry.hpp"
#include "matrices/generators.hpp"
#include "report/args.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/reorder.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const report::Args args(argc, argv);

  if (args.has("help")) {
    std::cout << "usage: solve_mtx [--matrix=A.mtx] [--solver=NAME] "
                 "[--tol=..] [--max-iters=..]\n       [--block-size=..] "
                 "[--local-iters=..] [--omega=..] [--rcm]\nsolvers:";
    for (const auto& n : solver_names()) std::cout << ' ' << n;
    std::cout << '\n';
    return 0;
  }

  const std::string path = args.get_string("matrix", "");
  Csr a = path.empty() ? trefethen(2000) : read_matrix_market_file(path);
  std::cout << (path.empty() ? "built-in Trefethen_2000" : path) << ": n = "
            << a.rows() << ", nnz = " << a.nnz() << '\n';
  if (a.rows() != a.cols()) {
    std::cerr << "matrix must be square\n";
    return 1;
  }

  Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  Permutation perm;
  if (args.has("rcm")) {
    perm = reverse_cuthill_mckee(a);
    a = permute_symmetric(a, perm);
    b = permute_vector(b, perm);
    std::cout << "applied RCM reordering\n";
  }

  RegistrySolveOptions o;
  o.solve.tol = args.get_double("tol", 1e-10);
  o.solve.max_iters = args.get_int("max-iters", 5000);
  o.block_size = args.get_int("block-size", 448);
  o.local_iters = args.get_int("local-iters", 5);
  o.omega = args.get_double("omega", 1.0);
  o.seed = static_cast<std::uint64_t>(args.get_int("seed", 99));

  const std::string solver = args.get_string("solver", "block-async");
  std::cout << "solver: " << solver << '\n';
  const SolveResult r = find_solver(solver)(a, b, o);

  std::cout << (r.converged ? "converged"
                            : (r.diverged ? "DIVERGED" : "not converged"))
            << " after " << r.iterations << " iterations, final relative "
            << "residual " << r.final_residual << '\n';
  return r.converged ? 0 : 1;
}

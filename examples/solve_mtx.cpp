/// Command-line solver: load a MatrixMarket system and solve it with
/// any solver in the registry (the downstream-user entry point).
///
///   build/examples/solve_mtx --matrix=path/to/A.mtx \
///       [--solver=block-async] [--tol=1e-10] [--max-iters=1000]
///       [--block-size=448] [--local-iters=5] [--omega=1.0] [--rcm]
///       [--backend=scalar|simd|auto] [--events=run.jsonl]
///
/// Without --matrix, solves the built-in Trefethen_2000 demo system.
/// Every run is observed through the telemetry subsystem; a summary
/// table of the collected metrics is printed after the solve, and
/// --events streams the full event log as JSON Lines.

#include <fstream>
#include <iostream>
#include <memory>

#include "backend/registry.hpp"
#include "core/registry.hpp"
#include "matrices/generators.hpp"
#include "report/args.hpp"
#include "report/table.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/reorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/observer.hpp"
#include "telemetry/sinks.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const report::Args args(argc, argv);

  const auto unknown = args.unknown_keys(
      {"matrix", "solver", "tol", "max-iters", "block-size", "local-iters",
       "omega", "seed", "rcm", "backend", "events", "help"});
  if (!unknown.empty()) {
    std::cerr << "solve_mtx: unknown flag --" << unknown.front()
              << "\nrun with --help for the flag list; the solver knobs are "
                 "documented in docs/API.md and docs/TUTORIAL.md\n";
    return 2;
  }

  if (args.has("help")) {
    std::cout << "usage: solve_mtx [--matrix=A.mtx] [--solver=NAME] "
                 "[--tol=..] [--max-iters=..]\n       [--block-size=..] "
                 "[--local-iters=..] [--omega=..] [--rcm] "
                 "[--backend=NAME] [--events=out.jsonl]\nsolvers:";
    for (const auto& n : solver_names()) std::cout << ' ' << n;
    std::cout << "\nbackends:";
    for (const auto& n : backend::backend_names()) std::cout << ' ' << n;
    std::cout << " auto\n";
    return 0;
  }

  const std::string path = args.get_string("matrix", "");
  Csr a = path.empty() ? trefethen(2000) : read_matrix_market_file(path);
  std::cout << (path.empty() ? "built-in Trefethen_2000" : path) << ": n = "
            << a.rows() << ", nnz = " << a.nnz() << '\n';
  if (a.rows() != a.cols()) {
    std::cerr << "matrix must be square\n";
    return 1;
  }

  Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  Permutation perm;
  if (args.has("rcm")) {
    perm = reverse_cuthill_mckee(a);
    a = permute_symmetric(a, perm);
    b = permute_vector(b, perm);
    std::cout << "applied RCM reordering\n";
  }

  RegistrySolveOptions o;
  o.solve.tol = args.get_double("tol", 1e-10);
  o.solve.max_iters = args.get_int("max-iters", 5000);
  o.block_size = args.get_int("block-size", 448);
  o.local_iters = args.get_int("local-iters", 5);
  o.omega = args.get_double("omega", 1.0);
  o.seed = static_cast<std::uint64_t>(args.get_int("seed", 99));
  o.backend = args.get_string("backend", "scalar");

  // Observe the solve: metrics always, event stream on request.
  telemetry::MetricsRegistry registry;
  telemetry::MetricsObserver metrics_observer(registry);
  telemetry::MultiObserver observers;
  observers.add(&metrics_observer);
  std::ofstream events_file;
  std::unique_ptr<telemetry::JsonLinesSink> events_sink;
  const std::string events_path = args.get_string("events", "");
  if (!events_path.empty()) {
    events_file.open(events_path);
    if (!events_file) {
      std::cerr << "cannot open " << events_path << " for writing\n";
      return 1;
    }
    events_sink = std::make_unique<telemetry::JsonLinesSink>(events_file);
    observers.add(events_sink.get());
  }
  o.solve.telemetry.observer = &observers;
  o.solve.telemetry.metrics = &registry;

  const std::string solver = args.get_string("solver", "block-async");
  std::cout << "solver: " << solver << '\n';
  SolveResult r;
  try {
    // Throws for unknown solver names and for solvers that reject the
    // matrix (the multigrid entries require fv_like structure).
    r = find_solver(solver)(a, b, o);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  std::cout << to_string(r.status) << " after " << r.iterations
            << " iterations, final relative residual " << r.final_residual
            << '\n';

  const telemetry::Histogram& staleness =
      registry.histogram("commit_staleness", {});
  const auto count = [&](std::string_view name) {
    return report::fmt_int(
        static_cast<long long>(registry.counter(name).value()));
  };
  report::Table t({"telemetry metric", "value"});
  t.add_row({"status", std::string(to_string(r.status))});
  t.add_row({"iterations", count("solve_iterations")});
  t.add_row({"block_commits", count("block_commits")});
  t.add_row({"recovery_events", count("recovery_events")});
  t.add_row({"incremental_residual_reanchors",
             count("incremental_residual_reanchors")});
  t.add_row({"mean_commit_staleness",
             staleness.total() > 0
                 ? report::fmt_fixed(staleness.sum() /
                                         static_cast<value_t>(
                                             staleness.total()),
                                     3)
                 : "n/a"});
  t.add_row({"final_residual", report::fmt_sci(r.final_residual)});
  t.add_row({"wall_seconds",
             report::fmt_fixed(
                 registry.gauge("last_solve_wall_seconds").value())});
  t.print(std::cout);
  if (!events_path.empty()) {
    std::cout << "event log written to " << events_path << '\n';
  }
  return r.ok() ? 0 : 1;
}

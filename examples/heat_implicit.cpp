/// Domain example: time-dependent heat equation u_t = Δu on the unit
/// square with implicit Euler. Every time step solves
/// (I + dt·(-Δ)) u^{n+1} = u^n with async-(5), warm-started from the
/// previous step — the "post-iterate from a good initial guess" usage
/// the paper's Section 4.4 motivates (coarse solutions suffice early,
/// accuracy when you need it).
///
///   build/examples/heat_implicit [m] [steps]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numbers>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 48;
  const index_t steps = argc > 2 ? std::atoll(argv[2]) : 20;
  const double h = 1.0 / static_cast<double>(m + 1);
  const double dt = 0.1;  // in units of h^2 (dimensionless stencil)

  // System matrix: (1/dt) I + L with the unscaled 5-point Laplacian L.
  // Dividing by dt keeps the reaction form of fv_like: A = L + c I.
  const Csr a = fv_like(m, 1.0 / dt);

  // Initial condition: the first Laplacian eigenmode (decays at a known
  // rate, giving us an analytic check).
  Vector u(static_cast<std::size_t>(m * m));
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      const double x = static_cast<double>(i + 1) * h;
      const double y = static_cast<double>(j + 1) * h;
      u[i * m + j] = std::sin(std::numbers::pi * x) *
                     std::sin(std::numbers::pi * y);
    }
  }

  // Eigenvalue of the unscaled stencil for the first mode.
  const double lam =
      4.0 - 4.0 * std::cos(std::numbers::pi / static_cast<double>(m + 1));
  const double decay_per_step = 1.0 / (1.0 + dt * lam);

  double norm0 = 0.0;
  for (double v : u) norm0 += v * v;
  norm0 = std::sqrt(norm0);

  index_t total_iters = 0;
  Vector x = u;  // warm-start buffer
  for (index_t step = 0; step < steps; ++step) {
    Vector rhs(u.size());
    for (std::size_t k = 0; k < u.size(); ++k) rhs[k] = u[k] / dt;
    BlockAsyncOptions o;
    o.block_size = 256;
    o.local_iters = 5;
    o.solve.tol = 1e-10;
    o.solve.max_iters = 500;
    o.seed = 100 + static_cast<std::uint64_t>(step);
    const BlockAsyncResult r = block_async_solve(a, rhs, o, &x);
    if (!r.solve.ok()) {
      std::cerr << "step " << step << " did not converge\n";
      return 1;
    }
    total_iters += r.solve.iterations;
    u = r.solve.x;
    x = u;  // warm start the next step
  }

  // The eigenmode decays by exactly 1/(1 + dt*lambda) per implicit
  // Euler step; compare the norm ratio against the analytic factor.
  double norm1 = 0.0;
  for (double v : u) norm1 += v * v;
  norm1 = std::sqrt(norm1);
  const double measured = norm1 / norm0;
  const double expected =
      std::pow(decay_per_step, static_cast<double>(steps));
  std::cout << steps << " implicit Euler steps on " << m << "x" << m
            << " grid, async-(5) warm-started\n"
            << "average solver iterations per step: "
            << static_cast<double>(total_iters) / static_cast<double>(steps)
            << "\n"
            << "norm decay: measured " << measured << ", analytic "
            << expected << " (ratio "
            << measured / expected << ", expect ~1)\n";
  return std::abs(measured / expected - 1.0) < 0.02 ? 0 : 1;
}

/// Matrix diagnostics tool: structural and spectral properties relevant
/// to choosing a relaxation method (the paper's Table-1 columns, for
/// your own matrices).
///
///   build/examples/matrix_info [--matrix=A.mtx] [--block-size=448]
///       [--full]   (adds the slow condition-number estimates)

#include <iostream>

#include "eigen/condition.hpp"
#include "eigen/power_iteration.hpp"
#include "matrices/generators.hpp"
#include "report/args.hpp"
#include "report/spy.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/properties.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const report::Args args(argc, argv);
  const auto unknown = args.unknown_keys({"matrix", "block-size", "full"});
  if (!unknown.empty()) {
    std::cerr << "matrix_info: unknown flag --" << unknown.front()
              << "\nusage: matrix_info [--matrix=A.mtx] [--block-size=448] "
                 "[--full]\n";
    return 2;
  }
  const std::string path = args.get_string("matrix", "");
  const Csr a = path.empty() ? trefethen(2000) : read_matrix_market_file(path);
  const auto block = static_cast<index_t>(args.get_int("block-size", 448));

  std::cout << (path.empty() ? "built-in Trefethen_2000" : path) << "\n"
            << "  n           = " << a.rows() << " x " << a.cols() << "\n"
            << "  nnz         = " << a.nnz() << " ("
            << static_cast<double>(a.nnz()) /
                   static_cast<double>(std::max<index_t>(a.rows(), 1))
            << " per row)\n"
            << "  symmetric   = " << (a.is_symmetric(1e-12) ? "yes" : "no")
            << "\n"
            << "  bandwidth   = " << bandwidth(a) << "\n";

  if (a.rows() == a.cols()) {
    const auto dd = diagonal_dominance(a);
    std::cout << "  diag. dominance: "
              << (dd.strictly_dominant
                      ? "strict"
                      : (dd.weakly_dominant ? "weak" : "none"))
              << " (max off/diag ratio " << dd.max_offdiag_ratio << ")\n";
    const auto [glo, ghi] = gershgorin_interval(a);
    std::cout << "  Gershgorin  = [" << glo << ", " << ghi << "]\n"
              << "  off-block mass (block " << block
              << ") = " << off_block_mass(a, block) << "\n";
    if (has_positive_diagonal(a)) {
      const value_t rho = jacobi_spectral_radius(a).value;
      const value_t rho_abs = async_spectral_radius(a).value;
      std::cout << "  rho(B)      = " << rho
                << (rho < 1.0 ? "  [Jacobi converges]"
                              : "  [Jacobi DIVERGES — use scaled-jacobi]")
                << "\n"
                << "  rho(|B|)    = " << rho_abs
                << (rho_abs < 1.0 ? "  [async convergence guaranteed]"
                                  : "  [no async guarantee]")
                << "\n";
      if (args.has("full")) {
        const auto ca = spd_condition_number(a);
        const auto cs = jacobi_scaled_condition_number(a);
        std::cout << "  cond(A)       ~ " << ca.condition << "\n"
                  << "  cond(D^-1 A)  ~ " << cs.condition << "\n"
                  << "  tau (2/(l1+ln)) = "
                  << 2.0 / (cs.lambda_min + cs.lambda_max) << "\n";
      }
    }
  }

  std::cout << "\nsparsity pattern:\n";
  report::spy(std::cout, a);
  return 0;
}

/// Domain example: a mildly nonlinear reaction-diffusion equation
///   -Δu + c u^3 = f  on the unit square,
/// solved by block-asynchronous two-stage iteration (the Bai-Migallon-
/// Penades-Szyld setting the paper's local iterations descend from).
///
///   build/examples/nonlinear_diffusion [m] [c]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/nonlinear.hpp"
#include "matrices/generators.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 48;
  const double c = argc > 2 ? std::atof(argv[2]) : 1.0;

  // Unscaled 5-point Laplacian; the nonlinearity is scaled by h^2 like
  // the right-hand side.
  const Csr a = fv_like(m, 0.0);
  const double h = 1.0 / static_cast<double>(m + 1);
  Vector f(static_cast<std::size_t>(m * m));
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      f[i * m + j] = h * h;  // constant source
    }
  }
  const auto phi = cubic_nonlinearity(c * h * h);

  std::cout << "-Δu + " << c << " u³ = 1 on " << m << "x" << m
            << " grid (n = " << m * m << ")\n";

  NonlinearAsyncOptions o;
  o.block_size = 256;
  o.local_iters = 4;
  o.solve.max_iters = 200000;
  o.solve.tol = 1e-11;
  const NonlinearAsyncResult r = nonlinear_block_async_solve(a, f, phi, o);
  std::cout << (r.solve.ok() ? "converged" : "did NOT converge")
            << " after " << r.solve.iterations
            << " global iterations (residual " << r.solve.final_residual
            << ")\n";

  // Sanity checks: solution positive, symmetric about the center, and
  // smaller than the linear (c = 0) solution (the reaction term damps).
  const SolveResult lin =
      nonlinear_jacobi_solve(a, f, zero_nonlinearity(),
                             {.max_iters = 200000, .tol = 1e-11});
  double umax = 0.0, umax_lin = 0.0;
  for (std::size_t k = 0; k < f.size(); ++k) {
    umax = std::max(umax, r.solve.x[k]);
    umax_lin = std::max(umax_lin, lin.x[k]);
  }
  std::cout << "max u (nonlinear) = " << umax << ", max u (linear) = "
            << umax_lin << (umax < umax_lin ? "  [reaction damps ✓]" : "")
            << "\n";
  const double mid = r.solve.x[(m / 2) * m + m / 2];
  std::cout << "u(center) = " << mid << "\n";
  return r.solve.ok() && umax < umax_lin ? 0 : 1;
}

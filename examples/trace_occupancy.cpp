/// Inspect the simulated device: run async-(5) with tracing enabled and
/// print the multiprocessor occupancy, the per-block execution balance,
/// and the staleness histogram — the empirical face of the
/// Chazan-Miranker conditions (paper Section 2.2).
///
///   build/examples/trace_occupancy

#include <iostream>

#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "gpusim/async_executor.hpp"
#include "matrices/generators.hpp"

int main() {
  using namespace bars;

  const Csr a = trefethen(2000);
  const Vector b(2000, 1.0);
  const BlockJacobiKernel kernel(a, b, RowPartition::uniform(2000, 128), 5);

  gpusim::ExecutorOptions o;
  o.stopping.max_global_iters = 40;
  o.stopping.tol = 1e-12;
  o.record_trace = true;
  o.concurrent_slots = 14;
  gpusim::AsyncExecutor ex(kernel, o);
  Vector x(2000, 0.0);
  const auto r =
      ex.run(x, [&](const Vector& v) { return relative_residual(a, b, v); });

  std::cout << "blocks: " << kernel.num_blocks() << ", slots: 14\n"
            << "global iterations: " << r.global_iterations
            << (r.ok() ? " (converged)" : "") << '\n'
            << "virtual makespan: " << r.trace.makespan() << " s\n"
            << "average concurrency: " << r.trace.average_concurrency()
            << " blocks in flight\n"
            << "occupancy: " << 100.0 * r.trace.occupancy(14) << " %\n";

  index_t mn = r.block_executions.front(), mx = mn;
  for (index_t c : r.block_executions) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  std::cout << "block executions: min " << mn << ", max " << mx
            << "  (condition 1: every block updated continually)\n";

  std::cout << "staleness histogram (|generation gap| of overlapping "
               "executions):\n";
  const auto hist = r.trace.staleness_histogram();
  index_t total = 0;
  for (index_t h : hist) total += h;
  for (std::size_t gap = 0; gap < hist.size(); ++gap) {
    std::cout << "  gap " << gap << ": "
              << 100.0 * static_cast<double>(hist[gap]) /
                     static_cast<double>(total)
              << " %\n";
  }
  std::cout << "(condition 2: the shift is bounded — no unbounded tail)\n";
  return 0;
}

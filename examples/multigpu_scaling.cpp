/// Domain example: scaling the block-asynchronous iteration across
/// multiple (simulated) GPUs with the three communication schemes of
/// the paper's Section 3.4, on the Trefethen_20000 system.
///
///   build/examples/multigpu_scaling [n]   (default 20000)

#include <cstdlib>
#include <iostream>

#include "core/multi_gpu_solver.hpp"
#include "matrices/generators.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  const Csr a = trefethen(n);
  const Vector b(static_cast<std::size_t>(n), 1.0);
  std::cout << "Trefethen_" << n << ": nnz = " << a.nnz() << "\n\n";

  for (auto scheme :
       {gpusim::TransferScheme::kAMC, gpusim::TransferScheme::kDC,
        gpusim::TransferScheme::kDK}) {
    std::cout << to_string(scheme) << ":";
    double t1 = 0.0;
    for (index_t devices = 1; devices <= 4; ++devices) {
      MultiGpuOptions o;
      o.num_devices = devices;
      o.scheme = scheme;
      o.block_size = 448;
      o.local_iters = 5;
      o.matrix_name = n == 20000 ? "Trefethen_20000" : "Trefethen_2000";
      o.solve.tol = 1e-10;
      o.solve.max_iters = 1000;
      const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
      if (devices == 1) t1 = r.time_to_convergence;
      std::cout << "  " << devices << " GPU"
                << (devices > 1 ? "s" : " ") << " "
                << r.time_to_convergence << "s ("
                << (t1 > 0 ? t1 / r.time_to_convergence : 0.0) << "x)";
    }
    std::cout << '\n';
  }
  std::cout << "\nAMC uses per-device PCIe links (scales); DC/DK serialize "
               "on the master GPU's link (the paper's Fig. 11).\n";
  return 0;
}

/// Quickstart: solve a sparse SPD system with the block-asynchronous
/// relaxation method and compare against Gauss-Seidel and CG.
///
///   build/examples/quickstart

#include <iostream>

#include "core/block_async.hpp"
#include "core/cg.hpp"
#include "core/gauss_seidel.hpp"
#include "matrices/generators.hpp"

int main() {
  using namespace bars;

  // 1. Build a test system: 2D Laplacian + reaction term on a 64x64
  //    grid (strictly diagonally dominant, so every method converges).
  const Csr a = fv_like(64, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  std::cout << "System: n = " << a.rows() << ", nnz = " << a.nnz() << "\n\n";

  // 2. Solve with async-(5): blocks of 448 rows are relaxed
  //    asynchronously; each block visit performs 5 local Jacobi sweeps
  //    with the off-block values frozen (Anzt et al., Algorithm 1).
  BlockAsyncOptions opts;
  opts.block_size = 448;
  opts.local_iters = 5;
  opts.solve.tol = 1e-12;
  opts.solve.max_iters = 1000;
  const BlockAsyncResult async_result = block_async_solve(a, b, opts);
  std::cout << "async-(5):    " << async_result.solve.iterations
            << " global iterations, final residual "
            << async_result.solve.final_residual << "\n";

  // 3. Baselines.
  SolveOptions so;
  so.tol = 1e-12;
  so.max_iters = 5000;
  const SolveResult gs = gauss_seidel_solve(a, b, so);
  std::cout << "Gauss-Seidel: " << gs.iterations
            << " iterations, final residual " << gs.final_residual << "\n";
  CgOptions co;
  co.solve = so;
  const SolveResult cg = cg_solve(a, b, co);
  std::cout << "CG:           " << cg.iterations
            << " iterations, final residual " << cg.final_residual << "\n\n";

  // 4. All solutions agree.
  value_t max_diff = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(async_result.solve.x[i] - cg.x[i]));
  }
  std::cout << "max |x_async - x_cg| = " << max_diff << "\n";
  return async_result.solve.ok() && gs.ok() && cg.ok() ? 0 : 1;
}

/// Domain example: *native* chaotic relaxation on host threads — real
/// asynchrony, no simulation. Demonstrates that convergence under
/// Strikwerda's condition rho(|B|) < 1 holds on actual racing hardware
/// threads, and measures real wall-clock time.
///
///   build/examples/native_threads [threads]

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "core/thread_async.hpp"
#include "eigen/power_iteration.hpp"
#include "matrices/generators.hpp"

int main(int argc, char** argv) {
  using namespace bars;
  const index_t threads = argc > 1 ? std::atoll(argv[1]) : 0;

  const Csr a = fv_like(64, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  const value_t rho_abs = async_spectral_radius(a).value;
  std::cout << "rho(|B|) = " << rho_abs
            << (rho_abs < 1.0 ? "  -> asynchronous convergence guaranteed"
                              : "  -> no guarantee!")
            << "\n";

  ThreadAsyncOptions o;
  o.block_size = 256;
  o.local_iters = 5;
  o.num_threads = threads;
  o.solve.tol = 1e-11;
  o.solve.max_iters = 10000;

  const auto t0 = std::chrono::steady_clock::now();
  const ThreadAsyncResult r = thread_async_solve(a, b, o);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  std::cout << (r.solve.ok() ? "converged" : "did not converge")
            << " in " << r.solve.iterations << " global iterations ("
            << r.total_block_executions << " block executions, " << secs
            << " s wall)\n";
  std::cout << "final relative residual: " << r.solve.final_residual << "\n";

  index_t mn = r.block_executions.front(), mx = mn;
  for (index_t c : r.block_executions) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  std::cout << "block execution counts: min " << mn << ", max " << mx
            << " (chaotic but balanced — Chazan-Miranker condition 1)\n";
  return r.solve.ok() ? 0 : 1;
}

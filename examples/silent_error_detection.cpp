/// Domain example: detecting silent data corruption from the residual
/// history alone — the closing idea of the paper's Section 4.5
/// ("a convergence delay ... indicates that a silent error has
/// occurred"). A bit-flip-scale corruption is injected mid-solve; the
/// detector flags the jump, and the asynchronous iteration then heals
/// itself and still converges to the true solution.
///
///   build/examples/silent_error_detection

#include <iostream>

#include "core/silent_error.hpp"
#include "matrices/generators.hpp"

int main() {
  using namespace bars;
  const Csr a = trefethen(2000);
  const Vector b(2000, 1.0);

  BlockAsyncOptions o;
  o.block_size = 448;
  o.local_iters = 5;
  o.matrix_name = "Trefethen_2000";
  o.solve.max_iters = 500;
  o.solve.tol = 1e-12;

  // Clean run: detector must stay silent.
  const SdcRunResult clean = block_async_solve_with_sdc(a, b, o, std::nullopt);
  std::cout << "clean run:     converged in " << clean.solve.solve.iterations
            << " iterations, detector says "
            << (clean.report.detected ? "CORRUPTED (false positive!)"
                                      : "healthy")
            << "\n";

  // Corrupted run: one component silently overwritten at iteration 12.
  SilentErrorPlan sdc;
  sdc.at = 12;
  sdc.magnitude = 1.0e9;
  const SdcRunResult bad = block_async_solve_with_sdc(a, b, o, sdc);
  std::cout << "corrupted run: "
            << (bad.solve.solve.ok() ? "converged (self-healed)"
                                          : "did not converge")
            << " in " << bad.solve.solve.iterations << " iterations\n";
  if (bad.report.detected) {
    std::cout << "detector:      silent error flagged at global iteration "
              << bad.report.at_iteration << " (residual jumped "
              << bad.report.jump_ratio << "x)\n";
  } else {
    std::cout << "detector:      MISSED the corruption\n";
  }
  std::cout << "\nThe asynchronous method pays only a time penalty ("
            << bad.solve.solve.iterations - clean.solve.solve.iterations
            << " extra iterations) and needs no checkpoint/restart —\nthe "
               "paper's exascale-resilience argument, Section 4.5.\n";
  return clean.solve.solve.ok() && !clean.report.detected &&
                 bad.solve.solve.ok() && bad.report.detected
             ? 0
             : 1;
}

/// Line-protocol front end for the solver-as-a-service layer: reads
/// commands from stdin, drives a SolveService, and answers on stdout —
/// the transcript format documented (with a worked example) in
/// docs/SERVICE.md.
///
///   build/examples/solve_server [--workers=2] [--queue=64] [--cache=8]
///       [--max-batch=8] [--no-batching] [--deadline-ms=0] [--demo]
///
/// Protocol (one command per line; responses are single lines):
///   matrix NAME fv N RHO        register fv_like(N, RHO) under NAME
///   matrix NAME tref N          register trefethen(N) under NAME
///   matrix NAME mtx PATH        register a MatrixMarket file under NAME
///   set KEY VALUE               tol | max-iters | block-size |
///                               local-iters | seed | deadline-ms |
///                               solver (applies to later submits)
///   submit NAME                 enqueue a solve; replies "ticket K"
///   wait K                      block for ticket K; replies "done K ..."
///   cancel K                    cooperative cancel of ticket K
///   stats                       one-line service counters
///   quit                        drain and exit
///
/// Malformed input never takes the session down: oversized lines,
/// unparsable numbers, and absurd matrix sizes earn a single-line
/// `error ...` reply and the loop keeps serving.
///
/// --demo ignores stdin and runs a built-in transcript (used by the
/// ctest smoke test), exercising a cache miss, a hit, and a batch.

#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "matrices/generators.hpp"
#include "report/args.hpp"
#include "service/solve_service.hpp"
#include "sparse/matrix_market.hpp"

namespace {

using namespace bars;

struct SessionDefaults {
  value_t tol = 1e-10;
  index_t max_iters = 5000;
  index_t block_size = 448;
  index_t local_iters = 5;
  std::uint64_t seed = 99;
  std::chrono::milliseconds deadline{0};
  std::string solver = "block-async";
};

/// A hostile or confused client must not take the server down — a
/// malformed line earns an `error` reply and the session continues.
/// Oversized payloads are bounded before any parsing happens.
constexpr std::size_t kMaxLineLength = 4096;
constexpr long long kMaxMatrixSize = 1 << 22;

/// Reads a positive matrix/iteration dimension. Extraction failure,
/// zero, negatives, and absurd sizes all reject (formatted extraction
/// zeroes its target on failure, so callers parse into a temporary).
bool read_dim(std::istream& ls, index_t& out,
              long long cap = kMaxMatrixSize) {
  long long v = 0;
  if (!(ls >> v) || v <= 0 || v > cap) return false;
  out = static_cast<index_t>(v);
  return true;
}

void print_done(std::ostream& os, std::size_t id,
                const service::SolveResponse& r) {
  os << "done " << id << " outcome=" << service::to_string(r.outcome)
     << " status=" << to_string(r.result.status)
     << " iters=" << r.result.iterations
     << " residual=" << r.result.final_residual
     << " hit=" << (r.plan_cache_hit ? 1 : 0)
     << " batched=" << (r.batched ? 1 : 0) << " batch=" << r.batch_size
     << " queue_s=" << r.queue_seconds << " solve_s=" << r.solve_seconds;
  if (!r.error.empty()) os << " error=\"" << r.error << '"';
  os << '\n';
}

int serve(std::istream& in, std::ostream& os, service::SolveService& svc,
          SessionDefaults d) {
  std::map<std::string, std::shared_ptr<const Csr>> matrices;
  std::vector<std::shared_ptr<service::Ticket>> tickets;

  std::string line;
  while (std::getline(in, line)) {
    if (line.size() > kMaxLineLength) {
      os << "error line too long (" << line.size() << " > "
         << kMaxLineLength << " bytes)\n";
      continue;
    }
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd[0] == '#') continue;
    try {
      if (cmd == "quit") break;
      if (cmd == "matrix") {
        std::string name, kind;
        ls >> name >> kind;
        if (name.empty() || kind.empty()) {
          os << "error matrix needs NAME and KIND\n";
          continue;
        }
        if (kind == "fv") {
          index_t n = 0;
          if (!read_dim(ls, n)) {
            os << "error bad matrix size (want 1.." << kMaxMatrixSize
               << ")\n";
            continue;
          }
          value_t rho = 0.5;
          std::string rho_tok;
          if (ls >> rho_tok) {
            std::istringstream rs(rho_tok);
            if (!(rs >> rho)) {
              os << "error bad rho '" << rho_tok << "'\n";
              continue;
            }
          }
          matrices[name] = std::make_shared<const Csr>(fv_like(n, rho));
        } else if (kind == "tref") {
          index_t n = 0;
          if (!read_dim(ls, n)) {
            os << "error bad matrix size (want 1.." << kMaxMatrixSize
               << ")\n";
            continue;
          }
          matrices[name] = std::make_shared<const Csr>(trefethen(n));
        } else if (kind == "mtx") {
          std::string path;
          ls >> path;
          if (path.empty()) {
            os << "error mtx needs a PATH\n";
            continue;
          }
          matrices[name] =
              std::make_shared<const Csr>(read_matrix_market_file(path));
        } else {
          os << "error unknown matrix kind '" << kind << "'\n";
          continue;
        }
        os << "matrix " << name << " n=" << matrices[name]->rows()
           << " nnz=" << matrices[name]->nnz() << '\n';
      } else if (cmd == "set") {
        // Parse into temporaries: a bad VALUE must leave the session
        // defaults untouched (extraction failure zeroes its target).
        std::string key, raw;
        ls >> key >> raw;
        if (key.empty() || raw.empty()) {
          os << "error set needs KEY and VALUE\n";
          continue;
        }
        std::istringstream vs(raw);
        bool ok = true;
        if (key == "tol") {
          value_t v = 0;
          ok = static_cast<bool>(vs >> v) && v > 0;
          if (ok) d.tol = v;
        } else if (key == "max-iters") {
          index_t v = 0;
          ok = read_dim(vs, v);
          if (ok) d.max_iters = v;
        } else if (key == "block-size") {
          index_t v = 0;
          ok = read_dim(vs, v);
          if (ok) d.block_size = v;
        } else if (key == "local-iters") {
          index_t v = 0;
          ok = read_dim(vs, v);
          if (ok) d.local_iters = v;
        } else if (key == "seed") {
          std::uint64_t v = 0;
          ok = static_cast<bool>(vs >> v);
          if (ok) d.seed = v;
        } else if (key == "deadline-ms") {
          long long ms = 0;
          ok = static_cast<bool>(vs >> ms) && ms >= 0;
          if (ok) d.deadline = std::chrono::milliseconds(ms);
        } else if (key == "solver") {
          d.solver = raw;
        } else {
          os << "error unknown setting '" << key << "'\n";
          continue;
        }
        if (!ok) {
          os << "error bad value '" << raw << "' for " << key << '\n';
          continue;
        }
        os << "ok\n";
      } else if (cmd == "submit") {
        std::string name;
        ls >> name;
        const auto it = matrices.find(name);
        if (it == matrices.end()) {
          os << "error unknown matrix '" << name << "'\n";
          continue;
        }
        service::SolveRequest req;
        req.matrix = it->second;
        req.b = Vector(static_cast<std::size_t>(it->second->rows()), 1.0);
        req.solver = d.solver;
        req.options.solve.tol = d.tol;
        req.options.solve.max_iters = d.max_iters;
        req.options.block_size = d.block_size;
        req.options.local_iters = d.local_iters;
        req.options.seed = d.seed;
        req.deadline = d.deadline;
        tickets.push_back(svc.submit(std::move(req)));
        os << "ticket " << tickets.size() - 1 << '\n';
      } else if (cmd == "wait" || cmd == "cancel") {
        long long raw_id = -1;
        if (!(ls >> raw_id) || raw_id < 0 ||
            static_cast<std::size_t>(raw_id) >= tickets.size()) {
          os << "error no such ticket\n";
          continue;
        }
        const std::size_t id = static_cast<std::size_t>(raw_id);
        if (cmd == "cancel") {
          tickets[id]->cancel();
          os << "ok\n";
        } else {
          print_done(os, id, tickets[id]->wait());
        }
      } else if (cmd == "stats") {
        const service::ServiceStats s = svc.stats();
        os << "stats submitted=" << s.submitted << " solved=" << s.solved
           << " rejected_queue_full=" << s.rejected_queue_full
           << " deadline_expired=" << s.deadline_expired
           << " cancelled=" << s.cancelled << " failed=" << s.failed
           << " batches=" << s.batches
           << " batched_requests=" << s.batched_requests
           << " cache_hits=" << s.plan_cache.hits
           << " cache_misses=" << s.plan_cache.misses
           << " cache_evictions=" << s.plan_cache.evictions << '\n';
      } else {
        os << "error unknown command '" << cmd << "'\n";
      }
    } catch (const std::exception& e) {
      os << "error " << e.what() << '\n';
    }
  }
  return 0;
}

constexpr const char* kDemoScript = R"(# built-in smoke transcript
matrix demo fv 15 0.8
set tol 1e-9
set block-size 32
set local-iters 2
submit demo
wait 0
submit demo
submit demo
submit demo
wait 1
wait 2
wait 3
set solver cg
submit demo
wait 4
# hostile-input section: every line below must earn an error reply
# and leave the session (and the defaults) intact
matrix bad fv 0
matrix bad fv abc
matrix bad fv 99999999999
matrix bad
set tol nope
set max-iters -3
set
wait abc
cancel 99
frobnicate
submit bad
submit demo
wait 5
stats
quit
)";

}  // namespace

int main(int argc, char** argv) {
  const report::Args args(argc, argv);
  const auto unknown = args.unknown_keys({"workers", "queue", "cache",
                                          "max-batch", "no-batching",
                                          "deadline-ms", "demo", "help"});
  if (!unknown.empty()) {
    std::cerr << "solve_server: unknown flag --" << unknown.front()
              << "\nrun with --help; the protocol and every flag are "
                 "documented in docs/SERVICE.md\n";
    return 2;
  }
  if (args.has("help")) {
    std::cout << "usage: solve_server [--workers=2] [--queue=64] [--cache=8]\n"
                 "       [--max-batch=8] [--no-batching] [--deadline-ms=0] "
                 "[--demo]\nprotocol: see docs/SERVICE.md\n";
    return 0;
  }

  service::ServiceOptions so;
  so.num_workers = static_cast<index_t>(args.get_int("workers", 2));
  so.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 64));
  so.plan_cache_capacity = static_cast<std::size_t>(args.get_int("cache", 8));
  so.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  so.batching = !args.has("no-batching");
  so.default_deadline = std::chrono::milliseconds(args.get_int("deadline-ms", 0));
  service::SolveService svc(so);

  if (args.has("demo")) {
    std::istringstream script{std::string(kDemoScript)};
    return serve(script, std::cout, svc, SessionDefaults{});
  }
  return serve(std::cin, std::cout, svc, SessionDefaults{});
}

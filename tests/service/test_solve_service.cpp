#include "service/solve_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "matrices/generators.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/observer.hpp"

namespace bars::service {
namespace {

using std::chrono::milliseconds;

[[nodiscard]] std::shared_ptr<const Csr> shared_fv(index_t n, value_t rho) {
  return std::make_shared<const Csr>(fv_like(n, rho));
}

[[nodiscard]] SolveRequest small_request(std::shared_ptr<const Csr> a) {
  SolveRequest req;
  req.matrix = std::move(a);
  req.b = Vector(static_cast<std::size_t>(req.matrix->rows()), 1.0);
  req.options.solve.max_iters = 20000;
  req.options.solve.tol = 1e-10;
  req.options.block_size = 32;
  req.options.local_iters = 2;
  return req;
}

/// Spin until the (single) worker has dequeued a request and is inside
/// run_one — used with a test-held plan mutex to park the worker at a
/// known point.
void wait_until_active(const SolveService& svc, std::size_t n) {
  while (svc.stats().active < n) {
    std::this_thread::sleep_for(milliseconds(1));
  }
}

TEST(SolveService, ServesBlockAsyncThroughPlanCache) {
  ServiceOptions so;
  so.num_workers = 1;
  SolveService svc(so);

  const auto a = shared_fv(10, 0.6);
  const SolveResponse r1 = svc.solve(small_request(a));
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_FALSE(r1.plan_cache_hit);
  EXPECT_GT(r1.result.iterations, 0);

  const SolveResponse r2 = svc.solve(small_request(a));
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_TRUE(r2.plan_cache_hit);

  // Same request, same plan: the served solves are bit-identical.
  ASSERT_EQ(r1.result.x.size(), r2.result.x.size());
  for (std::size_t i = 0; i < r1.result.x.size(); ++i) {
    EXPECT_EQ(r1.result.x[i], r2.result.x[i]);
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.solved, 2u);
  EXPECT_EQ(s.plan_cache.hits, 1u);
  EXPECT_EQ(s.plan_cache.misses, 1u);
}

class ServiceAllSolvers : public ::testing::TestWithParam<std::string> {};

TEST_P(ServiceAllSolvers, EveryRegistrySolverIsServable) {
  SolveService svc;
  // 15 = 2^4 - 1 so the multigrid entries can build a hierarchy.
  auto req = small_request(shared_fv(15, 0.8));
  req.solver = GetParam();
  req.options.solve.tol = 1e-9;
  req.options.num_threads = 2;
  const SolveResponse r = svc.solve(std::move(req));
  EXPECT_EQ(r.outcome, RequestOutcome::kSolved) << GetParam() << ": " << r.error;
  EXPECT_TRUE(r.result.ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, ServiceAllSolvers, ::testing::ValuesIn(solver_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(SolveService, NullMatrixFailsImmediately) {
  SolveService svc;
  SolveRequest req;
  const SolveResponse r = svc.solve(std::move(req));
  EXPECT_EQ(r.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(r.result.status, SolverStatus::kAborted);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(svc.stats().failed, 1u);
}

TEST(SolveService, UnknownSolverFails) {
  SolveService svc;
  auto req = small_request(shared_fv(6, 0.5));
  req.solver = "definitely-not-a-solver";
  const SolveResponse r = svc.solve(std::move(req));
  EXPECT_EQ(r.outcome, RequestOutcome::kFailed);
  EXPECT_FALSE(r.error.empty());
}

TEST(SolveService, KernelConstructionFailureSurfacesAsFailed) {
  // Zero diagonal: the cached plan carries the construction error.
  auto bad = std::make_shared<const Csr>(2, 2, std::vector<index_t>{0, 1, 2},
                                         std::vector<index_t>{1, 0},
                                         std::vector<value_t>{1.0, 1.0});
  SolveService svc;
  auto req = small_request(bad);
  const SolveResponse r = svc.solve(std::move(req));
  EXPECT_EQ(r.outcome, RequestOutcome::kFailed);
  EXPECT_FALSE(r.error.empty());
}

TEST(SolveService, QueueFullRejection) {
  ServiceOptions so;
  so.num_workers = 1;
  so.queue_capacity = 2;
  so.batching = false;
  SolveService svc(so);

  const auto a = shared_fv(8, 0.5);
  // Park the single worker: pre-build the plan, hold its mutex, and let
  // the worker block inside run_one.
  const auto plan = svc.plan_cache().acquire(*a, PlanConfig{32, 2});
  auto blocker_ticket = std::shared_ptr<Ticket>();
  std::vector<std::shared_ptr<Ticket>> accepted;
  std::shared_ptr<Ticket> overflow;
  {
    common::MutexLock hold(plan->mu);
    blocker_ticket = svc.submit(small_request(a));
    wait_until_active(svc, 1);

    accepted.push_back(svc.submit(small_request(a)));
    accepted.push_back(svc.submit(small_request(a)));
    EXPECT_EQ(svc.stats().queue_depth, 2u);

    overflow = svc.submit(small_request(a));
    ASSERT_TRUE(overflow->done());  // rejected synchronously
    const SolveResponse& r = overflow->wait();
    EXPECT_EQ(r.outcome, RequestOutcome::kRejectedQueueFull);
    EXPECT_EQ(r.result.status, SolverStatus::kAborted);
  }

  EXPECT_TRUE(blocker_ticket->wait().ok());
  for (const auto& t : accepted) EXPECT_TRUE(t->wait().ok());
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.rejected_queue_full, 1u);
  EXPECT_EQ(s.solved, 3u);
}

TEST(SolveService, DeadlineExpiresWhileQueued) {
  ServiceOptions so;
  so.num_workers = 1;
  SolveService svc(so);

  const auto a = shared_fv(8, 0.5);
  const auto plan = svc.plan_cache().acquire(*a, PlanConfig{32, 2});
  std::shared_ptr<Ticket> blocker;
  std::shared_ptr<Ticket> doomed;
  {
    common::MutexLock hold(plan->mu);
    blocker = svc.submit(small_request(a));
    wait_until_active(svc, 1);

    auto req = small_request(a);
    req.deadline = milliseconds(30);
    doomed = svc.submit(std::move(req));
    // The reaper completes it while the worker is still parked.
    const SolveResponse& r = doomed->wait();
    EXPECT_EQ(r.outcome, RequestOutcome::kDeadlineExpired);
    EXPECT_EQ(r.result.status, SolverStatus::kAborted);
    EXPECT_EQ(r.solve_seconds, 0.0);  // never dispatched
  }
  EXPECT_TRUE(blocker->wait().ok());
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
}

TEST(SolveService, DeadlineExpiresMidSolve) {
  ServiceOptions so;
  so.num_workers = 1;
  SolveService svc(so);

  const auto a = shared_fv(8, 0.5);
  const auto plan = svc.plan_cache().acquire(*a, PlanConfig{32, 2});
  std::shared_ptr<Ticket> t;
  {
    common::MutexLock hold(plan->mu);
    auto req = small_request(a);
    req.deadline = milliseconds(50);
    t = svc.submit(std::move(req));
    wait_until_active(svc, 1);
    // Keep the worker parked until the reaper has tripped the token, so
    // the solver (or its dispatch gate) observes the expiry.
    std::this_thread::sleep_for(milliseconds(150));
  }
  const SolveResponse& r = t->wait();
  EXPECT_EQ(r.outcome, RequestOutcome::kDeadlineExpired);
  EXPECT_EQ(r.result.status, SolverStatus::kAborted);
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
}

TEST(SolveService, NegativeDeadlineOverridesDefault) {
  ServiceOptions so;
  so.num_workers = 1;
  so.default_deadline = milliseconds(1);
  SolveService svc(so);
  auto req = small_request(shared_fv(8, 0.5));
  req.deadline = milliseconds(-1);  // explicit "no deadline"
  const SolveResponse r = svc.solve(std::move(req));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(SolveService, TicketCancelStopsQueuedAndRunningRequests) {
  ServiceOptions so;
  so.num_workers = 1;
  SolveService svc(so);

  const auto a = shared_fv(8, 0.5);
  const auto plan = svc.plan_cache().acquire(*a, PlanConfig{32, 2});
  std::shared_ptr<Ticket> running;
  std::shared_ptr<Ticket> queued;
  {
    common::MutexLock hold(plan->mu);
    running = svc.submit(small_request(a));
    wait_until_active(svc, 1);
    queued = svc.submit(small_request(a));
    // Cancel both: one mid-flight, one still queued.
    running->cancel();
    queued->cancel();
  }
  EXPECT_EQ(running->wait().outcome, RequestOutcome::kCancelled);
  EXPECT_EQ(queued->wait().outcome, RequestOutcome::kCancelled);
  EXPECT_EQ(svc.stats().cancelled, 2u);
}

TEST(SolveService, ShutdownWithoutDrainRejectsQueued) {
  ServiceOptions so;
  so.num_workers = 1;
  SolveService svc(so);

  const auto a = shared_fv(8, 0.5);
  const auto plan = svc.plan_cache().acquire(*a, PlanConfig{32, 2});
  std::shared_ptr<Ticket> running;
  std::shared_ptr<Ticket> queued;
  std::thread stopper;
  {
    common::MutexLock hold(plan->mu);
    running = svc.submit(small_request(a));
    wait_until_active(svc, 1);
    queued = svc.submit(small_request(a));
    stopper = std::thread([&] { svc.shutdown(/*drain=*/false); });
    // The queued request is flushed as rejected even while the worker
    // is still busy with the running one.
    EXPECT_EQ(queued->wait().outcome, RequestOutcome::kRejectedShutdown);
  }
  stopper.join();
  EXPECT_TRUE(running->wait().ok());  // in-flight work still completes

  // Submissions after shutdown are rejected too.
  const SolveResponse late = svc.solve(small_request(a));
  EXPECT_EQ(late.outcome, RequestOutcome::kRejectedShutdown);
  EXPECT_EQ(svc.stats().rejected_shutdown, 2u);
}

TEST(SolveService, RecordsServiceMetrics) {
  telemetry::MetricsRegistry metrics;
  ServiceOptions so;
  so.num_workers = 1;
  so.metrics = &metrics;
  SolveService svc(so);

  const auto a = shared_fv(8, 0.5);
  ASSERT_TRUE(svc.solve(small_request(a)).ok());
  ASSERT_TRUE(svc.solve(small_request(a)).ok());
  svc.shutdown();  // joins workers: safe to read the registry now

  EXPECT_EQ(metrics.counter("service_requests_total").value(), 2u);
  EXPECT_EQ(metrics.counter("service_solved").value(), 2u);
  EXPECT_EQ(metrics.counter("service_plan_cache_hits").value(), 1u);
  EXPECT_EQ(metrics.counter("service_plan_cache_misses").value(), 1u);
  EXPECT_EQ(metrics.histogram("service_solve_seconds", {}).total(), 2u);
  EXPECT_EQ(metrics.gauge("service_plan_cache_size").value(), 1.0);
}

TEST(SolveService, PerRequestObserverSeesTheSolve) {
  SolveService svc;
  auto req = small_request(shared_fv(8, 0.5));
  telemetry::RecordingObserver obs;
  req.options.solve.telemetry.observer = &obs;
  const SolveResponse r = svc.solve(std::move(req));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(obs.starts.size(), 1u);
  EXPECT_EQ(obs.finishes.size(), 1u);
  EXPECT_GT(obs.iterations.size(), 0u);
}

}  // namespace
}  // namespace bars::service

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"
#include "service/solve_service.hpp"

namespace bars::service {
namespace {

constexpr index_t kBlockSize = 32;
constexpr index_t kLocalIters = 2;

[[nodiscard]] std::vector<Vector> make_rhs_set(index_t rows, std::size_t n) {
  std::vector<Vector> out;
  for (std::size_t k = 0; k < n; ++k) {
    Vector b(static_cast<std::size_t>(rows));
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = std::sin(0.1 * double(i + 1) * double(k + 1)) + 1.5;
    }
    out.push_back(std::move(b));
  }
  return out;
}

[[nodiscard]] SolveRequest request_for(std::shared_ptr<const Csr> a, Vector b) {
  SolveRequest req;
  req.matrix = std::move(a);
  req.b = std::move(b);
  req.options.solve.max_iters = 20000;
  req.options.solve.tol = 1e-10;
  req.options.block_size = kBlockSize;
  req.options.local_iters = kLocalIters;
  return req;
}

void wait_until_active(const SolveService& svc, std::size_t n) {
  while (svc.stats().active < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Submit `bs` while the single worker is parked, so releasing it makes
/// the queued same-plan requests fuse into one batch.
[[nodiscard]] std::vector<SolveResponse> run_batched(
    SolveService& svc, const std::shared_ptr<const Csr>& a,
    const std::vector<Vector>& bs) {
  const auto plan =
      svc.plan_cache().acquire(*a, PlanConfig{kBlockSize, kLocalIters});
  std::shared_ptr<Ticket> blocker;
  std::vector<std::shared_ptr<Ticket>> tickets;
  {
    common::MutexLock hold(plan->mu);
    blocker = svc.submit(request_for(a, Vector(bs.front().size(), 1.0)));
    wait_until_active(svc, 1);
    for (const Vector& b : bs) tickets.push_back(svc.submit(request_for(a, b)));
  }
  EXPECT_TRUE(blocker->wait().ok());
  std::vector<SolveResponse> out;
  for (const auto& t : tickets) out.push_back(t->wait());
  return out;
}

TEST(ServiceBatching, FusedBatchIsBitIdenticalToSequentialAndDirect) {
  const auto a = std::make_shared<const Csr>(fv_like(10, 0.6));
  const std::vector<Vector> bs = make_rhs_set(a->rows(), 4);

  ServiceOptions batched_opts;
  batched_opts.num_workers = 1;
  batched_opts.max_batch = 8;
  SolveService batched_svc(batched_opts);
  const std::vector<SolveResponse> fused = run_batched(batched_svc, a, bs);

  // The queued same-plan requests actually rode in one batch.
  ASSERT_EQ(fused.size(), bs.size());
  for (const SolveResponse& r : fused) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.batched);
    EXPECT_EQ(r.batch_size, bs.size());
    EXPECT_TRUE(r.plan_cache_hit);
  }
  EXPECT_EQ(batched_svc.stats().batches, 1u);
  EXPECT_EQ(batched_svc.stats().batched_requests, bs.size());

  // Identical to the same requests served one at a time...
  ServiceOptions seq_opts;
  seq_opts.num_workers = 1;
  seq_opts.batching = false;
  SolveService seq_svc(seq_opts);
  for (std::size_t k = 0; k < bs.size(); ++k) {
    const SolveResponse r = seq_svc.solve(request_for(a, bs[k]));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_FALSE(r.batched);
    ASSERT_EQ(r.result.x.size(), fused[k].result.x.size());
    EXPECT_EQ(r.result.iterations, fused[k].result.iterations);
    for (std::size_t i = 0; i < r.result.x.size(); ++i) {
      EXPECT_EQ(r.result.x[i], fused[k].result.x[i]) << "rhs " << k;
    }
  }

  // ...and to standalone block_async_solve with the same options.
  for (std::size_t k = 0; k < bs.size(); ++k) {
    BlockAsyncOptions ao;
    ao.solve.max_iters = 20000;
    ao.solve.tol = 1e-10;
    ao.block_size = kBlockSize;
    ao.local_iters = kLocalIters;
    const SolveResult direct = block_async_solve(*a, bs[k], ao).solve;
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(direct.iterations, fused[k].result.iterations);
    EXPECT_EQ(direct.final_residual, fused[k].result.final_residual);
    for (std::size_t i = 0; i < direct.x.size(); ++i) {
      EXPECT_EQ(direct.x[i], fused[k].result.x[i]) << "rhs " << k;
    }
  }
}

TEST(ServiceBatching, MaxBatchCapsFusion) {
  const auto a = std::make_shared<const Csr>(fv_like(8, 0.5));
  const std::vector<Vector> bs = make_rhs_set(a->rows(), 5);

  ServiceOptions so;
  so.num_workers = 1;
  so.max_batch = 3;
  SolveService svc(so);
  const std::vector<SolveResponse> rs = run_batched(svc, a, bs);
  for (const SolveResponse& r : rs) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_LE(r.batch_size, 3u);
  }
  // 5 queued requests under a cap of 3 need at least two pops.
  EXPECT_GE(svc.stats().batches, 1u);
  EXPECT_EQ(svc.stats().solved, bs.size() + 1);  // + the blocker
}

TEST(ServiceBatching, DifferentPlansNeverFuse) {
  const auto a = std::make_shared<const Csr>(fv_like(8, 0.5));
  const auto c = std::make_shared<const Csr>(fv_like(9, 0.5));

  ServiceOptions so;
  so.num_workers = 1;
  SolveService svc(so);
  const auto plan =
      svc.plan_cache().acquire(*a, PlanConfig{kBlockSize, kLocalIters});
  std::vector<std::shared_ptr<Ticket>> tickets;
  std::shared_ptr<Ticket> blocker;
  {
    common::MutexLock hold(plan->mu);
    blocker = svc.submit(
        request_for(a, Vector(static_cast<std::size_t>(a->rows()), 1.0)));
    wait_until_active(svc, 1);
    // Same matrix, same config; different matrix; different config —
    // only the first pair may fuse.
    tickets.push_back(svc.submit(
        request_for(a, Vector(static_cast<std::size_t>(a->rows()), 2.0))));
    tickets.push_back(svc.submit(
        request_for(a, Vector(static_cast<std::size_t>(a->rows()), 3.0))));
    tickets.push_back(svc.submit(
        request_for(c, Vector(static_cast<std::size_t>(c->rows()), 1.0))));
    auto other_cfg =
        request_for(a, Vector(static_cast<std::size_t>(a->rows()), 4.0));
    other_cfg.options.local_iters = kLocalIters + 1;
    tickets.push_back(svc.submit(std::move(other_cfg)));
  }
  EXPECT_TRUE(blocker->wait().ok());
  const SolveResponse& r0 = tickets[0]->wait();
  const SolveResponse& r1 = tickets[1]->wait();
  const SolveResponse& r2 = tickets[2]->wait();
  const SolveResponse& r3 = tickets[3]->wait();
  EXPECT_TRUE(r0.batched);
  EXPECT_EQ(r0.batch_size, 2u);
  EXPECT_TRUE(r1.batched);
  EXPECT_FALSE(r2.batched) << "different matrix must not fuse";
  EXPECT_FALSE(r3.batched) << "different config must not fuse";
  for (const auto& t : tickets) EXPECT_TRUE(t->wait().ok());
}

TEST(ServiceBatching, BatchingOffNeverFuses) {
  const auto a = std::make_shared<const Csr>(fv_like(8, 0.5));
  const std::vector<Vector> bs = make_rhs_set(a->rows(), 3);

  ServiceOptions so;
  so.num_workers = 1;
  so.batching = false;
  SolveService svc(so);
  const std::vector<SolveResponse> rs = run_batched(svc, a, bs);
  for (const SolveResponse& r : rs) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_FALSE(r.batched);
    EXPECT_EQ(r.batch_size, 1u);
  }
  EXPECT_EQ(svc.stats().batches, 0u);
}

}  // namespace
}  // namespace bars::service

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "matrices/generators.hpp"
#include "resilience/service_faults.hpp"
#include "service/circuit_breaker.hpp"
#include "service/degradation.hpp"
#include "service/latency_tracker.hpp"
#include "service/retry_policy.hpp"
#include "service/solve_service.hpp"

namespace bars::service {
namespace {

using std::chrono::milliseconds;

[[nodiscard]] std::shared_ptr<const Csr> shared_fv(index_t n, value_t rho) {
  return std::make_shared<const Csr>(fv_like(n, rho));
}

/// Off-diagonal-only matrix: BlockJacobiKernel construction fails
/// (zero diagonal), so every plan-path attempt fails deterministically.
[[nodiscard]] std::shared_ptr<const Csr> shared_bad() {
  return std::make_shared<const Csr>(
      Csr(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0}));
}

[[nodiscard]] SolveRequest small_request(std::shared_ptr<const Csr> a) {
  SolveRequest req;
  req.matrix = std::move(a);
  req.b = Vector(static_cast<std::size_t>(req.matrix->rows()), 1.0);
  req.options.solve.max_iters = 20000;
  req.options.solve.tol = 1e-10;
  req.options.block_size = 32;
  req.options.local_iters = 2;
  return req;
}

/// Poll `pred` up to `timeout`; true when it held before the timeout.
template <typename Pred>
[[nodiscard]] bool eventually(Pred pred, milliseconds timeout) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

// ---------------------------------------------------------------------
// Pure policy units (no service, no threads, no clocks).

TEST(RetryPolicyUnit, NoBackoffBeforeFirstRetry) {
  RetryPolicy rp;
  EXPECT_FALSE(rp.retries_enabled());
  EXPECT_EQ(rp.backoff(1, 0.5).count(), 0);
}

TEST(RetryPolicyUnit, ExponentialBackoffWithCapAndJitterBounds) {
  RetryPolicy rp;
  rp.max_attempts = 4;
  rp.backoff_base = milliseconds(20);
  rp.backoff_multiplier = 2.0;
  rp.backoff_cap = milliseconds(50);
  rp.jitter = 0.0;
  EXPECT_TRUE(rp.retries_enabled());
  EXPECT_EQ(rp.backoff(2, 0.0).count(), 20);  // first retry = base
  EXPECT_EQ(rp.backoff(3, 0.0).count(), 40);
  EXPECT_EQ(rp.backoff(4, 0.0).count(), 50);  // capped, not 80

  rp.jitter = 0.5;
  // jitter_u = 0 -> factor 1 - jitter; jitter_u -> 1 -> factor 1 + jitter.
  EXPECT_EQ(rp.backoff(2, 0.0).count(), 10);
  EXPECT_EQ(rp.backoff(2, 0.999).count(), 29);
}

TEST(CircuitBreakerUnit, TripsAfterConsecutiveFailuresAndRejectsFast) {
  CircuitBreakerOptions o;
  o.enabled = true;
  o.failure_threshold = 2;
  o.open_duration = milliseconds(100);
  CircuitBreaker cb(o);
  const PlanConfig cfg{};
  CircuitBreaker::Clock::time_point t{};

  EXPECT_TRUE(cb.allow(1, cfg, t));
  cb.record_failure(1, cfg, t);
  EXPECT_TRUE(cb.allow(1, cfg, t));  // one failure is below threshold
  cb.record_failure(1, cfg, t);
  EXPECT_EQ(cb.state(1, cfg, t), BreakerState::kOpen);
  EXPECT_FALSE(cb.allow(1, cfg, t + milliseconds(50)));

  const CircuitBreakerStats s = cb.stats();
  EXPECT_EQ(s.trips, 1u);
  EXPECT_EQ(s.rejections, 1u);
  EXPECT_EQ(s.open, 1u);
}

TEST(CircuitBreakerUnit, HalfOpenAdmitsOneProbeAndRecovers) {
  CircuitBreakerOptions o;
  o.enabled = true;
  o.failure_threshold = 1;
  o.open_duration = milliseconds(100);
  CircuitBreaker cb(o);
  const PlanConfig cfg{};
  CircuitBreaker::Clock::time_point t{};
  cb.record_failure(7, cfg, t);
  ASSERT_EQ(cb.state(7, cfg, t), BreakerState::kOpen);

  const auto later = t + milliseconds(101);
  EXPECT_EQ(cb.state(7, cfg, later), BreakerState::kHalfOpen);
  EXPECT_TRUE(cb.allow(7, cfg, later));    // the probe slot
  EXPECT_FALSE(cb.allow(7, cfg, later));   // only one probe at a time
  cb.record_success(7, cfg);
  EXPECT_EQ(cb.state(7, cfg, later), BreakerState::kClosed);
  EXPECT_TRUE(cb.allow(7, cfg, later));

  const CircuitBreakerStats s = cb.stats();
  EXPECT_EQ(s.probes, 1u);
  EXPECT_EQ(s.recoveries, 1u);
}

TEST(CircuitBreakerUnit, FailedProbeReopensForAnotherWindow) {
  CircuitBreakerOptions o;
  o.enabled = true;
  o.failure_threshold = 1;
  o.open_duration = milliseconds(100);
  CircuitBreaker cb(o);
  const PlanConfig cfg{};
  CircuitBreaker::Clock::time_point t{};
  cb.record_failure(9, cfg, t);
  const auto probe_time = t + milliseconds(150);
  ASSERT_TRUE(cb.allow(9, cfg, probe_time));
  cb.record_failure(9, cfg, probe_time);
  EXPECT_EQ(cb.state(9, cfg, probe_time), BreakerState::kOpen);
  // The new window is anchored at the failed probe.
  EXPECT_EQ(cb.state(9, cfg, probe_time + milliseconds(99)),
            BreakerState::kOpen);
  EXPECT_EQ(cb.state(9, cfg, probe_time + milliseconds(101)),
            BreakerState::kHalfOpen);
  EXPECT_EQ(cb.stats().trips, 2u);
}

TEST(CircuitBreakerUnit, ReleaseFreesAWedgedProbeSlot) {
  CircuitBreakerOptions o;
  o.enabled = true;
  o.failure_threshold = 1;
  o.open_duration = milliseconds(10);
  CircuitBreaker cb(o);
  const PlanConfig cfg{};
  CircuitBreaker::Clock::time_point t{};
  cb.record_failure(3, cfg, t);
  const auto later = t + milliseconds(11);
  ASSERT_TRUE(cb.allow(3, cfg, later));
  ASSERT_FALSE(cb.allow(3, cfg, later));
  // The probe was cancelled before delivering a verdict: without
  // release() the breaker could never probe again.
  cb.release(3, cfg);
  EXPECT_TRUE(cb.allow(3, cfg, later));
}

TEST(CircuitBreakerUnit, DisabledBreakerAlwaysAllows) {
  CircuitBreaker cb;  // default options: disabled
  const PlanConfig cfg{};
  CircuitBreaker::Clock::time_point t{};
  for (int i = 0; i < 10; ++i) cb.record_failure(5, cfg, t);
  EXPECT_TRUE(cb.allow(5, cfg, t));
  EXPECT_EQ(cb.stats().trips, 0u);
}

TEST(LoadShedUnit, WatermarkHysteresis) {
  DegradationPolicy p;
  p.enabled = true;
  p.shed_high_watermark = 0.75;
  p.shed_low_watermark = 0.25;
  LoadShedController shed(p, 8);  // high depth 6, low depth 2

  EXPECT_FALSE(shed.update_queue_depth(5));
  EXPECT_TRUE(shed.update_queue_depth(6));   // activates at the high mark
  EXPECT_TRUE(shed.update_queue_depth(3));   // hysteresis: still active
  EXPECT_FALSE(shed.update_queue_depth(2));  // releases at the low mark
  EXPECT_EQ(shed.activations(), 1u);
  EXPECT_EQ(shed.deactivations(), 1u);
}

TEST(LoadShedUnit, MissRateTriggerNeedsAFullWindow) {
  DegradationPolicy p;
  p.enabled = true;
  p.shed_miss_rate = 0.5;
  p.miss_window = 4;
  LoadShedController shed(p, 8);

  shed.record_outcome(true);
  shed.record_outcome(true);
  EXPECT_FALSE(shed.active());  // window not yet full
  shed.record_outcome(true);
  shed.record_outcome(true);
  EXPECT_TRUE(shed.active());
  EXPECT_DOUBLE_EQ(shed.miss_rate(), 1.0);

  for (int i = 0; i < 4; ++i) shed.record_outcome(false);
  EXPECT_FALSE(shed.active());  // rate back under threshold, queue empty
}

TEST(LatencyTrackerUnit, FallbackUntilMinSamplesThenPercentiles) {
  LatencyTracker lat(8);
  EXPECT_DOUBLE_EQ(lat.percentile(0.95, 123.0), 123.0);
  for (int i = 1; i <= 8; ++i) {
    lat.record(static_cast<value_t>(i) / 10.0);
  }
  EXPECT_DOUBLE_EQ(lat.percentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(lat.percentile(1.0), 0.8);
  EXPECT_DOUBLE_EQ(lat.percentile(0.5), 0.5);
}

// ---------------------------------------------------------------------
// Service integration. Suite name is in the CI TSan filter.

TEST(ServiceHardening, DefaultsLeaveResponsesNeutral) {
  SolveService svc;
  const SolveResponse r = svc.solve(small_request(shared_fv(10, 0.6)));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(r.hedged);
  EXPECT_EQ(r.solver_used, "block-async");
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.hedges, 0u);
  EXPECT_EQ(s.requeues, 0u);
  EXPECT_EQ(s.fallbacks, 0u);
}

TEST(ServiceHardening, RetriesExhaustAndSurfaceTheFailure) {
  ServiceOptions so;
  so.num_workers = 1;
  so.retry.max_attempts = 3;
  so.retry.backoff_base = milliseconds(1);
  so.retry.jitter = 0.0;
  SolveService svc(so);

  const SolveResponse r = svc.solve(small_request(shared_bad()));
  EXPECT_EQ(r.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_FALSE(r.error.empty());

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.solved, 0u);
}

TEST(ServiceHardening, TransientPlanFailureRecoversViaRetry) {
  resilience::FaultScenario scenario;
  scenario.fail_plan_builds(0.0, 0.08);
  resilience::ServiceFaultInjector chaos(scenario);

  ServiceOptions so;
  so.num_workers = 1;
  so.plan_negative_ttl = milliseconds(1);
  so.retry.max_attempts = 8;
  so.retry.backoff_base = milliseconds(25);
  so.retry.backoff_multiplier = 1.5;
  so.retry.jitter = 0.0;
  so.chaos = &chaos;
  SolveService svc(so);

  chaos.start();
  const SolveResponse r = svc.solve(small_request(shared_fv(10, 0.6)));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GE(r.attempts, 2u);  // at least one injected failure, then success

  const ServiceStats s = svc.stats();
  EXPECT_GE(s.retries, 1u);
  EXPECT_GE(s.plan_cache.negative_expirations, 1u);
  EXPECT_GE(chaos.plan_failures_injected(), 1u);
}

TEST(ServiceHardening, BreakerTripsFastFailsThenRecovers) {
  resilience::FaultScenario scenario;
  scenario.fail_plan_builds(0.0, 0.05);
  resilience::ServiceFaultInjector chaos(scenario);

  ServiceOptions so;
  so.num_workers = 1;
  so.plan_negative_ttl = milliseconds(1);
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 2;
  so.breaker.open_duration = milliseconds(60);
  so.chaos = &chaos;
  SolveService svc(so);

  const auto a = shared_fv(10, 0.6);
  chaos.start();
  // Two consecutive plan failures trip the breaker...
  EXPECT_EQ(svc.solve(small_request(a)).outcome, RequestOutcome::kFailed);
  std::this_thread::sleep_for(milliseconds(3));  // age out the negative entry
  EXPECT_EQ(svc.solve(small_request(a)).outcome, RequestOutcome::kFailed);
  // ...and the next submission fails fast without touching a worker.
  const SolveResponse rejected = svc.solve(small_request(a));
  EXPECT_EQ(rejected.outcome, RequestOutcome::kRejectedCircuitOpen);

  // Past the fault window AND the open window: the half-open probe
  // rebuilds the plan successfully and closes the breaker.
  std::this_thread::sleep_for(milliseconds(150));
  const SolveResponse probe = svc.solve(small_request(a));
  ASSERT_TRUE(probe.ok()) << probe.error;

  const ServiceStats s = svc.stats();
  EXPECT_GE(s.breaker.trips, 1u);
  EXPECT_GE(s.breaker.recoveries, 1u);
  EXPECT_EQ(s.rejected_circuit_open, 1u);
  EXPECT_EQ(s.breaker.open, 0u);
}

TEST(ServiceHardening, FallbackChainServesDegradedResults) {
  resilience::FaultScenario scenario;
  scenario.fail_plan_builds(0.0, 30.0);  // the whole test
  resilience::ServiceFaultInjector chaos(scenario);

  ServiceOptions so;
  so.num_workers = 1;
  so.plan_negative_ttl = milliseconds(1);
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 1;
  so.breaker.open_duration = milliseconds(10000);
  so.degradation.enabled = true;
  so.degradation.fallback_chain = {"jacobi"};
  so.chaos = &chaos;
  SolveService svc(so);

  const auto a = shared_fv(10, 0.6);
  chaos.start();
  // First request: the plan-path attempt fails, the fallback serves it.
  const SolveResponse r1 = svc.solve(small_request(a));
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_TRUE(r1.degraded);
  EXPECT_EQ(r1.solver_used, "jacobi");
  EXPECT_EQ(r1.attempts, 2u);

  // Second request: the breaker (threshold 1) is now open, so the
  // request degrades at admission — no plan-path attempt at all.
  const SolveResponse r2 = svc.solve(small_request(a));
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_TRUE(r2.degraded);
  EXPECT_EQ(r2.solver_used, "jacobi");
  EXPECT_EQ(r2.attempts, 1u);

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.fallbacks, 2u);
  EXPECT_GE(s.breaker.trips, 1u);
  EXPECT_EQ(s.rejected_circuit_open, 0u);
}

TEST(ServiceHardening, LoadShedRejectsBelowFloorAndEvictsForPriority) {
  ServiceOptions so;
  so.num_workers = 1;
  so.batching = false;
  so.queue_capacity = 4;
  so.degradation.enabled = true;
  so.degradation.shed_high_watermark = 0.5;   // activates at depth 2
  so.degradation.shed_low_watermark = 0.25;   // releases at depth 1
  so.degradation.shed_priority_floor = 1;
  SolveService svc(so);

  const auto a = shared_fv(10, 0.6);
  // Park the worker inside run_one by holding the plan mutex.
  const auto plan = svc.plan_cache().acquire(*a, PlanConfig{32, 2});
  std::vector<std::shared_ptr<Ticket>> held;
  {
    common::MutexLock plan_lock(plan->mu);
    auto blocked = small_request(a);
    blocked.priority = 5;
    held.push_back(svc.submit(std::move(blocked)));
    while (svc.stats().active < 1) std::this_thread::sleep_for(milliseconds(1));

    for (int i = 0; i < 2; ++i) {
      auto req = small_request(a);
      req.priority = 5;
      held.push_back(svc.submit(std::move(req)));
    }
    EXPECT_TRUE(svc.stats().shed_active);  // depth 2 >= high mark

    // Below the floor: rejected immediately.
    auto low = small_request(a);
    low.priority = 0;
    const SolveResponse shed = svc.submit(std::move(low))->wait();
    EXPECT_EQ(shed.outcome, RequestOutcome::kRejectedLoadShed);

    // Fill to capacity with priority-2 work, then submit priority-3:
    // the full queue evicts a lower-priority victim to admit it.
    auto mid1 = small_request(a);
    mid1.priority = 2;
    auto victim = svc.submit(std::move(mid1));
    auto mid2 = small_request(a);
    mid2.priority = 2;
    held.push_back(svc.submit(std::move(mid2)));
    ASSERT_EQ(svc.stats().queue_depth, 4u);

    auto high = small_request(a);
    high.priority = 3;
    held.push_back(svc.submit(std::move(high)));
    const SolveResponse& evicted = victim->wait();
    EXPECT_EQ(evicted.outcome, RequestOutcome::kRejectedLoadShed);

    // Queue full again and nothing strictly lower-priority to evict.
    auto equal = small_request(a);
    equal.priority = 2;
    const SolveResponse full = svc.submit(std::move(equal))->wait();
    EXPECT_EQ(full.outcome, RequestOutcome::kRejectedQueueFull);
  }

  for (const auto& t : held) {
    EXPECT_TRUE(t->wait().ok()) << t->wait().error;
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.rejected_load_shed, 2u);  // the floor reject + the eviction
  EXPECT_GE(s.shed_activations, 1u);
  EXPECT_GE(s.shed_deactivations, 1u);
  EXPECT_FALSE(s.shed_active);
}

TEST(ServiceHardening, HedgeRescuesAStalledWorker) {
  resilience::FaultScenario scenario;
  scenario.stall_workers(0.0, 0.02, /*stall_s=*/0.4);
  resilience::ServiceFaultInjector chaos(scenario);

  ServiceOptions so;
  so.num_workers = 2;
  so.retry.hedging = true;
  so.retry.hedge_min_delay = milliseconds(40);
  so.chaos = &chaos;
  SolveService svc(so);

  chaos.start();
  // The primary dispatch lands inside the stall window and sleeps
  // 400 ms; the hedge fires at ~40 ms (outside the window), runs on
  // the second worker, and wins.
  const SolveResponse r = svc.solve(small_request(shared_fv(10, 0.6)));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.hedged);
  EXPECT_EQ(r.attempts, 2u);

  svc.shutdown();  // join the stalled worker so its late finish lands
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.hedges, 1u);
  EXPECT_EQ(s.hedge_wins, 1u);
  EXPECT_EQ(s.late_completions, 1u);
  EXPECT_GE(s.chaos_stalls, 1u);
  EXPECT_EQ(s.solved, 1u);
}

TEST(ServiceHardening, WatchdogRequeuesAStuckWorker) {
  resilience::FaultScenario scenario;
  scenario.stall_workers(0.0, 0.02, /*stall_s=*/0.5);
  resilience::ServiceFaultInjector chaos(scenario);

  ServiceOptions so;
  so.num_workers = 2;
  so.supervision.max_requeues = 1;
  so.supervision.grace_factor = 1.5;
  so.chaos = &chaos;
  SolveService svc(so);

  chaos.start();
  auto req = small_request(shared_fv(10, 0.6));
  req.deadline = milliseconds(60);  // stuck declared at 90 ms
  const SolveResponse r = svc.solve(std::move(req));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.attempts, 2u);

  svc.shutdown();
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.requeues, 1u);
  EXPECT_EQ(s.late_completions, 1u);
  EXPECT_EQ(s.solved, 1u);
  EXPECT_GE(s.chaos_stalls, 1u);
}

TEST(ServiceHardening, ShutdownWhileRetryingCompletesParkedWithLastFailure) {
  ServiceOptions so;
  so.num_workers = 1;
  so.retry.max_attempts = 2;
  so.retry.backoff_base = milliseconds(500);
  so.retry.jitter = 0.0;
  SolveService svc(so);

  auto ticket = svc.submit(small_request(shared_bad()));
  ASSERT_TRUE(eventually([&] { return svc.stats().parked == 1; },
                         milliseconds(2000)));
  svc.shutdown(/*drain=*/true);  // does not wait out the 500 ms backoff

  const SolveResponse& r = ticket->wait();
  EXPECT_EQ(r.outcome, RequestOutcome::kFailed);
  EXPECT_NE(r.error.find("shut down before retry"), std::string::npos)
      << r.error;
  EXPECT_EQ(svc.stats().failed, 1u);
}

TEST(ServiceHardening, ShutdownWhileHedgedLeavesTicketTerminal) {
  resilience::FaultScenario scenario;
  scenario.stall_workers(0.0, 0.02, /*stall_s=*/0.3);
  resilience::ServiceFaultInjector chaos(scenario);

  ServiceOptions so;
  so.num_workers = 2;
  so.retry.hedging = true;
  so.retry.hedge_min_delay = milliseconds(40);
  so.chaos = &chaos;
  SolveService svc(so);

  chaos.start();
  auto ticket = svc.submit(small_request(shared_fv(10, 0.6)));
  ASSERT_TRUE(eventually([&] { return svc.stats().hedges >= 1; },
                         milliseconds(2000)));
  svc.shutdown(/*drain=*/true);  // both attempts join; first verdict won

  ASSERT_TRUE(ticket->done());
  const SolveResponse& r = ticket->wait();
  EXPECT_EQ(r.outcome, RequestOutcome::kSolved);
  EXPECT_TRUE(r.result.ok());
}

TEST(ServiceHardening, TicketCancelReachesEveryAttempt) {
  // A user cancel through the request-level token must stop a parked
  // retry as well: the parked attempt is promoted, sees its parent
  // tripped, and completes kCancelled without running the solver.
  ServiceOptions so;
  so.num_workers = 1;
  so.retry.max_attempts = 3;
  so.retry.backoff_base = milliseconds(50);
  so.retry.jitter = 0.0;
  SolveService svc(so);

  auto ticket = svc.submit(small_request(shared_bad()));
  ASSERT_TRUE(eventually([&] { return svc.stats().parked == 1; },
                         milliseconds(2000)));
  ticket->cancel();
  const SolveResponse& r = ticket->wait();
  EXPECT_EQ(r.outcome, RequestOutcome::kCancelled);
}

}  // namespace
}  // namespace bars::service

#include "service/plan_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "matrices/generators.hpp"
#include "service/fingerprint.hpp"

namespace bars::service {
namespace {

TEST(Fingerprint, DeterministicAndValueSensitive) {
  const Csr a = fv_like(8, 0.5);
  const Csr b = fv_like(8, 0.5);
  EXPECT_EQ(matrix_fingerprint(a), matrix_fingerprint(b));
  const Csr c = fv_like(8, 0.6);   // same structure, different values
  const Csr d = fv_like(9, 0.5);   // different structure
  EXPECT_NE(matrix_fingerprint(a), matrix_fingerprint(c));
  EXPECT_NE(matrix_fingerprint(a), matrix_fingerprint(d));
}

TEST(PlanCache, ZeroCapacityThrows) {
  EXPECT_THROW(PlanCache(0), std::invalid_argument);
}

TEST(PlanCache, MissBuildsThenHits) {
  PlanCache cache(4);
  const Csr a = fv_like(6, 0.5);
  bool hit = true;
  const auto p1 = cache.acquire(a, PlanConfig{}, &hit);
  ASSERT_NE(p1, nullptr);
  EXPECT_FALSE(hit);
  ASSERT_NE(p1->kernel, nullptr);
  EXPECT_EQ(p1->matrix.rows(), a.rows());
  EXPECT_EQ(p1->fingerprint, matrix_fingerprint(a));
  EXPECT_EQ(p1->seed_rhs.size(), static_cast<std::size_t>(a.rows()));

  const auto p2 = cache.acquire(a, PlanConfig{}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.capacity, 4u);
}

TEST(PlanCache, DistinctConfigsGetDistinctPlans) {
  PlanCache cache(4);
  const Csr a = fv_like(6, 0.5);
  const auto p1 = cache.acquire(a, PlanConfig{.block_size = 8, .local_iters = 2});
  const auto p2 = cache.acquire(a, PlanConfig{.block_size = 16, .local_iters = 2});
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCache, BackendIsPartOfTheKey) {
  // Backends differ in memory layout and FP rounding, so a plan built
  // for one backend must never be served to a request asking for
  // another: same matrix + same partition config but different backend
  // names are two misses and two resident plans.
  PlanCache cache(4);
  const Csr a = fv_like(6, 0.5);
  bool hit = true;
  const auto scalar =
      cache.acquire(a, PlanConfig{.backend = "scalar"}, &hit);
  EXPECT_FALSE(hit);
  const auto simd = cache.acquire(a, PlanConfig{.backend = "simd"}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(scalar.get(), simd.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().size, 2u);

  // Both kernels built (an unavailable simd degrades to a scalar
  // kernel, but the plan still lives under the requested key).
  ASSERT_NE(scalar->kernel, nullptr);
  ASSERT_NE(simd->kernel, nullptr);
  EXPECT_EQ(scalar->kernel->backend_name(), "scalar");

  // Each key hits its own entry on re-acquire and peeks distinctly.
  const auto again = cache.acquire(a, PlanConfig{.backend = "simd"}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), simd.get());
  const std::uint64_t fp = matrix_fingerprint(a);
  EXPECT_EQ(cache.peek(fp, PlanConfig{.backend = "scalar"}).get(),
            scalar.get());
  EXPECT_EQ(cache.peek(fp, PlanConfig{.backend = "simd"}).get(), simd.get());
}

TEST(PlanCache, UnknownBackendIsANegativeEntry) {
  // A typo'd backend name fails the build (std::invalid_argument from
  // the backend registry) and is cached as a negative entry, so repeat
  // offenders fail fast like any other construction failure.
  PlanCache cache(4);
  const Csr a = fv_like(6, 0.5);
  bool hit = true;
  const auto p1 = cache.acquire(a, PlanConfig{.backend = "cuda"}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(p1->kernel, nullptr);
  EXPECT_NE(p1->kernel_error.find("cuda"), std::string::npos);
  const auto p2 = cache.acquire(a, PlanConfig{.backend = "cuda"}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());
  // The well-formed config on the same matrix is unaffected.
  const auto good = cache.acquire(a, PlanConfig{}, &hit);
  EXPECT_NE(good->kernel, nullptr);
}

TEST(PlanCache, LruEvictionUnderChurn) {
  PlanCache cache(2);
  const Csr a = fv_like(4, 0.5);
  const Csr b = fv_like(5, 0.5);
  const Csr c = fv_like(6, 0.5);
  bool hit = false;
  (void)cache.acquire(a, PlanConfig{}, &hit);
  (void)cache.acquire(b, PlanConfig{}, &hit);
  (void)cache.acquire(c, PlanConfig{}, &hit);  // evicts a (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);

  (void)cache.acquire(b, PlanConfig{}, &hit);  // still resident
  EXPECT_TRUE(hit);
  (void)cache.acquire(a, PlanConfig{}, &hit);  // evicted above -> rebuild
  EXPECT_FALSE(hit);
  // b was touched after c, so rebuilding a evicted c.
  EXPECT_EQ(cache.peek(matrix_fingerprint(c), PlanConfig{}), nullptr);
  EXPECT_NE(cache.peek(matrix_fingerprint(b), PlanConfig{}), nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(PlanCache, PeekDoesNotRefreshLru) {
  PlanCache cache(2);
  const Csr a = fv_like(4, 0.5);
  const Csr b = fv_like(5, 0.5);
  const Csr c = fv_like(6, 0.5);
  (void)cache.acquire(a, PlanConfig{});
  (void)cache.acquire(b, PlanConfig{});
  // Peeking a must not promote it: the next insertion still evicts a.
  EXPECT_NE(cache.peek(matrix_fingerprint(a), PlanConfig{}), nullptr);
  (void)cache.acquire(c, PlanConfig{});
  EXPECT_EQ(cache.peek(matrix_fingerprint(a), PlanConfig{}), nullptr);
  EXPECT_NE(cache.peek(matrix_fingerprint(b), PlanConfig{}), nullptr);
}

TEST(PlanCache, EvictedPlanStaysValidWhileHeld) {
  PlanCache cache(1);
  const Csr a = fv_like(6, 0.5);
  const auto held = cache.acquire(a, PlanConfig{});
  ASSERT_NE(held->kernel, nullptr);
  // Churn far past capacity while holding the original plan.
  for (int n = 7; n < 12; ++n) {
    (void)cache.acquire(fv_like(n, 0.5), PlanConfig{});
  }
  EXPECT_GE(cache.stats().evictions, 4u);
  // The held plan is untouched by eviction: kernel still usable.
  EXPECT_EQ(held->kernel->num_rows(), a.rows());
  EXPECT_EQ(held->matrix.rows(), a.rows());
}

TEST(PlanCache, KernelFailureIsCachedWithReason) {
  // Off-diagonal-only matrix: BlockJacobiKernel construction fails
  // (zero diagonal), and the failure itself is cached.
  const Csr bad(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0});
  PlanCache cache(2);
  bool hit = true;
  const auto p1 = cache.acquire(bad, PlanConfig{}, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->kernel, nullptr);
  EXPECT_FALSE(p1->kernel_error.empty());

  const auto p2 = cache.acquire(bad, PlanConfig{}, &hit);
  EXPECT_TRUE(hit);  // repeat offenders fail fast, no rebuild attempt
  EXPECT_EQ(p1.get(), p2.get());
}

TEST(PlanCache, NegativeEntryExpiresAfterTtl) {
  const Csr bad(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0});
  PlanCacheOptions opts;
  opts.capacity = 2;
  opts.negative_ttl = std::chrono::milliseconds(1);
  PlanCache cache(opts);

  bool hit = true;
  const auto p1 = cache.acquire(bad, PlanConfig{}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(p1->kernel, nullptr);
  EXPECT_EQ(cache.stats().negative_entries, 1u);

  // Within the TTL a cached failure is authoritative; past it the next
  // acquire rebuilds from scratch and counts as a miss, so a transient
  // construction failure can never poison the fingerprint forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(cache.peek(matrix_fingerprint(bad), PlanConfig{}), nullptr);
  const auto p2 = cache.acquire(bad, PlanConfig{}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(p1.get(), p2.get());  // rebuilt (still fails: bad matrix)
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.negative_expirations, 1u);
  EXPECT_EQ(s.misses, 2u);
}

TEST(PlanCache, ZeroTtlMeansNegativeEntriesNeverExpire) {
  const Csr bad(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0});
  PlanCacheOptions opts;
  opts.capacity = 2;
  opts.negative_ttl = std::chrono::milliseconds(0);  // pre-TTL behavior
  PlanCache cache(opts);
  bool hit = true;
  const auto p1 = cache.acquire(bad, PlanConfig{}, &hit);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto p2 = cache.acquire(bad, PlanConfig{}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.stats().negative_expirations, 0u);
}

TEST(PlanCache, InjectedFailureProducesNegativeEntryButSparesHits) {
  const Csr good = fv_like(6, 0.5);
  PlanCache cache(4);
  bool hit = true;

  // An injected failure poisons the *build* it rides on...
  const auto p1 =
      cache.acquire(good, PlanConfig{}, &hit, "injected (chaos)");
  EXPECT_FALSE(hit);
  EXPECT_EQ(p1->kernel, nullptr);
  EXPECT_EQ(p1->kernel_error, "injected (chaos)");
  EXPECT_EQ(cache.stats().negative_entries, 1u);

  // ...but an already-built plan does not retroactively fail.
  cache.clear();
  const auto p2 = cache.acquire(good, PlanConfig{}, &hit);
  ASSERT_NE(p2->kernel, nullptr);
  const auto p3 = cache.acquire(good, PlanConfig{}, &hit, "injected (chaos)");
  EXPECT_TRUE(hit);
  EXPECT_EQ(p2.get(), p3.get());
  EXPECT_NE(p3->kernel, nullptr);
}

TEST(PlanCache, ClearDropsEverything) {
  PlanCache cache(4);
  const Csr a = fv_like(6, 0.5);
  const auto held = cache.acquire(a, PlanConfig{});
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.peek(matrix_fingerprint(a), PlanConfig{}), nullptr);
  EXPECT_NE(held->kernel, nullptr);  // in-flight handle survives clear()
}

}  // namespace
}  // namespace bars::service

#include "matrices/paper_suite.hpp"

#include <gtest/gtest.h>

#include "eigen/power_iteration.hpp"
#include "sparse/matrix_market.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace bars {
namespace {

TEST(PaperSuite, AllSevenInTableOrder) {
  const auto& all = all_paper_matrices();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(paper_matrix_name(all.front()), "Chem97ZtZ");
  EXPECT_EQ(paper_matrix_name(all.back()), "Trefethen_20000");
}

TEST(PaperSuite, TrefethenProblemsAreExact) {
  const TestProblem p = make_paper_problem(PaperMatrix::kTrefethen2000);
  EXPECT_EQ(p.matrix.rows(), 2000);
  EXPECT_EQ(p.matrix.nnz(), 41906);
  EXPECT_EQ(p.paper.nnz, 41906);
  EXPECT_TRUE(p.surrogate);  // generated, not loaded — still exact
}

TEST(PaperSuite, FvSurrogatesMatchDimensions) {
  EXPECT_EQ(make_paper_problem(PaperMatrix::kFv1).matrix.rows(), 9604);
  EXPECT_EQ(make_paper_problem(PaperMatrix::kFv2).matrix.rows(), 9801);
  EXPECT_EQ(make_paper_problem(PaperMatrix::kFv3).matrix.rows(), 9801);
}

TEST(PaperSuite, SurrogateRhoMatchesPaperTable) {
  struct Case {
    PaperMatrix id;
    value_t rho;
    value_t tol;
  };
  const Case cases[] = {
      {PaperMatrix::kChem97ZtZ, 0.7889, 2e-3},
      {PaperMatrix::kFv1, 0.8541, 2e-3},
      {PaperMatrix::kFv3, 0.9993, 2e-3},
      {PaperMatrix::kS1rmt3m1, 2.65, 2e-2},
  };
  for (const auto& c : cases) {
    const TestProblem p = make_paper_problem(c.id);
    EXPECT_NEAR(jacobi_spectral_radius(p.matrix).value, c.rho, c.tol)
        << p.name;
  }
}

TEST(PaperSuite, AllMatricesSymmetric) {
  for (PaperMatrix id : all_paper_matrices()) {
    if (id == PaperMatrix::kTrefethen20000) continue;  // slow; covered above
    const TestProblem p = make_paper_problem(id);
    EXPECT_TRUE(p.matrix.is_symmetric(1e-12)) << p.name;
  }
}

TEST(PaperSuite, LoadsUfmcFileWhenPresent) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "bars_ufmc_test";
  fs::create_directories(dir);
  // Fake "fv1.mtx" — the loader must prefer it over the surrogate.
  {
    std::ofstream out(dir / "fv1.mtx");
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 2\n1 1 3.0\n2 2 4.0\n";
  }
  const TestProblem p =
      make_paper_problem(PaperMatrix::kFv1, dir.string());
  EXPECT_FALSE(p.surrogate);
  EXPECT_EQ(p.matrix.rows(), 2);
  fs::remove_all(dir);
}

TEST(PaperSuite, MissingUfmcFileFallsBackToSurrogate) {
  const TestProblem p =
      make_paper_problem(PaperMatrix::kFv1, std::string("/nonexistent"));
  EXPECT_TRUE(p.surrogate);
  EXPECT_EQ(p.matrix.rows(), 9604);
}

TEST(PaperSuite, PaperReferenceValuesTranscribed) {
  const TestProblem p = make_paper_problem(PaperMatrix::kS1rmt3m1);
  EXPECT_EQ(p.paper.n, 5489);
  EXPECT_EQ(p.paper.nnz, 262411);
  EXPECT_DOUBLE_EQ(p.paper.rho, 2.65);
}

}  // namespace
}  // namespace bars

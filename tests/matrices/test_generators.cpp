#include "matrices/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eigen/power_iteration.hpp"
#include "sparse/properties.hpp"

namespace bars {
namespace {

TEST(Trefethen, StructureMatchesDefinition) {
  const Csr a = trefethen(20);
  EXPECT_EQ(a.rows(), 20);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 11.0);  // 5th prime
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 8), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 16), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 3), 0.0);   // 3 is not a power of two
}

TEST(Trefethen, NnzMatchesUfmcFor2000) {
  // UFMC reports 41,906 stored entries for Trefethen_2000.
  EXPECT_EQ(trefethen(2000).nnz(), 41906);
}

TEST(Trefethen, JacobiRadiusNearPaperValue) {
  // Paper Table 1: rho(M) = 0.8601 for both Trefethen sizes.
  const auto r = jacobi_spectral_radius(trefethen(2000));
  EXPECT_NEAR(r.value, 0.8601, 5e-3);
}

TEST(FvLike, StencilAndDimensions) {
  const Csr a = fv_like(4, 0.25);
  EXPECT_EQ(a.rows(), 16);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.25);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 5), 0.0);  // no diagonal coupling
}

TEST(FvLike, ReactionCalibrationHitsRho) {
  for (const value_t target : {0.70, 0.8541, 0.9993}) {
    const index_t m = 24;
    const Csr a = fv_like(m, fv_reaction_for_rho(m, target));
    EXPECT_NEAR(jacobi_spectral_radius(a).value, target, 2e-4)
        << "target " << target;
  }
}

TEST(FvLike, ReactionCalibrationRejectsBadRho) {
  EXPECT_THROW((void)fv_reaction_for_rho(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fv_reaction_for_rho(10, 1.0), std::invalid_argument);
}

TEST(StructuralLike, TensorStencil) {
  const value_t a0 = 3.0;
  const Csr a = structural_like(3, a0);
  EXPECT_EQ(a.rows(), 9);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(4, 4), 9.0);  // a*a center
  EXPECT_DOUBLE_EQ(a.at(4, 1), 3.0);  // a
  EXPECT_DOUBLE_EQ(a.at(4, 0), 1.0);  // corner
}

TEST(StructuralLike, RhoCalibration) {
  const index_t m = 20;
  const value_t a0 = structural_diag_for_rho(m, 2.65);
  EXPECT_NEAR(jacobi_spectral_radius(structural_like(m, a0)).value, 2.65,
              1e-3);
}

TEST(StructuralLike, RemainsSpd) {
  const index_t m = 16;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  // SPD <=> Gershgorin may fail, so check lambda_min via the tensor
  // closed form: (a - 2cos(pi/(m+1)))^2 > 0 always; verify numerically
  // that x^T A x > 0 for a few vectors.
  Vector x(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.7 * static_cast<double>(i) + 0.3);
  }
  Vector ax(x.size());
  a.spmv(x, ax);
  value_t xax = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) xax += x[i] * ax[i];
  EXPECT_GT(xax, 0.0);
}

TEST(Chem97Like, RhoCalibrationAndStructure) {
  const Csr a = chem97ztz_like(301, 0.7889);
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_NEAR(jacobi_spectral_radius(a).value, 0.7889, 1e-3);
  // Key reproduced property: essentially all off-diagonal entries are
  // far from the diagonal (the paper's reason async-(k) cannot
  // accelerate Chem97ZtZ — the local blocks are close to diagonal).
  index_t offdiag = 0, near_diag = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      if (j == i) continue;
      ++offdiag;
      if (std::abs(i - j) < 64) ++near_diag;
    }
  }
  ASSERT_GT(offdiag, 0);
  EXPECT_LT(static_cast<double>(near_diag) / static_cast<double>(offdiag),
            0.25);
}

TEST(RandomSpd, IsSymmetricAndDominant) {
  const Csr a = random_spd(80, 5, 1.5, 99);
  EXPECT_TRUE(a.is_symmetric(1e-12));
  EXPECT_TRUE(diagonal_dominance(a).strictly_dominant);
}

TEST(RandomSpd, DeterministicInSeed) {
  const Csr a = random_spd(30, 3, 2.0, 5);
  const Csr b = random_spd(30, 3, 2.0, 5);
  EXPECT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
  }
}

TEST(AnisotropicLaplacian, WeightsDirections) {
  const Csr a = anisotropic_laplacian(4, 0.1, 0.0);
  EXPECT_DOUBLE_EQ(a.at(5, 6), -1.0);   // j-direction
  EXPECT_DOUBLE_EQ(a.at(5, 9), -0.1);   // i-direction (stride m)
  EXPECT_NEAR(a.at(5, 5), 2.2, 1e-14);
}

TEST(Poisson1d, Structure) {
  const Csr a = poisson1d(5);
  EXPECT_EQ(a.nnz(), 13);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.0);
}

TEST(Generators, RejectBadArguments) {
  EXPECT_THROW((void)trefethen(0), std::invalid_argument);
  EXPECT_THROW((void)fv_like(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)structural_diag_for_rho(10, 3.5),
               std::invalid_argument);
  EXPECT_THROW((void)chem97ztz_like(100, 1.5), std::invalid_argument);
  EXPECT_THROW((void)random_spd(10, 2, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)anisotropic_laplacian(4, 0.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

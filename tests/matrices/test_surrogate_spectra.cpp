/// Property tests of the surrogate calibration machinery: the closed
/// forms and similarity transforms must hit their spectral targets
/// across the parameter space, not just at the paper's values.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "eigen/power_iteration.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

struct FvCase {
  index_t m;
  value_t rho;
};

class FvCalibration : public ::testing::TestWithParam<FvCase> {};

TEST_P(FvCalibration, HitsTargetRho) {
  const auto [m, rho] = GetParam();
  const Csr a = fv_like(m, fv_reaction_for_rho(m, rho));
  EXPECT_NEAR(jacobi_spectral_radius(a).value, rho, 3e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FvCalibration,
    ::testing::Values(FvCase{10, 0.5}, FvCase{10, 0.99}, FvCase{25, 0.7},
                      FvCase{25, 0.8541}, FvCase{40, 0.9},
                      FvCase{15, 0.9993}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "_rho" +
             std::to_string(static_cast<int>(info.param.rho * 10000));
    });

class StructuralCalibration : public ::testing::TestWithParam<double> {};

TEST_P(StructuralCalibration, HitsTargetRhoAndStaysSpd) {
  const value_t rho = GetParam();
  const index_t m = 14;
  const Csr a = structural_like(m, structural_diag_for_rho(m, rho));
  EXPECT_NEAR(jacobi_spectral_radius(a).value, rho, 2e-3);
  // SPD check via the dense eigensolver on the (small) matrix.
  const auto eig = Dense::from_csr(a).symmetric_eigenvalues();
  EXPECT_GT(eig.front(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rho, StructuralCalibration,
                         ::testing::Values(1.2, 2.0, 2.65, 2.9),
                         [](const auto& info) {
                           return "rho" + std::to_string(static_cast<int>(
                                              info.param * 100));
                         });

TEST(ChemCalibration, DiagSpreadPreservesRhoExactly) {
  // The symmetric rescaling is a similarity transform of D^{-1}A.
  const Csr flat = chem97ztz_like(200, 0.65, 1.0);
  const Csr wide = chem97ztz_like(200, 0.65, 1.0e4);
  EXPECT_NEAR(jacobi_spectral_radius(flat).value,
              jacobi_spectral_radius(wide).value, 1e-6);
  EXPECT_NEAR(async_spectral_radius(wide).value, 0.65, 2e-3);
}

TEST(ChemCalibration, DiagSpreadRaisesConditionNumber) {
  const Csr flat = chem97ztz_like(120, 0.6, 1.0);
  const Csr wide = chem97ztz_like(120, 0.6, 1.0e3);
  const auto e0 = Dense::from_csr(flat).symmetric_eigenvalues();
  const auto e1 = Dense::from_csr(wide).symmetric_eigenvalues();
  const double c0 = e0.back() / e0.front();
  const double c1 = e1.back() / e1.front();
  EXPECT_GT(c1, 20.0 * c0);
  EXPECT_GT(e1.front(), 0.0);  // still SPD
}

TEST(ChemCalibration, DeterministicInSeed) {
  const Csr a = chem97ztz_like(100, 0.6, 100.0, 11);
  const Csr b = chem97ztz_like(100, 0.6, 100.0, 11);
  const Csr c = chem97ztz_like(100, 0.6, 100.0, 12);
  EXPECT_DOUBLE_EQ(a.at(0, 0), b.at(0, 0));
  EXPECT_NE(a.at(0, 0), c.at(0, 0));
}

TEST(AnisotropicCalibration, EpsControlsCrossBlockCoupling) {
  // Smaller eps concentrates coupling along grid rows (inside
  // row-aligned blocks): the Jacobi radius approaches the 1D limit.
  const index_t m = 20;
  const value_t rho_iso = jacobi_spectral_radius(
      anisotropic_laplacian(m, 1.0, 0.2)).value;
  const value_t rho_aniso = jacobi_spectral_radius(
      anisotropic_laplacian(m, 0.01, 0.2)).value;
  EXPECT_GT(rho_iso, 0.0);
  EXPECT_GT(rho_aniso, 0.0);
  // Closed forms: rho = (2 eps c1 + 2 c1) / (2 eps + 2 + c).
  const value_t c1 =
      std::cos(std::numbers::pi / static_cast<double>(m + 1));
  EXPECT_NEAR(rho_iso, 4.0 * c1 / 4.2, 1e-3);
  EXPECT_NEAR(rho_aniso, (2.02 * c1) / 2.22, 1e-3);
}

TEST(TrefethenSpectrum, RhoIndependentOfSize) {
  // The paper's Table 1 lists the same rho for n=2000 and 20000; the
  // generator should show size saturation already well below that.
  const value_t r500 = jacobi_spectral_radius(trefethen(500)).value;
  const value_t r1500 = jacobi_spectral_radius(trefethen(1500)).value;
  EXPECT_NEAR(r500, r1500, 5e-3);
}

}  // namespace
}  // namespace bars

#include "matrices/primes.hpp"

#include <gtest/gtest.h>

namespace bars {
namespace {

TEST(Primes, FirstFew) {
  const auto p = first_primes(10);
  const std::vector<index_t> expect{2, 3, 5, 7, 11, 13, 17, 19, 23, 29};
  EXPECT_EQ(p, expect);
}

TEST(Primes, EmptyAndSingle) {
  EXPECT_TRUE(first_primes(0).empty());
  EXPECT_EQ(first_primes(1), std::vector<index_t>{2});
}

TEST(Primes, NegativeThrows) {
  EXPECT_THROW((void)first_primes(-1), std::invalid_argument);
}

TEST(Primes, KnownLargePrime) {
  // p_2000 = 17389 (used as the largest Trefethen_2000 diagonal entry).
  const auto p = first_primes(2000);
  EXPECT_EQ(p.back(), 17389);
}

TEST(Primes, TwentyThousandth) {
  // p_20000 = 224737 (Trefethen_20000 diagonal).
  const auto p = first_primes(20000);
  ASSERT_EQ(p.size(), 20000u);
  EXPECT_EQ(p.back(), 224737);
}

TEST(Primes, StrictlyIncreasing) {
  const auto p = first_primes(500);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_LT(p[i - 1], p[i]);
}

}  // namespace
}  // namespace bars

/// The PR 2 contract, model-checked: the executor's parallel commit
/// path must be bit-identical to the serial loop on EVERY explored
/// schedule of the worker pool (not just the interleavings a loaded CI
/// machine happens to produce), with the commit ledger checking the
/// async-iteration bookkeeping invariants and the race oracle checking
/// the disjoint-rows write contract on each one. Mutation tests then
/// prove the oracles are alive: a dropped commit and an overlapping
/// write must both be caught.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "core/thread_async.hpp"
#include "gpusim/async_executor.hpp"
#include "gpusim/worker_pool.hpp"
#include "matrices/generators.hpp"
#include "telemetry/observer.hpp"
#include "verify/explorer.hpp"
#include "verify/invariants.hpp"

namespace bars::verify {
namespace {

struct Sys {
  Csr a;
  Vector b;
  RowPartition part;
  BlockJacobiKernel kernel;
  Sys(index_t n, index_t block, index_t k)
      : a(poisson1d(n)),
        b(static_cast<std::size_t>(n), 1.0),
        part(RowPartition::uniform(n, block)),
        kernel(a, b, part, k) {}
  [[nodiscard]] value_t res(const Vector& x) const {
    return relative_residual(a, b, x);
  }
};

gpusim::ExecutorResult run_exec(const Sys& s, gpusim::ExecutorOptions o,
                                Vector& x) {
  gpusim::AsyncExecutor ex(s.kernel, o);
  x.assign(s.b.size(), 0.0);
  return ex.run(x, [&](const Vector& v) { return s.res(v); });
}

gpusim::ExecutorOptions small_opts() {
  gpusim::ExecutorOptions o;
  o.stopping.max_global_iters = 2;
  o.stopping.tol = 1e-30;  // never converges: fixed-length run
  o.policy = gpusim::SchedulePolicy::kRoundRobin;
  o.concurrent_slots = 4;  // full-width batches over all 4 blocks
  o.record_trace = true;
  return o;
}

/// The acceptance scenario: a 3-thread (caller + 2 pool workers),
/// 4-block async solve, exhaustively explored within a preemption
/// bound of 2. Every schedule must reproduce the serial solve bit for
/// bit, keep the commit ledger clean (no lost commit, per-block
/// generations gapless, virtual time monotone, staleness within the
/// Chazan-Miranker skew bound), and satisfy the disjoint-rows write
/// contract under the race oracle.
TEST(VerifyExecutor, ExhaustiveBitIdentityAndCommitLedger) {
  Sys s(8, 2, 1);  // q = 4 blocks
  gpusim::ExecutorOptions o = small_opts();

  Vector xs;
  o.num_workers = 0;
  const gpusim::ExecutorResult serial = run_exec(s, o, xs);
  index_t serial_commits = 0;
  for (const index_t e : serial.block_executions) serial_commits += e;

  o.num_workers = 3;
  CommitLedger ledger(/*num_blocks=*/4,
                      /*staleness_bound=*/o.max_generation_skew);
  o.telemetry.observer = &ledger;

  ExploreOptions opts;
  opts.max_schedules = 150000;  // safety net; expected to exhaust below
  opts.controller.preemption_bound = 2;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    ledger.reset();
    Vector xp;
    const gpusim::ExecutorResult parallel = run_exec(s, o, xp);

    if (xp != xs) {
      c.report_violation("invariant", "parallel x differs from serial");
    }
    if (parallel.residual_history != serial.residual_history ||
        parallel.time_history != serial.time_history ||
        parallel.block_executions != serial.block_executions ||
        parallel.global_iterations != serial.global_iterations ||
        parallel.max_staleness != serial.max_staleness ||
        parallel.status != serial.status) {
      c.report_violation("invariant",
                         "parallel bookkeeping differs from serial");
    }
    if (ledger.total_commits() != serial_commits) {
      c.report_violation("invariant", "commit count differs from serial");
    }
    ledger.report_to(c);  // generation gaps, vt monotonicity, staleness
  });
  EXPECT_TRUE(rep.exhausted)
      << "schedule tree larger than expected: " << rep.summary();
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.schedules, 50u)
      << "suspiciously few schedules - is the seam active?";
}

/// Liveness of the ledger: drop one commit event and the generation
/// sequence check must fire.
class DropFirstCommit final : public telemetry::SolveObserver {
 public:
  explicit DropFirstCommit(telemetry::SolveObserver* sink) : sink_(sink) {}
  void on_block_commit(const telemetry::BlockCommitEvent& ev) override {
    if (!dropped_) {
      dropped_ = true;  // the mutation: one commit vanishes
      return;
    }
    sink_->on_block_commit(ev);
  }
  void reset() { dropped_ = false; }

 private:
  telemetry::SolveObserver* sink_;
  bool dropped_ = false;
};

TEST(VerifyExecutor, MutationDroppedCommitIsCaught) {
  Sys s(8, 2, 1);
  gpusim::ExecutorOptions o = small_opts();
  o.num_workers = 3;
  CommitLedger ledger(4, 0);
  DropFirstCommit mutator(&ledger);
  o.telemetry.observer = &mutator;

  ExploreOptions opts;
  opts.max_schedules = 1;  // one schedule suffices: the check is per-run
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    ledger.reset();
    mutator.reset();
    Vector xp;
    (void)run_exec(s, o, xp);
    ledger.report_to(c);
  });
  ASSERT_FALSE(rep.ok()) << "dropped commit went unnoticed";
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_EQ(rep.failures.front().violations.front().kind, "invariant");
}

/// Liveness of the race oracle through the pool: two tasks whose
/// annotated write ranges overlap (a broken disjoint-rows contract)
/// must be flagged on every schedule that lands them on different
/// threads.
TEST(VerifyExecutor, MutationOverlappingWriteIsCaught) {
  ExploreOptions opts;
  opts.max_schedules = 50000;
  opts.controller.preemption_bound = 2;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    gpusim::WorkerPool pool(2);
    value_t x[3] = {0.0, 0.0, 0.0};
    pool.run(2, [&](index_t task, index_t) {
      // Task 0 claims rows [0, 2), task 1 claims rows [1, 3): row 1
      // overlaps — exactly the bug the executor's disjoint-row batches
      // must never have.
      const std::size_t lo = static_cast<std::size_t>(task);
      BARS_VERIFY_WRITE(&x[lo], 2 * sizeof(value_t), "mutation.overlap");
      x[lo] += 1.0;
      x[lo + 1] += 1.0;
    });
  });
  EXPECT_TRUE(rep.exhausted) << rep.summary();
  EXPECT_GT(rep.total_violations, 0u)
      << "overlapping writes never flagged: " << rep.summary();
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_EQ(rep.failures.front().violations.front().kind, "race");
}

/// thread_async's truly chaotic path cannot be exhausted (its length is
/// schedule-dependent), so it rides seeded random walks with a small
/// step budget: every walk must terminate, stay violation-free, and
/// satisfy the solver's own accounting.
TEST(VerifyExecutor, ThreadAsyncRandomWalks) {
  const Csr a = trefethen(12);
  const Vector b(12, 1.0);

  ExploreOptions opts;
  opts.mode = ExploreMode::kRandomWalk;
  opts.walks = 40;
  opts.seed = 2026;
  opts.controller.max_steps = 400;  // truncate quickly: walks stay cheap
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    ThreadAsyncOptions o;
    o.num_threads = 2;
    o.block_size = 4;  // q = 3 blocks
    o.local_iters = 1;
    o.solve.max_iters = 3;
    o.solve.tol = 1e-12;
    const ThreadAsyncResult r = thread_async_solve(a, b, o);
    index_t total = 0;
    for (const index_t e : r.block_executions) total += e;
    if (total != r.total_block_executions) {
      c.report_violation("invariant", "block execution accounting mismatch");
    }
    if (r.solve.status == SolverStatus::kConverged &&
        r.solve.final_residual > o.solve.tol) {
      c.report_violation("invariant", "converged above tolerance");
    }
  });
  EXPECT_EQ(rep.schedules, 40u);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

}  // namespace
}  // namespace bars::verify

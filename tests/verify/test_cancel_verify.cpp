/// CancelToken under the explorer. The token's contract has two
/// schedule-sensitive clauses: (1) the first request_cancel decides the
/// recorded reason even when requests race, and (2) a child token
/// reads as requested once its parent trips. The request path has a
/// deliberate decision point between the reason CAS and the requested_
/// store (cancel.hpp), so the explorer drives pollers through the
/// window where the winner is decided but requested() still reads
/// false — the invariant `requested() == true implies reason() != kNone`
/// must hold on every schedule anyway.

#include <gtest/gtest.h>

#include <set>

#include "common/cancel.hpp"
#include "common/thread.hpp"
#include "verify/explorer.hpp"

namespace bars::verify {
namespace {

TEST(VerifyCancel, RequestedImpliesReasonOnEverySchedule) {
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    common::CancelToken token;
    common::Thread canceller(
        [&] { token.request_cancel(common::CancelReason::kDeadline); });
    common::Thread poller([&] {
      BARS_VERIFY_YIELD("test.poll");
      if (token.requested() &&
          token.reason() == common::CancelReason::kNone) {
        c.report_violation("invariant", "requested token with no reason");
      }
    });
    canceller.join();
    poller.join();
    if (!token.requested() ||
        token.reason() != common::CancelReason::kDeadline) {
      c.report_violation("invariant", "cancel lost or mislabeled");
    }
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(VerifyCancel, FirstReasonWinsUnderRacingRequests) {
  // Two racing cancels with different reasons: exhaustive exploration
  // must see both winners, and the loser must never relabel the token.
  std::set<common::CancelReason> winners;
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    common::CancelToken token;
    common::Thread user(
        [&] { token.request_cancel(common::CancelReason::kUser); });
    common::Thread deadline(
        [&] { token.request_cancel(common::CancelReason::kDeadline); });
    user.join();
    deadline.join();
    const common::CancelReason r = token.reason();
    if (r != common::CancelReason::kUser &&
        r != common::CancelReason::kDeadline) {
      c.report_violation("invariant", "reason is neither racer's");
    }
    if (!token.requested()) {
      c.report_violation("invariant", "two cancels, token not requested");
    }
    winners.insert(r);
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(winners.size(), 2u) << "exploration never flipped the race";
}

TEST(VerifyCancel, ParentTripsChildOnEverySchedule) {
  // The service's hedging layer hangs attempt tokens off a request
  // token. Whatever the interleaving of trip and poll, once the
  // parent's request completes the child must read requested(), and a
  // child polled mid-trip must never observe requested() without a
  // reason being available through the chain.
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    common::CancelToken parent;
    common::CancelToken child;
    child.set_parent(&parent);
    common::Thread tripper(
        [&] { parent.request_cancel(common::CancelReason::kWatchdog); });
    common::Thread poller([&] {
      BARS_VERIFY_YIELD("test.child_poll");
      if (child.requested() &&
          child.reason() == common::CancelReason::kNone) {
        c.report_violation("invariant", "child requested with no reason");
      }
    });
    tripper.join();
    poller.join();
    if (!child.requested() ||
        child.reason() != common::CancelReason::kWatchdog) {
      c.report_violation("invariant", "parent trip did not reach child");
    }
    // A direct cancel on the child takes precedence for reason():
    // the attempt-local verdict wins over the inherited one.
    child.request_cancel(common::CancelReason::kHedge);
    if (child.reason() != common::CancelReason::kHedge) {
      c.report_violation("invariant", "direct reason lost to parent's");
    }
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

}  // namespace
}  // namespace bars::verify

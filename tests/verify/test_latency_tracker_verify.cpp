/// LatencyTracker under the explorer. The tracker is documented as
/// not thread-safe on its own — the service records and queries under
/// its mutex. These tests machine-check both sides of that contract:
/// mutex-guarded concurrent recording through the ring's wraparound
/// stays invariant-clean on every schedule, and the unguarded variant
/// is flagged as a race by the oracle (so the "guard me" comment in the
/// header is load-bearing, not advisory).

#include <gtest/gtest.h>

#include "common/annotations.hpp"
#include "common/thread.hpp"
#include "service/latency_tracker.hpp"
#include "verify/explorer.hpp"

namespace bars::verify {
namespace {

TEST(VerifyLatencyTracker, GuardedWraparoundOnEverySchedule) {
  // Window 4, six records from two threads: the ring wraps mid-race.
  // On every schedule: size() == window after the wrap, and any
  // percentile lies within [min, max] of the recorded values.
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    service::LatencyTracker lat(4);
    common::Mutex mu;
    const auto record3 = [&](value_t base) {
      for (int i = 0; i < 3; ++i) {
        common::MutexLock lock(mu);
        BARS_VERIFY_WRITE(&lat, sizeof(lat), "test.lat_record");
        lat.record(base + static_cast<value_t>(i));
      }
    };
    common::Thread a([&] { record3(1.0); });
    common::Thread b([&] { record3(10.0); });
    a.join();
    b.join();
    common::MutexLock lock(mu);
    if (lat.size() != 4) {
      c.report_violation("invariant", "ring size wrong after wraparound");
    }
    const value_t p50 = lat.percentile(0.5, -1.0, 4);
    if (p50 < 1.0 || p50 > 12.0) {
      c.report_violation("invariant", "percentile outside recorded range");
    }
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(VerifyLatencyTracker, UnguardedRecordingIsFlagged) {
  // Drop the mutex: the oracle must flag the concurrent record() calls
  // on every schedule — the header's "not thread-safe" clause, machine
  // checked.
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    service::LatencyTracker lat(4);
    const auto record = [&](value_t v) {
      BARS_VERIFY_WRITE(&lat, sizeof(lat), "test.lat_racy");
      lat.record(v);
    };
    common::Thread a([&] { record(1.0); });
    common::Thread b([&] { record(2.0); });
    a.join();
    b.join();
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_EQ(rep.total_violations, rep.schedules) << rep.summary();
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_EQ(rep.failures.front().violations.front().kind, "race");
}

}  // namespace
}  // namespace bars::verify

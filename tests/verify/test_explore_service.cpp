/// SolveService under seeded random-walk exploration: submit/solve,
/// ticket first-wins (cancel racing completion), and shutdown racing
/// queued work. The service's thread count and schedule-dependent run
/// length rule out exhaustive DFS, so these ride reproducible walks
/// with the outcome-accounting identity checked at quiescence after
/// every schedule.
///
/// Hardening features that key off the *real* clock (deadlines,
/// retries with backoff, hedging, the stuck-worker watchdog, chaos)
/// stay off here: under virtual time the wall clock is frozen, so
/// real-clock policies would spin without making progress and their
/// decisions would not replay from a seed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "matrices/generators.hpp"
#include "service/solve_service.hpp"
#include "verify/explorer.hpp"
#include "verify/invariants.hpp"

namespace bars::verify {
namespace {

[[nodiscard]] std::shared_ptr<const Csr> shared_fv(index_t n, value_t rho) {
  return std::make_shared<const Csr>(fv_like(n, rho));
}

[[nodiscard]] service::SolveRequest small_request(
    std::shared_ptr<const Csr> a) {
  service::SolveRequest req;
  req.matrix = std::move(a);
  req.b = Vector(static_cast<std::size_t>(req.matrix->rows()), 1.0);
  req.options.solve.max_iters = 200;
  req.options.solve.tol = 1e-8;
  req.options.block_size = 4;
  req.options.local_iters = 1;
  req.deadline = std::chrono::milliseconds(-1);  // no real-clock deadline
  return req;
}

/// After shutdown the accounting identity must hold on every explored
/// schedule: submitted == sum of terminal outcomes, queue empty.
void check_quiescent_accounting(ScheduleController& c,
                                const service::SolveService& svc) {
  const std::string msg = outcome_accounting_violation(svc.stats());
  if (!msg.empty()) c.report_violation("invariant", msg);
}

TEST(VerifyService, RandomWalkSubmitSolveShutdown) {
  const auto a = shared_fv(8, 0.5);
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandomWalk;
  opts.walks = 20;
  opts.seed = 42;
  opts.controller.max_steps = 4000;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    service::ServiceOptions so;
    so.num_workers = 2;
    service::SolveService svc(so);
    std::vector<std::shared_ptr<service::Ticket>> tickets;
    for (int i = 0; i < 3; ++i) tickets.push_back(svc.submit(small_request(a)));
    std::uint64_t solved = 0;
    for (const auto& t : tickets) {
      const service::SolveResponse& r = t->wait();
      if (r.outcome != service::RequestOutcome::kSolved) {
        c.report_violation("invariant",
                           std::string("unexpected outcome: ") +
                               service::to_string(r.outcome));
      } else {
        ++solved;
      }
    }
    svc.shutdown(true);
    const service::ServiceStats st = svc.stats();
    if (st.solved != solved || st.submitted != 3) {
      c.report_violation("invariant", "solved/submitted counters mismatch");
    }
    check_quiescent_accounting(c, svc);
  });
  EXPECT_EQ(rep.schedules, 20u);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(VerifyService, TicketFirstWinsCancelRacesCompletion) {
  // PR 6's first-wins contract under the explorer: cancel() races the
  // worker's completion. Whatever the schedule, the ticket must settle
  // exactly once, as either kSolved or kCancelled, and the service
  // counters must agree with the outcome the caller observed.
  const auto a = shared_fv(8, 0.5);
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandomWalk;
  opts.walks = 30;
  opts.seed = 7;
  opts.controller.max_steps = 4000;
  std::size_t saw_solved = 0;
  std::size_t saw_cancelled = 0;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    service::ServiceOptions so;
    so.num_workers = 1;
    service::SolveService svc(so);
    auto t = svc.submit(small_request(a));
    t->cancel();
    const service::SolveResponse& r = t->wait();
    svc.shutdown(true);
    const service::ServiceStats st = svc.stats();
    switch (r.outcome) {
      case service::RequestOutcome::kSolved:
        ++saw_solved;
        if (st.solved != 1 || st.cancelled != 0) {
          c.report_violation("invariant", "counters disagree with kSolved");
        }
        break;
      case service::RequestOutcome::kCancelled:
        ++saw_cancelled;
        if (st.cancelled != 1 || st.solved != 0) {
          c.report_violation("invariant", "counters disagree with kCancelled");
        }
        break;
      default:
        c.report_violation("invariant",
                           std::string("unexpected outcome: ") +
                               service::to_string(r.outcome));
    }
    check_quiescent_accounting(c, svc);
  });
  EXPECT_EQ(rep.schedules, 30u);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  // The cancel lands before dispatch on at least some walks (it is
  // issued before the worker can run under the serialized scheduler).
  EXPECT_GT(saw_cancelled, 0u) << "cancel never won a single walk";
}

TEST(VerifyService, ShutdownRacesQueuedWork) {
  // No-drain shutdown with work still queued: every ticket must settle
  // (solved, cancelled-by-shutdown rejection, or mid-solve abort), and
  // the accounting identity must still balance.
  const auto a = shared_fv(8, 0.5);
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandomWalk;
  opts.walks = 20;
  opts.seed = 99;
  opts.controller.max_steps = 4000;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    service::ServiceOptions so;
    so.num_workers = 1;
    service::SolveService svc(so);
    std::vector<std::shared_ptr<service::Ticket>> tickets;
    for (int i = 0; i < 3; ++i) tickets.push_back(svc.submit(small_request(a)));
    svc.shutdown(false);
    for (const auto& t : tickets) {
      const service::SolveResponse& r = t->wait();
      if (r.outcome != service::RequestOutcome::kSolved &&
          r.outcome != service::RequestOutcome::kRejectedShutdown &&
          r.outcome != service::RequestOutcome::kCancelled) {
        c.report_violation("invariant",
                           std::string("unexpected outcome: ") +
                               service::to_string(r.outcome));
      }
    }
    check_quiescent_accounting(c, svc);
  });
  EXPECT_EQ(rep.schedules, 20u);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

}  // namespace
}  // namespace bars::verify

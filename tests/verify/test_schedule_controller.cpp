/// ScheduleController micro-tests: the cooperative scheduler must
/// explore real nondeterminism (interleavings, notify_one targets,
/// timeout arms), the race oracle must flag unsynchronized accesses on
/// *every* schedule, and failing schedules must replay exactly.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread.hpp"
#include "verify/explorer.hpp"
#include "verify/schedule_controller.hpp"

namespace bars::verify {
namespace {

bool has_kind(const std::vector<Violation>& vs, const std::string& kind) {
  for (const Violation& v : vs) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(ScheduleController, SingleThreadBodyRunsWithoutDecisions) {
  int runs = 0;
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    ++runs;
  });
  EXPECT_EQ(rep.schedules, 1u);
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ScheduleController, ExploresBothOrdersOfTwoThreads) {
  // Two threads append to a mutex-protected log; exhaustive exploration
  // must produce both observable orders and no violations.
  std::set<std::string> orders;
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    common::Mutex mu;
    std::string log;
    common::Thread a([&] {
      BARS_VERIFY_YIELD("test.a");
      common::MutexLock lock(mu);
      log += 'a';
    });
    common::Thread b([&] {
      BARS_VERIFY_YIELD("test.b");
      common::MutexLock lock(mu);
      log += 'b';
    });
    a.join();
    b.join();
    orders.insert(log);
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_EQ(orders, (std::set<std::string>{"ab", "ba"}));
}

TEST(ScheduleController, RaceOracleFlagsUnlockedSharedWrite) {
  // Two threads write the same int with no synchronization: the
  // happens-before oracle must flag every schedule, not just the
  // adversarial interleaving.
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    int shared = 0;
    common::Thread a([&] {
      BARS_VERIFY_WRITE(&shared, sizeof(shared), "test.racy_a");
      shared = 1;
    });
    common::Thread b([&] {
      BARS_VERIFY_WRITE(&shared, sizeof(shared), "test.racy_b");
      shared = 2;
    });
    a.join();
    b.join();
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_EQ(rep.total_violations, rep.schedules) << rep.summary();
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_TRUE(has_kind(rep.failures.front().violations, "race"));
}

TEST(ScheduleController, MutexOrderingSuppressesRaceReports) {
  // Same shape, but the accesses are under a lock: the unlock->lock
  // happens-before edge must clear the oracle on every schedule.
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    common::Mutex mu;
    int shared = 0;
    common::Thread a([&] {
      common::MutexLock lock(mu);
      BARS_VERIFY_WRITE(&shared, sizeof(shared), "test.locked_a");
      shared = 1;
    });
    common::Thread b([&] {
      common::MutexLock lock(mu);
      BARS_VERIFY_WRITE(&shared, sizeof(shared), "test.locked_b");
      shared = 2;
    });
    a.join();
    b.join();
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ScheduleController, NotifyAfterUnlockStaysRacy) {
  // The classic bug the no-notify-edge design exists for: publish data,
  // unlock, *then* write more data, then notify. The post-unlock write
  // is unordered with the woken waiter's read.
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    common::Mutex mu;
    common::ConditionVariable cv;
    bool ready = false;
    int payload = 0;
    common::Thread consumer([&] {
      {
        common::MutexLock lock(mu);
        while (!ready) cv.wait(lock);
      }
      BARS_VERIFY_READ(&payload, sizeof(payload), "test.consume");
      (void)payload;
    });
    {
      common::MutexLock lock(mu);
      ready = true;
    }
    BARS_VERIFY_WRITE(&payload, sizeof(payload), "test.late_publish");
    payload = 42;  // after the unlock: nothing orders this with the read
    cv.notify_one();
    consumer.join();
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_GT(rep.total_violations, 0u) << rep.summary();
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_TRUE(has_kind(rep.failures.front().violations, "race"));
}

TEST(ScheduleController, NotifyOneExploresEveryWaiter) {
  // Two waiters on one cv, one notify_one: which waiter consumes the
  // token is a controller decision, so exhaustive exploration must see
  // both winners.
  std::set<int> winners;
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    common::Mutex mu;
    common::ConditionVariable cv;
    int tokens = 0;
    int winner = 0;
    bool stop = false;
    const auto waiter = [&](int who) {
      common::MutexLock lock(mu);
      while (tokens == 0 && !stop) cv.wait(lock);
      if (tokens > 0) {
        --tokens;
        winner = who;
      }
    };
    common::Thread a([&] { waiter(1); });
    common::Thread b([&] { waiter(2); });
    BARS_VERIFY_YIELD("test.let_them_wait");
    {
      common::MutexLock lock(mu);
      tokens = 1;
    }
    cv.notify_one();
    {
      common::MutexLock lock(mu);
      stop = true;
    }
    cv.notify_all();
    a.join();
    b.join();
    winners.insert(winner);
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(winners, (std::set<int>{1, 2}));
}

TEST(ScheduleController, VirtualTimeoutFiresOnQuiescence) {
  // A timed wait nobody signals must time out via the virtual clock —
  // no wall-clock sleeping, and wait_for reports the timeout.
  std::size_t timeouts = 0;
  std::size_t runs = 0;
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    ++runs;
    common::Mutex mu;
    common::ConditionVariable cv;
    bool notified;
    {
      common::MutexLock lock(mu);
      notified = cv.wait_for(lock, std::chrono::hours(24));
    }
    if (!notified) ++timeouts;
    EXPECT_GE(c.virtual_now(), 24.0 * 3600.0);
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(timeouts, runs);
}

TEST(ScheduleController, TimeoutsFireInDeadlineOrder) {
  // Two timed waits with different deadlines, nobody signals: the
  // virtual clock must fire them earliest-first, and advance exactly to
  // each deadline.
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    common::Mutex mu;
    common::ConditionVariable cv;
    std::vector<int> wake_order;
    common::Thread slow([&] {
      common::MutexLock lock(mu);
      (void)cv.wait_for(lock, std::chrono::seconds(2));
      wake_order.push_back(2);
    });
    common::Thread fast([&] {
      common::MutexLock lock(mu);
      (void)cv.wait_for(lock, std::chrono::seconds(1));
      wake_order.push_back(1);
    });
    slow.join();
    fast.join();
    if (wake_order != std::vector<int>{1, 2}) {
      c.report_violation("invariant", "timeouts fired out of deadline order");
    }
    EXPECT_GE(c.virtual_now(), 2.0);
  });
  EXPECT_TRUE(rep.exhausted);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ScheduleController, LockDisciplineViolationReported) {
  ExploreOptions opts;
  opts.max_schedules = 1;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    common::Mutex mu;
    common::Thread t([&] {
      mu.lock();  // exits without unlocking
    });
    t.join();
    mu.unlock();  // and the parent unlocks a mutex it never took
  });
  EXPECT_FALSE(rep.ok());
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_TRUE(has_kind(rep.failures.front().violations, "lock-discipline"));
}

TEST(ScheduleController, FailingTrailReplaysIdentically) {
  const auto body = [](ScheduleController&) {
    int shared = 0;
    common::Mutex mu;
    common::Thread a([&] {
      BARS_VERIFY_WRITE(&shared, sizeof(shared), "test.replay_a");
      shared = 1;
    });
    common::Thread b([&] {
      common::MutexLock lock(mu);
      BARS_VERIFY_WRITE(&shared, sizeof(shared), "test.replay_b");
      shared = 2;
    });
    a.join();
    b.join();
  };
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, body);
  ASSERT_FALSE(rep.failures.empty()) << rep.summary();
  const FailingSchedule& f = rep.failures.front();
  const std::vector<Violation> again =
      replay_trail(f.trail, opts.controller, body);
  ASSERT_EQ(again.size(), f.violations.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].kind, f.violations[i].kind);
    EXPECT_EQ(again[i].detail, f.violations[i].detail);
  }
}

TEST(ScheduleController, RandomWalksAreSeedDeterministic) {
  const auto body = [](ScheduleController& c) {
    common::Mutex mu;
    int order = 0;
    std::vector<int> seen;
    const auto worker = [&](int who) {
      BARS_VERIFY_YIELD("test.walk");
      common::MutexLock lock(mu);
      seen.push_back(who);
      ++order;
    };
    common::Thread a([&] { worker(1); });
    common::Thread b([&] { worker(2); });
    common::Thread d([&] { worker(3); });
    a.join();
    b.join();
    d.join();
    if (seen.size() != 3) {
      c.report_violation("invariant", "lost worker");
    }
  };
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandomWalk;
  opts.walks = 50;
  opts.seed = 1234;
  const ExploreReport r1 = explore(opts, body);
  const ExploreReport r2 = explore(opts, body);
  EXPECT_TRUE(r1.ok()) << r1.summary();
  EXPECT_EQ(r1.schedules, 50u);
  EXPECT_EQ(r1.decisions, r2.decisions);  // same seeds, same walks
}

}  // namespace
}  // namespace bars::verify

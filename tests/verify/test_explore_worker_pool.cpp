/// WorkerPool under the schedule explorer: every cooperative
/// interleaving of the fork-join protocol must execute each task
/// exactly once, survive reuse and immediate shutdown, and stay free of
/// races and lock-discipline violations.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpusim/worker_pool.hpp"
#include "verify/explorer.hpp"

namespace bars::verify {
namespace {

TEST(VerifyWorkerPool, ExhaustiveEveryTaskExactlyOnce) {
  ExploreOptions opts;
  opts.max_schedules = 200000;  // safety net; expected to exhaust far below
  opts.controller.preemption_bound = 2;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    gpusim::WorkerPool pool(3);
    std::vector<int> hits(4, 0);
    std::atomic<int> total{0};
    pool.run(4, [&](index_t task, index_t /*worker*/) {
      // Distinct tasks touch distinct slots; the cursor contract makes
      // this race-free, which the oracle cross-checks.
      BARS_VERIFY_WRITE(&hits[static_cast<std::size_t>(task)], sizeof(int),
                        "test.task_slot");
      ++hits[static_cast<std::size_t>(task)];
      total.fetch_add(1, std::memory_order_relaxed);
    });
    for (int h : hits) {
      if (h != 1) c.report_violation("invariant", "task not run exactly once");
    }
    if (total.load() != 4) {
      c.report_violation("invariant", "task count mismatch");
    }
  });
  EXPECT_TRUE(rep.exhausted)
      << "schedule tree larger than expected: " << rep.summary();
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.schedules, 10u);
}

TEST(VerifyWorkerPool, ExhaustiveReuseAcrossBatches) {
  // Two consecutive batches through one pool: the generation handshake
  // must keep stale wakers away from the second batch's cursor on every
  // schedule.
  ExploreOptions opts;
  opts.max_schedules = 200000;
  opts.controller.preemption_bound = 2;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    gpusim::WorkerPool pool(2);
    long long sum = 0;
    common::Mutex mu;
    for (int round = 0; round < 2; ++round) {
      pool.run(2, [&](index_t task, index_t) {
        common::MutexLock lock(mu);
        sum += task + 1;
      });
    }
    if (sum != 6) c.report_violation("invariant", "batch sum mismatch");
  });
  EXPECT_TRUE(rep.exhausted) << rep.summary();
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(VerifyWorkerPool, ConstructDestructRace) {
  // Tear the pool down immediately: workers may still be parking when
  // shutdown broadcasts. No schedule may deadlock or leak a thread
  // (run() would abort the exploration if one did).
  ExploreOptions opts;
  const ExploreReport rep = explore(opts, [&](ScheduleController&) {
    gpusim::WorkerPool pool(3);
  });
  EXPECT_TRUE(rep.exhausted) << rep.summary();
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(VerifyWorkerPool, RandomWalksOnWiderPool) {
  // Too many threads for exhaustive coverage: seeded walks must stay
  // clean and reproducible.
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandomWalk;
  opts.walks = 200;
  opts.seed = 77;
  const ExploreReport rep = explore(opts, [&](ScheduleController& c) {
    gpusim::WorkerPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 2; ++round) {
      pool.run(5, [&](index_t, index_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
    if (total.load() != 10) {
      c.report_violation("invariant", "task count mismatch");
    }
  });
  EXPECT_EQ(rep.schedules, 200u);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

}  // namespace
}  // namespace bars::verify

/// Tests for adaptive per-block local iteration counts.

#include <gtest/gtest.h>

#include "core/block_async.hpp"
#include "core/block_jacobi_kernel.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(AdaptiveLocal, HeuristicBoundsAndMonotonicity) {
  const Csr a = fv_like(16, 0.4);
  const RowPartition part = RowPartition::uniform(a.rows(), 64);
  const auto counts = adaptive_local_iter_counts(a, part, 5);
  ASSERT_EQ(static_cast<index_t>(counts.size()), part.num_blocks());
  for (index_t k : counts) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 5);
  }
}

TEST(AdaptiveLocal, ChemLikeBlocksGetOneSweep) {
  // All off-diagonal mass is off-block => f_b = 0 => k_b = 1 everywhere.
  const Csr a = chem97ztz_like(256, 0.6, /*diag_spread=*/1.0);
  const RowPartition part = RowPartition::uniform(a.rows(), 64);
  const auto counts = adaptive_local_iter_counts(a, part, 5);
  for (index_t k : counts) EXPECT_EQ(k, 1);
}

TEST(AdaptiveLocal, SingleBlockGetsMaxSweeps) {
  // Everything in-block => f = 1 => k = max_k.
  const Csr a = fv_like(8, 0.5);
  const RowPartition part = RowPartition::uniform(a.rows(), a.rows());
  const auto counts = adaptive_local_iter_counts(a, part, 7);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 7);
}

TEST(AdaptiveLocal, KernelUsesPerBlockCounts) {
  const Csr a = poisson1d(12);
  const Vector b(12, 1.0);
  BlockJacobiKernel k(a, b, RowPartition::uniform(12, 4), 5);
  EXPECT_EQ(k.block_local_iters(0), 5);
  k.set_per_block_iters({1, 2, 3});
  EXPECT_EQ(k.block_local_iters(0), 1);
  EXPECT_EQ(k.block_local_iters(2), 3);
  EXPECT_THROW(k.set_per_block_iters({1, 2}), std::invalid_argument);
  EXPECT_THROW(k.set_per_block_iters({1, 0, 2}), std::invalid_argument);
}

TEST(AdaptiveLocal, SolveStillCorrect) {
  const Csr a = fv_like(10, 0.6);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.2 + 0.03 * double(i);
  BlockAsyncOptions o;
  o.block_size = 25;
  o.local_iters = 5;
  o.adaptive_local_iters = true;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-12;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  ASSERT_TRUE(r.solve.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(r.solve.x[i], xd[i], 1e-9);
  }
}

TEST(AdaptiveLocal, MatchesUniformOnChemStructure) {
  // Where sweeps cannot help, adaptive (all 1s) must converge in the
  // same number of global iterations as uniform async-(5).
  const Csr a = chem97ztz_like(600, 0.7, /*diag_spread=*/1.0);
  const Vector b(600, 1.0);
  BlockAsyncOptions u;
  u.block_size = 128;
  u.local_iters = 5;
  u.solve.max_iters = 2000;
  u.solve.tol = 1e-10;
  BlockAsyncOptions ad = u;
  ad.adaptive_local_iters = true;
  const auto ru = block_async_solve(a, b, u);
  const auto ra = block_async_solve(a, b, ad);
  ASSERT_TRUE(ru.solve.ok());
  ASSERT_TRUE(ra.solve.ok());
  const double ratio = static_cast<double>(ra.solve.iterations) /
                       static_cast<double>(ru.solve.iterations);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(AdaptiveLocal, RejectsBadMaxK) {
  const Csr a = poisson1d(8);
  EXPECT_THROW((void)adaptive_local_iter_counts(
                   a, RowPartition::uniform(8, 4), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

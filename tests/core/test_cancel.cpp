#include "common/cancel.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/registry.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(CancelToken, FirstReasonWins) {
  common::CancelToken t;
  EXPECT_FALSE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kNone);

  t.request_cancel(common::CancelReason::kDeadline);
  EXPECT_TRUE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kDeadline);

  // A later request cannot relabel the abort.
  t.request_cancel(common::CancelReason::kUser);
  EXPECT_EQ(t.reason(), common::CancelReason::kDeadline);
}

TEST(CancelToken, ResetRearms) {
  common::CancelToken t;
  t.request_cancel();
  EXPECT_TRUE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kUser);
  t.reset();
  EXPECT_FALSE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kNone);
}

TEST(CancelToken, NullSafeHelper) {
  EXPECT_FALSE(common::cancel_requested(nullptr));
  common::CancelToken t;
  EXPECT_FALSE(common::cancel_requested(&t));
  t.request_cancel();
  EXPECT_TRUE(common::cancel_requested(&t));
}

/// Every registry solver must honor SolveOptions::cancel: with a
/// pre-tripped token and an unreachable tolerance, the solve exits
/// kAborted at its first iteration boundary instead of burning through
/// max_iters.
class CancelAllSolvers : public ::testing::TestWithParam<std::string> {};

TEST_P(CancelAllSolvers, PreTrippedTokenAbortsPromptly) {
  // 15 = 2^4 - 1 so the multigrid entries can build a hierarchy.
  const Csr a = fv_like(15, 0.8);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  common::CancelToken token;
  token.request_cancel();

  RegistrySolveOptions o;
  o.solve.max_iters = 50000;
  o.solve.tol = 1e-300;  // unreachable: nothing converges before the poll
  o.solve.cancel = &token;
  o.block_size = 32;
  o.local_iters = 2;
  o.num_threads = 2;
  const SolveResult r = find_solver(GetParam())(a, b, o);
  EXPECT_EQ(r.status, SolverStatus::kAborted) << GetParam();
  // Aborted at an early iteration boundary, not after max_iters.
  EXPECT_LT(r.iterations, 100) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, CancelAllSolvers, ::testing::ValuesIn(solver_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Cancel, ConvergenceBeatsCancellation) {
  // Cancellation never downgrades a solve whose iterate already passes
  // the tolerance test: every solver checks convergence before polling
  // the token. With a tolerance the initial iterate already satisfies
  // (x0 = 0 starts at relative residual 1.0), even a pre-tripped token
  // yields kConverged.
  const Csr a = fv_like(8, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  common::CancelToken token;
  token.request_cancel();
  RegistrySolveOptions o;
  o.solve.max_iters = 1000;
  o.solve.tol = 1.0;
  o.solve.cancel = &token;
  const SolveResult r = find_solver("jacobi")(a, b, o);
  EXPECT_EQ(r.status, SolverStatus::kConverged);
  EXPECT_LE(r.final_residual, 1.0);
}

}  // namespace
}  // namespace bars

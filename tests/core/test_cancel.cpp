#include "common/cancel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(CancelToken, FirstReasonWins) {
  common::CancelToken t;
  EXPECT_FALSE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kNone);

  t.request_cancel(common::CancelReason::kDeadline);
  EXPECT_TRUE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kDeadline);

  // A later request cannot relabel the abort.
  t.request_cancel(common::CancelReason::kUser);
  EXPECT_EQ(t.reason(), common::CancelReason::kDeadline);
}

TEST(CancelToken, ResetRearms) {
  common::CancelToken t;
  t.request_cancel();
  EXPECT_TRUE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kUser);
  t.reset();
  EXPECT_FALSE(t.requested());
  EXPECT_EQ(t.reason(), common::CancelReason::kNone);
}

TEST(CancelToken, ParentLinkPropagatesRequestAndReason) {
  common::CancelToken parent;
  common::CancelToken attempt;
  attempt.set_parent(&parent);
  EXPECT_FALSE(attempt.requested());

  // Request-level cancel reaches the attempt; the attempt reports the
  // parent's reason because it was never tripped directly.
  parent.request_cancel(common::CancelReason::kUser);
  EXPECT_TRUE(attempt.requested());
  EXPECT_EQ(attempt.reason(), common::CancelReason::kUser);
  EXPECT_FALSE(parent.requested() && attempt.reason() !=
               common::CancelReason::kUser);

  // A directly-tripped attempt reports its own reason even though the
  // parent tripped first — the attempt-local verdict wins.
  attempt.request_cancel(common::CancelReason::kDeadline);
  EXPECT_EQ(attempt.reason(), common::CancelReason::kDeadline);
  EXPECT_EQ(parent.reason(), common::CancelReason::kUser);

  // reset() re-arms the attempt but keeps the parent link.
  attempt.reset();
  EXPECT_TRUE(attempt.requested());  // parent still tripped
  EXPECT_EQ(attempt.reason(), common::CancelReason::kUser);
}

TEST(CancelToken, ParentLinkLeavesSiblingsIndependent) {
  common::CancelToken parent;
  common::CancelToken a;
  common::CancelToken b;
  a.set_parent(&parent);
  b.set_parent(&parent);

  a.request_cancel(common::CancelReason::kHedge);
  EXPECT_TRUE(a.requested());
  EXPECT_FALSE(b.requested());
  EXPECT_FALSE(parent.requested());
  EXPECT_EQ(b.reason(), common::CancelReason::kNone);
}

// Many threads race distinct reasons into one token: exactly one reason
// must win, every thread must observe the token requested afterwards,
// and the winner must be the reason some thread actually submitted.
// Run under TSan in CI (suite name is in the TSan filter).
TEST(CancelTokenConcurrent, FirstReasonWinsUnderContention) {
  static constexpr std::array<common::CancelReason, 4> kReasons = {
      common::CancelReason::kUser, common::CancelReason::kDeadline,
      common::CancelReason::kWatchdog, common::CancelReason::kHedge};
  for (int round = 0; round < 200; ++round) {
    common::CancelToken t;
    std::atomic<int> start{0};
    std::vector<std::thread> threads;
    threads.reserve(kReasons.size());
    for (const common::CancelReason r : kReasons) {
      threads.emplace_back([&t, &start, r] {
        start.fetch_add(1);
        while (start.load() < static_cast<int>(kReasons.size())) {
        }
        t.request_cancel(r);
        EXPECT_TRUE(t.requested());
      });
    }
    for (std::thread& th : threads) th.join();
    const common::CancelReason winner = t.reason();
    EXPECT_TRUE(winner == common::CancelReason::kUser ||
                winner == common::CancelReason::kDeadline ||
                winner == common::CancelReason::kWatchdog ||
                winner == common::CancelReason::kHedge);
    // Once settled, the reason is stable.
    t.request_cancel(common::CancelReason::kUser);
    EXPECT_EQ(t.reason(), winner);
  }
}

TEST(CancelTokenConcurrent, ParentTripRacesAttemptPolls) {
  common::CancelToken parent;
  common::CancelToken attempt;
  attempt.set_parent(&parent);
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!attempt.requested() && !stop.load()) {
    }
    EXPECT_TRUE(attempt.requested());
  });
  parent.request_cancel(common::CancelReason::kDeadline);
  poller.join();
  stop.store(true);
  EXPECT_EQ(attempt.reason(), common::CancelReason::kDeadline);
}

TEST(CancelToken, NullSafeHelper) {
  EXPECT_FALSE(common::cancel_requested(nullptr));
  common::CancelToken t;
  EXPECT_FALSE(common::cancel_requested(&t));
  t.request_cancel();
  EXPECT_TRUE(common::cancel_requested(&t));
}

/// Every registry solver must honor SolveOptions::cancel: with a
/// pre-tripped token and an unreachable tolerance, the solve exits
/// kAborted at its first iteration boundary instead of burning through
/// max_iters.
class CancelAllSolvers : public ::testing::TestWithParam<std::string> {};

TEST_P(CancelAllSolvers, PreTrippedTokenAbortsPromptly) {
  // 15 = 2^4 - 1 so the multigrid entries can build a hierarchy.
  const Csr a = fv_like(15, 0.8);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  common::CancelToken token;
  token.request_cancel();

  RegistrySolveOptions o;
  o.solve.max_iters = 50000;
  o.solve.tol = 1e-300;  // unreachable: nothing converges before the poll
  o.solve.cancel = &token;
  o.block_size = 32;
  o.local_iters = 2;
  o.num_threads = 2;
  const SolveResult r = find_solver(GetParam())(a, b, o);
  EXPECT_EQ(r.status, SolverStatus::kAborted) << GetParam();
  // Aborted at an early iteration boundary, not after max_iters.
  EXPECT_LT(r.iterations, 100) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, CancelAllSolvers, ::testing::ValuesIn(solver_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Cancel, ConvergenceBeatsCancellation) {
  // Cancellation never downgrades a solve whose iterate already passes
  // the tolerance test: every solver checks convergence before polling
  // the token. With a tolerance the initial iterate already satisfies
  // (x0 = 0 starts at relative residual 1.0), even a pre-tripped token
  // yields kConverged.
  const Csr a = fv_like(8, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  common::CancelToken token;
  token.request_cancel();
  RegistrySolveOptions o;
  o.solve.max_iters = 1000;
  o.solve.tol = 1.0;
  o.solve.cancel = &token;
  const SolveResult r = find_solver("jacobi")(a, b, o);
  EXPECT_EQ(r.status, SolverStatus::kConverged);
  EXPECT_LE(r.final_residual, 1.0);
}

}  // namespace
}  // namespace bars

#include "core/nonlinear.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/jacobi.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(NonlinearJacobi, ZeroNonlinearityMatchesLinearJacobi) {
  const Csr a = fv_like(8, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions o;
  o.max_iters = 40;
  o.tol = 0.0;
  const SolveResult lin = jacobi_solve(a, b, o);
  const SolveResult non =
      nonlinear_jacobi_solve(a, b, zero_nonlinearity(), o);
  ASSERT_EQ(lin.residual_history.size(), non.residual_history.size());
  for (std::size_t i = 0; i < lin.residual_history.size(); ++i) {
    EXPECT_NEAR(lin.residual_history[i], non.residual_history[i], 1e-13);
  }
}

TEST(NonlinearJacobi, SolvesCubicReactionSystem) {
  const Csr a = fv_like(8, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto phi = cubic_nonlinearity(0.5);
  SolveOptions o;
  o.max_iters = 5000;
  o.tol = 1e-12;
  const SolveResult r = nonlinear_jacobi_solve(a, b, phi, o);
  ASSERT_TRUE(r.ok());
  // Verify the nonlinear equation holds component-wise.
  Vector ax(b.size());
  a.spmv(r.x, ax);
  for (std::size_t i = 0; i < b.size(); ++i) {
    const value_t res =
        b[i] - ax[i] - phi.value(static_cast<index_t>(i), r.x[i]);
    EXPECT_NEAR(res, 0.0, 1e-10);
  }
}

TEST(NonlinearAsync, MatchesSynchronousSolution) {
  const Csr a = fv_like(10, 0.6);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.5 + 0.01 * double(i);
  const auto phi = cubic_nonlinearity(0.3);

  SolveOptions so;
  so.max_iters = 5000;
  so.tol = 1e-12;
  const SolveResult sync = nonlinear_jacobi_solve(a, b, phi, so);
  ASSERT_TRUE(sync.ok());

  NonlinearAsyncOptions ao;
  ao.block_size = 25;
  ao.local_iters = 3;
  ao.solve = so;
  const NonlinearAsyncResult async =
      nonlinear_block_async_solve(a, b, phi, ao);
  ASSERT_TRUE(async.solve.ok());
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(async.solve.x[i], sync.x[i], 1e-9);
  }
}

TEST(NonlinearAsync, LocalItersAccelerate) {
  const Csr a = fv_like(12, 0.4);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto phi = exponential_nonlinearity(0.2);
  index_t prev = 1 << 30;
  for (index_t k : {1, 3, 6}) {
    NonlinearAsyncOptions o;
    o.block_size = 48;
    o.local_iters = k;
    o.solve.max_iters = 3000;
    o.solve.tol = 1e-10;
    const NonlinearAsyncResult r = nonlinear_block_async_solve(a, b, phi, o);
    ASSERT_TRUE(r.solve.ok()) << k;
    EXPECT_LE(r.solve.iterations, prev) << k;
    prev = r.solve.iterations;
  }
}

TEST(NonlinearAsync, ConvergesAcrossSeeds) {
  const Csr a = trefethen(150);
  const Vector b(150, 1.0);
  const auto phi = cubic_nonlinearity(0.1);
  for (std::uint64_t seed : {3ull, 33ull, 333ull}) {
    NonlinearAsyncOptions o;
    o.block_size = 32;
    o.local_iters = 2;
    o.seed = seed;
    o.solve.max_iters = 2000;
    o.solve.tol = 1e-11;
    const NonlinearAsyncResult r = nonlinear_block_async_solve(a, b, phi, o);
    EXPECT_TRUE(r.solve.ok()) << seed;
  }
}

TEST(NonlinearAsync, DampingStabilizesStiffNonlinearity) {
  const Csr a = fv_like(8, 0.3);
  const Vector b(static_cast<std::size_t>(a.rows()), 3.0);
  const auto phi = exponential_nonlinearity(1.0);  // stiff
  NonlinearAsyncOptions o;
  o.block_size = 32;
  o.local_iters = 2;
  o.damping = 0.7;
  o.solve.max_iters = 5000;
  o.solve.tol = 1e-10;
  const NonlinearAsyncResult r = nonlinear_block_async_solve(a, b, phi, o);
  EXPECT_TRUE(r.solve.ok());
}

TEST(NonlinearAsync, RejectsBadArguments) {
  const Csr a = poisson1d(4);
  const Vector b(4, 1.0);
  DiagonalNonlinearity empty;
  EXPECT_THROW((void)nonlinear_block_async_solve(a, b, empty),
               std::invalid_argument);
  NonlinearAsyncOptions o;
  o.damping = 0.0;
  EXPECT_THROW(
      (void)nonlinear_block_async_solve(a, b, zero_nonlinearity(), o),
      std::invalid_argument);
  EXPECT_THROW((void)nonlinear_jacobi_solve(a, b, zero_nonlinearity(), {},
                                            /*damping=*/1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

#include "core/silent_error.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eigen/power_iteration.hpp"
#include "matrices/generators.hpp"
#include "stats/convergence.hpp"

namespace bars {
namespace {

std::vector<value_t> geometric(value_t start, value_t ratio, int n) {
  std::vector<value_t> h;
  value_t v = start;
  for (int i = 0; i < n; ++i) {
    h.push_back(v);
    v *= ratio;
  }
  return h;
}

TEST(Detector, CleanGeometricHistoryNotFlagged) {
  const auto rep = detect_silent_error(geometric(1.0, 0.5, 40));
  EXPECT_FALSE(rep.detected);
}

TEST(Detector, JumpFlagged) {
  auto h = geometric(1.0, 0.5, 20);
  h.push_back(h.back() * 1e5);  // corruption spike
  for (int i = 0; i < 5; ++i) h.push_back(h.back() * 0.5);
  const auto rep = detect_silent_error(h);
  ASSERT_TRUE(rep.detected);
  EXPECT_EQ(rep.at_iteration, 20);
  EXPECT_GT(rep.jump_ratio, 1e4);
}

TEST(Detector, StallFlagged) {
  auto h = geometric(1.0, 0.5, 15);
  for (int i = 0; i < 15; ++i) h.push_back(h.back());  // stagnation
  const auto rep = detect_silent_error(h);
  EXPECT_TRUE(rep.detected);
}

TEST(Detector, NanFlagged) {
  auto h = geometric(1.0, 0.5, 8);
  h.push_back(std::nan(""));
  EXPECT_TRUE(detect_silent_error(h).detected);
}

TEST(Detector, RoundingFloorNotFlagged) {
  auto h = geometric(1.0, 0.1, 16);        // down to 1e-15
  for (int i = 0; i < 20; ++i) h.push_back(8e-16);  // plateau at floor
  EXPECT_FALSE(detect_silent_error(h).detected);
}

TEST(Detector, ShortHistoryNotFlagged) {
  EXPECT_FALSE(detect_silent_error({1.0}).detected);
  EXPECT_FALSE(detect_silent_error({}).detected);
}

TEST(Detector, HistoryEntirelyAtFloorNotFlagged) {
  // A run that starts (and stays) at the rounding floor offers nothing
  // to judge; it must not be reported as a stall.
  const std::vector<value_t> h(30, 5e-14);
  EXPECT_FALSE(detect_silent_error(h).detected);
}

TEST(Detector, WarmupLongerThanHistoryNotFlagged) {
  DetectorOptions o;
  o.warmup = 100;
  auto h = geometric(1.0, 0.5, 10);
  h.push_back(h.back() * 1e6);  // jump inside the warmup window
  EXPECT_FALSE(detect_silent_error(h, o).detected);
}

TEST(Detector, DegenerateOptionsAreSafe) {
  // Negative warmup / stall_window clamp to "never arm that check"
  // rather than UB; a clean decay stays clean, an obvious jump is
  // still caught once warmup (clamped to 0) has passed.
  DetectorOptions o;
  o.warmup = -5;
  o.stall_window = -1;
  EXPECT_FALSE(detect_silent_error(geometric(1.0, 0.5, 20), o).detected);
  auto h = geometric(1.0, 0.5, 10);
  h.push_back(h.back() * 1e6);
  EXPECT_TRUE(detect_silent_error(h, o).detected);
}

TEST(Detector, NonPositiveSamplesSkippedNotFlagged) {
  // An exact zero residual (direct hit of the solution) is not an
  // anomaly.
  std::vector<value_t> h = geometric(1.0, 0.5, 10);
  h.push_back(0.0);
  h.push_back(0.0);
  EXPECT_FALSE(detect_silent_error(h).detected);
}

TEST(SdcRun, CleanRunNotFlaggedAndConverges) {
  const Csr a = fv_like(16, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.block_size = 64;
  o.local_iters = 5;
  o.solve.max_iters = 500;
  o.solve.tol = 1e-12;
  const SdcRunResult r = block_async_solve_with_sdc(a, b, o, std::nullopt);
  EXPECT_TRUE(r.solve.solve.ok());
  EXPECT_FALSE(r.report.detected);
}

TEST(SdcRun, CorruptionDetectedAsJump) {
  const Csr a = fv_like(16, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.block_size = 64;
  o.local_iters = 5;
  o.solve.max_iters = 500;
  o.solve.tol = 1e-12;
  SilentErrorPlan sdc;
  sdc.at = 8;
  sdc.magnitude = 1e8;
  const SdcRunResult r = block_async_solve_with_sdc(a, b, o, sdc);
  ASSERT_TRUE(r.report.detected);
  EXPECT_NEAR(static_cast<double>(r.report.at_iteration), 9.0, 2.0);
  EXPECT_GT(r.report.jump_ratio, 100.0);
}

TEST(SdcRun, SolverHealsAfterCorruption) {
  // The asynchronous iteration is self-stabilizing: once corrupted
  // values are relaxed away, it still converges to the true solution
  // (this is *why* silent errors need detection — they only cost time).
  const Csr a = fv_like(16, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.block_size = 64;
  o.local_iters = 5;
  o.solve.max_iters = 1000;
  o.solve.tol = 1e-12;
  SilentErrorPlan sdc;
  sdc.at = 8;
  sdc.magnitude = 1e8;
  const SdcRunResult r = block_async_solve_with_sdc(a, b, o, sdc);
  EXPECT_TRUE(r.solve.solve.ok());
  EXPECT_LE(relative_residual(a, b, r.solve.solve.x), 1e-11);
}

TEST(SdcRun, RejectsBadComponent) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  SilentErrorPlan sdc;
  sdc.component = 99;
  EXPECT_THROW((void)block_async_solve_with_sdc(a, b, {}, sdc),
               std::invalid_argument);
}

TEST(AsyncRateBound, MeasuredRateBeatsWorstCase) {
  // Chazan-Miranker envelope: any schedule with bounded shift s
  // contracts at least as fast as rho(|B|)^{1/(1+s)} asymptotically.
  const Csr a = trefethen(300);
  const Vector b(300, 1.0);
  const value_t rho_abs = async_spectral_radius(a).value;
  BlockAsyncOptions o;
  o.block_size = 64;
  o.local_iters = 1;
  o.solve.max_iters = 200;
  o.solve.tol = 0.0;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  const value_t measured = contraction_factor(r.solve.residual_history, 80);
  const value_t bound =
      async_worst_case_rate(rho_abs, r.max_staleness);
  EXPECT_GT(measured, 0.0);
  EXPECT_LE(measured, bound + 0.02);
}

TEST(AsyncRateBound, Formula) {
  EXPECT_DOUBLE_EQ(async_worst_case_rate(0.81, 0), 0.81);
  EXPECT_NEAR(async_worst_case_rate(0.64, 1), 0.8, 1e-12);
  EXPECT_THROW((void)async_worst_case_rate(-0.1, 0), std::invalid_argument);
  EXPECT_THROW((void)async_worst_case_rate(0.5, -1), std::invalid_argument);
}

}  // namespace
}  // namespace bars

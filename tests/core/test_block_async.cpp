#include "core/block_async.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "backend/block_jacobi_kernel.hpp"
#include "core/gauss_seidel.hpp"
#include "core/jacobi.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(BlockAsync, ConvergesOnFvLike) {
  const Csr a = fv_like(16, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.block_size = 32;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-12;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
  EXPECT_LE(relative_residual(a, b, r.solve.x), 1e-12);
}

TEST(BlockAsync, SolutionMatchesDirectSolve) {
  const Csr a = fv_like(10, 0.6);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.3 * double(i));
  BlockAsyncOptions o;
  o.block_size = 25;
  o.local_iters = 3;
  o.solve.max_iters = 3000;
  o.solve.tol = 1e-13;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  ASSERT_TRUE(r.solve.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(r.solve.x[i], xd[i], 1e-9);
  }
}

TEST(BlockAsync, Async1RateSimilarToJacobi) {
  // Paper Fig. 6: async-(1) converges at roughly the Jacobi rate.
  const Csr a = fv_like(24, 0.3);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions so;
  so.max_iters = 5000;
  so.tol = 1e-10;
  const SolveResult jac = jacobi_solve(a, b, so);
  BlockAsyncOptions o;
  o.solve = so;
  o.block_size = 64;
  o.local_iters = 1;
  const BlockAsyncResult as = block_async_solve(a, b, o);
  ASSERT_TRUE(jac.ok());
  ASSERT_TRUE(as.solve.ok());
  const double ratio = static_cast<double>(as.solve.iterations) /
                       static_cast<double>(jac.iterations);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 1.6);
}

TEST(BlockAsync, Async5BeatsGaussSeidelPerGlobalIteration) {
  // Paper Fig. 7b-d: on fv-type systems async-(5) converges in fewer
  // global iterations than Gauss-Seidel.
  const Csr a = fv_like(31, 0.25);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions so;
  so.max_iters = 10000;
  so.tol = 1e-10;
  const SolveResult gs = gauss_seidel_solve(a, b, so);
  BlockAsyncOptions o;
  o.solve = so;
  o.block_size = 128;
  o.local_iters = 5;
  const BlockAsyncResult as = block_async_solve(a, b, o);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(as.solve.ok());
  EXPECT_LT(as.solve.iterations, gs.iterations);
}

TEST(BlockAsync, MoreLocalItersFewerGlobalIters) {
  const Csr a = fv_like(20, 0.4);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.solve.max_iters = 5000;
  o.solve.tol = 1e-10;
  o.block_size = 100;
  index_t prev = 0;
  for (index_t k : {1, 3, 5}) {
    o.local_iters = k;
    const BlockAsyncResult r = block_async_solve(a, b, o);
    ASSERT_TRUE(r.solve.ok()) << "k=" << k;
    if (prev > 0) EXPECT_LT(r.solve.iterations, prev) << "k=" << k;
    prev = r.solve.iterations;
  }
}

TEST(BlockAsync, DivergesOnStructuralLike) {
  const index_t m = 12;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.block_size = 36;
  o.solve.max_iters = 3000;
  o.solve.divergence_limit = 1e10;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.status == bars::SolverStatus::kDiverged);
}

TEST(BlockAsync, VirtualTimeUsesCalibration) {
  const Csr a = fv_like(16, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.matrix_name = "fv1";
  o.local_iters = 5;
  o.block_size = 64;
  o.solve.max_iters = 20;
  o.solve.tol = 0.0;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  ASSERT_GE(r.solve.time_history.size(), 2u);
  // Global iteration time for fv1 async-(5) is ~13 ms (Table 4/5 scale).
  const value_t per_iter =
      r.solve.time_history.back() /
      static_cast<value_t>(r.solve.time_history.size() - 1);
  EXPECT_NEAR(per_iter, 0.0129, 0.005);
}

TEST(BlockAsync, SeedReproducibility) {
  const Csr a = trefethen(200);
  const Vector b(200, 1.0);
  BlockAsyncOptions o;
  o.block_size = 32;
  o.seed = 4242;
  o.solve.max_iters = 30;
  o.solve.tol = 0.0;
  const auto r1 = block_async_solve(a, b, o);
  const auto r2 = block_async_solve(a, b, o);
  EXPECT_EQ(r1.solve.x, r2.solve.x);
}

TEST(BlockAsync, VariationAcrossSeedsLargerForOffBlockHeavyMatrix) {
  // Paper Section 4.1: run-to-run variation is much larger for
  // Trefethen-type (large off-block mass) than fv-type matrices.
  const auto spread = [](const Csr& a, index_t iters) {
    const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
    value_t lo = 1e300, hi = 0.0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      BlockAsyncOptions o;
      o.block_size = 400;
      o.local_iters = 5;
      o.seed = seed;
      o.solve.max_iters = iters;
      o.solve.tol = 0.0;
      const auto r = block_async_solve(a, b, o);
      const value_t res = r.solve.final_residual;
      lo = std::min(lo, res);
      hi = std::max(hi, res);
    }
    return (hi - lo) / hi;
  };
  // Larger instances so the block decomposition is representative: for
  // the fv grid almost everything is inside the 400-row blocks, for
  // Trefethen the power-of-two couplings always cross blocks.
  const value_t fv_spread =
      spread(fv_like(40, fv_reaction_for_rho(40, 0.8541)), 10);
  const value_t tref_spread = spread(trefethen(800), 10);
  EXPECT_GT(tref_spread, fv_spread);
}

TEST(BlockAsync, RejectsBadBlockSize) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  BlockAsyncOptions o;
  o.block_size = 0;
  EXPECT_THROW((void)block_async_solve(a, b, o), std::invalid_argument);
}

TEST(BlockAsync, PrebuiltKernelRunIsBitIdentical) {
  // The amortization contract the service plan cache rides on: reusing
  // one kernel across right-hand sides reproduces the standalone solve
  // exactly (the executor schedule never depends on values).
  const Csr a = fv_like(9, 0.6);
  BlockAsyncOptions o;
  o.block_size = 20;
  o.local_iters = 2;
  o.solve.max_iters = 3000;
  o.solve.tol = 1e-11;

  std::vector<Vector> bs;
  for (int k = 0; k < 3; ++k) {
    Vector b(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = std::cos(0.2 * double(i) + double(k));
    }
    bs.push_back(std::move(b));
  }

  BlockJacobiKernel kernel(a, bs.front(),
                           RowPartition::uniform(a.rows(), o.block_size),
                           o.local_iters);
  const std::vector<BlockAsyncResult> multi = block_async_solve_multi(a, bs, o);
  ASSERT_EQ(multi.size(), bs.size());
  for (std::size_t k = 0; k < bs.size(); ++k) {
    const BlockAsyncResult standalone = block_async_solve(a, bs[k], o);
    const BlockAsyncResult reused =
        block_async_solve_with_kernel(a, bs[k], kernel, o);
    ASSERT_TRUE(standalone.solve.ok());
    EXPECT_EQ(standalone.solve.iterations, reused.solve.iterations);
    EXPECT_EQ(standalone.solve.iterations, multi[k].solve.iterations);
    EXPECT_EQ(standalone.solve.final_residual, reused.solve.final_residual);
    EXPECT_EQ(standalone.solve.final_residual, multi[k].solve.final_residual);
    for (std::size_t i = 0; i < standalone.solve.x.size(); ++i) {
      EXPECT_EQ(standalone.solve.x[i], reused.solve.x[i]) << "rhs " << k;
      EXPECT_EQ(standalone.solve.x[i], multi[k].solve.x[i]) << "rhs " << k;
    }
  }
}

TEST(BlockAsync, MultiRejectsEmptyAndMismatched) {
  const Csr a = poisson1d(8);
  EXPECT_THROW((void)block_async_solve_multi(a, {}, {}), std::invalid_argument);
  const std::vector<Vector> bad{Vector(7, 1.0)};
  EXPECT_THROW((void)block_async_solve_multi(a, bad, {}),
               std::invalid_argument);
}

TEST(BlockAsync, BlockExecutionCountsReturned) {
  const Csr a = poisson1d(64);
  const Vector b(64, 1.0);
  BlockAsyncOptions o;
  o.block_size = 16;
  o.solve.max_iters = 10;
  o.solve.tol = 0.0;
  const auto r = block_async_solve(a, b, o);
  ASSERT_EQ(r.block_executions.size(), 4u);
  for (index_t c : r.block_executions) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace bars

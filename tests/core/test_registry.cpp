#include "core/registry.hpp"

#include <gtest/gtest.h>

#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

class RegistrySolvers : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySolvers, SolvesWellConditionedSpdSystem) {
  // 15 = 2^4 - 1 so the multigrid entries can build a hierarchy and
  // every registered solver round-trips through the same fixture.
  const Csr a = fv_like(15, 0.8);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 + 0.01 * double(i);

  RegistrySolveOptions o;
  o.solve.max_iters = 20000;
  o.solve.tol = 1e-11;
  o.block_size = 32;
  o.local_iters = 2;
  o.num_threads = 2;
  const SolveResult r = find_solver(GetParam())(a, b, o);
  ASSERT_TRUE(r.ok()) << GetParam();

  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(r.x[i], xd[i], 1e-7) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, RegistrySolvers,
    ::testing::Values("jacobi", "scaled-jacobi", "gauss-seidel",
                      "symmetric-gs", "sor", "cg", "gmres", "pcg-jacobi",
                      "fcg-jacobi", "fcg-async", "block-jacobi",
                      "block-async", "thread-async", "mg", "mg-async",
                      "fcg-mg"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Registry, NamesListsAllSolvers) {
  const auto names = solver_names();
  EXPECT_EQ(names.size(), 16u);
  EXPECT_EQ(names.front(), "jacobi");
}

TEST(Registry, MultigridRejectsNonPoissonMatrix) {
  // fv_like(10, ...) is 10x10 per side: not 2^k - 1, so no geometric
  // hierarchy exists and the mg entries must refuse.
  const Csr a = fv_like(10, 0.8);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  EXPECT_THROW((void)find_solver("mg")(a, b, {}), std::invalid_argument);
  EXPECT_THROW((void)find_solver("fcg-mg")(a, b, {}), std::invalid_argument);
}

TEST(Registry, UnknownNameThrowsWithSuggestions) {
  try {
    (void)find_solver("nope");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("block-async"), std::string::npos);
  }
}

TEST(Registry, ScaledJacobiHandlesDivergentSystem) {
  // The one solver that must survive rho(B) > 1.
  const index_t m = 12;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  RegistrySolveOptions o;
  o.solve.max_iters = 100000;
  o.solve.tol = 1e-8;
  const SolveResult r = find_solver("scaled-jacobi")(a, b, o);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace bars

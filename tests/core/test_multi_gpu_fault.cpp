/// Multi-GPU fault tolerance (extension of the paper's Section 4.5 to
/// the Section 3.4 setting): component failures during a multi-device
/// asynchronous solve.

#include <gtest/gtest.h>

#include "core/multi_gpu_solver.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

MultiGpuOptions base(index_t devices, gpusim::TransferScheme scheme) {
  MultiGpuOptions o;
  o.num_devices = devices;
  o.scheme = scheme;
  o.block_size = 32;
  o.local_iters = 3;
  o.solve.max_iters = 600;
  o.solve.tol = 1e-11;
  o.seed = 5;
  return o;
}

TEST(MultiGpuFault, NoRecoveryStagnatesOnTwoDevices) {
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions o = base(2, gpusim::TransferScheme::kAMC);
  gpusim::FaultPlan plan;
  plan.fail_at = 5;
  plan.fraction = 0.25;
  plan.recover_after = std::nullopt;
  o.fault = plan;
  const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
  EXPECT_FALSE(r.solve.ok());
  EXPECT_GT(r.solve.final_residual, 1e-8);
}

TEST(MultiGpuFault, RecoveryRestoresConvergenceAcrossSchemes) {
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  for (auto scheme :
       {gpusim::TransferScheme::kAMC, gpusim::TransferScheme::kDC,
        gpusim::TransferScheme::kDK}) {
    MultiGpuOptions o = base(3, scheme);
    gpusim::FaultPlan plan;
    plan.fail_at = 5;
    plan.fraction = 0.25;
    plan.recover_after = 10;
    o.fault = plan;
    const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
    EXPECT_TRUE(r.solve.ok()) << to_string(scheme);
  }
}

TEST(MultiGpuFault, RecoveredSolutionMatchesCleanRun) {
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions clean = base(2, gpusim::TransferScheme::kAMC);
  const MultiGpuResult rc = multi_gpu_block_async_solve(a, b, clean);
  MultiGpuOptions faulty = clean;
  gpusim::FaultPlan plan;
  plan.fail_at = 4;
  plan.fraction = 0.3;
  plan.recover_after = 8;
  faulty.fault = plan;
  const MultiGpuResult rf = multi_gpu_block_async_solve(a, b, faulty);
  ASSERT_TRUE(rc.solve.ok());
  ASSERT_TRUE(rf.solve.ok());
  for (std::size_t i = 0; i < rc.solve.x.size(); ++i) {
    EXPECT_NEAR(rf.solve.x[i], rc.solve.x[i], 1e-9);
  }
}

TEST(MultiGpuFault, FaultDelaysConvergence) {
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions clean = base(2, gpusim::TransferScheme::kAMC);
  const MultiGpuResult rc = multi_gpu_block_async_solve(a, b, clean);
  MultiGpuOptions faulty = clean;
  gpusim::FaultPlan plan;
  plan.fail_at = 4;
  plan.fraction = 0.3;
  plan.recover_after = 12;
  faulty.fault = plan;
  const MultiGpuResult rf = multi_gpu_block_async_solve(a, b, faulty);
  ASSERT_TRUE(rc.solve.ok());
  ASSERT_TRUE(rf.solve.ok());
  EXPECT_GT(rf.solve.iterations, rc.solve.iterations);
}

TEST(MultiGpuFault, DeviceDropoutConvergesAfterRejoin) {
  // A whole simulated GPU drops out at iteration 5 and rejoins 10
  // iterations later with a refreshed view of the canonical iterate;
  // the solve converges regardless.
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions o = base(2, gpusim::TransferScheme::kAMC);
  resilience::FaultScenario s;
  s.drop_device(/*at=*/5, /*device=*/1, /*rejoin_after=*/10);
  o.scenario = s;
  const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
}

TEST(MultiGpuFault, PermanentDeviceDropoutStagnates) {
  // Without a rejoin the rows owned by the dropped device never update
  // again, so the residual stalls above tolerance.
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions o = base(2, gpusim::TransferScheme::kAMC);
  o.solve.max_iters = 200;
  resilience::FaultScenario s;
  s.drop_device(5, 1, /*rejoin_after=*/std::nullopt);
  o.scenario = s;
  const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
  EXPECT_FALSE(r.solve.ok());
  EXPECT_GT(r.solve.final_residual, 1e-8);
}

TEST(MultiGpuFault, LinkFailureRetriesThenConverges) {
  // A transfer-link outage forces retry/backoff but the solve still
  // converges once the link heals; the retries are accounted for.
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions o = base(2, gpusim::TransferScheme::kAMC);
  resilience::FaultScenario s;
  s.fail_link(/*at=*/5, /*device=*/1, /*duration=*/10);
  o.scenario = s;
  const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
  EXPECT_GT(r.resilience.transfer_retries, 0);
}

TEST(MultiGpuFault, DropoutWithRecoveryPolicyReportsActivity) {
  // Scenario + active policy together: converges and the report carries
  // the checkpoint trail.
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions o = base(2, gpusim::TransferScheme::kDC);
  resilience::FaultScenario s;
  s.drop_device(5, 1, 10);
  o.scenario = s;
  o.resilience = resilience::Policy{};
  const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
  EXPECT_GT(r.resilience.checkpoints_saved, 0);
}

}  // namespace
}  // namespace bars

/// Tests for overlapping subdomains (restricted additive Schwarz
/// extension of the block kernel).

#include <gtest/gtest.h>

#include "core/block_async.hpp"
#include "core/block_jacobi.hpp"
#include "core/block_jacobi_kernel.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(Overlap, KernelWorkRangesExtendButOwnedStay) {
  const Csr a = poisson1d(20);
  const Vector b(20, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(20, 5), 1,
                            LocalSweep::kJacobi, 1.0, /*overlap=*/2);
  EXPECT_EQ(k.overlap(), 2);
  // Owned ranges are the partition blocks.
  EXPECT_EQ(k.rows(1), (std::pair<index_t, index_t>{5, 10}));
  // The halo of block 1 is the neighbors of [3, 12): rows 2 and 12.
  const auto h = k.halo(1);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2);
  EXPECT_EQ(h[1], 12);
}

TEST(Overlap, BoundaryBlocksClampToMatrix) {
  const Csr a = poisson1d(12);
  const Vector b(12, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(12, 4), 1,
                            LocalSweep::kJacobi, 1.0, 3);
  // First block works on [0, 7): halo is row 7 only.
  ASSERT_EQ(k.halo(0).size(), 1u);
  EXPECT_EQ(k.halo(0)[0], 7);
}

TEST(Overlap, CommitTouchesOnlyOwnedRows) {
  const Csr a = poisson1d(12);
  const Vector b(12, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(12, 4), 2,
                            LocalSweep::kJacobi, 1.0, 2);
  Vector x(12, 0.25);
  const auto halo = k.halo(1);
  Vector hv(halo.size(), 0.25);
  gpusim::ExecContext ctx;
  k.update(1, hv, x, ctx);
  // Rows outside [4, 8) unchanged.
  for (index_t i = 0; i < 12; ++i) {
    if (i >= 4 && i < 8) {
      EXPECT_NE(x[i], 0.25) << i;
    } else {
      EXPECT_DOUBLE_EQ(x[i], 0.25) << i;
    }
  }
}

TEST(Overlap, AcceleratesAsyncConvergenceOnBandedSystem) {
  // Overlap pulls boundary couplings into the subdomain solves, so
  // fewer global iterations are needed on banded systems.
  const Csr a = fv_like(16, 0.3);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  index_t iters_no_overlap = 0, iters_overlap = 0;
  for (int pass = 0; pass < 2; ++pass) {
    BlockAsyncOptions o;
    o.block_size = 64;
    o.local_iters = 5;
    o.overlap = pass == 0 ? 0 : 16;
    o.solve.max_iters = 3000;
    o.solve.tol = 1e-10;
    const BlockAsyncResult r = block_async_solve(a, b, o);
    ASSERT_TRUE(r.solve.ok());
    (pass == 0 ? iters_no_overlap : iters_overlap) = r.solve.iterations;
  }
  EXPECT_LT(iters_overlap, iters_no_overlap);
}

TEST(Overlap, SolutionStillMatchesDirectSolve) {
  const Csr a = fv_like(9, 0.7);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.1 * double(i) - 0.5;
  BlockAsyncOptions o;
  o.block_size = 27;
  o.local_iters = 3;
  o.overlap = 9;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-12;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  ASSERT_TRUE(r.solve.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(r.solve.x[i], xd[i], 1e-9);
  }
}

TEST(Overlap, SyncBlockJacobiBenefitsToo) {
  const Csr a = fv_like(14, 0.3);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockJacobiOptions o0;
  o0.block_size = 49;
  o0.local_iters = 4;
  o0.solve.max_iters = 3000;
  o0.solve.tol = 1e-10;
  BlockJacobiOptions o1 = o0;
  o1.overlap = 14;
  const SolveResult r0 = block_jacobi_solve(a, b, o0);
  const SolveResult r1 = block_jacobi_solve(a, b, o1);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_LE(r1.iterations, r0.iterations);
}

TEST(Overlap, NegativeOverlapRejected) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  EXPECT_THROW(BlockJacobiKernel(a, b, RowPartition::uniform(8, 4), 1,
                                 LocalSweep::kJacobi, 1.0, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

#include "core/block_jacobi.hpp"

#include <gtest/gtest.h>

#include "core/block_async.hpp"
#include "core/jacobi.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(BlockJacobi, OneBlockOneSweepIsPlainJacobi) {
  const Csr a = fv_like(8, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockJacobiOptions o;
  o.block_size = a.rows();
  o.local_iters = 1;
  o.solve.max_iters = 30;
  o.solve.tol = 0.0;
  const SolveResult blk = block_jacobi_solve(a, b, o);
  SolveOptions so;
  so.max_iters = 30;
  so.tol = 0.0;
  const SolveResult jac = jacobi_solve(a, b, so);
  ASSERT_EQ(blk.residual_history.size(), jac.residual_history.size());
  for (std::size_t i = 0; i < blk.residual_history.size(); ++i) {
    EXPECT_NEAR(blk.residual_history[i], jac.residual_history[i], 1e-14);
  }
}

TEST(BlockJacobi, Deterministic) {
  const Csr a = trefethen(120);
  const Vector b(120, 1.0);
  BlockJacobiOptions o;
  o.block_size = 32;
  o.local_iters = 3;
  o.solve.max_iters = 20;
  o.solve.tol = 0.0;
  const SolveResult r1 = block_jacobi_solve(a, b, o);
  const SolveResult r2 = block_jacobi_solve(a, b, o);
  EXPECT_EQ(r1.x, r2.x);
}

TEST(BlockJacobi, MatchesDirectSolve) {
  const Csr a = fv_like(10, 0.6);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.3 + 0.02 * double(i);
  BlockJacobiOptions o;
  o.block_size = 25;
  o.local_iters = 4;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-12;
  const SolveResult r = block_jacobi_solve(a, b, o);
  ASSERT_TRUE(r.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(r.x[i], xd[i], 1e-9);
}

TEST(BlockJacobi, LocalItersAccelerate) {
  const Csr a = fv_like(16, 0.4);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  index_t prev = 1 << 30;
  for (index_t k : {1, 2, 5}) {
    BlockJacobiOptions o;
    o.block_size = 64;
    o.local_iters = k;
    o.solve.max_iters = 5000;
    o.solve.tol = 1e-10;
    const SolveResult r = block_jacobi_solve(a, b, o);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_LT(r.iterations, prev) << k;
    prev = r.iterations;
  }
}

TEST(BlockJacobi, AsyncConvergesComparablyToSyncTwoStage) {
  // The asynchrony-cost question: async-(5) should need a comparable
  // number of global iterations to synchronous block-Jacobi-(5) —
  // that's the claim that chaos costs little when rho(|B|) < 1.
  const Csr a = fv_like(20, 0.4);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockJacobiOptions so;
  so.block_size = 100;
  so.local_iters = 5;
  so.solve.max_iters = 3000;
  so.solve.tol = 1e-10;
  const SolveResult sync = block_jacobi_solve(a, b, so);

  BlockAsyncOptions ao;
  ao.block_size = 100;
  ao.local_iters = 5;
  ao.solve = so.solve;
  const BlockAsyncResult async = block_async_solve(a, b, ao);

  ASSERT_TRUE(sync.ok());
  ASSERT_TRUE(async.solve.ok());
  const double ratio = static_cast<double>(async.solve.iterations) /
                       static_cast<double>(sync.iterations);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(BlockJacobi, DivergesOnStructural) {
  const index_t m = 12;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockJacobiOptions o;
  o.block_size = 36;
  o.solve.max_iters = 2000;
  o.solve.divergence_limit = 1e10;
  const SolveResult r = block_jacobi_solve(a, b, o);
  EXPECT_TRUE(r.status == bars::SolverStatus::kDiverged);
}

TEST(BlockJacobi, RejectsDimensionMismatch) {
  const Csr a = poisson1d(4);
  const Vector b(5, 1.0);
  EXPECT_THROW((void)block_jacobi_solve(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace bars

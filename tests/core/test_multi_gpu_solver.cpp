#include "core/multi_gpu_solver.hpp"

#include <gtest/gtest.h>

#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(MultiGpuSolver, ConvergesOnTrefethen) {
  const Csr a = trefethen(500);
  const Vector b(500, 1.0);
  MultiGpuOptions o;
  o.num_devices = 2;
  o.block_size = 64;
  o.matrix_name = "Trefethen_2000";
  o.solve.max_iters = 500;
  o.solve.tol = 1e-11;
  const MultiGpuResult r = multi_gpu_block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
  EXPECT_GT(r.time_to_convergence, 0.0);
}

TEST(MultiGpuSolver, AmcScalesFromOneToTwoDevices) {
  // Use the Trefethen_20000 per-iteration cost (the Fig. 11 setting):
  // with ~17 ms sweeps the fixed AMC staging cost is small and the
  // second device nearly halves the time.
  const Csr a = trefethen(1000);
  const Vector b(1000, 1.0);
  MultiGpuOptions o;
  o.block_size = 16;  // 63 blocks >> 14 slots: no wave quantization
  o.matrix_name = "Trefethen_20000";
  o.solve.max_iters = 500;
  o.solve.tol = 1e-10;
  o.scheme = gpusim::TransferScheme::kAMC;
  o.num_devices = 1;
  const auto r1 = multi_gpu_block_async_solve(a, b, o);
  o.num_devices = 2;
  const auto r2 = multi_gpu_block_async_solve(a, b, o);
  ASSERT_TRUE(r1.solve.ok());
  ASSERT_TRUE(r2.solve.ok());
  EXPECT_LT(r2.time_to_convergence, r1.time_to_convergence);
  // "Almost cut in half": expect at least 25% improvement.
  EXPECT_LT(r2.time_to_convergence, 0.75 * r1.time_to_convergence);
}

TEST(MultiGpuSolver, DcImprovesLessThanAmcAtTwoDevices) {
  const Csr a = trefethen(1000);
  const Vector b(1000, 1.0);
  MultiGpuOptions o;
  o.block_size = 16;
  o.matrix_name = "Trefethen_20000";
  o.solve.max_iters = 500;
  o.solve.tol = 1e-10;
  o.num_devices = 2;
  o.scheme = gpusim::TransferScheme::kAMC;
  const auto amc = multi_gpu_block_async_solve(a, b, o);
  o.scheme = gpusim::TransferScheme::kDC;
  const auto dc = multi_gpu_block_async_solve(a, b, o);
  ASSERT_TRUE(amc.solve.ok());
  ASSERT_TRUE(dc.solve.ok());
  EXPECT_LT(amc.time_to_convergence, dc.time_to_convergence);
}

TEST(MultiGpuSolver, AllSchemesReachSameSolution) {
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  MultiGpuOptions o;
  o.block_size = 36;
  o.num_devices = 3;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-12;
  Vector ref;
  for (auto scheme :
       {gpusim::TransferScheme::kAMC, gpusim::TransferScheme::kDC,
        gpusim::TransferScheme::kDK}) {
    o.scheme = scheme;
    const auto r = multi_gpu_block_async_solve(a, b, o);
    ASSERT_TRUE(r.solve.ok()) << to_string(scheme);
    if (ref.empty()) {
      ref = r.solve.x;
    } else {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(r.solve.x[i], ref[i], 1e-9);
      }
    }
  }
}

TEST(MultiGpuSolver, RejectsDimensionMismatch) {
  const Csr a = poisson1d(4);
  const Vector b(5, 1.0);
  EXPECT_THROW((void)multi_gpu_block_async_solve(a, b),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

#include "core/gmres.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matrices/generators.hpp"
#include "sparse/dense.hpp"
#include "stats/rng.hpp"

namespace bars {
namespace {

/// Nonsymmetric test matrix: fv stencil plus a convection-like skew
/// perturbation (keeps the diagonal dominant).
Csr convection_diffusion(index_t m, value_t skew) {
  const Csr sym = fv_like(m, 0.5);
  Coo coo = sym.to_coo();
  const index_t n = sym.rows();
  for (index_t i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, -skew);
    coo.add(i + 1, i, skew);
  }
  return Csr::from_coo(coo);
}

TEST(Gmres, SolvesSpdSystem) {
  const Csr a = fv_like(10, 0.5);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.2 * double(i));
  GmresOptions o;
  o.solve.max_iters = 500;
  o.solve.tol = 1e-11;
  const SolveResult r = gmres_solve(a, b, o);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(relative_residual(a, b, r.x), 1e-10);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  const Csr a = convection_diffusion(10, 0.3);
  ASSERT_FALSE(a.is_symmetric(1e-14));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  GmresOptions o;
  o.solve.max_iters = 1000;
  o.solve.tol = 1e-11;
  const SolveResult r = gmres_solve(a, b, o);
  ASSERT_TRUE(r.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(r.x[i], xd[i], 1e-8);
}

TEST(Gmres, FullKrylovIsExactInNSteps) {
  const index_t n = 15;
  const Csr m = random_spd(n, 4, 1.5, 321);
  const Vector b(static_cast<std::size_t>(n), 1.0);
  GmresOptions o;
  o.restart = n;  // no restart: exact after <= n steps
  o.solve.max_iters = n;
  o.solve.tol = 1e-12;
  const SolveResult r = gmres_solve(m, b, o);
  EXPECT_TRUE(r.ok());
  EXPECT_LE(r.iterations, n);
}

TEST(Gmres, RestartedConvergesEventuallyOnDominantSystem) {
  const Csr a = trefethen(200);
  const Vector b(200, 1.0);
  GmresOptions o;
  o.restart = 10;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-10;
  const SolveResult r = gmres_solve(a, b, o);
  EXPECT_TRUE(r.ok());
}

TEST(Gmres, HistoryTracksInnerIterations) {
  const Csr a = fv_like(8, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  GmresOptions o;
  o.restart = 5;
  o.solve.max_iters = 37;
  o.solve.tol = 0.0;
  const SolveResult r = gmres_solve(a, b, o);
  EXPECT_EQ(r.iterations, 37);
  EXPECT_EQ(r.residual_history.size(), 38u);
}

TEST(Gmres, ZeroRhsConvergedImmediately) {
  const Csr a = poisson1d(6);
  const Vector b(6, 0.0);
  const SolveResult r = gmres_solve(a, b);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.iterations, 0);
}

TEST(Gmres, InitialGuessRespected) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  const Vector x0 = Dense::from_csr(a).solve(b);
  const SolveResult r = gmres_solve(a, b, {}, &x0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.iterations, 0);
}

TEST(Gmres, RejectsBadOptions) {
  const Csr a = poisson1d(4);
  const Vector b(4, 1.0);
  GmresOptions o;
  o.restart = 0;
  EXPECT_THROW((void)gmres_solve(a, b, o), std::invalid_argument);
  const Vector bad(3, 1.0);
  EXPECT_THROW((void)gmres_solve(a, bad), std::invalid_argument);
}

}  // namespace
}  // namespace bars

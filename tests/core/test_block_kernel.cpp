#include "core/block_jacobi_kernel.hpp"

#include <gtest/gtest.h>

#include "core/jacobi.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(BlockKernel, HaloContainsExactlyOffBlockColumns) {
  const Csr a = poisson1d(12);
  const Vector b(12, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(12, 4), 1);
  ASSERT_EQ(k.num_blocks(), 3);
  // Block 1 covers rows 4..7; tridiagonal couples to 3 and 8.
  const auto h = k.halo(1);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3);
  EXPECT_EQ(h[1], 8);
  // First block only couples forward.
  ASSERT_EQ(k.halo(0).size(), 1u);
  EXPECT_EQ(k.halo(0)[0], 4);
}

TEST(BlockKernel, SingleBlockOneSweepEqualsJacobi) {
  // With one block covering the matrix and local Jacobi sweeps, one
  // update must reproduce one synchronous Jacobi iteration exactly.
  const Csr a = fv_like(6, 0.4);
  const index_t n = a.rows();
  Vector b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.1 * double(i) - 1.0;
  const BlockJacobiKernel k(a, b, RowPartition::uniform(n, n), 1);

  Vector x(static_cast<std::size_t>(n), 0.0);
  gpusim::ExecContext ctx;
  k.update(0, {}, x, ctx);

  SolveOptions o;
  o.max_iters = 1;
  o.tol = 0.0;
  const SolveResult jac = jacobi_solve(a, b, o);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], jac.x[i], 1e-14);
  }
}

TEST(BlockKernel, MultiBlockOneSweepWithFreshHaloEqualsJacobi) {
  // If every block reads a halo snapshot taken from the same x, the
  // union of block updates is exactly one synchronous Jacobi step.
  const Csr a = poisson1d(16);
  const Vector b(16, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(16, 4), 1);

  Vector x(16, 0.25);
  const Vector x_before = x;
  for (index_t blk = 0; blk < k.num_blocks(); ++blk) {
    const auto halo = k.halo(blk);
    Vector hv(halo.size());
    for (std::size_t i = 0; i < halo.size(); ++i) hv[i] = x_before[halo[i]];
    gpusim::ExecContext ctx;
    k.update(blk, hv, x, ctx);
  }
  SolveOptions o;
  o.max_iters = 1;
  o.tol = 0.0;
  const SolveResult jac = jacobi_solve(a, b, o, &x_before);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], jac.x[i], 1e-14);
  }
}

TEST(BlockKernel, LocalItersFreezeGlobalPart) {
  // Eq. (4): with local_iters = 2 the off-block contribution s stays
  // fixed. Verify against a hand-rolled two-sweep computation.
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  const BlockJacobiKernel k2(a, b, RowPartition::uniform(8, 4), 2);

  Vector x(8, 0.0);
  Vector hv{0.0};  // halo of block 0 is row 4, value 0
  gpusim::ExecContext ctx;
  k2.update(0, hv, x, ctx);

  // Hand computation on rows 0..3 of tridiag(-1,2,-1), b = 1, halo 0:
  // sweep 1: x = (0.5, 0.5, 0.5, 0.5)
  // sweep 2: x0 = (1+0.5)/2 = 0.75, x1 = (1+0.5+0.5)/2 = 1.0, x2 = 1.0,
  //          x3 = (1+0.5+0)/2 = 0.75.
  EXPECT_NEAR(x[0], 0.75, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
  EXPECT_NEAR(x[2], 1.0, 1e-14);
  EXPECT_NEAR(x[3], 0.75, 1e-14);
  EXPECT_DOUBLE_EQ(x[4], 0.0);  // other block untouched
}

TEST(BlockKernel, LocalGaussSeidelDiffersFromLocalJacobi) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  const BlockJacobiKernel kj(a, b, RowPartition::uniform(8, 8), 1,
                             LocalSweep::kJacobi);
  const BlockJacobiKernel kg(a, b, RowPartition::uniform(8, 8), 1,
                             LocalSweep::kGaussSeidel);
  Vector xj(8, 0.0), xg(8, 0.0);
  gpusim::ExecContext ctx;
  kj.update(0, {}, xj, ctx);
  kg.update(0, {}, xg, ctx);
  EXPECT_DOUBLE_EQ(xj[1], 0.5);
  EXPECT_DOUBLE_EQ(xg[1], 0.75);  // GS uses updated x0 = 0.5
}

TEST(BlockKernel, FaultMaskFreezesComponents) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(8, 8), 1);
  Vector x(8, 0.25);
  std::vector<std::uint8_t> mask(8, 0);
  mask[2] = 1;
  mask[5] = 1;
  gpusim::ExecContext ctx;
  ctx.failed_components = &mask;
  k.update(0, {}, x, ctx);
  EXPECT_DOUBLE_EQ(x[2], 0.25);  // frozen
  EXPECT_DOUBLE_EQ(x[5], 0.25);
  EXPECT_NE(x[1], 0.25);  // healthy components updated
}

TEST(BlockKernel, LocalOmegaDampsUpdate) {
  const Csr a = poisson1d(4);
  const Vector b(4, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(4, 4), 1,
                            LocalSweep::kJacobi, 0.5);
  Vector x(4, 0.0);
  gpusim::ExecContext ctx;
  k.update(0, {}, x, ctx);
  EXPECT_DOUBLE_EQ(x[0], 0.25);  // half of the Jacobi step 0.5
}

TEST(BlockKernel, RejectsInvalidConstruction) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  EXPECT_THROW(
      BlockJacobiKernel(a, b, RowPartition::uniform(7, 4), 1),
      std::invalid_argument);
  EXPECT_THROW(BlockJacobiKernel(a, b, RowPartition::uniform(8, 4), 0),
               std::invalid_argument);
  EXPECT_THROW(BlockJacobiKernel(a, b, RowPartition::uniform(8, 4), 1,
                                 LocalSweep::kJacobi, 2.5),
               std::invalid_argument);
  Coo zc(2, 2);
  zc.add(0, 1, 1.0);
  zc.add(1, 0, 1.0);
  const Vector b2(2, 1.0);
  EXPECT_THROW(BlockJacobiKernel(Csr::from_coo(zc), b2,
                                 RowPartition::uniform(2, 2), 1),
               std::invalid_argument);
}

TEST(BlockKernel, RowsReportsPartition) {
  const Csr a = poisson1d(10);
  const Vector b(10, 1.0);
  const BlockJacobiKernel k(a, b, RowPartition::uniform(10, 4), 1);
  EXPECT_EQ(k.rows(0), (std::pair<index_t, index_t>{0, 4}));
  EXPECT_EQ(k.rows(2), (std::pair<index_t, index_t>{8, 10}));
  EXPECT_EQ(k.num_rows(), 10);
}

}  // namespace
}  // namespace bars

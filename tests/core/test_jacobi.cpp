#include "core/jacobi.hpp"

#include <gtest/gtest.h>

#include "eigen/condition.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(Jacobi, SolvesDiagonalSystemInOneIteration) {
  Coo c(3, 3);
  c.add(0, 0, 2.0);
  c.add(1, 1, 4.0);
  c.add(2, 2, 8.0);
  const Csr a = Csr::from_coo(c);
  const Vector b{2.0, 8.0, 24.0};
  const SolveResult r = jacobi_solve(a, b);
  EXPECT_TRUE(r.ok());
  EXPECT_LE(r.iterations, 2);
  EXPECT_NEAR(r.x[0], 1.0, 1e-14);
  EXPECT_NEAR(r.x[1], 2.0, 1e-14);
  EXPECT_NEAR(r.x[2], 3.0, 1e-14);
}

TEST(Jacobi, MatchesDirectSolveOnPoisson) {
  const Csr a = poisson1d(20);
  Vector b(20);
  for (std::size_t i = 0; i < 20; ++i) b[i] = 1.0 + 0.1 * double(i);
  SolveOptions o;
  o.max_iters = 20000;
  o.tol = 1e-13;
  const SolveResult r = jacobi_solve(a, b, o);
  ASSERT_TRUE(r.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(r.x[i], xd[i], 1e-9);
}

TEST(Jacobi, ResidualHistoryMonotoneForSpd) {
  const Csr a = fv_like(12, 0.8);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions o;
  o.max_iters = 100;
  o.tol = 0.0;
  const SolveResult r = jacobi_solve(a, b, o);
  ASSERT_GT(r.residual_history.size(), 10u);
  for (std::size_t i = 1; i < r.residual_history.size(); ++i) {
    EXPECT_LE(r.residual_history[i], r.residual_history[i - 1] * 1.0001);
  }
}

TEST(Jacobi, DivergesWhenRhoExceedsOne) {
  const index_t m = 12;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions o;
  o.max_iters = 2000;
  o.divergence_limit = 1e10;
  const SolveResult r = jacobi_solve(a, b, o);
  EXPECT_TRUE(r.status == bars::SolverStatus::kDiverged);
}

TEST(ScaledJacobi, TauRestoresConvergenceOnStructural) {
  // The paper's Section 4.2 remedy: tau = 2/(l1+ln) makes Jacobi-type
  // methods converge even for rho(B) = 2.65.
  const index_t m = 12;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const value_t tau = optimal_jacobi_tau(a);
  SolveOptions o;
  o.max_iters = 50000;
  o.tol = 1e-10;
  const SolveResult r = scaled_jacobi_solve(a, b, tau, o);
  EXPECT_TRUE(r.ok()) << "tau=" << tau;
}

TEST(ScaledJacobi, TauOneEqualsPlainJacobi) {
  const Csr a = poisson1d(10);
  const Vector b(10, 1.0);
  SolveOptions o;
  o.max_iters = 25;
  o.tol = 0.0;
  const SolveResult r1 = jacobi_solve(a, b, o);
  const SolveResult r2 = scaled_jacobi_solve(a, b, 1.0, o);
  ASSERT_EQ(r1.residual_history.size(), r2.residual_history.size());
  for (std::size_t i = 0; i < r1.residual_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.residual_history[i], r2.residual_history[i]);
  }
}

TEST(Jacobi, InitialGuessRespected) {
  const Csr a = poisson1d(8);
  Vector b(8, 1.0);
  const Vector x0 = Dense::from_csr(a).solve(b);
  const SolveResult r = jacobi_solve(a, b, {}, &x0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.iterations, 0);
}

TEST(Jacobi, RejectsZeroDiagonal) {
  Coo c(2, 2);
  c.add(0, 1, 1.0);
  c.add(1, 0, 1.0);
  const Vector b{1.0, 1.0};
  EXPECT_THROW((void)jacobi_solve(Csr::from_coo(c), b),
               std::invalid_argument);
}

TEST(Jacobi, RejectsDimensionMismatch) {
  const Csr a = poisson1d(4);
  const Vector b(3, 1.0);
  EXPECT_THROW((void)jacobi_solve(a, b), std::invalid_argument);
}

TEST(ScaledJacobi, RejectsNonPositiveTau) {
  const Csr a = poisson1d(4);
  const Vector b(4, 1.0);
  EXPECT_THROW((void)scaled_jacobi_solve(a, b, 0.0), std::invalid_argument);
}

TEST(Jacobi, ZeroRhsConvergesToZero) {
  const Csr a = poisson1d(6);
  const Vector b(6, 0.0);
  const SolveResult r = jacobi_solve(a, b);
  EXPECT_TRUE(r.ok());
  for (value_t v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace bars

#include "core/thread_async.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(ThreadAsync, ConvergesOnStrictlyDominantSystem) {
  const Csr a = random_spd(200, 4, 2.0, 321);
  const Vector b(200, 1.0);
  ThreadAsyncOptions o;
  o.block_size = 32;
  o.num_threads = 4;
  o.solve.max_iters = 5000;
  o.solve.tol = 1e-11;
  const ThreadAsyncResult r = thread_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
  EXPECT_LE(relative_residual(a, b, r.solve.x), 1e-10);
}

TEST(ThreadAsync, SolutionMatchesDirectSolve) {
  const Csr a = fv_like(8, 0.8);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 - 0.02 * double(i);
  ThreadAsyncOptions o;
  o.block_size = 16;
  o.num_threads = 3;
  o.solve.max_iters = 10000;
  o.solve.tol = 1e-12;
  const ThreadAsyncResult r = thread_async_solve(a, b, o);
  ASSERT_TRUE(r.solve.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(r.solve.x[i], xd[i], 1e-8);
  }
}

TEST(ThreadAsync, LocalItersAccelerateConvergence) {
  const Csr a = fv_like(12, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  ThreadAsyncOptions o1;
  o1.block_size = 36;
  o1.num_threads = 2;
  o1.local_iters = 1;
  o1.solve.max_iters = 4000;
  o1.solve.tol = 1e-10;
  ThreadAsyncOptions o5 = o1;
  o5.local_iters = 5;
  const auto r1 = thread_async_solve(a, b, o1);
  const auto r5 = thread_async_solve(a, b, o5);
  ASSERT_TRUE(r1.solve.ok());
  ASSERT_TRUE(r5.solve.ok());
  EXPECT_LT(r5.solve.iterations, r1.solve.iterations);
}

TEST(ThreadAsync, SingleThreadStillWorks) {
  const Csr a = poisson1d(50);
  const Vector b(50, 1.0);
  ThreadAsyncOptions o;
  o.block_size = 10;
  o.num_threads = 1;
  o.solve.max_iters = 20000;
  o.solve.tol = 1e-11;
  const auto r = thread_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
}

TEST(ThreadAsync, EveryBlockExecutes) {
  const Csr a = poisson1d(64);
  const Vector b(64, 1.0);
  ThreadAsyncOptions o;
  o.block_size = 8;
  o.num_threads = 4;
  o.solve.max_iters = 50;
  o.solve.tol = 0.0;
  const auto r = thread_async_solve(a, b, o);
  for (index_t c : r.block_executions) EXPECT_GT(c, 0);
  index_t sum = 0;
  for (index_t c : r.block_executions) sum += c;
  EXPECT_EQ(sum, r.total_block_executions);
}

TEST(ThreadAsync, RejectsDimensionMismatch) {
  const Csr a = poisson1d(4);
  const Vector b(5, 1.0);
  EXPECT_THROW((void)thread_async_solve(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace bars

#include "core/cg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/gauss_seidel.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(Cg, ExactInAtMostNIterations) {
  const index_t n = 12;
  const Csr a = poisson1d(n);
  Vector b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 / (1.0 + double(i));
  CgOptions o;
  o.solve.max_iters = n;
  o.solve.tol = 1e-12;
  const SolveResult r = cg_solve(a, b, o);
  EXPECT_TRUE(r.ok());
  EXPECT_LE(r.iterations, n);
}

TEST(Cg, MatchesDirectSolve) {
  const Csr a = fv_like(10, 0.3);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::cos(0.2 * double(i));
  CgOptions o;
  o.solve.max_iters = 500;
  o.solve.tol = 1e-13;
  const SolveResult r = cg_solve(a, b, o);
  ASSERT_TRUE(r.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(r.x[i], xd[i], 1e-8);
}

TEST(Cg, FarFewerIterationsThanGaussSeidelOnIllConditioned) {
  // The paper's Fig. 9c observation: for fv3-like conditioning CG needs
  // a small fraction of the relaxation iterations.
  const Csr a = fv_like(30, 0.001);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions so;
  so.max_iters = 50000;
  so.tol = 1e-10;
  CgOptions co;
  co.solve = so;
  const SolveResult cg = cg_solve(a, b, co);
  const SolveResult gs = gauss_seidel_solve(a, b, so);
  ASSERT_TRUE(cg.ok());
  ASSERT_TRUE(gs.ok());
  EXPECT_LT(cg.iterations * 10, gs.iterations);
}

TEST(Cg, JacobiPreconditionerHelpsOnTrefethen) {
  // Trefethen matrices have wildly varying diagonal (primes), so
  // diagonal preconditioning cuts the iteration count.
  const Csr a = trefethen(400);
  const Vector b(400, 1.0);
  CgOptions plain;
  plain.solve.max_iters = 2000;
  plain.solve.tol = 1e-12;
  CgOptions pre = plain;
  pre.jacobi_preconditioner = true;
  const SolveResult r0 = cg_solve(a, b, plain);
  const SolveResult r1 = cg_solve(a, b, pre);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_LT(r1.iterations, r0.iterations);
}

TEST(Cg, IndefiniteMatrixFlagsDivergence) {
  Coo c(2, 2);
  c.add(0, 0, 1.0);
  c.add(1, 1, -1.0);
  const Csr a = Csr::from_coo(c);
  const Vector b{1.0, 1.0};
  const SolveResult r = cg_solve(a, b);
  EXPECT_TRUE(r.status == bars::SolverStatus::kDiverged);
}

TEST(Cg, ResidualRecomputationKeepsTrueResidual) {
  const Csr a = fv_like(12, 0.1);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  CgOptions o;
  o.solve.max_iters = 300;
  o.solve.tol = 1e-13;
  o.recompute_every = 10;
  const SolveResult r = cg_solve(a, b, o);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(relative_residual(a, b, r.x), r.final_residual, 1e-12);
}

TEST(Cg, ZeroRhsImmediatelyConverged) {
  const Csr a = poisson1d(5);
  const Vector b(5, 0.0);
  const SolveResult r = cg_solve(a, b);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.iterations, 0);
}

TEST(Cg, InitialGuessRespected) {
  const Csr a = poisson1d(8);
  const Vector b(8, 1.0);
  const Vector x0 = Dense::from_csr(a).solve(b);
  const SolveResult r = cg_solve(a, b, {}, &x0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.iterations, 0);
}

TEST(Cg, RejectsDimensionMismatch) {
  const Csr a = poisson1d(4);
  const Vector b(5, 1.0);
  EXPECT_THROW((void)cg_solve(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace bars

/// Allocation audit for the hot path: BlockJacobiKernel::update must
/// not touch the heap — all sweep scratch is sized at construction.
/// This file overrides the global allocation functions (binary-wide,
/// hence its own test executable) with a toggleable counter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "core/block_jacobi_kernel.hpp"
#include "gpusim/block_kernel.hpp"
#include "matrices/generators.hpp"
#include "sparse/partition.hpp"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bars {
namespace {

class AllocGuard {
 public:
  AllocGuard() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocGuard() { g_counting.store(false, std::memory_order_relaxed); }
  [[nodiscard]] std::size_t count() const {
    return g_allocs.load(std::memory_order_relaxed);
  }
};

struct Fixture {
  Csr a;
  Vector b;
  RowPartition part;
  Fixture()
      : a(fv_like(16, 0.6)),
        b(static_cast<std::size_t>(a.rows()), 1.0),
        part(RowPartition::uniform(a.rows(), 32)) {}
};

void exercise(const BlockJacobiKernel& kernel, Vector& x) {
  Vector halo_vals;
  // Pre-size the snapshot buffer outside the audited region (the
  // executor reuses its per-block snapshot vectors the same way).
  std::size_t max_halo = 0;
  for (index_t blk = 0; blk < kernel.num_blocks(); ++blk) {
    max_halo = std::max(max_halo, kernel.halo(blk).size());
  }
  halo_vals.reserve(max_halo);

  AllocGuard guard;
  for (int pass = 0; pass < 3; ++pass) {
    for (index_t blk = 0; blk < kernel.num_blocks(); ++blk) {
      const auto halo = kernel.halo(blk);
      halo_vals.resize(halo.size());
      for (std::size_t i = 0; i < halo.size(); ++i) halo_vals[i] = x[halo[i]];
      gpusim::ExecContext ctx;
      kernel.update(blk, halo_vals, x, ctx);
    }
  }
  EXPECT_EQ(guard.count(), 0u)
      << "BlockJacobiKernel::update allocated on the hot path";
}

TEST(KernelAllocAudit, JacobiSingleSweepIsAllocationFree) {
  Fixture f;
  BlockJacobiKernel kernel(f.a, f.b, f.part, 1);
  Vector x(f.b.size(), 0.0);
  exercise(kernel, x);
}

TEST(KernelAllocAudit, JacobiMultiSweepIsAllocationFree) {
  Fixture f;
  BlockJacobiKernel kernel(f.a, f.b, f.part, 5);
  Vector x(f.b.size(), 0.0);
  exercise(kernel, x);
}

TEST(KernelAllocAudit, GaussSeidelSweepsAreAllocationFree) {
  Fixture f;
  BlockJacobiKernel kernel(f.a, f.b, f.part, 3, LocalSweep::kGaussSeidel);
  Vector x(f.b.size(), 0.0);
  exercise(kernel, x);
}

TEST(KernelAllocAudit, OverlappingKernelIsAllocationFree) {
  Fixture f;
  BlockJacobiKernel kernel(f.a, f.b, f.part, 2, LocalSweep::kJacobi, 1.0,
                           /*overlap=*/4);
  Vector x(f.b.size(), 0.0);
  exercise(kernel, x);
}

}  // namespace
}  // namespace bars

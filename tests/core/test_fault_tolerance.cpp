#include <gtest/gtest.h>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

Csr test_matrix() { return fv_like(20, 0.4); }

BlockAsyncOptions base_options() {
  BlockAsyncOptions o;
  o.block_size = 50;
  o.local_iters = 5;
  o.solve.max_iters = 400;
  o.solve.tol = 1e-13;
  o.seed = 7;
  return o;
}

TEST(FaultTolerance, NoRecoveryStagnates) {
  // Paper Fig. 10: without reassigning failed components the residual
  // stalls at a significant level.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 10;
  plan.fraction = 0.25;
  plan.recover_after = std::nullopt;
  o.fault = plan;
  const auto r = block_async_solve(a, b, o);
  EXPECT_FALSE(r.solve.converged);
  EXPECT_GT(r.solve.final_residual, 1e-6);
}

TEST(FaultTolerance, RecoveryRetrievesConvergence) {
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 10;
  plan.fraction = 0.25;
  plan.recover_after = 10;
  o.fault = plan;
  const auto r = block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.converged);
}

TEST(FaultTolerance, LongerRecoveryTimeDelaysConvergenceMore) {
  // Paper Table 6: extra time grows with the recovery delay t_r.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  index_t prev_iters = 0;
  for (index_t tr : {0, 10, 20, 30}) {
    BlockAsyncOptions o = base_options();
    if (tr > 0) {
      gpusim::FaultPlan plan;
      plan.fail_at = 10;
      plan.fraction = 0.25;
      plan.recover_after = tr;
      o.fault = plan;
    }
    const auto r = block_async_solve(a, b, o);
    ASSERT_TRUE(r.solve.converged) << "tr=" << tr;
    if (prev_iters > 0) {
      EXPECT_GE(r.solve.iterations, prev_iters) << "tr=" << tr;
    }
    prev_iters = r.solve.iterations;
  }
}

TEST(FaultTolerance, FailedFractionRespected) {
  // During the failure window exactly ~fraction of components freeze;
  // verify by comparing against a run without failure after fail_at.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  o.solve.max_iters = 15;
  o.solve.tol = 0.0;
  gpusim::FaultPlan plan;
  plan.fail_at = 5;
  plan.fraction = 0.5;
  plan.recover_after = std::nullopt;
  plan.seed = 99;
  o.fault = plan;
  const auto faulty = block_async_solve(a, b, o);
  BlockAsyncOptions o2 = base_options();
  o2.solve.max_iters = 15;
  o2.solve.tol = 0.0;
  const auto healthy = block_async_solve(a, b, o2);
  // The faulty run must have a strictly worse residual.
  EXPECT_GT(faulty.solve.final_residual, healthy.solve.final_residual);
}

TEST(FaultTolerance, RecoveredRunMatchesNoFailureSolution) {
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 8;
  plan.fraction = 0.25;
  plan.recover_after = 15;
  o.fault = plan;
  const auto rec = block_async_solve(a, b, o);
  const auto clean = block_async_solve(a, b, base_options());
  ASSERT_TRUE(rec.solve.converged);
  ASSERT_TRUE(clean.solve.converged);
  for (std::size_t i = 0; i < clean.solve.x.size(); ++i) {
    EXPECT_NEAR(rec.solve.x[i], clean.solve.x[i], 1e-9);
  }
}

}  // namespace
}  // namespace bars

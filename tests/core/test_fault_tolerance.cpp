#include <gtest/gtest.h>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

Csr test_matrix() { return fv_like(20, 0.4); }

BlockAsyncOptions base_options() {
  BlockAsyncOptions o;
  o.block_size = 50;
  o.local_iters = 5;
  o.solve.max_iters = 400;
  o.solve.tol = 1e-13;
  o.seed = 7;
  return o;
}

TEST(FaultTolerance, NoRecoveryStagnates) {
  // Paper Fig. 10: without reassigning failed components the residual
  // stalls at a significant level.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 10;
  plan.fraction = 0.25;
  plan.recover_after = std::nullopt;
  o.fault = plan;
  const auto r = block_async_solve(a, b, o);
  EXPECT_FALSE(r.solve.ok());
  EXPECT_GT(r.solve.final_residual, 1e-6);
}

TEST(FaultTolerance, RecoveryRetrievesConvergence) {
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 10;
  plan.fraction = 0.25;
  plan.recover_after = 10;
  o.fault = plan;
  const auto r = block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
}

TEST(FaultTolerance, LongerRecoveryTimeDelaysConvergenceMore) {
  // Paper Table 6: extra time grows with the recovery delay t_r.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  index_t prev_iters = 0;
  for (index_t tr : {0, 10, 20, 30}) {
    BlockAsyncOptions o = base_options();
    if (tr > 0) {
      gpusim::FaultPlan plan;
      plan.fail_at = 10;
      plan.fraction = 0.25;
      plan.recover_after = tr;
      o.fault = plan;
    }
    const auto r = block_async_solve(a, b, o);
    ASSERT_TRUE(r.solve.ok()) << "tr=" << tr;
    if (prev_iters > 0) {
      EXPECT_GE(r.solve.iterations, prev_iters) << "tr=" << tr;
    }
    prev_iters = r.solve.iterations;
  }
}

TEST(FaultTolerance, FailedFractionRespected) {
  // During the failure window exactly ~fraction of components freeze;
  // verify by comparing against a run without failure after fail_at.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  o.solve.max_iters = 15;
  o.solve.tol = 0.0;
  gpusim::FaultPlan plan;
  plan.fail_at = 5;
  plan.fraction = 0.5;
  plan.recover_after = std::nullopt;
  plan.seed = 99;
  o.fault = plan;
  const auto faulty = block_async_solve(a, b, o);
  BlockAsyncOptions o2 = base_options();
  o2.solve.max_iters = 15;
  o2.solve.tol = 0.0;
  const auto healthy = block_async_solve(a, b, o2);
  // The faulty run must have a strictly worse residual.
  EXPECT_GT(faulty.solve.final_residual, healthy.solve.final_residual);
}

TEST(FaultTolerance, RecoveredRunMatchesNoFailureSolution) {
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 8;
  plan.fraction = 0.25;
  plan.recover_after = 15;
  o.fault = plan;
  const auto rec = block_async_solve(a, b, o);
  const auto clean = block_async_solve(a, b, base_options());
  ASSERT_TRUE(rec.solve.ok());
  ASSERT_TRUE(clean.solve.ok());
  for (std::size_t i = 0; i < clean.solve.x.size(); ++i) {
    EXPECT_NEAR(rec.solve.x[i], clean.solve.x[i], 1e-9);
  }
}

TEST(FaultTolerance, FullFractionFreezesTheWholeIterate) {
  // fraction = 1.0: every component freezes at fail_at, so the residual
  // is exactly constant from that point on.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  o.solve.max_iters = 60;
  gpusim::FaultPlan plan;
  plan.fail_at = 10;
  plan.fraction = 1.0;
  plan.recover_after = std::nullopt;
  o.fault = plan;
  const auto r = block_async_solve(a, b, o);
  EXPECT_FALSE(r.solve.ok());
  ASSERT_GT(r.solve.residual_history.size(), 11u);
  EXPECT_DOUBLE_EQ(r.solve.final_residual, r.solve.residual_history[10]);
}

TEST(FaultTolerance, FailureBeyondIterationLimitIsInert) {
  // fail_at past max_global_iters: the event never fires, so the run is
  // identical to the clean one.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto clean = block_async_solve(a, b, base_options());
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = o.solve.max_iters + 100;
  plan.fraction = 0.5;
  o.fault = plan;
  const auto r = block_async_solve(a, b, o);
  EXPECT_EQ(r.solve.iterations, clean.solve.iterations);
  ASSERT_EQ(r.solve.residual_history.size(),
            clean.solve.residual_history.size());
  for (std::size_t i = 0; i < clean.solve.residual_history.size(); ++i) {
    EXPECT_EQ(r.solve.residual_history[i], clean.solve.residual_history[i]);
  }
}

TEST(FaultTolerance, ZeroRecoveryDelayIsInert) {
  // recover_after = 0: components are reassigned in the same boundary
  // that failed them, so no write ever observes the mask.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto clean = block_async_solve(a, b, base_options());
  BlockAsyncOptions o = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 10;
  plan.fraction = 0.5;
  plan.recover_after = 0;
  o.fault = plan;
  const auto r = block_async_solve(a, b, o);
  EXPECT_EQ(r.solve.iterations, clean.solve.iterations);
  ASSERT_EQ(r.solve.residual_history.size(),
            clean.solve.residual_history.size());
  for (std::size_t i = 0; i < clean.solve.residual_history.size(); ++i) {
    EXPECT_EQ(r.solve.residual_history[i], clean.solve.residual_history[i]);
  }
}

}  // namespace
}  // namespace bars

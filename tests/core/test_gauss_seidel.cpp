#include "core/gauss_seidel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/jacobi.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(GaussSeidel, MatchesDirectSolve) {
  const Csr a = poisson1d(15);
  Vector b(15);
  for (std::size_t i = 0; i < 15; ++i) b[i] = std::sin(0.5 * double(i));
  SolveOptions o;
  o.max_iters = 5000;
  o.tol = 1e-13;
  const SolveResult r = gauss_seidel_solve(a, b, o);
  ASSERT_TRUE(r.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < 15; ++i) EXPECT_NEAR(r.x[i], xd[i], 1e-9);
}

TEST(GaussSeidel, ConvergesFasterThanJacobi) {
  // Textbook property the paper leans on: GS needs roughly half the
  // Jacobi iterations on Poisson-type problems.
  const Csr a = fv_like(16, 0.2);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions o;
  o.max_iters = 20000;
  o.tol = 1e-10;
  const SolveResult gs = gauss_seidel_solve(a, b, o);
  const SolveResult jac = jacobi_solve(a, b, o);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(jac.ok());
  EXPECT_LT(gs.iterations, jac.iterations);
  EXPECT_LT(static_cast<double>(gs.iterations),
            0.7 * static_cast<double>(jac.iterations));
}

TEST(GaussSeidel, BackwardSweepAlsoConverges) {
  const Csr a = poisson1d(12);
  const Vector b(12, 1.0);
  SolveOptions o;
  o.max_iters = 2000;
  o.tol = 1e-12;
  const SolveResult r =
      gauss_seidel_solve(a, b, o, SweepDirection::kBackward);
  EXPECT_TRUE(r.ok());
}

TEST(GaussSeidel, SymmetricSweepConvergesInFewerIterations) {
  const Csr a = poisson1d(30);
  const Vector b(30, 1.0);
  SolveOptions o;
  o.max_iters = 5000;
  o.tol = 1e-12;
  const SolveResult fwd = gauss_seidel_solve(a, b, o);
  const SolveResult sym =
      gauss_seidel_solve(a, b, o, SweepDirection::kSymmetric);
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(sym.ok());
  EXPECT_LT(sym.iterations, fwd.iterations);
}

TEST(Sor, OptimalOmegaBeatsGaussSeidel) {
  const index_t n = 40;
  const Csr a = poisson1d(n);
  const Vector b(static_cast<std::size_t>(n), 1.0);
  // Optimal SOR omega for Poisson: 2 / (1 + sin(pi h)).
  const double h = 1.0 / static_cast<double>(n + 1);
  const double omega = 2.0 / (1.0 + std::sin(std::numbers::pi * h));
  SolveOptions o;
  o.max_iters = 10000;
  o.tol = 1e-12;
  const SolveResult gs = gauss_seidel_solve(a, b, o);
  const SolveResult sor = sor_solve(a, b, omega, o);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(sor.ok());
  EXPECT_LT(sor.iterations, gs.iterations / 2);
}

TEST(Sor, OmegaOneIsGaussSeidel) {
  const Csr a = poisson1d(10);
  const Vector b(10, 2.0);
  SolveOptions o;
  o.max_iters = 30;
  o.tol = 0.0;
  const SolveResult gs = gauss_seidel_solve(a, b, o);
  const SolveResult sor = sor_solve(a, b, 1.0, o);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(gs.x[i], sor.x[i]);
  }
}

TEST(Sor, RejectsOmegaOutOfRange) {
  const Csr a = poisson1d(4);
  const Vector b(4, 1.0);
  EXPECT_THROW((void)sor_solve(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW((void)sor_solve(a, b, 2.0), std::invalid_argument);
}

TEST(GaussSeidel, ConvergesOnStructuralUnlikeJacobi) {
  // Classical theory: Gauss-Seidel converges for every SPD matrix, even
  // when rho(B) = 2.65 makes Jacobi-type methods diverge. (The paper's
  // Fig. 6e shows the real s1rmt3m1 defeating GS too within its plot
  // window; our surrogate is better conditioned — documented deviation,
  // see EXPERIMENTS.md.)
  const index_t m = 12;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions o;
  o.max_iters = 20000;
  o.tol = 1e-10;
  o.divergence_limit = 1e10;
  const SolveResult gs = gauss_seidel_solve(a, b, o);
  EXPECT_TRUE(gs.ok());
  const SolveResult jac = jacobi_solve(a, b, o);
  EXPECT_TRUE(jac.status == bars::SolverStatus::kDiverged);
}

TEST(GaussSeidel, HistoryStartsAtInitialResidual) {
  const Csr a = poisson1d(6);
  const Vector b(6, 1.0);
  SolveOptions o;
  o.max_iters = 3;
  o.tol = 0.0;
  const SolveResult r = gauss_seidel_solve(a, b, o);
  ASSERT_EQ(r.residual_history.size(), 4u);
  EXPECT_DOUBLE_EQ(r.residual_history[0], 1.0);  // x0 = 0: ||b||/||b||
}

}  // namespace
}  // namespace bars

#include "core/fcg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cg.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

Vector rhs(index_t n) {
  Vector b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::cos(0.17 * static_cast<double>(i));
  }
  return b;
}

TEST(Fcg, IdentityPreconditionerMatchesPlainCgIterations) {
  const Csr a = fv_like(10, 0.5);
  const Vector b = rhs(a.rows());
  FcgOptions fo;
  fo.solve.max_iters = 500;
  fo.solve.tol = 1e-12;
  fo.preconditioner = identity_preconditioner();
  const SolveResult f = fcg_solve(a, b, fo);
  CgOptions co;
  co.solve = fo.solve;
  const SolveResult c = cg_solve(a, b, co);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(c.ok());
  // Polak-Ribiere reduces to Fletcher-Reeves on a fixed SPD
  // preconditioner, so iteration counts agree closely.
  EXPECT_NEAR(static_cast<double>(f.iterations),
              static_cast<double>(c.iterations), 3.0);
}

TEST(Fcg, SolutionMatchesDirectSolve) {
  const Csr a = trefethen(120);
  const Vector b = rhs(120);
  FcgOptions fo;
  fo.solve.max_iters = 2000;
  fo.solve.tol = 1e-12;
  fo.preconditioner = jacobi_preconditioner();
  const SolveResult r = fcg_solve(a, b, fo);
  ASSERT_TRUE(r.ok());
  const Vector xd = Dense::from_csr(a).solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(r.x[i], xd[i], 1e-8);
  }
}

TEST(Fcg, AsyncPreconditionerCutsIterations) {
  // The paper's Section 5 scenario: block-async as preconditioner. It
  // must beat unpreconditioned CG in iteration count on a system where
  // relaxation is effective.
  const Csr a = fv_like(24, 0.3);
  const Vector b = rhs(a.rows());
  SolveOptions so;
  so.max_iters = 1000;
  so.tol = 1e-11;

  CgOptions co;
  co.solve = so;
  const SolveResult plain = cg_solve(a, b, co);

  FcgOptions fo;
  fo.solve = so;
  fo.preconditioner = block_async_preconditioner(2, 128, 2, 42);
  const SolveResult pre = fcg_solve(a, b, fo);

  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(pre.ok());
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Fcg, AsyncPreconditionerConvergesOnTrefethen) {
  const Csr a = trefethen(300);
  const Vector b = rhs(300);
  FcgOptions fo;
  fo.solve.max_iters = 500;
  fo.solve.tol = 1e-11;
  fo.preconditioner = block_async_preconditioner(2, 64, 2, 7);
  const SolveResult r = fcg_solve(a, b, fo);
  EXPECT_TRUE(r.ok());
  EXPECT_LE(relative_residual(a, b, r.x), 1e-10);
}

TEST(Fcg, RequiresPreconditioner) {
  const Csr a = poisson1d(4);
  const Vector b(4, 1.0);
  FcgOptions fo;  // no preconditioner set
  EXPECT_THROW((void)fcg_solve(a, b, fo), std::invalid_argument);
}

TEST(Fcg, IndefiniteSystemFlagsDivergence) {
  Coo c(2, 2);
  c.add(0, 0, 1.0);
  c.add(1, 1, -2.0);
  FcgOptions fo;
  fo.preconditioner = identity_preconditioner();
  const SolveResult r = fcg_solve(Csr::from_coo(c), {1.0, 1.0}, fo);
  EXPECT_TRUE(r.status == bars::SolverStatus::kDiverged);
}

TEST(Fcg, ZeroDiagonalJacobiPreconditionerThrows) {
  Coo c(2, 2);
  c.add(0, 1, 1.0);
  c.add(1, 0, 1.0);
  c.add(1, 1, 1.0);
  FcgOptions fo;
  fo.preconditioner = jacobi_preconditioner();
  EXPECT_THROW((void)fcg_solve(Csr::from_coo(c), {1.0, 1.0}, fo),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

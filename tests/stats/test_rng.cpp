#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bars {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformRealInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const value_t v = r.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalRoughlyCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal(3.0, 1.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(13);
  const auto s = r.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<index_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (index_t i : s) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
}

TEST(Rng, SampleAllElements) {
  Rng r(17);
  const auto s = r.sample_without_replacement(10, 10);
  std::set<index_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleRejectsBadK) {
  Rng r(1);
  EXPECT_THROW((void)r.sample_without_replacement(5, 6),
               std::invalid_argument);
  EXPECT_THROW((void)r.sample_without_replacement(5, -1),
               std::invalid_argument);
}

TEST(Rng, ForkSeedChangesStream) {
  Rng a(3);
  const auto s1 = a.fork_seed();
  const auto s2 = a.fork_seed();
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace bars

#include "stats/convergence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/jacobi.hpp"
#include "eigen/power_iteration.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

std::vector<value_t> geometric(value_t start, value_t ratio, int n) {
  std::vector<value_t> h;
  value_t v = start;
  for (int i = 0; i < n; ++i) {
    h.push_back(v);
    v *= ratio;
  }
  return h;
}

TEST(ContractionFactor, ExactGeometricSequence) {
  const auto h = geometric(1.0, 0.5, 30);
  EXPECT_NEAR(contraction_factor(h), 0.5, 1e-12);
}

TEST(ContractionFactor, IgnoresRoundingPlateau) {
  auto h = geometric(1.0, 0.1, 15);  // reaches 1e-14 at i=14
  for (int i = 0; i < 10; ++i) h.push_back(1e-16);  // plateau
  EXPECT_NEAR(contraction_factor(h), 0.1, 1e-9);
}

TEST(ContractionFactor, TooShortHistoryIsZero) {
  EXPECT_DOUBLE_EQ(contraction_factor({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(contraction_factor({}), 0.0);
}

TEST(ContractionFactor, MatchesJacobiSpectralRadius) {
  // Measured asymptotic contraction of the Jacobi solver must match
  // rho(B) of the iteration matrix.
  const Csr a = fv_like(16, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions o;
  o.max_iters = 200;
  o.tol = 0.0;
  const SolveResult r = jacobi_solve(a, b, o);
  const value_t rho = jacobi_spectral_radius(a).value;
  EXPECT_NEAR(contraction_factor(r.residual_history, 50), rho, 0.01);
}

TEST(IterationsTo, FindsFirstCrossing) {
  const auto h = geometric(1.0, 0.5, 20);
  EXPECT_EQ(iterations_to(h, 0.26), 2);   // 0.25 at index 2
  EXPECT_EQ(iterations_to(h, 2.0), 0);
  EXPECT_EQ(iterations_to(h, 1e-10), -1);
}

TEST(ExtrapolateIterations, ExactWhenReached) {
  const auto h = geometric(1.0, 0.5, 20);
  EXPECT_EQ(extrapolate_iterations(h, 0.26), 2);
}

TEST(ExtrapolateIterations, PredictsGeometricTail) {
  const auto h = geometric(1.0, 0.5, 11);  // last = 2^-10 ~ 9.8e-4
  // Needs ~10 more halvings to reach 1e-6: 2^-20 = 9.5e-7.
  const index_t k = extrapolate_iterations(h, 1e-6);
  EXPECT_GE(k, 19);
  EXPECT_LE(k, 21);
}

TEST(ExtrapolateIterations, NonContractingIsMinusOne) {
  const std::vector<value_t> flat(10, 1.0);
  EXPECT_EQ(extrapolate_iterations(flat, 1e-6), -1);
  const auto diverging = geometric(1.0, 1.5, 10);
  EXPECT_EQ(extrapolate_iterations(diverging, 1e-6), -1);
}

}  // namespace
}  // namespace bars

#include "stats/running_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bars {
namespace {

TEST(RunningStats, EmptyAccumulator) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.absolute_variation(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance: sum((x-5)^2) = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.standard_error(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
}

TEST(RunningStats, MinMaxAndVariations) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.absolute_variation(), 2.0);
  EXPECT_DOUBLE_EQ(s.relative_variation(), 1.0);  // 2 / mean(2)
}

TEST(RunningStats, RelativeVariationZeroMeanGuard) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.relative_variation(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  const double xs[] = {0.5, 1.5, -2.0, 3.25, 7.0, -0.25};
  for (int i = 0; i < 3; ++i) {
    a.add(xs[i]);
    all.add(xs[i]);
  }
  for (int i = 3; i < 6; ++i) {
    b.add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-14);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, WelfordStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double v : {1.0, 2.0, 3.0}) s.add(offset + v);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace bars

#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bars::report {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer-name", "2"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Format, Scientific) {
  EXPECT_EQ(fmt_sci(12345.678, 2), "1.23e+04");
  EXPECT_EQ(fmt_sci(0.5e-9, 1), "5.0e-10");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 3), "-0.500");
}

TEST(Format, Int) { EXPECT_EQ(fmt_int(1234567), "1234567"); }

TEST(Csv, WritesHeaderAndColumns) {
  std::ostringstream out;
  write_csv(out, {"x", "y"}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(out.str(), "x,y\n1,3\n2,4\n");
}

TEST(Csv, HandlesRaggedColumns) {
  std::ostringstream out;
  write_csv(out, {"x", "y"}, {{1.0}, {3.0, 4.0}});
  EXPECT_EQ(out.str(), "x,y\n1,3\n,4\n");
}

TEST(Csv, RejectsMismatch) {
  std::ostringstream out;
  EXPECT_THROW(write_csv(out, {"x"}, {{1.0}, {2.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace bars::report

#include "report/args.hpp"

#include <gtest/gtest.h>

namespace bars::report {
namespace {

Args make_args(std::vector<std::string> raw) {
  std::vector<char*> ptrs;
  static std::vector<std::string> storage;
  storage = std::move(raw);
  ptrs.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Args, ParsesKeyValue) {
  const Args a = make_args({"--runs=100", "--tol=1e-8", "--name=fv1"});
  EXPECT_EQ(a.get_int("runs", 0), 100);
  EXPECT_DOUBLE_EQ(a.get_double("tol", 0.0), 1e-8);
  EXPECT_EQ(a.get_string("name", ""), "fv1");
}

TEST(Args, FallbacksWhenMissing) {
  const Args a = make_args({});
  EXPECT_EQ(a.get_int("runs", 42), 42);
  EXPECT_DOUBLE_EQ(a.get_double("tol", 0.5), 0.5);
  EXPECT_EQ(a.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(a.has("runs"));
}

TEST(Args, FlagWithoutValue) {
  const Args a = make_args({"--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get_string("verbose", "x"), "");
}

TEST(Args, IgnoresNonDashArguments) {
  const Args a = make_args({"positional", "--k=1"});
  EXPECT_EQ(a.keys().size(), 1u);
  EXPECT_EQ(a.get_int("k", 0), 1);
}

TEST(Args, KeysListsAll) {
  const Args a = make_args({"--a=1", "--b=2"});
  const auto keys = a.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace bars::report

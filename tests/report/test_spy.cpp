#include "report/spy.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "matrices/generators.hpp"

namespace bars::report {
namespace {

TEST(Spy, TridiagonalShowsDiagonalBand) {
  std::ostringstream out;
  SpyOptions o;
  o.width = 10;
  o.height = 10;
  spy(out, poisson1d(10), o);
  const std::string s = out.str();
  // 10 rows + 2 border lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 12);
  // Row i of the plot must mark column i (diagonal) and leave the far
  // corner empty.
  std::istringstream lines(s);
  std::string line;
  std::getline(lines, line);  // top border
  std::getline(lines, line);  // first matrix row
  EXPECT_NE(line[1], ' ');    // (0,0) occupied
  EXPECT_EQ(line[9], ' ');    // (0,8) empty
}

TEST(Spy, AntiDiagonalStructureVisible) {
  const Csr a = chem97ztz_like(200, 0.5);
  std::ostringstream out;
  SpyOptions o;
  o.width = 20;
  o.height = 20;
  spy(out, a, o);
  const std::string s = out.str();
  // The anti-diagonal coupling puts a mark in the top-right cell region.
  std::istringstream lines(s);
  std::string line;
  std::getline(lines, line);
  std::getline(lines, line);  // first row
  EXPECT_NE(line[20], ' ');   // col 19 (+1 border offset): anti corner
}

TEST(Spy, DownsamplesLargeMatrices) {
  std::ostringstream out;
  SpyOptions o;
  o.width = 30;
  o.height = 15;
  spy(out, trefethen(2000), o);
  const std::string s = out.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 17);
}

TEST(Spy, RejectsBadOptions) {
  std::ostringstream out;
  SpyOptions o;
  o.width = 0;
  EXPECT_THROW(spy(out, poisson1d(4), o), std::invalid_argument);
  SpyOptions o2;
  o2.ramp = "x";
  EXPECT_THROW(spy(out, poisson1d(4), o2), std::invalid_argument);
}

TEST(Spy, EmptyMatrixAllBlank) {
  std::ostringstream out;
  SpyOptions o;
  o.width = 5;
  o.height = 5;
  spy(out, Csr::from_coo(Coo(5, 5)), o);
  const std::string s = out.str();
  EXPECT_EQ(s.find('#'), std::string::npos);
  EXPECT_EQ(s.find('.'), std::string::npos);
}

}  // namespace
}  // namespace bars::report

#include "mg/multigrid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver_types.hpp"
#include "matrices/generators.hpp"

namespace bars::mg {
namespace {

Vector smooth_rhs(index_t n) {
  Vector b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::sin(0.01 * static_cast<double>(i));
  }
  return b;
}

TEST(Multigrid, ConstructsHierarchy) {
  const PoissonMultigrid mg(31, 0.0, gauss_seidel_smoother());
  EXPECT_GE(mg.num_levels(), 3);
  EXPECT_EQ(mg.fine_matrix().rows(), 31 * 31);
}

TEST(Multigrid, RejectsNonPow2Minus1Grid) {
  EXPECT_THROW(PoissonMultigrid(30, 0.0, gauss_seidel_smoother()),
               std::invalid_argument);
  EXPECT_THROW(PoissonMultigrid(31, 0.0, nullptr), std::invalid_argument);
}

TEST(Multigrid, GaussSeidelSmootherConvergesGridIndependent) {
  // Multigrid's defining property: cycle count roughly independent of
  // the grid size.
  index_t cycles_small = 0, cycles_large = 0;
  {
    const PoissonMultigrid mg(15, 0.0, gauss_seidel_smoother());
    const auto r = mg.solve(smooth_rhs(15 * 15), {.solve = {.max_iters = 100, .tol = 1e-9}});
    ASSERT_TRUE(r.ok());
    cycles_small = r.iterations;
  }
  {
    const PoissonMultigrid mg(63, 0.0, gauss_seidel_smoother());
    const auto r = mg.solve(smooth_rhs(63 * 63), {.solve = {.max_iters = 100, .tol = 1e-9}});
    ASSERT_TRUE(r.ok());
    cycles_large = r.iterations;
  }
  EXPECT_LE(cycles_large, cycles_small + 5);
  EXPECT_LE(cycles_large, 25);
}

TEST(Multigrid, JacobiSmootherConverges) {
  const PoissonMultigrid mg(31, 0.0, jacobi_smoother(0.8));
  const auto r = mg.solve(smooth_rhs(31 * 31), {.solve = {.max_iters = 100, .tol = 1e-9}});
  EXPECT_TRUE(r.ok());
}

TEST(Multigrid, BlockAsyncSmootherConverges) {
  // The paper's future-work scenario: block-asynchronous relaxation as
  // a multigrid smoother.
  const PoissonMultigrid mg(31, 0.0, block_async_smoother(64, 2, 5));
  const auto r = mg.solve(smooth_rhs(31 * 31), {.solve = {.max_iters = 100, .tol = 1e-9}});
  EXPECT_TRUE(r.ok());
  EXPECT_LE(r.iterations, 40);
}

TEST(Multigrid, SolutionSolvesSystem) {
  const PoissonMultigrid mg(31, 0.5, gauss_seidel_smoother());
  const Vector b = smooth_rhs(31 * 31);
  const auto r = mg.solve(b, {.solve = {.max_iters = 100, .tol = 1e-10}});
  ASSERT_TRUE(r.ok());
  EXPECT_LE(relative_residual(mg.fine_matrix(), b, r.x), 1e-10);
}

TEST(Multigrid, ResidualHistoryContracts) {
  const PoissonMultigrid mg(31, 0.0, gauss_seidel_smoother());
  const auto r = mg.solve(smooth_rhs(31 * 31), {.solve = {.max_iters = 8, .tol = 0.0}});
  ASSERT_GE(r.residual_history.size(), 3u);
  // Each V-cycle must contract the residual substantially.
  for (std::size_t i = 2; i < r.residual_history.size(); ++i) {
    if (r.residual_history[i - 1] < 1e-14) break;
    EXPECT_LT(r.residual_history[i], 0.5 * r.residual_history[i - 1]);
  }
}

TEST(Multigrid, WCycleConvergesInFewerCyclesThanV) {
  const PoissonMultigrid mg(31, 0.0, jacobi_smoother(0.8));
  MgOptions v;
  v.solve.tol = 1e-9;
  MgOptions w = v;
  w.cycle = CycleType::kW;
  const auto rv = mg.solve(smooth_rhs(31 * 31), v);
  const auto rw = mg.solve(smooth_rhs(31 * 31), w);
  ASSERT_TRUE(rv.ok());
  ASSERT_TRUE(rw.ok());
  EXPECT_LE(rw.iterations, rv.iterations);
}

TEST(Multigrid, SizeMismatchThrows) {
  const PoissonMultigrid mg(15, 0.0, gauss_seidel_smoother());
  EXPECT_THROW((void)mg.solve(Vector(10, 1.0)), std::invalid_argument);
}

}  // namespace
}  // namespace bars::mg

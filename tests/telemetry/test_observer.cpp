#include "telemetry/observer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "telemetry/options.hpp"
#include "telemetry/probe.hpp"
#include "telemetry/sinks.hpp"

namespace bars::telemetry {
namespace {

TEST(EventEnums, ToStringNamesAreHyphenated) {
  EXPECT_STREQ(to_string(TimeDomain::kVirtual), "virtual");
  EXPECT_STREQ(to_string(RecoveryEvent::Kind::kDampedRestart),
               "damped-restart");
  EXPECT_STREQ(to_string(SolverStatus::kRecoveredConverged),
               "recovered-converged");
  EXPECT_STREQ(to_string(SolverStatus::kMaxIterations), "max-iterations");
}

TEST(SolverStatusTest, SucceededCoversBothConvergedStates) {
  EXPECT_TRUE(succeeded(SolverStatus::kConverged));
  EXPECT_TRUE(succeeded(SolverStatus::kRecoveredConverged));
  EXPECT_FALSE(succeeded(SolverStatus::kMaxIterations));
  EXPECT_FALSE(succeeded(SolverStatus::kDiverged));
  EXPECT_FALSE(succeeded(SolverStatus::kAborted));
}

TEST(MultiObserver, FansOutInRegistrationOrderAndIgnoresNull) {
  RecordingObserver first, second;
  MultiObserver multi;
  multi.add(&first);
  multi.add(nullptr);
  multi.add(&second);
  EXPECT_EQ(multi.size(), 2u);

  multi.on_start({"s", 4, 8, 1, 1, TimeDomain::kNone});
  multi.on_iteration({1, 0.5, 0.0});
  multi.on_block_commit({2, 0, 3, 1.0, 1});
  multi.on_recovery_event({RecoveryEvent::Kind::kRollback, 1, 0.5, 0});
  multi.on_finish({SolverStatus::kConverged, 1, 0.5, 1.0, 0.0, 1, 1, 1});

  for (const RecordingObserver* obs : {&first, &second}) {
    EXPECT_EQ(obs->starts.size(), 1u);
    EXPECT_EQ(obs->iterations.size(), 1u);
    EXPECT_EQ(obs->commits.size(), 1u);
    EXPECT_EQ(obs->recoveries.size(), 1u);
    EXPECT_EQ(obs->finishes.size(), 1u);
  }
  EXPECT_EQ(first.commits[0].block, 2);
  EXPECT_EQ(first.finishes[0].status, SolverStatus::kConverged);
}

TEST(SolveProbe, InactiveWithoutObserver) {
  const TelemetryOptions off{};
  SolveProbe probe(off, "probe-test");
  EXPECT_FALSE(probe.active());
  // All hooks are no-ops; nothing to assert beyond "does not crash".
  probe.start(10, 20);
  probe.iteration(1, 0.5);
  probe.finish(SolverStatus::kConverged, 1, 0.5);
}

TEST(SolveProbe, EmitsPairedStartAndFinishWithWallClock) {
  RecordingObserver rec;
  TelemetryOptions opts;
  opts.observer = &rec;
  SolveProbe probe(opts, "probe-test");
  EXPECT_TRUE(probe.active());

  probe.start(10, 20, 2, 1, TimeDomain::kVirtual);
  probe.iteration(0, 1.0);
  probe.iteration(1, 0.5);
  probe.finish(SolverStatus::kConverged, 1, 0.5, /*block_commits=*/4,
               /*max_staleness=*/2, /*virtual_time=*/3.0,
               /*recovery_actions=*/0);

  ASSERT_EQ(rec.starts.size(), 1u);
  EXPECT_STREQ(rec.starts[0].solver, "probe-test");
  EXPECT_EQ(rec.starts[0].rows, 10);
  EXPECT_EQ(rec.starts[0].time_domain, TimeDomain::kVirtual);
  ASSERT_EQ(rec.iterations.size(), 2u);
  EXPECT_EQ(rec.iterations[0].iteration, 0);
  ASSERT_EQ(rec.finishes.size(), 1u);
  EXPECT_EQ(rec.finishes[0].block_commits, 4);
  EXPECT_GE(rec.finishes[0].wall_seconds, 0.0);
}

TEST(JsonLinesSinkTest, OneWellFormedObjectPerEvent) {
  std::ostringstream os;
  JsonLinesSink sink(os);
  sink.on_start({"jsonl-test", 3, 9, 1, 1, TimeDomain::kWall});
  sink.on_iteration({1, 0.25, 0.5});
  sink.on_block_commit({2, 1, 3, 0.75, 4});
  sink.on_recovery_event({RecoveryEvent::Kind::kLinkRetry, 1, 0.25, 7});
  sink.on_finish({SolverStatus::kDiverged, 1, 0.25, 0.75, 0.0, 1, 4, 1});

  std::istringstream lines(os.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"event\":\""), std::string::npos) << line;
  }
  EXPECT_EQ(n, 5);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"solver\":\"jsonl-test\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"link-retry\""), std::string::npos);
  EXPECT_NE(text.find("\"status\":\"diverged\""), std::string::npos);
  EXPECT_NE(text.find("\"staleness\":4"), std::string::npos);
}

TEST(CsvSinkTest, HeaderAndOneRowPerEvent) {
  std::ostringstream os;
  CsvSink sink(os);
  sink.on_start({"csv-test", 3, 9, 1, 1, TimeDomain::kNone});
  sink.on_finish({SolverStatus::kConverged, 2, 0.1, 0.0, 0.0, 0, 0, 0});

  std::istringstream lines(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "event,solver,status,iter,residual,time,block,device,"
            "generation,staleness,kind,detail");
  std::string row;
  int rows = 0;
  while (std::getline(lines, row)) ++rows;
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace bars::telemetry

/// End-to-end telemetry contract: every registry solver emits a
/// well-formed event stream, the metrics bridge agrees with the event
/// counts, and attaching an observer never perturbs the iterate (the
/// serial-vs-parallel bit-identity guarantee extends to observed runs).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/block_async.hpp"
#include "core/registry.hpp"
#include "matrices/generators.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/observer.hpp"
#include "telemetry/sinks.hpp"

namespace bars {
namespace {

class ObservedRegistrySolvers : public ::testing::TestWithParam<std::string> {
};

/// Round-trip every registered solver with a recording observer and
/// assert the stream invariants from telemetry/events.hpp.
TEST_P(ObservedRegistrySolvers, EventStreamInvariantsHold) {
  const Csr a = fv_like(15, 0.8);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 + 0.01 * double(i);

  telemetry::RecordingObserver rec;
  telemetry::MetricsRegistry registry;
  telemetry::MetricsObserver metrics(registry);
  telemetry::MultiObserver multi;
  multi.add(&rec);
  multi.add(&metrics);

  RegistrySolveOptions o;
  o.solve.max_iters = 20000;
  o.solve.tol = 1e-11;
  o.block_size = 32;
  o.local_iters = 2;
  o.num_threads = 2;
  o.solve.telemetry.observer = &multi;
  o.solve.telemetry.metrics = &registry;
  const SolveResult r = find_solver(GetParam())(a, b, o);
  ASSERT_TRUE(r.ok()) << GetParam();

  // start/finish pairing: exactly one each, start precedes everything.
  ASSERT_EQ(rec.starts.size(), 1u) << GetParam();
  ASSERT_EQ(rec.finishes.size(), 1u) << GetParam();
  EXPECT_EQ(rec.starts[0].rows, a.rows());
  EXPECT_EQ(rec.starts[0].nnz, a.nnz());
  EXPECT_EQ(rec.finishes[0].status, r.status);
  EXPECT_EQ(rec.finishes[0].iterations, r.iterations);

  // Iteration indices are monotone increasing starting at 0.
  ASSERT_GE(rec.iterations.size(), 1u) << GetParam();
  EXPECT_EQ(rec.iterations.front().iteration, 0);
  for (std::size_t i = 1; i < rec.iterations.size(); ++i) {
    EXPECT_LT(rec.iterations[i - 1].iteration, rec.iterations[i].iteration)
        << GetParam() << " at event " << i;
  }

  // Metrics bridge agrees with the raw event stream.
  EXPECT_EQ(registry.counter("solve_starts").value(), 1u);
  EXPECT_EQ(registry.counter("solve_iterations").value(),
            rec.iterations.size());
  EXPECT_EQ(registry.counter("block_commits").value(), rec.commits.size());
  EXPECT_EQ(registry.histogram("commit_staleness", {}).total(),
            rec.commits.size());

  // When the solver emits per-commit events, the finish summary must
  // agree with the stream. (thread-async reports a commit total in the
  // summary but has no per-commit stream — its workers run outside the
  // serial-callback context.)
  if (!rec.commits.empty()) {
    EXPECT_EQ(rec.finishes[0].block_commits,
              static_cast<index_t>(rec.commits.size()))
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, ObservedRegistrySolvers,
    ::testing::Values("jacobi", "scaled-jacobi", "gauss-seidel",
                      "symmetric-gs", "sor", "cg", "gmres", "pcg-jacobi",
                      "fcg-jacobi", "fcg-async", "block-jacobi",
                      "block-async", "thread-async", "mg", "mg-async",
                      "fcg-mg"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

/// The block-async executor emits one commit event per completed block
/// execution, in deterministic order; generations count up per block.
TEST(BlockCommitStream, MatchesExecutorBookkeeping) {
  const Csr a = fv_like(15, 0.8);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  telemetry::RecordingObserver rec;
  BlockAsyncOptions o;
  o.solve.max_iters = 30;
  o.solve.tol = 0.0;
  o.block_size = 32;
  o.local_iters = 2;
  o.solve.telemetry.observer = &rec;
  const BlockAsyncResult r = block_async_solve(a, b, o);

  index_t total_execs = 0;
  for (const index_t e : r.block_executions) total_execs += e;
  ASSERT_GT(total_execs, 0);
  EXPECT_EQ(static_cast<index_t>(rec.commits.size()), total_execs);

  // Generations per block are 0,1,2,... in commit order.
  std::vector<index_t> next_gen(r.block_executions.size(), 0);
  for (const telemetry::BlockCommitEvent& ev : rec.commits) {
    ASSERT_LT(static_cast<std::size_t>(ev.block), next_gen.size());
    EXPECT_EQ(ev.generation, next_gen[static_cast<std::size_t>(ev.block)]);
    ++next_gen[static_cast<std::size_t>(ev.block)];
  }

  // TelemetryOptions::block_commits = false mutes only the commit
  // stream; iteration and start/finish events still flow.
  telemetry::RecordingObserver muted;
  o.solve.telemetry.observer = &muted;
  o.solve.telemetry.block_commits = false;
  (void)block_async_solve(a, b, o);
  EXPECT_EQ(muted.commits.size(), 0u);
  EXPECT_EQ(muted.starts.size(), 1u);
  EXPECT_GE(muted.iterations.size(), 1u);
}

/// PR 2's bit-identity contract survives observation: the parallel
/// commit path with an observer attached reproduces the serial
/// unobserved iterate exactly, and the serial and parallel observed
/// event streams are identical.
TEST(BitIdentity, ObserverDoesNotPerturbParallelCommits) {
  const Csr a = fv_like(31, 0.4);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  BlockAsyncOptions o;
  o.solve.max_iters = 40;
  o.solve.tol = 1e-13;
  o.block_size = 64;
  o.local_iters = 2;
  o.policy = gpusim::SchedulePolicy::kRoundRobin;

  o.num_workers = 0;
  const BlockAsyncResult plain = block_async_solve(a, b, o);

  telemetry::RecordingObserver serial_rec;
  o.solve.telemetry.observer = &serial_rec;
  const BlockAsyncResult serial = block_async_solve(a, b, o);

  telemetry::RecordingObserver par_rec;
  o.num_workers = 4;
  o.solve.telemetry.observer = &par_rec;
  const BlockAsyncResult par = block_async_solve(a, b, o);

  // Observation changes nothing about the math.
  EXPECT_EQ(plain.solve.x, serial.solve.x);
  EXPECT_EQ(plain.solve.residual_history, serial.solve.residual_history);
  // Parallel commit path with observer == serial path, bitwise.
  EXPECT_EQ(serial.solve.x, par.solve.x);
  EXPECT_EQ(serial.solve.residual_history, par.solve.residual_history);
  EXPECT_EQ(serial.solve.status, par.solve.status);

  // The commit event stream is part of the deterministic contract.
  ASSERT_EQ(serial_rec.commits.size(), par_rec.commits.size());
  for (std::size_t i = 0; i < serial_rec.commits.size(); ++i) {
    EXPECT_EQ(serial_rec.commits[i].block, par_rec.commits[i].block);
    EXPECT_EQ(serial_rec.commits[i].generation, par_rec.commits[i].generation);
    EXPECT_EQ(serial_rec.commits[i].virtual_time,
              par_rec.commits[i].virtual_time);
    EXPECT_EQ(serial_rec.commits[i].staleness, par_rec.commits[i].staleness);
  }
}

/// Golden-schema check for the JSONL sink on a real solve: every line
/// is a single object tagged with its event type, and the stream is
/// bracketed by exactly one start and one finish.
TEST(JsonLinesSchema, RealSolveStream) {
  const Csr a = fv_like(15, 0.8);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);

  std::ostringstream os;
  telemetry::JsonLinesSink sink(os);
  BlockAsyncOptions o;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-10;
  o.block_size = 32;
  o.local_iters = 2;
  o.solve.telemetry.observer = &sink;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  ASSERT_TRUE(r.solve.ok());

  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> kinds;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    const auto tag = line.find("\"event\":\"");
    ASSERT_NE(tag, std::string::npos) << line;
    const auto from = tag + 9;
    kinds.push_back(line.substr(from, line.find('"', from) - from));
  }
  ASSERT_GE(kinds.size(), 3u);
  EXPECT_EQ(kinds.front(), "start");
  EXPECT_EQ(kinds.back(), "finish");
  int starts = 0, finishes = 0, iterations = 0, commits = 0;
  for (const std::string& k : kinds) {
    if (k == "start") ++starts;
    if (k == "finish") ++finishes;
    if (k == "iteration") ++iterations;
    if (k == "block_commit") ++commits;
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(finishes, 1);
  EXPECT_GE(iterations, 1);
  EXPECT_GT(commits, 0);
  EXPECT_EQ(static_cast<std::size_t>(starts + finishes + iterations + commits),
            kinds.size());
}

}  // namespace
}  // namespace bars

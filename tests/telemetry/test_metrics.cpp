#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <stdexcept>

namespace bars::telemetry {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, KeepsLastSample) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Histogram, RoutesSamplesToBuckets) {
  constexpr std::array<value_t, 3> bounds{1.0, 2.0, 4.0};
  Histogram h{std::span<const value_t>(bounds)};
  ASSERT_EQ(h.num_buckets(), 4u);  // three finite + the +Inf bucket

  h.record(0.5);   // <= 1
  h.record(1.0);   // <= 1 (bounds are inclusive)
  h.record(1.5);   // <= 2
  h.record(100.0); // +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
}

TEST(HistogramDeathTest, RejectsNonIncreasingBounds) {
  constexpr std::array<value_t, 2> bad{2.0, 2.0};
  EXPECT_DEATH(Histogram{std::span<const value_t>(bad)},
               "strictly increasing");
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits");
  a.inc(7);
  EXPECT_EQ(reg.counter("hits").value(), 7u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, HandlesStayStableAcrossRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  // Force internal growth; deque-backed storage must not move `first`.
  for (int i = 0; i < 64; ++i) {
    reg.counter("c" + std::to_string(i)).inc();
  }
  first.inc(5);
  EXPECT_EQ(reg.counter("first").value(), 5u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {}), std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("block_commits").inc(3);
  reg.gauge("last_residual").set(0.5);
  constexpr std::array<value_t, 2> bounds{1.0, 2.0};
  Histogram& h = reg.histogram("staleness", std::span<const value_t>(bounds));
  h.record(0.5);
  h.record(3.0);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE bars_block_commits counter"),
            std::string::npos);
  EXPECT_NE(text.find("bars_block_commits 3"), std::string::npos);
  EXPECT_NE(text.find("bars_last_residual 0.5"), std::string::npos);
  // Cumulative le buckets ending in +Inf, plus _sum/_count.
  EXPECT_NE(text.find("bars_staleness_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("bars_staleness_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("bars_staleness_count 2"), std::string::npos);
  EXPECT_NE(text.find("bars_staleness_sum 3.5"), std::string::npos);
}

TEST(MetricsRegistry, CsvExport) {
  MetricsRegistry reg;
  reg.counter("events").inc(2);
  reg.gauge("level").set(1.5);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("events,counter,value,2"), std::string::npos);
  EXPECT_NE(text.find("level,gauge,value,1.5"), std::string::npos);
}

TEST(MetricsObserver, BridgesEventsIntoInstruments) {
  MetricsRegistry reg;
  MetricsObserver obs(reg);

  obs.on_start({"test-solver", 10, 50, 2, 1, TimeDomain::kVirtual});
  obs.on_iteration({1, 1e-3, 0.5});
  obs.on_block_commit({0, 0, 1, 0.25, 2});
  obs.on_block_commit({1, 0, 1, 0.5, 0});
  obs.on_recovery_event({RecoveryEvent::Kind::kRollback, 1, 1e-2, 0});
  obs.on_finish({SolverStatus::kConverged, 1, 1e-3, 0.5, 0.01, 2, 2, 1});

  EXPECT_EQ(reg.counter("solve_starts").value(), 1u);
  EXPECT_EQ(reg.counter("solve_iterations").value(), 1u);
  EXPECT_EQ(reg.counter("block_commits").value(), 2u);
  EXPECT_EQ(reg.counter("recovery_events").value(), 1u);
  EXPECT_EQ(reg.counter("recovery_rollbacks").value(), 1u);
  EXPECT_EQ(reg.histogram("commit_staleness", {}).total(), 2u);
  EXPECT_EQ(reg.gauge("last_residual").value(), 1e-3);
}

}  // namespace
}  // namespace bars::telemetry

#include "gpusim/multi_device.hpp"

#include <gtest/gtest.h>

#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "matrices/generators.hpp"
#include "sparse/partition.hpp"

namespace bars::gpusim {
namespace {

struct Fixture {
  Csr a;
  Vector b;
  BlockJacobiKernel kernel;
  /// fv-type reaction-diffusion system on an m x m grid: well
  /// conditioned enough that every scheme converges within the budgets.
  explicit Fixture(index_t m = 12, index_t block = 16, index_t k = 2)
      : a(fv_like(m, 0.6)),
        b(static_cast<std::size_t>(a.rows()), 1.0),
        kernel(a, b, RowPartition::uniform(a.rows(), block), k) {}
  [[nodiscard]] value_t residual(const Vector& x) const {
    return relative_residual(a, b, x);
  }
};

MultiDeviceResult run_with(Fixture& s, TransferScheme scheme, index_t devices,
                           index_t max_iters = 5000, value_t tol = 1e-11) {
  MultiDeviceOptions o;
  o.num_devices = devices;
  o.scheme = scheme;
  o.stopping.max_global_iters = max_iters;
  o.stopping.tol = tol;
  o.seed = 77;
  MultiDeviceExecutor ex(s.kernel, o);
  Vector x(s.b.size(), 0.0);
  return ex.run(x, [&](const Vector& v) { return s.residual(v); });
}

TEST(MultiDevice, AllSchemesConvergeSingleDevice) {
  Fixture s;
  for (auto scheme :
       {TransferScheme::kAMC, TransferScheme::kDC, TransferScheme::kDK}) {
    const auto r = run_with(s, scheme, 1);
    EXPECT_TRUE(r.ok()) << to_string(scheme);
  }
}

TEST(MultiDevice, AllSchemesConvergeOnFourDevices) {
  Fixture s;
  for (auto scheme :
       {TransferScheme::kAMC, TransferScheme::kDC, TransferScheme::kDK}) {
    const auto r = run_with(s, scheme, 4);
    EXPECT_TRUE(r.ok()) << to_string(scheme);
    EXPECT_LE(r.residual_history.back(), 1e-11) << to_string(scheme);
  }
}

TEST(MultiDevice, AmcTwoDevicesFasterThanOne) {
  Fixture s(16, 16, 2);
  const auto r1 = run_with(s, TransferScheme::kAMC, 1);
  const auto r2 = run_with(s, TransferScheme::kAMC, 2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(r2.virtual_time, r1.virtual_time);
}

TEST(MultiDevice, TransfersAccountedAmc) {
  Fixture s;
  const auto r = run_with(s, TransferScheme::kAMC, 2, 50, 0.0);
  // Every sweep: one upload + one download per peer, both host<->device.
  EXPECT_GT(r.num_transfers, 0);
  EXPECT_GT(r.bytes_host_device, 0.0);
  EXPECT_DOUBLE_EQ(r.bytes_device_device, 0.0);
}

TEST(MultiDevice, TransfersAccountedDc) {
  Fixture s;
  const auto r = run_with(s, TransferScheme::kDC, 2, 50, 0.0);
  EXPECT_GT(r.bytes_device_device, 0.0);
  EXPECT_DOUBLE_EQ(r.bytes_host_device, 0.0);
}

TEST(MultiDevice, DkHasNoBulkTransfersFromMaster) {
  Fixture s;
  const auto r1 = run_with(s, TransferScheme::kDK, 1, 50, 0.0);
  EXPECT_DOUBLE_EQ(r1.bytes_device_device, 0.0);
  const auto r2 = run_with(s, TransferScheme::kDK, 2, 50, 0.0);
  EXPECT_GT(r2.bytes_device_device, 0.0);  // remote sweep traffic accounting
}

TEST(MultiDevice, DeterministicGivenSeed) {
  Fixture s;
  const auto r1 = run_with(s, TransferScheme::kAMC, 3, 40, 0.0);
  const auto r2 = run_with(s, TransferScheme::kAMC, 3, 40, 0.0);
  ASSERT_EQ(r1.residual_history.size(), r2.residual_history.size());
  for (std::size_t i = 0; i < r1.residual_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.residual_history[i], r2.residual_history[i]);
  }
}

TEST(MultiDevice, ResultMatchesSolutionAcrossSchemes) {
  // All schemes must converge to the same solution of A x = b.
  Fixture s;
  const Vector ref = [&] {
    auto r = run_with(s, TransferScheme::kAMC, 1);
    Vector x(s.b.size(), 0.0);
    MultiDeviceOptions o;
    o.num_devices = 1;
    o.stopping.tol = 1e-12;
    o.stopping.max_global_iters = 20000;
    MultiDeviceExecutor ex(s.kernel, o);
    (void)ex.run(x, [&](const Vector& v) { return s.residual(v); });
    return x;
  }();
  for (auto scheme : {TransferScheme::kDC, TransferScheme::kDK}) {
    MultiDeviceOptions o;
    o.num_devices = 3;
    o.scheme = scheme;
    o.stopping.tol = 1e-12;
    o.stopping.max_global_iters = 20000;
    MultiDeviceExecutor ex(s.kernel, o);
    Vector x(s.b.size(), 0.0);
    (void)ex.run(x, [&](const Vector& v) { return s.residual(v); });
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], ref[i], 1e-9) << to_string(scheme) << " i=" << i;
    }
  }
}

TEST(MultiDevice, RejectsBadOptions) {
  Fixture s;
  MultiDeviceOptions o;
  o.num_devices = 0;
  EXPECT_THROW(MultiDeviceExecutor(s.kernel, o), std::invalid_argument);
  o.num_devices = 9;
  EXPECT_THROW(MultiDeviceExecutor(s.kernel, o), std::invalid_argument);
  o.num_devices = 2;
  o.global_iteration_time = -1.0;
  EXPECT_THROW(MultiDeviceExecutor(s.kernel, o), std::invalid_argument);
}

TEST(MultiDevice, MoreDevicesThanBlocksClamps) {
  Fixture s(6, 18, 1);  // n = 36: only 2 blocks
  const auto r = run_with(s, TransferScheme::kAMC, 4);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace bars::gpusim

#include "gpusim/cost_model.hpp"

#include <gtest/gtest.h>

namespace bars::gpusim {
namespace {

const MatrixShape kFv3{"fv3", 9801, 87025};
const MatrixShape kUnknown{"mystery", 5000, 50000};

TEST(CostModel, CalibratedTableMatchesPaperTable5) {
  const CostModel m = CostModel::calibrated_to_paper();
  EXPECT_DOUBLE_EQ(m.host_gauss_seidel_iteration(kFv3), 0.125577);
  EXPECT_DOUBLE_EQ(m.gpu_jacobi_iteration(kFv3), 0.021009);
  EXPECT_DOUBLE_EQ(
      m.host_gauss_seidel_iteration({"Chem97ZtZ", 2541, 7361}), 0.008448);
  EXPECT_DOUBLE_EQ(m.gpu_jacobi_iteration({"Trefethen_2000", 2000, 41906}),
                   0.001494);
}

TEST(CostModel, AsyncTimeScalesLinearlyInLocalIters) {
  const CostModel m = CostModel::calibrated_to_paper();
  const value_t t1 = m.gpu_block_async_iteration(kFv3, 1);
  const value_t t5 = m.gpu_block_async_iteration(kFv3, 5);
  const value_t t9 = m.gpu_block_async_iteration(kFv3, 9);
  EXPECT_DOUBLE_EQ(t1, 0.011250);  // Table 4 async-(1)
  EXPECT_NEAR(t5 - t1, 4 * 0.000513, 1e-12);
  EXPECT_NEAR(t9 - t5, t5 - t1, 1e-12);
}

TEST(CostModel, Table4OverheadShape) {
  // Switching async-(1) -> async-(2) must cost < 5%; async-(9) < 40%
  // (Table 4 reports <35% on the real hardware).
  const CostModel m = CostModel::calibrated_to_paper();
  const value_t t1 = m.gpu_block_async_iteration(kFv3, 1);
  EXPECT_LT(m.gpu_block_async_iteration(kFv3, 2) / t1, 1.05);
  EXPECT_LT(m.gpu_block_async_iteration(kFv3, 9) / t1, 1.40);
}

TEST(CostModel, AsyncFiveCheaperThanJacobiIteration) {
  // Paper: "iteration time for Jacobi ... is higher than the time for
  // async-(5), despite the five local updates".
  const CostModel m = CostModel::calibrated_to_paper();
  for (const char* name :
       {"Chem97ZtZ", "fv1", "fv2", "fv3", "s1rmt3m1", "Trefethen_2000"}) {
    const MatrixShape s{name, 1000, 10000};
    EXPECT_LT(m.gpu_block_async_iteration(s, 5), m.gpu_jacobi_iteration(s))
        << name;
  }
}

TEST(CostModel, GpuFasterThanCpuGaussSeidel) {
  const CostModel m = CostModel::calibrated_to_paper();
  for (const char* name : {"Chem97ZtZ", "fv1", "fv3", "Trefethen_2000"}) {
    const MatrixShape s{name, 1000, 10000};
    EXPECT_LT(m.gpu_jacobi_iteration(s), m.host_gauss_seidel_iteration(s));
  }
}

TEST(CostModel, FallbackFormulaMonotoneInSize) {
  const CostModel m = CostModel::calibrated_to_paper();
  const MatrixShape small{"x", 100, 1000};
  const MatrixShape large{"y", 10000, 100000};
  EXPECT_LT(m.host_gauss_seidel_iteration(small),
            m.host_gauss_seidel_iteration(large));
  EXPECT_LT(m.gpu_jacobi_iteration(small), m.gpu_jacobi_iteration(large));
}

TEST(CostModel, SetCalibrationOverrides) {
  CostModel m = CostModel::calibrated_to_paper();
  m.set_calibration("fv3", {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.host_gauss_seidel_iteration(kFv3), 1.0);
  EXPECT_DOUBLE_EQ(m.gpu_block_async_iteration(kFv3, 2), 7.0);
}

TEST(CostModel, TransfersIncludeLatencyAndBandwidth) {
  const CostModel m = CostModel::calibrated_to_paper();
  const value_t t0 = m.pcie_transfer(0.0);
  EXPECT_GT(t0, 0.0);  // latency floor
  EXPECT_NEAR(m.pcie_transfer(8.0e9) - t0, 1.0, 1e-9);  // 8 GB at 8 GB/s
  EXPECT_GT(m.p2p_transfer(1.0e6, /*crosses_qpi=*/true),
            m.p2p_transfer(1.0e6, /*crosses_qpi=*/false));
}

TEST(CostModel, SetupOverheadDominatedByContextCreation) {
  const CostModel m = CostModel::calibrated_to_paper();
  EXPECT_GT(m.device_setup_overhead(kFv3), 0.29);
  EXPECT_LT(m.device_setup_overhead(kFv3), 0.35);
}

TEST(CostModel, CgCostsMoreThanJacobiPerIteration) {
  const CostModel m = CostModel::calibrated_to_paper();
  EXPECT_GT(m.gpu_cg_iteration(kFv3), m.gpu_jacobi_iteration(kFv3));
}

TEST(CostModel, UnknownMatrixUsesFormulas) {
  const CostModel m = CostModel::calibrated_to_paper();
  EXPECT_FALSE(m.calibration("mystery").has_value());
  EXPECT_GT(m.gpu_jacobi_iteration(kUnknown), 0.0);
  EXPECT_GT(m.gpu_block_async_iteration(kUnknown, 5),
            m.gpu_block_async_iteration(kUnknown, 1));
}

}  // namespace
}  // namespace bars::gpusim

/// Focused tests of the executor's semantic knobs: read_fraction,
/// pattern mode, fault transitions, divergence handling.

#include <gtest/gtest.h>

#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "gpusim/async_executor.hpp"
#include "matrices/generators.hpp"

namespace bars::gpusim {
namespace {

struct Sys {
  Csr a;
  Vector b;
  BlockJacobiKernel kernel;
  explicit Sys(index_t m = 10, index_t block = 20, index_t k = 1)
      : a(fv_like(m, 0.6)),
        b(static_cast<std::size_t>(a.rows()), 1.0),
        kernel(a, b, RowPartition::uniform(a.rows(), block), k) {}
  [[nodiscard]] value_t res(const Vector& x) const {
    return relative_residual(a, b, x);
  }
};

ExecutorResult run(const Sys& s, ExecutorOptions o) {
  AsyncExecutor ex(s.kernel, o);
  Vector x(s.b.size(), 0.0);
  return ex.run(x, [&](const Vector& v) { return s.res(v); });
}

TEST(ExecutorSemantics, ReadFractionChangesTrajectory) {
  Sys s;
  ExecutorOptions o;
  o.stopping.max_global_iters = 15;
  o.stopping.tol = 0.0;
  o.seed = 3;
  o.read_fraction = 0.0;
  const auto early = run(s, o);
  o.read_fraction = 1.0;
  const auto late = run(s, o);
  // Later reads see fresher values => faster convergence.
  EXPECT_LT(late.residual_history.back(), early.residual_history.back());
}

TEST(ExecutorSemantics, ReadFractionClamped) {
  Sys s;
  ExecutorOptions o;
  o.stopping.max_global_iters = 5;
  o.stopping.tol = 0.0;
  o.read_fraction = 7.0;  // clamped to 1; must not throw or misorder
  const auto r = run(s, o);
  EXPECT_EQ(r.global_iterations, 5);
}

TEST(ExecutorSemantics, PatternModeSharesScheduleAcrossSeeds) {
  Sys s;
  ExecutorOptions o;
  o.stopping.max_global_iters = 20;
  o.stopping.tol = 0.0;
  o.pattern_seed = 4242;
  o.run_noise = 0.0;  // no per-run noise: runs must be identical
  o.seed = 1;
  const auto r1 = run(s, o);
  o.seed = 2;
  const auto r2 = run(s, o);
  ASSERT_EQ(r1.residual_history.size(), r2.residual_history.size());
  for (std::size_t i = 0; i < r1.residual_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.residual_history[i], r2.residual_history[i]);
  }
}

TEST(ExecutorSemantics, PatternModeWithNoiseVariesSlightly) {
  Sys s;
  ExecutorOptions o;
  o.stopping.max_global_iters = 20;
  o.stopping.tol = 0.0;
  o.pattern_seed = 4242;
  o.run_noise = 1.0e-3;
  o.seed = 1;
  const auto r1 = run(s, o);
  o.seed = 2;
  const auto r2 = run(s, o);
  // Different but close: same order of magnitude at every checkpoint.
  bool differs = false;
  for (std::size_t i = 1; i < r1.residual_history.size(); ++i) {
    if (r1.residual_history[i] != r2.residual_history[i]) differs = true;
    if (r1.residual_history[i] > 1e-14) {
      const double ratio = r1.residual_history[i] / r2.residual_history[i];
      EXPECT_GT(ratio, 0.1);
      EXPECT_LT(ratio, 10.0);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ExecutorSemantics, FaultFreezesExactFraction) {
  Sys s(16, 16, 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 12;
  o.stopping.tol = 0.0;
  FaultPlan plan;
  plan.fail_at = 2;
  plan.fraction = 0.5;
  plan.recover_after = std::nullopt;
  plan.seed = 77;
  o.fault = plan;
  AsyncExecutor ex(s.kernel, o);
  Vector x(s.b.size(), 0.0);
  const auto r =
      ex.run(x, [&](const Vector& v) { return s.res(v); });
  (void)r;
  // Re-derive the mask and check frozen components kept their value
  // from around the failure iteration: rerun without failure for 2
  // iterations and compare — frozen entries must deviate from the
  // converged run.
  ExecutorOptions clean = o;
  clean.fault.reset();
  AsyncExecutor ex2(s.kernel, clean);
  Vector x2(s.b.size(), 0.0);
  (void)ex2.run(x2, [&](const Vector& v) { return s.res(v); });
  index_t differing = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i] - x2[i]) > 1e-12) ++differing;
  }
  // Roughly half the components froze early.
  EXPECT_GT(differing, static_cast<index_t>(x.size() / 4));
}

TEST(ExecutorSemantics, RecoveryTimingHonored) {
  Sys s(16, 32, 2);
  FaultPlan plan;
  plan.fail_at = 3;
  plan.fraction = 0.4;
  plan.recover_after = 6;
  ExecutorOptions o;
  o.stopping.max_global_iters = 500;
  o.stopping.tol = 1e-11;
  o.fault = plan;
  const auto faulty = run(s, o);
  ASSERT_TRUE(faulty.ok());
  ExecutorOptions clean = o;
  clean.fault.reset();
  const auto ok = run(s, clean);
  ASSERT_TRUE(ok.ok());
  // The outage window (6 iterations) must show up as extra iterations.
  EXPECT_GE(faulty.global_iterations, ok.global_iterations + 3);
}

TEST(ExecutorSemantics, HistoryAlignsWithIterationCount) {
  Sys s;
  ExecutorOptions o;
  o.stopping.max_global_iters = 17;
  o.stopping.tol = 0.0;
  const auto r = run(s, o);
  EXPECT_EQ(r.global_iterations, 17);
  EXPECT_EQ(r.residual_history.size(), 18u);
  EXPECT_EQ(r.time_history.size(), 18u);
}

TEST(ExecutorSemantics, ShuffledPolicyStillConverges) {
  Sys s(12, 12, 1);
  ExecutorOptions o;
  o.policy = SchedulePolicy::kShuffled;
  o.stopping.max_global_iters = 4000;
  o.stopping.tol = 1e-11;
  const auto r = run(s, o);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace bars::gpusim

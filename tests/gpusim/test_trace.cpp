#include "gpusim/trace.hpp"

#include <gtest/gtest.h>

#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "gpusim/async_executor.hpp"
#include "matrices/generators.hpp"

namespace bars::gpusim {
namespace {

ExecutorResult traced_run(index_t n, index_t block, index_t iters,
                          ExecutorOptions o = {}) {
  static Csr a;
  static Vector b;
  a = fv_like(n, 0.6);
  b.assign(static_cast<std::size_t>(a.rows()), 1.0);
  static std::unique_ptr<BlockJacobiKernel> kernel;
  kernel = std::make_unique<BlockJacobiKernel>(
      a, b, RowPartition::uniform(a.rows(), block), 1);
  o.record_trace = true;
  o.stopping.max_global_iters = iters;
  o.stopping.tol = 0.0;
  AsyncExecutor ex(*kernel, o);
  Vector x(b.size(), 0.0);
  return ex.run(x, [&](const Vector& v) { return relative_residual(a, b, v); });
}

TEST(Trace, RecordsOneEventPerExecution) {
  const auto r = traced_run(10, 20, 8);
  index_t total = 0;
  for (index_t c : r.block_executions) total += c;
  EXPECT_EQ(static_cast<index_t>(r.trace.events().size()), total);
}

TEST(Trace, EventsWellOrdered) {
  const auto r = traced_run(10, 20, 8);
  for (const auto& ev : r.trace.events()) {
    EXPECT_LE(ev.start, ev.read);
    EXPECT_LE(ev.read, ev.write);
    EXPECT_GE(ev.start, 0.0);
  }
}

TEST(Trace, MakespanMatchesVirtualTime) {
  const auto r = traced_run(10, 20, 8);
  EXPECT_NEAR(r.trace.makespan(), r.virtual_time, 1e-12);
}

TEST(Trace, ConcurrencyBoundedBySlots) {
  ExecutorOptions o;
  o.concurrent_slots = 4;
  const auto r = traced_run(12, 12, 10, o);  // 12 blocks, 4 slots
  const value_t conc = r.trace.average_concurrency();
  EXPECT_GT(conc, 1.0);
  EXPECT_LE(conc, 4.0 + 1e-9);
  EXPECT_LE(r.trace.occupancy(4), 1.0 + 1e-9);
  EXPECT_GT(r.trace.occupancy(4), 0.5);
}

TEST(Trace, StalenessHistogramBoundedByGate) {
  ExecutorOptions o;
  o.max_generation_skew = 2;
  const auto r = traced_run(12, 12, 20, o);
  const auto hist = r.trace.staleness_histogram();
  // Gap bounded by skew gate + in-flight slack.
  EXPECT_LE(static_cast<index_t>(hist.size()), o.max_generation_skew + 2);
  index_t total = 0;
  for (index_t h : hist) total += h;
  EXPECT_GT(total, 0);
}

TEST(Trace, DisabledByDefault) {
  static Csr a = poisson1d(16);
  static Vector b(16, 1.0);
  static BlockJacobiKernel kernel(a, b, RowPartition::uniform(16, 4), 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 5;
  o.stopping.tol = 0.0;
  AsyncExecutor ex(kernel, o);
  Vector x(16, 0.0);
  const auto r =
      ex.run(x, [&](const Vector& v) { return relative_residual(a, b, v); });
  EXPECT_TRUE(r.trace.empty());
}

TEST(Trace, EmptyTraceAnalysesAreZero) {
  ExecutionTrace t;
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(t.average_concurrency(), 0.0);
  EXPECT_DOUBLE_EQ(t.occupancy(14), 0.0);
  EXPECT_TRUE(t.staleness_histogram().empty());
}

}  // namespace
}  // namespace bars::gpusim

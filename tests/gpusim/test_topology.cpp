#include "gpusim/topology.hpp"

#include <gtest/gtest.h>

namespace bars::gpusim {
namespace {

TEST(Link, AcquireSerializesTransfers) {
  Link l;
  EXPECT_DOUBLE_EQ(l.acquire(0.0, 1.0), 1.0);
  // Second transfer ready at 0.5 must queue behind the first.
  EXPECT_DOUBLE_EQ(l.acquire(0.5, 1.0), 2.0);
  // Third ready after the link idles: starts immediately.
  EXPECT_DOUBLE_EQ(l.acquire(5.0, 0.5), 5.5);
}

TEST(Link, ResetClearsHorizon) {
  Link l;
  (void)l.acquire(0.0, 3.0);
  l.reset();
  EXPECT_DOUBLE_EQ(l.busy_until(), 0.0);
}

TEST(Topology, SocketAssignmentPairsDevices) {
  Topology t(4, InterconnectSpec::supermicro_x8dtg());
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(1), 0);
  EXPECT_EQ(t.socket_of(2), 1);
  EXPECT_EQ(t.socket_of(3), 1);
  EXPECT_FALSE(t.crosses_qpi(0, 1));
  EXPECT_TRUE(t.crosses_qpi(1, 2));
  EXPECT_FALSE(t.crosses_qpi(2, 3));
}

TEST(Topology, P2pDeratedAcrossQpi) {
  Topology t(4, InterconnectSpec::supermicro_x8dtg());
  const value_t same = t.p2p_transfer_duration(1.0e6, 0, 1);
  const value_t cross = t.p2p_transfer_duration(1.0e6, 0, 2);
  EXPECT_GT(cross, same);
}

TEST(Topology, HostTransferMatchesSpec) {
  const auto spec = InterconnectSpec::supermicro_x8dtg();
  Topology t(2, spec);
  const value_t d = t.host_transfer_duration(spec.pcie_bandwidth_gbs * 1e9);
  EXPECT_NEAR(d, 1.0 + spec.pcie_latency_s, 1e-12);
}

TEST(Topology, PerDeviceLinksAreIndependent) {
  Topology t(2, InterconnectSpec::supermicro_x8dtg());
  (void)t.pcie(0).acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(t.pcie(1).busy_until(), 0.0);
}

TEST(Topology, RejectsBadDeviceCount) {
  EXPECT_THROW(Topology(0, InterconnectSpec::supermicro_x8dtg()),
               std::invalid_argument);
}

TEST(Topology, BadDeviceIndexThrows) {
  Topology t(2, InterconnectSpec::supermicro_x8dtg());
  EXPECT_THROW((void)t.socket_of(2), std::out_of_range);
  EXPECT_THROW((void)t.pcie(-1), std::out_of_range);
}

TEST(TransferScheme, Names) {
  EXPECT_EQ(to_string(TransferScheme::kAMC), "AMC");
  EXPECT_EQ(to_string(TransferScheme::kDC), "DC");
  EXPECT_EQ(to_string(TransferScheme::kDK), "DK");
}

}  // namespace
}  // namespace bars::gpusim

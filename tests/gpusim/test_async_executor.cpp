#include "gpusim/async_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "matrices/generators.hpp"
#include "sparse/partition.hpp"

namespace bars::gpusim {
namespace {

struct Fixture {
  Csr a;
  Vector b;
  BlockJacobiKernel kernel;
  Fixture(index_t n, index_t block, index_t local_iters)
      : a(poisson1d(n)),
        b(static_cast<std::size_t>(n), 1.0),
        kernel(a, b, RowPartition::uniform(n, block), local_iters) {}
  [[nodiscard]] value_t residual(const Vector& x) const {
    return relative_residual(a, b, x);
  }
};

TEST(AsyncExecutor, ConvergesOnPoisson) {
  Fixture s(64, 16, 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 60000;  // rho(B) = cos(pi/65): slow but sure
  o.stopping.tol = 1e-12;
  AsyncExecutor ex(s.kernel, o);
  Vector x(64, 0.0);
  const auto r = ex.run(x, [&](const Vector& v) { return s.residual(v); });
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.status == bars::SolverStatus::kDiverged);
  EXPECT_LE(r.residual_history.back(), 1e-12);
}

TEST(AsyncExecutor, DeterministicGivenSeed) {
  Fixture s(48, 8, 2);
  ExecutorOptions o;
  o.stopping.max_global_iters = 30;
  o.stopping.tol = 0.0;
  o.seed = 1234;
  Vector x1(48, 0.0), x2(48, 0.0);
  const auto r1 = AsyncExecutor(s.kernel, o).run(
      x1, [&](const Vector& v) { return s.residual(v); });
  const auto r2 = AsyncExecutor(s.kernel, o).run(
      x2, [&](const Vector& v) { return s.residual(v); });
  ASSERT_EQ(r1.residual_history.size(), r2.residual_history.size());
  for (std::size_t i = 0; i < r1.residual_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.residual_history[i], r2.residual_history[i]);
  }
  EXPECT_EQ(x1, x2);
}

TEST(AsyncExecutor, DifferentSeedsGiveDifferentTrajectories) {
  Fixture s(48, 8, 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 20;
  o.stopping.tol = 0.0;
  Vector x1(48, 0.0), x2(48, 0.0);
  o.seed = 1;
  const auto r1 = AsyncExecutor(s.kernel, o).run(
      x1, [&](const Vector& v) { return s.residual(v); });
  o.seed = 2;
  const auto r2 = AsyncExecutor(s.kernel, o).run(
      x2, [&](const Vector& v) { return s.residual(v); });
  // Chaotic: some mid-run residual should differ.
  bool differs = false;
  for (std::size_t i = 1;
       i < std::min(r1.residual_history.size(), r2.residual_history.size());
       ++i) {
    if (r1.residual_history[i] != r2.residual_history[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(AsyncExecutor, BlockExecutionCountsBalanced) {
  // Chazan-Miranker condition 1: every block updated "infinitely often"
  // — with FIFO requeue the counts stay within a small spread.
  Fixture s(100, 10, 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 50;
  o.stopping.tol = 0.0;
  Vector x(100, 0.0);
  const auto r = AsyncExecutor(s.kernel, o).run(
      x, [&](const Vector& v) { return s.residual(v); });
  const auto [mn, mx] = std::minmax_element(r.block_executions.begin(),
                                            r.block_executions.end());
  EXPECT_GT(*mn, 0);
  // Spread is bounded by the executor's generation-skew gate (+1 for
  // the in-flight execution at the stopping instant).
  EXPECT_LE(*mx - *mn, ExecutorOptions{}.max_generation_skew + 1);
}

TEST(AsyncExecutor, StalenessBounded) {
  // Chazan-Miranker condition 2: bounded shift.
  Fixture s(128, 8, 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 100;
  o.stopping.tol = 0.0;
  o.straggler_factor = 3.0;
  Vector x(128, 0.0);
  const auto r = AsyncExecutor(s.kernel, o).run(
      x, [&](const Vector& v) { return s.residual(v); });
  EXPECT_LE(r.max_staleness, 10);
}

TEST(AsyncExecutor, RoundRobinPolicyIsJitterFree) {
  Fixture s(32, 8, 1);
  ExecutorOptions o;
  o.policy = SchedulePolicy::kRoundRobin;
  o.stopping.max_global_iters = 25;
  o.stopping.tol = 0.0;
  o.seed = 5;
  Vector x1(32, 0.0), x2(32, 0.0);
  const auto r1 = AsyncExecutor(s.kernel, o).run(
      x1, [&](const Vector& v) { return s.residual(v); });
  o.seed = 99;  // seed must not matter for round-robin
  const auto r2 = AsyncExecutor(s.kernel, o).run(
      x2, [&](const Vector& v) { return s.residual(v); });
  EXPECT_EQ(x1, x2);
}

TEST(AsyncExecutor, VirtualTimeAdvancesWithIterations) {
  Fixture s(64, 16, 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 10;
  o.stopping.tol = 0.0;
  o.global_iteration_time = 2.0e-3;
  Vector x(64, 0.0);
  const auto r = AsyncExecutor(s.kernel, o).run(
      x, [&](const Vector& v) { return s.residual(v); });
  ASSERT_GE(r.time_history.size(), 2u);
  EXPECT_DOUBLE_EQ(r.time_history.front(), 0.0);
  for (std::size_t i = 1; i < r.time_history.size(); ++i) {
    EXPECT_GT(r.time_history[i], r.time_history[i - 1]);
  }
  // ~10 global iterations at ~2 ms each, within jitter bounds.
  EXPECT_NEAR(r.virtual_time, 10 * 2.0e-3, 10 * 2.0e-3 * 0.6);
}

TEST(AsyncExecutor, DivergesOnRhoGreaterThanOne) {
  const index_t m = 12;
  const Csr a = structural_like(m, structural_diag_for_rho(m, 2.65));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const BlockJacobiKernel kernel(a, b, RowPartition::uniform(a.rows(), 16),
                                 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 4000;
  o.stopping.tol = 1e-14;
  o.stopping.divergence_limit = 1e12;
  AsyncExecutor ex(kernel, o);
  Vector x(static_cast<std::size_t>(a.rows()), 0.0);
  const auto r =
      ex.run(x, [&](const Vector& v) { return relative_residual(a, b, v); });
  EXPECT_TRUE(r.status == bars::SolverStatus::kDiverged);
  EXPECT_FALSE(r.ok());
}

TEST(AsyncExecutor, RejectsBadOptions) {
  Fixture s(16, 4, 1);
  ExecutorOptions o;
  o.concurrent_slots = 0;
  EXPECT_THROW(AsyncExecutor(s.kernel, o), std::invalid_argument);
  o.concurrent_slots = 4;
  o.global_iteration_time = 0.0;
  EXPECT_THROW(AsyncExecutor(s.kernel, o), std::invalid_argument);
}

TEST(AsyncExecutor, XSizeMismatchThrows) {
  Fixture s(16, 4, 1);
  AsyncExecutor ex(s.kernel, {});
  Vector x(8, 0.0);
  EXPECT_THROW(
      (void)ex.run(x, [&](const Vector& v) { return s.residual(v); }),
      std::invalid_argument);
}

}  // namespace
}  // namespace bars::gpusim

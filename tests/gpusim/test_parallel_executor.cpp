/// Parallel commit path and incremental residual: the hot-path
/// optimizations must be invisible in the results — the parallel
/// executor replays bookkeeping in event order and is bit-identical to
/// the serial loop, and the incrementally-maintained residual agrees
/// with the full recompute to fp-drift precision.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/block_async.hpp"
#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "gpusim/async_executor.hpp"
#include "gpusim/incremental_residual.hpp"
#include "gpusim/worker_pool.hpp"
#include "matrices/generators.hpp"
#include "resilience/scenario.hpp"

namespace bars::gpusim {
namespace {

// --------------------------------------------------------- worker pool

TEST(WorkerPool, ExecutesEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.run(257, [&](index_t task, index_t /*worker*/) {
    hits[static_cast<std::size_t>(task)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossManyRuns) {
  WorkerPool pool(3);
  std::atomic<long long> sum{0};
  long long expect = 0;
  for (int round = 0; round < 200; ++round) {
    const index_t count = 1 + (round % 7);
    pool.run(count, [&](index_t task, index_t) { sum.fetch_add(task + 1); });
    expect += count * (count + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expect);
}

TEST(WorkerPool, HandlesEmptyAndSingleTaskRuns) {
  WorkerPool pool(4);
  std::atomic<int> calls{0};
  pool.run(0, [&](index_t, index_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.run(1, [&](index_t, index_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

// ------------------------------------- parallel vs serial bit-identity

struct Sys {
  Csr a;
  Vector b;
  RowPartition part;
  BlockJacobiKernel kernel;
  Sys(index_t n, index_t block, index_t k, bool dominant = false)
      : a(dominant ? trefethen(n) : poisson1d(n)),
        b(static_cast<std::size_t>(n), 1.0),
        part(RowPartition::uniform(n, block)),
        kernel(a, b, part, k) {}
  [[nodiscard]] value_t res(const Vector& x) const {
    return relative_residual(a, b, x);
  }
};

ExecutorResult run_exec(const Sys& s, ExecutorOptions o, Vector& x) {
  AsyncExecutor ex(s.kernel, o);
  x.assign(s.b.size(), 0.0);
  return ex.run(x, [&](const Vector& v) { return s.res(v); });
}

void expect_identical(const ExecutorResult& a, const Vector& xa,
                      const ExecutorResult& b, const Vector& xb) {
  EXPECT_EQ(xa, xb);  // bitwise: operator== on doubles
  EXPECT_EQ(a.residual_history, b.residual_history);
  EXPECT_EQ(a.time_history, b.time_history);
  EXPECT_EQ(a.block_executions, b.block_executions);
  EXPECT_EQ(a.global_iterations, b.global_iterations);
  EXPECT_EQ(a.max_staleness, b.max_staleness);
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (std::size_t i = 0; i < a.trace.events().size(); ++i) {
    const TraceEvent& ea = a.trace.events()[i];
    const TraceEvent& eb = b.trace.events()[i];
    EXPECT_EQ(ea.block, eb.block);
    EXPECT_EQ(ea.generation, eb.generation);
    EXPECT_EQ(ea.start, eb.start);
    EXPECT_EQ(ea.read, eb.read);
    EXPECT_EQ(ea.write, eb.write);
  }
}

TEST(ParallelExecutor, RoundRobinBitIdenticalToSerial) {
  Sys s(640, 8, 1);  // q = 80 blocks
  ExecutorOptions o;
  o.stopping.max_global_iters = 40;
  o.stopping.tol = 1e-30;
  o.policy = SchedulePolicy::kRoundRobin;
  o.concurrent_slots = 80;  // full-width batches
  o.record_trace = true;
  Vector xs, xp;
  o.num_workers = 0;
  const auto serial = run_exec(s, o, xs);
  o.num_workers = 4;
  const auto parallel = run_exec(s, o, xp);
  expect_identical(serial, xs, parallel, xp);
}

TEST(ParallelExecutor, BitIdenticalWithPartialSlotsAndLocalSweeps) {
  Sys s(640, 8, 5);  // async-(5)
  ExecutorOptions o;
  o.stopping.max_global_iters = 30;
  o.stopping.tol = 1e-30;
  o.policy = SchedulePolicy::kRoundRobin;
  o.concurrent_slots = 13;  // batches smaller than q, uneven waves
  o.record_trace = true;
  Vector xs, xp;
  o.num_workers = 0;
  const auto serial = run_exec(s, o, xs);
  o.num_workers = 3;
  const auto parallel = run_exec(s, o, xp);
  expect_identical(serial, xs, parallel, xp);
}

TEST(ParallelExecutor, BitIdenticalWhenConvergingMidBatch) {
  // Tight tolerance hit partway through a batch: uncommitted members
  // must be rolled back so x matches the serial early exit exactly.
  // Trefethen's matrix is strongly dominant, so convergence lands well
  // inside the iteration budget.
  Sys s(320, 8, 2, /*dominant=*/true);
  ExecutorOptions o;
  o.stopping.max_global_iters = 400;
  o.stopping.tol = 1e-10;
  o.policy = SchedulePolicy::kRoundRobin;
  o.concurrent_slots = 40;
  Vector xs, xp;
  o.num_workers = 0;
  const auto serial = run_exec(s, o, xs);
  o.num_workers = 4;
  const auto parallel = run_exec(s, o, xp);
  EXPECT_TRUE(serial.ok());
  expect_identical(serial, xs, parallel, xp);
}

TEST(ParallelExecutor, JitteredPolicyAlsoIdentical) {
  // Jittered durations rarely coincide, so batches mostly degenerate to
  // size one — the path must still agree bit-for-bit.
  Sys s(320, 8, 1);
  ExecutorOptions o;
  o.stopping.max_global_iters = 25;
  o.stopping.tol = 1e-30;
  o.seed = 7;
  o.policy = SchedulePolicy::kJittered;
  o.concurrent_slots = 20;
  Vector xs, xp;
  o.num_workers = 0;
  const auto serial = run_exec(s, o, xs);
  o.num_workers = 4;
  const auto parallel = run_exec(s, o, xp);
  expect_identical(serial, xs, parallel, xp);
}

TEST(ParallelExecutor, SolverLevelRoundTrip) {
  const Csr a = fv_like(24, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.solve.max_iters = 60;
  o.solve.tol = 1e-12;
  o.solve.record_history = true;
  o.block_size = 8;
  o.local_iters = 3;
  o.policy = gpusim::SchedulePolicy::kRoundRobin;
  o.concurrent_slots = 64;
  o.num_workers = 0;
  const auto serial = block_async_solve(a, b, o);
  o.num_workers = 4;
  const auto parallel = block_async_solve(a, b, o);
  EXPECT_EQ(serial.solve.x, parallel.solve.x);
  EXPECT_EQ(serial.solve.residual_history, parallel.solve.residual_history);
  EXPECT_EQ(serial.solve.iterations, parallel.solve.iterations);
}

// ------------------------------------------------ incremental residual

TEST(IncrementalResidualTest, MatchesExactAftermanualCommits) {
  const Csr a = trefethen(200);
  const Vector b(200, 1.0);
  const RowPartition part = RowPartition::uniform(200, 16);
  IncrementalResidual tracker(a, b, part);
  Vector x(200, 0.0);
  tracker.reset(x);
  EXPECT_DOUBLE_EQ(tracker.relative(), relative_residual(a, b, x));

  // Commit synthetic updates block by block and compare against the
  // full recompute each time.
  std::uint64_t state = 12345;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<value_t>(state >> 40) / 16777216.0 - 0.5;
  };
  for (index_t round = 0; round < 5; ++round) {
    for (index_t blk = 0; blk < part.num_blocks(); ++blk) {
      const RowBlock r = part.block(blk);
      Vector old(x.begin() + r.begin, x.begin() + r.end);
      for (index_t i = r.begin; i < r.end; ++i) x[i] += 0.1 * next();
      tracker.block_committed(
          blk, old,
          std::span<const value_t>(x).subspan(
              static_cast<std::size_t>(r.begin),
              static_cast<std::size_t>(r.end - r.begin)));
      const value_t exact = relative_residual(a, b, x);
      EXPECT_NEAR(tracker.relative(), exact, 1e-12 * std::max(1.0, exact));
    }
  }
}

TEST(IncrementalResidualTest, HistoryMatchesExactRunOnPlainSolve) {
  const Csr a = fv_like(20, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o;
  o.solve.max_iters = 50;
  o.solve.tol = 0.0;  // fixed-length run: histories align index-wise
  o.solve.record_history = true;
  o.block_size = 16;
  o.local_iters = 2;
  o.policy = gpusim::SchedulePolicy::kRoundRobin;
  o.residual_refresh_every = 10;
  o.incremental_residual = false;
  const auto exact = block_async_solve(a, b, o);
  o.incremental_residual = true;
  const auto inc = block_async_solve(a, b, o);
  EXPECT_EQ(exact.solve.x, inc.solve.x);  // tracking never perturbs x
  ASSERT_EQ(exact.solve.residual_history.size(),
            inc.solve.residual_history.size());
  for (std::size_t k = 0; k < exact.solve.residual_history.size(); ++k) {
    const value_t e = exact.solve.residual_history[k];
    EXPECT_NEAR(inc.solve.residual_history[k], e, 1e-12 * std::max(1.0, e))
        << "iteration " << k;
  }
}

TEST(IncrementalResidualTest, AgreesWithExactUnderFaultScenario) {
  // Component failures freeze rows and halo corruption injects noise;
  // the tracker's deltas are computed from the actually-committed
  // values, so it must stay exact (to fp drift) through both.
  const Csr a = fv_like(20, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  resilience::FaultScenario scenario;
  scenario.fail_components(/*at=*/5, /*fraction=*/0.3, /*recover_after=*/10)
      .corrupt_halo(/*at=*/8, /*duration=*/4, /*magnitude=*/5.0);
  BlockAsyncOptions o;
  o.solve.max_iters = 40;
  o.solve.tol = 0.0;
  o.solve.record_history = true;
  o.block_size = 16;
  o.local_iters = 1;
  o.policy = gpusim::SchedulePolicy::kJittered;
  o.seed = 11;
  o.scenario = scenario;
  o.residual_refresh_every = 15;
  o.incremental_residual = false;
  const auto exact = block_async_solve(a, b, o);
  o.incremental_residual = true;
  const auto inc = block_async_solve(a, b, o);
  EXPECT_EQ(exact.solve.x, inc.solve.x);
  ASSERT_EQ(exact.solve.residual_history.size(),
            inc.solve.residual_history.size());
  for (std::size_t k = 0; k < exact.solve.residual_history.size(); ++k) {
    const value_t e = exact.solve.residual_history[k];
    EXPECT_NEAR(inc.solve.residual_history[k], e, 1e-12 * std::max(1.0, e))
        << "iteration " << k;
  }
}

TEST(IncrementalResidualTest, DisabledUnderResiliencePolicy) {
  // Rollbacks rewrite x behind the tracker's back, so the solver must
  // silently fall back to exact residuals — same results either way.
  const Csr a = fv_like(12, 0.6);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  resilience::Policy policy;  // defaults: checkpointing enabled
  BlockAsyncOptions o;
  o.solve.max_iters = 30;
  o.solve.tol = 1e-10;
  o.solve.record_history = true;
  o.block_size = 16;
  o.resilience = policy;
  o.incremental_residual = false;
  const auto off = block_async_solve(a, b, o);
  o.incremental_residual = true;
  const auto on = block_async_solve(a, b, o);
  EXPECT_EQ(off.solve.x, on.solve.x);
  EXPECT_EQ(off.solve.residual_history, on.solve.residual_history);
}

}  // namespace
}  // namespace bars::gpusim

// Fixture: header without #pragma once.

inline int unguarded() { return 1; }

// Fixture: obeys every rule (as if it lived in src/core).
#include <vector>

#define BARS_HOT_NOALLOC

struct Kernel {
  mutable std::vector<double> scratch_s;
  BARS_HOT_NOALLOC double apply(const std::vector<double>& x) const {
    double acc = 0.0;
    for (double v : x) acc += v;
    scratch_s[0] = acc;
    return acc;
  }
};

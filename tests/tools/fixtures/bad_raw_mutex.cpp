// Fixture: raw std synchronization types, invisible to -Wthread-safety.
#include <condition_variable>
#include <mutex>

std::mutex g_mu;
std::condition_variable g_cv;

void critical() {
  std::lock_guard<std::mutex> lock(g_mu);
}

// Fixture: unordered-container iteration order leaking into core logic.
#include <unordered_map>

double sum_values(const std::unordered_map<int, double>& m) {
  double s = 0.0;
  for (const auto& [k, v] : m) s += v * static_cast<double>(k);
  return s;
}

// Fixture: heap allocation inside a BARS_HOT_NOALLOC body.
#include <memory>
#include <vector>

#define BARS_HOT_NOALLOC

BARS_HOT_NOALLOC void hot_path(std::vector<double>& out) {
  out.resize(128);
  out.push_back(1.0);
  auto p = std::make_unique<double[]>(4);
  out[0] = *new double(3.0);
  (void)p;
}

void cold_path(std::vector<double>& out) {
  out.resize(256);  // unmarked function: allocation is fine here
}

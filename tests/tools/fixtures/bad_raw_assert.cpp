// Fixture: raw assert without context logging.
#include <cassert>

void check_dim(int n) {
  assert(n > 0);
}

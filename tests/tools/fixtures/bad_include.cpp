// Fixture: include-hygiene violations.
#include "../sparse/types.hpp"
#include <core/solver_types.hpp>

int f() { return 0; }

// Fixture: scratch-suffixed receivers are exempt inside hot bodies.
#include <vector>

#define BARS_HOT_NOALLOC

struct K {
  mutable std::vector<double> scratch_a;
  std::vector<double> results;
  BARS_HOT_NOALLOC void update() const {
    scratch_a.resize(8);  // allowed: construction-sized scratch
  }
  BARS_HOT_NOALLOC void bad_update() {
    results.resize(8);  // flagged: non-scratch member growth
  }
};

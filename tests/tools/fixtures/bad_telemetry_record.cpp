// Seeded violations for the telemetry-record-hot rule: record-path
// methods (inc / set / record) in src/telemetry must carry
// BARS_HOT_NOALLOC so the hot-noalloc rule audits their bodies.
// Linted with --treat-as src/telemetry; never compiled.

namespace bars::telemetry {

class BadCounter {
 public:
  void inc(unsigned delta = 1) noexcept { value_ += delta; }  // finding

 private:
  unsigned value_ = 0;
};

class BadGauge {
 public:
  void set(double v) noexcept { value_ = v; }  // finding

 private:
  double value_ = 0.0;
};

class BadHistogram {
 public:
  void record(double v) noexcept { sum_ += v; }  // finding

 private:
  double sum_ = 0.0;
};

class GoodCounter {
 public:
  // Correctly marked: must NOT be flagged.
  BARS_HOT_NOALLOC void inc(unsigned delta = 1) noexcept { value_ += delta; }

 private:
  unsigned value_ = 0;
};

class StreamishSink {
 public:
  // Sink on_* callbacks are exempt (stream IO by design); and member
  // *calls* to record() are not declarations, so neither line below
  // may be flagged.
  void on_block_commit(int staleness) {
    sideband_.record(static_cast<double>(staleness));
  }

 private:
  BadHistogram sideband_;
};

}  // namespace bars::telemetry

// Fixture: every banned nondeterminism source, one per line.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int seeded_from_entropy() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

long wall_clock_reads() {
  const long t = time(nullptr);
  const auto n = std::chrono::steady_clock::now();
  return t + n.time_since_epoch().count();
}

// Fixture: single-precision creep in a double-precision kernel path.
float relax(float x) {
  return 0.5f * x + 1.f;
}

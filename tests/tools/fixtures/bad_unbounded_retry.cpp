// Seeded violations for the unbounded-retry rule: thread sleeps in the
// service layer with no visible attempt cap, backoff, deadline, or
// jitter. Linted with --treat-as src/service.
#include <chrono>
#include <thread>

bool server_ready();
void resubmit();

void spin_until_ready() {
  while (true) {
    if (server_ready()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));  // caught
  }
}

void blind_resubmit_loop() {
  for (;;) {
    resubmit();
    std::this_thread::sleep_until(  // caught
        std::chrono::steady_clock::now() + std::chrono::seconds(1));
  }
}

// A visible bound (the attempt cap driving the wait) keeps this clean.
void capped_retry() {
  for (int attempt = 0; attempt < 5; ++attempt) {
    if (server_ready()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
  }
}

// Fixture: raw thread spawns, invisible to the schedule explorer.
#include <thread>

void spawn_and_join() {
  std::thread t([] {});
  t.join();
}

std::thread make_worker() { return std::thread([] {}); }

// Legal: static member access is not a spawn and must NOT be flagged.
unsigned cores() { return std::thread::hardware_concurrency(); }

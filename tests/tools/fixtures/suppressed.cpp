// Fixture: violations silenced through the documented suppression forms.
#include <ctime>
#include <unordered_map>  // bars-lint: allow-file(unordered-iteration)

long stamp() {
  // Justification: fixture demonstrating a same-line suppression.
  return time(nullptr);  // bars-lint: allow(nondeterminism)
}

// bars-lint: allow(nondeterminism)
long stamp2() { return time(nullptr) + clock(); }

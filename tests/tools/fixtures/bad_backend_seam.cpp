// Seeded violations for the backend-seam rule: direct construction of
// concrete block-sweep kernels outside src/backend bypasses the
// registry's availability fallback and telemetry counters. Linted with
// --treat-as src/core.
#include <memory>

#include "backend/block_jacobi_kernel.hpp"
#include "backend/simd_kernel.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

namespace bars {

void direct_stack_construction(const Csr& a, const Vector& b,
                               const RowPartition& part) {
  BlockJacobiKernel kernel(a, b, part, 5);  // caught
  (void)kernel;
}

void direct_heap_construction(const Csr& a, const Vector& b,
                              RowPartition part) {
  auto k1 = std::make_unique<BlockJacobiKernel>(a, b, part, 5);  // caught
  auto* k2 = new backend::SimdBlockSweepKernel(a, b, part, {});  // caught
  delete k2;
}

// Naming the types (members, docs references) stays clean: only
// construction is the seam violation.
const char* describe() { return "BlockJacobiKernel::update"; }

}  // namespace bars

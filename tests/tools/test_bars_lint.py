#!/usr/bin/env python3
"""Self-test for tools/bars_lint.py: every rule must catch its seeded
fixture, the clean fixture must pass, suppressions must silence, and the
real src/ tree must be --strict clean. Stdlib-only; run via ctest
(tools.bars_lint_selftest) or directly."""

import os
import subprocess
import sys
import unittest

REPO = os.environ.get(
    "BARS_REPO_ROOT",
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
LINT = os.path.join(REPO, "tools", "bars_lint.py")
FIXTURES = os.path.join(REPO, "tests", "tools", "fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout + proc.stderr


def fixture(name):
    return os.path.join(FIXTURES, name)


class FixtureViolations(unittest.TestCase):
    """Each seeded-violation fixture is caught by exactly its rule."""

    # fixture -> (expected rule, minimum finding count)
    CASES = {
        "bad_nondeterminism.cpp": ("nondeterminism", 4),
        "bad_unordered.cpp": ("unordered-iteration", 1),
        "bad_hot_noalloc.cpp": ("hot-noalloc", 4),
        "bad_raw_mutex.cpp": ("raw-mutex", 3),
        "bad_verify_seam.cpp": ("verify-seam", 2),
        "bad_raw_assert.cpp": ("raw-assert", 2),
        "bad_fp_literal.cpp": ("fp-literal", 2),
        "bad_include.cpp": ("include-hygiene", 2),
        "bad_header_guard.hpp": ("header-guard", 1),
        "bad_backend_seam.cpp": ("backend-seam", 3),
    }

    def test_each_rule_catches_its_fixture(self):
        for name, (rule, min_count) in self.CASES.items():
            with self.subTest(fixture=name):
                code, out = run_lint("--strict", "--treat-as", "src/core",
                                     fixture(name))
                self.assertEqual(code, 1, f"{name} should gate:\n{out}")
                hits = out.count(f"[{rule}]")
                self.assertGreaterEqual(
                    hits, min_count,
                    f"{name}: expected >= {min_count} [{rule}] findings, "
                    f"got {hits}:\n{out}")

    def test_verify_seam_spares_static_members(self):
        # std::thread::hardware_concurrency is a query, not a spawn; the
        # fixture's last line must stay clean.
        code, out = run_lint("--strict", "--treat-as", "src/core",
                             fixture("bad_verify_seam.cpp"))
        self.assertEqual(code, 1, out)
        self.assertNotIn("bad_verify_seam.cpp:12", out)

    def test_findings_name_file_and_line(self):
        code, out = run_lint("--strict", "--treat-as", "src/core",
                             fixture("bad_raw_assert.cpp"))
        self.assertEqual(code, 1)
        self.assertRegex(out, r"bad_raw_assert\.cpp:\d+: error:")

    def test_scratch_receivers_exempt_in_hot_bodies(self):
        code, out = run_lint("--strict", "--treat-as", "src/core",
                             fixture("bad_hot_noalloc_scratch.cpp"))
        self.assertEqual(code, 1, out)
        self.assertIn("results.resize", out)
        self.assertNotIn("scratch_a", out)

    def test_telemetry_record_rule_catches_fixture(self):
        code, out = run_lint("--strict", "--treat-as", "src/telemetry",
                             fixture("bad_telemetry_record.cpp"))
        self.assertEqual(code, 1, out)
        hits = out.count("[telemetry-record-hot]")
        self.assertEqual(
            hits, 3,
            "expected exactly the three unmarked record-path methods "
            f"(marked methods and on_* callbacks are exempt):\n{out}")

    def test_telemetry_record_rule_scoped_to_telemetry_dir(self):
        _, out = run_lint("--treat-as", "src/core",
                          fixture("bad_telemetry_record.cpp"))
        self.assertNotIn("[telemetry-record-hot]", out)

    def test_unbounded_retry_rule_catches_fixture(self):
        code, out = run_lint("--strict", "--treat-as", "src/service",
                             fixture("bad_unbounded_retry.cpp"))
        self.assertEqual(code, 1, out)
        hits = out.count("[unbounded-retry]")
        self.assertEqual(
            hits, 2,
            "expected exactly the two blind sleeps (the capped retry "
            f"carries its bound in view and is exempt):\n{out}")

    def test_backend_seam_spares_backend_dir_and_type_mentions(self):
        # The providers themselves construct kernels, so the same file
        # treated as src/backend must pass; and merely *naming* the type
        # (the describe() line) is never a finding.
        code, out = run_lint("--strict", "--treat-as", "src/backend",
                             fixture("bad_backend_seam.cpp"))
        self.assertEqual(code, 0, f"src/backend must be exempt:\n{out}")
        _, out = run_lint("--strict", "--treat-as", "src/core",
                          fixture("bad_backend_seam.cpp"))
        for line in out.splitlines():
            if "[backend-seam]" in line:
                self.assertNotIn(":29:", line)  # describe() stays clean

    def test_unbounded_retry_scoped_to_service_dir(self):
        _, out = run_lint("--treat-as", "src/core",
                          fixture("bad_unbounded_retry.cpp"))
        self.assertNotIn("[unbounded-retry]", out)

    def test_unmarked_functions_may_allocate(self):
        _, out = run_lint("--strict", "--treat-as", "src/core",
                          fixture("bad_hot_noalloc.cpp"))
        self.assertNotIn("cold_path", out)
        for line in out.splitlines():
            if "[hot-noalloc]" in line:
                # cold_path's resize is on line 17 of the fixture;
                # nothing past the hot body's closing brace may appear.
                self.assertNotIn(":17:", line)


class CleanAndSuppressed(unittest.TestCase):
    def test_clean_fixture_passes(self):
        code, out = run_lint("--strict", "--treat-as", "src/core",
                             fixture("clean.cpp"))
        self.assertEqual(code, 0, f"clean fixture flagged:\n{out}")

    def test_suppressions_silence_findings(self):
        code, out = run_lint("--strict", "--treat-as", "src/core",
                             fixture("suppressed.cpp"))
        self.assertEqual(code, 0, f"suppressed fixture flagged:\n{out}")

    def test_advisory_rules_gate_only_in_strict(self):
        code_strict, _ = run_lint("--strict", "--treat-as", "src/core",
                                  fixture("bad_unordered.cpp"))
        code_loose, out = run_lint("--treat-as", "src/core",
                                   fixture("bad_unordered.cpp"))
        self.assertEqual(code_strict, 1)
        self.assertEqual(code_loose, 0,
                         f"advisory finding gated without --strict:\n{out}")
        self.assertIn("[unordered-iteration]", out)  # still reported


class RuleSelection(unittest.TestCase):
    def test_rule_filter(self):
        code, out = run_lint("--strict", "--rule", "raw-mutex",
                             "--treat-as", "src/core",
                             fixture("bad_nondeterminism.cpp"))
        self.assertEqual(code, 0, f"filtered rule still fired:\n{out}")

    def test_unknown_rule_rejected(self):
        code, _ = run_lint("--rule", "no-such-rule", fixture("clean.cpp"))
        self.assertEqual(code, 2)

    def test_list_rules(self):
        code, out = run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule in ("nondeterminism", "hot-noalloc", "raw-mutex",
                     "raw-assert", "fp-literal", "include-hygiene",
                     "header-guard", "unordered-iteration",
                     "telemetry-record-hot", "unbounded-retry",
                     "backend-seam"):
            self.assertIn(rule, out)


class RealTree(unittest.TestCase):
    def test_src_is_strict_clean(self):
        code, out = run_lint("--strict", os.path.join(REPO, "src"))
        self.assertEqual(code, 0, f"src/ must stay lint-clean:\n{out}")


if __name__ == "__main__":
    unittest.main(verbosity=2)

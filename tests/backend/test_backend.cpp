/// Backend seam contract tests: registry round-trips, the degradation
/// policy (unavailable backend / unsupported config -> scalar, counted
/// on the caller's metrics), lifecycle fail-fast, and the cross-backend
/// kernel guarantees the solvers rely on (parallel-commit bit-identity,
/// scalar-vs-simd elementwise agreement).

#include "backend/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/block_jacobi_kernel.hpp"
#include "backend/simd_kernel.hpp"
#include "core/block_async.hpp"
#include "matrices/generators.hpp"
#include "sparse/partition.hpp"
#include "telemetry/metrics.hpp"

namespace bars::backend {
namespace {

/// Counter value as an integer (counters only ever increment by 1).
long long count(telemetry::MetricsRegistry& m, const std::string& name) {
  return static_cast<long long>(m.counter(name).value());
}

/// A provider that exists in the registry but can never run here —
/// the shape of a CUDA backend on a machine without a GPU.
class UnavailableBackend final : public KernelBackend {
 public:
  explicit UnavailableBackend(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] BackendCaps caps() const noexcept override { return {}; }
  [[nodiscard]] bool available() const noexcept override { return false; }
  [[nodiscard]] std::unique_ptr<BlockSweepKernel> make_kernel(
      const Csr&, const Vector&, RowPartition,
      const KernelConfig&) const override {
    throw backend_unsupported(name_ + " cannot build kernels");
  }

 private:
  std::string name_;
};

// ------------------------------------------------------------ registry

TEST(BackendRegistry, RoundTripAllProviders) {
  const std::vector<std::string> names = backend_names();
  ASSERT_FALSE(names.empty());
  EXPECT_NE(std::find(names.begin(), names.end(), "scalar"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "simd"), names.end());
  for (const std::string& n : names) {
    const KernelBackend& p = find_backend(n);
    EXPECT_EQ(p.name(), n);
    EXPECT_GE(p.caps().vector_width, 1) << n;
  }
  // The scalar reference backend is available everywhere, by contract.
  EXPECT_TRUE(find_backend("scalar").available());
  EXPECT_EQ(find_backend("scalar").caps().vector_width, 1);
  EXPECT_GT(find_backend("simd").caps().vector_width, 1);
}

TEST(BackendRegistry, UnknownNameThrowsListingValidOnes) {
  try {
    (void)find_backend("cuda");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cuda"), std::string::npos);
    EXPECT_NE(msg.find("scalar"), std::string::npos);
    EXPECT_NE(msg.find("simd"), std::string::npos);
    EXPECT_NE(msg.find("auto"), std::string::npos);
  }
}

TEST(BackendRegistry, AutoResolvesToAnAvailableProvider) {
  const KernelBackend& chosen = find_backend("auto");
  EXPECT_TRUE(chosen.available());
  // "" is the same selection alias as "auto".
  EXPECT_EQ(&find_backend(""), &chosen);
  if (simd_available()) {
    EXPECT_EQ(chosen.name(), "simd");
  } else {
    EXPECT_EQ(chosen.name(), "scalar");
  }
}

TEST(BackendRegistry, RegisterRejectsNullReservedAndDuplicate) {
  EXPECT_THROW(register_backend(nullptr), std::invalid_argument);
  EXPECT_THROW(register_backend(std::make_unique<UnavailableBackend>("")),
               std::invalid_argument);
  EXPECT_THROW(register_backend(std::make_unique<UnavailableBackend>("auto")),
               std::invalid_argument);
  EXPECT_THROW(
      register_backend(std::make_unique<UnavailableBackend>("scalar")),
      std::invalid_argument);
}

// -------------------------------------------------- degradation policy

TEST(BackendRegistry, UnavailableBackendDegradesToScalarWithTelemetry) {
  register_backend(std::make_unique<UnavailableBackend>("test-gpu"));
  // Registered but not runnable: selection degrades to scalar and the
  // caller's metrics record both the fallback and what actually ran.
  telemetry::MetricsRegistry m;
  const KernelBackend& used = select_backend("test-gpu", &m);
  EXPECT_EQ(used.name(), "scalar");
  EXPECT_EQ(count(m, "backend_used_scalar"), 1);
  EXPECT_EQ(count(m, "backend_fallbacks"), 1);

  const Csr a = fv_like(6, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto kernel = build_kernel(
      "test-gpu", a, b, RowPartition::uniform(a.rows(), 8), {}, &m);
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->backend_name(), "scalar");
  EXPECT_EQ(count(m, "backend_used_scalar"), 2);
  EXPECT_EQ(count(m, "backend_fallbacks"), 2);
}

TEST(BackendRegistry, UnsupportedConfigDegradesToScalar) {
  // "simd" cannot express Gauss-Seidel sweeps; whether it is available
  // on this machine or not, build_kernel must degrade to scalar and
  // count a fallback — never throw backend_unsupported at the caller.
  const Csr a = fv_like(6, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  KernelConfig config;
  config.local_iters = 2;
  config.sweep = LocalSweep::kGaussSeidel;
  telemetry::MetricsRegistry m;
  const auto kernel = build_kernel(
      "simd", a, b, RowPartition::uniform(a.rows(), 8), config, &m);
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->backend_name(), "scalar");
  EXPECT_EQ(kernel->local_iters(), 2);
  EXPECT_GE(count(m, "backend_fallbacks"), 1);
  EXPECT_GE(count(m, "backend_used_scalar"), 1);
}

TEST(BackendRegistry, ScalarRequestNeverFallsBack) {
  const Csr a = fv_like(6, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  telemetry::MetricsRegistry m;
  const auto kernel = build_kernel(
      "scalar", a, b, RowPartition::uniform(a.rows(), 8), {}, &m);
  EXPECT_EQ(kernel->backend_name(), "scalar");
  EXPECT_EQ(count(m, "backend_used_scalar"), 1);
  EXPECT_EQ(count(m, "backend_fallbacks"), 0);
}

TEST(BackendRegistry, InputErrorsPropagateNotDegraded) {
  // A malformed *input* (zero diagonal) is the caller's bug on every
  // backend: it must surface as std::invalid_argument, not silently
  // retry on scalar (which would fail identically anyway).
  const Csr bad(2, 2, {0, 1, 2}, {1, 0}, {1.0, 1.0});
  const Vector b(2, 1.0);
  for (const std::string& name : backend_names()) {
    if (!find_backend(name).available()) continue;
    EXPECT_THROW((void)build_kernel(name, bad, b,
                                    RowPartition::uniform(bad.rows(), 2), {}),
                 std::invalid_argument)
        << name;
  }
}

// ------------------------------------------------------------ lifecycle

TEST(BackendLifecycle, InitFailsFastWhenUnavailable) {
  const UnavailableBackend gpu("test-lifecycle");
  EXPECT_THROW(gpu.init(), backend_unsupported);
  // finalize() must be safe without init() and when called repeatedly.
  EXPECT_NO_THROW(gpu.finalize());
  EXPECT_NO_THROW(gpu.finalize());
  EXPECT_NO_THROW(find_backend("scalar").init());
  EXPECT_NO_THROW(find_backend("scalar").finalize());
}

// ------------------------------------------- cross-backend kernel laws

TEST(BackendKernel, EveryAvailableBackendSolves) {
  const Csr a = fv_like(10, 0.6);
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 + 0.01 * double(i);
  BlockAsyncOptions o;
  o.block_size = 25;
  o.local_iters = 3;
  o.solve.max_iters = 3000;
  o.solve.tol = 1e-11;
  for (const std::string& name : backend_names()) {
    if (!find_backend(name).available()) continue;
    const auto kernel = build_kernel(
        name, a, b, RowPartition::uniform(a.rows(), o.block_size),
        {o.local_iters});
    EXPECT_EQ(kernel->backend_name(), name);
    EXPECT_EQ(kernel->local_iters(), o.local_iters);
    EXPECT_EQ(kernel->overlap(), 0);
    const BlockAsyncResult r =
        block_async_solve_with_kernel(a, b, *kernel, o);
    EXPECT_TRUE(r.solve.ok()) << name;
    EXPECT_LE(relative_residual(a, b, r.solve.x), 1e-11) << name;
  }
}

TEST(BackendKernel, ParallelCommitBitIdenticalPerBackend) {
  // Re-prove the parallel-commit contract *through the seam*: every
  // backend whose caps declare parallel_commit_safe must produce
  // bitwise-identical histories with and without the worker pool.
  const Csr a = trefethen(640);
  const Vector b(640, 1.0);
  BlockAsyncOptions o;
  o.block_size = 64;
  o.local_iters = 2;
  o.solve.max_iters = 30;
  o.solve.tol = 0.0;
  o.solve.record_history = true;
  for (const std::string& name : backend_names()) {
    const KernelBackend& p = find_backend(name);
    if (!p.available() || !p.caps().parallel_commit_safe) continue;
    const auto kernel = build_kernel(
        name, a, b, RowPartition::uniform(a.rows(), o.block_size),
        {o.local_iters});
    ASSERT_TRUE(kernel->parallel_commit_safe()) << name;
    o.num_workers = 0;
    const BlockAsyncResult serial =
        block_async_solve_with_kernel(a, b, *kernel, o);
    o.num_workers = 4;
    const BlockAsyncResult parallel =
        block_async_solve_with_kernel(a, b, *kernel, o);
    EXPECT_EQ(serial.solve.x, parallel.solve.x) << name;  // bitwise
    EXPECT_EQ(serial.solve.residual_history, parallel.solve.residual_history)
        << name;
    EXPECT_EQ(serial.block_executions, parallel.block_executions) << name;
  }
}

TEST(BackendKernel, ScalarAndSimdAgreeWithinDocumentedTolerance) {
  if (!simd_available()) {
    GTEST_SKIP() << "AVX2+FMA not available on this machine/build";
  }
  // docs/BACKENDS.md: identical accumulation order, FMA contraction is
  // the only rounding difference -> elementwise relative agreement to
  // 1e-12 on the paper matrices (far tighter in practice).
  BlockAsyncOptions o;
  o.block_size = 64;
  o.local_iters = 3;
  o.solve.max_iters = 2000;
  o.solve.tol = 1e-10;
  for (const Csr& a : {trefethen(500), fv_like(22, 0.4)}) {
    const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
    const RowPartition part = RowPartition::uniform(a.rows(), o.block_size);
    const auto ks = build_kernel("scalar", a, b, part, {o.local_iters});
    const auto kv = build_kernel("simd", a, b, part, {o.local_iters});
    const BlockAsyncResult rs = block_async_solve_with_kernel(a, b, *ks, o);
    const BlockAsyncResult rv = block_async_solve_with_kernel(a, b, *kv, o);
    ASSERT_TRUE(rs.solve.ok());
    ASSERT_TRUE(rv.solve.ok());
    for (std::size_t i = 0; i < rs.solve.x.size(); ++i) {
      const value_t scale = std::max(std::abs(rs.solve.x[i]), value_t(1));
      EXPECT_NEAR(rs.solve.x[i], rv.solve.x[i], 1e-12 * scale) << "i=" << i;
    }
  }
}

TEST(BackendKernel, SimdRejectsWhatItCannotExpress) {
  if (!simd_available()) {
    GTEST_SKIP() << "AVX2+FMA not available on this machine/build";
  }
  const Csr a = fv_like(6, 0.5);
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const RowPartition part = RowPartition::uniform(a.rows(), 8);
  KernelConfig gs;
  gs.sweep = LocalSweep::kGaussSeidel;
  EXPECT_THROW(SimdBlockSweepKernel(a, b, part, gs), backend_unsupported);
  KernelConfig overlap;
  overlap.overlap = 2;
  EXPECT_THROW(SimdBlockSweepKernel(a, b, part, overlap),
               backend_unsupported);
  KernelConfig bad_iters;
  bad_iters.local_iters = 0;
  EXPECT_THROW(SimdBlockSweepKernel(a, b, part, bad_iters),
               std::invalid_argument);
}

TEST(BackendKernel, RhsAndPerBlockItersRoundTripPerBackend) {
  const Csr a = fv_like(8, 0.5);
  const Vector b1(static_cast<std::size_t>(a.rows()), 1.0);
  const Vector b2(static_cast<std::size_t>(a.rows()), 2.0);
  for (const std::string& name : backend_names()) {
    if (!find_backend(name).available()) continue;
    const auto kernel = build_kernel(
        name, a, b1, RowPartition::uniform(a.rows(), 16), {/*local_iters=*/3});
    EXPECT_EQ(&kernel->rhs(), &b1) << name;
    kernel->set_rhs(b2);
    EXPECT_EQ(&kernel->rhs(), &b2) << name;
    EXPECT_THROW(kernel->set_rhs(Vector(3, 0.0)), std::invalid_argument);

    // Adaptive async-(k): per-block sweep counts override the uniform k.
    std::vector<index_t> per_block(
        static_cast<std::size_t>(kernel->num_blocks()));
    for (std::size_t i = 0; i < per_block.size(); ++i) {
      per_block[i] = 1 + static_cast<index_t>(i % 3);
    }
    kernel->set_per_block_iters(per_block);
    for (index_t blk = 0; blk < kernel->num_blocks(); ++blk) {
      EXPECT_EQ(kernel->block_local_iters(blk),
                per_block[static_cast<std::size_t>(blk)])
          << name;
    }
    EXPECT_THROW(kernel->set_per_block_iters({1}), std::invalid_argument);
  }
}

}  // namespace
}  // namespace bars::backend

/// Cross-solver consistency: every solver in the library must agree on
/// the solution of the same well-posed systems (parameterized sweep).

#include <gtest/gtest.h>

#include <cmath>

#include "core/block_async.hpp"
#include "core/cg.hpp"
#include "core/gauss_seidel.hpp"
#include "core/jacobi.hpp"
#include "core/thread_async.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

struct CaseSpec {
  const char* name;
  Csr (*make)();
};

Csr make_fv() { return fv_like(12, 0.7); }
Csr make_tref() { return trefethen(150); }
Csr make_chem() { return chem97ztz_like(151, 0.6); }
Csr make_rand() { return random_spd(120, 4, 1.8, 2024); }

class CrossSolver : public ::testing::TestWithParam<CaseSpec> {};

Vector rhs_for(const Csr& a) {
  Vector b(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::sin(0.1 * static_cast<double>(i)) + 0.5;
  }
  return b;
}

TEST_P(CrossSolver, AllSolversAgreeWithDirectSolve) {
  const CaseSpec& spec = GetParam();
  const Csr a = spec.make();
  const Vector b = rhs_for(a);
  const Vector ref = Dense::from_csr(a).solve(b);

  SolveOptions so;
  so.max_iters = 50000;
  so.tol = 1e-12;

  const auto check = [&](const Vector& x, const char* solver) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_NEAR(x[i], ref[i], 1e-7) << solver << " on " << spec.name;
    }
  };

  check(jacobi_solve(a, b, so).x, "jacobi");
  check(gauss_seidel_solve(a, b, so).x, "gauss_seidel");
  {
    CgOptions co;
    co.solve = so;
    check(cg_solve(a, b, co).x, "cg");
  }
  {
    BlockAsyncOptions o;
    o.solve = so;
    o.block_size = 48;
    o.local_iters = 2;
    check(block_async_solve(a, b, o).solve.x, "block_async");
  }
  {
    ThreadAsyncOptions o;
    o.solve = so;
    o.solve.max_iters = 100000;
    o.block_size = 48;
    o.num_threads = 2;
    check(thread_async_solve(a, b, o).solve.x, "thread_async");
  }
}

TEST_P(CrossSolver, ResidualHistoriesReachTolerance) {
  const CaseSpec& spec = GetParam();
  const Csr a = spec.make();
  const Vector b = rhs_for(a);
  SolveOptions so;
  so.max_iters = 50000;
  so.tol = 1e-10;
  for (const SolveResult& r :
       {jacobi_solve(a, b, so), gauss_seidel_solve(a, b, so)}) {
    ASSERT_TRUE(r.ok()) << spec.name;
    EXPECT_LE(r.residual_history.back(), so.tol);
    EXPECT_EQ(r.residual_history.size(),
              static_cast<std::size_t>(r.iterations) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrices, CrossSolver,
    ::testing::Values(CaseSpec{"fv", make_fv}, CaseSpec{"trefethen",
                                                        make_tref},
                      CaseSpec{"chem", make_chem}, CaseSpec{"random",
                                                            make_rand}),
    [](const ::testing::TestParamInfo<CaseSpec>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bars

/// Parameterized property sweeps: invariants that must hold across the
/// whole (matrix family x seed x configuration) space.

#include <gtest/gtest.h>

#include <cmath>

#include "core/block_async.hpp"
#include "core/gauss_seidel.hpp"
#include "core/jacobi.hpp"
#include "eigen/power_iteration.hpp"
#include "matrices/generators.hpp"
#include "sparse/reorder.hpp"
#include "stats/convergence.hpp"

namespace bars {
namespace {

// ---------------------------------------------------------------------
// Property 1: for rho(|B|) < 1, async-(k) converges for EVERY seed,
// block size, local-iteration count and jitter level (Strikwerda).
struct AsyncConfig {
  index_t block_size;
  index_t local_iters;
  std::uint64_t seed;
  value_t jitter;
};

class AsyncAlwaysConverges : public ::testing::TestWithParam<AsyncConfig> {};

TEST_P(AsyncAlwaysConverges, OnDominantSystem) {
  const AsyncConfig& c = GetParam();
  const Csr a = trefethen(250);
  ASSERT_LT(async_spectral_radius(a).value, 1.0);
  const Vector b(250, 1.0);
  BlockAsyncOptions o;
  o.block_size = c.block_size;
  o.local_iters = c.local_iters;
  o.seed = c.seed;
  o.jitter = c.jitter;
  o.straggler_prob = 0.1;
  o.solve.max_iters = 3000;
  o.solve.tol = 1e-11;
  const BlockAsyncResult r = block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok())
      << "block=" << c.block_size << " k=" << c.local_iters
      << " seed=" << c.seed << " jitter=" << c.jitter;
  EXPECT_LE(relative_residual(a, b, r.solve.x), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncAlwaysConverges,
    ::testing::Values(AsyncConfig{16, 1, 1, 0.1}, AsyncConfig{16, 5, 2, 0.5},
                      AsyncConfig{64, 1, 3, 0.9}, AsyncConfig{64, 3, 4, 0.2},
                      AsyncConfig{128, 5, 5, 0.4}, AsyncConfig{250, 2, 6, 0.3},
                      AsyncConfig{37, 4, 7, 0.6},
                      AsyncConfig{300, 8, 8, 0.2}));

// ---------------------------------------------------------------------
// Property 2: solving a symmetrically permuted system gives the
// permuted solution, for relaxation and async solvers alike.
class PermutationEquivariance
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PermutationEquivariance, SolutionMapsThroughPermutation) {
  const Csr a = fv_like(9, 0.7);
  const index_t n = a.rows();
  Vector b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.3 * double(i));

  Permutation p(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) p[i] = (i * 29) % n;  // gcd(29, 81) = 1
  ASSERT_TRUE(is_permutation(p));
  const Csr ap = permute_symmetric(a, p);
  const Vector bp = permute_vector(b, p);

  SolveOptions so;
  so.max_iters = 20000;
  so.tol = 1e-12;

  Vector x, xp;
  const std::string solver = GetParam();
  if (solver == "jacobi") {
    x = jacobi_solve(a, b, so).x;
    xp = jacobi_solve(ap, bp, so).x;
  } else if (solver == "gauss-seidel") {
    x = gauss_seidel_solve(a, b, so).x;
    xp = gauss_seidel_solve(ap, bp, so).x;
  } else {
    BlockAsyncOptions o;
    o.solve = so;
    o.block_size = 27;
    x = block_async_solve(a, b, o).solve.x;
    xp = block_async_solve(ap, bp, o).solve.x;
  }
  const Vector x_mapped = permute_vector(x, p);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xp[i], x_mapped[i], 1e-8) << solver;
  }
}

INSTANTIATE_TEST_SUITE_P(Solvers, PermutationEquivariance,
                         ::testing::Values("jacobi", "gauss-seidel",
                                           "block-async"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------
// Property 3: measured asymptotic contraction of synchronous Jacobi
// matches rho(B) across the generator family.
class JacobiRateMatchesSpectrum : public ::testing::TestWithParam<double> {};

TEST_P(JacobiRateMatchesSpectrum, OnFvFamily) {
  const value_t target_rho = GetParam();
  const index_t m = 20;
  const Csr a = fv_like(m, fv_reaction_for_rho(m, target_rho));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions o;
  o.max_iters = 400;
  o.tol = 0.0;
  const SolveResult r = jacobi_solve(a, b, o);
  EXPECT_NEAR(contraction_factor(r.residual_history, 100), target_rho,
              0.02);
}

INSTANTIATE_TEST_SUITE_P(Rho, JacobiRateMatchesSpectrum,
                         ::testing::Values(0.5, 0.7, 0.8541, 0.95));

// ---------------------------------------------------------------------
// Property 4: async-(k) residual histories are monotone after the
// first few iterations on strongly dominant systems (no transient
// blow-up from the chaos), for any seed.
TEST(AsyncHistoryShape, EventuallyMonotoneOnDominantSystem) {
  const Csr a = random_spd(300, 5, 2.5, 11);
  const Vector b(300, 1.0);
  for (std::uint64_t seed : {10ull, 20ull, 30ull, 40ull}) {
    BlockAsyncOptions o;
    o.block_size = 50;
    o.local_iters = 2;
    o.seed = seed;
    o.solve.max_iters = 60;
    o.solve.tol = 0.0;
    const BlockAsyncResult r = block_async_solve(a, b, o);
    const auto& h = r.solve.residual_history;
    for (std::size_t i = 3; i < h.size(); ++i) {
      if (h[i - 1] < 1e-15) break;
      EXPECT_LT(h[i], h[i - 1] * 1.05) << "seed " << seed << " iter " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Property 5: increasing diagonal dominance accelerates async
// convergence monotonically (sanity of the whole pipeline).
TEST(AsyncRate, ImprovesWithDominance) {
  index_t prev_iters = 1 << 30;
  for (const value_t c : {0.2, 0.8, 2.0, 6.0}) {
    const Csr a = fv_like(16, c);
    const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
    BlockAsyncOptions o;
    o.block_size = 64;
    o.local_iters = 1;
    o.solve.max_iters = 5000;
    o.solve.tol = 1e-10;
    const BlockAsyncResult r = block_async_solve(a, b, o);
    ASSERT_TRUE(r.solve.ok()) << "c=" << c;
    EXPECT_LT(r.solve.iterations, prev_iters) << "c=" << c;
    prev_iters = r.solve.iterations;
  }
}

}  // namespace
}  // namespace bars

/// Integration tests for the paper's headline claims, at reduced scale
/// so the suite stays fast. The full-scale reproductions live in bench/.

#include <gtest/gtest.h>

#include "core/block_async.hpp"
#include "core/cg.hpp"
#include "core/gauss_seidel.hpp"
#include "core/jacobi.hpp"
#include "eigen/condition.hpp"
#include "eigen/power_iteration.hpp"
#include "gpusim/cost_model.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

struct Problem {
  Csr a;
  Vector b;
  Problem(Csr m) : a(std::move(m)), b(a.rows(), 1.0) {}
};

TEST(PaperClaims, AsyncTimeToSolutionBeatsCpuGaussSeidel) {
  // Headline claim: async-(5) on the GPU reaches a given accuracy in
  // less (modelled) time than Gauss-Seidel on the CPU, despite needing
  // more iterations than GS.
  Problem p(fv_like(31, fv_reaction_for_rho(31, 0.8541)));
  const gpusim::CostModel model = gpusim::CostModel::calibrated_to_paper();
  const gpusim::MatrixShape shape{"fv1", p.a.rows(), p.a.nnz()};

  SolveOptions so;
  so.max_iters = 5000;
  so.tol = 1e-10;
  const SolveResult gs = gauss_seidel_solve(p.a, p.b, so);
  ASSERT_TRUE(gs.ok());
  const value_t gs_time = static_cast<value_t>(gs.iterations) *
                          model.host_gauss_seidel_iteration(shape);

  BlockAsyncOptions ao;
  ao.solve = so;
  ao.local_iters = 5;
  ao.block_size = 128;
  ao.matrix_name = "fv1";
  const BlockAsyncResult as = block_async_solve(p.a, p.b, ao);
  ASSERT_TRUE(as.solve.ok());
  const value_t as_time = as.solve.time_history.back();

  EXPECT_LT(as_time, gs_time / 3.0);
}

TEST(PaperClaims, JacobiGpuAlsoBeatsGaussSeidelCpuInTime) {
  Problem p(fv_like(31, 0.5));
  const gpusim::CostModel model = gpusim::CostModel::calibrated_to_paper();
  const gpusim::MatrixShape shape{"fv1", p.a.rows(), p.a.nnz()};
  SolveOptions so;
  so.max_iters = 5000;
  so.tol = 1e-10;
  const SolveResult gs = gauss_seidel_solve(p.a, p.b, so);
  const SolveResult jac = jacobi_solve(p.a, p.b, so);
  ASSERT_TRUE(gs.ok() && jac.ok());
  EXPECT_LT(
      static_cast<value_t>(jac.iterations) * model.gpu_jacobi_iteration(shape),
      static_cast<value_t>(gs.iterations) *
          model.host_gauss_seidel_iteration(shape));
}

TEST(PaperClaims, StrikwerdaConditionPredictsAsyncConvergence) {
  // rho(|B|) < 1 => async converges for every schedule seed.
  Problem p(trefethen(300));
  ASSERT_LT(async_spectral_radius(p.a).value, 1.0);
  for (std::uint64_t seed : {1ull, 7ull, 23ull, 99ull}) {
    BlockAsyncOptions o;
    o.block_size = 64;
    o.seed = seed;
    o.jitter = 0.4;
    o.straggler_prob = 0.15;
    o.solve.max_iters = 2000;
    o.solve.tol = 1e-11;
    const auto r = block_async_solve(p.a, p.b, o);
    EXPECT_TRUE(r.solve.ok()) << "seed " << seed;
  }
}

TEST(PaperClaims, LocalIterationsUselessForChemLikeStructure) {
  // Paper Section 4.3: Chem97ZtZ's local blocks are diagonal, so
  // async-(5) converges like async-(1) (per global iteration), while
  // for fv-type systems async-(5) is much faster.
  Problem chem(chem97ztz_like(600, 0.7889));
  Problem fv(fv_like(24, fv_reaction_for_rho(24, 0.7889)));

  const auto iters = [](const Problem& p, index_t k) {
    BlockAsyncOptions o;
    o.block_size = 128;
    o.local_iters = k;
    o.solve.max_iters = 3000;
    o.solve.tol = 1e-10;
    const auto r = block_async_solve(p.a, p.b, o);
    EXPECT_TRUE(r.solve.ok());
    return r.solve.iterations;
  };

  const double chem_gain = static_cast<double>(iters(chem, 1)) /
                           static_cast<double>(iters(chem, 5));
  const double fv_gain = static_cast<double>(iters(fv, 1)) /
                         static_cast<double>(iters(fv, 5));
  EXPECT_LT(chem_gain, 1.5);  // hardly any improvement
  EXPECT_GT(fv_gain, 2.0);    // substantial improvement
}

TEST(PaperClaims, CgWinsOnIllConditionedFv3Like) {
  // Fig. 9c: CG time-to-solution is a fraction of the relaxation
  // methods' on fv3-type conditioning.
  Problem p(fv_like(31, fv_reaction_for_rho(31, 0.999)));
  const gpusim::CostModel model = gpusim::CostModel::calibrated_to_paper();
  const gpusim::MatrixShape shape{"fv3", p.a.rows(), p.a.nnz()};

  SolveOptions so;
  so.max_iters = 100000;
  so.tol = 1e-9;
  CgOptions co;
  co.solve = so;
  const SolveResult cg = cg_solve(p.a, p.b, co);
  ASSERT_TRUE(cg.ok());
  const value_t cg_time =
      static_cast<value_t>(cg.iterations) * model.gpu_cg_iteration(shape);

  BlockAsyncOptions ao;
  ao.solve = so;
  ao.solve.max_iters = 20000;
  ao.local_iters = 5;
  ao.block_size = 128;
  ao.matrix_name = "fv3";
  const BlockAsyncResult as = block_async_solve(p.a, p.b, ao);
  ASSERT_TRUE(as.solve.ok());
  EXPECT_LT(cg_time, as.solve.time_history.back());
}

TEST(PaperClaims, ScaledJacobiFixesS1rmt3m1Class) {
  // Section 4.2: after tau-scaling, the structural problem becomes
  // solvable by Jacobi-type iteration.
  const index_t m = 16;
  Problem p(structural_like(m, structural_diag_for_rho(m, 2.65)));
  SolveOptions so;
  so.max_iters = 3000;
  so.divergence_limit = 1e8;
  EXPECT_EQ(jacobi_solve(p.a, p.b, so).status, bars::SolverStatus::kDiverged);

  // tau = 2/(l1+ln) of D^{-1}A, exactly as prescribed in Section 4.2.
  const value_t tau = optimal_jacobi_tau(p.a);
  SolveOptions so2;
  so2.max_iters = 200000;
  so2.tol = 1e-8;
  const SolveResult r = scaled_jacobi_solve(p.a, p.b, tau, so2);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace bars

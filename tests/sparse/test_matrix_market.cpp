#include "sparse/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(MatrixMarket, ParsesGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "2 3 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "1 2 4.0\n");
  const Csr a = read_matrix_market(in);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
}

TEST(MatrixMarket, ExpandsSymmetricStorage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "1 1 2.0\n"
      "3 1 -1.0\n");
  const Csr a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), -1.0);
}

TEST(MatrixMarket, ParsesPatternAsOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const Csr a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("not a matrix\n1 1 0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const Csr a = trefethen(30);
  std::stringstream buf;
  write_matrix_market(buf, a);
  const Csr b = read_matrix_market(buf);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
    }
  }
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW((void)read_matrix_market_file("/nonexistent/x.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace bars

#include "sparse/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bars {
namespace {

TEST(VectorOps, AxpyAddsScaledVector) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{10.0, 20.0, 30.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(VectorOps, AxpyWithZeroAlphaIsIdentity) {
  Vector x{5.0, -1.0};
  Vector y{1.0, 2.0};
  axpy(0.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(VectorOps, XpbyComputesXPlusBetaY) {
  Vector x{1.0, 2.0};
  Vector y{3.0, 4.0};
  xpby(x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(VectorOps, ScaleMultipliesInPlace) {
  Vector x{1.0, -2.0, 4.0};
  scale(-0.5, x);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -2.0);
}

TEST(VectorOps, DotOfOrthogonalVectorsIsZero) {
  Vector x{1.0, 0.0, -1.0};
  Vector y{1.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
}

TEST(VectorOps, Norm2MatchesHandComputation) {
  Vector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, Norm2OfEmptyVectorIsZero) {
  Vector x;
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

TEST(VectorOps, NormInfPicksLargestMagnitude) {
  Vector x{-7.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(norm_inf(x), 7.0);
}

TEST(VectorOps, SubtractElementwise) {
  Vector a{5.0, 6.0};
  Vector b{1.0, 8.0};
  Vector out(2);
  subtract(a, b, out);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(VectorOps, FillSetsConstant) {
  Vector x(4, 0.0);
  fill(x, 2.5);
  for (value_t v : x) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(VectorOps, DotIsSymmetric) {
  Vector x{1.5, -2.5, 3.0};
  Vector y{0.5, 4.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), dot(y, x));
}

}  // namespace
}  // namespace bars

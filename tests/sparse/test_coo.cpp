#include "sparse/coo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bars {
namespace {

TEST(Coo, AddStoresTriplet) {
  Coo c(3, 3);
  c.add(0, 1, 2.5);
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.entries()[0].row, 0);
  EXPECT_EQ(c.entries()[0].col, 1);
  EXPECT_DOUBLE_EQ(c.entries()[0].value, 2.5);
}

TEST(Coo, AddOutOfRangeThrows) {
  Coo c(2, 2);
  EXPECT_THROW(c.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(c.add(0, -1, 1.0), std::out_of_range);
  EXPECT_THROW(c.add(-1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(c.add(0, 2, 1.0), std::out_of_range);
}

TEST(Coo, AddSymmetricAddsMirrorEntry) {
  Coo c(3, 3);
  c.add_symmetric(0, 2, 4.0);
  EXPECT_EQ(c.nnz(), 2);
}

TEST(Coo, AddSymmetricOnDiagonalAddsOnce) {
  Coo c(3, 3);
  c.add_symmetric(1, 1, 4.0);
  EXPECT_EQ(c.nnz(), 1);
}

TEST(Coo, SortedOrdersRowMajor) {
  Coo c(3, 3);
  c.add(2, 0, 1.0);
  c.add(0, 2, 2.0);
  c.add(0, 0, 3.0);
  const Coo s = c.sorted();
  ASSERT_EQ(s.nnz(), 3);
  EXPECT_EQ(s.entries()[0].row, 0);
  EXPECT_EQ(s.entries()[0].col, 0);
  EXPECT_EQ(s.entries()[1].col, 2);
  EXPECT_EQ(s.entries()[2].row, 2);
}

TEST(Coo, SortedSumsDuplicates) {
  Coo c(2, 2);
  c.add(0, 1, 1.5);
  c.add(0, 1, 2.5);
  const Coo s = c.sorted();
  ASSERT_EQ(s.nnz(), 1);
  EXPECT_DOUBLE_EQ(s.entries()[0].value, 4.0);
}

TEST(Coo, SortedDropsZeroSums) {
  Coo c(2, 2);
  c.add(0, 1, 1.0);
  c.add(0, 1, -1.0);
  EXPECT_EQ(c.sorted().nnz(), 0);
  EXPECT_EQ(c.sorted(/*keep_zeros=*/true).nnz(), 1);
}

TEST(Coo, EmptyMatrixSortsToEmpty) {
  Coo c(5, 5);
  EXPECT_EQ(c.sorted().nnz(), 0);
}

}  // namespace
}  // namespace bars

#include "sparse/reorder.hpp"

#include <gtest/gtest.h>

#include "matrices/generators.hpp"
#include "sparse/properties.hpp"

namespace bars {
namespace {

TEST(Permutation, IdentityAndInverse) {
  const Permutation id = identity_permutation(5);
  EXPECT_TRUE(is_permutation(id));
  EXPECT_EQ(invert_permutation(id), id);

  const Permutation p{2, 0, 1};
  const Permutation q = invert_permutation(p);
  EXPECT_EQ(q, (Permutation{1, 2, 0}));
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(q[static_cast<std::size_t>(p[i])], static_cast<index_t>(i));
  }
}

TEST(Permutation, Validation) {
  EXPECT_TRUE(is_permutation({0, 1, 2}));
  EXPECT_FALSE(is_permutation({0, 0, 2}));
  EXPECT_FALSE(is_permutation({0, 3, 1}));
  EXPECT_FALSE(is_permutation({-1, 0, 1}));
}

TEST(PermuteSymmetric, MovesEntriesConsistently) {
  const Csr a = poisson1d(4);
  const Permutation p{3, 2, 1, 0};  // full reversal
  const Csr b = permute_symmetric(a, p);
  // B(i,j) = A(p[i], p[j]); tridiagonal reversed is tridiagonal.
  EXPECT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(b.at(invert_permutation(p)[i],
                            invert_permutation(p)[j]),
                       a.at(i, j));
    }
  }
}

TEST(PermuteSymmetric, PreservesSpectrumViaSolution) {
  // Permuted system solves must map back: A x = b <=> (PAP^T)(Px) = Pb.
  const Csr a = trefethen(40);
  Vector b(40);
  for (std::size_t i = 0; i < 40; ++i) b[i] = 1.0 + 0.1 * double(i);
  const Permutation p = reverse_cuthill_mckee(a);
  const Csr ap = permute_symmetric(a, p);
  const Vector bp = permute_vector(b, p);
  Vector y(40);
  // Verify consistency of A(p,p) x(p) vs (A x)(p) on a test vector.
  Vector ax(40), apxp(40);
  a.spmv(b, ax);
  ap.spmv(bp, apxp);
  const Vector axp = permute_vector(ax, p);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(apxp[i], axp[i], 1e-12 * std::abs(axp[i]) + 1e-12);
  }
  (void)y;
}

TEST(Rcm, ReducesBandwidthOfShuffledPoisson) {
  // Scramble a banded matrix, then RCM must substantially recover it.
  const Csr a = poisson1d(100);
  Permutation shuffle(100);
  for (index_t i = 0; i < 100; ++i) shuffle[i] = (i * 37) % 100;
  ASSERT_TRUE(is_permutation(shuffle));
  const Csr scrambled = permute_symmetric(a, shuffle);
  ASSERT_GT(bandwidth(scrambled), 10);
  const Csr restored =
      permute_symmetric(scrambled, reverse_cuthill_mckee(scrambled));
  EXPECT_LE(bandwidth(restored), 2);
}

TEST(Rcm, ReducesOffBlockMassOfChemSurrogate) {
  // The paper's Section 4.3 remark: reordering can move Chem97ZtZ's
  // far couplings into the diagonal blocks.
  const Csr a = chem97ztz_like(400, 0.7);
  const Csr r = permute_symmetric(a, reverse_cuthill_mckee(a));
  EXPECT_LT(off_block_mass(r, 64), off_block_mass(a, 64));
  EXPECT_LT(bandwidth(r), bandwidth(a));
}

TEST(Rcm, PermutationIsValidOnDisconnectedGraph) {
  Coo c(6, 6);
  for (index_t i = 0; i < 6; ++i) c.add(i, i, 1.0);
  c.add_symmetric(0, 1, -1.0);  // component {0,1}
  c.add_symmetric(3, 4, -1.0);  // component {3,4}; 2 and 5 isolated
  const Permutation p = reverse_cuthill_mckee(Csr::from_coo(c));
  EXPECT_TRUE(is_permutation(p));
  EXPECT_EQ(p.size(), 6u);
}

TEST(Rcm, DeterministicAcrossCalls) {
  const Csr a = trefethen(60);
  EXPECT_EQ(reverse_cuthill_mckee(a), reverse_cuthill_mckee(a));
}

TEST(PermuteVector, AppliesMapping) {
  const Vector v{10.0, 20.0, 30.0};
  const Permutation p{2, 0, 1};
  const Vector out = permute_vector(v, p);
  EXPECT_DOUBLE_EQ(out[0], 30.0);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
  EXPECT_DOUBLE_EQ(out[2], 20.0);
}

TEST(PermuteSymmetric, RejectsBadSizes) {
  const Csr a = poisson1d(4);
  EXPECT_THROW((void)permute_symmetric(a, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)permute_vector(Vector(3, 0.0), {0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

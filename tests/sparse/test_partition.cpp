#include "sparse/partition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bars {
namespace {

TEST(RowPartition, UniformCoversAllRows) {
  const auto p = RowPartition::uniform(10, 3);
  EXPECT_EQ(p.num_blocks(), 4);
  EXPECT_EQ(p.total_rows(), 10);
  EXPECT_EQ(p.block(0), (RowBlock{0, 3}));
  EXPECT_EQ(p.block(3), (RowBlock{9, 10}));
}

TEST(RowPartition, UniformExactDivision) {
  const auto p = RowPartition::uniform(12, 4);
  EXPECT_EQ(p.num_blocks(), 3);
  for (index_t b = 0; b < 3; ++b) EXPECT_EQ(p.block(b).size(), 4);
}

TEST(RowPartition, UniformBlockLargerThanMatrix) {
  const auto p = RowPartition::uniform(5, 100);
  EXPECT_EQ(p.num_blocks(), 1);
  EXPECT_EQ(p.block(0).size(), 5);
}

TEST(RowPartition, UniformRejectsBadArgs) {
  EXPECT_THROW((void)RowPartition::uniform(5, 0), std::invalid_argument);
  EXPECT_THROW((void)RowPartition::uniform(-1, 2), std::invalid_argument);
}

TEST(RowPartition, BalancedSplitsEvenly) {
  const auto p = RowPartition::balanced(10, 3);
  EXPECT_EQ(p.num_blocks(), 3);
  EXPECT_EQ(p.total_rows(), 10);
  index_t total = 0;
  for (index_t b = 0; b < p.num_blocks(); ++b) {
    const index_t s = p.block(b).size();
    EXPECT_GE(s, 3);
    EXPECT_LE(s, 4);
    total += s;
  }
  EXPECT_EQ(total, 10);
}

TEST(RowPartition, BalancedMorePartsThanRows) {
  const auto p = RowPartition::balanced(3, 10);
  EXPECT_EQ(p.num_blocks(), 3);
}

TEST(RowPartition, BlockOfFindsOwner) {
  const auto p = RowPartition::uniform(10, 3);
  EXPECT_EQ(p.block_of(0), 0);
  EXPECT_EQ(p.block_of(2), 0);
  EXPECT_EQ(p.block_of(3), 1);
  EXPECT_EQ(p.block_of(9), 3);
  EXPECT_THROW((void)p.block_of(10), std::out_of_range);
  EXPECT_THROW((void)p.block_of(-1), std::out_of_range);
}

TEST(RowPartition, FromBoundariesValidates) {
  EXPECT_THROW((void)RowPartition::from_boundaries({1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)RowPartition::from_boundaries({0, 2, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)RowPartition::from_boundaries({}),
               std::invalid_argument);
}

TEST(RowPartition, DeviceSplitPartitionsBlocks) {
  const auto p = RowPartition::uniform(100, 10);  // 10 blocks
  const auto split = p.device_split(4);
  ASSERT_EQ(split.size(), 4u);
  EXPECT_EQ(split.front().first, 0);
  EXPECT_EQ(split.back().second, 10);
  for (std::size_t d = 1; d < split.size(); ++d) {
    EXPECT_EQ(split[d].first, split[d - 1].second);
  }
}

TEST(RowPartition, BlockOutOfRangeThrows) {
  const auto p = RowPartition::uniform(10, 3);
  EXPECT_THROW((void)p.block(4), std::out_of_range);
  EXPECT_THROW((void)p.block(-1), std::out_of_range);
}

TEST(RowPartition, OwnerTableMatchesBlockRanges) {
  const auto p = RowPartition::uniform(103, 7);  // uneven tail block
  const auto owner = p.owner_table();
  ASSERT_EQ(static_cast<index_t>(owner.size()), p.total_rows());
  for (index_t blk = 0; blk < p.num_blocks(); ++blk) {
    const RowBlock r = p.block(blk);
    for (index_t i = r.begin; i < r.end; ++i) EXPECT_EQ(owner[i], blk);
  }
}

}  // namespace
}  // namespace bars

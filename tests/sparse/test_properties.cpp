#include "sparse/properties.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(Properties, Poisson1dIsWeaklyDominant) {
  const auto dd = diagonal_dominance(poisson1d(10));
  EXPECT_TRUE(dd.weakly_dominant);
  EXPECT_FALSE(dd.strictly_dominant);  // interior rows: 2 == 1 + 1
  EXPECT_DOUBLE_EQ(dd.max_offdiag_ratio, 1.0);
}

TEST(Properties, FvLikeWithReactionIsStrictlyDominant) {
  const auto dd = diagonal_dominance(fv_like(10, 0.5));
  EXPECT_TRUE(dd.strictly_dominant);
  EXPECT_LT(dd.max_offdiag_ratio, 1.0);
}

TEST(Properties, StructuralLikeIsNotDominant) {
  const Csr a = structural_like(10, structural_diag_for_rho(10, 2.65));
  const auto dd = diagonal_dominance(a);
  EXPECT_FALSE(dd.weakly_dominant);
  EXPECT_GT(dd.max_offdiag_ratio, 1.0);
}

TEST(Properties, ZeroDiagonalGivesInfiniteRatio) {
  Coo c(2, 2);
  c.add(0, 1, 1.0);
  c.add(1, 1, 1.0);
  c.add(1, 0, 0.5);
  const auto dd = diagonal_dominance(Csr::from_coo(c));
  EXPECT_FALSE(dd.weakly_dominant);
  EXPECT_TRUE(std::isinf(dd.max_offdiag_ratio));
}

TEST(Properties, GershgorinContainsPoissonSpectrum) {
  const auto [lo, hi] = gershgorin_interval(poisson1d(20));
  EXPECT_DOUBLE_EQ(lo, 0.0);   // 2 - 2
  EXPECT_DOUBLE_EQ(hi, 4.0);   // 2 + 2
}

TEST(Properties, BandwidthOfTridiagonalIsOne) {
  EXPECT_EQ(bandwidth(poisson1d(10)), 1);
}

TEST(Properties, BandwidthOfTrefethenIsPowerOfTwo) {
  // Trefethen(100): couplings at offsets 1,2,4,...,64.
  EXPECT_EQ(bandwidth(trefethen(100)), 64);
}

TEST(Properties, OffBlockMassZeroWhenBlockCoversMatrix) {
  EXPECT_DOUBLE_EQ(off_block_mass(poisson1d(16), 16), 0.0);
}

TEST(Properties, OffBlockMassGrowsWithSmallerBlocks) {
  const Csr t = trefethen(256);
  const value_t m64 = off_block_mass(t, 64);
  const value_t m16 = off_block_mass(t, 16);
  EXPECT_GT(m16, m64);
  EXPECT_GT(m64, 0.0);
}

TEST(Properties, OffBlockMassRejectsBadBlockSize) {
  EXPECT_THROW((void)off_block_mass(poisson1d(4), 0), std::invalid_argument);
}

TEST(Properties, HasPositiveDiagonal) {
  EXPECT_TRUE(has_positive_diagonal(poisson1d(5)));
  Coo c(2, 2);
  c.add(0, 0, 1.0);
  c.add(1, 1, -2.0);
  EXPECT_FALSE(has_positive_diagonal(Csr::from_coo(c)));
}

}  // namespace
}  // namespace bars

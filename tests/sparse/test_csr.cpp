#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bars {
namespace {

Csr small_example() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  Coo c(3, 3);
  for (index_t i = 0; i < 3; ++i) {
    c.add(i, i, 2.0);
    if (i > 0) c.add(i, i - 1, -1.0);
    if (i < 2) c.add(i, i + 1, -1.0);
  }
  return Csr::from_coo(c);
}

TEST(Csr, FromCooBuildsCorrectStructure) {
  const Csr a = small_example();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 7);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(Csr, FromCooSumsDuplicates) {
  Coo c(2, 2);
  c.add(0, 0, 1.0);
  c.add(0, 0, 3.0);
  const Csr a = Csr::from_coo(c);
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
}

TEST(Csr, ConstructorValidatesRowPtr) {
  EXPECT_THROW(Csr(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Csr(1, 1, {0, 2}, {0}, {1.0}), std::invalid_argument);
}

TEST(Csr, ConstructorValidatesColumnOrder) {
  // Columns within a row must be strictly increasing.
  EXPECT_THROW(Csr(1, 3, {0, 2}, {2, 1}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Csr(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Csr, ConstructorValidatesColumnRange) {
  EXPECT_THROW(Csr(1, 2, {0, 1}, {2}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Csr(1, 2, {0, 1}, {-1}, {1.0}), std::invalid_argument);
}

TEST(Csr, SpmvMatchesHandComputation) {
  const Csr a = small_example();
  const Vector x{1.0, 2.0, 3.0};
  Vector y(3);
  a.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);   // 2*1 - 2
  EXPECT_DOUBLE_EQ(y[1], 0.0);   // -1 + 4 - 3
  EXPECT_DOUBLE_EQ(y[2], 4.0);   // -2 + 6
}

TEST(Csr, ResidualComputesBMinusAx) {
  const Csr a = small_example();
  const Vector x{1.0, 1.0, 1.0};
  const Vector b{2.0, 2.0, 2.0};
  Vector r(3);
  a.residual(b, x, r);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
}

TEST(Csr, DiagonalExtraction) {
  const Csr a = small_example();
  const Vector d = a.diagonal();
  ASSERT_EQ(d.size(), 3u);
  for (value_t v : d) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Csr, IsSymmetricDetectsSymmetry) {
  EXPECT_TRUE(small_example().is_symmetric());
  Coo c(2, 2);
  c.add(0, 1, 1.0);
  EXPECT_FALSE(Csr::from_coo(c).is_symmetric());
}

TEST(Csr, TransposeRoundTrip) {
  Coo c(2, 3);
  c.add(0, 2, 5.0);
  c.add(1, 0, -2.0);
  const Csr a = Csr::from_coo(c);
  const Csr at = a.transpose();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 2);
  EXPECT_DOUBLE_EQ(at.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(at.at(0, 1), -2.0);
  const Csr att = at.transpose();
  EXPECT_DOUBLE_EQ(att.at(0, 2), 5.0);
  EXPECT_EQ(att.nnz(), a.nnz());
}

TEST(Csr, AbsTakesAbsoluteValues) {
  const Csr a = small_example();
  const Csr b = a.abs();
  EXPECT_DOUBLE_EQ(b.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(b.at(1, 1), 2.0);
}

TEST(Csr, ToCooRoundTrip) {
  const Csr a = small_example();
  const Csr b = Csr::from_coo(a.to_coo());
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_DOUBLE_EQ(b.at(1, 2), -1.0);
}

TEST(Csr, JacobiIterationMatrixHasZeroDiagonal) {
  const Csr b = jacobi_iteration_matrix(small_example());
  for (index_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(b.at(i, i), 0.0);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(b.at(1, 0), 0.5);
}

TEST(Csr, JacobiIterationMatrixThrowsOnZeroDiagonal) {
  Coo c(2, 2);
  c.add(0, 1, 1.0);
  c.add(1, 0, 1.0);
  EXPECT_THROW(jacobi_iteration_matrix(Csr::from_coo(c)),
               std::invalid_argument);
}

TEST(Csr, ScaledJacobiIterationMatrixAppliesTau) {
  const Csr b = scaled_jacobi_iteration_matrix(small_example(), 0.5);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 0.5);   // 1 - tau
  EXPECT_DOUBLE_EQ(b.at(0, 1), 0.25);  // tau * 1/2
}

TEST(Csr, RowSpansMatchEntries) {
  const Csr a = small_example();
  EXPECT_EQ(a.row_cols(1).size(), 3u);
  EXPECT_EQ(a.row_cols(0).size(), 2u);
  EXPECT_DOUBLE_EQ(a.row_vals(1)[1], 2.0);
}

TEST(Csr, EmptyMatrix) {
  const Csr a;
  EXPECT_EQ(a.rows(), 0);
  EXPECT_EQ(a.nnz(), 0);
}

}  // namespace
}  // namespace bars

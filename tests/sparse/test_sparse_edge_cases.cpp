/// Edge-case coverage for the sparse substrate beyond the main tests.

#include <gtest/gtest.h>

#include <sstream>

#include "matrices/generators.hpp"
#include "sparse/csr.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/partition.hpp"
#include "stats/rng.hpp"

namespace bars {
namespace {

TEST(CsrEdge, EmptyRowsHandled) {
  Coo c(4, 4);
  c.add(0, 0, 1.0);
  c.add(3, 3, 2.0);  // rows 1 and 2 empty
  const Csr a = Csr::from_coo(c);
  EXPECT_EQ(a.row_cols(1).size(), 0u);
  EXPECT_EQ(a.row_cols(2).size(), 0u);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  Vector x(4, 1.0), y(4);
  a.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 2.0);
}

TEST(CsrEdge, RectangularSpmv) {
  Coo c(2, 3);
  c.add(0, 0, 1.0);
  c.add(0, 2, 2.0);
  c.add(1, 1, 3.0);
  const Csr a = Csr::from_coo(c);
  const Vector x{1.0, 2.0, 3.0};
  Vector y(2);
  a.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_FALSE(a.is_symmetric());
}

TEST(CsrEdge, RoundTripRandomMatrices) {
  // Property: COO -> CSR -> COO -> CSR is the identity for random
  // sparse matrices of many shapes.
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t rows = rng.uniform_int(1, 40);
    const index_t cols = rng.uniform_int(1, 40);
    Coo c(rows, cols);
    const index_t entries = rng.uniform_int(0, rows * cols / 2);
    for (index_t e = 0; e < entries; ++e) {
      c.add(rng.uniform_int(0, rows - 1), rng.uniform_int(0, cols - 1),
            rng.uniform(-5.0, 5.0));
    }
    const Csr a = Csr::from_coo(c);
    const Csr b = Csr::from_coo(a.to_coo());
    ASSERT_EQ(a.nnz(), b.nnz()) << trial;
    for (index_t i = 0; i < rows; ++i) {
      const auto ac = a.row_cols(i);
      const auto bc = b.row_cols(i);
      ASSERT_EQ(ac.size(), bc.size());
      for (std::size_t k = 0; k < ac.size(); ++k) {
        EXPECT_EQ(ac[k], bc[k]);
        EXPECT_DOUBLE_EQ(a.row_vals(i)[k], b.row_vals(i)[k]);
      }
    }
  }
}

TEST(CsrEdge, TransposeTwiceIsIdentityRandom) {
  Rng rng(7);
  Coo c(25, 25);
  for (int e = 0; e < 120; ++e) {
    c.add(rng.uniform_int(0, 24), rng.uniform_int(0, 24),
          rng.uniform(-1.0, 1.0));
  }
  const Csr a = Csr::from_coo(c);
  const Csr att = a.transpose().transpose();
  ASSERT_EQ(att.nnz(), a.nnz());
  for (index_t i = 0; i < 25; ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(att.at(i, j), a.at(i, j));
    }
  }
}

TEST(MatrixMarketEdge, IntegerFieldParsed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 1 3\n"
      "2 2 -4\n");
  const Csr a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -4.0);
}

TEST(MatrixMarketEdge, BlankLinesBetweenEntriesTolerated) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "\n"
      "2 2 2.0\n");
  const Csr a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 2);
}

TEST(MatrixMarketEdge, CaseInsensitiveHeader) {
  std::istringstream in(
      "%%MatrixMarket matrix COORDINATE Real GENERAL\n"
      "1 1 1\n"
      "1 1 5.0\n");
  const Csr a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
}

TEST(MatrixMarketEdge, ScientificNotationValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 2 2\n"
      "1 1 1.5e-3\n"
      "1 2 -2E+2\n");
  const Csr a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5e-3);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -200.0);
}

TEST(PartitionEdge, SingleRowMatrix) {
  const auto p = RowPartition::uniform(1, 448);
  EXPECT_EQ(p.num_blocks(), 1);
  EXPECT_EQ(p.block(0).size(), 1);
  EXPECT_EQ(p.block_of(0), 0);
}

TEST(PartitionEdge, DeviceSplitMoreDevicesThanBlocks) {
  const auto p = RowPartition::uniform(10, 5);  // 2 blocks
  const auto split = p.device_split(4);
  ASSERT_EQ(split.size(), 4u);
  index_t covered = 0;
  for (const auto& [lo, hi] : split) covered += hi - lo;
  EXPECT_EQ(covered, 2);
}

TEST(GeneratorEdge, TrefethenSize1) {
  const Csr a = trefethen(1);
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
}

TEST(GeneratorEdge, FvLikeSize1) {
  const Csr a = fv_like(1, 0.5);
  EXPECT_EQ(a.rows(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.5);
}

}  // namespace
}  // namespace bars

#include "sparse/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(Dense, IdentitySolveReturnsRhs) {
  const Dense i = Dense::identity(4);
  const Vector b{1.0, 2.0, 3.0, 4.0};
  const Vector x = i.solve(b);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(x[k], b[k]);
}

TEST(Dense, SolveMatchesKnownSolution) {
  Dense a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const Vector b{5.0, 10.0};
  const Vector x = a.solve(b);  // x = (1, 3)
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Dense, SolveWithPivotingHandlesZeroLeadingEntry) {
  Dense a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Vector b{2.0, 3.0};
  const Vector x = a.solve(b);  // swap: x = (3, 2)
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Dense, SolveSingularThrows) {
  Dense a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  const Vector b{1.0, 2.0};
  EXPECT_THROW((void)a.solve(b), std::runtime_error);
}

TEST(Dense, FromCsrPreservesEntries) {
  const Csr p = poisson1d(4);
  const Dense d = Dense::from_csr(p);
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 0.0);
}

TEST(Dense, SymmetricEigenvaluesOfDiagonalMatrix) {
  Dense a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto eig = a.symmetric_eigenvalues();
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 1.0, 1e-12);
  EXPECT_NEAR(eig[1], 2.0, 1e-12);
  EXPECT_NEAR(eig[2], 3.0, 1e-12);
}

TEST(Dense, SymmetricEigenvaluesOfPoisson1dMatchClosedForm) {
  const index_t n = 8;
  const Dense a = Dense::from_csr(poisson1d(n));
  const auto eig = a.symmetric_eigenvalues();
  // lambda_k = 2 - 2 cos(k pi / (n+1)), k = 1..n.
  for (index_t k = 1; k <= n; ++k) {
    const double expect =
        2.0 - 2.0 * std::cos(static_cast<double>(k) * std::numbers::pi /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(eig[k - 1], expect, 1e-10);
  }
}

TEST(Dense, SpmvMatchesCsr) {
  const Csr p = poisson1d(5);
  const Dense d = Dense::from_csr(p);
  const Vector x{1.0, -1.0, 2.0, 0.5, 3.0};
  Vector ys(5), yd(5);
  p.spmv(x, ys);
  d.spmv(x, yd);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Dense, FrobeniusNorm) {
  Dense a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

}  // namespace
}  // namespace bars

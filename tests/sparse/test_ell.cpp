#include "sparse/ell.hpp"

#include <gtest/gtest.h>

#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(Ell, RoundTripPreservesEntries) {
  const Csr a = trefethen(50);
  const Ell e = Ell::from_csr(a);
  const Csr back = e.to_csr();
  ASSERT_EQ(back.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_DOUBLE_EQ(back.at(i, j), a.at(i, j));
    }
  }
}

TEST(Ell, SpmvMatchesCsr) {
  const Csr a = fv_like(9, 0.4);
  const Ell e = Ell::from_csr(a);
  Vector x(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.5 - 0.01 * double(i);
  Vector y1(x.size()), y2(x.size());
  a.spmv(x, y1);
  e.spmv(x, y2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-14);
  }
}

TEST(Ell, RowWidthIsMaxRowNnz) {
  const Csr a = poisson1d(6);  // rows of 2 or 3 entries
  const Ell e = Ell::from_csr(a);
  EXPECT_EQ(e.row_width(), 3);
  EXPECT_EQ(e.padded_size(), 18);
  EXPECT_EQ(e.nnz(), a.nnz());
  EXPECT_GT(e.padding_ratio(), 1.0);
}

TEST(Ell, UniformRowsHaveNoPadding) {
  Coo c(3, 3);
  for (index_t i = 0; i < 3; ++i) {
    c.add(i, i, 2.0);
    c.add(i, (i + 1) % 3, -1.0);
  }
  const Ell e = Ell::from_csr(Csr::from_coo(c));
  EXPECT_DOUBLE_EQ(e.padding_ratio(), 1.0);
}

TEST(Ell, WidthCapEnforced) {
  const Csr a = trefethen(100);  // widest row has ~13 entries
  EXPECT_NO_THROW((void)Ell::from_csr(a, 20));
  EXPECT_THROW((void)Ell::from_csr(a, 4), std::invalid_argument);
}

TEST(Ell, EmptyMatrix) {
  const Ell e = Ell::from_csr(Csr::from_coo(Coo(3, 3)));
  EXPECT_EQ(e.row_width(), 0);
  EXPECT_EQ(e.nnz(), 0);
  Vector x(3, 1.0), y(3, 7.0);
  e.spmv(x, y);
  for (value_t v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Ell, TrefethenPaddingModest) {
  // Trefethen rows vary from ~12 to ~22 entries; ELL padding should
  // stay below 2x (sanity on the GPU-format viability).
  const Ell e = Ell::from_csr(trefethen(2000));
  EXPECT_LT(e.padding_ratio(), 2.0);
}

}  // namespace
}  // namespace bars

#include "resilience/recovery.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/silent_error.hpp"
#include "matrices/generators.hpp"

namespace bars {
namespace {

// ------------------------------------------------------------ CheckpointStore

TEST(CheckpointStore, SavesOnlyAtIntervalBoundaries) {
  resilience::CheckpointOptions o;
  o.interval = 5;
  resilience::CheckpointStore cp(o);
  const Vector x(3, 1.0);
  for (index_t k = 0; k <= 4; ++k) cp.observe(k, 0.1, x);
  EXPECT_FALSE(cp.has());
  cp.observe(5, 0.1, x);
  ASSERT_TRUE(cp.has());
  EXPECT_EQ(cp.best().iteration, 5);
  EXPECT_EQ(cp.saved_count(), 1);
}

TEST(CheckpointStore, KeepsBestResidualOnly) {
  resilience::CheckpointOptions o;
  o.interval = 5;
  resilience::CheckpointStore cp(o);
  cp.observe(5, 1e-2, Vector{1.0});
  cp.observe(10, 1.0, Vector{2.0});  // worse: rejected
  EXPECT_EQ(cp.best().iteration, 5);
  EXPECT_EQ(cp.best().x[0], 1.0);
  cp.observe(15, 1e-4, Vector{3.0});  // better: replaces
  EXPECT_EQ(cp.best().iteration, 15);
  EXPECT_EQ(cp.best().residual, 1e-4);
  EXPECT_EQ(cp.saved_count(), 2);
}

TEST(CheckpointStore, NonFiniteResidualNeverSaved) {
  resilience::CheckpointStore cp({.interval = 1});
  cp.observe(1, std::numeric_limits<value_t>::quiet_NaN(), Vector{1.0});
  cp.observe(2, std::numeric_limits<value_t>::infinity(), Vector{1.0});
  EXPECT_FALSE(cp.has());
}

// --------------------------------------------------- OnlineResidualDetector

TEST(OnlineDetector, CleanGeometricDecayHasNoAnomaly) {
  resilience::OnlineResidualDetector d;
  value_t r = 1.0;
  for (int k = 0; k < 40; ++k, r *= 0.5) {
    EXPECT_FALSE(d.push(r).has_value()) << "k=" << k;
  }
}

TEST(OnlineDetector, JumpFlaggedAtTheJumpSample) {
  resilience::OnlineResidualDetector d;
  value_t r = 1.0;
  std::optional<resilience::Anomaly> hit;
  for (int k = 0; k < 30 && !hit; ++k) {
    hit = d.push(k == 20 ? r * 1e3 : r);
    if (!hit) r *= 0.5;
  }
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, resilience::AnomalyKind::kJump);
  EXPECT_EQ(hit->at_iteration, 20);
  EXPECT_GT(hit->jump_ratio, 100.0);
}

TEST(OnlineDetector, StallFlaggedOnceWindowFills) {
  resilience::OnlineResidualDetector d;
  value_t r = 1.0;
  for (int k = 0; k < 10; ++k, r *= 0.5) {
    ASSERT_FALSE(d.push(r).has_value());
  }
  std::optional<resilience::Anomaly> hit;
  int pushes = 0;
  while (!hit && pushes < 30) {
    hit = d.push(r);  // frozen residual
    ++pushes;
  }
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, resilience::AnomalyKind::kStall);
}

TEST(OnlineDetector, NonFiniteFlaggedImmediately) {
  resilience::OnlineResidualDetector d;
  (void)d.push(1.0);
  const auto hit = d.push(std::numeric_limits<value_t>::quiet_NaN());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, resilience::AnomalyKind::kNonFinite);
}

TEST(OnlineDetector, FlatAtRoundingFloorNotFlagged) {
  resilience::OnlineResidualDetector d;
  for (int k = 0; k < 40; ++k) {
    EXPECT_FALSE(d.push(1e-15).has_value());
  }
}

TEST(OnlineDetector, WarmupSuppressesEarlyJump) {
  resilience::OnlineResidualDetector d;
  (void)d.push(1.0);
  (void)d.push(0.5);
  EXPECT_FALSE(d.push(500.0).has_value());  // trend not yet armed
}

TEST(OnlineDetector, ResetRequiresFreshEvidenceForStall) {
  resilience::AnomalyOptions o;
  o.stall_window = 5;
  resilience::OnlineResidualDetector d(o);
  value_t r = 1.0;
  for (int k = 0; k < 10; ++k, r *= 0.5) (void)d.push(r);
  d.reset(r);
  // Fewer than stall_window flat samples after the reset: not flagged.
  for (int k = 0; k < 4; ++k) {
    EXPECT_FALSE(d.push(r).has_value());
  }
}

TEST(OnlineDetector, StreamingMatchesBatchDetector) {
  // Replay equivalence: the streaming detector fed sample-by-sample must
  // agree with core::detect_silent_error on the full history.
  std::vector<value_t> history;
  value_t r = 1.0;
  for (int k = 0; k < 35; ++k) {
    history.push_back(k == 17 ? r * 5e3 : r);
    r *= 0.6;
  }
  const SilentErrorReport batch = detect_silent_error(history);
  resilience::OnlineResidualDetector online = make_online_detector();
  std::optional<resilience::Anomaly> hit;
  for (value_t s : history) {
    if ((hit = online.push(s))) break;
  }
  ASSERT_TRUE(batch.detected);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at_iteration, batch.at_iteration);
  EXPECT_EQ(hit->jump_ratio, batch.jump_ratio);
}

// ------------------------------------------------------------------ Watchdog

TEST(Watchdog, StalledBlockFlaggedOnceThenRearmed) {
  resilience::WatchdogOptions o;
  o.check_interval = 5;
  resilience::Watchdog w(o, /*num_blocks=*/4);
  std::vector<index_t> execs = {5, 5, 5, 5};
  auto v = w.observe(5, 0.5, execs);
  EXPECT_TRUE(v.newly_stalled_blocks.empty());  // all advanced equally
  execs = {10, 10, 5, 10};  // block 2 frozen
  v = w.observe(10, 0.25, execs);
  ASSERT_EQ(v.newly_stalled_blocks.size(), 1u);
  EXPECT_EQ(v.newly_stalled_blocks[0], 2);
  execs = {15, 15, 5, 15};  // still frozen: not re-reported
  v = w.observe(15, 0.12, execs);
  EXPECT_TRUE(v.newly_stalled_blocks.empty());
  execs = {20, 20, 10, 20};  // revived...
  v = w.observe(20, 0.06, execs);
  EXPECT_TRUE(v.newly_stalled_blocks.empty());
  execs = {25, 25, 10, 25};  // ...and frozen again: re-reported
  v = w.observe(25, 0.03, execs);
  ASSERT_EQ(v.newly_stalled_blocks.size(), 1u);
  EXPECT_EQ(v.newly_stalled_blocks[0], 2);
}

TEST(Watchdog, FlatResidualTriggersReassignment) {
  resilience::WatchdogOptions o;
  o.check_interval = 5;
  o.stall_checks = 2;
  resilience::Watchdog w(o, 0);
  const std::vector<index_t> none;
  EXPECT_FALSE(w.observe(5, 0.5, none).reassign);
  EXPECT_FALSE(w.observe(10, 0.5, none).reassign);
  // Third inspection: no contraction over two full check periods.
  EXPECT_TRUE(w.observe(15, 0.5, none).reassign);
  // Re-armed: needs the full stall_checks history again.
  EXPECT_FALSE(w.observe(20, 0.5, none).reassign);
  EXPECT_TRUE(w.observe(25, 0.5, none).reassign);
}

TEST(Watchdog, DivergenceRequestsDampedRestart) {
  resilience::WatchdogOptions o;
  o.divergence_factor = 1e4;
  resilience::Watchdog w(o, 0);
  const std::vector<index_t> none;
  EXPECT_FALSE(w.observe(1, 1.0, none).damped_restart);
  EXPECT_FALSE(w.observe(2, 0.5, none).damped_restart);
  EXPECT_FALSE(w.observe(3, 100.0, none).damped_restart);  // below factor
  EXPECT_TRUE(w.observe(4, 1e4, none).damped_restart);
  EXPECT_TRUE(
      w.observe(5, std::numeric_limits<value_t>::infinity(), none)
          .damped_restart);
}

// ------------------------------------------------------- integrated recovery

Csr test_matrix() { return fv_like(20, 0.4); }

BlockAsyncOptions base_options() {
  BlockAsyncOptions o;
  o.block_size = 50;
  o.local_iters = 5;
  o.solve.max_iters = 600;
  o.solve.tol = 1e-13;
  o.seed = 7;
  return o;
}

TEST(Recovery, SdcRollbackConvergesFasterThanRunThrough) {
  // Acceptance criterion: an injected SDC triggers online detection and
  // checkpoint rollback, converging in fewer global iterations than the
  // run-through baseline that relaxes the corruption away.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SilentErrorPlan sdc;
  sdc.at = 12;
  sdc.magnitude = 1.0e6;

  const auto through = block_async_solve_with_sdc(a, b, base_options(), sdc);
  ASSERT_TRUE(through.solve.solve.ok());
  ASSERT_TRUE(through.report.detected);  // post-hoc batch scan sees it

  BlockAsyncOptions o = base_options();
  o.resilience = resilience::Policy{};
  const auto rolled = block_async_solve_with_sdc(a, b, o, sdc);
  ASSERT_TRUE(rolled.solve.solve.ok());
  EXPECT_GE(rolled.solve.resilience.detections, 1);
  EXPECT_GE(rolled.solve.resilience.rollbacks, 1);
  EXPECT_GT(rolled.solve.resilience.checkpoints_saved, 0);
  EXPECT_LT(rolled.solve.solve.iterations, through.solve.solve.iterations);
}

TEST(Recovery, WatchdogReassignsPermanentlyFailedComponents) {
  // A failure wave that never recovers stagnates the legacy run; the
  // watchdog detects the contraction stall and reassigns the failed
  // components, letting the supervised run converge.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  resilience::FaultScenario s;
  s.fail_components(/*at=*/10, /*fraction=*/0.2,
                    /*recover_after=*/std::nullopt);

  BlockAsyncOptions plain = base_options();
  plain.solve.max_iters = 200;
  plain.scenario = s;
  const auto stuck = block_async_solve(a, b, plain);
  EXPECT_FALSE(stuck.solve.ok());

  BlockAsyncOptions guarded = base_options();
  guarded.scenario = s;
  guarded.resilience = resilience::Policy{};
  const auto rescued = block_async_solve(a, b, guarded);
  ASSERT_TRUE(rescued.solve.ok());
  EXPECT_GE(rescued.resilience.watchdog_reassignments, 1);
  EXPECT_GT(rescued.resilience.components_reassigned, 0);
}

TEST(Recovery, DampedRestartFiresOnDivergence) {
  // The structural surrogate with rho(B) > 1 diverges under Jacobi-type
  // sweeps (paper Section 4.2); the watchdog spends its restart budget
  // before the run is declared diverged.
  const Csr a = structural_like(12, structural_diag_for_rho(12, 1.3));
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  o.solve.max_iters = 300;
  o.resilience = resilience::Policy{};
  const auto r = block_async_solve(a, b, o);
  EXPECT_FALSE(r.solve.ok());
  EXPECT_TRUE(r.solve.status == bars::SolverStatus::kDiverged);
  EXPECT_GE(r.resilience.damped_restarts, 1);
}

TEST(Recovery, PolicyOnCleanRunIsInert) {
  // With no faults and no SDC the policy must not change the verdict,
  // and the report shows checkpoints but no interventions.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto plain = block_async_solve(a, b, base_options());
  BlockAsyncOptions o = base_options();
  o.resilience = resilience::Policy{};
  const auto guarded = block_async_solve(a, b, o);
  ASSERT_TRUE(plain.solve.ok());
  ASSERT_TRUE(guarded.solve.ok());
  EXPECT_EQ(guarded.solve.iterations, plain.solve.iterations);
  EXPECT_GT(guarded.resilience.checkpoints_saved, 0);
  EXPECT_EQ(guarded.resilience.rollbacks, 0);
  EXPECT_EQ(guarded.resilience.damped_restarts, 0);
  EXPECT_EQ(guarded.resilience.watchdog_reassignments, 0);
}

}  // namespace
}  // namespace bars

#include "resilience/scenario.hpp"

#include <gtest/gtest.h>

#include "core/block_async.hpp"
#include "matrices/generators.hpp"
#include "resilience/service_faults.hpp"

namespace bars {
namespace {

// ------------------------------------------------------- timeline unit tests

TEST(ScenarioTimeline, EventActiveExactlyInsideWindow) {
  resilience::FaultScenario s;
  s.fail_components(/*at=*/5, /*fraction=*/0.5, /*recover_after=*/10);
  resilience::ScenarioTimeline t(s, /*num_rows=*/100);
  t.advance(0);
  EXPECT_FALSE(t.any_component_failed());
  t.advance(4);
  EXPECT_FALSE(t.any_component_failed());
  t.advance(5);
  ASSERT_TRUE(t.any_component_failed());
  index_t frozen = 0;
  for (std::uint8_t m : *t.component_mask()) frozen += m;
  EXPECT_EQ(frozen, 50);
  t.advance(14);
  EXPECT_TRUE(t.any_component_failed());
  t.advance(15);  // at + duration: components reassigned
  EXPECT_FALSE(t.any_component_failed());
  EXPECT_EQ(t.component_mask(), nullptr);
}

TEST(ScenarioTimeline, ZeroDurationNeverObserved) {
  // recover_after = 0 matches the legacy FaultPlan semantics: the
  // activation and the reassignment coincide, so no write ever sees
  // the mask.
  resilience::FaultScenario s;
  s.fail_components(5, 0.5, 0);
  resilience::ScenarioTimeline t(s, 100);
  for (index_t k = 0; k <= 20; ++k) {
    t.advance(k);
    EXPECT_FALSE(t.any_component_failed()) << "k=" << k;
  }
}

TEST(ScenarioTimeline, OverlappingFailuresUnionTheirMasks) {
  resilience::FaultScenario s;
  s.fail_components(2, 0.25, 20, /*seed=*/1)
      .fail_components(4, 0.25, 20, /*seed=*/2);
  resilience::ScenarioTimeline t(s, 1000);
  t.advance(2);
  index_t first = 0;
  for (std::uint8_t m : *t.component_mask()) first += m;
  EXPECT_EQ(first, 250);
  t.advance(4);
  index_t both = 0;
  for (std::uint8_t m : *t.component_mask()) both += m;
  // Independent seeds: the union is larger than either wave alone.
  EXPECT_GT(both, 250);
  EXPECT_LE(both, 500);
}

TEST(ScenarioTimeline, FullFractionFreezesEveryComponent) {
  resilience::FaultScenario s;
  s.fail_components(0, 1.0);
  resilience::ScenarioTimeline t(s, 64);
  t.advance(0);
  index_t frozen = 0;
  for (std::uint8_t m : *t.component_mask()) frozen += m;
  EXPECT_EQ(frozen, 64);
}

TEST(ScenarioTimeline, ReassignFreesComponentsAndReportsCount) {
  resilience::FaultScenario s;
  s.fail_components(0, 0.25, /*recover_after=*/std::nullopt);
  resilience::ScenarioTimeline t(s, 100);
  t.advance(0);
  ASSERT_TRUE(t.any_component_failed());
  EXPECT_EQ(t.reassign_failed_components(), 25);
  EXPECT_FALSE(t.any_component_failed());
  // The event is expired, not rescheduled: it never re-fires.
  t.advance(50);
  EXPECT_FALSE(t.any_component_failed());
  EXPECT_EQ(t.reassign_failed_components(), 0);
}

TEST(ScenarioTimeline, DeviceAndLinkQueries) {
  resilience::FaultScenario s;
  s.drop_device(3, /*device=*/1, /*rejoin_after=*/4).fail_link(10, 0, 5);
  resilience::ScenarioTimeline t(s, 10, /*num_devices=*/2);
  t.advance(0);
  EXPECT_FALSE(t.device_down(1));
  t.advance(3);
  EXPECT_TRUE(t.device_down(1));
  EXPECT_FALSE(t.device_down(0));
  EXPECT_FALSE(t.link_down(0));
  t.advance(7);
  EXPECT_FALSE(t.device_down(1));
  t.advance(10);
  EXPECT_TRUE(t.link_down(0));
  EXPECT_FALSE(t.link_down(1));
  t.advance(15);
  EXPECT_FALSE(t.link_down(0));
}

TEST(ScenarioTimeline, HaloCorruptionInjectsWithinWindow) {
  resilience::FaultScenario s;
  s.corrupt_halo(/*at=*/0, /*duration=*/5, /*magnitude=*/123.0,
                 /*probability=*/1.0);
  resilience::ScenarioTimeline t(s, 10);
  t.advance(0);
  ASSERT_TRUE(t.halo_corruption_active());
  Vector snap(4, 1.0);
  t.maybe_corrupt_halo(snap);
  index_t hits = 0;
  for (value_t v : snap) hits += v == 123.0 ? 1 : 0;
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(t.halo_corruptions(), 1);
  t.advance(5);
  EXPECT_FALSE(t.halo_corruption_active());
  Vector snap2(4, 1.0);
  t.maybe_corrupt_halo(snap2);
  EXPECT_EQ(t.halo_corruptions(), 1);
}

// ------------------------------------------------- scripted solve scenarios

Csr test_matrix() { return fv_like(20, 0.4); }

BlockAsyncOptions base_options() {
  BlockAsyncOptions o;
  o.block_size = 50;
  o.local_iters = 5;
  o.solve.max_iters = 400;
  o.solve.tol = 1e-13;
  o.seed = 7;
  return o;
}

TEST(ScenarioSolve, LegacyPlanAndOneEventScenarioAreBitIdentical) {
  // The FaultPlan adapter must reproduce the legacy single-event run
  // exactly (same seed -> same mask -> same residual trajectory).
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions legacy = base_options();
  gpusim::FaultPlan plan;
  plan.fail_at = 10;
  plan.fraction = 0.25;
  plan.recover_after = 15;
  legacy.fault = plan;
  BlockAsyncOptions scripted = base_options();
  scripted.scenario = gpusim::to_scenario(plan);
  const auto r1 = block_async_solve(a, b, legacy);
  const auto r2 = block_async_solve(a, b, scripted);
  ASSERT_EQ(r1.solve.residual_history.size(),
            r2.solve.residual_history.size());
  for (std::size_t i = 0; i < r1.solve.residual_history.size(); ++i) {
    EXPECT_EQ(r1.solve.residual_history[i], r2.solve.residual_history[i]);
  }
}

TEST(ScenarioSolve, TwoFailureWavesRecoverToFaultFreeAccuracy) {
  // Acceptance scenario: 25% of components fail at iteration 10 and 10%
  // at iteration 40, each wave reassigned after 20 iterations. The run
  // must converge to the fault-free accuracy with bounded delay (the
  // paper's Section 4.5 claim, composed over two events).
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto clean = block_async_solve(a, b, base_options());
  ASSERT_TRUE(clean.solve.ok());

  BlockAsyncOptions o = base_options();
  resilience::FaultScenario s;
  s.fail_components(10, 0.25, 20, /*seed=*/11)
      .fail_components(40, 0.10, 20, /*seed=*/22);
  o.scenario = s;
  const auto rec = block_async_solve(a, b, o);
  ASSERT_TRUE(rec.solve.ok());
  EXPECT_LE(rec.solve.final_residual, 1e-13);
  // Bounded delay: both failure windows (2 x 20 iterations) plus slack.
  EXPECT_LE(rec.solve.iterations, clean.solve.iterations + 80);
  for (std::size_t i = 0; i < clean.solve.x.size(); ++i) {
    EXPECT_NEAR(rec.solve.x[i], clean.solve.x[i], 1e-9);
  }
}

TEST(ScenarioSolve, RepeatedFailuresOfSameComponentsConverge) {
  // The same seed fails the same components twice; the solve heals
  // after each wave.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  resilience::FaultScenario s;
  s.fail_components(5, 0.3, 10, /*seed=*/9)
      .fail_components(30, 0.3, 10, /*seed=*/9);
  o.scenario = s;
  const auto r = block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
}

TEST(ServiceFaults, BuildersPopulateServiceEventsOnly) {
  resilience::FaultScenario s;
  EXPECT_FALSE(s.has_service_events());
  s.stall_workers(0.5, 1.0, /*stall_s=*/0.1)
      .fail_plan_builds(2.0, 0.5)
      .flood_queue(3.0, 1.0, /*factor=*/4.0)
      .storm_deadlines(4.0, 1.0, /*deadline_ms=*/2.0);
  EXPECT_TRUE(s.has_service_events());
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.events.empty());  // no solver-level events created
  ASSERT_EQ(s.service_events.size(), 4u);
}

TEST(ServiceFaults, WindowArithmeticIsHalfOpen) {
  // Pure now_s overloads: windows are [at, at + duration) — testable
  // without sleeping or starting the injector's wall clock.
  resilience::FaultScenario s;
  s.stall_workers(1.0, 2.0, /*stall_s=*/0.25).fail_plan_builds(5.0, 1.0);
  const resilience::ServiceFaultInjector inj(s);

  EXPECT_EQ(inj.worker_stall_seconds(0.99), 0.0);
  EXPECT_EQ(inj.worker_stall_seconds(1.0), 0.25);   // inclusive start
  EXPECT_EQ(inj.worker_stall_seconds(2.99), 0.25);
  EXPECT_EQ(inj.worker_stall_seconds(3.0), 0.0);    // exclusive end

  EXPECT_FALSE(inj.plan_failure_active(4.99));
  EXPECT_TRUE(inj.plan_failure_active(5.0));
  EXPECT_FALSE(inj.plan_failure_active(6.0));

  // Last service-side window (stall or plan failure) ends at t = 6.
  EXPECT_DOUBLE_EQ(inj.last_service_window_end_seconds(), 6.0);
}

TEST(ServiceFaults, OverlappingWindowsCombineConservatively) {
  resilience::FaultScenario s;
  s.stall_workers(0.0, 2.0, /*stall_s=*/0.1)
      .stall_workers(1.0, 2.0, /*stall_s=*/0.5)
      .flood_queue(0.0, 2.0, /*factor=*/2.0)
      .flood_queue(1.0, 2.0, /*factor=*/8.0)
      .storm_deadlines(0.0, 2.0, /*deadline_ms=*/10.0)
      .storm_deadlines(1.0, 2.0, /*deadline_ms=*/1.0);
  const resilience::ServiceFaultInjector inj(s);

  // Longest stall, largest flood, tightest deadline win in overlap.
  EXPECT_EQ(inj.worker_stall_seconds(0.5), 0.1);
  EXPECT_EQ(inj.worker_stall_seconds(1.5), 0.5);
  EXPECT_EQ(inj.flood_factor(0.5), 2.0);
  EXPECT_EQ(inj.flood_factor(1.5), 8.0);
  EXPECT_EQ(inj.flood_factor(5.0), 1.0);  // neutral outside windows
  ASSERT_TRUE(inj.storm_deadline_ms(1.5).has_value());
  EXPECT_EQ(*inj.storm_deadline_ms(1.5), 1.0);
  EXPECT_FALSE(inj.storm_deadline_ms(5.0).has_value());
}

TEST(ServiceFaults, UnstartedInjectorPinsTheClockAtZero) {
  resilience::FaultScenario s;
  s.fail_plan_builds(0.0, 0.5).stall_workers(1.0, 1.0);
  resilience::ServiceFaultInjector inj(s);
  // Before start() the clock reads 0: only windows at t = 0 are live.
  EXPECT_EQ(inj.elapsed_seconds(), 0.0);
  EXPECT_TRUE(inj.plan_failure_active());
  EXPECT_EQ(inj.worker_stall_seconds(), 0.0);

  inj.count_stall();
  inj.count_plan_failure();
  inj.count_plan_failure();
  EXPECT_EQ(inj.stalls_injected(), 1u);
  EXPECT_EQ(inj.plan_failures_injected(), 2u);
}

TEST(ScenarioSolve, TransientHaloCorruptionIsRelaxedAway) {
  // Corrupted halo reads inject garbage mid-run; the asynchronous
  // iteration self-stabilizes once the window closes.
  const Csr a = test_matrix();
  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockAsyncOptions o = base_options();
  o.solve.max_iters = 800;
  resilience::FaultScenario s;
  s.corrupt_halo(/*at=*/10, /*duration=*/5, /*magnitude=*/1e4,
                 /*probability=*/0.2);
  o.scenario = s;
  const auto r = block_async_solve(a, b, o);
  EXPECT_TRUE(r.solve.ok());
  EXPECT_GT(r.resilience.halo_corruptions, 0);
}

}  // namespace
}  // namespace bars

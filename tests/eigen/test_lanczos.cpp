#include "eigen/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(TridiagEigen, DiagonalMatrix) {
  const auto eig = tridiag_eigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 1.0, 1e-10);
  EXPECT_NEAR(eig[1], 2.0, 1e-10);
  EXPECT_NEAR(eig[2], 3.0, 1e-10);
}

TEST(TridiagEigen, Poisson1dClosedForm) {
  const std::size_t n = 12;
  std::vector<value_t> alpha(n, 2.0), beta(n - 1, -1.0);
  const auto eig = tridiag_eigenvalues(alpha, beta);
  for (std::size_t k = 1; k <= n; ++k) {
    const double expect =
        2.0 - 2.0 * std::cos(static_cast<double>(k) * std::numbers::pi /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(eig[k - 1], expect, 1e-9);
  }
}

TEST(TridiagEigen, EmptyInput) {
  EXPECT_TRUE(tridiag_eigenvalues({}, {}).empty());
}

TEST(Lanczos, ExtremalEigenvaluesOfPoisson1d) {
  const index_t n = 100;
  const auto r = lanczos_extremal(poisson1d(n));
  const double lmax =
      2.0 + 2.0 * std::cos(std::numbers::pi / static_cast<double>(n + 1));
  const double lmin =
      2.0 - 2.0 * std::cos(std::numbers::pi / static_cast<double>(n + 1));
  EXPECT_NEAR(r.lambda_max, lmax, 1e-6 * lmax);
  EXPECT_NEAR(r.lambda_min, lmin, 1e-4);
}

TEST(Lanczos, AgreesWithDenseEigenvaluesOnRandomSpd) {
  const Csr a = random_spd(60, 4, 1.5, 123);
  const auto lz = lanczos_extremal(a);
  const auto dense = Dense::from_csr(a).symmetric_eigenvalues();
  EXPECT_NEAR(lz.lambda_max, dense.back(), 1e-6 * dense.back());
  EXPECT_NEAR(lz.lambda_min, dense.front(), 1e-5 * dense.back());
}

TEST(Lanczos, ExactAfterNStepsOnTinyMatrix) {
  const Csr a = poisson1d(6);
  LanczosOptions o;
  o.max_steps = 6;
  const auto r = lanczos_extremal(a, o);
  EXPECT_TRUE(r.converged);
}

TEST(Lanczos, EmptyMatrix) {
  const auto r = lanczos_extremal(Csr::from_coo(Coo(0, 0)));
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace bars

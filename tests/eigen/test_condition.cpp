#include "eigen/condition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "matrices/generators.hpp"
#include "sparse/dense.hpp"

namespace bars {
namespace {

TEST(Condition, Poisson1dConditionNumber) {
  const index_t n = 60;
  const auto est = spd_condition_number(poisson1d(n));
  const double c1 = std::cos(std::numbers::pi / static_cast<double>(n + 1));
  const double expect = (2.0 + 2.0 * c1) / (2.0 - 2.0 * c1);
  EXPECT_NEAR(est.condition, expect, 1e-3 * expect);
}

TEST(Condition, DiagonalScalingNormalizesDiagonal) {
  const Csr a = trefethen(50);
  const Csr s = symmetric_diagonal_scaling(a);
  for (index_t i = 0; i < s.rows(); ++i) {
    EXPECT_NEAR(s.at(i, i), 1.0, 1e-14);
  }
  EXPECT_TRUE(s.is_symmetric(1e-12));
}

TEST(Condition, DiagonalScalingRejectsNonPositiveDiagonal) {
  Coo c(2, 2);
  c.add(0, 0, -1.0);
  c.add(1, 1, 1.0);
  EXPECT_THROW((void)symmetric_diagonal_scaling(Csr::from_coo(c)),
               std::invalid_argument);
}

TEST(Condition, ScaledConditionMuchSmallerForTrefethen) {
  // Paper Table 1: cond(A) = 5.1e4 but cond(D^{-1}A) = 6.16 — diagonal
  // scaling nearly equilibrates the Trefethen matrix.
  const Csr a = trefethen(300);
  const auto plain = spd_condition_number(a);
  const auto scaled = jacobi_scaled_condition_number(a);
  EXPECT_GT(plain.condition, 100.0);
  EXPECT_LT(scaled.condition, 10.0);
}

TEST(Condition, OptimalTauDampsDivergentJacobi) {
  const Csr a = structural_like(12, structural_diag_for_rho(12, 2.65));
  const value_t tau = optimal_jacobi_tau(a);
  EXPECT_GT(tau, 0.0);
  EXPECT_LT(tau, 1.0);
  // With tau = 2/(l1+ln), rho(I - tau D^{-1}A) < 1.
  const auto est = jacobi_scaled_condition_number(a);
  const double rho_scaled =
      std::max(std::abs(1.0 - tau * est.lambda_min),
               std::abs(1.0 - tau * est.lambda_max));
  EXPECT_LT(rho_scaled, 1.0);
}

TEST(Condition, MatchesDenseOnSmallRandomSpd) {
  const Csr a = random_spd(40, 3, 2.0, 77);
  const auto est = spd_condition_number(a);
  const auto eig = Dense::from_csr(a).symmetric_eigenvalues();
  const double expect = eig.back() / eig.front();
  EXPECT_NEAR(est.condition, expect, 0.01 * expect);
}

}  // namespace
}  // namespace bars

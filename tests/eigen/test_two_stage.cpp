#include "eigen/two_stage.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/block_jacobi.hpp"
#include "eigen/power_iteration.hpp"
#include "matrices/generators.hpp"
#include "stats/convergence.hpp"

namespace bars {
namespace {

TEST(TwoStage, K1EqualsJacobiIterationMatrix) {
  // With one local sweep P = D^{-1}, so T_1 = I - D^{-1}A regardless of
  // the partition.
  const Csr a = fv_like(6, 0.5);
  const Dense t =
      two_stage_iteration_matrix(a, RowPartition::uniform(a.rows(), 9), 1);
  const Csr bj = jacobi_iteration_matrix(a);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.rows(); ++j) {
      EXPECT_NEAR(t(i, j), bj.at(i, j), 1e-12) << i << "," << j;
    }
  }
}

TEST(TwoStage, SpectralRadiusDecreasesWithLocalIters) {
  const Csr a = fv_like(8, 0.3);
  const RowPartition part = RowPartition::uniform(a.rows(), 16);
  value_t prev = 1.0;
  for (index_t k : {1, 2, 4, 8}) {
    const value_t rho = two_stage_spectral_radius(a, part, k);
    EXPECT_LT(rho, prev) << k;
    prev = rho;
  }
}

TEST(TwoStage, SingleBlockManySweepsApproachesDirectSolve) {
  // One block covering A with k -> infinity is an exact solve:
  // rho(T_k) = rho(L^k) = rho(B)^k -> 0.
  const Csr a = fv_like(5, 0.8);
  const RowPartition part = RowPartition::uniform(a.rows(), a.rows());
  const value_t rho_b = jacobi_spectral_radius(a).value;
  const value_t rho_t3 = two_stage_spectral_radius(a, part, 3);
  EXPECT_NEAR(rho_t3, std::pow(rho_b, 3.0), 1e-6);
}

TEST(TwoStage, PredictsMeasuredBlockJacobiRate) {
  // The measured contraction of block_jacobi_solve must equal rho(T_k).
  const Csr a = fv_like(8, 0.4);
  const RowPartition part = RowPartition::uniform(a.rows(), 16);
  const index_t k = 3;
  const value_t rho = two_stage_spectral_radius(a, part, k);

  const Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  BlockJacobiOptions o;
  o.block_size = 16;
  o.local_iters = k;
  o.solve.max_iters = 300;
  o.solve.tol = 0.0;
  const SolveResult r = block_jacobi_solve(a, b, o);
  const value_t measured = contraction_factor(r.residual_history, 100);
  EXPECT_NEAR(measured, rho, 0.02);
}

TEST(TwoStage, ChemLikeGainsNothingFromLocalIters) {
  // The Section 4.3 structure argument in operator form: with diagonal
  // local blocks, L_b = 0 after one sweep and T_k == T_1 for all k.
  const Csr a = chem97ztz_like(96, 0.6, /*diag_spread=*/1.0);
  const RowPartition part = RowPartition::uniform(a.rows(), 24);
  const value_t r1 = two_stage_spectral_radius(a, part, 1);
  const value_t r5 = two_stage_spectral_radius(a, part, 5);
  EXPECT_NEAR(r1, r5, 1e-9);
}

TEST(TwoStage, RejectsBadArguments) {
  const Csr a = poisson1d(6);
  EXPECT_THROW((void)two_stage_iteration_matrix(
                   a, RowPartition::uniform(5, 2), 1),
               std::invalid_argument);
  EXPECT_THROW((void)two_stage_iteration_matrix(
                   a, RowPartition::uniform(6, 2), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bars

#include "eigen/power_iteration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "matrices/generators.hpp"

namespace bars {
namespace {

TEST(PowerIteration, DiagonalMatrixDominantEigenvalue) {
  Coo c(3, 3);
  c.add(0, 0, 1.0);
  c.add(1, 1, -5.0);
  c.add(2, 2, 2.0);
  const auto r = spectral_radius(Csr::from_coo(c));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 5.0, 1e-8);
}

TEST(PowerIteration, Poisson1dSpectralRadiusClosedForm) {
  const index_t n = 50;
  const auto r = spectral_radius(poisson1d(n));
  const double expect =
      2.0 + 2.0 * std::cos(std::numbers::pi / static_cast<double>(n + 1));
  EXPECT_NEAR(r.value, expect, 1e-6);
}

TEST(PowerIteration, JacobiRadiusOfPoisson1d) {
  const index_t n = 40;
  const auto r = jacobi_spectral_radius(poisson1d(n));
  const double expect =
      std::cos(std::numbers::pi / static_cast<double>(n + 1));
  EXPECT_NEAR(r.value, expect, 1e-6);
}

TEST(PowerIteration, FvLikeMatchesCalibrationTarget) {
  const value_t target = 0.8541;
  const Csr a = fv_like(20, fv_reaction_for_rho(20, target));
  const auto r = jacobi_spectral_radius(a);
  EXPECT_NEAR(r.value, target, 1e-5);
}

TEST(PowerIteration, AsyncRadiusEqualsJacobiForNonnegativeStencil) {
  // The fv stencil has all off-diagonal entries of one sign, so
  // rho(|B|) == rho(B).
  const Csr a = fv_like(15, 0.5);
  const auto rj = jacobi_spectral_radius(a);
  const auto ra = async_spectral_radius(a);
  EXPECT_NEAR(rj.value, ra.value, 1e-6);
}

TEST(PowerIteration, StructuralLikeExceedsOne) {
  const Csr a = structural_like(20, structural_diag_for_rho(20, 2.65));
  const auto r = jacobi_spectral_radius(a);
  EXPECT_NEAR(r.value, 2.65, 1e-4);
}

TEST(PowerIteration, EmptyMatrixConverges) {
  const auto r = spectral_radius(Csr::from_coo(Coo(0, 0)));
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(PowerIteration, ZeroMatrixGivesZero) {
  const auto r = spectral_radius(Csr::from_coo(Coo(4, 4)),
                                 {.max_iters = 50});
  EXPECT_NEAR(r.value, 0.0, 1e-12);
}

}  // namespace
}  // namespace bars

#!/usr/bin/env bash
# Static-analysis tier: the exact sequence the gating CI job runs, so a
# local `scripts/run_static_analysis.sh` reproduces CI verbatim.
#
#   1. bars_lint --strict     project linter (determinism, hot-noalloc,
#                             raw-mutex/assert, hygiene)
#   2. clang build            -Wthread-safety -Werror over the library
#                             targets (BARS_ENABLE_STATIC_ANALYSIS=ON)
#   3. clang-tidy             checks from .clang-tidy, gating
#   4. cppcheck               warning/performance/portability, gating
#
# Tools that are not installed are SKIPped locally; pass --require-all
# (CI does) to turn a missing tool into a failure. The analysis build
# lives in build-sa/ (cached in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUIRE_ALL=0
for arg in "$@"; do
  case "$arg" in
    --require-all) REQUIRE_ALL=1 ;;
    *) echo "usage: $0 [--require-all]" >&2; exit 2 ;;
  esac
done

FAILED=0
note()  { printf '\n== %s\n' "$*"; }
skip()  {
  if [[ "$REQUIRE_ALL" == 1 ]]; then
    echo "MISSING (required): $*" >&2; FAILED=1
  else
    echo "SKIP: $* not installed"
  fi
}

# --- 1. project linter --------------------------------------------------
note "bars_lint --strict src"
python3 tools/bars_lint.py --strict src

# --- 2. clang -Wthread-safety build ------------------------------------
CLANGXX="${CLANGXX:-clang++}"
if command -v "$CLANGXX" >/dev/null 2>&1; then
  note "clang -Wthread-safety -Werror build (build-sa/)"
  # Library targets only: tests/benches/examples need gtest/benchmark
  # and add nothing to the thread-safety surface.
  cmake -B build-sa -S . \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DBARS_ENABLE_STATIC_ANALYSIS=ON \
    -DBARS_WERROR=ON \
    -DBARS_BUILD_TESTS=OFF -DBARS_BUILD_BENCHMARKS=OFF \
    -DBARS_BUILD_EXAMPLES=OFF \
    ${CMAKE_GENERATOR_FLAGS:-}
  cmake --build build-sa -j "$(nproc)"
else
  skip "$CLANGXX"
fi

# --- 3. clang-tidy ------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1 && [[ -f build-sa/compile_commands.json ]]; then
  note "clang-tidy (.clang-tidy baseline, gating)"
  mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-sa -quiet "${TIDY_SOURCES[@]}"
  else
    clang-tidy -p build-sa --quiet "${TIDY_SOURCES[@]}"
  fi
elif command -v clang-tidy >/dev/null 2>&1; then
  skip "clang-tidy (no build-sa/compile_commands.json; clang build step)"
else
  skip "clang-tidy"
fi

# --- 4. cppcheck --------------------------------------------------------
if command -v cppcheck >/dev/null 2>&1; then
  note "cppcheck (warning,performance,portability, gating)"
  cppcheck --enable=warning,performance,portability \
    --error-exitcode=1 --inline-suppr \
    --suppress=missingIncludeSystem \
    --suppress=unusedStructMember \
    --std=c++20 --language=c++ -I src \
    -j "$(nproc)" --quiet \
    src
else
  skip "cppcheck"
fi

if [[ "$FAILED" == 1 ]]; then
  echo; echo "static analysis: required tools missing" >&2; exit 1
fi
echo; echo "static analysis: OK"

#include "stats/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace bars {

std::vector<index_t> Rng::sample_without_replacement(index_t n, index_t k) {
  if (k < 0 || k > n) {
    throw std::invalid_argument("sample_without_replacement: k out of range");
  }
  std::vector<index_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), index_t{0});
  for (index_t i = 0; i < k; ++i) {
    const index_t j = uniform_int(i, n - 1);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

}  // namespace bars

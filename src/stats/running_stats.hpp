#pragma once

#include <cstddef>

#include "sparse/types.hpp"

/// \file running_stats.hpp
/// Welford-style online statistics, used to aggregate the 1000-run
/// convergence-variation experiments (paper Tables 2 and 3).

namespace bars {

/// Online mean/variance/min/max accumulator (numerically stable Welford
/// update).
class RunningStats {
 public:
  void add(value_t x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] value_t mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  [[nodiscard]] value_t variance() const noexcept;
  [[nodiscard]] value_t stddev() const noexcept;
  /// Standard error of the mean: stddev / sqrt(n).
  [[nodiscard]] value_t standard_error() const noexcept;
  [[nodiscard]] value_t min() const noexcept { return min_; }
  [[nodiscard]] value_t max() const noexcept { return max_; }
  /// max - min (the paper's "absolute variation").
  [[nodiscard]] value_t absolute_variation() const noexcept;
  /// (max - min) / mean (the paper's "relative variation"); 0 if mean==0.
  [[nodiscard]] value_t relative_variation() const noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  value_t mean_ = 0.0;
  value_t m2_ = 0.0;
  value_t min_ = 0.0;
  value_t max_ = 0.0;
};

}  // namespace bars

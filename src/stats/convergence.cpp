#include "stats/convergence.hpp"

#include <cmath>

namespace bars {

value_t contraction_factor(const std::vector<value_t>& history,
                           std::size_t window, value_t floor) {
  // Use the trailing `window` ratios above the rounding floor.
  std::vector<value_t> usable;
  for (value_t v : history) {
    if (v > floor && std::isfinite(v)) {
      usable.push_back(v);
    } else if (!usable.empty()) {
      break;  // hit the plateau: stop collecting
    }
  }
  if (usable.size() < 2) return 0.0;
  const std::size_t last = usable.size() - 1;
  const std::size_t first =
      last > window ? last - window : std::size_t{0};
  if (usable[first] <= 0.0 || usable[last] <= 0.0) return 0.0;
  const double steps = static_cast<double>(last - first);
  if (steps <= 0.0) return 0.0;
  return std::pow(usable[last] / usable[first], 1.0 / steps);
}

index_t iterations_to(const std::vector<value_t>& history, value_t tol) {
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i] <= tol) return static_cast<index_t>(i);
  }
  return -1;
}

index_t extrapolate_iterations(const std::vector<value_t>& history,
                               value_t tol, std::size_t window) {
  const index_t direct = iterations_to(history, tol);
  if (direct >= 0) return direct;
  if (history.empty()) return -1;
  const value_t rho = contraction_factor(history, window);
  if (rho <= 0.0 || rho >= 1.0) return -1;
  const value_t last = history.back();
  if (last <= 0.0) return -1;
  const double extra = std::log(tol / last) / std::log(rho);
  return static_cast<index_t>(history.size()) - 1 +
         static_cast<index_t>(std::ceil(extra));
}

}  // namespace bars

#pragma once

#include <vector>

#include "sparse/types.hpp"

/// \file convergence.hpp
/// Residual-history analysis: asymptotic contraction factors and
/// iteration-count extrapolation, used to compare measured convergence
/// rates against the spectral predictions (rho(B), etc.).

namespace bars {

/// Geometric-mean contraction factor of the last `window` steps of a
/// residual history (ratio r_{k+1}/r_k), ignoring entries at/below
/// `floor` (rounding plateau). Returns 0 when fewer than 2 usable
/// entries exist.
[[nodiscard]] value_t contraction_factor(const std::vector<value_t>& history,
                                         std::size_t window = 20,
                                         value_t floor = 1e-14);

/// First index with history[i] <= tol, or -1 if never reached.
[[nodiscard]] index_t iterations_to(const std::vector<value_t>& history,
                                    value_t tol);

/// Extrapolated iterations to reach `tol` from the last usable residual
/// at the measured contraction factor; -1 when the history does not
/// contract. Exact histories that already reach tol return
/// iterations_to().
[[nodiscard]] index_t extrapolate_iterations(
    const std::vector<value_t>& history, value_t tol,
    std::size_t window = 20);

}  // namespace bars

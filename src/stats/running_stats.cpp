#include "stats/running_stats.hpp"

#include <algorithm>
#include <cmath>

namespace bars {

void RunningStats::add(value_t x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const value_t delta = x - mean_;
  mean_ += delta / static_cast<value_t>(n_);
  m2_ += delta * (x - mean_);
}

value_t RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<value_t>(n_ - 1) : 0.0;
}

value_t RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

value_t RunningStats::standard_error() const noexcept {
  return n_ ? stddev() / std::sqrt(static_cast<value_t>(n_)) : 0.0;
}

value_t RunningStats::absolute_variation() const noexcept {
  return n_ ? max_ - min_ : 0.0;
}

value_t RunningStats::relative_variation() const noexcept {
  return (n_ && mean_ != 0.0) ? (max_ - min_) / mean_ : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const value_t delta = other.mean_ - mean_;
  const auto na = static_cast<value_t>(n_);
  const auto nb = static_cast<value_t>(other.n_);
  const value_t nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace bars

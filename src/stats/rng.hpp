#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sparse/types.hpp"

/// \file rng.hpp
/// Seeded random-number utilities. Every stochastic component in BARS
/// receives its randomness through an explicit Rng so that benches and
/// tests are reproducible bit-for-bit given the seed.

namespace bars {

/// Thin deterministic wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] index_t uniform_int(index_t lo, index_t hi) {
    std::uniform_int_distribution<index_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] value_t uniform(value_t lo = 0.0, value_t hi = 1.0) {
    std::uniform_real_distribution<value_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal sample.
  [[nodiscard]] value_t normal(value_t mean = 0.0, value_t stddev = 1.0) {
    std::normal_distribution<value_t> dist(mean, stddev);
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<index_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (partial
  /// Fisher-Yates; O(n) memory, O(n) time).
  [[nodiscard]] std::vector<index_t> sample_without_replacement(index_t n,
                                                                index_t k);

  /// Derive an independent child seed (for per-run / per-thread streams).
  [[nodiscard]] std::uint64_t fork_seed() { return engine_(); }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bars

#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

/// \file lanczos.hpp
/// Lanczos tridiagonalization with full reorthogonalization for extremal
/// eigenvalues of symmetric matrices. Feeds the condition-number columns
/// of the paper's Table 1 and the tau scaling of Section 4.2.

namespace bars {

struct LanczosOptions {
  index_t max_steps = 200;   ///< Krylov dimension cap
  value_t tol = 1e-10;       ///< relative change in extremal Ritz values
  std::uint64_t seed = 7;    ///< start-vector seed
};

struct LanczosResult {
  value_t lambda_min = 0.0;
  value_t lambda_max = 0.0;
  index_t steps = 0;
  bool converged = false;
};

/// Extremal eigenvalues of a symmetric matrix `a` via Lanczos with full
/// reorthogonalization. Note: lambda_min from plain Lanczos is only an
/// upper bound for very ill-conditioned matrices — condition.hpp refines
/// it with inverse iteration.
[[nodiscard]] LanczosResult lanczos_extremal(const Csr& a,
                                             const LanczosOptions& opts = {});

/// Eigenvalues of a symmetric tridiagonal matrix (diag alpha, off-diag
/// beta) by bisection with Sturm sequence counts. Returns all eigenvalues
/// sorted ascending. Exposed for testing.
[[nodiscard]] std::vector<value_t> tridiag_eigenvalues(
    const std::vector<value_t>& alpha, const std::vector<value_t>& beta,
    value_t tol = 1e-13);

}  // namespace bars

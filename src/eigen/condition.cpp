#include "eigen/condition.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "sparse/vector_ops.hpp"
#include "stats/rng.hpp"

namespace bars {

namespace {

/// Minimal unpreconditioned CG used only inside inverse iteration.
/// (The instrumented user-facing CG lives in core/cg.hpp; this copy
/// keeps the eigen module independent of the solver layer.)
bool inner_cg(const Csr& a, std::span<const value_t> b, std::span<value_t> x,
              index_t max_iters, value_t tol) {
  const std::size_t n = b.size();
  Vector r(n), p(n), ap(n);
  a.residual(b, x, r);
  p.assign(r.begin(), r.end());
  value_t rr = dot(r, r);
  const value_t target = tol * tol * dot(b, b);
  for (index_t it = 0; it < max_iters; ++it) {
    if (rr <= target) return true;
    a.spmv(p, ap);
    const value_t pap = dot(p, ap);
    if (pap <= 0.0) return false;  // not SPD (or breakdown)
    const value_t alpha = rr / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const value_t rr_next = dot(r, r);
    xpby(r, rr_next / rr, p);
    rr = rr_next;
  }
  return rr <= target;
}

/// One Rayleigh quotient x^T A x / x^T x.
value_t rayleigh(const Csr& a, const Vector& x) {
  Vector ax(x.size());
  a.spmv(x, ax);
  return dot(x, ax) / dot(x, x);
}

}  // namespace

ConditionEstimate spd_condition_number(const Csr& a,
                                       const ConditionOptions& opts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("spd_condition_number: not square");
  }
  ConditionEstimate out;
  const LanczosResult lz = lanczos_extremal(a, opts.lanczos);
  out.lambda_max = lz.lambda_max;
  out.lambda_min = lz.lambda_min;
  out.converged = lz.converged;

  // Refine lambda_min by inverse power iteration: Lanczos systematically
  // overestimates the smallest eigenvalue of ill-conditioned matrices.
  Rng rng(opts.lanczos.seed + 1);
  Vector x(static_cast<std::size_t>(a.rows()));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  scale(1.0 / norm2(x), x);
  value_t prev = out.lambda_min;
  for (index_t it = 0; it < opts.inverse_iters; ++it) {
    Vector y(x.size(), 0.0);
    if (!inner_cg(a, x, y, opts.cg_max_iters, opts.cg_tol)) break;
    const value_t ny = norm2(y);
    if (ny == 0.0) break;
    scale(1.0 / ny, y);
    x = std::move(y);
    const value_t mu = rayleigh(a, x);
    if (std::abs(mu - prev) <= 1e-8 * std::abs(mu)) {
      prev = mu;
      break;
    }
    prev = mu;
  }
  if (prev > 0.0) out.lambda_min = std::min(out.lambda_min, prev);
  out.condition = out.lambda_min > 0.0
                      ? out.lambda_max / out.lambda_min
                      : std::numeric_limits<value_t>::infinity();
  return out;
}

Csr symmetric_diagonal_scaling(const Csr& a) {
  const Vector d = a.diagonal();
  for (auto v : d) {
    if (v <= 0.0) {
      throw std::invalid_argument(
          "symmetric_diagonal_scaling: non-positive diagonal");
    }
  }
  Coo coo(a.rows(), a.cols());
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(i, cols[k],
              vals[k] / std::sqrt(d[i] * d[cols[k]]));
    }
  }
  return Csr::from_coo(coo);
}

ConditionEstimate jacobi_scaled_condition_number(const Csr& a,
                                                 const ConditionOptions& opts) {
  return spd_condition_number(symmetric_diagonal_scaling(a), opts);
}

value_t optimal_jacobi_tau(const Csr& a, const ConditionOptions& opts) {
  const ConditionEstimate est = jacobi_scaled_condition_number(a, opts);
  const value_t sum = est.lambda_min + est.lambda_max;
  if (sum <= 0.0) {
    throw std::runtime_error("optimal_jacobi_tau: non-positive spectrum");
  }
  return 2.0 / sum;
}

}  // namespace bars

#include "eigen/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sparse/vector_ops.hpp"
#include "stats/rng.hpp"

namespace bars {

namespace {

/// Number of eigenvalues of the tridiagonal (alpha, beta) strictly less
/// than x, via the Sturm sequence of leading principal minors.
index_t sturm_count(const std::vector<value_t>& alpha,
                    const std::vector<value_t>& beta, value_t x) {
  index_t count = 0;
  value_t d = 1.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    const value_t beta2 =
        i == 0 ? 0.0 : beta[i - 1] * beta[i - 1];
    d = alpha[i] - x - beta2 / (d == 0.0 ? 1e-300 : d);
    if (d < 0.0) ++count;
  }
  return count;
}

}  // namespace

std::vector<value_t> tridiag_eigenvalues(const std::vector<value_t>& alpha,
                                         const std::vector<value_t>& beta,
                                         value_t tol) {
  const std::size_t n = alpha.size();
  std::vector<value_t> eig(n);
  if (n == 0) return eig;
  // Gershgorin bounds for the tridiagonal matrix.
  value_t lo = std::numeric_limits<value_t>::infinity();
  value_t hi = -std::numeric_limits<value_t>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    value_t r = 0.0;
    if (i > 0) r += std::abs(beta[i - 1]);
    if (i + 1 < n) r += std::abs(beta[i]);
    lo = std::min(lo, alpha[i] - r);
    hi = std::max(hi, alpha[i] + r);
  }
  const value_t span = std::max(hi - lo, value_t{1e-300});
  for (std::size_t k = 0; k < n; ++k) {
    value_t a = lo, b = hi;
    // Find the (k+1)-th smallest eigenvalue by bisection on the Sturm
    // count.
    while (b - a > tol * span) {
      const value_t mid = 0.5 * (a + b);
      if (sturm_count(alpha, beta, mid) > static_cast<index_t>(k)) {
        b = mid;
      } else {
        a = mid;
      }
    }
    eig[k] = 0.5 * (a + b);
  }
  return eig;
}

LanczosResult lanczos_extremal(const Csr& a, const LanczosOptions& opts) {
  const index_t n = a.rows();
  LanczosResult res;
  if (n == 0) {
    res.converged = true;
    return res;
  }
  const index_t m = std::min<index_t>(opts.max_steps, n);

  Rng rng(opts.seed);
  std::vector<Vector> v;  // orthonormal Lanczos basis (full reorth.)
  v.reserve(static_cast<std::size_t>(m) + 1);
  Vector v0(static_cast<std::size_t>(n));
  for (auto& x : v0) x = rng.uniform(-1.0, 1.0);
  scale(1.0 / norm2(v0), v0);
  v.push_back(std::move(v0));

  std::vector<value_t> alpha, beta;
  Vector w(static_cast<std::size_t>(n));
  value_t prev_min = 0.0, prev_max = 0.0;

  for (index_t j = 0; j < m; ++j) {
    a.spmv(v.back(), w);
    const value_t aj = dot(w, v.back());
    alpha.push_back(aj);
    axpy(-aj, v.back(), w);
    if (j > 0) axpy(-beta.back(), v[v.size() - 2], w);
    // Full reorthogonalization (twice is enough).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& q : v) axpy(-dot(w, q), q, w);
    }
    const value_t bj = norm2(w);
    res.steps = j + 1;

    const auto eig = tridiag_eigenvalues(alpha, beta);
    res.lambda_min = eig.front();
    res.lambda_max = eig.back();
    const value_t scale_ref =
        std::max(std::abs(res.lambda_max), value_t{1e-300});
    if (j > 2 && std::abs(res.lambda_min - prev_min) <= opts.tol * scale_ref &&
        std::abs(res.lambda_max - prev_max) <= opts.tol * scale_ref) {
      res.converged = true;
      break;
    }
    prev_min = res.lambda_min;
    prev_max = res.lambda_max;

    if (bj <= 1e-14 * scale_ref) {
      // Invariant subspace found: the Ritz values are exact.
      res.converged = true;
      break;
    }
    beta.push_back(bj);
    Vector next = w;
    scale(1.0 / bj, next);
    v.push_back(std::move(next));
  }
  return res;
}

}  // namespace bars

#pragma once

#include "eigen/lanczos.hpp"
#include "sparse/csr.hpp"

/// \file condition.hpp
/// Condition-number estimation for SPD matrices, reproducing the
/// cond(A) and cond(D^{-1}A) columns of the paper's Table 1, plus the
/// optimal Jacobi damping tau = 2 / (lambda_1 + lambda_n) that
/// Section 4.2 prescribes for rho(B) > 1 systems.

namespace bars {

struct ConditionEstimate {
  value_t lambda_min = 0.0;
  value_t lambda_max = 0.0;
  value_t condition = 0.0;  ///< lambda_max / lambda_min
  bool converged = false;
};

struct ConditionOptions {
  LanczosOptions lanczos{};
  index_t inverse_iters = 10;     ///< inverse-iteration refinements
  index_t cg_max_iters = 20000;   ///< inner CG cap per inverse step
  value_t cg_tol = 1e-10;         ///< inner CG relative residual
};

/// 2-norm condition number of an SPD matrix: lambda_max via Lanczos,
/// lambda_min via Lanczos then refined with inverse power iteration
/// (inner solves by unpreconditioned CG).
[[nodiscard]] ConditionEstimate spd_condition_number(
    const Csr& a, const ConditionOptions& opts = {});

/// Symmetrically scaled matrix D^{-1/2} A D^{-1/2} (similar to D^{-1}A)
/// so SPD machinery applies to the Jacobi-preconditioned spectrum.
/// Requires a positive diagonal.
[[nodiscard]] Csr symmetric_diagonal_scaling(const Csr& a);

/// cond(D^{-1}A) computed on the symmetric scaling.
[[nodiscard]] ConditionEstimate jacobi_scaled_condition_number(
    const Csr& a, const ConditionOptions& opts = {});

/// tau = 2 / (lambda_1 + lambda_n) of D^{-1}A — the damping factor the
/// paper suggests to restore convergence when rho(B) > 1 (Section 4.2).
[[nodiscard]] value_t optimal_jacobi_tau(const Csr& a,
                                         const ConditionOptions& opts = {});

}  // namespace bars

#include "eigen/two_stage.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/vector_ops.hpp"
#include "stats/rng.hpp"

namespace bars {

Dense two_stage_iteration_matrix(const Csr& a, const RowPartition& partition,
                                 index_t local_iters) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("two_stage_iteration_matrix: not square");
  }
  if (partition.total_rows() != a.rows()) {
    throw std::invalid_argument(
        "two_stage_iteration_matrix: partition mismatch");
  }
  if (local_iters <= 0) {
    throw std::invalid_argument(
        "two_stage_iteration_matrix: local_iters must be > 0");
  }
  const index_t n = a.rows();

  // Assemble P = blockdiag((I - L_b^k) A_b^{-1}) block by block.
  Dense p(n, n);
  for (index_t bi = 0; bi < partition.num_blocks(); ++bi) {
    const RowBlock blk = partition.block(bi);
    const index_t m = blk.size();

    Dense ab(m, m);
    for (index_t i = 0; i < m; ++i) {
      const auto cols = a.row_cols(blk.begin + i);
      const auto vals = a.row_vals(blk.begin + i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t j = cols[k];
        if (j >= blk.begin && j < blk.end) ab(i, j - blk.begin) = vals[k];
      }
    }
    // L = I - D^{-1} A_b.
    Dense l(m, m);
    for (index_t i = 0; i < m; ++i) {
      const value_t d = ab(i, i);
      if (d == 0.0) {
        throw std::invalid_argument(
            "two_stage_iteration_matrix: zero block diagonal");
      }
      for (index_t j = 0; j < m; ++j) {
        l(i, j) = (i == j ? 1.0 : 0.0) - ab(i, j) / d;
      }
    }
    // L^k by repeated multiplication.
    Dense lk = Dense::identity(m);
    for (index_t s = 0; s < local_iters; ++s) {
      Dense next(m, m);
      for (index_t i = 0; i < m; ++i) {
        for (index_t j = 0; j < m; ++j) {
          value_t acc = 0.0;
          for (index_t t = 0; t < m; ++t) acc += lk(i, t) * l(t, j);
          next(i, j) = acc;
        }
      }
      lk = std::move(next);
    }
    // P_b = (I - L^k) A_b^{-1}: solve A_b^T y = row of (I - L^k).
    // Equivalently compute columns of A_b^{-1} and multiply.
    Dense ab_inv(m, m);
    for (index_t j = 0; j < m; ++j) {
      Vector e(static_cast<std::size_t>(m), 0.0);
      e[j] = 1.0;
      const Vector col = ab.solve(e);
      for (index_t i = 0; i < m; ++i) ab_inv(i, j) = col[i];
    }
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < m; ++j) {
        value_t acc = 0.0;
        for (index_t t = 0; t < m; ++t) {
          const value_t ilk = (i == t ? 1.0 : 0.0) - lk(i, t);
          acc += ilk * ab_inv(t, j);
        }
        p(blk.begin + i, blk.begin + j) = acc;
      }
    }
  }

  // T = I - P A.
  Dense t(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      value_t acc = i == j ? 1.0 : 0.0;
      // (P A)(i, j) = sum_t P(i, t) A(t, j) — use A's sparsity by
      // iterating rows of A: acc -= sum over rows t with A(t, j) != 0.
      t(i, j) = acc;
    }
  }
  for (index_t trow = 0; trow < n; ++trow) {
    const auto cols = a.row_cols(trow);
    const auto vals = a.row_vals(trow);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      const value_t av = vals[k];
      for (index_t i = 0; i < n; ++i) {
        const value_t pv = p(i, trow);
        if (pv != 0.0) t(i, j) -= pv * av;
      }
    }
  }
  return t;
}

value_t two_stage_spectral_radius(const Csr& a,
                                  const RowPartition& partition,
                                  index_t local_iters, index_t power_iters) {
  const Dense t = two_stage_iteration_matrix(a, partition, local_iters);
  const index_t n = t.rows();
  if (n == 0) return 0.0;
  Rng rng(5);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  scale(1.0 / norm2(x), x);
  Vector y(x.size()), z(x.size());
  value_t lambda = 0.0;
  for (index_t it = 0; it < power_iters; ++it) {
    t.spmv(x, y);
    t.spmv(y, z);
    const value_t nz = norm2(z);
    if (nz == 0.0) return 0.0;
    const value_t next = std::sqrt(nz);
    scale(1.0 / nz, z);
    std::swap(x, z);
    if (it > 2 && std::abs(next - lambda) <= 1e-11 * std::max(next, 1e-300)) {
      return next;
    }
    lambda = next;
  }
  return lambda;
}

}  // namespace bars

#pragma once

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/partition.hpp"

/// \file two_stage.hpp
/// Exact iteration operator of the *synchronous* two-stage block-Jacobi
/// method (the synchronized skeleton of async-(k)):
///
///   x+ = T_k x + c,   T_k = I - P_k A,
///   P_k = blockdiag( (I - L_b^k) A_b^{-1} ),  L_b = I - D_b^{-1} A_b,
///
/// where A_b are the diagonal blocks. rho(T_k) is the convergence rate
/// of block-Jacobi-(k) and the baseline against which the asynchronous
/// chaos penalty is measured. Dense computation — intended for small
/// verification problems, not the solver hot path.

namespace bars {

/// Build T_k explicitly. Throws for non-square A, zero block diagonals,
/// or a partition that does not cover A.
[[nodiscard]] Dense two_stage_iteration_matrix(const Csr& a,
                                               const RowPartition& partition,
                                               index_t local_iters);

/// rho(T_k) via the dense symmetric eigensolver on T_k^T T_k is wrong
/// for non-normal T; instead this uses dense power iteration on T_k
/// (the spectrum is real for the SPD systems in this library).
[[nodiscard]] value_t two_stage_spectral_radius(
    const Csr& a, const RowPartition& partition, index_t local_iters,
    index_t power_iters = 2000);

}  // namespace bars

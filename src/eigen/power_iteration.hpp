#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

/// \file power_iteration.hpp
/// Power-method estimators for spectral radii. Used to verify the
/// convergence prerequisites of the paper: rho(B) < 1 for Jacobi
/// (Section 2.1) and Strikwerda's rho(|B|) < 1 for asynchronous
/// iteration (Section 2.2).

namespace bars {

/// Result of a power-method run.
struct PowerResult {
  value_t value = 0.0;      ///< dominant |eigenvalue| estimate
  index_t iterations = 0;   ///< iterations actually performed
  bool converged = false;   ///< relative change below tol before max_iters
};

struct PowerOptions {
  index_t max_iters = 5000;
  value_t tol = 1e-10;        ///< relative change stopping criterion
  std::uint64_t seed = 42;    ///< start-vector seed
};

/// Estimate the spectral radius rho(A) = max |lambda(A)| by the power
/// method. Correct for matrices with a real dominant eigenvalue (all
/// matrices in this library: B is similar to a symmetric matrix; |B| is
/// nonnegative so Perron-Frobenius applies).
[[nodiscard]] PowerResult spectral_radius(const Csr& a,
                                          const PowerOptions& opts = {});

/// rho(B) for the Jacobi iteration matrix B = I - D^{-1}A of `a`.
[[nodiscard]] PowerResult jacobi_spectral_radius(const Csr& a,
                                                 const PowerOptions& opts = {});

/// rho(|B|): spectral radius of the entrywise absolute value of the
/// Jacobi iteration matrix — the sufficient condition for asynchronous
/// convergence (Strikwerda 1997).
[[nodiscard]] PowerResult async_spectral_radius(const Csr& a,
                                                const PowerOptions& opts = {});

/// Worst-case asymptotic contraction factor (per update round) of an
/// asynchronous iteration whose shift function is bounded by max_shift:
/// the Chazan-Miranker error envelope contracts by rho(|B|) only every
/// (1 + max_shift) rounds, giving rho(|B|)^{1/(1+max_shift)}. Any
/// actual schedule must do at least this well.
[[nodiscard]] value_t async_worst_case_rate(value_t rho_abs,
                                            index_t max_shift);

}  // namespace bars

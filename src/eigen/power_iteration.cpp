#include "eigen/power_iteration.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/vector_ops.hpp"
#include "stats/rng.hpp"

namespace bars {

PowerResult spectral_radius(const Csr& a, const PowerOptions& opts) {
  const index_t n = a.rows();
  PowerResult res;
  if (n == 0) {
    res.converged = true;
    return res;
  }
  Rng rng(opts.seed);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const value_t nx = norm2(x);
  scale(1.0 / nx, x);

  Vector y(static_cast<std::size_t>(n));
  Vector z(static_cast<std::size_t>(n));
  value_t lambda = 0.0;
  // Iterate with A^2 per step: iteration matrices often carry +-lambda
  // eigenvalue pairs (e.g. anti-diagonal couplings), which make plain
  // power iteration oscillate, especially after a non-normal similarity
  // transform. A^2 has the single dominant eigenvalue lambda^2 >= 0 for
  // every real-spectrum matrix in this library.
  for (index_t it = 1; it <= opts.max_iters; ++it) {
    a.spmv(x, y);
    a.spmv(y, z);
    const value_t nz = norm2(z);
    res.iterations = it;
    if (nz == 0.0) {
      // x is in the null space of A^2: restart with a fresh random
      // vector to avoid a false zero (A may still be nilpotent-ish; a
      // couple of restarts make that vanishingly unlikely).
      if (it > 3) {
        res.value = 0.0;
        res.converged = true;
        return res;
      }
      for (auto& v : x) v = rng.uniform(-1.0, 1.0);
      scale(1.0 / norm2(x), x);
      continue;
    }
    const value_t next = std::sqrt(nz);  // sqrt(||A^2 x||), ||x|| = 1
    scale(1.0 / nz, z);
    std::swap(x, z);
    if (it > 1 && std::abs(next - lambda) <=
                      opts.tol * std::max(std::abs(next), value_t{1e-300})) {
      lambda = next;
      res.converged = true;
      break;
    }
    lambda = next;
  }
  res.value = lambda;
  return res;
}

PowerResult jacobi_spectral_radius(const Csr& a, const PowerOptions& opts) {
  return spectral_radius(jacobi_iteration_matrix(a), opts);
}

PowerResult async_spectral_radius(const Csr& a, const PowerOptions& opts) {
  return spectral_radius(jacobi_iteration_matrix(a).abs(), opts);
}

value_t async_worst_case_rate(value_t rho_abs, index_t max_shift) {
  if (rho_abs < 0.0 || max_shift < 0) {
    throw std::invalid_argument(
        "async_worst_case_rate: need rho >= 0 and max_shift >= 0");
  }
  return std::pow(rho_abs, 1.0 / static_cast<value_t>(1 + max_shift));
}

}  // namespace bars

#include "sparse/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace bars {

namespace {

/// Undirected adjacency (pattern of A + A^T, diagonal dropped).
std::vector<std::vector<index_t>> symmetric_adjacency(const Csr& a) {
  const index_t n = a.rows();
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j : a.row_cols(i)) {
      if (i == j) continue;
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

}  // namespace

Permutation reverse_cuthill_mckee(const Csr& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("reverse_cuthill_mckee: not square");
  }
  const index_t n = a.rows();
  const auto adj = symmetric_adjacency(a);
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    degree[i] = static_cast<index_t>(adj[i].size());
  }

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  Permutation order;
  order.reserve(static_cast<std::size_t>(n));

  const auto degree_less = [&](index_t x, index_t y) {
    return degree[x] != degree[y] ? degree[x] < degree[y] : x < y;
  };

  for (index_t comp_start = 0; comp_start < n;) {
    // Pick the unvisited vertex of minimum degree as the component seed
    // (a cheap pseudo-peripheral heuristic).
    index_t seed = -1;
    for (index_t i = 0; i < n; ++i) {
      if (!visited[i] && (seed < 0 || degree_less(i, seed))) seed = i;
    }
    if (seed < 0) break;

    std::queue<index_t> bfs;
    bfs.push(seed);
    visited[seed] = true;
    while (!bfs.empty()) {
      const index_t v = bfs.front();
      bfs.pop();
      order.push_back(v);
      std::vector<index_t> next;
      for (index_t w : adj[v]) {
        if (!visited[w]) {
          visited[w] = true;
          next.push_back(w);
        }
      }
      std::sort(next.begin(), next.end(), degree_less);
      for (index_t w : next) bfs.push(w);
    }
    comp_start = static_cast<index_t>(order.size());
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Permutation identity_permutation(index_t n) {
  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  return p;
}

Permutation invert_permutation(const Permutation& p) {
  Permutation q(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    q[static_cast<std::size_t>(p[i])] = static_cast<index_t>(i);
  }
  return q;
}

Csr permute_symmetric(const Csr& a, const Permutation& p) {
  if (a.rows() != a.cols() ||
      p.size() != static_cast<std::size_t>(a.rows())) {
    throw std::invalid_argument("permute_symmetric: size mismatch");
  }
  const Permutation q = invert_permutation(p);
  Coo coo(a.rows(), a.cols());
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(q[i], q[cols[k]], vals[k]);
    }
  }
  return Csr::from_coo(coo);
}

Vector permute_vector(const Vector& v, const Permutation& p) {
  if (v.size() != p.size()) {
    throw std::invalid_argument("permute_vector: size mismatch");
  }
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = v[static_cast<std::size_t>(p[i])];
  }
  return out;
}

bool is_permutation(const Permutation& p) {
  std::vector<bool> seen(p.size(), false);
  for (index_t v : p) {
    if (v < 0 || v >= static_cast<index_t>(p.size()) || seen[v]) {
      return false;
    }
    seen[v] = true;
  }
  return true;
}

}  // namespace bars

#include "sparse/coo.hpp"

#include <algorithm>
#include <stdexcept>

namespace bars {

void Coo::add(index_t row, index_t col, value_t value) {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
    throw std::out_of_range("Coo::add: index out of range");
  }
  entries_.push_back({row, col, value});
}

void Coo::add_symmetric(index_t row, index_t col, value_t value) {
  add(row, col, value);
  if (row != col) add(col, row, value);
}

Coo Coo::sorted(bool keep_zeros) const {
  Coo out(rows_, cols_);
  std::vector<Triplet> e = entries_;
  std::sort(e.begin(), e.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  out.entries_.reserve(e.size());
  for (const auto& t : e) {
    if (!out.entries_.empty() && out.entries_.back().row == t.row &&
        out.entries_.back().col == t.col) {
      out.entries_.back().value += t.value;
    } else {
      out.entries_.push_back(t);
    }
  }
  if (!keep_zeros) {
    std::erase_if(out.entries_,
                  [](const Triplet& t) { return t.value == 0.0; });
  }
  return out;
}

}  // namespace bars

#pragma once

#include <utility>

#include "sparse/csr.hpp"

/// \file properties.hpp
/// Cheap structural/numerical matrix diagnostics used to verify that a
/// matrix meets the convergence prerequisites of Section 2 of the paper
/// (diagonal dominance, Gershgorin bounds, off-block mass).

namespace bars {

/// Result of a diagonal-dominance scan.
struct DiagonalDominance {
  bool weakly_dominant = false;    ///< |a_ii| >= sum_j!=i |a_ij| for all i
  bool strictly_dominant = false;  ///< strict inequality for all i
  /// max over rows of (sum_j!=i |a_ij|) / |a_ii|; < 1 iff strictly
  /// dominant. This also bounds rho(|B|) for the Jacobi iteration matrix.
  value_t max_offdiag_ratio = 0.0;
};

[[nodiscard]] DiagonalDominance diagonal_dominance(const Csr& a);

/// Gershgorin interval [lo, hi] containing all eigenvalues of `a`
/// (meaningful for symmetric matrices).
[[nodiscard]] std::pair<value_t, value_t> gershgorin_interval(const Csr& a);

/// Structural bandwidth: max |i - j| over stored entries.
[[nodiscard]] index_t bandwidth(const Csr& a);

/// Fraction (by absolute value mass) of entries lying outside the
/// diagonal blocks defined by `block_size` — the "off-block part" the
/// paper blames for convergence variation (Section 4.1).
[[nodiscard]] value_t off_block_mass(const Csr& a, index_t block_size);

/// True if every diagonal entry is present and positive.
[[nodiscard]] bool has_positive_diagonal(const Csr& a);

}  // namespace bars

#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"

namespace bars {

Csr Csr::from_coo(const Coo& coo) {
  const Coo canon = coo.sorted(/*keep_zeros=*/true);
  std::vector<index_t> row_ptr(static_cast<std::size_t>(coo.rows()) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<value_t> values;
  col_idx.reserve(canon.entries().size());
  values.reserve(canon.entries().size());
  for (const auto& t : canon.entries()) {
    ++row_ptr[static_cast<std::size_t>(t.row) + 1];
    col_idx.push_back(t.col);
    values.push_back(t.value);
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
  return Csr(coo.rows(), coo.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

Csr::Csr(index_t rows, index_t cols, std::vector<index_t> row_ptr,
         std::vector<index_t> col_idx, std::vector<value_t> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (rows_ < 0 || cols_ < 0) {
    throw std::invalid_argument("Csr: negative dimensions");
  }
  if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1 ||
      row_ptr_.front() != 0 ||
      row_ptr_.back() != static_cast<index_t>(values_.size()) ||
      col_idx_.size() != values_.size()) {
    throw std::invalid_argument("Csr: inconsistent array sizes");
  }
  for (index_t i = 0; i < rows_; ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) {
      throw std::invalid_argument("Csr: row_ptr not monotone");
    }
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] < 0 || col_idx_[k] >= cols_) {
        throw std::invalid_argument("Csr: column index out of range");
      }
      if (k > row_ptr_[i] && col_idx_[k - 1] >= col_idx_[k]) {
        throw std::invalid_argument("Csr: columns not strictly increasing");
      }
    }
  }
}

std::span<const index_t> Csr::row_cols(index_t i) const {
  BARS_DCHECK(i >= 0 && i < rows_) << "row " << i << " of " << rows_;
  return std::span<const index_t>(col_idx_).subspan(
      static_cast<std::size_t>(row_ptr_[i]),
      static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i]));
}

std::span<const value_t> Csr::row_vals(index_t i) const {
  BARS_DCHECK(i >= 0 && i < rows_) << "row " << i << " of " << rows_;
  return std::span<const value_t>(values_).subspan(
      static_cast<std::size_t>(row_ptr_[i]),
      static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i]));
}

value_t Csr::at(index_t i, index_t j) const {
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return row_vals(i)[static_cast<std::size_t>(it - cols.begin())];
}

void Csr::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BARS_DCHECK(static_cast<index_t>(x.size()) == cols_)
      << "spmv x: " << x.size() << " vs cols " << cols_;
  BARS_DCHECK(static_cast<index_t>(y.size()) == rows_)
      << "spmv y: " << y.size() << " vs rows " << rows_;
  for (index_t i = 0; i < rows_; ++i) {
    value_t s = 0.0;
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[i] = s;
  }
}

void Csr::residual(std::span<const value_t> b, std::span<const value_t> x,
                   std::span<value_t> y) const {
  BARS_DCHECK(static_cast<index_t>(b.size()) == rows_)
      << "residual b: " << b.size() << " vs rows " << rows_;
  for (index_t i = 0; i < rows_; ++i) {
    value_t s = b[i];
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s -= values_[k] * x[col_idx_[k]];
    }
    y[i] = s;
  }
}

Vector Csr::diagonal() const {
  Vector d(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < std::min(rows_, cols_); ++i) d[i] = at(i, i);
  return d;
}

bool Csr::is_symmetric(value_t tol) const {
  if (rows_ != cols_) return false;
  value_t amax = 0.0;
  for (auto v : values_) amax = std::max(amax, std::abs(v));
  const value_t bound = tol * amax;
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (std::abs(vals[k] - at(cols[k], i)) > bound) return false;
    }
  }
  return true;
}

Csr Csr::transpose() const {
  Coo coo(cols_, rows_);
  coo.reserve(values_.size());
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(cols[k], i, vals[k]);
    }
  }
  return Csr::from_coo(coo);
}

Csr Csr::abs() const {
  Csr out = *this;
  for (auto& v : out.values_) v = std::abs(v);
  return out;
}

Coo Csr::to_coo() const {
  Coo coo(rows_, cols_);
  coo.reserve(values_.size());
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) coo.add(i, cols[k], vals[k]);
  }
  return coo;
}

namespace {

Csr iteration_matrix_impl(const Csr& a, value_t tau) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("iteration matrix requires a square matrix");
  }
  const Vector d = a.diagonal();
  Coo coo(a.rows(), a.cols());
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows(); ++i) {
    if (d[i] == 0.0) {
      throw std::invalid_argument("iteration matrix: zero diagonal entry");
    }
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const value_t scaled = tau * vals[k] / d[i];
      if (cols[k] == i) {
        const value_t diag = 1.0 - scaled;
        if (diag != 0.0) coo.add(i, i, diag);
      } else if (scaled != 0.0) {
        coo.add(i, cols[k], -scaled);
      }
    }
  }
  return Csr::from_coo(coo);
}

}  // namespace

Csr jacobi_iteration_matrix(const Csr& a) {
  return iteration_matrix_impl(a, 1.0);
}

Csr scaled_jacobi_iteration_matrix(const Csr& a, value_t tau) {
  return iteration_matrix_impl(a, tau);
}

}  // namespace bars

#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

/// \file matrix_market.hpp
/// MatrixMarket (.mtx) reader/writer, so that the real UF Sparse Matrix
/// Collection files the paper uses (Chem97ZtZ, fv1-3, s1rmt3m1,
/// Trefethen_2000/20000) can be loaded verbatim when available. Supports
/// `matrix coordinate real {general|symmetric}` and
/// `matrix coordinate pattern {general|symmetric}` (pattern entries read
/// as 1.0).

namespace bars {

/// Parse a MatrixMarket stream into CSR. Symmetric files are expanded to
/// full storage. Throws std::runtime_error on malformed input.
[[nodiscard]] Csr read_matrix_market(std::istream& in);

/// Convenience overload: open and parse a file.
[[nodiscard]] Csr read_matrix_market_file(const std::string& path);

/// Write `a` as `matrix coordinate real general` with 1-based indices.
void write_matrix_market(std::ostream& out, const Csr& a);

/// Convenience overload: write to a file.
void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace bars

#pragma once

#include <vector>

#include "sparse/types.hpp"

/// \file partition.hpp
/// Row-block partitions: the "subdomains" of Algorithm 1. Each block of
/// contiguous rows is assigned to one (simulated) GPU thread block.

namespace bars {

/// Half-open row range [begin, end) handled by one thread block.
struct RowBlock {
  index_t begin = 0;
  index_t end = 0;
  [[nodiscard]] index_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool contains(index_t i) const noexcept {
    return i >= begin && i < end;
  }
  friend bool operator==(const RowBlock&, const RowBlock&) = default;
};

/// Partition of [0, n) into contiguous blocks.
class RowPartition {
 public:
  RowPartition() = default;

  /// Uniform partition: ceil(n / block_size) blocks of size block_size
  /// (last one possibly smaller). Throws if block_size <= 0 or n < 0.
  static RowPartition uniform(index_t n, index_t block_size);

  /// Split [0, n) into exactly `parts` nearly-equal contiguous blocks.
  static RowPartition balanced(index_t n, index_t parts);

  /// Build from explicit boundaries b_0=0 < b_1 < ... < b_k=n.
  static RowPartition from_boundaries(std::vector<index_t> boundaries);

  [[nodiscard]] index_t num_blocks() const noexcept {
    return static_cast<index_t>(boundaries_.size()) - 1;
  }
  [[nodiscard]] index_t total_rows() const noexcept {
    return boundaries_.empty() ? 0 : boundaries_.back();
  }
  [[nodiscard]] RowBlock block(index_t b) const;
  /// Which block owns row i. O(log num_blocks).
  [[nodiscard]] index_t block_of(index_t i) const;

  /// Dense row -> owning-block lookup table (size total_rows()):
  /// table[i] == block_of(i) with O(1) access. Built in O(n); callers
  /// on a hot path (executor halo analysis, incremental residuals)
  /// build it once instead of calling block_of per row.
  [[nodiscard]] std::vector<index_t> owner_table() const;

  /// Group consecutive blocks into `devices` nearly-equal sets: returns,
  /// for each device, the half-open range of block ids it owns. Used for
  /// the multi-GPU decomposition (Section 3.4).
  [[nodiscard]] std::vector<std::pair<index_t, index_t>> device_split(
      index_t devices) const;

 private:
  std::vector<index_t> boundaries_{0};
};

}  // namespace bars

#include "sparse/properties.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace bars {

DiagonalDominance diagonal_dominance(const Csr& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("diagonal_dominance: not square");
  }
  DiagonalDominance out;
  out.weakly_dominant = true;
  out.strictly_dominant = true;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    value_t diag = 0.0, off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        diag = std::abs(vals[k]);
      } else {
        off += std::abs(vals[k]);
      }
    }
    if (diag == 0.0) {
      out.weakly_dominant = out.strictly_dominant = false;
      out.max_offdiag_ratio = std::numeric_limits<value_t>::infinity();
      continue;
    }
    const value_t ratio = off / diag;
    out.max_offdiag_ratio = std::max(out.max_offdiag_ratio, ratio);
    if (ratio > 1.0) out.weakly_dominant = false;
    if (ratio >= 1.0) out.strictly_dominant = false;
  }
  return out;
}

std::pair<value_t, value_t> gershgorin_interval(const Csr& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("gershgorin_interval: not square");
  }
  value_t lo = std::numeric_limits<value_t>::infinity();
  value_t hi = -std::numeric_limits<value_t>::infinity();
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    value_t diag = 0.0, radius = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        diag = vals[k];
      } else {
        radius += std::abs(vals[k]);
      }
    }
    lo = std::min(lo, diag - radius);
    hi = std::max(hi, diag + radius);
  }
  return {lo, hi};
}

index_t bandwidth(const Csr& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j : a.row_cols(i)) bw = std::max(bw, std::abs(i - j));
  }
  return bw;
}

value_t off_block_mass(const Csr& a, index_t block_size) {
  if (block_size <= 0) {
    throw std::invalid_argument("off_block_mass: block_size must be positive");
  }
  value_t total = 0.0, off = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    const index_t block = i / block_size;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const value_t m = std::abs(vals[k]);
      total += m;
      if (cols[k] / block_size != block) off += m;
    }
  }
  return total == 0.0 ? 0.0 : off / total;
}

bool has_positive_diagonal(const Csr& a) {
  if (a.rows() != a.cols()) return false;
  for (index_t i = 0; i < a.rows(); ++i) {
    if (a.at(i, i) <= 0.0) return false;
  }
  return true;
}

}  // namespace bars

#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bars {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("MatrixMarket: empty stream");
  }
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    throw std::runtime_error("MatrixMarket: missing banner");
  }
  object = to_lower(object);
  format = to_lower(format);
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (object != "matrix" || format != "coordinate") {
    throw std::runtime_error("MatrixMarket: only coordinate matrices supported");
  }
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    throw std::runtime_error("MatrixMarket: unsupported field type: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    throw std::runtime_error("MatrixMarket: unsupported symmetry: " + symmetry);
  }

  // Skip comments and blank lines.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  index_t rows = 0, cols = 0, nnz = 0;
  if (!(dims >> rows >> cols >> nnz)) {
    throw std::runtime_error("MatrixMarket: malformed size line");
  }

  Coo coo(rows, cols);
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  for (index_t k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("MatrixMarket: unexpected end of entries");
    }
    if (line.empty()) {
      --k;
      continue;
    }
    std::istringstream es(line);
    index_t i = 0, j = 0;
    value_t v = 1.0;
    if (!(es >> i >> j)) {
      throw std::runtime_error("MatrixMarket: malformed entry line");
    }
    if (!pattern && !(es >> v)) {
      throw std::runtime_error("MatrixMarket: missing value");
    }
    --i;  // 1-based -> 0-based
    --j;
    if (symmetric) {
      coo.add_symmetric(i, j, v);
    } else {
      coo.add(i, j, v);
    }
  }
  return Csr::from_coo(coo);
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << i + 1 << ' ' << cols[k] + 1 << ' ' << vals[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_matrix_market(out, a);
}

}  // namespace bars

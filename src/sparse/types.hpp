#pragma once

#include <cstdint>
#include <vector>

/// \file types.hpp
/// Fundamental index/value types shared by all BARS modules.

namespace bars {

/// Row/column index type. 32-bit is enough for the paper's matrices
/// (n <= 20,000) but we use a signed 64-bit type so intermediate
/// arithmetic (e.g. nnz offsets, n*n products in generators) cannot
/// overflow.
using index_t = std::int64_t;

/// Floating point value type used throughout the library.
using value_t = double;

/// Dense vector of solution/right-hand-side values.
using Vector = std::vector<value_t>;

}  // namespace bars

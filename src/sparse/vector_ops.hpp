#pragma once

#include <span>

#include "sparse/types.hpp"

/// \file vector_ops.hpp
/// BLAS-1 style kernels on dense vectors. All functions are free
/// functions over std::span so they compose with any contiguous storage.

namespace bars {

/// y <- alpha * x + y. Sizes must match.
void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y);

/// y <- x + beta * y. Sizes must match.
void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y);

/// x <- alpha * x.
void scale(value_t alpha, std::span<value_t> x);

/// Euclidean inner product <x, y>.
[[nodiscard]] value_t dot(std::span<const value_t> x,
                          std::span<const value_t> y);

/// l2 norm ||x||_2.
[[nodiscard]] value_t norm2(std::span<const value_t> x);

/// Max norm ||x||_inf.
[[nodiscard]] value_t norm_inf(std::span<const value_t> x);

/// out <- a - b (element-wise difference).
void subtract(std::span<const value_t> a, std::span<const value_t> b,
              std::span<value_t> out);

/// Fill x with a constant.
void fill(std::span<value_t> x, value_t v);

}  // namespace bars

#include "sparse/vector_ops.hpp"

#include <cmath>

#include "common/check.hpp"

namespace bars {

void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  BARS_DCHECK(x.size() == y.size())
      << "axpy: " << x.size() << " vs " << y.size();
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  BARS_DCHECK(x.size() == y.size())
      << "xpby: " << x.size() << " vs " << y.size();
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

void scale(value_t alpha, std::span<value_t> x) {
  for (auto& v : x) v *= alpha;
}

value_t dot(std::span<const value_t> x, std::span<const value_t> y) {
  BARS_DCHECK(x.size() == y.size())
      << "dot: " << x.size() << " vs " << y.size();
  value_t s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

value_t norm2(std::span<const value_t> x) { return std::sqrt(dot(x, x)); }

value_t norm_inf(std::span<const value_t> x) {
  value_t m = 0.0;
  for (auto v : x) m = std::max(m, std::abs(v));
  return m;
}

void subtract(std::span<const value_t> a, std::span<const value_t> b,
              std::span<value_t> out) {
  BARS_DCHECK(a.size() == b.size() && a.size() == out.size())
      << "subtract: " << a.size() << ", " << b.size() << ", " << out.size();
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

void fill(std::span<value_t> x, value_t v) {
  for (auto& e : x) e = v;
}

}  // namespace bars

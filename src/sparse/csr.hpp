#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/types.hpp"

/// \file csr.hpp
/// Compressed-sparse-row matrix: the working format for all solvers.

namespace bars {

/// Immutable-ish CSR sparse matrix.
///
/// Invariants (checked on construction from COO):
///   - row_ptr has rows()+1 monotone entries, row_ptr[0] == 0,
///     row_ptr[rows()] == nnz();
///   - column indices within each row are strictly increasing.
class Csr {
 public:
  Csr() = default;

  /// Build from (already arbitrary-order) COO; duplicates are summed.
  static Csr from_coo(const Coo& coo);

  /// Build directly from raw arrays (validated).
  Csr(index_t rows, index_t cols, std::vector<index_t> row_ptr,
      std::vector<index_t> col_idx, std::vector<value_t> values);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values_.size());
  }

  [[nodiscard]] std::span<const index_t> row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const index_t> col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] std::span<const value_t> values() const noexcept {
    return values_;
  }

  /// Column indices of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const;
  /// Values of row i.
  [[nodiscard]] std::span<const value_t> row_vals(index_t i) const;

  /// Entry (i, j); 0 if not stored. O(log nnz(row i)).
  [[nodiscard]] value_t at(index_t i, index_t j) const;

  /// y <- A * x.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// y <- b - A * x (residual kernel).
  void residual(std::span<const value_t> b, std::span<const value_t> x,
                std::span<value_t> y) const;

  /// Diagonal entries as a dense vector; missing diagonals are 0.
  [[nodiscard]] Vector diagonal() const;

  /// Structural + numeric symmetry check (|a_ij - a_ji| <= tol * max|a|).
  [[nodiscard]] bool is_symmetric(value_t tol = 0.0) const;

  /// Transposed copy.
  [[nodiscard]] Csr transpose() const;

  /// Copy with every value replaced by its absolute value (the |B|
  /// matrix of the Strikwerda convergence condition).
  [[nodiscard]] Csr abs() const;

  /// Back-conversion for round-trip tests and MatrixMarket output.
  [[nodiscard]] Coo to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
};

/// Jacobi iteration matrix B = I - D^{-1} A as an explicit CSR matrix.
/// Rows with zero diagonal throw std::invalid_argument.
[[nodiscard]] Csr jacobi_iteration_matrix(const Csr& a);

/// Weighted iteration matrix B = I - tau * D^{-1} A.
[[nodiscard]] Csr scaled_jacobi_iteration_matrix(const Csr& a, value_t tau);

}  // namespace bars

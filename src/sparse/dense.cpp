#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"

namespace bars {

Dense Dense::from_csr(const Csr& a) {
  Dense d(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) d(i, cols[k]) = vals[k];
  }
  return d;
}

Dense Dense::identity(index_t n) {
  Dense d(n, n);
  for (index_t i = 0; i < n; ++i) d(i, i) = 1.0;
  return d;
}

void Dense::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BARS_DCHECK(static_cast<index_t>(x.size()) == cols_)
      << "spmv x: " << x.size() << " vs cols " << cols_;
  BARS_DCHECK(static_cast<index_t>(y.size()) == rows_)
      << "spmv y: " << y.size() << " vs rows " << rows_;
  for (index_t i = 0; i < rows_; ++i) {
    value_t s = 0.0;
    for (index_t j = 0; j < cols_; ++j) s += (*this)(i, j) * x[j];
    y[i] = s;
  }
}

Vector Dense::solve(std::span<const value_t> b) const {
  if (rows_ != cols_) throw std::invalid_argument("Dense::solve: not square");
  if (static_cast<index_t>(b.size()) != rows_) {
    throw std::invalid_argument("Dense::solve: size mismatch");
  }
  const index_t n = rows_;
  Dense lu = *this;
  Vector x(b.begin(), b.end());
  std::vector<index_t> piv(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) piv[i] = i;

  for (index_t k = 0; k < n; ++k) {
    index_t p = k;
    for (index_t i = k + 1; i < n; ++i) {
      if (std::abs(lu(i, k)) > std::abs(lu(p, k))) p = i;
    }
    if (lu(p, k) == 0.0) throw std::runtime_error("Dense::solve: singular");
    if (p != k) {
      for (index_t j = 0; j < n; ++j) std::swap(lu(p, j), lu(k, j));
      std::swap(x[p], x[k]);
    }
    for (index_t i = k + 1; i < n; ++i) {
      const value_t m = lu(i, k) / lu(k, k);
      lu(i, k) = m;
      for (index_t j = k + 1; j < n; ++j) lu(i, j) -= m * lu(k, j);
      x[i] -= m * x[k];
    }
  }
  for (index_t i = n - 1; i >= 0; --i) {
    value_t s = x[i];
    for (index_t j = i + 1; j < n; ++j) s -= lu(i, j) * x[j];
    x[i] = s / lu(i, i);
  }
  return x;
}

std::vector<value_t> Dense::symmetric_eigenvalues(value_t tol) const {
  if (rows_ != cols_) {
    throw std::invalid_argument("symmetric_eigenvalues: not square");
  }
  const index_t n = rows_;
  Dense a = *this;
  // Cyclic Jacobi eigenvalue iteration: annihilate off-diagonal entries
  // with Givens rotations until the off-diagonal Frobenius mass is below
  // tol * ||A||_F.
  const value_t anorm = a.frobenius_norm();
  const value_t threshold = tol * std::max(anorm, value_t{1e-300});
  for (int sweep = 0; sweep < 100; ++sweep) {
    value_t off = 0.0;
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) off += 2.0 * a(i, j) * a(i, j);
    }
    if (std::sqrt(off) <= threshold) break;
    for (index_t p = 0; p < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) <= threshold / static_cast<value_t>(n * n)) {
          continue;
        }
        const value_t theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const value_t t = (theta >= 0.0 ? 1.0 : -1.0) /
                          (std::abs(theta) +
                           std::sqrt(theta * theta + 1.0));
        const value_t c = 1.0 / std::sqrt(t * t + 1.0);
        const value_t s = t * c;
        for (index_t k = 0; k < n; ++k) {
          const value_t akp = a(k, p);
          const value_t akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (index_t k = 0; k < n; ++k) {
          const value_t apk = a(p, k);
          const value_t aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<value_t> eig(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) eig[i] = a(i, i);
  std::sort(eig.begin(), eig.end());
  return eig;
}

value_t Dense::frobenius_norm() const {
  value_t s = 0.0;
  for (auto v : data_) s += v * v;
  return std::sqrt(s);
}

}  // namespace bars

#pragma once

#include <vector>

#include "sparse/csr.hpp"

/// \file ell.hpp
/// ELLPACK sparse format: every row padded to the same length, column
/// indices and values stored column-major. This is the layout the
/// Fermi-era GPU SpMV kernels (and the paper's MAGMA lineage) use for
/// coalesced memory access; here it serves the CPU reference kernels
/// and the cost model's bytes-per-iteration accounting.

namespace bars {

/// ELLPACK matrix with row-major logical shape, column-major storage.
class Ell {
 public:
  Ell() = default;

  /// Convert from CSR. Throws if any row exceeds `max_row_nnz` when the
  /// cap is non-zero (guards against pathological padding blow-up).
  static Ell from_csr(const Csr& a, index_t max_row_nnz = 0);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  /// Padded row width.
  [[nodiscard]] index_t row_width() const noexcept { return width_; }
  /// Stored entries including padding.
  [[nodiscard]] index_t padded_size() const noexcept {
    return rows_ * width_;
  }
  /// Actual nonzeros (without padding).
  [[nodiscard]] index_t nnz() const noexcept { return nnz_; }
  /// Padding overhead ratio: padded_size / max(nnz, 1).
  [[nodiscard]] value_t padding_ratio() const noexcept;

  /// y <- A x.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Back-conversion (drops padding).
  [[nodiscard]] Csr to_csr() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t width_ = 0;
  index_t nnz_ = 0;
  // Column-major: entry k of row i lives at [k * rows_ + i]. Padding
  // uses column index -1 and value 0.
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
};

}  // namespace bars

#include "sparse/ell.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace bars {

Ell Ell::from_csr(const Csr& a, index_t max_row_nnz) {
  Ell e;
  e.rows_ = a.rows();
  e.cols_ = a.cols();
  e.nnz_ = a.nnz();
  index_t width = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    width = std::max(width, static_cast<index_t>(a.row_cols(i).size()));
  }
  if (max_row_nnz > 0 && width > max_row_nnz) {
    throw std::invalid_argument("Ell::from_csr: row width exceeds cap");
  }
  e.width_ = width;
  e.col_idx_.assign(static_cast<std::size_t>(e.rows_ * width), -1);
  e.values_.assign(static_cast<std::size_t>(e.rows_ * width), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto slot = static_cast<std::size_t>(
          static_cast<index_t>(k) * e.rows_ + i);
      e.col_idx_[slot] = cols[k];
      e.values_[slot] = vals[k];
    }
  }
  return e;
}

value_t Ell::padding_ratio() const noexcept {
  return nnz_ > 0 ? static_cast<value_t>(padded_size()) /
                        static_cast<value_t>(nnz_)
                  : 0.0;
}

void Ell::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BARS_DCHECK(static_cast<index_t>(x.size()) == cols_)
      << "spmv x: " << x.size() << " vs cols " << cols_;
  BARS_DCHECK(static_cast<index_t>(y.size()) == rows_)
      << "spmv y: " << y.size() << " vs rows " << rows_;
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t k = 0; k < width_; ++k) {
    const std::size_t base = static_cast<std::size_t>(k * rows_);
    for (index_t i = 0; i < rows_; ++i) {
      const index_t j = col_idx_[base + i];
      if (j >= 0) y[i] += values_[base + i] * x[j];
    }
  }
}

Csr Ell::to_csr() const {
  Coo coo(rows_, cols_);
  coo.reserve(static_cast<std::size_t>(nnz_));
  for (index_t k = 0; k < width_; ++k) {
    const std::size_t base = static_cast<std::size_t>(k * rows_);
    for (index_t i = 0; i < rows_; ++i) {
      const index_t j = col_idx_[base + i];
      if (j >= 0) coo.add(i, j, values_[base + i]);
    }
  }
  return Csr::from_coo(coo);
}

}  // namespace bars

#pragma once

#include <vector>

#include "sparse/types.hpp"

/// \file coo.hpp
/// Coordinate-format sparse matrix used as the assembly format for
/// generators and MatrixMarket I/O. Duplicate entries are summed on
/// conversion to CSR.

namespace bars {

/// One (row, col, value) triplet.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  value_t value = 0.0;
};

/// Coordinate-format sparse matrix builder.
///
/// Entries may be pushed in any order, with duplicates; `sorted()`
/// canonicalizes (row-major order, duplicates summed, explicit zeros
/// dropped unless `keep_zeros`).
class Coo {
 public:
  Coo() = default;
  Coo(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  /// Add a single entry. Indices must lie in [0, rows) x [0, cols).
  void add(index_t row, index_t col, value_t value);

  /// Add `value` at (row, col) and (col, row). For row == col the entry
  /// is added once.
  void add_symmetric(index_t row, index_t col, value_t value);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(entries_.size());
  }
  [[nodiscard]] const std::vector<Triplet>& entries() const noexcept {
    return entries_;
  }

  /// Returns a canonical copy: entries sorted row-major, duplicates
  /// summed, zero-valued entries dropped unless keep_zeros is true.
  [[nodiscard]] Coo sorted(bool keep_zeros = false) const;

  /// Reserve triplet storage.
  void reserve(std::size_t n) { entries_.reserve(n); }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace bars

#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

/// \file dense.hpp
/// Small dense matrix with direct factorizations. Used as the reference
/// oracle in tests (exact solves, exact spectra for small systems) — not
/// on the hot path of any solver.

namespace bars {

/// Row-major dense matrix.
class Dense {
 public:
  Dense() = default;
  Dense(index_t rows, index_t cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {}

  static Dense from_csr(const Csr& a);
  static Dense identity(index_t n);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }

  [[nodiscard]] value_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  [[nodiscard]] value_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Solve A x = b by partial-pivoted LU. Throws on (numerical)
  /// singularity.
  [[nodiscard]] Vector solve(std::span<const value_t> b) const;

  /// All eigenvalues of a symmetric matrix via cyclic Jacobi rotations.
  /// Returned sorted ascending. Throws if matrix is not square.
  [[nodiscard]] std::vector<value_t> symmetric_eigenvalues(
      value_t tol = 1e-12) const;

  /// Frobenius norm.
  [[nodiscard]] value_t frobenius_norm() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace bars

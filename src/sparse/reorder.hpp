#pragma once

#include <vector>

#include "sparse/csr.hpp"

/// \file reorder.hpp
/// Symmetric permutations. The paper (Section 4.3) notes that
/// Chem97ZtZ's convergence under local iterations "could potentially be
/// obtained by reordering" — Cuthill-McKee moves the far off-diagonal
/// couplings into the diagonal blocks, which ablation_reordering
/// quantifies.

namespace bars {

/// A permutation p maps new index -> old index: x_new[i] = x_old[p[i]].
using Permutation = std::vector<index_t>;

/// Reverse Cuthill-McKee ordering of the symmetrized adjacency of `a`.
/// Deterministic: within a BFS level, neighbors are visited by
/// ascending degree (ties by index). Handles disconnected graphs.
[[nodiscard]] Permutation reverse_cuthill_mckee(const Csr& a);

/// Identity permutation of size n.
[[nodiscard]] Permutation identity_permutation(index_t n);

/// Inverse permutation: q[p[i]] = i.
[[nodiscard]] Permutation invert_permutation(const Permutation& p);

/// Symmetric permutation: B = A(p, p), i.e. B(i, j) = A(p[i], p[j]).
[[nodiscard]] Csr permute_symmetric(const Csr& a, const Permutation& p);

/// Permute a vector: out[i] = v[p[i]].
[[nodiscard]] Vector permute_vector(const Vector& v, const Permutation& p);

/// Validate that p is a permutation of [0, n).
[[nodiscard]] bool is_permutation(const Permutation& p);

}  // namespace bars

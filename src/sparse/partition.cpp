#include "sparse/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace bars {

RowPartition RowPartition::uniform(index_t n, index_t block_size) {
  if (n < 0 || block_size <= 0) {
    throw std::invalid_argument("RowPartition::uniform: bad arguments");
  }
  std::vector<index_t> b{0};
  for (index_t start = block_size; start < n; start += block_size) {
    b.push_back(start);
  }
  if (n > 0) b.push_back(n);
  return from_boundaries(std::move(b));
}

RowPartition RowPartition::balanced(index_t n, index_t parts) {
  if (n < 0 || parts <= 0) {
    throw std::invalid_argument("RowPartition::balanced: bad arguments");
  }
  parts = std::min(parts, std::max<index_t>(n, 1));
  std::vector<index_t> b{0};
  for (index_t p = 1; p <= parts; ++p) {
    const index_t bound = n * p / parts;
    if (bound > b.back()) b.push_back(bound);
  }
  if (b.size() == 1 && n == 0) return RowPartition{};
  return from_boundaries(std::move(b));
}

RowPartition RowPartition::from_boundaries(std::vector<index_t> boundaries) {
  if (boundaries.empty() || boundaries.front() != 0) {
    throw std::invalid_argument(
        "RowPartition::from_boundaries: must start at 0");
  }
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    if (boundaries[i] <= boundaries[i - 1]) {
      throw std::invalid_argument(
          "RowPartition::from_boundaries: boundaries must be increasing");
    }
  }
  RowPartition p;
  p.boundaries_ = std::move(boundaries);
  return p;
}

RowBlock RowPartition::block(index_t b) const {
  if (b < 0 || b >= num_blocks()) {
    throw std::out_of_range("RowPartition::block: index out of range");
  }
  return {boundaries_[b], boundaries_[b + 1]};
}

index_t RowPartition::block_of(index_t i) const {
  if (i < 0 || i >= total_rows()) {
    throw std::out_of_range("RowPartition::block_of: row out of range");
  }
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), i);
  return static_cast<index_t>(it - boundaries_.begin()) - 1;
}

std::vector<index_t> RowPartition::owner_table() const {
  std::vector<index_t> table(static_cast<std::size_t>(total_rows()));
  for (index_t b = 0; b < num_blocks(); ++b) {
    for (index_t i = boundaries_[b]; i < boundaries_[b + 1]; ++i) {
      table[static_cast<std::size_t>(i)] = b;
    }
  }
  return table;
}

std::vector<std::pair<index_t, index_t>> RowPartition::device_split(
    index_t devices) const {
  if (devices <= 0) {
    throw std::invalid_argument("device_split: devices must be positive");
  }
  const index_t nb = num_blocks();
  std::vector<std::pair<index_t, index_t>> out;
  out.reserve(static_cast<std::size_t>(devices));
  index_t prev = 0;
  for (index_t d = 1; d <= devices; ++d) {
    const index_t bound = nb * d / devices;
    out.emplace_back(prev, bound);
    prev = bound;
  }
  return out;
}

}  // namespace bars

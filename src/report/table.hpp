#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Fixed-width table formatting for the benchmark harnesses, so every
/// bench prints rows that can be compared side by side with the
/// paper's tables.

namespace bars::report {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with column padding to `out`.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
[[nodiscard]] std::string fmt_sci(double v, int digits = 4);
[[nodiscard]] std::string fmt_fixed(double v, int digits = 6);
[[nodiscard]] std::string fmt_int(long long v);

/// Write series as CSV: first column x, then one column per series.
void write_csv(std::ostream& out, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& columns);

}  // namespace bars::report

#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file args.hpp
/// Minimal `--key=value` CLI parsing shared by the bench harnesses.

namespace bars::report {

class Args {
 public:
  Args(int argc, char** argv);

  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Keys that were supplied but never queried (typo detection).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Supplied keys that are not in `known` — the typo guard the
  /// harness entry points use to fail fast (with a pointer at the
  /// relevant doc) instead of silently ignoring a misspelled flag.
  [[nodiscard]] std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  [[nodiscard]] const std::string* find(const std::string& key) const;
};

}  // namespace bars::report

#pragma once

#include <iosfwd>

#include "sparse/csr.hpp"

/// \file spy.hpp
/// ASCII sparsity plots ("spy" plots), reproducing the paper's Figure 1
/// in terminal form: the matrix is downsampled onto a character grid
/// and each cell is shaded by the fraction of stored entries it covers.

namespace bars::report {

struct SpyOptions {
  index_t width = 60;   ///< character columns
  index_t height = 30;  ///< character rows
  /// Shade ramp from empty to dense; the default uses 5 levels.
  const char* ramp = " .:*#";
};

/// Render the sparsity pattern of `a` to `out`.
void spy(std::ostream& out, const Csr& a, const SpyOptions& opts = {});

}  // namespace bars::report

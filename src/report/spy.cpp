#include "report/spy.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace bars::report {

void spy(std::ostream& out, const Csr& a, const SpyOptions& opts) {
  if (opts.width <= 0 || opts.height <= 0 || opts.ramp == nullptr ||
      std::strlen(opts.ramp) < 2) {
    throw std::invalid_argument("spy: bad options");
  }
  const index_t rows = std::max<index_t>(a.rows(), 1);
  const index_t cols = std::max<index_t>(a.cols(), 1);
  const index_t h = std::min(opts.height, rows);
  const index_t w = std::min(opts.width, cols);

  std::vector<index_t> bins(static_cast<std::size_t>(h * w), 0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const index_t bi = i * h / rows;
    for (index_t j : a.row_cols(i)) {
      const index_t bj = j * w / cols;
      ++bins[bi * w + bj];
    }
  }
  // Cell capacity: matrix entries represented by one character cell.
  const value_t capacity = (static_cast<value_t>(rows) / h) *
                           (static_cast<value_t>(cols) / w);
  const auto levels = static_cast<index_t>(std::strlen(opts.ramp));

  out << '+' << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  for (index_t bi = 0; bi < h; ++bi) {
    out << '|';
    for (index_t bj = 0; bj < w; ++bj) {
      const value_t density =
          static_cast<value_t>(bins[bi * w + bj]) / capacity;
      index_t level = 0;
      if (bins[bi * w + bj] > 0) {
        level = 1 + static_cast<index_t>(
                        std::min(density, value_t{1.0}) *
                        static_cast<value_t>(levels - 2));
        level = std::min(level, levels - 1);
      }
      out << opts.ramp[level];
    }
    out << "|\n";
  }
  out << '+' << std::string(static_cast<std::size_t>(w), '-') << "+\n";
}

}  // namespace bars::report

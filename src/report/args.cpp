#include "report/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace bars::report {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.emplace_back(arg, "");
    } else {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

const std::string* Args::find(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return &v;
  }
  return nullptr;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  const std::string* v = find(key);
  return v && !v->empty() ? std::stoll(*v) : fallback;
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  return v && !v->empty() ? std::stod(*v) : fallback;
}

std::string Args::get_string(const std::string& key,
                             std::string fallback) const {
  const std::string* v = find(key);
  return v ? *v : fallback;
}

bool Args::has(const std::string& key) const { return find(key) != nullptr; }

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.push_back(k);
  return out;
}

std::vector<std::string> Args::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    bool found = false;
    for (const std::string& want : known) {
      if (k == want) {
        found = true;
        break;
      }
    }
    if (!found) out.push_back(k);
  }
  return out;
}

}  // namespace bars::report

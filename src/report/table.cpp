#include "report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bars::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) out << ' ';
    }
    out << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  " + std::string(width[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt_sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, v);
  return buf;
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

void write_csv(std::ostream& out, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& columns) {
  if (columns.size() != headers.size()) {
    throw std::invalid_argument("write_csv: header/column mismatch");
  }
  for (std::size_t c = 0; c < headers.size(); ++c) {
    out << headers[c] << (c + 1 < headers.size() ? ',' : '\n');
  }
  std::size_t rows = 0;
  for (const auto& col : columns) rows = std::max(rows, col.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (r < columns[c].size()) out << columns[c][r];
      out << (c + 1 < columns.size() ? ',' : '\n');
    }
  }
}

}  // namespace bars::report

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/verify_hooks.hpp"
#include "verify/race_oracle.hpp"

/// \file schedule_controller.hpp
/// Deterministic cooperative scheduler for controlled threads — the
/// model-checking core of the verification tier (docs/VERIFY.md).
///
/// Execution model (CHESS-style serialization): at most one controlled
/// thread runs at a time; every other controlled thread is parked
/// inside a hook waiting for its turn. The controller virtualizes the
/// project's synchronization wrappers completely —
///   - Mutex ownership is controller bookkeeping (the serial token
///     already provides mutual exclusion); contended acquisition
///     reorders are explored through the scheduling choice of which
///     blocked thread runs when the owner releases.
///   - ConditionVariable waits park the thread in the controller;
///     notify_one picks the woken waiter through the decision strategy
///     (a real source of nondeterminism the explorer must own).
///   - Timed waits use virtual time: a timeout fires only when every
///     controlled thread is blocked (quiescence), by advancing the
///     virtual clock to the earliest deadline. No wall-clock sleeps.
///   - Thread creation assigns ids in the parent's program order, so
///     schedules replay identically regardless of OS start order.
///
/// Decision points — where the schedule can branch — are: explicit
/// BARS_VERIFY_YIELD sites, every blocking operation, and notify_one
/// target selection. Between decision points a thread runs without
/// preemption; this is the cooperative (preemption-bounded) state
/// space. Data races *within* those atomic sections are still caught,
/// because the happens-before oracle derives its relation from sync
/// operations, not from the serialized execution order.
///
/// Deadlock (no runnable thread, no pending virtual timeout, live
/// threads remain) aborts via BARS_CHECK with a full thread dump — a
/// deadlock in explored code is a product bug and there is no sound way
/// to unwind threads that are really parked.

namespace bars::verify {

inline constexpr ThreadId kNoThread = 0xffffffffu;

struct Violation {
  std::string kind;    ///< "race", "lock-discipline", "invariant", ...
  std::string detail;
};

/// Supplies every branch decision; implemented by the explorers.
class DecisionStrategy {
 public:
  virtual ~DecisionStrategy() = default;
  /// Choose one of `candidates` (>= 2 entries, ascending thread ids for
  /// scheduling picks, arrival order for notify picks). Returns an
  /// index into `candidates`.
  virtual std::size_t pick(const std::vector<ThreadId>& candidates) = 0;
};

struct ControllerOptions {
  /// Decision points before the controller stops branching and finishes
  /// the schedule under plain round-robin (recorded as `truncated`).
  /// Bounds the tree depth for programs with schedule-dependent length
  /// (e.g. thread_async, whose workers loop until a monitor verdict).
  std::size_t max_steps = 50000;
  /// CHESS-style preemption bound: how many times per schedule the
  /// scheduler may switch away from a thread that could have kept
  /// running (yield sites). Switches forced by blocking are always
  /// explored and never consume budget. Small bounds (1-2) shrink the
  /// exhaustive tree from exponential-in-yields to tractable while
  /// empirically catching most concurrency bugs (Musuvathi & Qadeer,
  /// PLDI 2007). SIZE_MAX = unbounded (full cooperative tree).
  std::size_t preemption_bound = static_cast<std::size_t>(-1);
  bool check_races = true;
  std::size_t max_access_records = 4096;
  /// Violations kept per schedule (further ones only counted).
  std::size_t max_violations = 16;
};

class ScheduleController final : public common::verify::Hooks {
 public:
  explicit ScheduleController(DecisionStrategy& strategy,
                              ControllerOptions opts = {});
  ~ScheduleController() override;

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  /// Run `body` under this controller: the calling thread becomes
  /// controlled thread 0, bars::common::Thread objects created inside
  /// become controlled children, and every decision goes through the
  /// strategy. Returns when the body returns; the body must have joined
  /// every thread it spawned (enforced).
  void run(const std::function<void(ScheduleController&)>& body);

  /// Violations recorded during the last run (races, lock discipline,
  /// plus anything the body reported).
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  /// Total decision points consulted in the last run.
  [[nodiscard]] std::size_t decisions() const noexcept { return steps_; }
  /// The last run hit max_steps and finished under round-robin.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] double virtual_now() const noexcept { return vt_; }

  /// For bodies and oracles: attach a violation to the current
  /// schedule so the explorer aggregates it with a replay trail.
  void report_violation(const char* kind, std::string detail) noexcept;

  // Hooks interface (product wrappers call these; see verify_hooks.hpp).
  void on_mutex_lock(void* mu) noexcept override;
  void on_mutex_unlock(void* mu) noexcept override;
  void on_cv_wait(void* cv, void* mu) noexcept override;
  bool on_cv_wait_for(void* cv, void* mu, double seconds) noexcept override;
  void on_cv_notify(void* cv, bool notify_all) noexcept override;
  [[nodiscard]] std::uint32_t on_thread_create() noexcept override;
  void on_thread_adopt(std::uint32_t id) noexcept override;
  void on_thread_exit() noexcept override;
  void on_thread_join(std::uint32_t id) noexcept override;
  void on_yield(const char* what) noexcept override;
  void on_access(const void* addr, std::size_t len, bool is_write,
                 const char* what) noexcept override;

 private:
  struct ThreadRec {
    enum class St : std::uint8_t {
      kRunnable,      ///< running or parked awaiting its turn
      kBlockedMutex,  ///< wants wait_mutex
      kBlockedCv,     ///< parked on wait_cv (released wait_mutex)
      kWantsLock,     ///< woken/timed out; must reacquire wait_mutex
      kBlockedJoin,   ///< waiting for join_target to finish
      kFinished,
    };
    St st = St::kRunnable;
    void* wait_mutex = nullptr;
    void* wait_cv = nullptr;
    ThreadId join_target = 0;
    double timeout_at = -1.0;  ///< < 0: untimed cv wait
    bool timed_out = false;
    VectorClock vc;
    std::vector<void*> held;  ///< lockset, for violation reports
  };
  struct MutexRec {
    ThreadId owner = kNoThread;
    VectorClock release_vc;
  };
  struct CvRec {
    std::vector<ThreadId> waiters;  ///< arrival order
  };

  // All helpers require big_ held.
  [[nodiscard]] bool eligible_locked(ThreadId t) const;
  void acquire_mutex_locked(ThreadId t, void* mu);
  void release_mutex_locked(ThreadId t, void* mu);
  void wake_from_cv_locked(ThreadId t, bool timed_out);
  void grant_locked(ThreadId t);
  /// Pick and activate the next thread (me stays a candidate iff
  /// eligible). Fires virtual timeouts on quiescence; aborts on
  /// deadlock.
  void schedule_locked(ThreadId me);
  void park_until_my_turn(std::unique_lock<std::mutex>& lk, ThreadId me);
  [[nodiscard]] std::string dump_threads_locked() const;

  DecisionStrategy& strategy_;
  ControllerOptions opts_;
  RaceOracle oracle_;

  std::mutex big_;
  std::condition_variable turn_cv_;
  std::vector<ThreadRec> threads_;
  std::map<void*, MutexRec> mutexes_;
  std::map<void*, CvRec> cvs_;
  ThreadId active_ = 0;
  double vt_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t transitions_ = 0;   ///< total grants; runaway backstop
  std::size_t preemptions_ = 0;  ///< budget used (see preemption_bound)
  bool truncated_ = false;
  std::size_t rr_ = 0;  ///< round-robin cursor after truncation
  std::vector<Violation> violations_;
  std::size_t dropped_violations_ = 0;
};

}  // namespace bars::verify

#include "verify/schedule_controller.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace bars::verify {

namespace {

/// Identity of the current thread within its controller. Assigned at
/// run() for the root and at adoption for children; only meaningful
/// while common::verify::tl_hooks points at a controller.
thread_local ThreadId tl_tid = 0;

const char* to_string(std::uint8_t st) {
  switch (st) {
    case 0: return "runnable";
    case 1: return "blocked-mutex";
    case 2: return "blocked-cv";
    case 3: return "wants-lock";
    case 4: return "blocked-join";
    case 5: return "finished";
  }
  return "?";
}

}  // namespace

ScheduleController::ScheduleController(DecisionStrategy& strategy,
                                       ControllerOptions opts)
    : strategy_(strategy), opts_(opts), oracle_(opts.max_access_records) {}

ScheduleController::~ScheduleController() = default;

void ScheduleController::run(
    const std::function<void(ScheduleController&)>& body) {
  BARS_CHECK(common::verify::tl_hooks == nullptr)
      << "ScheduleController::run: calling thread is already controlled "
         "(nested controllers are not supported)";
  threads_.clear();
  mutexes_.clear();
  cvs_.clear();
  violations_.clear();
  oracle_.clear();
  vt_ = 0.0;
  steps_ = 0;
  transitions_ = 0;
  preemptions_ = 0;
  truncated_ = false;
  rr_ = 0;
  dropped_violations_ = 0;

  threads_.emplace_back();  // root = thread 0
  threads_[0].vc.tick(0);
  active_ = 0;
  tl_tid = 0;
  common::verify::tl_hooks = this;
  struct Uninstall {
    ~Uninstall() { common::verify::tl_hooks = nullptr; }
  } uninstall;

  body(*this);

  std::unique_lock<std::mutex> lk(big_);
  for (std::size_t t = 1; t < threads_.size(); ++t) {
    BARS_CHECK(threads_[t].st == ThreadRec::St::kFinished)
        << "ScheduleController: body returned while controlled thread " << t
        << " is still " << to_string(static_cast<std::uint8_t>(threads_[t].st))
        << " — every spawned common::Thread must be joined inside the body";
  }
}

void ScheduleController::report_violation(const char* kind,
                                          std::string detail) noexcept {
  std::unique_lock<std::mutex> lk(big_);
  if (violations_.size() >= opts_.max_violations) {
    ++dropped_violations_;
    return;
  }
  violations_.push_back(Violation{kind, std::move(detail)});
}

// ------------------------------------------------------------ helpers

bool ScheduleController::eligible_locked(ThreadId t) const {
  const ThreadRec& tr = threads_[t];
  switch (tr.st) {
    case ThreadRec::St::kRunnable:
      return true;
    case ThreadRec::St::kBlockedMutex:
    case ThreadRec::St::kWantsLock: {
      const auto it = mutexes_.find(tr.wait_mutex);
      return it == mutexes_.end() || it->second.owner == kNoThread;
    }
    case ThreadRec::St::kBlockedJoin:
      return threads_[tr.join_target].st == ThreadRec::St::kFinished;
    case ThreadRec::St::kBlockedCv:
    case ThreadRec::St::kFinished:
      return false;
  }
  return false;
}

void ScheduleController::acquire_mutex_locked(ThreadId t, void* mu) {
  MutexRec& m = mutexes_[mu];
  BARS_DCHECK(m.owner == kNoThread)
      << "verify: acquire of held mutex by thread " << t;
  m.owner = t;
  threads_[t].vc.join(m.release_vc);
  threads_[t].held.push_back(mu);
}

void ScheduleController::release_mutex_locked(ThreadId t, void* mu) {
  MutexRec& m = mutexes_[mu];
  if (m.owner != t) {
    std::ostringstream os;
    os << "thread " << t << " released a mutex it does not hold (owner: ";
    if (m.owner == kNoThread) {
      os << "none";
    } else {
      os << m.owner;
    }
    os << ")";
    if (violations_.size() < opts_.max_violations) {
      violations_.push_back(Violation{"lock-discipline", os.str()});
    }
    return;
  }
  m.owner = kNoThread;
  m.release_vc = threads_[t].vc;
  threads_[t].vc.tick(t);
  auto& held = threads_[t].held;
  held.erase(std::remove(held.begin(), held.end(), mu), held.end());
}

void ScheduleController::wake_from_cv_locked(ThreadId t, bool timed_out) {
  ThreadRec& tr = threads_[t];
  auto& waiters = cvs_[tr.wait_cv].waiters;
  waiters.erase(std::remove(waiters.begin(), waiters.end(), t),
                waiters.end());
  tr.timed_out = timed_out;
  tr.st = ThreadRec::St::kWantsLock;  // wait_mutex still set: reacquire
  tr.wait_cv = nullptr;
  tr.timeout_at = -1.0;
}

void ScheduleController::grant_locked(ThreadId t) {
  ThreadRec& tr = threads_[t];
  switch (tr.st) {
    case ThreadRec::St::kBlockedMutex:
    case ThreadRec::St::kWantsLock:
      acquire_mutex_locked(t, tr.wait_mutex);
      tr.wait_mutex = nullptr;
      tr.st = ThreadRec::St::kRunnable;
      return;
    case ThreadRec::St::kBlockedJoin:
      tr.vc.join(threads_[tr.join_target].vc);
      tr.st = ThreadRec::St::kRunnable;
      return;
    case ThreadRec::St::kRunnable:
      return;
    case ThreadRec::St::kBlockedCv:
    case ThreadRec::St::kFinished:
      BARS_CHECK(false) << "verify: granted an ineligible thread " << t;
  }
}

std::string ScheduleController::dump_threads_locked() const {
  std::ostringstream os;
  for (std::size_t t = 0; t < threads_.size(); ++t) {
    const ThreadRec& tr = threads_[t];
    os << "\n  thread " << t << ": "
       << to_string(static_cast<std::uint8_t>(tr.st));
    if (tr.st == ThreadRec::St::kBlockedJoin) {
      os << " on thread " << tr.join_target;
    }
    if (tr.wait_mutex != nullptr) os << " (mutex " << tr.wait_mutex << ")";
    if (tr.wait_cv != nullptr) os << " (cv " << tr.wait_cv << ")";
    if (!tr.held.empty()) {
      os << " holding {";
      for (const void* m : tr.held) os << " " << m;
      os << " }";
    }
  }
  return os.str();
}

void ScheduleController::schedule_locked(ThreadId me) {
  for (;;) {
    std::vector<ThreadId> cands;
    for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t) {
      if (eligible_locked(t)) cands.push_back(t);
    }
    if (!cands.empty()) {
      // A yield site where `me` could keep running is a *preemption*
      // opportunity; switching there consumes budget. A switch forced
      // by `me` blocking is unavoidable and always explored.
      const bool me_runnable =
          threads_[me].st == ThreadRec::St::kRunnable;
      std::size_t me_idx = 0;
      if (me_runnable) {
        while (me_idx < cands.size() && cands[me_idx] != me) ++me_idx;
      }
      std::size_t idx = 0;
      if (cands.size() > 1) {
        if (!truncated_ && steps_ >= opts_.max_steps) truncated_ = true;
        if (truncated_) {
          // Stop branching; finish the schedule under round-robin so
          // every thread (in particular a stopping monitor) makes
          // progress and the body terminates.
          idx = rr_++ % cands.size();
        } else if (me_runnable && preemptions_ >= opts_.preemption_bound) {
          idx = me_idx;  // budget spent: continue on me, no branch
        } else {
          ++steps_;
          idx = strategy_.pick(cands);
          BARS_CHECK(idx < cands.size())
              << "verify: strategy picked " << idx << " of " << cands.size();
          if (me_runnable && cands[idx] != me) ++preemptions_;
        }
      }
      // Runaway backstop: a body whose only "progress" is repeated
      // virtual timeouts (e.g. a supervisor polling a wall clock that
      // virtual time cannot advance) would otherwise spin forever
      // without ever consulting the strategy.
      ++transitions_;
      BARS_CHECK(transitions_ <= opts_.max_steps * 50 + 10000)
          << "verify: schedule did not terminate after " << transitions_
          << " thread grants (vt " << vt_ << ", " << steps_
          << " decisions) — the body makes no schedule-visible progress:"
          << dump_threads_locked();
      const ThreadId next = cands[idx];
      grant_locked(next);
      active_ = next;
      turn_cv_.notify_all();
      return;
    }

    // Quiescence: no eligible thread. Fire the earliest virtual
    // timeout, if any, and re-evaluate.
    ThreadId best = kNoThread;
    for (ThreadId t = 0; t < static_cast<ThreadId>(threads_.size()); ++t) {
      const ThreadRec& tr = threads_[t];
      if (tr.st != ThreadRec::St::kBlockedCv || tr.timeout_at < 0.0) continue;
      if (best == kNoThread || tr.timeout_at < threads_[best].timeout_at) {
        best = t;
      }
    }
    if (best != kNoThread) {
      vt_ = std::max(vt_, threads_[best].timeout_at);
      wake_from_cv_locked(best, /*timed_out=*/true);
      continue;
    }

    BARS_CHECK(false)
        << "verify: deadlock — no runnable thread and no pending virtual "
           "timeout (scheduling thread " << me << ", vt " << vt_
        << "):" << dump_threads_locked();
  }
}

void ScheduleController::park_until_my_turn(std::unique_lock<std::mutex>& lk,
                                            ThreadId me) {
  while (active_ != me) turn_cv_.wait(lk);
}

// ---------------------------------------------------------------- hooks

void ScheduleController::on_mutex_lock(void* mu) noexcept {
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  MutexRec& m = mutexes_[mu];
  if (m.owner == me) {
    BARS_CHECK(false) << "verify: recursive lock of mutex " << mu
                      << " by thread " << me << dump_threads_locked();
  }
  if (m.owner == kNoThread) {
    // Uncontended: acquire in place. Contention reorders are explored
    // through the release-side scheduling decision, so this is not a
    // branch point of its own.
    acquire_mutex_locked(me, mu);
    return;
  }
  ThreadRec& tr = threads_[me];
  tr.st = ThreadRec::St::kBlockedMutex;
  tr.wait_mutex = mu;
  schedule_locked(me);
  park_until_my_turn(lk, me);
}

void ScheduleController::on_mutex_unlock(void* mu) noexcept {
  std::unique_lock<std::mutex> lk(big_);
  release_mutex_locked(tl_tid, mu);
}

void ScheduleController::on_cv_wait(void* cv, void* mu) noexcept {
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  if (mutexes_[mu].owner != me) {
    if (violations_.size() < opts_.max_violations) {
      std::ostringstream os;
      os << "thread " << me << " waited on cv " << cv
         << " without holding its mutex";
      violations_.push_back(Violation{"lock-discipline", os.str()});
    }
    return;
  }
  release_mutex_locked(me, mu);
  cvs_[cv].waiters.push_back(me);
  ThreadRec& tr = threads_[me];
  tr.st = ThreadRec::St::kBlockedCv;
  tr.wait_cv = cv;
  tr.wait_mutex = mu;  // reacquired on wake
  tr.timeout_at = -1.0;
  schedule_locked(me);
  park_until_my_turn(lk, me);
}

bool ScheduleController::on_cv_wait_for(void* cv, void* mu,
                                        double seconds) noexcept {
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  if (mutexes_[mu].owner != me) {
    if (violations_.size() < opts_.max_violations) {
      std::ostringstream os;
      os << "thread " << me << " timed-waited on cv " << cv
         << " without holding its mutex";
      violations_.push_back(Violation{"lock-discipline", os.str()});
    }
    return false;
  }
  release_mutex_locked(me, mu);
  cvs_[cv].waiters.push_back(me);
  ThreadRec& tr = threads_[me];
  tr.st = ThreadRec::St::kBlockedCv;
  tr.wait_cv = cv;
  tr.wait_mutex = mu;
  tr.timeout_at = vt_ + std::max(seconds, 0.0);
  tr.timed_out = false;
  schedule_locked(me);
  park_until_my_turn(lk, me);
  return !threads_[me].timed_out;
}

void ScheduleController::on_cv_notify(void* cv, bool notify_all) noexcept {
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  auto it = cvs_.find(cv);
  if (it == cvs_.end() || it->second.waiters.empty()) return;  // lost wakeup
  if (notify_all) {
    const std::vector<ThreadId> waiters = it->second.waiters;
    for (const ThreadId t : waiters) {
      wake_from_cv_locked(t, /*timed_out=*/false);
    }
    return;
  }
  // notify_one: the woken waiter is a genuine nondeterministic choice.
  std::size_t idx = 0;
  const std::vector<ThreadId>& waiters = it->second.waiters;
  if (waiters.size() > 1) {
    if (!truncated_ && steps_ >= opts_.max_steps) truncated_ = true;
    if (truncated_) {
      idx = rr_++ % waiters.size();
    } else {
      ++steps_;
      idx = strategy_.pick(waiters);
      BARS_CHECK(idx < waiters.size())
          << "verify: strategy picked waiter " << idx << " of "
          << waiters.size();
    }
  }
  wake_from_cv_locked(waiters[idx], /*timed_out=*/false);
  // The notifier keeps running (cooperative); the woken thread becomes
  // schedulable once the mutex frees up.
  (void)me;
}

std::uint32_t ScheduleController::on_thread_create() noexcept {
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  const auto id = static_cast<ThreadId>(threads_.size());
  threads_.emplace_back();
  ThreadRec& child = threads_.back();
  child.vc = threads_[me].vc;  // everything before the spawn happens-before
  child.vc.tick(id);
  threads_[me].vc.tick(me);
  // Not a preemption point: the parent must stay active until the
  // std::thread object actually exists, or a schedule could pick a
  // child whose OS thread can never start.
  return id;
}

void ScheduleController::on_thread_adopt(std::uint32_t id) noexcept {
  tl_tid = id;
  std::unique_lock<std::mutex> lk(big_);
  park_until_my_turn(lk, id);
}

void ScheduleController::on_thread_exit() noexcept {
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  ThreadRec& tr = threads_[me];
  if (!tr.held.empty() && violations_.size() < opts_.max_violations) {
    std::ostringstream os;
    os << "thread " << me << " exited holding " << tr.held.size()
       << " mutex(es)";
    violations_.push_back(Violation{"lock-discipline", os.str()});
  }
  tr.st = ThreadRec::St::kFinished;
  schedule_locked(me);
}

void ScheduleController::on_thread_join(std::uint32_t id) noexcept {
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  BARS_CHECK(id < threads_.size()) << "verify: join of unknown thread " << id;
  if (threads_[id].st == ThreadRec::St::kFinished) {
    threads_[me].vc.join(threads_[id].vc);
    return;
  }
  ThreadRec& tr = threads_[me];
  tr.st = ThreadRec::St::kBlockedJoin;
  tr.join_target = id;
  schedule_locked(me);
  park_until_my_turn(lk, me);
}

void ScheduleController::on_yield(const char* what) noexcept {
  (void)what;
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  // Continuing on `me` is one of the candidates; schedule_locked keeps
  // kRunnable threads (including me) eligible.
  schedule_locked(me);
  park_until_my_turn(lk, me);
}

void ScheduleController::on_access(const void* addr, std::size_t len,
                                   bool is_write,
                                   const char* what) noexcept {
  if (!opts_.check_races) return;
  const ThreadId me = tl_tid;
  std::unique_lock<std::mutex> lk(big_);
  std::string race = oracle_.check_and_record(me, threads_[me].vc, addr, len,
                                              is_write, what);
  if (!race.empty()) {
    if (violations_.size() < opts_.max_violations) {
      violations_.push_back(Violation{"race", std::move(race)});
    } else {
      ++dropped_violations_;
    }
  }
}

}  // namespace bars::verify

#include "verify/race_oracle.hpp"

#include <sstream>

namespace bars::verify {

std::string RaceOracle::check_and_record(ThreadId tid, const VectorClock& vc,
                                         const void* addr, std::size_t len,
                                         bool write, const char* what) {
  const auto lo = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t hi = lo + len;
  std::string out;
  for (const Record& r : records_) {
    if (r.tid == tid) continue;           // program order
    if (!(write || r.write)) continue;    // read/read never conflicts
    if (r.hi <= lo || hi <= r.lo) continue;  // disjoint intervals
    if (vc.dominates(r.tid, r.clock)) continue;  // happens-before
    std::ostringstream os;
    os << "data race: thread " << tid << (write ? " writes " : " reads ")
       << "[" << what << ", " << len << " bytes] unordered with thread "
       << r.tid << (r.write ? " write " : " read ") << "[" << r.what
       << "]; no happens-before edge connects the accesses";
    out = os.str();
    break;
  }

  // Supersede this thread's previous same-interval access of the same
  // kind — program order makes the older record redundant — then cap.
  for (Record& r : records_) {
    if (r.tid == tid && r.lo == lo && r.hi == hi && r.write == write) {
      r.clock = vc.of(tid);
      r.what = what;
      return out;
    }
  }
  if (records_.size() >= max_records_) {
    // Drop the oldest half; coverage degrades but stays useful.
    records_.erase(records_.begin(),
                   records_.begin() +
                       static_cast<std::ptrdiff_t>(records_.size() / 2));
    overflowed_ = true;
  }
  records_.push_back(Record{lo, hi, tid, vc.of(tid), write, what});
  return out;
}

}  // namespace bars::verify

#include "verify/invariants.hpp"

#include <sstream>

#include "service/solve_service.hpp"
#include "verify/schedule_controller.hpp"

namespace bars::verify {

namespace {
constexpr std::size_t kMaxErrors = 16;
}  // namespace

CommitLedger::CommitLedger(index_t num_blocks, index_t staleness_bound)
    : num_blocks_(num_blocks),
      staleness_bound_(staleness_bound),
      generation_(static_cast<std::size_t>(num_blocks), 0),
      block_vt_(static_cast<std::size_t>(num_blocks), 0.0) {}

void CommitLedger::fail(std::string msg) {
  if (errors_.size() < kMaxErrors) errors_.push_back(std::move(msg));
}

void CommitLedger::on_block_commit(const telemetry::BlockCommitEvent& ev) {
  if (ev.block < 0 || ev.block >= num_blocks_) {
    std::ostringstream os;
    os << "commit for out-of-range block " << ev.block << " (have "
       << num_blocks_ << ")";
    fail(os.str());
    return;
  }
  const auto b = static_cast<std::size_t>(ev.block);
  if (ev.generation != generation_[b]) {
    std::ostringstream os;
    os << "block " << ev.block << " committed generation " << ev.generation
       << " but " << generation_[b] << " commits were observed before it"
       << (ev.generation > generation_[b] ? " (lost commit)"
                                          : " (duplicated/reordered commit)");
    fail(os.str());
  }
  ++generation_[b];
  ++total_commits_;

  if (ev.virtual_time < block_vt_[b]) {
    std::ostringstream os;
    os << "block " << ev.block << " virtual time went backwards: "
       << ev.virtual_time << " after " << block_vt_[b];
    fail(os.str());
  }
  block_vt_[b] = ev.virtual_time;
  if (ev.virtual_time < last_vt_) {
    std::ostringstream os;
    os << "global virtual time went backwards at block " << ev.block << ": "
       << ev.virtual_time << " after " << last_vt_;
    fail(os.str());
  }
  last_vt_ = ev.virtual_time;

  if (ev.staleness > max_staleness_) max_staleness_ = ev.staleness;
  if (staleness_bound_ > 0 && ev.staleness > staleness_bound_) {
    std::ostringstream os;
    os << "block " << ev.block << " read halo data " << ev.staleness
       << " generations stale (bound " << staleness_bound_ << ")";
    fail(os.str());
  }
}

void CommitLedger::on_finish(const telemetry::SolveFinishEvent& ev) {
  finished_ = true;
  if (ev.block_commits != 0 && ev.block_commits != total_commits_) {
    std::ostringstream os;
    os << "finish reports " << ev.block_commits << " block commits but "
       << total_commits_ << " were observed (lost or phantom commit)";
    fail(os.str());
  }
  if (ev.max_staleness < max_staleness_) {
    std::ostringstream os;
    os << "finish reports max staleness " << ev.max_staleness
       << " below the observed per-commit maximum " << max_staleness_;
    fail(os.str());
  }
}

void CommitLedger::reset() {
  generation_.assign(generation_.size(), 0);
  block_vt_.assign(block_vt_.size(), 0.0);
  last_vt_ = 0.0;
  total_commits_ = 0;
  max_staleness_ = 0;
  finished_ = false;
  errors_.clear();
}

index_t CommitLedger::commits_of(index_t block) const {
  if (block < 0 || block >= num_blocks_) return 0;
  return generation_[static_cast<std::size_t>(block)];
}

void CommitLedger::report_to(ScheduleController& controller) const {
  for (const std::string& e : errors_) {
    controller.report_violation("invariant", e);
  }
}

std::string outcome_accounting_violation(const service::ServiceStats& stats) {
  if (stats.queue_depth != 0 || stats.active != 0 || stats.parked != 0) {
    std::ostringstream os;
    os << "accounting checked on a non-quiescent service (queue "
       << stats.queue_depth << ", active " << stats.active << ", parked "
       << stats.parked << ")";
    return os.str();
  }
  const std::uint64_t settled = stats.solved + stats.rejected_queue_full +
                                stats.rejected_shutdown +
                                stats.rejected_circuit_open +
                                stats.rejected_load_shed +
                                stats.deadline_expired + stats.cancelled +
                                stats.failed;
  if (settled != stats.submitted) {
    std::ostringstream os;
    os << "outcome accounting broken: submitted " << stats.submitted
       << " != settled " << settled << " (solved " << stats.solved
       << ", rejected "
       << (stats.rejected_queue_full + stats.rejected_shutdown +
           stats.rejected_circuit_open + stats.rejected_load_shed)
       << ", deadline " << stats.deadline_expired << ", cancelled "
       << stats.cancelled << ", failed " << stats.failed
       << ") — a request was dropped or double-counted";
    return os.str();
  }
  return "";
}

}  // namespace bars::verify

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/schedule_controller.hpp"

/// \file explorer.hpp
/// Drives ScheduleController over many schedules.
///
/// Two modes:
///  - kExhaustive: depth-first enumeration of the decision tree. Each
///    schedule replays a prefix of choices and extends it; after the
///    run the deepest not-yet-maximal choice is incremented. For small
///    configurations (few threads, few yields) this covers *every*
///    cooperative interleaving — the report says so via `exhausted`.
///  - kRandomWalk: seeded priority walks (PCT-style). Each walk draws
///    per-thread priorities from a splitmix64 stream and schedules the
///    highest-priority candidate, occasionally demoting the winner so
///    priority inversions get explored. Failures record the walk's
///    seed, which replays the schedule exactly.
///
/// A failing schedule is replayable: `replay_trail` re-runs one
/// explicit decision trail, `replay_seed` re-runs one random walk.

namespace bars::verify {

enum class ExploreMode { kExhaustive, kRandomWalk };

struct ExploreOptions {
  ExploreMode mode = ExploreMode::kExhaustive;
  /// Exhaustive: hard cap on schedules (0 = unlimited, rely on the
  /// tree being finite). If the cap stops the enumeration early the
  /// report's `exhausted` stays false.
  std::size_t max_schedules = 0;
  /// Random walk: number of walks.
  std::size_t walks = 1000;
  std::uint64_t seed = 1;
  /// Random walk: probability (1/denominator) of demoting the chosen
  /// thread's priority at a decision point.
  std::uint32_t change_denominator = 8;
  /// Failing schedules kept with full detail (the rest only counted).
  std::size_t max_failures = 8;
  ControllerOptions controller{};
};

struct FailingSchedule {
  /// Decision trail (index chosen at each decision point). Filled in
  /// both modes; replays via replay_trail.
  std::vector<std::size_t> trail;
  /// Random-walk seed (0 in exhaustive mode); replays via replay_seed.
  std::uint64_t seed = 0;
  std::vector<Violation> violations;
  bool truncated = false;
};

struct ExploreReport {
  std::size_t schedules = 0;
  std::size_t decisions = 0;   ///< summed over schedules
  std::size_t truncated = 0;   ///< schedules finished under round-robin
  std::size_t max_depth = 0;   ///< longest decision trail seen
  /// Exhaustive mode: the full cooperative schedule tree was covered.
  bool exhausted = false;
  std::size_t total_violations = 0;
  std::vector<FailingSchedule> failures;  ///< first max_failures, in order

  [[nodiscard]] bool ok() const noexcept { return total_violations == 0; }
  [[nodiscard]] std::string summary() const;
};

using Body = std::function<void(ScheduleController&)>;

/// Explore `body` under `opts`. The body runs once per schedule; it
/// must be re-runnable (reset its own state each call) and can call
/// ScheduleController::report_violation for domain invariants.
[[nodiscard]] ExploreReport explore(const ExploreOptions& opts,
                                    const Body& body);

/// Re-run one schedule following `trail` (extra decisions beyond the
/// trail take index 0). Returns that schedule's violations.
[[nodiscard]] std::vector<Violation> replay_trail(
    const std::vector<std::size_t>& trail, const ControllerOptions& copts,
    const Body& body);

/// Re-run one random walk with `seed` (same parameters as explore's
/// kRandomWalk mode). Returns that schedule's violations.
[[nodiscard]] std::vector<Violation> replay_seed(std::uint64_t seed,
                                                 std::uint32_t change_denom,
                                                 const ControllerOptions& copts,
                                                 const Body& body);

// ----------------------------------------------------------- strategies

/// Depth-first enumerator. Usage: begin(); run; next() -> more?
class DfsStrategy final : public DecisionStrategy {
 public:
  void begin() {
    taken_.clear();
    fanout_.clear();
  }

  std::size_t pick(const std::vector<ThreadId>& candidates) override;

  /// Advance to the next unexplored branch; false when the tree is
  /// exhausted.
  bool next();

  [[nodiscard]] const std::vector<std::size_t>& trail() const noexcept {
    return taken_;
  }

 private:
  std::vector<std::size_t> prefix_;  ///< forced choices for this run
  std::vector<std::size_t> taken_;   ///< choices actually made
  std::vector<std::size_t> fanout_;  ///< candidate count at each depth
};

/// Replays a fixed trail; index 0 past the end.
class ReplayStrategy final : public DecisionStrategy {
 public:
  explicit ReplayStrategy(std::vector<std::size_t> trail)
      : trail_(std::move(trail)) {}

  std::size_t pick(const std::vector<ThreadId>& candidates) override;

 private:
  std::vector<std::size_t> trail_;
  std::size_t depth_ = 0;
};

/// Seeded priority walk (PCT-style): highest lazily-drawn priority
/// wins; the winner is demoted with probability 1/change_denominator.
class RandomWalkStrategy final : public DecisionStrategy {
 public:
  explicit RandomWalkStrategy(std::uint64_t seed,
                              std::uint32_t change_denominator = 8);

  std::size_t pick(const std::vector<ThreadId>& candidates) override;

  [[nodiscard]] const std::vector<std::size_t>& trail() const noexcept {
    return taken_;
  }

 private:
  std::uint64_t next_u64();

  std::uint64_t state_;
  std::uint32_t change_denominator_;
  std::vector<std::uint64_t> prio_;  ///< by thread id, drawn lazily
  std::vector<std::size_t> taken_;
};

}  // namespace bars::verify

#include "verify/explorer.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace bars::verify {

// ----------------------------------------------------------- DfsStrategy

std::size_t DfsStrategy::pick(const std::vector<ThreadId>& candidates) {
  const std::size_t depth = taken_.size();
  std::size_t choice = 0;
  if (depth < prefix_.size()) {
    // Replaying: the program is deterministic given the trail, so the
    // recorded choice must still be in range. Clamp defensively — a
    // divergence here means the body is not schedule-deterministic,
    // which its own invariants will surface far more legibly.
    choice = std::min(prefix_[depth], candidates.size() - 1);
  }
  taken_.push_back(choice);
  fanout_.push_back(candidates.size());
  return choice;
}

bool DfsStrategy::next() {
  for (std::size_t i = taken_.size(); i-- > 0;) {
    if (taken_[i] + 1 < fanout_[i]) {
      prefix_.assign(taken_.begin(),
                     taken_.begin() + static_cast<std::ptrdiff_t>(i));
      prefix_.push_back(taken_[i] + 1);
      return true;
    }
  }
  return false;
}

// -------------------------------------------------------- ReplayStrategy

std::size_t ReplayStrategy::pick(const std::vector<ThreadId>& candidates) {
  std::size_t choice = 0;
  if (depth_ < trail_.size()) {
    choice = std::min(trail_[depth_], candidates.size() - 1);
  }
  ++depth_;
  return choice;
}

// ---------------------------------------------------- RandomWalkStrategy

RandomWalkStrategy::RandomWalkStrategy(std::uint64_t seed,
                                       std::uint32_t change_denominator)
    : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ull),
      change_denominator_(std::max(change_denominator, 2u)) {}

std::uint64_t RandomWalkStrategy::next_u64() {
  // splitmix64: tiny, seedable, good enough for schedule perturbation.
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::size_t RandomWalkStrategy::pick(const std::vector<ThreadId>& candidates) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto tid = static_cast<std::size_t>(candidates[i]);
    while (tid >= prio_.size()) prio_.push_back(next_u64());
    if (prio_[candidates[i]] > prio_[candidates[best]]) best = i;
  }
  if (next_u64() % change_denominator_ == 0) {
    // Change point: demote the winner so low-priority threads get their
    // preemption windows (the PCT insight). Halving biases the redraw
    // downward so the demotion usually sticks.
    prio_[candidates[best]] = next_u64() / 2;
  }
  taken_.push_back(best);
  return best;
}

// --------------------------------------------------------------- explore

namespace {

void accumulate(ExploreReport& rep, const ScheduleController& c,
                const std::vector<std::size_t>& trail, std::uint64_t seed,
                std::size_t max_failures) {
  ++rep.schedules;
  rep.decisions += c.decisions();
  rep.max_depth = std::max(rep.max_depth, trail.size());
  if (c.truncated()) ++rep.truncated;
  if (!c.violations().empty()) {
    rep.total_violations += c.violations().size();
    if (rep.failures.size() < max_failures) {
      rep.failures.push_back(
          FailingSchedule{trail, seed, c.violations(), c.truncated()});
    }
  }
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t walk) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (walk + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

}  // namespace

ExploreReport explore(const ExploreOptions& opts, const Body& body) {
  ExploreReport rep;
  if (opts.mode == ExploreMode::kExhaustive) {
    DfsStrategy dfs;
    for (;;) {
      if (opts.max_schedules != 0 && rep.schedules >= opts.max_schedules) {
        break;  // capped: rep.exhausted stays false
      }
      dfs.begin();
      ScheduleController c(dfs, opts.controller);
      c.run(body);
      accumulate(rep, c, dfs.trail(), /*seed=*/0, opts.max_failures);
      if (!dfs.next()) {
        rep.exhausted = true;
        break;
      }
    }
    return rep;
  }

  for (std::size_t w = 0; w < opts.walks; ++w) {
    const std::uint64_t seed = mix_seed(opts.seed, w);
    RandomWalkStrategy rw(seed, opts.change_denominator);
    ScheduleController c(rw, opts.controller);
    c.run(body);
    accumulate(rep, c, rw.trail(), seed, opts.max_failures);
  }
  return rep;
}

std::vector<Violation> replay_trail(const std::vector<std::size_t>& trail,
                                    const ControllerOptions& copts,
                                    const Body& body) {
  ReplayStrategy rs(trail);
  ScheduleController c(rs, copts);
  c.run(body);
  return c.violations();
}

std::vector<Violation> replay_seed(std::uint64_t seed,
                                   std::uint32_t change_denom,
                                   const ControllerOptions& copts,
                                   const Body& body) {
  RandomWalkStrategy rw(seed, change_denom);
  ScheduleController c(rw, copts);
  c.run(body);
  return c.violations();
}

std::string ExploreReport::summary() const {
  std::ostringstream os;
  os << schedules << " schedules, " << decisions << " decisions, max depth "
     << max_depth << ", " << truncated << " truncated, "
     << (exhausted ? "exhaustive" : "sampled") << ", " << total_violations
     << " violation(s)";
  if (!failures.empty()) {
    os << "; first failure:";
    const FailingSchedule& f = failures.front();
    if (f.seed != 0) {
      os << " seed " << f.seed;
    } else {
      os << " trail [";
      for (std::size_t i = 0; i < f.trail.size(); ++i) {
        os << (i == 0 ? "" : ",") << f.trail[i];
      }
      os << "]";
    }
    for (const Violation& v : f.violations) {
      os << "\n  [" << v.kind << "] " << v.detail;
    }
  }
  return os.str();
}

}  // namespace bars::verify

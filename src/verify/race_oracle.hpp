#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file race_oracle.hpp
/// Happens-before race detection for explored schedules.
///
/// The ScheduleController maintains a vector clock per controlled
/// thread and per mutex, advancing them on the synchronization edges
/// the C++ memory model actually provides:
///   - thread create: child starts after the parent's creation point;
///   - mutex unlock -> later lock (and the release/reacquire inside a
///     condition-variable wait, which goes through the same mutex);
///   - thread exit -> join.
/// Deliberately NOT an edge: condition_variable notify -> wake. A
/// waiter only synchronizes through the mutex it reacquires, so data
/// written between an unlock and a subsequent notify stays unordered —
/// a real and subtle class of bug this oracle must keep catching.
///
/// Plain accesses declared through BARS_VERIFY_READ / BARS_VERIFY_WRITE
/// are checked FastTrack-style: each access is an (address interval,
/// thread, epoch) record; a new access races with an older record when
/// the intervals overlap, at least one side writes, the threads differ,
/// and the accessor's vector clock does not dominate the record's
/// epoch. Because the relation is derived from sync operations — not
/// from the order the serializing scheduler happened to run things — a
/// race is reported on *every* schedule that reaches both accesses,
/// not just on schedules that interleave them adversarially.

namespace bars::verify {

using ThreadId = std::uint32_t;

/// Grow-on-demand vector clock over controlled-thread ids.
class VectorClock {
 public:
  void tick(ThreadId t) {
    ensure(t);
    ++c_[t];
  }

  [[nodiscard]] std::uint32_t of(ThreadId t) const noexcept {
    return t < c_.size() ? c_[t] : 0;
  }

  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
    }
  }

  /// True when this clock has seen thread t's epoch `clock`.
  [[nodiscard]] bool dominates(ThreadId t, std::uint32_t clock) const {
    return of(t) >= clock;
  }

 private:
  void ensure(ThreadId t) {
    if (t >= c_.size()) c_.resize(static_cast<std::size_t>(t) + 1, 0);
  }

  std::vector<std::uint32_t> c_;
};

/// Bounded history of annotated accesses with interval-overlap conflict
/// checks. Owned by the controller; all calls are made under the
/// controller's scheduler lock, so the oracle itself needs none.
class RaceOracle {
 public:
  explicit RaceOracle(std::size_t max_records) : max_records_(max_records) {}

  /// Check an access against the history, then record it. Returns a
  /// human-readable description of the race, or "" when none. The
  /// epoch recorded is `vc.of(tid)` (the accessing thread's own
  /// component).
  [[nodiscard]] std::string check_and_record(ThreadId tid,
                                             const VectorClock& vc,
                                             const void* addr,
                                             std::size_t len, bool write,
                                             const char* what);

  void clear() {
    records_.clear();
    overflowed_ = false;
  }

  /// The record cap was hit and old history was dropped: coverage is
  /// then best-effort for the rest of the schedule.
  [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

 private:
  struct Record {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;  ///< exclusive
    ThreadId tid = 0;
    std::uint32_t clock = 0;
    bool write = false;
    const char* what = "";  ///< string literal from the annotation site
  };

  std::vector<Record> records_;
  std::size_t max_records_;
  bool overflowed_ = false;
};

}  // namespace bars::verify

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sparse/types.hpp"
#include "telemetry/observer.hpp"

/// \file invariants.hpp
/// Domain invariants of the asynchronous solvers, checked on every
/// explored schedule (docs/VERIFY.md, "Invariant catalogue").
///
/// The block-asynchronous iteration (paper Section 3) is chaotic in
/// *values* but disciplined in *bookkeeping*: whatever order blocks
/// commit in, every commit must be accounted exactly once, per-block
/// generations must count 0,1,2,... without gaps, and the simulated
/// clock can only move forward. CommitLedger checks those properties
/// from the telemetry stream, so any executor that speaks SolveObserver
/// is checkable without test hooks into its internals.

namespace bars::verify {

class ScheduleController;

/// Observes one solve and checks the commit bookkeeping:
///  - generation sequence: commit g of block b arrives exactly when b
///    has committed g times before (no lost, duplicated, or reordered
///    commit per block);
///  - virtual time: non-decreasing per block, and globally
///    non-decreasing in commit order (the replay emits commits in
///    simulated-clock order);
///  - staleness: every commit's halo staleness stays within the
///    configured bound (0 = unbounded);
///  - finish accounting: SolveFinishEvent::block_commits equals the
///    commits observed, and max_staleness covers the per-commit maxima.
class CommitLedger final : public telemetry::SolveObserver {
 public:
  /// `num_blocks` sizes the per-block tables; `staleness_bound` of 0
  /// disables the staleness check.
  explicit CommitLedger(index_t num_blocks, index_t staleness_bound = 0);

  void on_block_commit(const telemetry::BlockCommitEvent& ev) override;
  void on_finish(const telemetry::SolveFinishEvent& ev) override;

  /// Forget everything (for re-runnable explorer bodies).
  void reset();

  [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
    return errors_;
  }
  [[nodiscard]] index_t total_commits() const noexcept {
    return total_commits_;
  }
  [[nodiscard]] index_t commits_of(index_t block) const;
  [[nodiscard]] index_t max_staleness_seen() const noexcept {
    return max_staleness_;
  }

  /// Forward accumulated errors to the controller as "invariant"
  /// violations (call from the explorer body after the solve).
  void report_to(ScheduleController& controller) const;

 private:
  void fail(std::string msg);

  index_t num_blocks_;
  index_t staleness_bound_;
  std::vector<index_t> generation_;  ///< commits observed per block
  std::vector<value_t> block_vt_;    ///< last virtual_time per block
  value_t last_vt_ = 0.0;
  index_t total_commits_ = 0;
  index_t max_staleness_ = 0;
  bool finished_ = false;
  std::vector<std::string> errors_;  ///< capped
};

}  // namespace bars::verify

// ServiceStats lives in the service layer; the accounting identity is a
// free function so bars_verify needs only the header.
namespace bars::service {
struct ServiceStats;
}

namespace bars::verify {

/// Check the service outcome-accounting identity on a *quiescent*
/// service (queue drained, nothing active or parked):
///   submitted == solved + rejected_* + deadline_expired + cancelled
///              + failed.
/// Returns "" when it holds, else a description of the imbalance.
[[nodiscard]] std::string outcome_accounting_violation(
    const service::ServiceStats& stats);

}  // namespace bars::verify

#include "backend/simd_kernel.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/annotations.hpp"
#include "common/check.hpp"

namespace bars::backend {

bool simd_available() noexcept {
  return detail::simd_compiled() && detail::simd_cpu_supported();
}

namespace {

constexpr index_t kLanes = 4;  ///< doubles per __m256d

/// Per-row (col, val) split staged row-major before lane interleaving.
struct RowSplit {
  std::vector<index_t> col;
  std::vector<value_t> val;
};

/// Pack one group's rows lane-interleaved, padded to the widest row.
/// `rows` spans the whole block; group g covers [4g, min(4g+4, m)).
void pack_group(const std::vector<RowSplit>& rows, index_t g, index_t m,
                std::vector<index_t>& group_ptr,
                std::vector<std::int32_t>& pcol, std::vector<value_t>& pval) {
  const index_t first = kLanes * g;
  index_t width = 0;
  for (index_t l = 0; l < kLanes && first + l < m; ++l) {
    width = std::max(
        width, static_cast<index_t>(rows[static_cast<std::size_t>(first + l)]
                                        .col.size()));
  }
  for (index_t k = 0; k < width; ++k) {
    for (index_t l = 0; l < kLanes; ++l) {
      const index_t r = first + l;
      if (r < m &&
          k < static_cast<index_t>(
                  rows[static_cast<std::size_t>(r)].col.size())) {
        const RowSplit& row = rows[static_cast<std::size_t>(r)];
        pcol.push_back(
            static_cast<std::int32_t>(row.col[static_cast<std::size_t>(k)]));
        pval.push_back(row.val[static_cast<std::size_t>(k)]);
      } else {
        // Padding: value 0 at column 0 — gathers an in-bounds element
        // and multiplies it by zero.
        pcol.push_back(0);
        pval.push_back(0.0);
      }
    }
  }
  group_ptr.push_back(group_ptr.back() + width);
}

}  // namespace

SimdBlockSweepKernel::SimdBlockSweepKernel(const Csr& a, const Vector& b,
                                           RowPartition partition,
                                           const KernelConfig& config)
    : b_(&b),
      partition_(std::move(partition)),
      local_iters_(config.local_iters),
      omega_(config.local_omega) {
  if (!simd_available()) {
    throw backend_unsupported(
        "simd backend: AVX2+FMA not available on this machine/build");
  }
  if (config.sweep != LocalSweep::kJacobi) {
    throw backend_unsupported(
        "simd backend: only Jacobi local sweeps are vectorized");
  }
  if (config.overlap != 0) {
    throw backend_unsupported("simd backend: overlap is not supported");
  }
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("SimdBlockSweepKernel: matrix not square");
  }
  if (partition_.total_rows() != a.rows() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("SimdBlockSweepKernel: size mismatch");
  }
  if (local_iters_ <= 0) {
    throw std::invalid_argument(
        "SimdBlockSweepKernel: local_iters must be > 0");
  }
  if (omega_ <= 0.0 || omega_ >= 2.0) {
    throw std::invalid_argument("SimdBlockSweepKernel: omega must be in (0,2)");
  }
  if (a.rows() > std::numeric_limits<std::int32_t>::max()) {
    throw backend_unsupported(
        "simd backend: matrix exceeds 32-bit gather index range");
  }

  const index_t q = partition_.num_blocks();
  blocks_.resize(static_cast<std::size_t>(q));
  std::vector<RowSplit> local_rows;
  std::vector<RowSplit> global_rows;
  for (index_t bi = 0; bi < q; ++bi) {
    detail::SimdBlockLayout& blk = blocks_[static_cast<std::size_t>(bi)];
    const RowBlock range = partition_.block(bi);
    blk.lo = range.begin;
    blk.hi = range.end;
    blk.m = blk.hi - blk.lo;
    blk.full_groups = blk.m / kLanes;
    blk.num_groups = (blk.m + kLanes - 1) / kLanes;

    // Pass 1: the halo (sorted unique columns outside the block) —
    // identical to the scalar kernel, so both backends snapshot the
    // same values and see the same staleness.
    for (index_t i = blk.lo; i < blk.hi; ++i) {
      for (index_t j : a.row_cols(i)) {
        if (j < blk.lo || j >= blk.hi) blk.halo.push_back(j);
      }
    }
    std::sort(blk.halo.begin(), blk.halo.end());
    blk.halo.erase(std::unique(blk.halo.begin(), blk.halo.end()),
                   blk.halo.end());

    // Pass 2: per-row local/global split, staged row-major.
    local_rows.assign(static_cast<std::size_t>(blk.m), {});
    global_rows.assign(static_cast<std::size_t>(blk.m), {});
    for (index_t i = blk.lo; i < blk.hi; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      const std::size_t li = static_cast<std::size_t>(i - blk.lo);
      value_t diag = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t j = cols[k];
        if (j == i) {
          diag = vals[k];
        } else if (j >= blk.lo && j < blk.hi) {
          local_rows[li].col.push_back(j - blk.lo);
          local_rows[li].val.push_back(vals[k]);
        } else {
          const auto it =
              std::lower_bound(blk.halo.begin(), blk.halo.end(), j);
          global_rows[li].col.push_back(
              static_cast<index_t>(it - blk.halo.begin()));
          global_rows[li].val.push_back(vals[k]);
        }
      }
      if (diag == 0.0) {
        throw std::invalid_argument(
            "SimdBlockSweepKernel: zero diagonal entry");
      }
      blk.diag.push_back(diag);
    }

    // Pass 3: lane-interleave into padded slices.
    blk.lgroup_ptr.push_back(0);
    blk.ggroup_ptr.push_back(0);
    for (index_t g = 0; g < blk.num_groups; ++g) {
      pack_group(local_rows, g, blk.m, blk.lgroup_ptr, blk.lcol, blk.lval);
      pack_group(global_rows, g, blk.m, blk.ggroup_ptr, blk.gcol, blk.gval);
    }

    // Scratch padded to full groups so vector stores never run past
    // the end; update() never allocates.
    const std::size_t padded =
        static_cast<std::size_t>(kLanes * blk.num_groups);
    blk.scratch_s.assign(padded, 0.0);
    blk.scratch_a.assign(padded, 0.0);
    blk.scratch_b.assign(padded, 0.0);
  }
}

void SimdBlockSweepKernel::set_per_block_iters(
    std::vector<index_t> per_block) {
  if (static_cast<index_t>(per_block.size()) != num_blocks()) {
    throw std::invalid_argument(
        "set_per_block_iters: size must equal num_blocks()");
  }
  for (index_t k : per_block) {
    if (k <= 0) {
      throw std::invalid_argument(
          "set_per_block_iters: sweep counts must be >= 1");
    }
  }
  per_block_iters_ = std::move(per_block);
}

void SimdBlockSweepKernel::set_rhs(const Vector& b) {
  if (static_cast<index_t>(b.size()) != num_rows()) {
    throw std::invalid_argument("set_rhs: size must equal num_rows()");
  }
  b_ = &b;
}

index_t SimdBlockSweepKernel::block_local_iters(index_t block) const {
  return per_block_iters_.empty()
             ? local_iters_
             : per_block_iters_[static_cast<std::size_t>(block)];
}

index_t SimdBlockSweepKernel::num_blocks() const {
  return partition_.num_blocks();
}

index_t SimdBlockSweepKernel::num_rows() const {
  return partition_.total_rows();
}

std::span<const index_t> SimdBlockSweepKernel::halo(index_t block) const {
  return blocks_[static_cast<std::size_t>(block)].halo;
}

std::pair<index_t, index_t> SimdBlockSweepKernel::rows(index_t block) const {
  const detail::SimdBlockLayout& blk =
      blocks_[static_cast<std::size_t>(block)];
  return {blk.lo, blk.hi};
}

BARS_HOT_NOALLOC void SimdBlockSweepKernel::update(
    index_t block, std::span<const value_t> halo_values,
    std::span<value_t> x, const gpusim::ExecContext& ctx) const {
  const detail::SimdBlockLayout& blk =
      blocks_[static_cast<std::size_t>(block)];
  BARS_DCHECK(halo_values.size() == blk.halo.size())
      << "block " << block << " halo size " << halo_values.size()
      << " != " << blk.halo.size() << " at vt " << ctx.virtual_time;
  BARS_DCHECK(static_cast<index_t>(x.size()) == num_rows())
      << "block " << block << " iterate size " << x.size() << " at vt "
      << ctx.virtual_time;
  detail::simd_update_block(blk, halo_values, b_->data(), x, omega_,
                            block_local_iters(block), ctx.failed_components);
}

}  // namespace bars::backend

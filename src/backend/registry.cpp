#include "backend/registry.hpp"

#include <stdexcept>
#include <utility>

#include "backend/block_jacobi_kernel.hpp"
#include "backend/simd_kernel.hpp"
#include "common/annotations.hpp"

namespace bars::backend {

namespace {

class ScalarBackend final : public KernelBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "scalar";
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    // parallel_commit_safe is the backend's best case; a kernel built
    // with overlap > 0 reports false itself.
    return {/*parallel_commit_safe=*/true, /*deterministic=*/true,
            /*vector_width=*/1};
  }
  [[nodiscard]] bool available() const noexcept override { return true; }

  [[nodiscard]] std::unique_ptr<BlockSweepKernel> make_kernel(
      const Csr& a, const Vector& b, RowPartition partition,
      const KernelConfig& config) const override {
    return std::make_unique<BlockJacobiKernel>(
        a, b, std::move(partition), config.local_iters, config.sweep,
        config.local_omega, config.overlap);
  }
};

class SimdBackend final : public KernelBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "simd";
  }
  [[nodiscard]] BackendCaps caps() const noexcept override {
    return {/*parallel_commit_safe=*/true, /*deterministic=*/true,
            /*vector_width=*/4};
  }
  [[nodiscard]] bool available() const noexcept override {
    return simd_available();
  }

  [[nodiscard]] std::unique_ptr<BlockSweepKernel> make_kernel(
      const Csr& a, const Vector& b, RowPartition partition,
      const KernelConfig& config) const override {
    return std::make_unique<SimdBlockSweepKernel>(a, b, std::move(partition),
                                                  config);
  }
};

struct Registry {
  common::Mutex mu;
  std::vector<std::unique_ptr<KernelBackend>> providers BARS_GUARDED_BY(mu);

  Registry() {
    providers.push_back(std::make_unique<ScalarBackend>());
    providers.push_back(std::make_unique<SimdBackend>());
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

std::string known_names_locked(const Registry& r)
    BARS_NO_THREAD_SAFETY_ANALYSIS {
  std::string names;
  for (const auto& p : r.providers) {
    if (!names.empty()) names += ", ";
    names += p->name();
  }
  return names;
}

const KernelBackend* find_locked(const Registry& r, const std::string& name)
    BARS_NO_THREAD_SAFETY_ANALYSIS {
  for (const auto& p : r.providers) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

/// Count a resolution on the caller's registry. Setup path: may
/// allocate (the record-hot contract applies to inc(), not here).
void count_use(telemetry::MetricsRegistry* metrics, const KernelBackend& used,
               bool fell_back) {
  if (metrics == nullptr) return;
  metrics->counter("backend_used_" + std::string(used.name())).inc();
  if (fell_back) metrics->counter("backend_fallbacks").inc();
}

}  // namespace

std::vector<std::string> backend_names() {
  Registry& r = registry();
  common::MutexLock lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.providers.size());
  for (const auto& p : r.providers) names.emplace_back(p->name());
  return names;
}

const KernelBackend& find_backend(const std::string& name) {
  Registry& r = registry();
  common::MutexLock lock(r.mu);
  if (name.empty() || name == "auto") {
    for (const auto& p : r.providers) {
      if (p->name() != "scalar" && p->available()) return *p;
    }
    const KernelBackend* scalar = find_locked(r, "scalar");
    return *scalar;  // always registered
  }
  if (const KernelBackend* p = find_locked(r, name)) return *p;
  throw std::invalid_argument("unknown backend '" + name +
                              "'; valid backends: " + known_names_locked(r) +
                              " (or 'auto')");
}

void register_backend(std::unique_ptr<KernelBackend> provider) {
  if (provider == nullptr) {
    throw std::invalid_argument("register_backend: null provider");
  }
  const std::string name(provider->name());
  if (name.empty() || name == "auto") {
    throw std::invalid_argument("register_backend: reserved name '" + name +
                                "'");
  }
  Registry& r = registry();
  common::MutexLock lock(r.mu);
  if (find_locked(r, name) != nullptr) {
    throw std::invalid_argument("register_backend: '" + name +
                                "' already registered");
  }
  r.providers.push_back(std::move(provider));
}

const KernelBackend& select_backend(const std::string& name,
                                    telemetry::MetricsRegistry* metrics) {
  const KernelBackend& requested = find_backend(name);
  if (requested.available()) {
    count_use(metrics, requested, /*fell_back=*/false);
    return requested;
  }
  const KernelBackend& scalar = find_backend("scalar");
  count_use(metrics, scalar, /*fell_back=*/true);
  return scalar;
}

std::unique_ptr<BlockSweepKernel> build_kernel(
    const std::string& name, const Csr& a, const Vector& b,
    RowPartition partition, const KernelConfig& config,
    telemetry::MetricsRegistry* metrics) {
  const KernelBackend& chosen = select_backend(name, metrics);
  try {
    // Pass a copy: `partition` must survive for the scalar retry below.
    return chosen.make_kernel(a, b, partition, config);
  } catch (const backend_unsupported&) {
    // The selected backend cannot express this configuration (e.g.
    // Gauss-Seidel sweeps on "simd"): degrade to scalar, which
    // supports the full KernelConfig surface.
    const KernelBackend& scalar = find_backend("scalar");
    count_use(metrics, scalar, /*fell_back=*/true);
    return scalar.make_kernel(a, b, std::move(partition), config);
  }
}

}  // namespace bars::backend

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "telemetry/metrics.hpp"

/// \file registry.hpp
/// String-keyed registry of compute backends, mirroring the solver
/// registry (core/registry.hpp): tools and options structs carry a
/// backend *name*, and the lookup happens once per solve at setup time.
///
/// Built-in providers:
///   "scalar" — BlockJacobiKernel, always available, full KernelConfig.
///   "simd"   — AVX2/FMA padded-slice kernel; available when compiled
///              in AND the cpu executes AVX2+FMA; Jacobi, overlap 0.
///   "auto"   — resolves to "simd" when available, else "scalar".
///
/// Degradation policy (build_kernel): a requested backend that is
/// unavailable on this machine, or cannot express the configuration,
/// degrades to "scalar" — recorded on the caller's MetricsRegistry as
/// `backend_fallbacks` plus a per-backend `backend_used_<name>`
/// counter. Unknown names always throw std::invalid_argument: a typo
/// is a bug, a missing ISA is an environment.

namespace bars::backend {

/// Names of all registered backends, in registration order ("auto" is
/// a selection alias, not listed).
[[nodiscard]] std::vector<std::string> backend_names();

/// Look up a backend by name ("auto" resolves to the best available
/// provider). Throws std::invalid_argument for unknown names (message
/// lists the valid ones). The reference stays valid for the process
/// lifetime — backends are never unregistered.
[[nodiscard]] const KernelBackend& find_backend(const std::string& name);

/// Register a custom provider. Throws std::invalid_argument when the
/// name is empty, "auto", or already taken. The registry takes
/// ownership; the backend lives for the rest of the process.
void register_backend(std::unique_ptr<KernelBackend> provider);

/// Resolve `name` ("" behaves like "auto") to a usable provider,
/// degrading to "scalar" when the named backend is not available on
/// this machine. When `metrics` is non-null the resolution is recorded:
/// `backend_used_<resolved>` always, `backend_fallbacks` when the
/// request degraded. Throws std::invalid_argument for unknown names.
[[nodiscard]] const KernelBackend& select_backend(
    const std::string& name, telemetry::MetricsRegistry* metrics = nullptr);

/// The one-stop kernel factory every solver front-end uses: select the
/// backend (with availability fallback, above), then build the kernel —
/// additionally degrading to "scalar" when the selected backend rejects
/// this particular `config` with backend_unsupported (also counted as a
/// fallback). Input errors (std::invalid_argument from the kernel
/// constructor) propagate unchanged.
[[nodiscard]] std::unique_ptr<BlockSweepKernel> build_kernel(
    const std::string& name, const Csr& a, const Vector& b,
    RowPartition partition, const KernelConfig& config,
    telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace bars::backend

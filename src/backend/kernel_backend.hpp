#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/block_kernel.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

/// \file kernel_backend.hpp
/// The compute-backend seam: every provider of the paper's block-sweep
/// numerics (scalar CSR, SIMD sliced layout, future CUDA/sharded
/// backends) sits behind KernelBackend, and both executors — the
/// virtual-time gpusim::AsyncExecutor and the host-thread
/// thread_async_solve — consume the kernels it builds through
/// BlockSweepKernel without knowing which provider made them.
///
/// Contract summary (docs/BACKENDS.md is the authoritative version):
///   - caps() advertises what the backend guarantees *at best*; the
///     kernel a concrete configuration produces may be stricter (e.g.
///     overlap > 0 disables parallel commits on the scalar backend).
///   - available() is a cheap runtime probe (ISA detection, device
///     presence). init() is the fail-fast lifecycle entry: it throws
///     backend_unsupported when the backend cannot run here.
///   - make_kernel() either returns a working kernel or throws
///     backend_unsupported for configurations the backend cannot
///     express (callers degrade to the scalar backend; see
///     registry.hpp's build_kernel for the policy).

namespace bars {

/// Flavor of the local sweeps inside a block. Lives at namespace scope
/// (not inside a backend) because it is part of the cross-backend
/// kernel configuration vocabulary.
enum class LocalSweep {
  kJacobi,       ///< Algorithm 1 as written ("Jacobi-like" local updates)
  kGaussSeidel,  ///< local forward Gauss-Seidel (ablation / extension)
};

namespace backend {

/// What a backend guarantees about the kernels it builds.
struct BackendCaps {
  /// Kernels may honor the BlockKernel parallel-commit contract
  /// (distinct blocks updated concurrently). Per-kernel
  /// parallel_commit_safe() remains authoritative for a concrete
  /// configuration.
  bool parallel_commit_safe = true;
  /// Same inputs → bitwise-identical outputs on this machine. All
  /// current backends are deterministic; a backend doing atomics-order
  /// dependent reductions would clear this.
  bool deterministic = true;
  /// SIMD lanes (values per vector) the sweep processes at once;
  /// 1 = scalar.
  index_t vector_width = 1;
};

/// Thrown when a backend cannot run on this machine or cannot express
/// the requested kernel configuration. Callers that can degrade should
/// catch this and fall back to the scalar backend (build_kernel in
/// registry.hpp implements exactly that policy).
class backend_unsupported : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cross-backend kernel configuration: the sweep parameters every
/// provider understands (or rejects with backend_unsupported).
struct KernelConfig {
  index_t local_iters = 1;            ///< the k of async-(k)
  LocalSweep sweep = LocalSweep::kJacobi;
  value_t local_omega = 1.0;          ///< local relaxation weight
  index_t overlap = 0;                ///< restricted additive Schwarz rows
};

/// The kernel interface the solvers program against: gpusim's
/// BlockKernel (halo/rows/update — what the executors need) plus the
/// RHS/partition bookkeeping the solver front-ends and the service
/// layer's plan cache rely on.
class BlockSweepKernel : public gpusim::BlockKernel {
 public:
  /// Repoint the right-hand side without rebuilding the per-block
  /// analysis; the new vector must match num_rows() and outlive all
  /// subsequent update() calls. Callers serialize set_rhs() against
  /// concurrent update()s.
  virtual void set_rhs(const Vector& b) = 0;
  /// The right-hand side currently bound to the kernel.
  [[nodiscard]] virtual const Vector& rhs() const noexcept = 0;

  [[nodiscard]] virtual const RowPartition& partition() const noexcept = 0;
  [[nodiscard]] virtual index_t local_iters() const noexcept = 0;
  [[nodiscard]] virtual index_t overlap() const noexcept = 0;

  /// Override the sweep count per block (adaptive async-(k)). Size must
  /// equal num_blocks(); values must be >= 1. Backends that cannot vary
  /// the count per block throw backend_unsupported.
  virtual void set_per_block_iters(std::vector<index_t> per_block) = 0;
  /// Sweeps block b will perform.
  [[nodiscard]] virtual index_t block_local_iters(index_t block) const = 0;

  /// Registry name of the backend that built this kernel ("scalar",
  /// "simd", ...). Telemetry uses it for per-backend counters.
  [[nodiscard]] virtual std::string_view backend_name() const noexcept = 0;
};

/// A provider of BlockSweepKernels. Stateless and immortal once
/// registered (the registry hands out references, never ownership).
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  /// Registry key, stable across the process ("scalar", "simd", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual BackendCaps caps() const noexcept = 0;

  /// Cheap runtime probe: can this backend run on this machine at all
  /// (ISA present, device reachable)? Never throws.
  [[nodiscard]] virtual bool available() const noexcept = 0;

  /// Lifecycle entry: fail fast when the backend cannot run here.
  /// Default implementation throws backend_unsupported when
  /// available() is false; backends with real setup (device contexts,
  /// pinned pools) override and may still throw on setup failure.
  virtual void init() const {
    if (!available()) {
      throw backend_unsupported(std::string(name()) +
                                " backend is not available on this machine");
    }
  }
  /// Lifecycle exit; default no-op. Must be safe to call without a
  /// prior init() and more than once.
  virtual void finalize() const {}

  /// Build a kernel over (a, b, partition) with the given sweep
  /// configuration. Throws backend_unsupported when the backend cannot
  /// express `config` or cannot run here; throws std::invalid_argument
  /// for malformed inputs (non-square matrix, zero diagonal, ...), same
  /// as constructing the scalar kernel directly.
  [[nodiscard]] virtual std::unique_ptr<BlockSweepKernel> make_kernel(
      const Csr& a, const Vector& b, RowPartition partition,
      const KernelConfig& config) const = 0;
};

}  // namespace backend
}  // namespace bars

#include "backend/block_jacobi_kernel.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/annotations.hpp"
#include "common/check.hpp"

namespace bars {

BlockJacobiKernel::BlockJacobiKernel(const Csr& a, const Vector& b,
                                     RowPartition partition,
                                     index_t local_iters, LocalSweep sweep,
                                     value_t local_omega, index_t overlap)
    : b_(&b),
      partition_(std::move(partition)),
      local_iters_(local_iters),
      sweep_(sweep),
      omega_(local_omega),
      overlap_(overlap) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("BlockJacobiKernel: matrix not square");
  }
  if (partition_.total_rows() != a.rows() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("BlockJacobiKernel: size mismatch");
  }
  if (local_iters_ <= 0) {
    throw std::invalid_argument("BlockJacobiKernel: local_iters must be > 0");
  }
  if (omega_ <= 0.0 || omega_ >= 2.0) {
    throw std::invalid_argument("BlockJacobiKernel: omega must be in (0,2)");
  }
  if (overlap_ < 0) {
    throw std::invalid_argument("BlockJacobiKernel: overlap must be >= 0");
  }

  const index_t n = a.rows();
  const index_t q = partition_.num_blocks();
  blocks_.resize(static_cast<std::size_t>(q));
  for (index_t bi = 0; bi < q; ++bi) {
    BlockData& blk = blocks_[bi];
    const RowBlock range = partition_.block(bi);
    blk.lo = range.begin;
    blk.hi = range.end;
    blk.work_lo = std::max<index_t>(blk.lo - overlap_, 0);
    blk.work_hi = std::min<index_t>(blk.hi + overlap_, n);

    // Pass 1: collect the halo (sorted unique columns outside the
    // working range).
    for (index_t i = blk.work_lo; i < blk.work_hi; ++i) {
      for (index_t j : a.row_cols(i)) {
        if (j < blk.work_lo || j >= blk.work_hi) blk.halo.push_back(j);
      }
    }
    std::sort(blk.halo.begin(), blk.halo.end());
    blk.halo.erase(std::unique(blk.halo.begin(), blk.halo.end()),
                   blk.halo.end());

    // Pass 2: split every working row into diagonal / local / global.
    blk.lrow_ptr.push_back(0);
    blk.grow_ptr.push_back(0);
    for (index_t i = blk.work_lo; i < blk.work_hi; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      value_t diag = 0.0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t j = cols[k];
        if (j == i) {
          diag = vals[k];
        } else if (j >= blk.work_lo && j < blk.work_hi) {
          blk.lcol.push_back(j - blk.work_lo);
          blk.lval.push_back(vals[k]);
        } else {
          const auto it =
              std::lower_bound(blk.halo.begin(), blk.halo.end(), j);
          blk.gcol.push_back(
              static_cast<index_t>(it - blk.halo.begin()));
          blk.gval.push_back(vals[k]);
        }
      }
      if (diag == 0.0) {
        throw std::invalid_argument("BlockJacobiKernel: zero diagonal entry");
      }
      blk.diag.push_back(diag);
      blk.lrow_ptr.push_back(static_cast<index_t>(blk.lcol.size()));
      blk.grow_ptr.push_back(static_cast<index_t>(blk.gcol.size()));
    }

    // Size the sweep scratch once; update() never allocates.
    const std::size_t m = static_cast<std::size_t>(blk.work_hi - blk.work_lo);
    blk.scratch_s.resize(m);
    blk.scratch_a.resize(m);
    blk.scratch_b.resize(m);
  }
}

void BlockJacobiKernel::set_per_block_iters(std::vector<index_t> per_block) {
  if (static_cast<index_t>(per_block.size()) != num_blocks()) {
    throw std::invalid_argument(
        "set_per_block_iters: size must equal num_blocks()");
  }
  for (index_t k : per_block) {
    if (k <= 0) {
      throw std::invalid_argument(
          "set_per_block_iters: sweep counts must be >= 1");
    }
  }
  per_block_iters_ = std::move(per_block);
}

void BlockJacobiKernel::set_rhs(const Vector& b) {
  if (static_cast<index_t>(b.size()) != num_rows()) {
    throw std::invalid_argument("set_rhs: size must equal num_rows()");
  }
  b_ = &b;
}

index_t BlockJacobiKernel::block_local_iters(index_t block) const {
  return per_block_iters_.empty()
             ? local_iters_
             : per_block_iters_[static_cast<std::size_t>(block)];
}

index_t BlockJacobiKernel::num_blocks() const {
  return partition_.num_blocks();
}

index_t BlockJacobiKernel::num_rows() const {
  return partition_.total_rows();
}

std::span<const index_t> BlockJacobiKernel::halo(index_t block) const {
  return blocks_[static_cast<std::size_t>(block)].halo;
}

std::pair<index_t, index_t> BlockJacobiKernel::rows(index_t block) const {
  const BlockData& blk = blocks_[static_cast<std::size_t>(block)];
  return {blk.lo, blk.hi};
}

BARS_HOT_NOALLOC void BlockJacobiKernel::update(
    index_t block, std::span<const value_t> halo_values,
    std::span<value_t> x, const gpusim::ExecContext& ctx) const {
  const BlockData& blk = blocks_[static_cast<std::size_t>(block)];
  BARS_DCHECK(halo_values.size() == blk.halo.size())
      << "block " << block << " halo size " << halo_values.size()
      << " != " << blk.halo.size() << " at vt " << ctx.virtual_time;
  BARS_DCHECK(static_cast<index_t>(x.size()) == num_rows())
      << "block " << block << " iterate size " << x.size() << " at vt "
      << ctx.virtual_time;
  const index_t m = blk.work_hi - blk.work_lo;
  const index_t sweeps = block_local_iters(block);

  // First sweep, fused: the frozen s_i = b_i - (global part) of Eq. 4
  // is folded into the same accumulator chain as the local part, so
  // async-(1) makes a single pass with no staging array. s_i is spilled
  // to scratch only when later sweeps will need it. All buffers are
  // per-block scratch sized at construction — no heap allocation here.
  value_t* s = blk.scratch_s.data();
  value_t* cur = blk.scratch_a.data();
  value_t* nxt = blk.scratch_b.data();
  const value_t* xw = x.data() + blk.work_lo;  // working range, old values

  const value_t* rhs = b_->data();

  if (sweep_ == LocalSweep::kJacobi) {
    for (index_t li = 0; li < m; ++li) {
      value_t acc = rhs[blk.work_lo + li];
      for (index_t k = blk.grow_ptr[li]; k < blk.grow_ptr[li + 1]; ++k) {
        acc -= blk.gval[k] * halo_values[blk.gcol[k]];
      }
      if (sweeps > 1) s[li] = acc;
      for (index_t k = blk.lrow_ptr[li]; k < blk.lrow_ptr[li + 1]; ++k) {
        acc -= blk.lval[k] * xw[blk.lcol[k]];
      }
      cur[li] = (1.0 - omega_) * xw[li] + omega_ * (acc / blk.diag[li]);
    }
    for (index_t sweep = 1; sweep < sweeps; ++sweep) {
      for (index_t li = 0; li < m; ++li) {
        value_t acc = s[li];
        for (index_t k = blk.lrow_ptr[li]; k < blk.lrow_ptr[li + 1]; ++k) {
          acc -= blk.lval[k] * cur[blk.lcol[k]];
        }
        nxt[li] = (1.0 - omega_) * cur[li] + omega_ * (acc / blk.diag[li]);
      }
      std::swap(cur, nxt);
    }
  } else {
    // Gauss-Seidel sweeps are in place, so seed the iterate first.
    std::copy(xw, xw + m, cur);
    for (index_t li = 0; li < m; ++li) {
      value_t acc = rhs[blk.work_lo + li];
      for (index_t k = blk.grow_ptr[li]; k < blk.grow_ptr[li + 1]; ++k) {
        acc -= blk.gval[k] * halo_values[blk.gcol[k]];
      }
      if (sweeps > 1) s[li] = acc;
      for (index_t k = blk.lrow_ptr[li]; k < blk.lrow_ptr[li + 1]; ++k) {
        acc -= blk.lval[k] * cur[blk.lcol[k]];
      }
      cur[li] = (1.0 - omega_) * cur[li] + omega_ * (acc / blk.diag[li]);
    }
    for (index_t sweep = 1; sweep < sweeps; ++sweep) {
      for (index_t li = 0; li < m; ++li) {
        value_t acc = s[li];
        for (index_t k = blk.lrow_ptr[li]; k < blk.lrow_ptr[li + 1]; ++k) {
          acc -= blk.lval[k] * cur[blk.lcol[k]];
        }
        cur[li] = (1.0 - omega_) * cur[li] + omega_ * (acc / blk.diag[li]);
      }
    }
  }

  // Commit only the owned rows (restricted additive Schwarz when
  // overlapping), honoring the component fault mask (failed components
  // keep their previous value — their core is gone, Section 4.5).
  const std::vector<std::uint8_t>* mask = ctx.failed_components;
  for (index_t gi = blk.lo; gi < blk.hi; ++gi) {
    if (mask && (*mask)[gi]) continue;
    x[gi] = cur[gi - blk.work_lo];
  }
}

}  // namespace bars

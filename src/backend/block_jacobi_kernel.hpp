#pragma once

#include <string_view>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "gpusim/block_kernel.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

/// \file block_jacobi_kernel.hpp
/// The scalar backend's kernel — the numeric core of Algorithm 1 /
/// Eq. (4): for one row block ("subdomain"), freeze the off-block
/// contribution using the halo snapshot, then perform `local_iters`
/// relaxation sweeps on the local sub-system before committing.

namespace bars {

/// BlockSweepKernel implementation over a CSR matrix and a contiguous
/// row partition. Precomputes, per block: the halo index list and a
/// local / global split of each row's entries, so one block update
/// touches only block-local data plus the snapshot.
///
/// With `overlap > 0` each block's *working* range extends `overlap`
/// rows beyond its owned range on both sides (restricted additive
/// Schwarz: compute on the extended subdomain, commit only the owned
/// rows). The overlap rows are seeded from the current iterate at
/// update time; the halo consists of columns outside the working range.
///
/// Construct through the backend registry (backend::build_kernel or
/// find_backend("scalar")) — bars_lint's `backend-seam` rule bans
/// direct construction outside src/backend.
class BlockJacobiKernel final : public backend::BlockSweepKernel {
 public:
  /// Throws if `a` is not square, has a zero diagonal, or the partition
  /// does not cover its rows.
  BlockJacobiKernel(const Csr& a, const Vector& b, RowPartition partition,
                    index_t local_iters,
                    LocalSweep sweep = LocalSweep::kJacobi,
                    value_t local_omega = 1.0, index_t overlap = 0);

  [[nodiscard]] index_t num_blocks() const override;
  [[nodiscard]] index_t num_rows() const override;
  [[nodiscard]] std::span<const index_t> halo(index_t block) const override;
  [[nodiscard]] std::pair<index_t, index_t> rows(
      index_t block) const override;

  void update(index_t block, std::span<const value_t> halo_values,
              std::span<value_t> x,
              const gpusim::ExecContext& ctx) const override;

  /// Without overlap an update touches only its owned rows, so the
  /// executor may run distinct blocks concurrently (the per-block
  /// scratch buffers keep that race-free). Overlapping subdomains read
  /// neighbor rows of x at update time and must stay serialized.
  [[nodiscard]] bool parallel_commit_safe() const override {
    return overlap_ == 0;
  }

  [[nodiscard]] index_t local_iters() const noexcept override {
    return local_iters_;
  }
  [[nodiscard]] const RowPartition& partition() const noexcept override {
    return partition_;
  }

  /// Override the sweep count per block (adaptive async-(k), the
  /// paper's Section 5 tuning question): block b performs
  /// per_block[b] local sweeps instead of the uniform local_iters.
  /// Size must equal num_blocks(); values must be >= 1.
  void set_per_block_iters(std::vector<index_t> per_block) override;

  /// Sweeps block b will perform.
  [[nodiscard]] index_t block_local_iters(index_t block) const override;

  [[nodiscard]] index_t overlap() const noexcept override { return overlap_; }

  /// Repoint the right-hand side without rebuilding the per-block
  /// analysis (halo lists, local/global splits, diagonal factors) —
  /// those depend only on the matrix structure and partition, never on
  /// b. This is what lets the service layer's plan cache reuse one
  /// kernel across requests and run multi-RHS batches. The new vector
  /// must match num_rows() and outlive all subsequent update() calls;
  /// callers must serialize set_rhs() against concurrent update()s
  /// (the plan cache holds a per-plan lock for exactly this reason).
  void set_rhs(const Vector& b) override;

  /// The right-hand side currently bound to the kernel.
  [[nodiscard]] const Vector& rhs() const noexcept override { return *b_; }

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "scalar";
  }

 private:
  struct BlockData {
    index_t lo = 0;       ///< owned range (committed rows)
    index_t hi = 0;
    index_t work_lo = 0;  ///< working range (owned + overlap)
    index_t work_hi = 0;
    std::vector<index_t> halo;  ///< global indices read from outside

    // Local sub-matrix (strictly off-diagonal, columns as local ids).
    std::vector<index_t> lrow_ptr;
    std::vector<index_t> lcol;
    std::vector<value_t> lval;

    // Global coupling (columns as positions into `halo`).
    std::vector<index_t> grow_ptr;
    std::vector<index_t> gcol;
    std::vector<value_t> gval;

    std::vector<value_t> diag;  ///< a_ii per local row

    // Reusable sweep buffers, sized to the working range at
    // construction so update() performs no per-visit heap allocation.
    // `mutable` because update() is logically const; safe under
    // concurrent updates of *distinct* blocks (each block only ever
    // touches its own scratch).
    mutable std::vector<value_t> scratch_s;   ///< frozen s_i (Eq. 4)
    mutable std::vector<value_t> scratch_a;   ///< sweep iterate
    mutable std::vector<value_t> scratch_b;   ///< Jacobi double buffer
  };

  const Vector* b_;  ///< current RHS (never null; repointed by set_rhs)
  RowPartition partition_;
  index_t local_iters_;
  LocalSweep sweep_;
  value_t omega_;
  index_t overlap_;
  std::vector<BlockData> blocks_;
  std::vector<index_t> per_block_iters_;  ///< empty = uniform local_iters_
};

}  // namespace bars

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "gpusim/block_kernel.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

/// \file simd_kernel.hpp
/// The SIMD backend's kernel: the same two-stage block sweep as the
/// scalar BlockJacobiKernel, but over a vector-width-padded slice
/// layout so each AVX2 FMA processes four block rows at once.
///
/// Layout (per block, SELL-C-style with C = 4 = doubles per __m256d):
/// rows are cut into groups of 4 consecutive rows; within a group every
/// row is padded to the group's maximum entry count, and entries are
/// stored lane-interleaved — slot k of lane l lives at packed index
/// (base + k) * 4 + l — separately for the block-local split (column
/// ids local to the block, gathered from the iterate / sweep scratch)
/// and the global split (positions into the halo snapshot). Padding
/// entries carry value 0 and column 0, so they contribute nothing while
/// keeping every lane's trip count identical. Column ids are stored as
/// int32 (the gather index width); value data stays double.
///
/// Numerics policy: identical accumulation ORDER to the scalar kernel
/// (rhs, minus global entries, minus local entries, divide by the
/// diagonal) — only the grouping of multiply-add into FMA changes
/// rounding. docs/BACKENDS.md documents the resulting elementwise
/// tolerance; bench/perf_suite enforces it on the paper matrices.
///
/// Restrictions (throws backend_unsupported): Jacobi local sweeps only,
/// no overlap. Adaptive per-block sweep counts are supported.

namespace bars::backend {

namespace detail {

/// True when this binary contains the AVX2+FMA sweep (compiler flag
/// support decided at configure time).
[[nodiscard]] bool simd_compiled() noexcept;
/// True when the CPU we are running on executes AVX2+FMA.
[[nodiscard]] bool simd_cpu_supported() noexcept;

/// Packed per-block slice layout consumed by the vector sweep.
struct SimdBlockLayout {
  index_t lo = 0;  ///< owned row range [lo, hi)
  index_t hi = 0;
  index_t m = 0;            ///< hi - lo
  index_t full_groups = 0;  ///< m / 4 (vector-width groups)
  index_t num_groups = 0;   ///< ceil(m / 4); last may be lane-padded

  std::vector<index_t> halo;  ///< global indices read from outside

  // Local split (columns as block-local row ids), lane-interleaved.
  // Group g's entries occupy packed indices [lgroup_ptr[g] * 4,
  // lgroup_ptr[g + 1] * 4).
  std::vector<index_t> lgroup_ptr;
  std::vector<std::int32_t> lcol;
  std::vector<value_t> lval;

  // Global split (columns as positions into `halo`), lane-interleaved.
  std::vector<index_t> ggroup_ptr;
  std::vector<std::int32_t> gcol;
  std::vector<value_t> gval;

  std::vector<value_t> diag;  ///< a_ii per local row (size m)

  // Sweep scratch, padded to 4 * num_groups so full-width vector
  // stores on the last full group stay in bounds. `mutable` for the
  // same reason as the scalar kernel: update() is logically const and
  // distinct blocks own distinct scratch.
  mutable std::vector<value_t> scratch_s;
  mutable std::vector<value_t> scratch_a;
  mutable std::vector<value_t> scratch_b;
};

/// The vectorized sweep + commit for one block. Lives in the AVX2
/// translation unit; never allocates. `mask` is the executor's failed
/// component mask (may be null).
void simd_update_block(const SimdBlockLayout& blk,
                       std::span<const value_t> halo_values,
                       const value_t* rhs, std::span<value_t> x,
                       value_t omega, index_t sweeps,
                       const std::vector<std::uint8_t>* mask) noexcept;

}  // namespace detail

/// Can the SIMD backend run here (compiled in AND cpu supports it)?
[[nodiscard]] bool simd_available() noexcept;

/// BlockSweepKernel over the padded slice layout above. Construct
/// through the backend registry; throws backend_unsupported when
/// simd_available() is false or the configuration needs Gauss-Seidel
/// sweeps or overlap.
class SimdBlockSweepKernel final : public BlockSweepKernel {
 public:
  SimdBlockSweepKernel(const Csr& a, const Vector& b, RowPartition partition,
                       const KernelConfig& config);

  [[nodiscard]] index_t num_blocks() const override;
  [[nodiscard]] index_t num_rows() const override;
  [[nodiscard]] std::span<const index_t> halo(index_t block) const override;
  [[nodiscard]] std::pair<index_t, index_t> rows(
      index_t block) const override;

  void update(index_t block, std::span<const value_t> halo_values,
              std::span<value_t> x,
              const gpusim::ExecContext& ctx) const override;

  /// No overlap by construction, per-block scratch: always safe.
  [[nodiscard]] bool parallel_commit_safe() const override { return true; }

  [[nodiscard]] index_t local_iters() const noexcept override {
    return local_iters_;
  }
  [[nodiscard]] const RowPartition& partition() const noexcept override {
    return partition_;
  }
  [[nodiscard]] index_t overlap() const noexcept override { return 0; }

  void set_per_block_iters(std::vector<index_t> per_block) override;
  [[nodiscard]] index_t block_local_iters(index_t block) const override;

  void set_rhs(const Vector& b) override;
  [[nodiscard]] const Vector& rhs() const noexcept override { return *b_; }

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "simd";
  }

 private:
  const Vector* b_;
  RowPartition partition_;
  index_t local_iters_;
  value_t omega_;
  std::vector<detail::SimdBlockLayout> blocks_;
  std::vector<index_t> per_block_iters_;  ///< empty = uniform local_iters_
};

}  // namespace bars::backend

/// \file simd_kernel_avx2.cpp
/// The vectorized block sweep. This is the only translation unit built
/// with -mavx2 -mfma (per-file, see src/backend/CMakeLists.txt), so the
/// rest of the library never emits AVX2 instructions and the runtime
/// cpu probe fully guards execution. When the compiler cannot target
/// AVX2 the file degrades to stubs and simd_compiled() reports false.

#include "backend/simd_kernel.hpp"

#include <algorithm>
#include <cstdint>

#if defined(__AVX2__) && defined(__FMA__)
#define BARS_BACKEND_HAS_AVX2 1
#include <immintrin.h>
#else
#define BARS_BACKEND_HAS_AVX2 0
#endif

namespace bars::backend::detail {

bool simd_compiled() noexcept { return BARS_BACKEND_HAS_AVX2 != 0; }

bool simd_cpu_supported() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if BARS_BACKEND_HAS_AVX2

namespace {

/// One padded slice: acc -= vals[k] * source[cols[k]] for four lanes,
/// over the group's entries [begin, end) (packed-entry-group units).
inline __m256d gather_fnmadd(const std::int32_t* cols, const value_t* vals,
                             const value_t* source, index_t begin,
                             index_t end, __m256d acc) {
  for (index_t k = begin; k < end; ++k) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(cols + 4 * k));
    const __m256d v = _mm256_loadu_pd(vals + 4 * k);
    const __m256d g = _mm256_i32gather_pd(source, idx, 8);
    acc = _mm256_fnmadd_pd(v, g, acc);
  }
  return acc;
}

}  // namespace

void simd_update_block(const SimdBlockLayout& blk,
                       std::span<const value_t> halo_values,
                       const value_t* rhs, std::span<value_t> x,
                       value_t omega, index_t sweeps,
                       const std::vector<std::uint8_t>* mask) noexcept {
  const index_t m = blk.m;
  const index_t full = blk.full_groups;
  const value_t* xw = x.data() + blk.lo;
  const value_t* hv = halo_values.data();
  value_t* s = blk.scratch_s.data();
  value_t* cur = blk.scratch_a.data();
  value_t* nxt = blk.scratch_b.data();

  const __m256d vomega = _mm256_set1_pd(omega);
  const __m256d vrest = _mm256_set1_pd(1.0 - omega);

  // First sweep, fused exactly like the scalar kernel: the frozen
  // s_i = b_i - (global part) shares the accumulator chain with the
  // local part and is spilled only when later sweeps need it.
  for (index_t g = 0; g < full; ++g) {
    const index_t r = 4 * g;
    __m256d acc = _mm256_loadu_pd(rhs + blk.lo + r);
    acc = gather_fnmadd(blk.gcol.data(), blk.gval.data(), hv,
                        blk.ggroup_ptr[g], blk.ggroup_ptr[g + 1], acc);
    if (sweeps > 1) _mm256_storeu_pd(s + r, acc);
    acc = gather_fnmadd(blk.lcol.data(), blk.lval.data(), xw,
                        blk.lgroup_ptr[g], blk.lgroup_ptr[g + 1], acc);
    const __m256d xq = _mm256_loadu_pd(xw + r);
    const __m256d d = _mm256_loadu_pd(blk.diag.data() + r);
    const __m256d out = _mm256_fmadd_pd(
        vrest, xq, _mm256_mul_pd(vomega, _mm256_div_pd(acc, d)));
    _mm256_storeu_pd(cur + r, out);
  }
  // Tail rows (< 4) run scalar over the same padded slices: lane l of
  // the last group, padding entries contribute 0.
  for (index_t r = 4 * full; r < m; ++r) {
    const index_t l = r - 4 * full;
    value_t acc = rhs[blk.lo + r];
    for (index_t k = blk.ggroup_ptr[full]; k < blk.ggroup_ptr[full + 1];
         ++k) {
      acc -= blk.gval[4 * k + l] * hv[blk.gcol[4 * k + l]];
    }
    if (sweeps > 1) s[r] = acc;
    for (index_t k = blk.lgroup_ptr[full]; k < blk.lgroup_ptr[full + 1];
         ++k) {
      acc -= blk.lval[4 * k + l] * xw[blk.lcol[4 * k + l]];
    }
    cur[r] = (1.0 - omega) * xw[r] + omega * (acc / blk.diag[r]);
  }

  for (index_t sweep = 1; sweep < sweeps; ++sweep) {
    for (index_t g = 0; g < full; ++g) {
      const index_t r = 4 * g;
      __m256d acc = _mm256_loadu_pd(s + r);
      acc = gather_fnmadd(blk.lcol.data(), blk.lval.data(), cur,
                          blk.lgroup_ptr[g], blk.lgroup_ptr[g + 1], acc);
      const __m256d xq = _mm256_loadu_pd(cur + r);
      const __m256d d = _mm256_loadu_pd(blk.diag.data() + r);
      const __m256d out = _mm256_fmadd_pd(
          vrest, xq, _mm256_mul_pd(vomega, _mm256_div_pd(acc, d)));
      _mm256_storeu_pd(nxt + r, out);
    }
    for (index_t r = 4 * full; r < m; ++r) {
      const index_t l = r - 4 * full;
      value_t acc = s[r];
      for (index_t k = blk.lgroup_ptr[full]; k < blk.lgroup_ptr[full + 1];
           ++k) {
        acc -= blk.lval[4 * k + l] * cur[blk.lcol[4 * k + l]];
      }
      nxt[r] = (1.0 - omega) * cur[r] + omega * (acc / blk.diag[r]);
    }
    std::swap(cur, nxt);
  }

  // Commit the owned rows, honoring the component fault mask.
  if (mask != nullptr) {
    for (index_t r = 0; r < m; ++r) {
      if ((*mask)[static_cast<std::size_t>(blk.lo + r)]) continue;
      x[blk.lo + r] = cur[r];
    }
  } else {
    std::copy(cur, cur + m, x.data() + blk.lo);
  }
}

#else  // !BARS_BACKEND_HAS_AVX2

void simd_update_block(const SimdBlockLayout&, std::span<const value_t>,
                       const value_t*, std::span<value_t>, value_t, index_t,
                       const std::vector<std::uint8_t>*) noexcept {
  // Unreachable: SimdBlockSweepKernel's constructor throws
  // backend_unsupported when simd_compiled() is false.
}

#endif

}  // namespace bars::backend::detail

#include "matrices/primes.hpp"

#include <cmath>
#include <stdexcept>

namespace bars {

std::vector<index_t> first_primes(index_t count) {
  if (count < 0) throw std::invalid_argument("first_primes: negative count");
  std::vector<index_t> primes;
  primes.reserve(static_cast<std::size_t>(count));
  if (count == 0) return primes;

  // Upper bound on the count-th prime: p_n < n (ln n + ln ln n) for
  // n >= 6 (Rosser); small cases handled by the constant floor.
  const auto nd = static_cast<double>(std::max<index_t>(count, 6));
  const auto limit = static_cast<std::size_t>(
      nd * (std::log(nd) + std::log(std::log(nd))) + 16.0);

  std::vector<bool> composite(limit + 1, false);
  for (std::size_t p = 2; p <= limit && primes.size() <
                                            static_cast<std::size_t>(count);
       ++p) {
    if (composite[p]) continue;
    primes.push_back(static_cast<index_t>(p));
    for (std::size_t q = p * p; q <= limit; q += p) composite[q] = true;
  }
  if (primes.size() != static_cast<std::size_t>(count)) {
    throw std::logic_error("first_primes: sieve bound too small");
  }
  return primes;
}

}  // namespace bars

#pragma once

#include <vector>

#include "sparse/types.hpp"

/// \file primes.hpp
/// Prime generation for the Trefethen matrices (diagonal = primes).

namespace bars {

/// First `count` primes (2, 3, 5, ...). Throws for count < 0.
[[nodiscard]] std::vector<index_t> first_primes(index_t count);

}  // namespace bars

#include "matrices/generators.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "eigen/power_iteration.hpp"
#include "matrices/primes.hpp"
#include "stats/rng.hpp"

namespace bars {

namespace {

void require_positive(index_t v, const char* what) {
  if (v <= 0) throw std::invalid_argument(std::string(what) + ": must be > 0");
}

index_t grid_index(index_t m, index_t i, index_t j) { return i * m + j; }

}  // namespace

Csr trefethen(index_t n) {
  require_positive(n, "trefethen");
  const std::vector<index_t> primes = first_primes(n);
  Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, static_cast<value_t>(primes[i]));
    for (index_t off = 1; off < n; off *= 2) {
      if (i + off < n) coo.add_symmetric(i, i + off, 1.0);
    }
  }
  return Csr::from_coo(coo);
}

Csr fv_like(index_t m, value_t c) {
  require_positive(m, "fv_like");
  const index_t n = m * m;
  Coo coo(n, n);
  coo.reserve(static_cast<std::size_t>(5 * n));
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      const index_t row = grid_index(m, i, j);
      coo.add(row, row, 4.0 + c);
      if (i + 1 < m) coo.add(row, grid_index(m, i + 1, j), -1.0);
      if (i > 0) coo.add(row, grid_index(m, i - 1, j), -1.0);
      if (j + 1 < m) coo.add(row, grid_index(m, i, j + 1), -1.0);
      if (j > 0) coo.add(row, grid_index(m, i, j - 1), -1.0);
    }
  }
  return Csr::from_coo(coo);
}

value_t fv_reaction_for_rho(index_t m, value_t target_rho) {
  require_positive(m, "fv_reaction_for_rho");
  if (target_rho <= 0.0 || target_rho >= 1.0) {
    throw std::invalid_argument("fv_reaction_for_rho: need 0 < rho < 1");
  }
  const value_t c1 =
      std::cos(std::numbers::pi_v<value_t> / static_cast<value_t>(m + 1));
  return 4.0 * c1 / target_rho - 4.0;
}

Csr structural_like(index_t m, value_t a) {
  require_positive(m, "structural_like");
  const index_t n = m * m;
  // T (x) T with T = tridiag(1, a, 1): 9-point tensor stencil.
  //   (i,j)->(i,j)     : a*a        (i+-1,j) / (i,j+-1) : a
  //   (i+-1,j+-1)      : 1
  Coo coo(n, n);
  coo.reserve(static_cast<std::size_t>(9 * n));
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      const index_t row = grid_index(m, i, j);
      for (index_t di = -1; di <= 1; ++di) {
        for (index_t dj = -1; dj <= 1; ++dj) {
          const index_t ni = i + di;
          const index_t nj = j + dj;
          if (ni < 0 || ni >= m || nj < 0 || nj >= m) continue;
          const value_t w = (di == 0 ? a : 1.0) * (dj == 0 ? a : 1.0);
          coo.add(row, grid_index(m, ni, nj), w);
        }
      }
    }
  }
  return Csr::from_coo(coo);
}

value_t structural_diag_for_rho(index_t m, value_t target_rho) {
  require_positive(m, "structural_diag_for_rho");
  if (target_rho <= 0.0 || target_rho >= 3.0) {
    throw std::invalid_argument(
        "structural_diag_for_rho: need 0 < rho < 3 for an SPD instance");
  }
  const value_t c1 =
      std::cos(std::numbers::pi_v<value_t> / static_cast<value_t>(m + 1));
  // rho(B) = (1 + 2 c1 / a)^2 - 1  =>  a = 2 c1 / (sqrt(1 + rho) - 1).
  return 2.0 * c1 / (std::sqrt(1.0 + target_rho) - 1.0);
}

Csr chem97ztz_like(index_t n, value_t target_rho, value_t diag_spread,
                   std::uint64_t seed) {
  require_positive(n, "chem97ztz_like");
  if (target_rho <= 0.0 || target_rho >= 1.0) {
    throw std::invalid_argument("chem97ztz_like: need 0 < rho < 1");
  }
  if (diag_spread < 1.0) {
    throw std::invalid_argument("chem97ztz_like: diag_spread must be >= 1");
  }
  const index_t stride = std::max<index_t>(n / 3, 1);
  const auto build = [&](value_t gamma) {
    Coo coo(n, n);
    for (index_t i = 0; i < n; ++i) coo.add(i, i, 1.0);
    for (index_t i = 0; i < n; ++i) {
      const index_t anti = n - 1 - i;
      // Anti-diagonal coupling: far from the diagonal for most rows.
      if (anti > i) coo.add_symmetric(i, anti, -0.6 * gamma);
      // Long-stride coupling: also outside any moderate diagonal block.
      if (i + stride < n) coo.add_symmetric(i, i + stride, -0.25 * gamma);
    }
    return Csr::from_coo(coo);
  };
  // The unit-diagonal matrix has B = I - A with no diagonal, so rho(B)
  // scales linearly in gamma: one power-iteration measurement fixes it.
  const value_t rho1 = jacobi_spectral_radius(build(1.0)).value;
  if (rho1 <= 0.0) throw std::logic_error("chem97ztz_like: degenerate rho");
  const Csr unit = build(target_rho / rho1);

  // Symmetric rescaling A -> S A S with S = diag(sqrt(d_i)), d_i
  // log-uniform in [1, diag_spread]. D^{-1}A is similar under this
  // transform, so the Jacobi/async spectral radii are untouched.
  Rng rng(seed);
  Vector sqrt_d(static_cast<std::size_t>(n));
  const value_t log_spread = std::log(diag_spread);
  for (auto& v : sqrt_d) v = std::exp(0.5 * rng.uniform(0.0, log_spread));
  Coo scaled(n, n);
  scaled.reserve(static_cast<std::size_t>(unit.nnz()));
  for (index_t i = 0; i < n; ++i) {
    const auto cols = unit.row_cols(i);
    const auto vals = unit.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      // (s_i * s_j) first: the product is computed identically for
      // (i, j) and (j, i), keeping the result bitwise symmetric.
      scaled.add(i, cols[k], (sqrt_d[i] * sqrt_d[cols[k]]) * vals[k]);
    }
  }
  return Csr::from_coo(scaled);
}

Csr random_spd(index_t n, index_t row_degree, value_t dominance,
               std::uint64_t seed) {
  require_positive(n, "random_spd");
  if (row_degree < 0 || dominance <= 1.0) {
    throw std::invalid_argument(
        "random_spd: need row_degree >= 0 and dominance > 1");
  }
  Rng rng(seed);
  Coo coo(n, n);
  // Symmetric off-diagonal pattern.
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = 0; k < row_degree; ++k) {
      index_t j = rng.uniform_int(0, n - 1);
      if (j == i) continue;
      coo.add_symmetric(i, j, rng.uniform(-1.0, 1.0));
    }
  }
  // Diagonal: strictly dominant row sums (computed on the canonical
  // duplicate-summed matrix).
  Csr off = Csr::from_coo(coo);
  Coo full = off.to_coo();
  for (index_t i = 0; i < n; ++i) {
    value_t row_abs = 0.0;
    for (value_t v : off.row_vals(i)) row_abs += std::abs(v);
    full.add(i, i, std::max(row_abs, value_t{1.0}) * dominance);
  }
  return Csr::from_coo(full);
}

Csr anisotropic_laplacian(index_t m, value_t eps, value_t c) {
  require_positive(m, "anisotropic_laplacian");
  if (eps <= 0.0) {
    throw std::invalid_argument("anisotropic_laplacian: eps must be > 0");
  }
  const index_t n = m * m;
  Coo coo(n, n);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      const index_t row = grid_index(m, i, j);
      coo.add(row, row, 2.0 * eps + 2.0 + c);
      // j-direction (stride 1, stays inside contiguous row blocks).
      if (j + 1 < m) coo.add(row, grid_index(m, i, j + 1), -1.0);
      if (j > 0) coo.add(row, grid_index(m, i, j - 1), -1.0);
      // i-direction (stride m, crosses blocks), weighted by eps.
      if (i + 1 < m) coo.add(row, grid_index(m, i + 1, j), -eps);
      if (i > 0) coo.add(row, grid_index(m, i - 1, j), -eps);
    }
  }
  return Csr::from_coo(coo);
}

Csr poisson1d(index_t n) {
  require_positive(n, "poisson1d");
  Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) coo.add_symmetric(i, i + 1, -1.0);
  }
  return Csr::from_coo(coo);
}

}  // namespace bars

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

/// \file paper_suite.hpp
/// The seven test problems of the paper's Table 1, assembled from the
/// generators (or, when a directory with the original UFMC .mtx files is
/// supplied, loaded verbatim).

namespace bars {

/// Reference values copied from the paper's Table 1 for side-by-side
/// reporting in bench/table1_matrices.
struct PaperReference {
  index_t n = 0;
  index_t nnz = 0;
  value_t cond_a = 0.0;
  value_t cond_scaled = 0.0;  ///< cond(D^{-1}A)
  value_t rho = 0.0;          ///< rho(M), Jacobi iteration matrix
};

/// One named test problem.
struct TestProblem {
  std::string name;         ///< paper's matrix name
  std::string description;  ///< paper's "Description" column
  Csr matrix;
  PaperReference paper;     ///< the numbers printed in Table 1
  bool surrogate = true;    ///< false when loaded from a real UFMC file
};

/// Identifiers for the suite, in the paper's Table 1 order.
enum class PaperMatrix {
  kChem97ZtZ,
  kFv1,
  kFv2,
  kFv3,
  kS1rmt3m1,
  kTrefethen2000,
  kTrefethen20000,
};

/// All seven identifiers in table order.
[[nodiscard]] const std::vector<PaperMatrix>& all_paper_matrices();

/// Generate one problem. If `ufmc_dir` is given and contains
/// "<name>.mtx", that file is loaded instead of the surrogate.
[[nodiscard]] TestProblem make_paper_problem(
    PaperMatrix which, const std::optional<std::string>& ufmc_dir = {});

/// Generate the full suite (in table order).
[[nodiscard]] std::vector<TestProblem> make_paper_suite(
    const std::optional<std::string>& ufmc_dir = {});

/// Matrix name as printed in the paper.
[[nodiscard]] std::string paper_matrix_name(PaperMatrix which);

}  // namespace bars

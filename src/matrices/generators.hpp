#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

/// \file generators.hpp
/// Generators for the paper's test-matrix suite (Table 1). Trefethen
/// matrices are generated exactly; the UFMC matrices we cannot download
/// are replaced by spectrally calibrated surrogates (see DESIGN.md §3).

namespace bars {

/// Trefethen combinatorial matrix (exact reproduction of UFMC
/// Trefethen_<n>): A(i,i) = (i+1)-th prime; A(i,j) = 1 for
/// |i-j| in {1, 2, 4, 8, ...}. SPD and strictly diagonally dominant is
/// not guaranteed, but rho(|B|) < 1 holds (measured 0.86 as in Table 1).
[[nodiscard]] Csr trefethen(index_t n);

/// 5-point finite-difference Laplacian on an m x m grid with Dirichlet
/// boundary plus reaction term c*I: the fv1/fv2/fv3 surrogate family
/// ("2D/3D problem"). Diagonal = 4 + c, off-diagonals = -1.
/// rho(B) = 4 cos(pi/(m+1)) / (4 + c) in closed form.
[[nodiscard]] Csr fv_like(index_t m, value_t c);

/// Reaction coefficient c so that fv_like(m, c) has exactly the target
/// Jacobi spectral radius rho(B) = target_rho (closed form).
[[nodiscard]] value_t fv_reaction_for_rho(index_t m, value_t target_rho);

/// Tensor-product "plate" matrix T (x) T with T = tridiag(1, a, 1) on an
/// m x m grid: the s1rmt3m1 surrogate ("structural problem"). SPD for
/// a > 2 cos(pi/(m+1)), but NOT diagonally dominant: choosing `a` via
/// structural_diag_for_rho gives rho(B) = target > 1, so Jacobi-type
/// methods diverge exactly as the paper observes.
[[nodiscard]] Csr structural_like(index_t m, value_t a);

/// Diagonal value a so that structural_like(m, a) has Jacobi spectral
/// radius target_rho: rho(B) = (1 + 2 cos(pi/(m+1))/a)^2 - 1.
[[nodiscard]] value_t structural_diag_for_rho(index_t m, value_t target_rho);

/// Chem97ZtZ surrogate ("statistical problem", normal-equations-like):
/// couplings far away from the diagonal (anti-diagonal pairing plus a
/// long stride), scaled so rho(B) = target_rho, then symmetrically
/// rescaled by a seeded log-uniform diagonal in [1, diag_spread] —
/// mimicking the wildly varying column scales of normal equations.
/// The rescaling is a similarity transform of the Jacobi iteration
/// matrix, so rho(B) and rho(|B|) are preserved exactly while cond(A)
/// rises to the paper's ~1e3 class. Key reproduced properties:
/// diagonal blocks of size >= 64 are essentially diagonal (so local
/// iterations cannot accelerate convergence, Section 4.3) and
/// unpreconditioned CG is no longer trivially fast (Section 4.4).
[[nodiscard]] Csr chem97ztz_like(index_t n, value_t target_rho,
                                 value_t diag_spread = 1.0e3,
                                 std::uint64_t seed = 97);

/// Random sparse SPD matrix: symmetric pattern with `row_degree`
/// off-diagonals per row, entries U(-1,1), diagonal = (sum of row
/// |off-diag|) * dominance. dominance > 1 gives strict diagonal
/// dominance (and hence rho(|B|) < 1). Used by property tests.
[[nodiscard]] Csr random_spd(index_t n, index_t row_degree, value_t dominance,
                             std::uint64_t seed);

/// Anisotropic 5-point Laplacian (eps * d_xx + d_yy) + c*I on an m x m
/// grid — used in block-size ablations: small eps concentrates coupling
/// inside contiguous row blocks.
[[nodiscard]] Csr anisotropic_laplacian(index_t m, value_t eps, value_t c);

/// 1D Poisson matrix tridiag(-1, 2, -1) of size n (multigrid example).
[[nodiscard]] Csr poisson1d(index_t n);

}  // namespace bars

#include "matrices/paper_suite.hpp"

#include <filesystem>
#include <stdexcept>

#include "matrices/generators.hpp"
#include "sparse/matrix_market.hpp"

namespace bars {

namespace {

struct SuiteEntry {
  PaperMatrix id;
  const char* name;
  const char* description;
  PaperReference paper;
};

// Reference values transcribed from the paper's Table 1.
constexpr SuiteEntry kSuite[] = {
    {PaperMatrix::kChem97ZtZ, "Chem97ZtZ", "statistical problem",
     {2541, 7361, 1.3e3, 7.2e3, 0.7889}},
    {PaperMatrix::kFv1, "fv1", "2D/3D problem",
     {9604, 85264, 9.3e4, 12.76, 0.8541}},
    {PaperMatrix::kFv2, "fv2", "2D/3D problem",
     {9801, 87025, 9.5e4, 12.76, 0.8541}},
    {PaperMatrix::kFv3, "fv3", "2D/3D problem",
     {9801, 87025, 3.6e7, 4.4e3, 0.9993}},
    {PaperMatrix::kS1rmt3m1, "s1rmt3m1", "structural problem",
     {5489, 262411, 2.2e6, 7.2e6, 2.65}},
    {PaperMatrix::kTrefethen2000, "Trefethen_2000", "combinatorial problem",
     {2000, 41906, 5.1e4, 6.1579, 0.8601}},
    {PaperMatrix::kTrefethen20000, "Trefethen_20000", "combinatorial problem",
     {20000, 554466, 5.1e4, 6.1579, 0.8601}},
};

const SuiteEntry& entry(PaperMatrix which) {
  for (const auto& e : kSuite) {
    if (e.id == which) return e;
  }
  throw std::invalid_argument("unknown PaperMatrix");
}

Csr build_surrogate(PaperMatrix which) {
  switch (which) {
    case PaperMatrix::kChem97ZtZ:
      return chem97ztz_like(2541, 0.7889);
    case PaperMatrix::kFv1:
      return fv_like(98, fv_reaction_for_rho(98, 0.8541));
    case PaperMatrix::kFv2:
      return fv_like(99, fv_reaction_for_rho(99, 0.8541));
    case PaperMatrix::kFv3:
      return fv_like(99, fv_reaction_for_rho(99, 0.9993));
    case PaperMatrix::kS1rmt3m1:
      return structural_like(74, structural_diag_for_rho(74, 2.65));
    case PaperMatrix::kTrefethen2000:
      return trefethen(2000);
    case PaperMatrix::kTrefethen20000:
      return trefethen(20000);
  }
  throw std::invalid_argument("unknown PaperMatrix");
}

}  // namespace

const std::vector<PaperMatrix>& all_paper_matrices() {
  static const std::vector<PaperMatrix> all = {
      PaperMatrix::kChem97ZtZ,      PaperMatrix::kFv1,
      PaperMatrix::kFv2,            PaperMatrix::kFv3,
      PaperMatrix::kS1rmt3m1,       PaperMatrix::kTrefethen2000,
      PaperMatrix::kTrefethen20000,
  };
  return all;
}

std::string paper_matrix_name(PaperMatrix which) { return entry(which).name; }

TestProblem make_paper_problem(PaperMatrix which,
                               const std::optional<std::string>& ufmc_dir) {
  const SuiteEntry& e = entry(which);
  TestProblem p;
  p.name = e.name;
  p.description = e.description;
  p.paper = e.paper;
  if (ufmc_dir) {
    const std::filesystem::path path =
        std::filesystem::path(*ufmc_dir) / (std::string(e.name) + ".mtx");
    if (std::filesystem::exists(path)) {
      p.matrix = read_matrix_market_file(path.string());
      p.surrogate = false;
      return p;
    }
  }
  p.matrix = build_surrogate(which);
  p.surrogate = true;
  return p;
}

std::vector<TestProblem> make_paper_suite(
    const std::optional<std::string>& ufmc_dir) {
  std::vector<TestProblem> suite;
  suite.reserve(all_paper_matrices().size());
  for (PaperMatrix m : all_paper_matrices()) {
    suite.push_back(make_paper_problem(m, ufmc_dir));
  }
  return suite;
}

}  // namespace bars

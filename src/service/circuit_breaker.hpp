#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "service/plan_cache.hpp"

/// \file circuit_breaker.hpp
/// Per-plan circuit breakers for the service layer.
///
/// A matrix whose kernel construction or solve keeps failing should not
/// be allowed to burn a worker (and a queue slot) on every submission.
/// The breaker tracks *consecutive* failures per plan key — the same
/// (fingerprint, block_size, local_iters) triple the plan cache uses —
/// and after `failure_threshold` of them trips *open*: submissions for
/// that key are rejected immediately with kRejectedCircuitOpen (or
/// degraded onto the fallback chain, see DegradationPolicy) without
/// touching the queue. After `open_duration` the breaker moves to
/// *half-open* and lets exactly one probe request through; a successful
/// probe closes the breaker, a failed one re-opens it for another
/// window.
///
/// Time is passed in by the caller (steady-clock time points), so the
/// state machine is deterministic and unit-testable without sleeping.
/// docs/SERVICE.md ("Hardening") is the behavioral contract.

namespace bars::service {

struct CircuitBreakerOptions {
  /// Off by default: an un-hardened service behaves exactly as before.
  bool enabled = false;
  /// Consecutive kFailed outcomes for one plan key that trip the
  /// breaker open.
  std::size_t failure_threshold = 3;
  /// How long the breaker stays open before probing half-open.
  std::chrono::milliseconds open_duration{1000};
  /// Distinct plan keys tracked; least-recently-touched *closed*
  /// entries are pruned beyond this (open/half-open entries are never
  /// pruned — they are the ones doing work).
  std::size_t max_tracked = 256;
};

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

[[nodiscard]] constexpr const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

struct CircuitBreakerStats {
  std::uint64_t trips = 0;       ///< closed/half-open -> open transitions
  std::uint64_t rejections = 0;  ///< fast-fails while open
  std::uint64_t probes = 0;      ///< half-open admissions
  std::uint64_t recoveries = 0;  ///< half-open -> closed (probe succeeded)
  std::size_t open = 0;          ///< snapshot: breakers currently open
  std::size_t tracked = 0;       ///< snapshot: plan keys tracked
};

/// Thread-safe registry of per-plan breaker state machines.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(CircuitBreakerOptions opts = {});

  /// Admission check for one plan key. Returns true when the request
  /// may proceed (closed, or half-open granting this caller the probe
  /// slot); false means reject fast — the breaker is open, or another
  /// probe is already in flight. Disabled breakers always admit.
  [[nodiscard]] bool allow(std::uint64_t fingerprint, const PlanConfig& config,
                           Clock::time_point now);

  /// Record the outcome of an admitted attempt. Success closes
  /// (half-open) or resets (closed) the state; failure counts toward
  /// the threshold and re-opens a half-open breaker immediately.
  void record_success(std::uint64_t fingerprint, const PlanConfig& config);
  void record_failure(std::uint64_t fingerprint, const PlanConfig& config,
                      Clock::time_point now);

  /// An admitted attempt ended without a solver verdict (cancelled,
  /// deadline, shutdown, shed-evicted): release the probe slot it may
  /// have been holding so a half-open breaker can probe again instead
  /// of wedging. No-op for closed entries and disabled breakers.
  void release(std::uint64_t fingerprint, const PlanConfig& config);

  [[nodiscard]] BreakerState state(std::uint64_t fingerprint,
                                   const PlanConfig& config,
                                   Clock::time_point now) const;

  [[nodiscard]] CircuitBreakerStats stats() const;
  [[nodiscard]] const CircuitBreakerOptions& options() const { return opts_; }

 private:
  struct Key {
    std::uint64_t fingerprint;
    PlanConfig config;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    BreakerState state = BreakerState::kClosed;
    std::size_t consecutive_failures = 0;
    Clock::time_point opened_at{};
    bool probe_in_flight = false;
    std::uint64_t touched = 0;  ///< LRU tick for pruning closed entries
  };

  /// Resolve open -> half-open when the window has elapsed.
  void refresh(Entry& e, Clock::time_point now) const;
  void prune() BARS_REQUIRES(mu_);

  CircuitBreakerOptions opts_;
  mutable common::Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_ BARS_GUARDED_BY(mu_);
  std::uint64_t tick_ BARS_GUARDED_BY(mu_) = 0;
  std::uint64_t trips_ BARS_GUARDED_BY(mu_) = 0;
  std::uint64_t rejections_ BARS_GUARDED_BY(mu_) = 0;
  std::uint64_t probes_ BARS_GUARDED_BY(mu_) = 0;
  std::uint64_t recoveries_ BARS_GUARDED_BY(mu_) = 0;
};

}  // namespace bars::service

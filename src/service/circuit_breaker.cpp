#include "service/circuit_breaker.hpp"

#include <algorithm>

#include "service/fingerprint.hpp"

namespace bars::service {

std::size_t CircuitBreaker::KeyHash::operator()(const Key& k) const noexcept {
  const index_t cfg[2] = {k.config.block_size, k.config.local_iters};
  return static_cast<std::size_t>(
      fnv1a64(cfg, sizeof(cfg), k.fingerprint ^ 0x9e3779b97f4a7c15ULL));
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions opts) : opts_(opts) {
  if (opts_.failure_threshold == 0) opts_.failure_threshold = 1;
  if (opts_.max_tracked == 0) opts_.max_tracked = 1;
}

void CircuitBreaker::refresh(Entry& e, Clock::time_point now) const {
  if (e.state == BreakerState::kOpen &&
      now - e.opened_at >= opts_.open_duration) {
    e.state = BreakerState::kHalfOpen;
    e.probe_in_flight = false;
  }
}

bool CircuitBreaker::allow(std::uint64_t fingerprint, const PlanConfig& config,
                           Clock::time_point now) {
  if (!opts_.enabled) return true;
  common::MutexLock lock(mu_);
  const Key key{fingerprint, config};
  auto it = map_.find(key);
  if (it == map_.end()) return true;  // untracked = closed
  Entry& e = it->second;
  e.touched = ++tick_;
  refresh(e, now);
  switch (e.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++rejections_;
      return false;
    case BreakerState::kHalfOpen:
      if (e.probe_in_flight) {
        // One probe at a time: the rest keep failing fast until the
        // in-flight probe delivers a verdict.
        ++rejections_;
        return false;
      }
      e.probe_in_flight = true;
      ++probes_;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(std::uint64_t fingerprint,
                                    const PlanConfig& config) {
  if (!opts_.enabled) return;
  common::MutexLock lock(mu_);
  auto it = map_.find(Key{fingerprint, config});
  if (it == map_.end()) return;
  Entry& e = it->second;
  e.touched = ++tick_;
  if (e.state == BreakerState::kHalfOpen) ++recoveries_;
  e.state = BreakerState::kClosed;
  e.consecutive_failures = 0;
  e.probe_in_flight = false;
}

void CircuitBreaker::record_failure(std::uint64_t fingerprint,
                                    const PlanConfig& config,
                                    Clock::time_point now) {
  if (!opts_.enabled) return;
  common::MutexLock lock(mu_);
  const Key key{fingerprint, config};
  auto it = map_.find(key);
  if (it == map_.end()) {
    prune();
    it = map_.emplace(key, Entry{}).first;
  }
  Entry& e = it->second;
  e.touched = ++tick_;
  refresh(e, now);
  if (e.state == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open for another window.
    e.state = BreakerState::kOpen;
    e.opened_at = now;
    e.probe_in_flight = false;
    ++trips_;
    return;
  }
  ++e.consecutive_failures;
  if (e.state == BreakerState::kClosed &&
      e.consecutive_failures >= opts_.failure_threshold) {
    e.state = BreakerState::kOpen;
    e.opened_at = now;
    ++trips_;
  }
}

void CircuitBreaker::release(std::uint64_t fingerprint,
                             const PlanConfig& config) {
  if (!opts_.enabled) return;
  common::MutexLock lock(mu_);
  auto it = map_.find(Key{fingerprint, config});
  if (it == map_.end()) return;
  it->second.probe_in_flight = false;
}

BreakerState CircuitBreaker::state(std::uint64_t fingerprint,
                                   const PlanConfig& config,
                                   Clock::time_point now) const {
  common::MutexLock lock(mu_);
  const auto it = map_.find(Key{fingerprint, config});
  if (it == map_.end()) return BreakerState::kClosed;
  Entry e = it->second;  // copy: state() is const, refresh is a view
  refresh(e, now);
  return e.state;
}

CircuitBreakerStats CircuitBreaker::stats() const {
  common::MutexLock lock(mu_);
  CircuitBreakerStats out;
  out.trips = trips_;
  out.rejections = rejections_;
  out.probes = probes_;
  out.recoveries = recoveries_;
  out.tracked = map_.size();
  for (const auto& [key, e] : map_) {
    if (e.state == BreakerState::kOpen) ++out.open;
  }
  return out;
}

void CircuitBreaker::prune() {
  if (map_.size() < opts_.max_tracked) return;
  // Evict the least-recently-touched closed entry; open and half-open
  // breakers are load-bearing and stay.
  auto victim = map_.end();
  std::uint64_t oldest = UINT64_MAX;
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (it->second.state == BreakerState::kClosed &&
        it->second.touched < oldest) {
      oldest = it->second.touched;
      victim = it;
    }
  }
  if (victim != map_.end()) map_.erase(victim);
}

}  // namespace bars::service

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/cancel.hpp"
#include "core/registry.hpp"
#include "service/plan_cache.hpp"
#include "telemetry/metrics.hpp"

/// \file solve_service.hpp
/// The solver-as-a-service layer: a long-lived SolveService that
/// accepts solve requests, amortizes per-matrix setup through a
/// PlanCache, runs requests on a worker pool with per-request
/// deadline/cancellation, applies admission control when saturated,
/// and fuses queued same-matrix block-async requests into one
/// multi-RHS batch (one kernel analysis, N right-hand sides — each
/// bit-identical to its standalone solve).
///
/// docs/SERVICE.md is the contract document: plan-cache keying and
/// eviction, batching rules, admission control, and a worked
/// solve_server transcript.

namespace bars::service {

/// How a request left the service. kSolved means the solver itself ran
/// to a verdict — inspect SolveResponse::result.status for the
/// mathematical outcome; every other value means the service stopped
/// the request before or during the solve (result.status is then
/// SolverStatus::kAborted).
enum class RequestOutcome {
  kSolved = 0,
  kRejectedQueueFull,  ///< admission control: queue at capacity
  kRejectedShutdown,   ///< submitted to (or queued in) a stopping service
  kDeadlineExpired,    ///< per-request deadline passed (queued or mid-solve)
  kCancelled,          ///< Ticket::cancel() before a verdict
  kFailed,             ///< solver threw; see SolveResponse::error
};

[[nodiscard]] constexpr const char* to_string(RequestOutcome o) noexcept {
  switch (o) {
    case RequestOutcome::kSolved:
      return "solved";
    case RequestOutcome::kRejectedQueueFull:
      return "rejected-queue-full";
    case RequestOutcome::kRejectedShutdown:
      return "rejected-shutdown";
    case RequestOutcome::kDeadlineExpired:
      return "deadline-expired";
    case RequestOutcome::kCancelled:
      return "cancelled";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

/// One solve job. The matrix rides in a shared_ptr because the request
/// may outlive the submitting scope (queued, batched); the service
/// additionally keeps its own copy inside cached plans, so block-async
/// requests never touch `matrix` after plan acquisition.
struct SolveRequest {
  std::shared_ptr<const Csr> matrix;
  Vector b;
  /// Any name from core/registry.hpp (all 16 solvers are servable).
  /// "block-async" requests go through the plan cache and are
  /// batch-fusable; every other solver runs unplanned.
  std::string solver = "block-async";
  /// Per-request knobs, including per-request telemetry
  /// (options.solve.telemetry.observer receives this request's event
  /// stream). options.solve.cancel is service-owned — anything the
  /// caller puts there is ignored; use Ticket::cancel() instead.
  RegistrySolveOptions options{};
  /// Zero uses ServiceOptions::default_deadline; negative means "no
  /// deadline" even when a default exists.
  std::chrono::milliseconds deadline{0};
};

struct SolveResponse {
  RequestOutcome outcome = RequestOutcome::kFailed;
  /// The solver's result for kSolved; for kDeadlineExpired/kCancelled
  /// that fired mid-solve, the partial iterate with status kAborted;
  /// default-constructed (status kAborted) otherwise.
  SolveResult result;
  bool plan_cache_hit = false;
  bool batched = false;          ///< fused with other same-plan requests
  std::size_t batch_size = 1;    ///< requests in the fused batch (>= 1)
  value_t queue_seconds = 0.0;   ///< submit -> dispatch
  value_t solve_seconds = 0.0;   ///< dispatch -> completion
  std::string error;             ///< kFailed: what the solver threw

  /// Service accepted it AND the solver converged.
  [[nodiscard]] bool ok() const noexcept {
    return outcome == RequestOutcome::kSolved && result.ok();
  }
};

/// Handle to an in-flight request. Self-contained (own mutex/cv), so it
/// stays valid even after the service is destroyed.
class Ticket {
 public:
  Ticket() = default;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  [[nodiscard]] bool done() const {
    common::MutexLock lock(mu_);
    return done_;
  }

  /// Block until the response is ready, then return it (stable
  /// reference, valid for the ticket's lifetime).
  [[nodiscard]] const SolveResponse& wait() {
    common::MutexLock lock(mu_);
    while (!done_) cv_.wait(lock);
    return response_;
  }

  /// Cooperative cancel: queued requests complete as kCancelled without
  /// running; a mid-solve request stops at its next iteration boundary.
  /// No-op once done.
  void cancel() noexcept {
    token_.request_cancel(common::CancelReason::kUser);
  }

 private:
  friend class SolveService;

  void complete(SolveResponse&& r) {
    {
      common::MutexLock lock(mu_);
      response_ = std::move(r);
      done_ = true;
    }
    cv_.notify_all();
  }

  mutable common::Mutex mu_;
  common::ConditionVariable cv_;
  bool done_ BARS_GUARDED_BY(mu_) = false;
  SolveResponse response_ BARS_GUARDED_BY(mu_);
  common::CancelToken token_;
};

struct ServiceOptions {
  /// Distinct (matrix, config) plans kept resident (LRU beyond this).
  std::size_t plan_cache_capacity = 8;
  /// Concurrent solver threads (>= 1 enforced).
  index_t num_workers = 2;
  /// Admission control: submissions beyond this many queued requests
  /// are rejected with kRejectedQueueFull. Requests being solved do
  /// not count against the queue.
  std::size_t queue_capacity = 64;
  /// Fuse queued same-plan block-async requests into one batch.
  bool batching = true;
  /// Max requests fused per batch (>= 1; 1 disables fusion).
  std::size_t max_batch = 8;
  /// Attach a per-request resilience watchdog (checkpoint + supervisor,
  /// online detection off) to plan-path solves. Healthy solves are
  /// numerically unaffected; diverging or stalled ones get damped
  /// restarts / component reassignment (docs/RESILIENCE.md).
  bool watchdog = false;
  /// Deadline applied when a request does not set one (0 = none).
  std::chrono::milliseconds default_deadline{0};
  /// Optional service-level metrics: request counters, queue/solve
  /// latency histograms, plan-cache and queue gauges. The registry is
  /// not thread-safe, so the service records strictly under its own
  /// lock; do not record into it from other threads while the service
  /// is alive.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Monotonic service counters (since construction), plus two
/// point-in-time snapshots (queue_depth, active) taken when stats() is
/// called.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t solved = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;           ///< fused batches executed
  std::uint64_t batched_requests = 0;  ///< requests that rode in a batch
  std::size_t queue_depth = 0;         ///< snapshot: requests waiting
  std::size_t active = 0;              ///< snapshot: requests being solved
  PlanCacheStats plan_cache{};
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions opts = {});
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;
  /// Drains the queue (workers finish every accepted request), then
  /// joins the threads.
  ~SolveService();

  /// Asynchronous submission. Always returns a ticket; admission
  /// failures (queue full, shutting down, missing matrix) complete the
  /// ticket immediately with the rejection outcome.
  [[nodiscard]] std::shared_ptr<Ticket> submit(SolveRequest req);

  /// Synchronous convenience: submit and wait.
  [[nodiscard]] SolveResponse solve(SolveRequest req);

  /// Stop accepting work. drain=true (the destructor's mode) lets
  /// workers finish everything already queued; drain=false completes
  /// queued-but-unstarted requests as kRejectedShutdown. Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;

  /// The plan cache, exposed for prewarming and inspection.
  [[nodiscard]] PlanCache& plan_cache() { return cache_; }
  [[nodiscard]] const PlanCache& plan_cache() const { return cache_; }

  [[nodiscard]] const ServiceOptions& options() const { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    SolveRequest req;
    std::shared_ptr<Ticket> ticket;
    Clock::time_point enqueued{};
    Clock::time_point deadline{Clock::time_point::max()};
    std::uint64_t fingerprint = 0;  ///< 0 when not plan-path
    PlanConfig config{};
    bool plan_path = false;  ///< block-async: plan cache + batchable
  };

  void worker_loop();
  void reaper_loop();
  void execute_batch(std::vector<std::shared_ptr<Pending>> batch);
  void run_one(Pending& p, const std::shared_ptr<SolvePlan>& plan,
               bool cache_hit, std::size_t batch_size);
  void finish(Pending& p, SolveResponse&& resp);
  /// Map a kAborted solver exit to the outcome the token reason implies.
  static RequestOutcome aborted_outcome(const common::CancelToken& token);

  ServiceOptions opts_;
  PlanCache cache_;

  mutable common::Mutex mu_;
  common::ConditionVariable work_cv_;       ///< workers: queue/stop changed
  common::ConditionVariable reaper_cv_;     ///< reaper: deadlines changed
  std::deque<std::shared_ptr<Pending>> queue_ BARS_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<Pending>> running_ BARS_GUARDED_BY(mu_);
  bool stopping_ BARS_GUARDED_BY(mu_) = false;
  bool reaper_stop_ BARS_GUARDED_BY(mu_) = false;
  ServiceStats stats_ BARS_GUARDED_BY(mu_);

  // Pre-registered metric handles (null when opts_.metrics is null).
  // Recorded only under mu_ — MetricsRegistry is not thread-safe.
  telemetry::Counter* m_requests_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_deadline_ = nullptr;
  telemetry::Counter* m_cancelled_ = nullptr;
  telemetry::Counter* m_failed_ = nullptr;
  telemetry::Counter* m_solved_ = nullptr;
  telemetry::Counter* m_batches_ = nullptr;
  telemetry::Counter* m_cache_hits_ = nullptr;
  telemetry::Counter* m_cache_misses_ = nullptr;
  telemetry::Gauge* m_queue_depth_ = nullptr;
  telemetry::Gauge* m_active_ = nullptr;
  telemetry::Gauge* m_cache_size_ = nullptr;
  telemetry::Histogram* m_queue_seconds_ = nullptr;
  telemetry::Histogram* m_solve_seconds_ = nullptr;

  std::vector<std::thread> workers_;
  std::thread reaper_;
};

}  // namespace bars::service

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/cancel.hpp"
#include "common/thread.hpp"
#include "core/registry.hpp"
#include "service/circuit_breaker.hpp"
#include "service/degradation.hpp"
#include "service/latency_tracker.hpp"
#include "service/plan_cache.hpp"
#include "service/retry_policy.hpp"
#include "stats/rng.hpp"
#include "telemetry/metrics.hpp"

namespace bars::resilience {
class ServiceFaultInjector;
}

/// \file solve_service.hpp
/// The solver-as-a-service layer: a long-lived SolveService that
/// accepts solve requests, amortizes per-matrix setup through a
/// PlanCache, runs requests on a worker pool with per-request
/// deadline/cancellation, applies admission control when saturated,
/// and fuses queued same-matrix block-async requests into one
/// multi-RHS batch (one kernel analysis, N right-hand sides — each
/// bit-identical to its standalone solve).
///
/// The hardening layer (all off by default, so a plain service behaves
/// exactly as before): bounded retries with exponential backoff +
/// jitter and optional hedged duplicates (RetryPolicy), per-plan
/// circuit breakers (CircuitBreakerOptions), load shedding and
/// fallback chains under overload (DegradationPolicy), stuck-worker
/// detection with bounded cancel-and-requeue (SupervisionPolicy), and
/// fault injection hooks (ServiceOptions::chaos,
/// resilience/service_faults.hpp).
///
/// docs/SERVICE.md is the contract document: plan-cache keying and
/// eviction, batching rules, admission control, the hardening
/// contracts, and a worked solve_server transcript.

namespace bars::service {

/// How a request left the service. kSolved means the solver itself ran
/// to a verdict — inspect SolveResponse::result.status for the
/// mathematical outcome; every other value means the service stopped
/// the request before or during the solve (result.status is then
/// SolverStatus::kAborted).
enum class RequestOutcome {
  kSolved = 0,
  kRejectedQueueFull,     ///< admission control: queue at capacity
  kRejectedShutdown,      ///< submitted to (or queued in) a stopping service
  kRejectedCircuitOpen,   ///< per-plan circuit breaker is open
  kRejectedLoadShed,      ///< shed under overload (priority below floor)
  kDeadlineExpired,       ///< per-request deadline passed (queued or mid-solve)
  kCancelled,             ///< Ticket::cancel() before a verdict
  kFailed,                ///< solver threw; see SolveResponse::error
};

[[nodiscard]] constexpr const char* to_string(RequestOutcome o) noexcept {
  switch (o) {
    case RequestOutcome::kSolved:
      return "solved";
    case RequestOutcome::kRejectedQueueFull:
      return "rejected-queue-full";
    case RequestOutcome::kRejectedShutdown:
      return "rejected-shutdown";
    case RequestOutcome::kRejectedCircuitOpen:
      return "rejected-circuit-open";
    case RequestOutcome::kRejectedLoadShed:
      return "rejected-load-shed";
    case RequestOutcome::kDeadlineExpired:
      return "deadline-expired";
    case RequestOutcome::kCancelled:
      return "cancelled";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

/// One solve job. The matrix rides in a shared_ptr because the request
/// may outlive the submitting scope (queued, batched); the service
/// additionally keeps its own copy inside cached plans, so block-async
/// requests never touch `matrix` after plan acquisition.
struct SolveRequest {
  std::shared_ptr<const Csr> matrix;
  Vector b;
  /// Any name from core/registry.hpp (all 16 solvers are servable).
  /// "block-async" requests go through the plan cache and are
  /// batch-fusable; every other solver runs unplanned.
  std::string solver = "block-async";
  /// Per-request knobs, including per-request telemetry
  /// (options.solve.telemetry.observer receives this request's event
  /// stream). options.solve.cancel is service-owned — anything the
  /// caller puts there is ignored; use Ticket::cancel() instead.
  RegistrySolveOptions options{};
  /// Zero uses ServiceOptions::default_deadline; negative means "no
  /// deadline" even when a default exists.
  std::chrono::milliseconds deadline{0};
  /// Load-shed ordering: under overload, lower-priority work is shed
  /// first (DegradationPolicy). Priority never reorders the queue —
  /// it only decides who is rejected when the service must drop work.
  int priority = 0;
};

struct SolveResponse {
  RequestOutcome outcome = RequestOutcome::kFailed;
  /// The solver's result for kSolved; for kDeadlineExpired/kCancelled
  /// that fired mid-solve, the partial iterate with status kAborted;
  /// default-constructed (status kAborted) otherwise.
  SolveResult result;
  bool plan_cache_hit = false;
  bool batched = false;          ///< fused with other same-plan requests
  std::size_t batch_size = 1;    ///< requests in the fused batch (>= 1)
  value_t queue_seconds = 0.0;   ///< submit -> dispatch
  value_t solve_seconds = 0.0;   ///< dispatch -> completion
  std::string error;             ///< kFailed: what the solver threw
  /// The solver that produced `result` (may differ from the requested
  /// one when a fallback chain kicked in).
  std::string solver_used;
  bool degraded = false;         ///< served by a fallback solver
  std::uint32_t attempts = 1;    ///< attempts dispatched (retries/requeues)
  bool hedged = false;           ///< a hedged duplicate was launched

  /// Service accepted it AND the solver converged.
  [[nodiscard]] bool ok() const noexcept {
    return outcome == RequestOutcome::kSolved && result.ok();
  }
};

/// Handle to an in-flight request. Self-contained (own mutex/cv), so it
/// stays valid even after the service is destroyed.
class Ticket {
 public:
  Ticket() = default;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  [[nodiscard]] bool done() const {
    common::MutexLock lock(mu_);
    return done_;
  }

  /// Block until the response is ready, then return it (stable
  /// reference, valid for the ticket's lifetime).
  [[nodiscard]] const SolveResponse& wait() {
    common::MutexLock lock(mu_);
    while (!done_) cv_.wait(lock);
    return response_;
  }

  /// Cooperative cancel: queued requests complete as kCancelled without
  /// running; a mid-solve request stops at its next iteration boundary.
  /// Reaches every attempt of the request (hedged duplicates, requeued
  /// victims). No-op once done.
  void cancel() noexcept {
    token_.request_cancel(common::CancelReason::kUser);
  }

 private:
  friend class SolveService;

  /// First completion wins: hedged duplicates and requeued attempts
  /// race to this, and late finishers are dropped. Returns whether
  /// this call was the winner.
  bool try_complete(SolveResponse&& r) {
    {
      common::MutexLock lock(mu_);
      if (done_) return false;
      response_ = std::move(r);
      done_ = true;
    }
    cv_.notify_all();
    return true;
  }

  mutable common::Mutex mu_;
  common::ConditionVariable cv_;
  bool done_ BARS_GUARDED_BY(mu_) = false;
  SolveResponse response_ BARS_GUARDED_BY(mu_);
  /// Request-level token: parent of every attempt-level token.
  common::CancelToken token_;
};

/// Stuck-worker supervision: a running attempt that is still going at
/// deadline x grace_factor is declared stuck (its worker is not
/// honoring cooperative cancellation — wedged I/O, a chaos-injected
/// stall), its token is tripped with CancelReason::kWatchdog, and a
/// fresh attempt is queued with a fresh deadline budget, up to
/// `max_requeues` times. Requests without a deadline are never
/// supervised (there is no budget to scale).
struct SupervisionPolicy {
  std::size_t max_requeues = 0;  ///< 0 = supervision off (the default)
  double grace_factor = 2.0;     ///< stuck at deadline x this
};

struct ServiceOptions {
  /// Distinct (matrix, config) plans kept resident (LRU beyond this).
  std::size_t plan_cache_capacity = 8;
  /// How long cached plan-construction *failures* stay authoritative
  /// (PlanCacheOptions::negative_ttl; <= 0 means forever).
  std::chrono::milliseconds plan_negative_ttl{30000};
  /// Concurrent solver threads (>= 1 enforced).
  index_t num_workers = 2;
  /// Admission control: submissions beyond this many queued requests
  /// are rejected with kRejectedQueueFull. Requests being solved do
  /// not count against the queue.
  std::size_t queue_capacity = 64;
  /// Fuse queued same-plan block-async requests into one batch.
  bool batching = true;
  /// Max requests fused per batch (>= 1; 1 disables fusion).
  std::size_t max_batch = 8;
  /// Attach a per-request resilience watchdog (checkpoint + supervisor,
  /// online detection off) to plan-path solves. Healthy solves are
  /// numerically unaffected; diverging or stalled ones get damped
  /// restarts / component reassignment (docs/RESILIENCE.md).
  bool watchdog = false;
  /// Deadline applied when a request does not set one (0 = none).
  std::chrono::milliseconds default_deadline{0};

  /// Hardening knobs — every default is "off"/neutral, so a service
  /// constructed without touching these behaves exactly as before.
  RetryPolicy retry{};
  CircuitBreakerOptions breaker{};
  DegradationPolicy degradation{};
  SupervisionPolicy supervision{};
  /// Seed for backoff jitter (the only randomness in the service).
  std::uint64_t jitter_seed = 0x5eed5eedULL;
  /// Fault injection: when non-null, the service consults this
  /// injector at dispatch (worker stalls) and plan build time
  /// (construction-failure bursts). Null = no chaos. The injector must
  /// outlive the service.
  resilience::ServiceFaultInjector* chaos = nullptr;

  /// Optional service-level metrics: request counters, queue/solve
  /// latency histograms, plan-cache and queue gauges. The registry is
  /// not thread-safe, so the service records strictly under its own
  /// lock; do not record into it from other threads while the service
  /// is alive.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Monotonic service counters (since construction), plus point-in-time
/// snapshots (queue_depth, active, shed_active, breaker/cache state)
/// taken when stats() is called.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t solved = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_circuit_open = 0;
  std::uint64_t rejected_load_shed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;           ///< fused batches executed
  std::uint64_t batched_requests = 0;  ///< requests that rode in a batch
  std::uint64_t retries = 0;           ///< re-attempts after kFailed
  std::uint64_t hedges = 0;            ///< hedged duplicates launched
  std::uint64_t hedge_wins = 0;        ///< completions won by a hedge
  std::uint64_t requeues = 0;          ///< stuck-worker cancel-and-requeues
  std::uint64_t fallbacks = 0;         ///< fallback-chain solver switches
  std::uint64_t late_completions = 0;  ///< attempts that lost the race
  std::uint64_t shed_activations = 0;
  std::uint64_t shed_deactivations = 0;
  std::uint64_t chaos_stalls = 0;      ///< injected worker stalls served
  std::size_t queue_depth = 0;         ///< snapshot: requests waiting
  std::size_t parked = 0;              ///< snapshot: attempts in backoff
  std::size_t active = 0;              ///< snapshot: requests being solved
  bool shed_active = false;            ///< snapshot: load shed engaged
  PlanCacheStats plan_cache{};
  CircuitBreakerStats breaker{};
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions opts = {});
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;
  /// Drains the queue (workers finish every accepted request), then
  /// joins the threads.
  ~SolveService();

  /// Asynchronous submission. Always returns a ticket; admission
  /// failures (queue full, shutting down, shed, open breaker, missing
  /// matrix) complete the ticket immediately with the rejection
  /// outcome.
  [[nodiscard]] std::shared_ptr<Ticket> submit(SolveRequest req);

  /// Synchronous convenience: submit and wait.
  [[nodiscard]] SolveResponse solve(SolveRequest req);

  /// Stop accepting work. drain=true (the destructor's mode) lets
  /// workers finish everything already queued; drain=false completes
  /// queued-but-unstarted requests as kRejectedShutdown. Attempts
  /// parked in retry backoff complete immediately with their last
  /// failure (retrying is best-effort; shutdown does not wait out
  /// backoff). Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;

  /// The plan cache, exposed for prewarming and inspection.
  [[nodiscard]] PlanCache& plan_cache() { return cache_; }
  [[nodiscard]] const PlanCache& plan_cache() const { return cache_; }

  /// The per-plan circuit breakers, exposed for inspection.
  [[nodiscard]] const CircuitBreaker& breaker() const { return breaker_; }

  [[nodiscard]] const ServiceOptions& options() const { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-request state shared by every attempt (hedges, retries,
  /// requeues) of one submission. Mutable accounting fields are
  /// guarded by the service mutex.
  struct RequestState {
    SolveRequest req;
    std::shared_ptr<Ticket> ticket;
    Clock::time_point submitted{};
    std::chrono::milliseconds budget{0};  ///< deadline budget (0 = none)
    std::uint64_t fingerprint = 0;  ///< 0 when not plan-path
    PlanConfig config{};
    bool plan_path = false;  ///< block-async: plan cache + batchable
    std::string solver;      ///< current solver (fallbacks rewrite it)
    std::uint32_t attempts_started = 0;
    std::uint32_t attempts_on_solver = 0;  ///< resets per fallback switch
    std::size_t fallback_index = 0;
    std::size_t requeues = 0;
    std::size_t hedges = 0;
    bool degraded = false;
  };

  /// One dispatchable attempt of a request.
  struct Attempt {
    std::shared_ptr<RequestState> rs;
    common::CancelToken token;  ///< parent = &rs->ticket->token_
    Clock::time_point enqueued{};
    Clock::time_point dispatched{};
    Clock::time_point deadline{Clock::time_point::max()};
    Clock::time_point stuck_at{Clock::time_point::max()};
    Clock::time_point ready_at{};  ///< parked retries: earliest dispatch
    bool running = false;
    bool is_hedge = false;         ///< launched as a hedged duplicate
    bool hedge_spawned = false;    ///< this attempt already has a hedge
    bool watchdogged = false;      ///< already declared stuck
    std::string park_error;        ///< last failure (parked retries)
  };
  using AttemptPtr = std::shared_ptr<Attempt>;

  void worker_loop();
  void supervisor_loop();
  void execute_batch(std::vector<AttemptPtr> batch);
  void run_one(Attempt& p, const std::shared_ptr<SolvePlan>& plan,
               bool cache_hit, std::size_t batch_size);
  void finish(Attempt& p, SolveResponse&& resp);
  /// Decide what to do with a failed attempt: park for retry, switch
  /// to a fallback solver, or surface the failure. Returns true when
  /// the failure was absorbed (attempt re-scheduled; do not complete).
  [[nodiscard]] bool absorb_failure(Attempt& p, const SolveResponse& resp);
  /// Build a fresh attempt for `rs` with a fresh deadline budget.
  [[nodiscard]] AttemptPtr make_attempt(const std::shared_ptr<RequestState>& rs,
                                        Clock::time_point now) const;
  /// Map a kAborted solver exit to the outcome the token reason implies.
  static RequestOutcome aborted_outcome(const common::CancelToken& token);
  void update_queue_gauges() BARS_REQUIRES(mu_);
  void count_outcome_locked(RequestOutcome outcome, value_t queue_seconds,
                            value_t solve_seconds, bool is_hedge)
      BARS_REQUIRES(mu_);

  ServiceOptions opts_;
  PlanCache cache_;
  CircuitBreaker breaker_;

  mutable common::Mutex mu_;
  common::ConditionVariable work_cv_;        ///< workers: queue/stop changed
  common::ConditionVariable supervisor_cv_;  ///< supervisor: timers changed
  std::deque<AttemptPtr> queue_ BARS_GUARDED_BY(mu_);
  std::vector<AttemptPtr> running_ BARS_GUARDED_BY(mu_);
  std::vector<AttemptPtr> parked_ BARS_GUARDED_BY(mu_);
  bool stopping_ BARS_GUARDED_BY(mu_) = false;
  bool supervisor_stop_ BARS_GUARDED_BY(mu_) = false;
  ServiceStats stats_ BARS_GUARDED_BY(mu_);
  LoadShedController shed_ BARS_GUARDED_BY(mu_);
  LatencyTracker latency_ BARS_GUARDED_BY(mu_);
  Rng jitter_rng_ BARS_GUARDED_BY(mu_);

  // Pre-registered metric handles (null when opts_.metrics is null).
  // Recorded only under mu_ — MetricsRegistry is not thread-safe.
  telemetry::Counter* m_requests_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_rejected_breaker_ = nullptr;
  telemetry::Counter* m_rejected_shed_ = nullptr;
  telemetry::Counter* m_deadline_ = nullptr;
  telemetry::Counter* m_cancelled_ = nullptr;
  telemetry::Counter* m_failed_ = nullptr;
  telemetry::Counter* m_solved_ = nullptr;
  telemetry::Counter* m_batches_ = nullptr;
  telemetry::Counter* m_retries_ = nullptr;
  telemetry::Counter* m_hedges_ = nullptr;
  telemetry::Counter* m_requeues_ = nullptr;
  telemetry::Counter* m_fallbacks_ = nullptr;
  telemetry::Counter* m_cache_hits_ = nullptr;
  telemetry::Counter* m_cache_misses_ = nullptr;
  telemetry::Gauge* m_queue_depth_ = nullptr;
  telemetry::Gauge* m_active_ = nullptr;
  telemetry::Gauge* m_cache_size_ = nullptr;
  telemetry::Gauge* m_shed_active_ = nullptr;
  telemetry::Histogram* m_queue_seconds_ = nullptr;
  telemetry::Histogram* m_solve_seconds_ = nullptr;

  std::vector<common::Thread> workers_;
  common::Thread supervisor_;
};

}  // namespace bars::service

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file degradation.hpp
/// Graceful degradation under overload for the service layer.
///
/// Two mechanisms, both driven by one DegradationPolicy:
///
/// *Load shedding.* When the service is saturated — queue depth above
/// a high watermark, or the recent deadline-miss rate above a
/// threshold — it stops taking the cheapest-to-lose work first:
/// submissions whose priority falls below `shed_priority_floor` are
/// rejected immediately with kRejectedLoadShed, and a full queue
/// evicts its lowest-priority entry to admit a strictly
/// higher-priority newcomer. Shedding deactivates (with hysteresis)
/// once the queue drains below the low watermark.
///
/// *Fallback chains.* Instead of surfacing kFailed after retries are
/// exhausted — or rejecting outright on an open circuit breaker — the
/// request is re-run with the next solver in `fallback_chain` (e.g.
/// block-async -> block-jacobi -> cg), trading the planned/batched
/// fast path for an answer. Responses report `degraded = true` and the
/// solver that actually produced the result.
///
/// LoadShedController is the pure state machine (no clocks, no locks —
/// SolveService drives it under its own mutex); docs/SERVICE.md
/// ("Hardening") is the behavioral contract.

namespace bars::service {

struct DegradationPolicy {
  /// Off by default: an un-hardened service behaves exactly as before.
  bool enabled = false;

  /// Shed activates when queue depth >= high_watermark * capacity and
  /// deactivates when depth <= low_watermark * capacity.
  double shed_high_watermark = 0.75;
  double shed_low_watermark = 0.25;
  /// Shed also activates when the deadline-miss rate over the last
  /// `miss_window` finished requests reaches `shed_miss_rate`
  /// (0 disables the trigger; the queue watermark still applies).
  double shed_miss_rate = 0.0;
  std::size_t miss_window = 64;
  /// While shedding, submissions with priority below this floor are
  /// rejected with kRejectedLoadShed.
  int shed_priority_floor = 1;

  /// Solvers tried, in order, after the primary solver's retries are
  /// exhausted (or instead of a kRejectedCircuitOpen fast-fail).
  std::vector<std::string> fallback_chain;

  [[nodiscard]] bool has_fallbacks() const noexcept {
    return enabled && !fallback_chain.empty();
  }
};

/// Shed-mode state machine with hysteresis. The owner feeds it queue
/// depth changes and deadline-miss observations; it answers "is shed
/// mode on?" and counts activations/deactivations so harnesses can
/// gate that shedding both engaged and released.
class LoadShedController {
 public:
  LoadShedController(const DegradationPolicy& policy, std::size_t capacity);

  /// Re-evaluate after a queue-depth change. Returns the (possibly
  /// new) shed state.
  bool update_queue_depth(std::size_t depth);

  /// Record whether a finished request missed its deadline.
  void record_outcome(bool deadline_missed);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t activations() const noexcept {
    return activations_;
  }
  [[nodiscard]] std::uint64_t deactivations() const noexcept {
    return deactivations_;
  }
  /// Current deadline-miss rate over the observation window ([0, 1]).
  [[nodiscard]] double miss_rate() const noexcept;

 private:
  void set_active(bool next);

  DegradationPolicy policy_;
  std::size_t high_depth_ = 0;  ///< precomputed watermark depths
  std::size_t low_depth_ = 0;
  bool active_ = false;
  std::uint64_t activations_ = 0;
  std::uint64_t deactivations_ = 0;
  std::size_t last_depth_ = 0;
  /// Ring of the last `miss_window` outcomes (1 = missed deadline).
  std::vector<std::uint8_t> window_;
  std::size_t window_next_ = 0;
  std::size_t window_filled_ = 0;
  std::size_t window_misses_ = 0;
};

}  // namespace bars::service

#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

/// \file fingerprint.hpp
/// Content fingerprint for sparse matrices — the plan-cache key.
///
/// Two matrices with equal dimensions, sparsity pattern, and values
/// produce the same fingerprint; any structural or numerical change
/// produces (with overwhelming probability) a different one. The hash
/// is FNV-1a over the CSR arrays' bytes, so it is deterministic across
/// runs and platforms of equal endianness and costs one O(nnz) pass —
/// negligible next to the per-block analysis it lets the cache skip.

namespace bars::service {

/// 64-bit FNV-1a over (rows, cols, row_ptr, col_idx, values).
[[nodiscard]] std::uint64_t matrix_fingerprint(const Csr& a) noexcept;

/// The raw FNV-1a primitive, exposed for composing derived keys
/// (the plan cache folds partition config into the matrix hash).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                                    std::uint64_t seed) noexcept;

}  // namespace bars::service

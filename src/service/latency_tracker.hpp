#pragma once

#include <cstddef>
#include <vector>

#include "sparse/types.hpp"

/// \file latency_tracker.hpp
/// Fixed-size ring of recent request latencies with percentile queries
/// — the signal the hedging policy keys off ("launch a duplicate once
/// the primary has run longer than p95 of recent solves").
///
/// Not thread-safe on its own; SolveService records and queries under
/// its service mutex. Percentile queries copy the ring (a few hundred
/// doubles) and nth_element — cheap at supervision frequency, and the
/// record path stays O(1).

namespace bars::service {

class LatencyTracker {
 public:
  explicit LatencyTracker(std::size_t window = 256);

  void record(value_t seconds);

  /// Percentile (q in [0, 1]) over the recorded window; returns
  /// `fallback` until at least `min_samples` latencies are recorded so
  /// early hedges do not key off one cold-start outlier.
  [[nodiscard]] value_t percentile(double q, value_t fallback = 0.0,
                                   std::size_t min_samples = 8) const;

  [[nodiscard]] std::size_t size() const noexcept { return filled_; }

 private:
  std::vector<value_t> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
};

}  // namespace bars::service

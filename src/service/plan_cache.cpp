#include "service/plan_cache.hpp"

#include <stdexcept>
#include <utility>

#include "backend/registry.hpp"
#include "service/fingerprint.hpp"

namespace bars::service {

std::size_t PlanCache::KeyHash::operator()(const Key& k) const noexcept {
  // Fold the config into the matrix fingerprint with the same FNV-1a
  // primitive the fingerprint itself uses. The backend name is part of
  // the key: a plan built for one backend must never hash-collide into
  // serving another (equality would still reject it; keying it keeps
  // the buckets honest).
  const index_t cfg[2] = {k.config.block_size, k.config.local_iters};
  const std::uint64_t seed =
      fnv1a64(cfg, sizeof(cfg), k.fingerprint ^ 0xcbf29ce484222325ULL);
  return static_cast<std::size_t>(
      fnv1a64(k.config.backend.data(), k.config.backend.size(), seed));
}

PlanCache::PlanCache(std::size_t capacity)
    : PlanCache(PlanCacheOptions{capacity, PlanCacheOptions{}.negative_ttl}) {}

PlanCache::PlanCache(PlanCacheOptions opts) : opts_(opts) {
  if (opts_.capacity == 0) {
    throw std::invalid_argument("PlanCache: capacity must be >= 1");
  }
}

void PlanCache::erase_entry(Map::iterator it) {
  if (it->second.plan->kernel == nullptr) --negative_entries_;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
}

std::shared_ptr<SolvePlan> PlanCache::acquire(const Csr& a,
                                              const PlanConfig& config,
                                              bool* hit,
                                              const char* inject_failure) {
  const Key key{matrix_fingerprint(a), config};
  const Clock::time_point now = Clock::now();
  common::MutexLock lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    if (now >= it->second.expires_at) {
      // A cached construction failure has aged out: forget it and
      // rebuild below, so a transient failure cannot poison the
      // fingerprint past the TTL.
      ++negative_expirations_;
      erase_entry(it);
    } else {
      ++hits_;
      if (hit != nullptr) *hit = true;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.plan;
    }
  }
  ++misses_;
  if (hit != nullptr) *hit = false;

  // Build under the lock: misses are the rare path by design, and
  // holding the lock guarantees no two workers duplicate the same
  // expensive analysis.
  auto plan = std::make_shared<SolvePlan>();
  plan->fingerprint = key.fingerprint;
  plan->config = config;
  if (inject_failure != nullptr) {
    plan->kernel = nullptr;
    plan->kernel_error = inject_failure;
  } else {
    plan->matrix = a;
    plan->partition = RowPartition::uniform(a.rows(), config.block_size);
    plan->owner_table = plan->partition.owner_table();
    plan->seed_rhs.assign(static_cast<std::size_t>(a.rows()), 0.0);
    try {
      // Unknown backend names throw std::invalid_argument here and
      // become negative entries like any other construction failure.
      plan->kernel =
          backend::build_kernel(config.backend, plan->matrix, plan->seed_rhs,
                                plan->partition, {config.local_iters});
    } catch (const std::exception& e) {
      plan->kernel = nullptr;
      plan->kernel_error = e.what();
    }
  }

  if (map_.size() >= opts_.capacity) {
    const auto victim = map_.find(lru_.back());
    erase_entry(victim);
    ++evictions_;
  }
  lru_.push_front(key);
  Entry entry{plan, lru_.begin(), Clock::time_point::max()};
  if (plan->kernel == nullptr) {
    ++negative_entries_;
    if (opts_.negative_ttl.count() > 0) {
      entry.expires_at = now + opts_.negative_ttl;
    }
  }
  map_.emplace(key, entry);
  return plan;
}

std::shared_ptr<SolvePlan> PlanCache::peek(std::uint64_t fingerprint,
                                           const PlanConfig& config) const {
  common::MutexLock lock(mu_);
  const auto it = map_.find(Key{fingerprint, config});
  if (it == map_.end()) return nullptr;
  if (Clock::now() >= it->second.expires_at) return nullptr;  // aged out
  return it->second.plan;
}

PlanCacheStats PlanCache::stats() const {
  common::MutexLock lock(mu_);
  PlanCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.negative_expirations = negative_expirations_;
  out.size = map_.size();
  out.negative_entries = negative_entries_;
  out.capacity = opts_.capacity;
  return out;
}

void PlanCache::clear() {
  common::MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  negative_entries_ = 0;
}

}  // namespace bars::service

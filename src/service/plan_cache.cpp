#include "service/plan_cache.hpp"

#include <stdexcept>
#include <utility>

#include "service/fingerprint.hpp"

namespace bars::service {

std::size_t PlanCache::KeyHash::operator()(const Key& k) const noexcept {
  // Fold the config into the matrix fingerprint with the same FNV-1a
  // primitive the fingerprint itself uses.
  const index_t cfg[2] = {k.config.block_size, k.config.local_iters};
  return static_cast<std::size_t>(
      fnv1a64(cfg, sizeof(cfg), k.fingerprint ^ 0xcbf29ce484222325ULL));
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PlanCache: capacity must be >= 1");
  }
}

std::shared_ptr<SolvePlan> PlanCache::acquire(const Csr& a,
                                              const PlanConfig& config,
                                              bool* hit) {
  const Key key{matrix_fingerprint(a), config};
  common::MutexLock lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    ++hits_;
    if (hit != nullptr) *hit = true;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.plan;
  }
  ++misses_;
  if (hit != nullptr) *hit = false;

  // Build under the lock: misses are the rare path by design, and
  // holding the lock guarantees no two workers duplicate the same
  // expensive analysis.
  auto plan = std::make_shared<SolvePlan>();
  plan->fingerprint = key.fingerprint;
  plan->config = config;
  plan->matrix = a;
  plan->partition = RowPartition::uniform(a.rows(), config.block_size);
  plan->owner_table = plan->partition.owner_table();
  plan->seed_rhs.assign(static_cast<std::size_t>(a.rows()), 0.0);
  try {
    plan->kernel = std::make_unique<BlockJacobiKernel>(
        plan->matrix, plan->seed_rhs, plan->partition, config.local_iters);
  } catch (const std::exception& e) {
    plan->kernel = nullptr;
    plan->kernel_error = e.what();
  }

  if (map_.size() >= capacity_) {
    const Key& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{plan, lru_.begin()});
  return plan;
}

std::shared_ptr<SolvePlan> PlanCache::peek(std::uint64_t fingerprint,
                                           const PlanConfig& config) const {
  common::MutexLock lock(mu_);
  const auto it = map_.find(Key{fingerprint, config});
  return it == map_.end() ? nullptr : it->second.plan;
}

PlanCacheStats PlanCache::stats() const {
  common::MutexLock lock(mu_);
  return {hits_, misses_, evictions_, map_.size(), capacity_};
}

void PlanCache::clear() {
  common::MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace bars::service

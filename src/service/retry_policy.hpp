#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

/// \file retry_policy.hpp
/// Retry and hedging policy for the service layer.
///
/// A RetryPolicy bounds how often the service re-runs a failed attempt
/// (bounded attempts, exponential backoff with decorrelated jitter so a
/// burst of same-matrix failures does not re-land in lockstep) and when
/// it launches a *hedged* duplicate of a slow in-flight request (after
/// the observed latency percentile, first success wins, the loser is
/// cooperatively cancelled with CancelReason::kHedge).
///
/// Everything here is pure policy arithmetic — no clocks, no threads —
/// so it is unit-testable in isolation; SolveService owns the timing.
/// docs/SERVICE.md ("Hardening") is the behavioral contract.

namespace bars::service {

struct RetryPolicy {
  /// Total attempts per request including the first (1 = retries off,
  /// the default: a fault-free service behaves exactly as before).
  std::size_t max_attempts = 1;
  /// Backoff before attempt k (2nd attempt = base, then * multiplier).
  std::chrono::milliseconds backoff_base{20};
  double backoff_multiplier = 2.0;
  /// Backoff never exceeds this, whatever the multiplier says.
  std::chrono::milliseconds backoff_cap{2000};
  /// Uniform jitter fraction in [0, 1): each computed backoff is
  /// scaled by a factor drawn from [1 - jitter, 1 + jitter].
  double jitter = 0.2;

  /// Hedging: after a plan-path request has been running longer than
  /// the `hedge_percentile` of recently observed solve latencies
  /// (floored at `hedge_min_delay`), submit one duplicate attempt.
  /// First success completes the ticket; the other attempt is
  /// cancelled with CancelReason::kHedge.
  bool hedging = false;
  double hedge_percentile = 0.95;
  std::chrono::milliseconds hedge_min_delay{10};
  /// Duplicates per request (1 = at most one hedge).
  std::size_t max_hedges = 1;

  [[nodiscard]] bool retries_enabled() const noexcept {
    return max_attempts > 1;
  }

  /// Backoff before retry attempt `attempt` (attempt 2 is the first
  /// retry). `jitter_u` is a uniform draw in [0, 1) supplied by the
  /// caller so the policy itself stays deterministic and seedable.
  [[nodiscard]] std::chrono::milliseconds backoff(std::size_t attempt,
                                                  double jitter_u) const;
};

}  // namespace bars::service

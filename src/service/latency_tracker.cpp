#include "service/latency_tracker.hpp"

#include <algorithm>

namespace bars::service {

LatencyTracker::LatencyTracker(std::size_t window)
    : ring_(std::max<std::size_t>(1, window), 0.0) {}

void LatencyTracker::record(value_t seconds) {
  ring_[next_] = seconds;
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
}

value_t LatencyTracker::percentile(double q, value_t fallback,
                                   std::size_t min_samples) const {
  if (filled_ < std::max<std::size_t>(1, min_samples)) return fallback;
  std::vector<value_t> scratch(ring_.begin(),
                               ring_.begin() + static_cast<std::ptrdiff_t>(filled_));
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(filled_ - 1) + 0.5);
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(idx),
                   scratch.end());
  return scratch[idx];
}

}  // namespace bars::service

#include "service/fingerprint.hpp"

namespace bars::service {

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t matrix_fingerprint(const Csr& a) noexcept {
  constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  const index_t dims[2] = {a.rows(), a.cols()};
  std::uint64_t h = fnv1a64(dims, sizeof(dims), kOffsetBasis);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto vs = a.values();
  h = fnv1a64(rp.data(), rp.size() * sizeof(index_t), h);
  h = fnv1a64(ci.data(), ci.size() * sizeof(index_t), h);
  h = fnv1a64(vs.data(), vs.size() * sizeof(value_t), h);
  return h;
}

}  // namespace bars::service

#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/kernel_backend.hpp"
#include "common/annotations.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

/// \file plan_cache.hpp
/// The solve-plan cache: amortizes per-matrix setup across requests.
///
/// A *plan* is everything a block-async solve computes before its first
/// global iteration that depends only on the matrix and the partition
/// config — never on the right-hand side: the row partition, the dense
/// owner table, the per-block halo lists / local-global splits /
/// diagonal factors (all inside the backend's BlockSweepKernel), and
/// the kernel's construction-sized scratch arenas.
/// BlockSweepKernel::set_rhs repoints the RHS without rebuilding any of
/// it, which is what makes one plan serve many requests and multi-RHS
/// batches.
///
/// Keying and eviction (docs/SERVICE.md has the full contract):
///   key   = (matrix fingerprint, block_size, local_iters, backend)
///   evict = least-recently-used once `capacity` distinct plans exist.
/// Plans are handed out as shared_ptr, so eviction never destroys a
/// plan a worker is still solving with.

namespace bars::service {

/// Partition/sweep configuration a plan is built for. Requests with a
/// different config on the same matrix get a distinct plan (the kernel
/// analysis depends on these).
struct PlanConfig {
  index_t block_size = 448;
  index_t local_iters = 5;
  /// Compute backend the kernel is built with (docs/BACKENDS.md).
  /// Part of the cache key: backends differ in memory layout and FP
  /// rounding, so a plan built for one backend is never served to a
  /// request asking for another.
  std::string backend = "scalar";
  friend bool operator==(const PlanConfig&, const PlanConfig&) = default;
};

/// One cached per-matrix setup. Workers must hold `mu` while using
/// `kernel` (set_rhs repoints shared state) — the cache itself never
/// touches the kernel after construction.
struct SolvePlan {
  std::uint64_t fingerprint = 0;
  PlanConfig config{};
  /// The service solves against this owned copy, so a plan (and any
  /// batch riding on it) never dangles when the submitter's matrix
  /// goes away.
  Csr matrix;
  RowPartition partition;
  std::vector<index_t> owner_table;
  /// Zero vector the kernel is bound to at construction; every request
  /// repoints the kernel at its own RHS via set_rhs(). Also reused as
  /// the default initial guess (x0 = 0) without reallocating.
  Vector seed_rhs;
  /// Null when kernel construction failed (e.g. zero diagonal): such
  /// matrices are still cached so repeat offenders fail fast, and the
  /// failure reason is kept in `kernel_error`.
  std::unique_ptr<backend::BlockSweepKernel> kernel;
  std::string kernel_error;
  /// Serializes kernel use across workers: set_rhs + the executor run
  /// must be one critical section per request/batch.
  common::Mutex mu;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t negative_expirations = 0;  ///< failed entries aged out
  std::size_t size = 0;              ///< plans currently resident
  std::size_t negative_entries = 0;  ///< resident plans with a failed kernel
  std::size_t capacity = 0;
};

struct PlanCacheOptions {
  /// Distinct plans kept resident (>= 1 enforced in the constructor).
  std::size_t capacity = 8;
  /// How long a *negative* entry (cached kernel-construction failure)
  /// stays authoritative. Within the TTL, repeat offenders fail fast
  /// without re-running the analysis; after it, the next acquire
  /// rebuilds from scratch — so a transient construction failure can
  /// never poison a matrix fingerprint forever. Zero or negative means
  /// negative entries never expire (the pre-TTL behavior).
  std::chrono::milliseconds negative_ttl{30000};
};

/// LRU map from (fingerprint, config) to shared SolvePlan. Thread-safe;
/// all members may be called concurrently.
class PlanCache {
 public:
  /// `capacity` >= 1 (throws otherwise).
  explicit PlanCache(std::size_t capacity);
  explicit PlanCache(PlanCacheOptions opts);

  /// Return the plan for (a, config), building and inserting it on a
  /// miss (evicting the least-recently-used entry when full). The
  /// returned pointer is never null; a plan whose kernel failed to
  /// build has plan->kernel == nullptr and a non-empty kernel_error.
  /// When `hit` is non-null it reports whether this call was served
  /// from cache. A cached failure past its negative TTL counts as a
  /// miss and is rebuilt. `inject_failure`, when non-null, makes any
  /// *build* this call performs produce a negative entry with that
  /// reason instead of running the analysis (cache hits are unaffected
  /// — an already-built plan does not retroactively fail). This is the
  /// hook fault injection uses to simulate plan-construction failure
  /// bursts (resilience/service_faults.hpp).
  [[nodiscard]] std::shared_ptr<SolvePlan> acquire(
      const Csr& a, const PlanConfig& config, bool* hit = nullptr,
      const char* inject_failure = nullptr);

  /// Like acquire() but never builds: null on miss, and the LRU order
  /// is untouched (peeking is not a use).
  [[nodiscard]] std::shared_ptr<SolvePlan> peek(std::uint64_t fingerprint,
                                                const PlanConfig& config) const;

  [[nodiscard]] PlanCacheStats stats() const;

  /// Drop every cached plan (in-flight shared_ptrs stay valid).
  void clear();

 private:
  using Clock = std::chrono::steady_clock;

  struct Key {
    std::uint64_t fingerprint;
    PlanConfig config;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    std::shared_ptr<SolvePlan> plan;
    std::list<Key>::iterator lru_pos;
    /// Negative entries only: when the cached failure stops being
    /// authoritative. max() for positive entries (never expires).
    Clock::time_point expires_at = Clock::time_point::max();
  };

  using Map = std::unordered_map<Key, Entry, KeyHash>;

  void erase_entry(Map::iterator it) BARS_REQUIRES(mu_);

  PlanCacheOptions opts_;
  mutable common::Mutex mu_;
  std::list<Key> lru_ BARS_GUARDED_BY(mu_);  ///< front = most recent
  Map map_ BARS_GUARDED_BY(mu_);
  std::uint64_t hits_ BARS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ BARS_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ BARS_GUARDED_BY(mu_) = 0;
  std::uint64_t negative_expirations_ BARS_GUARDED_BY(mu_) = 0;
  std::size_t negative_entries_ BARS_GUARDED_BY(mu_) = 0;
};

}  // namespace bars::service

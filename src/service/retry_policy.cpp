#include "service/retry_policy.hpp"

#include <algorithm>
#include <cmath>

namespace bars::service {

std::chrono::milliseconds RetryPolicy::backoff(std::size_t attempt,
                                               double jitter_u) const {
  if (attempt < 2) return std::chrono::milliseconds{0};
  const double exponent = static_cast<double>(attempt - 2);
  double ms = static_cast<double>(backoff_base.count()) *
              std::pow(std::max(1.0, backoff_multiplier), exponent);
  ms = std::min(ms, static_cast<double>(backoff_cap.count()));
  // Map jitter_u in [0,1) to a factor in [1 - jitter, 1 + jitter].
  const double j = std::clamp(jitter, 0.0, 1.0);
  const double factor = 1.0 + j * (2.0 * jitter_u - 1.0);
  ms = std::max(0.0, ms * factor);
  return std::chrono::milliseconds{static_cast<std::int64_t>(ms)};
}

}  // namespace bars::service

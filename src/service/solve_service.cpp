#include "service/solve_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/block_async.hpp"
#include "resilience/recovery.hpp"
#include "resilience/service_faults.hpp"
#include "service/fingerprint.hpp"

namespace bars::service {

namespace {

[[nodiscard]] value_t seconds_between(std::chrono::steady_clock::time_point a,
                                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<value_t>(b - a).count();
}

[[nodiscard]] std::chrono::steady_clock::duration from_seconds(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts),
      cache_(PlanCacheOptions{
          opts.plan_cache_capacity == 0 ? 1 : opts.plan_cache_capacity,
          opts.plan_negative_ttl}),
      breaker_(opts.breaker),
      shed_(opts.degradation, opts.queue_capacity),
      jitter_rng_(opts.jitter_seed) {
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.supervision.grace_factor < 1.0) opts_.supervision.grace_factor = 1.0;
  if (opts_.metrics != nullptr) {
    telemetry::MetricsRegistry& m = *opts_.metrics;
    m_requests_ = &m.counter("service_requests_total");
    m_rejected_ = &m.counter("service_rejected_queue_full");
    m_rejected_breaker_ = &m.counter("service_rejected_circuit_open");
    m_rejected_shed_ = &m.counter("service_rejected_load_shed");
    m_deadline_ = &m.counter("service_deadline_expired");
    m_cancelled_ = &m.counter("service_cancelled");
    m_failed_ = &m.counter("service_failed");
    m_solved_ = &m.counter("service_solved");
    m_batches_ = &m.counter("service_batches");
    m_retries_ = &m.counter("service_retries");
    m_hedges_ = &m.counter("service_hedges");
    m_requeues_ = &m.counter("service_requeues");
    m_fallbacks_ = &m.counter("service_fallbacks");
    m_cache_hits_ = &m.counter("service_plan_cache_hits");
    m_cache_misses_ = &m.counter("service_plan_cache_misses");
    m_queue_depth_ = &m.gauge("service_queue_depth");
    m_active_ = &m.gauge("service_active_solves");
    m_cache_size_ = &m.gauge("service_plan_cache_size");
    m_shed_active_ = &m.gauge("service_shed_active");
    static constexpr value_t kLatencyBuckets[] = {1e-4, 1e-3, 1e-2,
                                                  1e-1, 1.0,  10.0};
    m_queue_seconds_ = &m.histogram("service_queue_seconds", kLatencyBuckets);
    m_solve_seconds_ = &m.histogram("service_solve_seconds", kLatencyBuckets);
  }

  const index_t n = std::max<index_t>(1, opts_.num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  supervisor_ = common::Thread([this] { supervisor_loop(); });
}

SolveService::~SolveService() { shutdown(/*drain=*/true); }

RequestOutcome SolveService::aborted_outcome(const common::CancelToken& token) {
  return token.reason() == common::CancelReason::kDeadline
             ? RequestOutcome::kDeadlineExpired
             : RequestOutcome::kCancelled;
}

SolveService::AttemptPtr SolveService::make_attempt(
    const std::shared_ptr<RequestState>& rs, Clock::time_point now) const {
  auto p = std::make_shared<Attempt>();
  p->rs = rs;
  p->token.set_parent(&rs->ticket->token_);
  p->enqueued = now;
  ++rs->attempts_started;
  ++rs->attempts_on_solver;
  if (rs->budget.count() > 0) {
    // Every attempt gets a fresh deadline budget from its enqueue time:
    // a retry or a watchdog requeue is not condemned by the time its
    // predecessor burned.
    p->deadline = now + rs->budget;
    if (opts_.supervision.max_requeues > 0) {
      p->stuck_at = now + std::chrono::duration_cast<Clock::duration>(
                              rs->budget * opts_.supervision.grace_factor);
    }
  }
  return p;
}

void SolveService::update_queue_gauges() {
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->set(static_cast<value_t>(queue_.size()));
  }
  if (m_active_ != nullptr) {
    m_active_->set(static_cast<value_t>(running_.size()));
  }
  if (m_shed_active_ != nullptr) {
    m_shed_active_->set(shed_.active() ? 1.0 : 0.0);
  }
}

std::shared_ptr<Ticket> SolveService::submit(SolveRequest req) {
  auto ticket = std::make_shared<Ticket>();

  const auto reject = [&](RequestOutcome outcome, std::string error) {
    SolveResponse r;
    r.outcome = outcome;
    r.result.status = SolverStatus::kAborted;
    r.error = std::move(error);
    (void)ticket->try_complete(std::move(r));
    return ticket;
  };

  if (!req.matrix) {
    common::MutexLock lock(mu_);
    ++stats_.submitted;
    ++stats_.failed;
    if (m_requests_ != nullptr) m_requests_->inc();
    if (m_failed_ != nullptr) m_failed_->inc();
    return reject(RequestOutcome::kFailed, "SolveRequest::matrix is null");
  }

  auto rs = std::make_shared<RequestState>();
  rs->plan_path = req.solver == "block-async";
  if (rs->plan_path) {
    if (req.options.block_size <= 0 || req.options.local_iters <= 0) {
      common::MutexLock lock(mu_);
      ++stats_.submitted;
      ++stats_.failed;
      if (m_requests_ != nullptr) m_requests_->inc();
      if (m_failed_ != nullptr) m_failed_->inc();
      return reject(RequestOutcome::kFailed,
                    "block_size and local_iters must be > 0");
    }
    // Fingerprint outside the service lock: O(nnz), but it buys the
    // cache lookup, the batching key, and the breaker key.
    rs->fingerprint = matrix_fingerprint(*req.matrix);
    rs->config = PlanConfig{req.options.block_size, req.options.local_iters,
                            req.options.backend};
  }
  rs->req = std::move(req);
  rs->ticket = ticket;
  rs->solver = rs->req.solver;
  rs->submitted = Clock::now();
  const auto deadline = rs->req.deadline.count() != 0 ? rs->req.deadline
                                                      : opts_.default_deadline;
  if (deadline.count() > 0) rs->budget = deadline;

  AttemptPtr evicted;
  {
    common::MutexLock lock(mu_);
    ++stats_.submitted;
    if (m_requests_ != nullptr) m_requests_->inc();
    if (stopping_) {
      ++stats_.rejected_shutdown;
      return reject(RequestOutcome::kRejectedShutdown,
                    "service is shutting down");
    }

    // Load shed: under overload, the cheapest-to-lose work is rejected
    // before it ever costs a queue slot.
    if (opts_.degradation.enabled && shed_.active() &&
        rs->req.priority < opts_.degradation.shed_priority_floor) {
      ++stats_.rejected_load_shed;
      if (m_rejected_shed_ != nullptr) m_rejected_shed_->inc();
      return reject(RequestOutcome::kRejectedLoadShed,
                    "shed under overload (priority below floor)");
    }

    // Circuit breaker: a plan key that keeps failing fails fast here
    // instead of burning a worker — or degrades onto the fallback
    // chain when one is configured.
    bool admitted_by_breaker = false;
    if (rs->plan_path && opts_.breaker.enabled) {
      if (breaker_.allow(rs->fingerprint, rs->config, rs->submitted)) {
        admitted_by_breaker = true;
      } else if (opts_.degradation.has_fallbacks()) {
        ++stats_.fallbacks;
        if (m_fallbacks_ != nullptr) m_fallbacks_->inc();
        rs->solver = opts_.degradation.fallback_chain.front();
        rs->fallback_index = 1;
        rs->degraded = true;
        rs->plan_path = false;
      } else {
        ++stats_.rejected_circuit_open;
        if (m_rejected_breaker_ != nullptr) m_rejected_breaker_->inc();
        return reject(RequestOutcome::kRejectedCircuitOpen,
                      "circuit breaker open for this plan");
      }
    }

    if (queue_.size() >= opts_.queue_capacity) {
      // Full queue: degradation may evict a strictly lower-priority
      // queued request to admit this one; otherwise plain rejection.
      auto victim = queue_.end();
      if (opts_.degradation.enabled) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          // Only first attempts are evictable: a queued hedge or
          // requeue has a running sibling that owns the ticket.
          if ((*it)->is_hedge || (*it)->rs->attempts_started > 1) continue;
          if ((*it)->rs->req.priority >= rs->req.priority) continue;
          if (victim == queue_.end() ||
              (*it)->rs->req.priority < (*victim)->rs->req.priority) {
            victim = it;
          }
        }
      }
      if (victim == queue_.end()) {
        if (admitted_by_breaker) {
          breaker_.release(rs->fingerprint, rs->config);
        }
        ++stats_.rejected_queue_full;
        if (m_rejected_ != nullptr) m_rejected_->inc();
        return reject(RequestOutcome::kRejectedQueueFull,
                      "request queue at capacity");
      }
      evicted = *victim;
      queue_.erase(victim);
      ++stats_.rejected_load_shed;
      if (m_rejected_shed_ != nullptr) m_rejected_shed_->inc();
      if (evicted->rs->plan_path && opts_.breaker.enabled) {
        breaker_.release(evicted->rs->fingerprint, evicted->rs->config);
      }
    }

    queue_.push_back(make_attempt(rs, rs->submitted));
    shed_.update_queue_depth(queue_.size());
    update_queue_gauges();
  }
  if (evicted) {
    SolveResponse r;
    r.outcome = RequestOutcome::kRejectedLoadShed;
    r.result.status = SolverStatus::kAborted;
    r.error = "evicted from queue by higher-priority work";
    r.queue_seconds = seconds_between(evicted->enqueued, Clock::now());
    (void)evicted->rs->ticket->try_complete(std::move(r));
  }
  work_cv_.notify_one();
  supervisor_cv_.notify_one();
  return ticket;
}

SolveResponse SolveService::solve(SolveRequest req) {
  return submit(std::move(req))->wait();
}

void SolveService::worker_loop() {
  for (;;) {
    std::vector<AttemptPtr> batch;
    {
      common::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stopping and drained
      batch.push_back(queue_.front());
      queue_.pop_front();
      const Attempt& first = *batch.front();
      if (opts_.batching && first.rs->plan_path && opts_.max_batch > 1) {
        // Fuse queued requests that would use the very same plan. Order
        // within the queue is preserved for everyone else.
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < opts_.max_batch;) {
          const Attempt& cand = **it;
          if (cand.rs->plan_path &&
              cand.rs->fingerprint == first.rs->fingerprint &&
              cand.rs->config == first.rs->config) {
            batch.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      const Clock::time_point dispatch_time = Clock::now();
      for (const auto& p : batch) {
        p->running = true;
        // Under the lock: the supervisor reads `dispatched` (for hedge
        // timers) from running_ entries.
        p->dispatched = dispatch_time;
        running_.push_back(p);
      }
      shed_.update_queue_depth(queue_.size());
      update_queue_gauges();
      if (batch.size() > 1) {
        ++stats_.batches;
        stats_.batched_requests += batch.size();
        if (m_batches_ != nullptr) m_batches_->inc();
      }
    }
    execute_batch(std::move(batch));
  }
}

void SolveService::execute_batch(std::vector<AttemptPtr> batch) {
  // Chaos: a stalled worker sits on its dispatch without holding any
  // plan lock — exactly the failure a hedge or a watchdog requeue is
  // supposed to rescue. The stall duration is scenario-bounded.
  if (opts_.chaos != nullptr) {
    const double stall_s = opts_.chaos->worker_stall_seconds();
    if (stall_s > 0.0) {
      opts_.chaos->count_stall();
      {
        common::MutexLock lock(mu_);
        ++stats_.chaos_stalls;
      }
      std::this_thread::sleep_for(from_seconds(stall_s));  // bars-lint: allow(unbounded-retry) scenario-bounded injected stall, not a retry wait
    }
  }

  std::shared_ptr<SolvePlan> plan;
  bool cache_hit = false;
  const Attempt& first = *batch.front();
  if (first.rs->plan_path) {
    const char* inject = nullptr;
    if (opts_.chaos != nullptr && opts_.chaos->plan_failure_active()) {
      inject = "injected plan-construction failure (chaos)";
    }
    plan = cache_.acquire(*first.rs->req.matrix, first.rs->config, &cache_hit,
                          inject);
    if (inject != nullptr && !cache_hit) opts_.chaos->count_plan_failure();
    common::MutexLock lock(mu_);
    if (cache_hit) {
      if (m_cache_hits_ != nullptr) m_cache_hits_->inc();
    } else if (m_cache_misses_ != nullptr) {
      m_cache_misses_->inc();
    }
    if (m_cache_size_ != nullptr) {
      m_cache_size_->set(static_cast<value_t>(cache_.stats().size));
    }
  }
  for (const auto& p : batch) {
    run_one(*p, plan, cache_hit, batch.size());
  }
}

void SolveService::run_one(Attempt& p, const std::shared_ptr<SolvePlan>& plan,
                           bool cache_hit, std::size_t batch_size) {
  SolveResponse resp;
  resp.plan_cache_hit = p.rs->plan_path && cache_hit;
  resp.batch_size = batch_size;
  resp.batched = batch_size > 1;
  const Clock::time_point start = Clock::now();
  resp.queue_seconds = seconds_between(p.enqueued, start);

  if (p.token.requested()) {
    // Cancelled or expired while queued: never dispatch the solver.
    resp.outcome = aborted_outcome(p.token);
    resp.result.status = SolverStatus::kAborted;
    if (p.rs->plan_path) {
      breaker_.release(p.rs->fingerprint, p.rs->config);
    }
    finish(p, std::move(resp));
    return;
  }

  RegistrySolveOptions o = p.rs->req.options;
  o.solve.cancel = &p.token;
  try {
    if (p.rs->plan_path && plan != nullptr) {
      if (plan->kernel == nullptr) {
        throw std::invalid_argument(plan->kernel_error);
      }
      // Mirror the registry's block-async entry exactly (same options
      // from the same RegistrySolveOptions fields), so a served solve
      // is bit-identical to find_solver("block-async") — the kernel is
      // just prebuilt.
      BlockAsyncOptions ao;
      ao.solve = o.solve;
      ao.block_size = o.block_size;
      ao.local_iters = o.local_iters;
      ao.backend = o.backend;
      ao.seed = o.seed;
      if (opts_.watchdog) {
        resilience::Policy policy;
        policy.online_detection = false;
        ao.resilience = policy;
      }
      // One request at a time per plan: set_rhs repoints shared kernel
      // state, so the executor run is part of the critical section.
      common::MutexLock plan_lock(plan->mu);
      resp.result =
          block_async_solve_with_kernel(plan->matrix, p.rs->req.b,
                                        *plan->kernel, ao)
              .solve;
      // Re-point the kernel at plan-owned storage so it never dangles
      // into a completed request's RHS while the plan sits in cache.
      plan->kernel->set_rhs(plan->seed_rhs);
    } else {
      resp.result = find_solver(p.rs->solver)(*p.rs->req.matrix, p.rs->req.b, o);
    }
    resp.outcome = resp.result.status == SolverStatus::kAborted
                       ? aborted_outcome(p.token)
                       : RequestOutcome::kSolved;
  } catch (const std::exception& e) {
    resp.outcome = RequestOutcome::kFailed;
    resp.result.status = SolverStatus::kAborted;
    resp.error = e.what();
  }
  resp.solve_seconds = seconds_between(start, Clock::now());

  // The breaker hears every plan-path verdict; attempts that ended
  // without one (cancelled mid-flight) release a possible probe slot.
  if (p.rs->plan_path) {
    switch (resp.outcome) {
      case RequestOutcome::kSolved:
        breaker_.record_success(p.rs->fingerprint, p.rs->config);
        break;
      case RequestOutcome::kFailed:
        breaker_.record_failure(p.rs->fingerprint, p.rs->config, Clock::now());
        break;
      default:
        breaker_.release(p.rs->fingerprint, p.rs->config);
        break;
    }
  }

  if (resp.outcome == RequestOutcome::kFailed && absorb_failure(p, resp)) {
    return;  // re-scheduled (parked for retry, or switched to a fallback)
  }
  finish(p, std::move(resp));
}

bool SolveService::absorb_failure(Attempt& p, const SolveResponse& resp) {
  common::MutexLock lock(mu_);
  if (stopping_ || p.token.requested() || p.rs->ticket->done()) return false;

  // A live sibling (hedge partner, watchdog replacement) still owns a
  // shot at this request: this failure retires silently instead of
  // completing the ticket or mutating shared request state under the
  // sibling's feet. Both failing at once is safe — the decisions
  // serialize on mu_, so the second failer sees no sibling and
  // proceeds to retry / fall back / surface.
  const auto is_sibling = [&](const AttemptPtr& a) {
    return a->rs == p.rs && a.get() != &p;
  };
  if (std::any_of(running_.begin(), running_.end(), is_sibling) ||
      std::any_of(queue_.begin(), queue_.end(), is_sibling) ||
      std::any_of(parked_.begin(), parked_.end(), is_sibling)) {
    ++stats_.late_completions;
    for (auto it = running_.begin(); it != running_.end(); ++it) {
      if (it->get() == &p) {
        running_.erase(it);
        break;
      }
    }
    update_queue_gauges();
    return true;
  }

  const auto now = Clock::now();
  AttemptPtr next;
  if (opts_.retry.retries_enabled() &&
      p.rs->attempts_on_solver < opts_.retry.max_attempts) {
    // Park a fresh attempt until its backoff elapses; the supervisor
    // promotes it back to the queue (workers never sleep on backoff).
    ++stats_.retries;
    if (m_retries_ != nullptr) m_retries_->inc();
    const auto delay = opts_.retry.backoff(p.rs->attempts_on_solver + 1,
                                           jitter_rng_.uniform());
    next = make_attempt(p.rs, now + delay);
    next->ready_at = now + delay;
    next->park_error = resp.error;
    parked_.push_back(next);
  } else if (opts_.degradation.has_fallbacks() &&
             p.rs->fallback_index < opts_.degradation.fallback_chain.size()) {
    // Retries exhausted on this solver: degrade down the chain rather
    // than surface kFailed. Front of the queue — the request already
    // waited its turn (and then some).
    ++stats_.fallbacks;
    if (m_fallbacks_ != nullptr) m_fallbacks_->inc();
    p.rs->solver = opts_.degradation.fallback_chain[p.rs->fallback_index++];
    p.rs->degraded = true;
    p.rs->plan_path = false;
    p.rs->attempts_on_solver = 0;
    next = make_attempt(p.rs, now);
    queue_.push_front(next);
  } else {
    return false;
  }

  for (auto it = running_.begin(); it != running_.end(); ++it) {
    if (it->get() == &p) {
      running_.erase(it);
      break;
    }
  }
  shed_.update_queue_depth(queue_.size());
  update_queue_gauges();
  work_cv_.notify_one();
  supervisor_cv_.notify_one();
  return true;
}

void SolveService::finish(Attempt& p, SolveResponse&& resp) {
  {
    common::MutexLock lock(mu_);
    resp.solver_used = p.rs->solver;
    resp.degraded = p.rs->degraded;
    resp.attempts = p.rs->attempts_started;
    resp.hedged = p.rs->hedges > 0;
    for (auto it = running_.begin(); it != running_.end(); ++it) {
      if (it->get() == &p) {
        running_.erase(it);
        break;
      }
    }

    const RequestOutcome outcome = resp.outcome;
    const value_t queue_seconds = resp.queue_seconds;
    const value_t solve_seconds = resp.solve_seconds;
    // Completed while still holding mu_, so a waiter that wakes on the
    // ticket observes fully-updated service stats (stats() serializes
    // on mu_ behind us). Lock order mu_ -> ticket mutex is the one
    // used everywhere; waiters never take mu_ under the ticket mutex.
    const bool won = p.rs->ticket->try_complete(std::move(resp));
    if (!won) {
      // A sibling attempt (hedge winner, watchdog requeue) got there
      // first; this attempt's work is dropped but accounted.
      ++stats_.late_completions;
      update_queue_gauges();
    } else {
      count_outcome_locked(outcome, queue_seconds, solve_seconds, p.is_hedge);
      // Cancel and unschedule the losers: queued/parked siblings are
      // removed outright, running ones are cooperatively cancelled.
      for (auto it = queue_.begin(); it != queue_.end();) {
        if ((*it)->rs == p.rs) {
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = parked_.begin(); it != parked_.end();) {
        if ((*it)->rs == p.rs) {
          it = parked_.erase(it);
        } else {
          ++it;
        }
      }
      for (const auto& r : running_) {
        if (r->rs == p.rs) {
          r->token.request_cancel(common::CancelReason::kHedge);
        }
      }
      shed_.update_queue_depth(queue_.size());
      update_queue_gauges();
    }
  }
  supervisor_cv_.notify_one();
}

void SolveService::count_outcome_locked(RequestOutcome outcome,
                                        value_t queue_seconds,
                                        value_t solve_seconds, bool is_hedge) {
  switch (outcome) {
    case RequestOutcome::kSolved:
      ++stats_.solved;
      if (m_solved_ != nullptr) m_solved_->inc();
      latency_.record(solve_seconds);
      if (is_hedge) ++stats_.hedge_wins;
      break;
    case RequestOutcome::kDeadlineExpired:
      ++stats_.deadline_expired;
      if (m_deadline_ != nullptr) m_deadline_->inc();
      break;
    case RequestOutcome::kCancelled:
      ++stats_.cancelled;
      if (m_cancelled_ != nullptr) m_cancelled_->inc();
      break;
    case RequestOutcome::kFailed:
      ++stats_.failed;
      if (m_failed_ != nullptr) m_failed_->inc();
      break;
    case RequestOutcome::kRejectedQueueFull:
    case RequestOutcome::kRejectedShutdown:
    case RequestOutcome::kRejectedCircuitOpen:
    case RequestOutcome::kRejectedLoadShed:
      break;  // counted at rejection time
  }
  if (opts_.degradation.enabled) {
    shed_.record_outcome(outcome == RequestOutcome::kDeadlineExpired);
  }
  if (m_queue_seconds_ != nullptr) m_queue_seconds_->record(queue_seconds);
  if (m_solve_seconds_ != nullptr) m_solve_seconds_->record(solve_seconds);
}

void SolveService::supervisor_loop() {
  common::MutexLock lock(mu_);
  while (!supervisor_stop_) {
    // Hedge delay for this evaluation round: the observed latency
    // percentile, floored so a cold tracker cannot hedge everything.
    const bool hedging = opts_.retry.hedging && !stopping_;
    Clock::duration hedge_delay{};
    if (hedging) {
      const value_t p = latency_.percentile(opts_.retry.hedge_percentile);
      hedge_delay = std::max<Clock::duration>(
          from_seconds(p),
          std::chrono::duration_cast<Clock::duration>(
              opts_.retry.hedge_min_delay));
    }
    const bool supervising = opts_.supervision.max_requeues > 0 && !stopping_;

    Clock::time_point earliest = Clock::time_point::max();
    for (const auto& p : queue_) earliest = std::min(earliest, p->deadline);
    for (const auto& p : parked_) earliest = std::min(earliest, p->ready_at);
    // Running attempts whose token is already tripped are the solver's
    // to finish — re-arming on their deadline would spin this loop (it
    // stays in the past until finish() removes them). Their stuck_at
    // stays armed regardless: the watchdog exists precisely for workers
    // that keep running after the deadline trip, and it is one-shot
    // (`watchdogged`), so it cannot spin.
    for (const auto& p : running_) {
      if (supervising && !p->watchdogged) {
        earliest = std::min(earliest, p->stuck_at);
      }
      if (p->token.requested()) continue;
      earliest = std::min(earliest, p->deadline);
      if (hedging && !p->is_hedge && !p->hedge_spawned &&
          p->rs->hedges < opts_.retry.max_hedges) {
        earliest = std::min(earliest, p->dispatched + hedge_delay);
      }
    }
    if (earliest == Clock::time_point::max()) {
      supervisor_cv_.wait(lock);  // woken on submit / finish / shutdown
      continue;
    }
    const Clock::time_point now = Clock::now();
    if (earliest > now) {
      supervisor_cv_.wait_for(lock, earliest - now);
      continue;  // re-evaluate: the set may have changed
    }

    // 1. Parked retries whose backoff elapsed go back to the queue.
    bool queued_work = false;
    for (auto it = parked_.begin(); it != parked_.end();) {
      if ((*it)->ready_at <= now) {
        queue_.push_back(*it);
        it = parked_.erase(it);
        queued_work = true;
      } else {
        ++it;
      }
    }

    // 2. Queued past-deadline attempts complete right here, without
    // ever dispatching. An expired hedge/requeue whose sibling is
    // still running is just dropped — the sibling owns the ticket.
    std::vector<AttemptPtr> expired;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if ((*it)->deadline <= now) {
        (*it)->token.request_cancel(common::CancelReason::kDeadline);
        expired.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& p : expired) {
      if (p->rs->plan_path && opts_.breaker.enabled) {
        breaker_.release(p->rs->fingerprint, p->rs->config);
      }
      SolveResponse r;
      r.outcome = RequestOutcome::kDeadlineExpired;
      r.result.status = SolverStatus::kAborted;
      r.queue_seconds = seconds_between(p->enqueued, now);
      r.solver_used = p->rs->solver;
      r.degraded = p->rs->degraded;
      r.attempts = p->rs->attempts_started;
      r.hedged = p->rs->hedges > 0;
      if (p->rs->ticket->try_complete(std::move(r))) {
        count_outcome_locked(RequestOutcome::kDeadlineExpired,
                             seconds_between(p->enqueued, now), 0.0, false);
      } else {
        ++stats_.late_completions;
      }
    }

    for (const auto& p : running_) {
      if (p->token.requested()) continue;
      // 3. Running past-deadline attempts get their *attempt* token
      // tripped (kDeadline) and stop at the next iteration boundary;
      // the request token stays untouched so a watchdog requeue can
      // still run under its own fresh budget.
      if (p->deadline <= now) {
        p->token.request_cancel(common::CancelReason::kDeadline);
        continue;
      }
      // 4. Hedging: a healthy-but-slow attempt past the latency
      // percentile gets one duplicate; first success wins.
      if (hedging && !p->is_hedge && !p->hedge_spawned &&
          p->rs->hedges < opts_.retry.max_hedges &&
          queue_.size() < opts_.queue_capacity &&
          p->dispatched + hedge_delay <= now) {
        p->hedge_spawned = true;
        ++p->rs->hedges;
        ++stats_.hedges;
        if (m_hedges_ != nullptr) m_hedges_->inc();
        AttemptPtr h = make_attempt(p->rs, now);
        h->is_hedge = true;
        queue_.push_front(h);  // a hedge is a latency rescue: jump the line
        queued_work = true;
      }
    }

    // 5. Stuck-worker supervision: an attempt still running at
    // deadline x grace is not honoring cooperative cancellation;
    // requeue a fresh attempt (bounded) so the request can still be
    // served by a healthy worker.
    if (supervising) {
      for (const auto& p : running_) {
        if (p->watchdogged || p->stuck_at > now) continue;
        if (p->rs->ticket->done()) continue;
        p->watchdogged = true;
        p->token.request_cancel(common::CancelReason::kWatchdog);
        if (p->rs->requeues < opts_.supervision.max_requeues) {
          ++p->rs->requeues;
          ++stats_.requeues;
          if (m_requeues_ != nullptr) m_requeues_->inc();
          queue_.push_front(make_attempt(p->rs, now));
          queued_work = true;
        }
      }
    }

    shed_.update_queue_depth(queue_.size());
    update_queue_gauges();
    if (queued_work) work_cv_.notify_all();
  }
}

void SolveService::shutdown(bool drain) {
  std::vector<AttemptPtr> rejected;
  std::vector<AttemptPtr> abandoned;
  {
    common::MutexLock lock(mu_);
    if (stopping_ && workers_.empty() && !supervisor_.joinable()) return;
    stopping_ = true;
    if (!drain) {
      for (const auto& p : queue_) {
        // Hedges and requeues have a running sibling that owns the
        // ticket; dropping them silently is the correct exit.
        if (p->is_hedge || p->rs->attempts_started > 1) continue;
        rejected.push_back(p);
      }
      queue_.clear();
      stats_.rejected_shutdown += rejected.size();
    }
    // Parked retries complete immediately with their last failure:
    // shutdown does not wait out backoff, in either drain mode.
    abandoned = std::move(parked_);
    parked_.clear();
    stats_.failed += abandoned.size();
    if (m_failed_ != nullptr) {
      for (std::size_t i = 0; i < abandoned.size(); ++i) m_failed_->inc();
    }
  }
  work_cv_.notify_all();
  supervisor_cv_.notify_all();
  for (const auto& p : rejected) {
    SolveResponse r;
    r.outcome = RequestOutcome::kRejectedShutdown;
    r.result.status = SolverStatus::kAborted;
    (void)p->rs->ticket->try_complete(std::move(r));
  }
  for (const auto& p : abandoned) {
    SolveResponse r;
    r.outcome = RequestOutcome::kFailed;
    r.result.status = SolverStatus::kAborted;
    r.error = p->park_error.empty()
                  ? "service shut down before retry"
                  : p->park_error + " (service shut down before retry)";
    r.attempts = p->rs->attempts_started;
    (void)p->rs->ticket->try_complete(std::move(r));
  }
  for (common::Thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  {
    common::MutexLock lock(mu_);
    supervisor_stop_ = true;
  }
  supervisor_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    common::MutexLock lock(mu_);
    out = stats_;
    out.queue_depth = queue_.size();
    out.parked = parked_.size();
    out.active = running_.size();
    out.shed_active = shed_.active();
    out.shed_activations = shed_.activations();
    out.shed_deactivations = shed_.deactivations();
  }
  out.plan_cache = cache_.stats();
  out.breaker = breaker_.stats();
  return out;
}

}  // namespace bars::service

#include "service/solve_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/block_async.hpp"
#include "resilience/recovery.hpp"
#include "service/fingerprint.hpp"

namespace bars::service {

namespace {

[[nodiscard]] value_t seconds_between(std::chrono::steady_clock::time_point a,
                                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<value_t>(b - a).count();
}

}  // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.plan_cache_capacity == 0 ? 1 : opts.plan_cache_capacity) {
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.metrics != nullptr) {
    telemetry::MetricsRegistry& m = *opts_.metrics;
    m_requests_ = &m.counter("service_requests_total");
    m_rejected_ = &m.counter("service_rejected_queue_full");
    m_deadline_ = &m.counter("service_deadline_expired");
    m_cancelled_ = &m.counter("service_cancelled");
    m_failed_ = &m.counter("service_failed");
    m_solved_ = &m.counter("service_solved");
    m_batches_ = &m.counter("service_batches");
    m_cache_hits_ = &m.counter("service_plan_cache_hits");
    m_cache_misses_ = &m.counter("service_plan_cache_misses");
    m_queue_depth_ = &m.gauge("service_queue_depth");
    m_active_ = &m.gauge("service_active_solves");
    m_cache_size_ = &m.gauge("service_plan_cache_size");
    static constexpr value_t kLatencyBuckets[] = {1e-4, 1e-3, 1e-2,
                                                  1e-1, 1.0,  10.0};
    m_queue_seconds_ = &m.histogram("service_queue_seconds", kLatencyBuckets);
    m_solve_seconds_ = &m.histogram("service_solve_seconds", kLatencyBuckets);
  }

  const index_t n = std::max<index_t>(1, opts_.num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  reaper_ = std::thread([this] { reaper_loop(); });
}

SolveService::~SolveService() { shutdown(/*drain=*/true); }

RequestOutcome SolveService::aborted_outcome(const common::CancelToken& token) {
  return token.reason() == common::CancelReason::kDeadline
             ? RequestOutcome::kDeadlineExpired
             : RequestOutcome::kCancelled;
}

std::shared_ptr<Ticket> SolveService::submit(SolveRequest req) {
  auto ticket = std::make_shared<Ticket>();

  const auto reject = [&](RequestOutcome outcome, std::string error) {
    SolveResponse r;
    r.outcome = outcome;
    r.result.status = SolverStatus::kAborted;
    r.error = std::move(error);
    ticket->complete(std::move(r));
    return ticket;
  };

  if (!req.matrix) {
    common::MutexLock lock(mu_);
    ++stats_.submitted;
    ++stats_.failed;
    if (m_requests_ != nullptr) m_requests_->inc();
    if (m_failed_ != nullptr) m_failed_->inc();
    return reject(RequestOutcome::kFailed, "SolveRequest::matrix is null");
  }

  auto p = std::make_shared<Pending>();
  p->plan_path = req.solver == "block-async";
  if (p->plan_path) {
    if (req.options.block_size <= 0 || req.options.local_iters <= 0) {
      common::MutexLock lock(mu_);
      ++stats_.submitted;
      ++stats_.failed;
      if (m_requests_ != nullptr) m_requests_->inc();
      if (m_failed_ != nullptr) m_failed_->inc();
      return reject(RequestOutcome::kFailed,
                    "block_size and local_iters must be > 0");
    }
    // Fingerprint outside the service lock: O(nnz), but it buys the
    // cache lookup and the batching key.
    p->fingerprint = matrix_fingerprint(*req.matrix);
    p->config = PlanConfig{req.options.block_size, req.options.local_iters};
  }
  p->req = std::move(req);
  p->ticket = ticket;
  p->enqueued = Clock::now();
  const auto deadline = p->req.deadline.count() != 0 ? p->req.deadline
                                                     : opts_.default_deadline;
  if (deadline.count() > 0) p->deadline = p->enqueued + deadline;

  {
    common::MutexLock lock(mu_);
    ++stats_.submitted;
    if (m_requests_ != nullptr) m_requests_->inc();
    if (stopping_) {
      ++stats_.rejected_shutdown;
      return reject(RequestOutcome::kRejectedShutdown,
                    "service is shutting down");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      ++stats_.rejected_queue_full;
      if (m_rejected_ != nullptr) m_rejected_->inc();
      return reject(RequestOutcome::kRejectedQueueFull,
                    "request queue at capacity");
    }
    queue_.push_back(p);
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->set(static_cast<value_t>(queue_.size()));
    }
  }
  work_cv_.notify_one();
  reaper_cv_.notify_one();
  return ticket;
}

SolveResponse SolveService::solve(SolveRequest req) {
  return submit(std::move(req))->wait();
}

void SolveService::worker_loop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      common::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stopping and drained
      batch.push_back(queue_.front());
      queue_.pop_front();
      const Pending& first = *batch.front();
      if (opts_.batching && first.plan_path && opts_.max_batch > 1) {
        // Fuse queued requests that would use the very same plan. Order
        // within the queue is preserved for everyone else.
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < opts_.max_batch;) {
          const Pending& cand = **it;
          if (cand.plan_path && cand.fingerprint == first.fingerprint &&
              cand.config == first.config) {
            batch.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (const auto& p : batch) running_.push_back(p);
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->set(static_cast<value_t>(queue_.size()));
      }
      if (m_active_ != nullptr) {
        m_active_->set(static_cast<value_t>(running_.size()));
      }
      if (batch.size() > 1) {
        ++stats_.batches;
        stats_.batched_requests += batch.size();
        if (m_batches_ != nullptr) m_batches_->inc();
      }
    }
    execute_batch(std::move(batch));
  }
}

void SolveService::execute_batch(std::vector<std::shared_ptr<Pending>> batch) {
  std::shared_ptr<SolvePlan> plan;
  bool cache_hit = false;
  const Pending& first = *batch.front();
  if (first.plan_path) {
    plan = cache_.acquire(*first.req.matrix, first.config, &cache_hit);
    common::MutexLock lock(mu_);
    if (cache_hit) {
      if (m_cache_hits_ != nullptr) m_cache_hits_->inc();
    } else if (m_cache_misses_ != nullptr) {
      m_cache_misses_->inc();
    }
    if (m_cache_size_ != nullptr) {
      m_cache_size_->set(static_cast<value_t>(cache_.stats().size));
    }
  }
  for (const auto& p : batch) {
    run_one(*p, plan, cache_hit, batch.size());
  }
}

void SolveService::run_one(Pending& p, const std::shared_ptr<SolvePlan>& plan,
                           bool cache_hit, std::size_t batch_size) {
  SolveResponse resp;
  resp.plan_cache_hit = p.plan_path && cache_hit;
  resp.batch_size = batch_size;
  resp.batched = batch_size > 1;
  const Clock::time_point start = Clock::now();
  resp.queue_seconds = seconds_between(p.enqueued, start);

  const common::CancelToken& token = p.ticket->token_;
  if (token.requested()) {
    // Cancelled or expired while queued: never dispatch the solver.
    resp.outcome = aborted_outcome(token);
    resp.result.status = SolverStatus::kAborted;
    finish(p, std::move(resp));
    return;
  }

  RegistrySolveOptions o = p.req.options;
  o.solve.cancel = &p.ticket->token_;
  try {
    if (p.plan_path && plan != nullptr) {
      if (plan->kernel == nullptr) {
        throw std::invalid_argument(plan->kernel_error);
      }
      // Mirror the registry's block-async entry exactly (same options
      // from the same RegistrySolveOptions fields), so a served solve
      // is bit-identical to find_solver("block-async") — the kernel is
      // just prebuilt.
      BlockAsyncOptions ao;
      ao.solve = o.solve;
      ao.block_size = o.block_size;
      ao.local_iters = o.local_iters;
      ao.seed = o.seed;
      if (opts_.watchdog) {
        resilience::Policy policy;
        policy.online_detection = false;
        ao.resilience = policy;
      }
      // One request at a time per plan: set_rhs repoints shared kernel
      // state, so the executor run is part of the critical section.
      common::MutexLock plan_lock(plan->mu);
      resp.result =
          block_async_solve_with_kernel(plan->matrix, p.req.b, *plan->kernel,
                                        ao)
              .solve;
      // Re-point the kernel at plan-owned storage so it never dangles
      // into a completed request's RHS while the plan sits in cache.
      plan->kernel->set_rhs(plan->seed_rhs);
    } else {
      resp.result = find_solver(p.req.solver)(*p.req.matrix, p.req.b, o);
    }
    resp.outcome = resp.result.status == SolverStatus::kAborted
                       ? aborted_outcome(token)
                       : RequestOutcome::kSolved;
  } catch (const std::exception& e) {
    resp.outcome = RequestOutcome::kFailed;
    resp.result.status = SolverStatus::kAborted;
    resp.error = e.what();
  }
  resp.solve_seconds = seconds_between(start, Clock::now());
  finish(p, std::move(resp));
}

void SolveService::finish(Pending& p, SolveResponse&& resp) {
  {
    common::MutexLock lock(mu_);
    switch (resp.outcome) {
      case RequestOutcome::kSolved:
        ++stats_.solved;
        if (m_solved_ != nullptr) m_solved_->inc();
        break;
      case RequestOutcome::kDeadlineExpired:
        ++stats_.deadline_expired;
        if (m_deadline_ != nullptr) m_deadline_->inc();
        break;
      case RequestOutcome::kCancelled:
        ++stats_.cancelled;
        if (m_cancelled_ != nullptr) m_cancelled_->inc();
        break;
      case RequestOutcome::kFailed:
        ++stats_.failed;
        if (m_failed_ != nullptr) m_failed_->inc();
        break;
      case RequestOutcome::kRejectedQueueFull:
      case RequestOutcome::kRejectedShutdown:
        break;  // counted at rejection time
    }
    if (m_queue_seconds_ != nullptr) {
      m_queue_seconds_->record(resp.queue_seconds);
    }
    if (m_solve_seconds_ != nullptr) {
      m_solve_seconds_->record(resp.solve_seconds);
    }
    for (auto it = running_.begin(); it != running_.end(); ++it) {
      if (it->get() == &p) {
        running_.erase(it);
        break;
      }
    }
    if (m_active_ != nullptr) {
      m_active_->set(static_cast<value_t>(running_.size()));
    }
  }
  p.ticket->complete(std::move(resp));
  reaper_cv_.notify_one();
}

void SolveService::reaper_loop() {
  common::MutexLock lock(mu_);
  while (!reaper_stop_) {
    Clock::time_point earliest = Clock::time_point::max();
    for (const auto& p : queue_) earliest = std::min(earliest, p->deadline);
    // Running requests whose token is already tripped are the solver's
    // to finish — re-arming on them would spin this loop (their
    // deadline stays in the past until finish() removes them).
    for (const auto& p : running_) {
      if (!p->ticket->token_.requested()) {
        earliest = std::min(earliest, p->deadline);
      }
    }
    if (earliest == Clock::time_point::max()) {
      reaper_cv_.wait(lock);  // woken on submit / finish / shutdown
      continue;
    }
    const Clock::time_point now = Clock::now();
    if (earliest > now) {
      reaper_cv_.wait_for(lock, earliest - now);
      continue;  // re-evaluate: the set may have changed
    }

    // Queued past-deadline requests complete right here, without ever
    // dispatching; running ones get their token tripped and stop at
    // the next iteration boundary.
    std::vector<std::shared_ptr<Pending>> expired;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if ((*it)->deadline <= now) {
        expired.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& p : running_) {
      if (p->deadline <= now && !p->ticket->token_.requested()) {
        p->ticket->token_.request_cancel(common::CancelReason::kDeadline);
      }
    }
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->set(static_cast<value_t>(queue_.size()));
    }
    for (const auto& p : expired) {
      ++stats_.deadline_expired;
      if (m_deadline_ != nullptr) m_deadline_->inc();
      SolveResponse r;
      r.outcome = RequestOutcome::kDeadlineExpired;
      r.result.status = SolverStatus::kAborted;
      r.queue_seconds = seconds_between(p->enqueued, now);
      p->ticket->token_.request_cancel(common::CancelReason::kDeadline);
      p->ticket->complete(std::move(r));
    }
  }
}

void SolveService::shutdown(bool drain) {
  std::vector<std::shared_ptr<Pending>> rejected;
  {
    common::MutexLock lock(mu_);
    if (stopping_ && workers_.empty() && !reaper_.joinable()) return;
    stopping_ = true;
    if (!drain) {
      rejected.assign(queue_.begin(), queue_.end());
      queue_.clear();
      stats_.rejected_shutdown += rejected.size();
    }
  }
  work_cv_.notify_all();
  for (const auto& p : rejected) {
    SolveResponse r;
    r.outcome = RequestOutcome::kRejectedShutdown;
    r.result.status = SolverStatus::kAborted;
    p->ticket->complete(std::move(r));
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  {
    common::MutexLock lock(mu_);
    reaper_stop_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    common::MutexLock lock(mu_);
    out = stats_;
    out.queue_depth = queue_.size();
    out.active = running_.size();
  }
  out.plan_cache = cache_.stats();
  return out;
}

}  // namespace bars::service

#include "service/degradation.hpp"

#include <algorithm>
#include <cmath>

namespace bars::service {

LoadShedController::LoadShedController(const DegradationPolicy& policy,
                                       std::size_t capacity)
    : policy_(policy) {
  const double cap = static_cast<double>(std::max<std::size_t>(1, capacity));
  high_depth_ = static_cast<std::size_t>(
      std::ceil(std::clamp(policy_.shed_high_watermark, 0.0, 1.0) * cap));
  high_depth_ = std::max<std::size_t>(1, high_depth_);
  low_depth_ = static_cast<std::size_t>(
      std::floor(std::clamp(policy_.shed_low_watermark, 0.0, 1.0) * cap));
  if (low_depth_ >= high_depth_) low_depth_ = high_depth_ - 1;
  window_.assign(std::max<std::size_t>(1, policy_.miss_window), 0);
}

void LoadShedController::set_active(bool next) {
  if (next == active_) return;
  active_ = next;
  if (next) {
    ++activations_;
  } else {
    ++deactivations_;
  }
}

bool LoadShedController::update_queue_depth(std::size_t depth) {
  last_depth_ = depth;
  if (!policy_.enabled) return false;
  if (!active_ && depth >= high_depth_) {
    set_active(true);
  } else if (active_ && depth <= low_depth_ &&
             (policy_.shed_miss_rate <= 0.0 ||
              miss_rate() < policy_.shed_miss_rate)) {
    set_active(false);
  }
  return active_;
}

void LoadShedController::record_outcome(bool deadline_missed) {
  window_misses_ -= window_[window_next_];
  window_[window_next_] = deadline_missed ? 1 : 0;
  window_misses_ += window_[window_next_];
  window_next_ = (window_next_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
  if (!policy_.enabled || policy_.shed_miss_rate <= 0.0) return;
  if (window_filled_ < window_.size()) return;  // need a full window
  if (!active_ && miss_rate() >= policy_.shed_miss_rate) {
    set_active(true);
  } else if (active_ && miss_rate() < policy_.shed_miss_rate &&
             last_depth_ <= low_depth_) {
    set_active(false);
  }
}

double LoadShedController::miss_rate() const noexcept {
  if (window_filled_ == 0) return 0.0;
  return static_cast<double>(window_misses_) /
         static_cast<double>(window_filled_);
}

}  // namespace bars::service

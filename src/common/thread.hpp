#pragma once

#include <functional>
#include <thread>
#include <utility>

#include "common/verify_hooks.hpp"

/// \file thread.hpp
/// bars::common::Thread — the project's only thread-spawning primitive
/// outside src/common and src/verify (enforced by bars_lint's
/// `verify-seam` rule). A plain std::thread wrapper in normal builds;
/// under an active schedule controller (BARS_ENABLE_VERIFY + a
/// controlled parent) the child registers with the controller before it
/// starts, inherits the parent's controller, and parks until scheduled,
/// so thread ids and start interleavings are deterministic and
/// explorable.
///
/// Semantics match std::thread where they overlap: movable, not
/// copyable, must be join()ed before destruction (std::terminate
/// otherwise — same contract as std::thread, kept deliberately so the
/// wrapper cannot mask a missing join).

namespace bars::common {

class Thread {
 public:
  Thread() = default;

  /// Spawn a thread running `fn`. Bind arguments at the call site
  /// (lambda capture); a nullary callable keeps the verify-seam
  /// machinery trivial.
  explicit Thread(std::function<void()> fn) {
#if defined(BARS_ENABLE_VERIFY)
    if (verify::Hooks* h = verify::tl_hooks) {
      hooks_ = h;
      id_ = h->on_thread_create();
      const std::uint32_t id = id_;
      t_ = std::thread([h, id, fn = std::move(fn)] {
        verify::tl_hooks = h;
        h->on_thread_adopt(id);
        fn();
        h->on_thread_exit();
        verify::tl_hooks = nullptr;
      });
      return;
    }
#endif
    t_ = std::thread(std::move(fn));
  }

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&&) noexcept = default;
  ~Thread() = default;

  [[nodiscard]] bool joinable() const noexcept { return t_.joinable(); }

  void join() {
#if defined(BARS_ENABLE_VERIFY)
    // Virtual join first: parks this (controlled) thread until the
    // target has exited under the schedule, so the real join below
    // never blocks the cooperative scheduler.
    if (hooks_ != nullptr && verify::tl_hooks == hooks_) {
      hooks_->on_thread_join(id_);
    }
#endif
    t_.join();
  }

 private:
  std::thread t_;
#if defined(BARS_ENABLE_VERIFY)
  verify::Hooks* hooks_ = nullptr;
  std::uint32_t id_ = 0;
#endif
};

}  // namespace bars::common

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/verify_hooks.hpp"

/// \file annotations.hpp
/// Clang thread-safety-analysis attributes and the annotated
/// synchronization wrappers the project uses instead of raw std::mutex.
///
/// The macros expand to Clang `capability` attributes under
/// `-Wthread-safety` (enabled by the BARS_ENABLE_STATIC_ANALYSIS CMake
/// option) and to nothing on other compilers, so GCC builds are
/// unaffected. libstdc++'s std::mutex carries no capability
/// annotations, which is why locking through it is invisible to the
/// analysis; the Mutex / MutexLock / ConditionVariable wrappers below
/// restore visibility. bars_lint's `raw-mutex` rule bans direct
/// std::mutex use outside this header so every lock in the tree stays
/// analyzable.
///
/// See docs/STATIC_ANALYSIS.md for the full contract catalogue.

#if defined(__clang__)
#define BARS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BARS_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (lockable) type.
#define BARS_CAPABILITY(x) BARS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define BARS_SCOPED_CAPABILITY BARS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define BARS_GUARDED_BY(x) BARS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define BARS_PT_GUARDED_BY(x) BARS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and does not release it.
#define BARS_ACQUIRE(...) \
  BARS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define BARS_RELEASE(...) \
  BARS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define BARS_REQUIRES(...) \
  BARS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define BARS_EXCLUDES(...) BARS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Every use
/// must carry a justification comment (enforced by review, not tools).
#define BARS_NO_THREAD_SAFETY_ANALYSIS \
  BARS_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a function as a no-allocation hot path: bars_lint's
/// `hot-noalloc` rule bans heap-allocation tokens (new, make_unique,
/// resize/push_back/... on non-scratch objects) inside its body. The
/// attribute itself only hints the optimizer.
#if defined(__clang__) || defined(__GNUC__)
#define BARS_HOT_NOALLOC __attribute__((hot))
#else
#define BARS_HOT_NOALLOC
#endif

namespace bars::common {

/// std::mutex with capability annotations. Lock it through MutexLock;
/// the raw lock()/unlock() exist for the rare non-scoped pattern.
///
/// Under an active schedule controller (BARS_ENABLE_VERIFY and the
/// current thread is controlled) the lock is fully virtualized: mutual
/// exclusion is provided by the controller's cooperative scheduler,
/// which also turns contended acquisition into an explorable decision
/// point and feeds the happens-before race oracle. Mixing controlled
/// and uncontrolled threads on one Mutex is unsupported (the verify
/// tests control every participating thread; docs/VERIFY.md).
class BARS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BARS_ACQUIRE() {
#if defined(BARS_ENABLE_VERIFY)
    if (verify::Hooks* h = verify::tl_hooks) {
      h->on_mutex_lock(this);
      return;
    }
#endif
    mu_.lock();
  }
  void unlock() BARS_RELEASE() {
#if defined(BARS_ENABLE_VERIFY)
    if (verify::Hooks* h = verify::tl_hooks) {
      h->on_mutex_unlock(this);
      return;
    }
#endif
    mu_.unlock();
  }

  /// The wrapped mutex, for the RAII/condition-variable wrappers only.
  [[nodiscard]] std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over an annotated Mutex (scoped capability). Holds a
/// std::unique_lock internally so ConditionVariable can wait on it.
class BARS_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(BARS_ENABLE_VERIFY)
  explicit MutexLock(Mutex& mu) BARS_ACQUIRE(mu) {
    if (verify::Hooks* h = verify::tl_hooks) {
      hooks_ = h;
      mu_ = &mu;
      h->on_mutex_lock(mu_);
    } else {
      lock_ = std::unique_lock<std::mutex>(mu.native_handle());
    }
  }
#else
  explicit MutexLock(Mutex& mu) BARS_ACQUIRE(mu) : lock_(mu.native_handle()) {}
#endif
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
#if defined(BARS_ENABLE_VERIFY)
  ~MutexLock() BARS_RELEASE() {
    if (hooks_ != nullptr) hooks_->on_mutex_unlock(mu_);
  }
#else
  ~MutexLock() BARS_RELEASE() = default;
#endif

 private:
  friend class ConditionVariable;
  std::unique_lock<std::mutex> lock_;
#if defined(BARS_ENABLE_VERIFY)
  Mutex* mu_ = nullptr;            ///< identity for the controller
  verify::Hooks* hooks_ = nullptr; ///< non-null iff virtually held
#endif
};

/// std::condition_variable bound to MutexLock. wait() atomically
/// releases and reacquires the lock; the capability is held at both
/// entry and exit, which is exactly what the analysis assumes, so the
/// internal release is deliberately invisible to it. Write waits as
///   while (!predicate_over_guarded_state) cv.wait(lock);
/// so predicate reads are analyzed under the held capability (lambda
/// predicates would be analyzed as unlocked contexts).
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  void wait(MutexLock& lock) BARS_NO_THREAD_SAFETY_ANALYSIS {
#if defined(BARS_ENABLE_VERIFY)
    if (lock.hooks_ != nullptr) {
      lock.hooks_->on_cv_wait(this, lock.mu_);
      return;
    }
#endif
    cv_.wait(lock.lock_);
  }

  /// Timed wait; returns false on timeout, true when notified. Same
  /// capability story as wait(): held at entry and exit, the internal
  /// release invisible to the analysis. Used by supervisors that must
  /// wake on a schedule (the service layer's deadline reaper) as well
  /// as on state changes.
  template <class Rep, class Period>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout)
      BARS_NO_THREAD_SAFETY_ANALYSIS {
#if defined(BARS_ENABLE_VERIFY)
    if (lock.hooks_ != nullptr) {
      // Virtual time: the controller fires the earliest pending timeout
      // only when every controlled thread is blocked (quiescence), so
      // timed waits explore both the notified and the timed-out arm
      // without real-time sleeps.
      return lock.hooks_->on_cv_wait_for(
          this, lock.mu_,
          std::chrono::duration<double>(timeout).count());
    }
#endif
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }
  void notify_one() noexcept {
#if defined(BARS_ENABLE_VERIFY)
    if (verify::Hooks* h = verify::tl_hooks) {
      // Which of several virtual waiters wakes is a controller decision
      // — notify_one is exactly the kind of nondeterminism the explorer
      // enumerates. Safe because every wait site uses the while-loop
      // predicate idiom documented above.
      h->on_cv_notify(this, /*notify_all=*/false);
      return;
    }
#endif
    cv_.notify_one();
  }
  void notify_all() noexcept {
#if defined(BARS_ENABLE_VERIFY)
    if (verify::Hooks* h = verify::tl_hooks) {
      h->on_cv_notify(this, /*notify_all=*/true);
      return;
    }
#endif
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace bars::common

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

/// \file annotations.hpp
/// Clang thread-safety-analysis attributes and the annotated
/// synchronization wrappers the project uses instead of raw std::mutex.
///
/// The macros expand to Clang `capability` attributes under
/// `-Wthread-safety` (enabled by the BARS_ENABLE_STATIC_ANALYSIS CMake
/// option) and to nothing on other compilers, so GCC builds are
/// unaffected. libstdc++'s std::mutex carries no capability
/// annotations, which is why locking through it is invisible to the
/// analysis; the Mutex / MutexLock / ConditionVariable wrappers below
/// restore visibility. bars_lint's `raw-mutex` rule bans direct
/// std::mutex use outside this header so every lock in the tree stays
/// analyzable.
///
/// See docs/STATIC_ANALYSIS.md for the full contract catalogue.

#if defined(__clang__)
#define BARS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BARS_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (lockable) type.
#define BARS_CAPABILITY(x) BARS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define BARS_SCOPED_CAPABILITY BARS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define BARS_GUARDED_BY(x) BARS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define BARS_PT_GUARDED_BY(x) BARS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and does not release it.
#define BARS_ACQUIRE(...) \
  BARS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define BARS_RELEASE(...) \
  BARS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define BARS_REQUIRES(...) \
  BARS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define BARS_EXCLUDES(...) BARS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Every use
/// must carry a justification comment (enforced by review, not tools).
#define BARS_NO_THREAD_SAFETY_ANALYSIS \
  BARS_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a function as a no-allocation hot path: bars_lint's
/// `hot-noalloc` rule bans heap-allocation tokens (new, make_unique,
/// resize/push_back/... on non-scratch objects) inside its body. The
/// attribute itself only hints the optimizer.
#if defined(__clang__) || defined(__GNUC__)
#define BARS_HOT_NOALLOC __attribute__((hot))
#else
#define BARS_HOT_NOALLOC
#endif

namespace bars::common {

/// std::mutex with capability annotations. Lock it through MutexLock;
/// the raw lock()/unlock() exist for the rare non-scoped pattern.
class BARS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BARS_ACQUIRE() { mu_.lock(); }
  void unlock() BARS_RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for the RAII/condition-variable wrappers only.
  [[nodiscard]] std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over an annotated Mutex (scoped capability). Holds a
/// std::unique_lock internally so ConditionVariable can wait on it.
class BARS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BARS_ACQUIRE(mu) : lock_(mu.native_handle()) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() BARS_RELEASE() = default;

 private:
  friend class ConditionVariable;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to MutexLock. wait() atomically
/// releases and reacquires the lock; the capability is held at both
/// entry and exit, which is exactly what the analysis assumes, so the
/// internal release is deliberately invisible to it. Write waits as
///   while (!predicate_over_guarded_state) cv.wait(lock);
/// so predicate reads are analyzed under the held capability (lambda
/// predicates would be analyzed as unlocked contexts).
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  void wait(MutexLock& lock) BARS_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.lock_);
  }

  /// Timed wait; returns false on timeout, true when notified. Same
  /// capability story as wait(): held at entry and exit, the internal
  /// release invisible to the analysis. Used by supervisors that must
  /// wake on a schedule (the service layer's deadline reaper) as well
  /// as on state changes.
  template <class Rep, class Period>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout)
      BARS_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bars::common

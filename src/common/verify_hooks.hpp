#pragma once

#include <cstddef>
#include <cstdint>

/// \file verify_hooks.hpp
/// The seam between the production synchronization wrappers
/// (annotations.hpp, thread.hpp) and the concurrency-verification layer
/// (src/verify). A thread that runs under a schedule controller carries
/// a thread-local `Hooks*`; every Mutex/ConditionVariable/Thread
/// operation on such a thread is routed to the controller instead of
/// the real primitive, which lets the verifier serialize execution,
/// enumerate interleavings, and maintain the happens-before clocks of
/// the race oracle.
///
/// Cost model (the contract docs/VERIFY.md holds the codebase to):
///  - `BARS_ENABLE_VERIFY` OFF (the default, and the tier-1 build):
///    the BARS_VERIFY_* macros expand to `((void)0)` and the wrappers
///    compile to exactly the code they had before this layer existed —
///    no thread-local reads, no branches, no layout changes.
///  - ON but no controller installed on the current thread: one
///    thread-local load + branch per wrapped operation.
///  - ON and controlled: the controller fully virtualizes the
///    primitive (see src/verify/schedule_controller.hpp).
///
/// The interface is deliberately untyped (`void*` identities): the
/// wrappers must not depend on verifier types, and the verifier only
/// needs stable addresses to key its bookkeeping.

namespace bars::common::verify {

/// Controller interface. All methods are noexcept by contract: the
/// wrappers call them from noexcept contexts (notify_one, destructors),
/// and a verifier that cannot allocate its bookkeeping should abort the
/// exploration rather than unwind through product code.
class Hooks {
 public:
  virtual ~Hooks() = default;

  // --- mutexes (identified by wrapper address) -----------------------
  virtual void on_mutex_lock(void* mu) noexcept = 0;
  virtual void on_mutex_unlock(void* mu) noexcept = 0;

  // --- condition variables -------------------------------------------
  /// Atomically release `mu`, park until notified, reacquire `mu`.
  virtual void on_cv_wait(void* cv, void* mu) noexcept = 0;
  /// Timed variant over virtual time; returns false on (virtual)
  /// timeout, true when notified.
  virtual bool on_cv_wait_for(void* cv, void* mu,
                              double seconds) noexcept = 0;
  virtual void on_cv_notify(void* cv, bool notify_all) noexcept = 0;

  // --- threads -------------------------------------------------------
  /// Called by the parent before the OS thread exists; reserves a
  /// deterministic thread id (ids follow the parent's program order,
  /// never the OS start order).
  [[nodiscard]] virtual std::uint32_t on_thread_create() noexcept = 0;
  /// First call made by the child; parks until the scheduler picks it.
  virtual void on_thread_adopt(std::uint32_t id) noexcept = 0;
  /// Last call made by the child.
  virtual void on_thread_exit() noexcept = 0;
  /// Blocks (virtually) until `id` has exited.
  virtual void on_thread_join(std::uint32_t id) noexcept = 0;

  // --- scheduling and the race oracle --------------------------------
  /// Explicit preemption point: the scheduler may switch threads here.
  /// `what` labels the site in reports (string literal, not owned).
  virtual void on_yield(const char* what) noexcept = 0;
  /// Plain (non-atomic) shared-memory access of `len` bytes at `addr`,
  /// checked against the happens-before relation by the race oracle.
  virtual void on_access(const void* addr, std::size_t len, bool is_write,
                         const char* what) noexcept = 0;
};

/// The controller governing the current thread, if any. Installed by
/// ScheduleController::run on the root thread and by common::Thread on
/// controlled children; null on every other thread, so uninstrumented
/// code paths and uncontrolled threads never interact with a verifier.
/// Declared unconditionally so the verifier library itself (src/verify)
/// builds in every configuration; with BARS_ENABLE_VERIFY off the
/// product wrappers never read it.
inline thread_local Hooks* tl_hooks = nullptr;

#if defined(BARS_ENABLE_VERIFY)

[[nodiscard]] inline Hooks* hooks() noexcept { return tl_hooks; }
[[nodiscard]] inline bool controlled() noexcept { return tl_hooks != nullptr; }
constexpr bool instrumentation_enabled() noexcept { return true; }

#else

[[nodiscard]] constexpr Hooks* hooks() noexcept { return nullptr; }
[[nodiscard]] constexpr bool controlled() noexcept { return false; }
constexpr bool instrumentation_enabled() noexcept { return false; }

#endif  // BARS_ENABLE_VERIFY

}  // namespace bars::common::verify

/// Annotation macros for product code. Zero-cost when the verify tier
/// is compiled out; a thread-local load + branch when it is compiled in
/// but the current thread is uncontrolled.
#if defined(BARS_ENABLE_VERIFY)

/// Decision point: under a controller the scheduler may preempt here.
#define BARS_VERIFY_YIELD(what)                                     \
  do {                                                              \
    if (::bars::common::verify::Hooks* bars_verify_h_ =            \
            ::bars::common::verify::tl_hooks) {                     \
      bars_verify_h_->on_yield(what);                               \
    }                                                               \
  } while (0)

/// Declare a plain read/write of [addr, addr + len) to the race oracle.
#define BARS_VERIFY_READ(addr, len, what)                           \
  do {                                                              \
    if (::bars::common::verify::Hooks* bars_verify_h_ =            \
            ::bars::common::verify::tl_hooks) {                     \
      bars_verify_h_->on_access((addr), (len), /*is_write=*/false,  \
                                (what));                            \
    }                                                               \
  } while (0)

#define BARS_VERIFY_WRITE(addr, len, what)                          \
  do {                                                              \
    if (::bars::common::verify::Hooks* bars_verify_h_ =            \
            ::bars::common::verify::tl_hooks) {                     \
      bars_verify_h_->on_access((addr), (len), /*is_write=*/true,   \
                                (what));                            \
    }                                                               \
  } while (0)

#else

#define BARS_VERIFY_YIELD(what) ((void)0)
#define BARS_VERIFY_READ(addr, len, what) ((void)0)
#define BARS_VERIFY_WRITE(addr, len, what) ((void)0)

#endif  // BARS_ENABLE_VERIFY

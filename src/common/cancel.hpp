#pragma once

#include <atomic>

/// \file cancel.hpp
/// Cooperative cancellation for solver runs.
///
/// A CancelToken is a shared flag the embedding application (or the
/// service layer's deadline reaper) trips from another thread; solvers
/// poll it at iteration boundaries through SolveOptions::cancel and
/// stop with SolverStatus::kAborted. Polling is a single relaxed
/// atomic load, so the disabled path (null token) costs one branch and
/// the enabled path stays off every hot inner loop — only
/// per-global-iteration code checks it.
///
/// The token is intentionally one-way within a solve: once requested it
/// stays requested until reset(), so a solver can never "miss" a
/// cancellation between the trip and its next boundary check.

namespace bars::common {

/// Reason recorded alongside a cancellation request, so callers can
/// distinguish a user-initiated abort from a deadline expiry when both
/// surface as SolverStatus::kAborted.
enum class CancelReason : int {
  kNone = 0,
  kUser = 1,      ///< explicit request_cancel() by the embedder
  kDeadline = 2,  ///< tripped by a deadline supervisor (service layer)
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token. Safe from any thread; idempotent (the first
  /// reason wins so a late deadline cannot relabel a user abort).
  void request_cancel(CancelReason reason = CancelReason::kUser) noexcept {
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
    requested_.store(true, std::memory_order_relaxed);
  }

  /// Polled by solvers at iteration boundaries.
  [[nodiscard]] bool requested() const noexcept {
    return requested_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Re-arm a token for reuse (tests, pooled request slots). Only call
  /// between solves — never while a solver may still poll it.
  void reset() noexcept {
    requested_.store(false, std::memory_order_relaxed);
    reason_.store(static_cast<int>(CancelReason::kNone),
                  std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> requested_{false};
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
};

/// Null-safe poll helper: `if (cancel_requested(opts.cancel)) ...`.
[[nodiscard]] inline bool cancel_requested(const CancelToken* t) noexcept {
  return t != nullptr && t->requested();
}

}  // namespace bars::common

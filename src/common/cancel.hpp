#pragma once

#include <atomic>

#include "common/verify_hooks.hpp"

/// \file cancel.hpp
/// Cooperative cancellation for solver runs.
///
/// A CancelToken is a shared flag the embedding application (or the
/// service layer's deadline reaper) trips from another thread; solvers
/// poll it at iteration boundaries through SolveOptions::cancel and
/// stop with SolverStatus::kAborted. Polling is a single relaxed
/// atomic load, so the disabled path (null token) costs one branch and
/// the enabled path stays off every hot inner loop — only
/// per-global-iteration code checks it.
///
/// The token is intentionally one-way within a solve: once requested it
/// stays requested until reset(), so a solver can never "miss" a
/// cancellation between the trip and its next boundary check.

namespace bars::common {

/// Reason recorded alongside a cancellation request, so callers can
/// distinguish a user-initiated abort from a deadline expiry when both
/// surface as SolverStatus::kAborted.
enum class CancelReason : int {
  kNone = 0,
  kUser = 1,      ///< explicit request_cancel() by the embedder
  kDeadline = 2,  ///< tripped by a deadline supervisor (service layer)
  kWatchdog = 3,  ///< stuck-worker supervision cancelled the attempt
  kHedge = 4,     ///< a hedged duplicate won; this attempt is the loser
};

[[nodiscard]] constexpr const char* to_string(CancelReason r) noexcept {
  switch (r) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kUser:
      return "user";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kWatchdog:
      return "watchdog";
    case CancelReason::kHedge:
      return "hedge";
  }
  return "unknown";
}

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token. Safe from any thread; idempotent (the first
  /// reason wins so a late deadline cannot relabel a user abort).
  void request_cancel(CancelReason reason = CancelReason::kUser) noexcept {
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
    // Decision point between the reason CAS and the flag store: the
    // explorer drives pollers through the window where the first-reason
    // winner is decided but requested() still reads false.
    BARS_VERIFY_YIELD("cancel.request");
    requested_.store(true, std::memory_order_relaxed);
  }

  /// Polled by solvers at iteration boundaries. A token with a parent
  /// reads as requested when either itself or its parent is tripped.
  [[nodiscard]] bool requested() const noexcept {
    if (requested_.load(std::memory_order_relaxed)) return true;
    const CancelToken* parent = parent_.load(std::memory_order_relaxed);
    return parent != nullptr && parent->requested();
  }

  /// The first reason recorded on *this* token; falls back to the
  /// parent's reason when this token was never tripped directly. A
  /// directly-tripped token always reports its own (first) reason even
  /// if the parent tripped earlier — the attempt-local verdict is what
  /// the owner of this token acts on.
  [[nodiscard]] CancelReason reason() const noexcept {
    const auto own =
        static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
    if (own != CancelReason::kNone) return own;
    const CancelToken* parent = parent_.load(std::memory_order_relaxed);
    return parent != nullptr ? parent->reason() : CancelReason::kNone;
  }

  /// Link a request-level parent token: this (attempt-level) token then
  /// reads as requested when the parent is tripped, so one request-wide
  /// cancel reaches every hedged / requeued attempt without touching
  /// their attempt-local reasons. The parent must outlive this token
  /// (the service guarantees it: tickets own the parent and outlive
  /// every attempt). Safe to call from the submitting thread before the
  /// token is handed to a solver; the pointer itself is atomic so a
  /// concurrent poll never tears.
  void set_parent(const CancelToken* parent) noexcept {
    parent_.store(parent, std::memory_order_relaxed);
  }

  /// Re-arm a token for reuse (tests, pooled request slots). Only call
  /// between solves — never while a solver may still poll it. Keeps
  /// the parent link: a re-armed attempt still honors request-level
  /// cancellation.
  void reset() noexcept {
    requested_.store(false, std::memory_order_relaxed);
    reason_.store(static_cast<int>(CancelReason::kNone),
                  std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> requested_{false};
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
  std::atomic<const CancelToken*> parent_{nullptr};
};

/// Null-safe poll helper: `if (cancel_requested(opts.cancel)) ...`.
[[nodiscard]] inline bool cancel_requested(const CancelToken* t) noexcept {
  return t != nullptr && t->requested();
}

}  // namespace bars::common

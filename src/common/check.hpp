#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

/// \file check.hpp
/// BARS_CHECK / BARS_DCHECK: invariant checks that log context before
/// aborting, replacing raw assert() in library code (bars_lint's
/// `raw-assert` rule enforces the migration).
///
///   BARS_CHECK(lo <= hi) << "block " << b << " at vt " << now;
///
/// BARS_CHECK is always on (including Release builds) — use it for
/// cheap invariants whose violation means memory corruption or a logic
/// bug that must not propagate into results. BARS_DCHECK compiles to
/// nothing under NDEBUG (the condition is type-checked but not
/// evaluated) — use it on hot paths where assert() used to live.
///
/// The streamed context is evaluated only on failure, so a BARS_CHECK
/// with context costs one branch on the success path and allocates
/// nothing — safe inside BARS_HOT_NOALLOC functions.

namespace bars::common {

/// Failure-path message sink: collects streamed context, then prints
/// "file:line: check failed: (expr) context" to stderr and aborts when
/// the temporary dies at the end of the full expression.
class CheckFailMessage {
 public:
  CheckFailMessage(const char* file, int line, const char* expr) {
    os_ << file << ":" << line << ": bars check failed: (" << expr << ") ";
  }
  CheckFailMessage(const CheckFailMessage&) = delete;
  CheckFailMessage& operator=(const CheckFailMessage&) = delete;

  ~CheckFailMessage() {
    std::cerr << os_.str() << '\n';  // cerr is unit-buffered; no flush needed
    std::abort();
  }

  [[nodiscard]] std::ostream& stream() { return os_; }

 private:
  std::ostringstream os_;
};

/// Glog-style voidify: `&` binds looser than `<<`, so the streamed
/// chain completes first, and the result of the ternary in BARS_CHECK
/// is void on both arms.
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace bars::common

#define BARS_CHECK(cond)                                            \
  (cond) ? (void)0                                                  \
         : ::bars::common::CheckVoidify() &                         \
               ::bars::common::CheckFailMessage(__FILE__, __LINE__, \
                                                #cond)              \
                   .stream()

#ifdef NDEBUG
// `true || (cond)` keeps the condition (and everything it names)
// odr-used and type-checked without ever evaluating it.
#define BARS_DCHECK(cond) BARS_CHECK(true || (cond))
#else
#define BARS_DCHECK(cond) BARS_CHECK(cond)
#endif

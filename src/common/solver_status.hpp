#pragma once

/// \file solver_status.hpp
/// The unified solver termination status. Lives in common/ (below every
/// other layer) so the execution layers (gpusim), the telemetry event
/// model, and the solver front-ends (core) all speak the same
/// vocabulary instead of each carrying a `converged`/`diverged` bool
/// pair whose four combinations only encoded three meanings.

namespace bars {

/// Why a solve stopped. Replaces the legacy `converged`/`diverged`
/// bool pair on every result struct.
enum class SolverStatus {
  /// Stopped at the iteration limit without reaching tol (the default:
  /// a solve that never rendered a verdict ran out of budget).
  kMaxIterations = 0,
  /// Relative residual reached tol.
  kConverged,
  /// Residual went non-finite or exceeded the divergence limit.
  kDiverged,
  /// Stopped by an external supervisor (cancellation) before any
  /// mathematical verdict: a tripped SolveOptions::cancel token, a
  /// service-layer deadline expiry, or admission-control rejection
  /// (see common/cancel.hpp and docs/SERVICE.md).
  kAborted,
  /// Converged, but only after the resilience layer rewrote the
  /// iterate at least once (checkpoint rollback or damped restart) —
  /// the run recovered from a detected fault.
  kRecoveredConverged,
};

/// Stable lower-case name, e.g. for logs and the telemetry sinks.
[[nodiscard]] constexpr const char* to_string(SolverStatus s) noexcept {
  switch (s) {
    case SolverStatus::kMaxIterations:
      return "max-iterations";
    case SolverStatus::kConverged:
      return "converged";
    case SolverStatus::kDiverged:
      return "diverged";
    case SolverStatus::kAborted:
      return "aborted";
    case SolverStatus::kRecoveredConverged:
      return "recovered-converged";
  }
  return "unknown";
}

/// True when the solve ended at (or below) tol, whether or not the
/// resilience layer had to intervene along the way.
[[nodiscard]] constexpr bool succeeded(SolverStatus s) noexcept {
  return s == SolverStatus::kConverged ||
         s == SolverStatus::kRecoveredConverged;
}

}  // namespace bars

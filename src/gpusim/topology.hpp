#pragma once

#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "sparse/types.hpp"

/// \file topology.hpp
/// Node topology for the multi-GPU experiments (paper Sections 3.4 and
/// 4.6): up to four GPUs, two per CPU socket, each with its own PCIe
/// link; cross-socket traffic crosses QPI. Links track a busy-until
/// horizon so concurrent transfers contend realistically.

namespace bars::gpusim {

/// The three communication schemes the paper implements (Fig. 4).
enum class TransferScheme {
  kAMC,  ///< Asynchronous Multicopy: host-staged, per-device PCIe links
  kDC,   ///< GPU-Direct memory transfer via a master GPU's link
  kDK,   ///< GPU-Direct kernel access into the master GPU's memory
};

[[nodiscard]] std::string to_string(TransferScheme s);

/// Tunable model parameters beyond the raw link specs; defaults are
/// calibrated so Fig. 11's qualitative shape is reproduced (see
/// DESIGN.md §2 for what each constant stands in for).
struct TransferParams {
  /// Per-sweep fixed cost when a transfer crosses QPI (NUMA staging,
  /// IOH synchronization). The paper observes ~20% slowdown going from
  /// 2 to 3 GPUs because of this path; 4 ms against the ~17 ms
  /// Trefethen_20000 sweep reproduces that dip.
  value_t qpi_round_overhead_s = 4.0e-3;
  /// Per-transfer synchronization cost of GPU-direct copies in the DC
  /// scheme (stream sync + copy-engine serialization on the master).
  value_t dc_sync_overhead_s = 2.5e-3;
  /// Kernel slowdown factor for non-master devices in the DK scheme
  /// (every x access goes over PCIe to the master's memory).
  value_t dk_remote_penalty = 2.0;
  /// DK: the master's kernels slow down by this fraction per remote
  /// peer (its memory controller services all the P2P reads/writes).
  value_t dk_master_penalty_per_peer = 0.35;
};

/// One directed bandwidth resource (PCIe link, master P2P path, QPI).
class Link {
 public:
  /// Schedule a transfer that becomes ready at `ready`; returns its
  /// completion time and advances the busy horizon.
  value_t acquire(value_t ready, value_t duration);

  [[nodiscard]] value_t busy_until() const noexcept { return busy_until_; }
  void reset() noexcept { busy_until_ = 0.0; }

 private:
  value_t busy_until_ = 0.0;
};

/// Node with `num_devices` GPUs. Devices d and d+1 share socket d/2.
class Topology {
 public:
  Topology(index_t num_devices, InterconnectSpec spec);

  [[nodiscard]] index_t num_devices() const noexcept { return num_devices_; }
  [[nodiscard]] index_t socket_of(index_t device) const;
  [[nodiscard]] bool crosses_qpi(index_t a, index_t b) const;
  [[nodiscard]] const InterconnectSpec& spec() const noexcept { return spec_; }

  /// PCIe link of one device (host <-> device traffic).
  [[nodiscard]] Link& pcie(index_t device);
  /// The shared QPI link between the sockets.
  [[nodiscard]] Link& qpi() noexcept { return qpi_; }

  /// Pure transfer duration (no contention) of `bytes` host<->device.
  [[nodiscard]] value_t host_transfer_duration(value_t bytes) const;
  /// Pure transfer duration device<->device (derated when crossing QPI).
  [[nodiscard]] value_t p2p_transfer_duration(value_t bytes, index_t a,
                                              index_t b) const;

  void reset();

 private:
  index_t num_devices_;
  InterconnectSpec spec_;
  std::vector<Link> pcie_;
  Link qpi_;
};

}  // namespace bars::gpusim

#include "gpusim/async_executor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <queue>
#include <stdexcept>

#include "gpusim/stopping.hpp"
#include "stats/rng.hpp"

namespace bars::gpusim {

namespace {

enum class EventKind { kStart, kRead, kWrite };

struct Event {
  value_t time = 0.0;
  EventKind kind = EventKind::kStart;
  index_t block = 0;
  std::uint64_t seq = 0;  ///< deterministic tie-break
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

AsyncExecutor::AsyncExecutor(const BlockKernel& kernel, ExecutorOptions opts)
    : kernel_(kernel), opts_(opts) {
  if (opts_.concurrent_slots <= 0) {
    throw std::invalid_argument("AsyncExecutor: concurrent_slots must be > 0");
  }
  if (opts_.global_iteration_time <= 0.0) {
    throw std::invalid_argument(
        "AsyncExecutor: global_iteration_time must be > 0");
  }
}

ExecutorResult AsyncExecutor::run(
    Vector& x, const std::function<value_t(const Vector&)>& residual_fn) {
  const index_t q = kernel_.num_blocks();
  const index_t n = kernel_.num_rows();
  if (static_cast<index_t>(x.size()) != n) {
    throw std::invalid_argument("AsyncExecutor::run: x size mismatch");
  }
  ExecutorResult res;
  res.block_executions.assign(static_cast<std::size_t>(q), 0);
  if (q == 0) {
    res.residual_history.push_back(residual_fn(x));
    res.time_history.push_back(0.0);
    res.converged = res.residual_history.back() <= opts_.tol;
    return res;
  }

  Rng rng(opts_.seed);
  const bool deterministic = opts_.policy == SchedulePolicy::kRoundRobin;
  const index_t slots = std::min(opts_.concurrent_slots, q);
  const value_t mean_duration = opts_.global_iteration_time *
                                static_cast<value_t>(slots) /
                                static_cast<value_t>(q);

  // Fault timeline (Section 4.5 scenarios, composable form). The legacy
  // single-event FaultPlan rides through the same engine.
  std::optional<resilience::ScenarioTimeline> timeline;
  if (opts_.scenario && !opts_.scenario->empty()) {
    timeline.emplace(*opts_.scenario, n);
  } else if (opts_.fault) {
    timeline.emplace(to_scenario(*opts_.fault), n);
  }

  IterationMonitor monitor(
      StoppingCriteria{opts_.max_global_iters, opts_.tol,
                       opts_.divergence_limit},
      opts_.resilience ? &*opts_.resilience : nullptr,
      timeline ? &*timeline : nullptr, q);
  monitor.record_initial(residual_fn(x));

  // Per-block halo snapshot captured at READ, consumed at WRITE.
  std::vector<Vector> halo_snapshot(static_cast<std::size_t>(q));
  std::vector<TraceEvent> pending_trace(
      opts_.record_trace ? static_cast<std::size_t>(q) : 0);
  // Generation bookkeeping for the staleness diagnostic.
  std::vector<index_t> write_generation(static_cast<std::size_t>(q), 0);
  std::vector<std::vector<index_t>> halo_sources(
      static_cast<std::size_t>(q));
  for (index_t b = 0; b < q; ++b) {
    std::vector<index_t>& src = halo_sources[b];
    index_t prev = -1;
    for (index_t gi : kernel_.halo(b)) {
      // Identify the owning block by scanning block ranges lazily; halos
      // are sorted so consecutive indices usually share a block.
      if (prev >= 0 && gi >= kernel_.rows(prev).first &&
          gi < kernel_.rows(prev).second) {
        continue;
      }
      index_t owner = -1;
      for (index_t s = 0; s < q; ++s) {
        const auto [lo, hi] = kernel_.rows(s);
        if (gi >= lo && gi < hi) {
          owner = s;
          break;
        }
      }
      if (owner >= 0 && owner != b &&
          (src.empty() || src.back() != owner)) {
        src.push_back(owner);
      }
      prev = owner;
    }
    std::sort(src.begin(), src.end());
    src.erase(std::unique(src.begin(), src.end()), src.end());
  }

  Rng pattern_rng(opts_.pattern_seed.value_or(0));
  const auto sample_duration = [&]() -> value_t {
    if (deterministic) return mean_duration;
    // Pattern mode: the jitter/straggler stream is shared by all runs;
    // the per-run seed only perturbs durations slightly.
    Rng& jitter_rng = opts_.pattern_seed ? pattern_rng : rng;
    value_t d = mean_duration *
                (1.0 + opts_.jitter * jitter_rng.uniform(-1.0, 1.0));
    if (jitter_rng.uniform() < opts_.straggler_prob) {
      d *= opts_.straggler_factor;
    }
    if (opts_.pattern_seed) {
      d *= 1.0 + opts_.run_noise * rng.uniform(-1.0, 1.0);
    }
    return d;
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;

  // Ready queue and slot accounting. Blocks enter in scheduler order; a
  // free slot starts the front of the queue immediately. After its
  // WRITE a block re-enqueues itself (FIFO for kRoundRobin/kJittered;
  // at a random position for kShuffled), so every block runs infinitely
  // often with bounded skew — the Chazan-Miranker well-posedness
  // conditions.
  std::deque<index_t> ready;
  {
    std::vector<index_t> order(static_cast<std::size_t>(q));
    for (index_t b = 0; b < q; ++b) order[b] = b;
    if (opts_.policy == SchedulePolicy::kShuffled) rng.shuffle(order);
    ready.assign(order.begin(), order.end());
  }
  const auto requeue = [&](index_t b) {
    if (opts_.policy == SchedulePolicy::kShuffled && !ready.empty()) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<index_t>(ready.size())));
      ready.insert(ready.begin() + static_cast<std::ptrdiff_t>(pos), b);
    } else {
      ready.push_back(b);
    }
  };

  index_t busy_slots = 0;
  value_t now = 0.0;
  // Bounded-shift gate: blocks more than max_generation_skew ahead of
  // the slowest block wait (their slot idles until the laggard writes).
  const auto try_start = [&]() {
    index_t min_gen = write_generation.empty() ? 0 : write_generation[0];
    for (index_t g : write_generation) min_gen = std::min(min_gen, g);
    std::deque<index_t> deferred;
    while (busy_slots < slots && !ready.empty()) {
      const index_t b = ready.front();
      ready.pop_front();
      if (write_generation[b] > min_gen + opts_.max_generation_skew) {
        deferred.push_back(b);
        continue;
      }
      ++busy_slots;
      events.push({now, EventKind::kStart, b, seq++});
    }
    for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
      ready.push_front(*it);
    }
  };
  try_start();

  index_t total_writes = 0;
  index_t global_iter = 0;
  if (timeline) timeline->advance(0);

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    const index_t b = ev.block;

    if (ev.kind == EventKind::kStart) {
      const value_t duration = sample_duration();
      const value_t frac =
          std::clamp(opts_.read_fraction, value_t{0.0}, value_t{1.0});
      if (opts_.record_trace) {
        pending_trace[b] = TraceEvent{b, write_generation[b], now,
                                      now + frac * duration,
                                      now + duration};
      }
      events.push({now + frac * duration, EventKind::kRead, b, seq++});
      events.push({now + duration, EventKind::kWrite, b, seq++});
      continue;
    }

    if (ev.kind == EventKind::kRead) {
      // Snapshot halo values at virtual time `now` (mid-execution).
      const auto halo = kernel_.halo(b);
      Vector& snap = halo_snapshot[b];
      snap.resize(halo.size());
      for (std::size_t i = 0; i < halo.size(); ++i) snap[i] = x[halo[i]];
      if (timeline) timeline->maybe_corrupt_halo(snap);
      // Staleness diagnostic: generation gap to each halo source.
      for (index_t s : halo_sources[b]) {
        const index_t gap =
            std::abs(write_generation[b] - write_generation[s]);
        res.max_staleness = std::max(res.max_staleness, gap);
      }
      continue;
    }

    // WRITE: commit the block update.
    ExecContext ctx;
    ctx.virtual_time = now;
    ctx.block_generation = res.block_executions[b];
    ctx.failed_components = timeline ? timeline->component_mask() : nullptr;
    kernel_.update(b, halo_snapshot[b], x, ctx);
    if (opts_.record_trace) res.trace.record(pending_trace[b]);
    ++res.block_executions[b];
    ++write_generation[b];
    ++total_writes;
    --busy_slots;
    requeue(b);

    if (total_writes % q == 0) {
      ++global_iter;
      const StopVerdict verdict = monitor.on_global_iteration(
          global_iter, now, x, residual_fn, res.block_executions);
      if (verdict != StopVerdict::kContinue) {
        res.converged = verdict == StopVerdict::kConverged;
        res.diverged = verdict == StopVerdict::kDiverged;
        break;
      }
    }
    try_start();
  }

  res.global_iterations = global_iter;
  res.virtual_time = now;
  res.residual_history = std::move(monitor.residual_history());
  res.time_history = std::move(monitor.time_history());
  res.resilience = monitor.take_report();
  return res;
}

}  // namespace bars::gpusim

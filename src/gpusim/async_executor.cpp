#include "gpusim/async_executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <queue>
#include <stdexcept>

#include "common/check.hpp"
#include "common/verify_hooks.hpp"
#include "gpusim/incremental_residual.hpp"
#include "gpusim/stopping.hpp"
#include "gpusim/worker_pool.hpp"
#include "stats/rng.hpp"
#include "telemetry/metrics.hpp"

namespace bars::gpusim {

namespace {

enum class EventKind { kStart, kRead, kWrite };

struct Event {
  value_t time = 0.0;
  EventKind kind = EventKind::kStart;
  index_t block = 0;
  std::uint64_t seq = 0;  ///< deterministic tie-break
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Incremental minimum over the per-block write generations.
/// `on_write(b)` (called after the increment) is O(1) except when the
/// minimum advances — which takes all q blocks writing once — so the
/// rescan amortizes to O(1) per write, replacing the former O(q) scan
/// in every try_start() and a full-history scan per gate check.
class MinGenTracker {
 public:
  explicit MinGenTracker(const std::vector<index_t>& gen)
      : gen_(gen), at_min_(static_cast<index_t>(gen.size())) {}

  void on_write(index_t b) {
    if (gen_[static_cast<std::size_t>(b)] - 1 != min_gen_) return;
    if (--at_min_ > 0) return;
    min_gen_ = *std::min_element(gen_.begin(), gen_.end());
    at_min_ = static_cast<index_t>(
        std::count(gen_.begin(), gen_.end(), min_gen_));
  }

  [[nodiscard]] index_t min() const { return min_gen_; }

 private:
  const std::vector<index_t>& gen_;
  index_t min_gen_ = 0;
  index_t at_min_;
};

}  // namespace

AsyncExecutor::AsyncExecutor(const BlockKernel& kernel, ExecutorOptions opts)
    : kernel_(kernel), opts_(opts) {
  if (opts_.concurrent_slots <= 0) {
    throw std::invalid_argument("AsyncExecutor: concurrent_slots must be > 0");
  }
  if (opts_.global_iteration_time <= 0.0) {
    throw std::invalid_argument(
        "AsyncExecutor: global_iteration_time must be > 0");
  }
  if (opts_.num_workers < 0) {
    throw std::invalid_argument("AsyncExecutor: num_workers must be >= 0");
  }
}

AsyncExecutor::~AsyncExecutor() = default;

ExecutorResult AsyncExecutor::run(
    Vector& x, const std::function<value_t(const Vector&)>& residual_fn) {
  const index_t q = kernel_.num_blocks();
  const index_t n = kernel_.num_rows();
  if (static_cast<index_t>(x.size()) != n) {
    throw std::invalid_argument("AsyncExecutor::run: x size mismatch");
  }
  ExecutorResult res;
  res.block_executions.assign(static_cast<std::size_t>(q), 0);
  if (q == 0) {
    res.residual_history.push_back(residual_fn(x));
    res.time_history.push_back(0.0);
    if (res.residual_history.back() <= opts_.stopping.tol) {
      res.status = SolverStatus::kConverged;
    }
    return res;
  }

  Rng rng(opts_.seed);
  const bool deterministic = opts_.policy == SchedulePolicy::kRoundRobin;
  const index_t slots = std::min(opts_.concurrent_slots, q);
  const value_t mean_duration = opts_.global_iteration_time *
                                static_cast<value_t>(slots) /
                                static_cast<value_t>(q);

  // Fault timeline (Section 4.5 scenarios, composable form). The legacy
  // single-event FaultPlan rides through the same engine.
  std::optional<resilience::ScenarioTimeline> timeline;
  if (opts_.scenario && !opts_.scenario->empty()) {
    timeline.emplace(*opts_.scenario, n);
  } else if (opts_.fault) {
    timeline.emplace(to_scenario(*opts_.fault), n);
  }

  // Incremental residual path: active only when nothing rewrites the
  // iterate behind the tracker's back (resilience rollbacks do).
  IncrementalResidual* tracker =
      (opts_.residual_tracker && !opts_.resilience) ? opts_.residual_tracker
                                                    : nullptr;
  const index_t refresh_every =
      std::max<index_t>(opts_.residual_refresh_every, 1);
  index_t checks_since_exact = 0;
  index_t total_checks = 0;
  // Observability: re-anchor count goes to the metrics registry (it is
  // a solver-internal rate, not an event); commit events go to the
  // observer, gated so iteration-level consumers skip the volume.
  telemetry::Counter* reanchors =
      opts_.telemetry.metrics
          ? &opts_.telemetry.metrics->counter("incremental_residual_reanchors")
          : nullptr;
  const auto monitor_fn = [&](const Vector& xv) -> value_t {
    if (!tracker) return residual_fn(xv);
    ++checks_since_exact;
    ++total_checks;
    if (checks_since_exact < refresh_every &&
        total_checks < opts_.stopping.max_global_iters) {
      const value_t est = tracker->relative();
      // Only a certified-exact value may drive a stopping verdict.
      if (std::isfinite(est) && est > opts_.stopping.tol &&
          est <= opts_.stopping.divergence_limit) {
        return est;
      }
    }
    tracker->reset(xv);
    checks_since_exact = 0;
    if (reanchors) reanchors->inc();
    return tracker->relative();  // bit-identical to residual_fn here
  };

  IterationMonitor monitor(opts_.stopping,
                           opts_.resilience ? &*opts_.resilience : nullptr,
                           timeline ? &*timeline : nullptr, q,
                           opts_.telemetry.observer);
  monitor.record_initial(residual_fn(x));
  if (tracker) tracker->reset(x);

  // Per-block halo snapshot captured at READ, consumed at WRITE.
  std::vector<Vector> halo_snapshot(static_cast<std::size_t>(q));
  std::vector<TraceEvent> pending_trace(
      opts_.record_trace ? static_cast<std::size_t>(q) : 0);
  // Generation bookkeeping for the staleness diagnostic.
  std::vector<index_t> write_generation(static_cast<std::size_t>(q), 0);
  MinGenTracker gen_tracker(write_generation);
  // Staleness of the in-flight execution's halo read, sampled at kRead
  // and reported with the matching commit event.
  telemetry::SolveObserver* const obs = opts_.telemetry.observer;
  const bool emit_commits = obs != nullptr && opts_.telemetry.block_commits;
  std::vector<index_t> pending_staleness(
      emit_commits ? static_cast<std::size_t>(q) : 0, 0);

  // O(1) row -> owning block table; kills the former O(halo * q)
  // owner scan when assembling the staleness diagnostic's halo-source
  // lists (and any per-row owner query below).
  std::vector<index_t> owner(static_cast<std::size_t>(n), -1);
  for (index_t s = 0; s < q; ++s) {
    const auto [lo, hi] = kernel_.rows(s);
    for (index_t i = lo; i < hi; ++i) owner[static_cast<std::size_t>(i)] = s;
  }
  std::vector<std::vector<index_t>> halo_sources(static_cast<std::size_t>(q));
  for (index_t b = 0; b < q; ++b) {
    std::vector<index_t>& src = halo_sources[b];
    for (index_t gi : kernel_.halo(b)) {
      const index_t o = owner[static_cast<std::size_t>(gi)];
      if (o >= 0 && o != b) src.push_back(o);
    }
    std::sort(src.begin(), src.end());
    src.erase(std::unique(src.begin(), src.end()), src.end());
  }

  Rng pattern_rng(opts_.pattern_seed.value_or(0));
  const auto sample_duration = [&]() -> value_t {
    if (deterministic) return mean_duration;
    // Pattern mode: the jitter/straggler stream is shared by all runs;
    // the per-run seed only perturbs durations slightly.
    Rng& jitter_rng = opts_.pattern_seed ? pattern_rng : rng;
    value_t d = mean_duration *
                (1.0 + opts_.jitter * jitter_rng.uniform(-1.0, 1.0));
    if (jitter_rng.uniform() < opts_.straggler_prob) {
      d *= opts_.straggler_factor;
    }
    if (opts_.pattern_seed) {
      d *= 1.0 + opts_.run_noise * rng.uniform(-1.0, 1.0);
    }
    return d;
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;

  // Ready queue and slot accounting. Blocks enter in scheduler order; a
  // free slot starts the front of the queue immediately. After its
  // WRITE a block re-enqueues itself (FIFO for kRoundRobin/kJittered;
  // at a random position for kShuffled), so every block runs infinitely
  // often with bounded skew — the Chazan-Miranker well-posedness
  // conditions.
  std::deque<index_t> ready;
  {
    std::vector<index_t> order(static_cast<std::size_t>(q));
    for (index_t b = 0; b < q; ++b) order[b] = b;
    if (opts_.policy == SchedulePolicy::kShuffled) rng.shuffle(order);
    ready.assign(order.begin(), order.end());
  }
  const auto requeue = [&](index_t b) {
    if (opts_.policy == SchedulePolicy::kShuffled && !ready.empty()) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<index_t>(ready.size())));
      ready.insert(ready.begin() + static_cast<std::ptrdiff_t>(pos), b);
    } else {
      ready.push_back(b);
    }
  };

  index_t busy_slots = 0;
  value_t now = 0.0;
  // Bounded-shift gate: blocks more than max_generation_skew ahead of
  // the slowest block wait (their slot idles until the laggard writes).
  const auto try_start = [&]() {
    const index_t min_gen = gen_tracker.min();
    std::deque<index_t> deferred;
    while (busy_slots < slots && !ready.empty()) {
      const index_t b = ready.front();
      ready.pop_front();
      if (write_generation[b] > min_gen + opts_.max_generation_skew) {
        deferred.push_back(b);
        continue;
      }
      ++busy_slots;
      events.push({now, EventKind::kStart, b, seq++});
    }
    for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
      ready.push_front(*it);
    }
  };
  try_start();

  index_t total_writes = 0;
  index_t global_iter = 0;
  if (timeline) timeline->advance(0);

  // --- Parallel commit path -------------------------------------------
  // All WRITE events at one virtual time update disjoint owned row
  // ranges from already-frozen halo snapshots, so their kernel calls
  // are independent and run concurrently; the bookkeeping (trace,
  // counters, monitor boundaries, scheduling) is then replayed in
  // deterministic event order, making the result bit-identical to the
  // serial loop. Fault timelines and resilience policies may change
  // fault masks or rewrite x at iteration boundaries *inside* a batch,
  // so they force the serial path.
  const bool can_batch = opts_.num_workers > 1 &&
                         kernel_.parallel_commit_safe() && !timeline &&
                         !opts_.resilience;
  if (can_batch && !pool_) {
    pool_ = std::make_unique<WorkerPool>(opts_.num_workers);
  }
  // Pre-/post-commit values of each block's owned rows, reused across
  // visits: saved_rows is the "old" side of the incremental residual
  // delta; new_rows stages parallel results so batched commits land in
  // x one member at a time, in event order.
  std::vector<Vector> saved_rows(static_cast<std::size_t>(q));
  std::vector<Vector> new_rows(can_batch ? static_cast<std::size_t>(q) : 0);
  const auto save_rows = [&](index_t b) -> Vector& {
    const auto [lo, hi] = kernel_.rows(b);
    Vector& old = saved_rows[static_cast<std::size_t>(b)];
    old.resize(static_cast<std::size_t>(hi - lo));
    std::copy(x.begin() + lo, x.begin() + hi, old.begin());
    return old;
  };

  bool stopped = false;
  // Commit bookkeeping for one WRITE (the kernel update itself already
  // ran). Mirrors the serial order exactly: trace, counters, requeue,
  // then the global-iteration boundary, then slot refill.
  const auto commit_write = [&](index_t b) {
    if (opts_.record_trace) res.trace.record(pending_trace[b]);
    if (emit_commits) {
      // Emitted from the serial replay in both commit paths, so the
      // event order is part of the bit-identity contract.
      telemetry::BlockCommitEvent cev;
      cev.block = b;
      cev.generation = write_generation[b];
      cev.virtual_time = now;
      cev.staleness = pending_staleness[b];
      obs->on_block_commit(cev);
    }
    ++res.block_executions[b];
    ++write_generation[b];
    gen_tracker.on_write(b);
    ++total_writes;
    BARS_DCHECK(busy_slots > 0)
        << "commit of block " << b << " at vt " << now
        << " with no busy slot";
    --busy_slots;
    requeue(b);
    if (tracker) {
      const auto [lo, hi] = kernel_.rows(b);
      tracker->block_committed(
          b, saved_rows[static_cast<std::size_t>(b)],
          std::span<const value_t>(x).subspan(
              static_cast<std::size_t>(lo), static_cast<std::size_t>(hi - lo)));
    }
    if (total_writes % q == 0) {
      ++global_iter;
      const StopVerdict verdict = monitor.on_global_iteration(
          global_iter, now, x, monitor_fn, res.block_executions);
      if (verdict != StopVerdict::kContinue) {
        res.status = monitor.status_for(verdict);
        stopped = true;
        return;
      }
    }
    try_start();
  };

  std::vector<Event> batch;

  while (!events.empty() && !stopped) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    const index_t b = ev.block;

    if (ev.kind == EventKind::kStart) {
      const value_t duration = sample_duration();
      const value_t frac =
          std::clamp(opts_.read_fraction, value_t{0.0}, value_t{1.0});
      if (opts_.record_trace) {
        pending_trace[b] = TraceEvent{b, write_generation[b], now,
                                      now + frac * duration,
                                      now + duration};
      }
      events.push({now + frac * duration, EventKind::kRead, b, seq++});
      events.push({now + duration, EventKind::kWrite, b, seq++});
      continue;
    }

    if (ev.kind == EventKind::kRead) {
      // Snapshot halo values at virtual time `now` (mid-execution).
      const auto halo = kernel_.halo(b);
      Vector& snap = halo_snapshot[b];
      snap.resize(halo.size());
      for (std::size_t i = 0; i < halo.size(); ++i) snap[i] = x[halo[i]];
      if (timeline) timeline->maybe_corrupt_halo(snap);
      // Staleness diagnostic: generation gap to each halo source.
      index_t read_staleness = 0;
      for (index_t s : halo_sources[b]) {
        const index_t gap =
            std::abs(write_generation[b] - write_generation[s]);
        read_staleness = std::max(read_staleness, gap);
      }
      res.max_staleness = std::max(res.max_staleness, read_staleness);
      if (emit_commits) pending_staleness[b] = read_staleness;
      continue;
    }

    // WRITE: commit the block update.
    if (can_batch) {
      batch.clear();
      batch.push_back(ev);
      while (!events.empty() && events.top().kind == EventKind::kWrite &&
             events.top().time == ev.time) {
        batch.push_back(events.top());
        events.pop();
      }
      if (batch.size() > 1) {
        BARS_CHECK(pool_ != nullptr)
            << "parallel batch of " << batch.size() << " at vt " << now
            << " without a worker pool";
        // Batch members are distinct blocks (a block has at most one
        // execution in flight), so updates write disjoint rows of x
        // and per-block kernel scratch never collides. Each task then
        // stages its result and restores its rows, leaving x in the
        // pre-batch state: the replay below commits one member at a
        // time so every monitor check (and any mid-batch stop) sees
        // exactly the x the serial loop would have.
        pool_->run(
            static_cast<index_t>(batch.size()),
            [&](index_t i, index_t /*worker*/) {
              const index_t blk = batch[static_cast<std::size_t>(i)].block;
              const Vector& old = save_rows(blk);
              ExecContext ctx;
              ctx.virtual_time = now;
              ctx.block_generation = res.block_executions[blk];
              kernel_.update(blk, halo_snapshot[blk], x, ctx);
              const auto [lo, hi] = kernel_.rows(blk);
              // Declare this task's slice of x to the race oracle: the
              // disjoint-row claim above becomes machine-checked.
              BARS_VERIFY_WRITE(x.data() + lo,
                                static_cast<std::size_t>(hi - lo) *
                                    sizeof(value_t),
                                "executor.batch_rows");
              Vector& fresh = new_rows[static_cast<std::size_t>(blk)];
              fresh.resize(static_cast<std::size_t>(hi - lo));
              std::copy(x.begin() + lo, x.begin() + hi, fresh.begin());
              std::copy(old.begin(), old.end(), x.begin() + lo);
            });
        for (const Event& bev : batch) {
          if (stopped) break;  // serial would never reach these WRITEs
          const auto [lo, hi] = kernel_.rows(bev.block);
          const Vector& fresh = new_rows[static_cast<std::size_t>(bev.block)];
          std::copy(fresh.begin(), fresh.end(), x.begin() + lo);
          commit_write(bev.block);
        }
        continue;
      }
      // Fall through: a batch of one is just the serial case.
    }

    if (tracker) save_rows(b);
    ExecContext ctx;
    ctx.virtual_time = now;
    ctx.block_generation = res.block_executions[b];
    ctx.failed_components = timeline ? timeline->component_mask() : nullptr;
    kernel_.update(b, halo_snapshot[b], x, ctx);
    commit_write(b);
  }

  res.global_iterations = global_iter;
  res.virtual_time = now;
  res.residual_history = std::move(monitor.residual_history());
  res.time_history = std::move(monitor.time_history());
  res.resilience = monitor.take_report();
  return res;
}

}  // namespace bars::gpusim

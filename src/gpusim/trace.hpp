#pragma once

#include <vector>

#include "sparse/types.hpp"

/// \file trace.hpp
/// Optional execution trace of the simulated device: one record per
/// block execution, plus summary analyses (occupancy, staleness). Used
/// by the executor tests and the trace_occupancy example.

namespace bars::gpusim {

/// One completed block execution.
struct TraceEvent {
  index_t block = 0;
  index_t generation = 0;  ///< how many times this block ran before
  value_t start = 0.0;     ///< virtual time the block began
  value_t read = 0.0;      ///< halo snapshot time
  value_t write = 0.0;     ///< commit time
};

/// Trace of a whole run with derived statistics.
class ExecutionTrace {
 public:
  void record(const TraceEvent& ev) { events_.push_back(ev); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Virtual time of the last commit.
  [[nodiscard]] value_t makespan() const;

  /// Mean number of concurrently executing blocks: total busy time
  /// divided by the makespan.
  [[nodiscard]] value_t average_concurrency() const;

  /// Fraction of slot capacity used: average_concurrency / slots.
  [[nodiscard]] value_t occupancy(index_t slots) const;

  /// Histogram of |generation gap| between each execution and the
  /// executions of other blocks overlapping its read time (index =
  /// gap, value = count). Bounded support demonstrates the
  /// Chazan-Miranker shift bound empirically.
  [[nodiscard]] std::vector<index_t> staleness_histogram() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace bars::gpusim

#include "gpusim/incremental_residual.hpp"

#include <cmath>
#include <stdexcept>

#include "common/annotations.hpp"
#include "common/check.hpp"
#include "sparse/vector_ops.hpp"

namespace bars::gpusim {

IncrementalResidual::IncrementalResidual(const Csr& a, const Vector& b,
                                         const RowPartition& partition)
    : a_(a), b_(b) {
  const index_t n = a.rows();
  if (a.rows() != a.cols() || static_cast<index_t>(b.size()) != n ||
      partition.total_rows() != n) {
    throw std::invalid_argument("IncrementalResidual: size mismatch");
  }
  const index_t q = partition.num_blocks();
  row_owner_ = partition.owner_table();
  block_lo_.resize(static_cast<std::size_t>(q));
  for (index_t blk = 0; blk < q; ++blk) {
    block_lo_[static_cast<std::size_t>(blk)] = partition.block(blk).begin;
  }

  // Build the per-block column slices in one sweep over A. Rows arrive
  // in ascending order, so each slice's row runs come out sorted.
  slices_.resize(static_cast<std::size_t>(q));
  for (auto& s : slices_) s.ptr.push_back(0);
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      Slice& s = slices_[static_cast<std::size_t>(row_owner_[j])];
      if (s.rows.empty() || s.rows.back() != i) {
        if (!s.rows.empty()) s.ptr.push_back(static_cast<index_t>(s.col.size()));
        s.rows.push_back(i);
      }
      s.col.push_back(j - block_lo_[static_cast<std::size_t>(row_owner_[j])]);
      s.val.push_back(vals[k]);
    }
  }
  for (auto& s : slices_) s.ptr.push_back(static_cast<index_t>(s.col.size()));

  r_.assign(static_cast<std::size_t>(n), 0.0);
  contrib_.assign(static_cast<std::size_t>(q), 0.0);
  const value_t nb = norm2(b_);
  den_ = nb > 0.0 ? nb : 1.0;
}

void IncrementalResidual::reset(std::span<const value_t> x) {
  a_.residual(b_, x, r_);
  std::fill(contrib_.begin(), contrib_.end(), 0.0);
  for (std::size_t i = 0; i < r_.size(); ++i) {
    contrib_[static_cast<std::size_t>(row_owner_[i])] += r_[i] * r_[i];
  }
}

BARS_HOT_NOALLOC void IncrementalResidual::block_committed(
    index_t block, std::span<const value_t> x_old,
    std::span<const value_t> x_new) {
  BARS_DCHECK(x_old.size() == x_new.size())
      << "block " << block << ": old/new row spans differ, " << x_old.size()
      << " vs " << x_new.size();
  const Slice& s = slices_[static_cast<std::size_t>(block)];
  const std::size_t runs = s.rows.size();
  for (std::size_t k = 0; k < runs; ++k) {
    const index_t i = s.rows[k];
    value_t delta = 0.0;
    for (index_t e = s.ptr[k]; e < s.ptr[k + 1]; ++e) {
      const index_t c = s.col[e];
      delta += s.val[e] * (x_new[static_cast<std::size_t>(c)] -
                           x_old[static_cast<std::size_t>(c)]);
    }
    value_t& ri = r_[static_cast<std::size_t>(i)];
    value_t& ci = contrib_[static_cast<std::size_t>(row_owner_[i])];
    ci -= ri * ri;
    ri -= delta;
    ci += ri * ri;
  }
}

BARS_HOT_NOALLOC value_t IncrementalResidual::norm() const {
  return norm2(r_);
}

}  // namespace bars::gpusim

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sparse/types.hpp"

/// \file block_kernel.hpp
/// Interface between the numerics-agnostic asynchronous executor
/// (gpusim) and the relaxation kernels (core). A BlockKernel owns the
/// row-block decomposition and knows how to update one block's segment
/// of the iterate given a snapshot of the off-block ("halo") values.

namespace bars::gpusim {

/// Per-execution context handed to the kernel.
struct ExecContext {
  value_t virtual_time = 0.0;   ///< simulated seconds at block start
  index_t block_generation = 0; ///< how many times this block ran before
  /// Optional component fault mask (size n). A true entry marks a
  /// component whose owning core has failed: the kernel must leave its
  /// value untouched (paper Section 4.5). nullptr when no fault active.
  const std::vector<std::uint8_t>* failed_components = nullptr;
};

/// Numeric kernel for one row block ("subdomain").
///
/// Contract:
///   - `halo(b)` returns the global indices outside block b that
///     `update(b, ...)` reads; the executor snapshots exactly these at
///     the block's virtual start time.
///   - `update(b, halo_values, x, ctx)` may read/write only the rows of
///     block b in `x`, plus `halo_values` (aligned with `halo(b)`).
/// This split is what creates genuine asynchronous staleness: between a
/// block's snapshot and its commit, other blocks keep committing.
class BlockKernel {
 public:
  virtual ~BlockKernel() = default;

  [[nodiscard]] virtual index_t num_blocks() const = 0;
  [[nodiscard]] virtual index_t num_rows() const = 0;

  /// Global indices read from outside block b (sorted, unique).
  [[nodiscard]] virtual std::span<const index_t> halo(index_t block) const = 0;

  /// Row range [begin, end) of block b.
  [[nodiscard]] virtual std::pair<index_t, index_t> rows(
      index_t block) const = 0;

  /// Perform the block update in place on x (own rows only).
  virtual void update(index_t block, std::span<const value_t> halo_values,
                      std::span<value_t> x, const ExecContext& ctx) const = 0;

  /// True when update(b, ...) honors the contract above to the letter:
  /// besides `halo_values` it reads and writes only rows owned by
  /// block b. The executor then runs same-virtual-time updates of
  /// distinct blocks concurrently (their row ranges are disjoint).
  /// Kernels that read x outside their owned rows — e.g. overlapping
  /// subdomains seeding from neighbor rows at update time — must
  /// return false, which serializes commits. Implementations returning
  /// true must also tolerate concurrent update() calls for *distinct*
  /// blocks (per-block mutable scratch is fine, shared scratch is not).
  [[nodiscard]] virtual bool parallel_commit_safe() const { return true; }
};

}  // namespace bars::gpusim

#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/cancel.hpp"
#include "common/solver_status.hpp"
#include "resilience/recovery.hpp"
#include "resilience/scenario.hpp"
#include "sparse/types.hpp"
#include "telemetry/observer.hpp"

/// \file stopping.hpp
/// Shared per-global-iteration bookkeeping for AsyncExecutor and
/// MultiDeviceExecutor: residual/time history recording, the
/// convergence/divergence/iteration-limit verdict (previously
/// duplicated in both run loops), and the single place where the
/// resilience layer hooks into a solve — online SDC detection with
/// checkpoint rollback, watchdog supervision with component
/// reassignment, and damped restarts on divergence.

namespace bars::gpusim {

struct StoppingCriteria {
  index_t max_global_iters = 1000;
  value_t tol = 1e-14;
  value_t divergence_limit = 1e30;
  /// Cooperative cancellation token (SolveOptions::cancel), polled once
  /// per global-iteration boundary. Null disables the check.
  const common::CancelToken* cancel = nullptr;
};

enum class StopVerdict {
  kContinue,
  kConverged,   ///< residual reached tol
  kDiverged,    ///< residual non-finite or above the divergence limit
  kIterLimit,   ///< max_global_iters reached
  kCancelled,   ///< the cancel token was tripped mid-solve
};

/// Drives one solve's global-iteration boundaries. `policy` and
/// `timeline` may be null (plain run, legacy behavior bit-for-bit).
/// The monitor owns the residual/time histories; executors move them
/// into their result structs after the run loop.
///
/// The monitor is also the telemetry emission point shared by both
/// executors: when an observer is attached it receives one
/// on_iteration per boundary (mirroring the history entries) and one
/// on_recovery_event per resilience action. Solver front-ends emit
/// on_start / on_finish themselves (they know the solver name and the
/// wall clock); the executors emit on_block_commit.
class IterationMonitor {
 public:
  IterationMonitor(StoppingCriteria criteria,
                   const resilience::Policy* policy,
                   resilience::ScenarioTimeline* timeline,
                   index_t num_blocks,
                   telemetry::SolveObserver* observer = nullptr);

  /// Record the initial residual (history index 0, time 0).
  void record_initial(value_t r0);

  /// Handle the boundary after global iteration `iter`: record the
  /// residual, advance the fault timeline, run detector/checkpoint/
  /// watchdog hooks (which may mutate x — rollback, damped restart),
  /// and return the stopping verdict.
  StopVerdict on_global_iteration(
      index_t iter, value_t now, Vector& x,
      const std::function<value_t(const Vector&)>& residual_fn,
      std::span<const index_t> block_executions);

  [[nodiscard]] std::vector<value_t>& residual_history() { return history_; }
  [[nodiscard]] std::vector<value_t>& time_history() { return times_; }

  /// Number of times the monitor rewrote the iterate (rollbacks +
  /// damped restarts). The multi-device executor compares this across a
  /// boundary call to know when device views must be re-broadcast.
  [[nodiscard]] index_t iterate_mutations() const {
    return report_.rollbacks + report_.damped_restarts;
  }

  /// Resilience activity of the run so far (halo-corruption counts are
  /// folded in from the timeline).
  [[nodiscard]] resilience::Report take_report();

  /// Map the final verdict to the unified SolverStatus, accounting for
  /// recovery: a converged run whose iterate the monitor rewrote along
  /// the way is kRecoveredConverged, not plain kConverged. Call before
  /// take_report().
  [[nodiscard]] SolverStatus status_for(StopVerdict v) const {
    switch (v) {
      case StopVerdict::kConverged:
        return iterate_mutations() > 0 ? SolverStatus::kRecoveredConverged
                                       : SolverStatus::kConverged;
      case StopVerdict::kDiverged:
        return SolverStatus::kDiverged;
      case StopVerdict::kCancelled:
        return SolverStatus::kAborted;
      case StopVerdict::kContinue:
      case StopVerdict::kIterLimit:
        break;
    }
    return SolverStatus::kMaxIterations;
  }

 private:
  void emit_recovery(telemetry::RecoveryEvent::Kind kind, index_t iter,
                     value_t residual, index_t detail = 0) {
    if (observer_ == nullptr) return;
    observer_->on_recovery_event({kind, iter, residual, detail});
  }

  void damped_restart(index_t iter, Vector& x, value_t& r,
                      const std::function<value_t(const Vector&)>& residual_fn);

  StoppingCriteria crit_;
  resilience::ScenarioTimeline* timeline_;
  std::optional<resilience::CheckpointStore> checkpoint_;
  std::optional<resilience::OnlineResidualDetector> detector_;
  std::optional<resilience::Watchdog> watchdog_;
  index_t max_restarts_ = 0;
  value_t restart_damping_ = 0.5;
  index_t max_rollbacks_ = 0;
  index_t restarts_done_ = 0;
  std::vector<value_t> history_;
  std::vector<value_t> times_;
  resilience::Report report_;
  telemetry::SolveObserver* observer_ = nullptr;
};

}  // namespace bars::gpusim

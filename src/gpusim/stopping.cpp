#include "gpusim/stopping.hpp"

#include <algorithm>
#include <cmath>

namespace bars::gpusim {

// The recovery state (checkpoint_/detector_/watchdog_) is member
// std::optional, engaged once in the constructor and never reset. Every
// access below is behind an engagement guard, but opaque calls between
// guard and access (residual_fn, emit_recovery) force clang-tidy's flow
// analysis to conservatively drop the guard fact, so the check would
// flag accesses that cannot fail.
// NOLINTBEGIN(bugprone-unchecked-optional-access)

using telemetry::RecoveryEvent;

IterationMonitor::IterationMonitor(StoppingCriteria criteria,
                                   const resilience::Policy* policy,
                                   resilience::ScenarioTimeline* timeline,
                                   index_t num_blocks,
                                   telemetry::SolveObserver* observer)
    : crit_(criteria), timeline_(timeline), observer_(observer) {
  if (policy) {
    if (policy->checkpointing) {
      checkpoint_.emplace(policy->checkpoint);
      max_rollbacks_ = policy->checkpoint.max_rollbacks;
    }
    if (policy->online_detection) detector_.emplace(policy->detector);
    if (policy->watchdog) {
      watchdog_.emplace(policy->supervisor, num_blocks);
      max_restarts_ = policy->supervisor.max_restarts;
      restart_damping_ = policy->supervisor.restart_damping;
    }
  }
}

void IterationMonitor::record_initial(value_t r0) {
  history_.push_back(r0);
  times_.push_back(0.0);
  if (detector_) (void)detector_->push(r0);
  if (observer_) observer_->on_iteration({0, r0, 0.0});
}

void IterationMonitor::damped_restart(
    index_t iter, Vector& x, value_t& r,
    const std::function<value_t(const Vector&)>& residual_fn) {
  if (checkpoint_ && checkpoint_->has()) {
    x = checkpoint_->best().x;
  } else {
    std::fill(x.begin(), x.end(), value_t{0.0});
  }
  for (value_t& xi : x) xi *= restart_damping_;
  r = residual_fn(x);
  ++restarts_done_;
  ++report_.damped_restarts;
  if (detector_) detector_->reset(r);
  if (watchdog_) watchdog_->reset(r);
  emit_recovery(RecoveryEvent::Kind::kDampedRestart, iter, r);
}

StopVerdict IterationMonitor::on_global_iteration(
    index_t iter, value_t now, Vector& x,
    const std::function<value_t(const Vector&)>& residual_fn,
    std::span<const index_t> block_executions) {
  value_t r = residual_fn(x);
  history_.push_back(r);
  times_.push_back(now);
  if (observer_) observer_->on_iteration({iter, r, now});
  if (timeline_) timeline_->advance(iter);

  // Cooperative cancellation, honored before the recovery machinery
  // runs (an abandoned solve must not roll back, restart, or save
  // checkpoints). A converged iterate still reports convergence:
  // tripping the token cannot un-converge a finished solve.
  if (crit_.cancel != nullptr && crit_.cancel->requested() && r > crit_.tol) {
    return StopVerdict::kCancelled;
  }

  bool anomalous = false;
  if (detector_) {
    if (const auto anomaly = detector_->push(r)) {
      ++report_.detections;
      report_.detection_iterations.push_back(iter);
      anomalous = true;
      emit_recovery(RecoveryEvent::Kind::kAnomalyDetected, iter, r,
                    static_cast<index_t>(anomaly->kind));
      // Roll back on corruption signatures (jump / non-finite). A stall
      // is dead components, not a bad iterate — rolling back cannot
      // help; that is the watchdog's reassignment case.
      if (anomaly->kind != resilience::AnomalyKind::kStall && checkpoint_ &&
          checkpoint_->has() && report_.rollbacks < max_rollbacks_) {
        x = checkpoint_->best().x;
        r = residual_fn(x);
        ++report_.rollbacks;
        detector_->reset(r);
        if (watchdog_) watchdog_->reset(r);
        emit_recovery(RecoveryEvent::Kind::kRollback, iter, r);
      }
    }
  }

  if (watchdog_) {
    const resilience::WatchdogVerdict v =
        watchdog_->observe(iter, r, block_executions);
    for (index_t b : v.newly_stalled_blocks) {
      report_.stalled_blocks.push_back(b);
      emit_recovery(RecoveryEvent::Kind::kBlockStalled, iter, r, b);
    }
    if (v.reassign && timeline_) {
      const index_t freed = timeline_->reassign_failed_components();
      if (freed > 0) {
        ++report_.watchdog_reassignments;
        report_.components_reassigned += freed;
        emit_recovery(RecoveryEvent::Kind::kWatchdogReassignment, iter, r,
                      freed);
      }
    }
    if (v.damped_restart && restarts_done_ < max_restarts_) {
      damped_restart(iter, x, r, residual_fn);
    }
  }

  // Checkpoint only clean iterates: an anomalous residual must never
  // become the rollback target.
  if (checkpoint_ && !anomalous) {
    const index_t before = checkpoint_->saved_count();
    checkpoint_->observe(iter, r, x);
    report_.checkpoints_saved = checkpoint_->saved_count();
    if (report_.checkpoints_saved > before) {
      emit_recovery(RecoveryEvent::Kind::kCheckpointSaved, iter, r);
    }
  }

  if (r <= crit_.tol) return StopVerdict::kConverged;
  if (!std::isfinite(r) || r > crit_.divergence_limit) {
    if (watchdog_ && restarts_done_ < max_restarts_) {
      damped_restart(iter, x, r, residual_fn);
      if (r <= crit_.tol) return StopVerdict::kConverged;
      if (std::isfinite(r) && r <= crit_.divergence_limit) {
        if (iter >= crit_.max_global_iters) return StopVerdict::kIterLimit;
        return StopVerdict::kContinue;
      }
    }
    return StopVerdict::kDiverged;
  }
  if (iter >= crit_.max_global_iters) return StopVerdict::kIterLimit;
  return StopVerdict::kContinue;
}

resilience::Report IterationMonitor::take_report() {
  if (timeline_) report_.halo_corruptions = timeline_->halo_corruptions();
  return std::move(report_);
}

// NOLINTEND(bugprone-unchecked-optional-access)

}  // namespace bars::gpusim

#include "gpusim/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace bars::gpusim {

std::string to_string(TransferScheme s) {
  switch (s) {
    case TransferScheme::kAMC:
      return "AMC";
    case TransferScheme::kDC:
      return "DC";
    case TransferScheme::kDK:
      return "DK";
  }
  return "?";
}

value_t Link::acquire(value_t ready, value_t duration) {
  const value_t start = std::max(ready, busy_until_);
  busy_until_ = start + duration;
  return busy_until_;
}

Topology::Topology(index_t num_devices, InterconnectSpec spec)
    : num_devices_(num_devices), spec_(spec) {
  if (num_devices <= 0) {
    throw std::invalid_argument("Topology: need at least one device");
  }
  pcie_.resize(static_cast<std::size_t>(num_devices));
}

index_t Topology::socket_of(index_t device) const {
  if (device < 0 || device >= num_devices_) {
    throw std::out_of_range("Topology::socket_of: bad device");
  }
  return device / 2;
}

bool Topology::crosses_qpi(index_t a, index_t b) const {
  return socket_of(a) != socket_of(b);
}

Link& Topology::pcie(index_t device) {
  if (device < 0 || device >= num_devices_) {
    throw std::out_of_range("Topology::pcie: bad device");
  }
  return pcie_[static_cast<std::size_t>(device)];
}

value_t Topology::host_transfer_duration(value_t bytes) const {
  return spec_.pcie_latency_s + bytes / (spec_.pcie_bandwidth_gbs * 1.0e9);
}

value_t Topology::p2p_transfer_duration(value_t bytes, index_t a,
                                        index_t b) const {
  const bool qpi = crosses_qpi(a, b);
  const value_t bw =
      spec_.pcie_bandwidth_gbs * (qpi ? spec_.qpi_derate : 1.0) * 1.0e9;
  return spec_.pcie_latency_s + (qpi ? spec_.qpi_latency_s : 0.0) +
         bytes / bw;
}

void Topology::reset() {
  for (auto& l : pcie_) l.reset();
  qpi_.reset();
}

}  // namespace bars::gpusim

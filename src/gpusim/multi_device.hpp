#pragma once

#include <functional>

#include <optional>

#include "common/solver_status.hpp"
#include "gpusim/block_kernel.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/stopping.hpp"
#include "gpusim/topology.hpp"
#include "resilience/recovery.hpp"
#include "resilience/scenario.hpp"
#include "sparse/types.hpp"
#include "telemetry/options.hpp"

/// \file multi_device.hpp
/// Discrete-event simulator of the multi-GPU block-asynchronous
/// iteration (paper Sections 3.4 and 4.6). The block set is split
/// contiguously across devices; each device runs the single-GPU
/// asynchronous execution model on its own blocks, and the three
/// communication schemes differ in *when remote segments become
/// visible* and what per-sweep costs they put on which links:
///
///  - AMC: at each device-sweep end the device uploads its segment to
///    the host (own PCIe link, short stall), the host forwards it to the
///    other devices on their links. Cross-socket traffic pays a QPI
///    visibility latency.
///  - DC: at each sweep end the device pushes its segment to the master
///    GPU and pulls the canonical vector back before its next sweep; all
///    traffic serializes on the master's PCIe link, with a per-transfer
///    GPU-direct sync overhead.
///  - DK: a single canonical vector lives on the master; non-master
///    kernels read/write it remotely, inflating their execution time by
///    a penalty factor but making updates immediately visible.

namespace bars::gpusim {

struct MultiDeviceOptions {
  index_t num_devices = 1;
  TransferScheme scheme = TransferScheme::kAMC;
  TransferParams params{};

  /// Stopping knobs (max_global_iters / tol / divergence_limit); same
  /// consolidated struct the IterationMonitor consumes.
  StoppingCriteria stopping{};

  /// Observability hooks. Per-device block commits (device field set),
  /// device dropout/rejoin and link-retry recovery events, plus the
  /// monitor's iteration/recovery stream.
  telemetry::TelemetryOptions telemetry{};

  index_t slots_per_device = 14;
  /// Virtual seconds one device would need for all q blocks (the
  /// single-GPU global iteration time from the CostModel).
  value_t global_iteration_time = 1.0e-2;
  value_t jitter = 0.20;
  value_t straggler_prob = 0.05;
  value_t straggler_factor = 2.0;
  /// Bounded shift within each device (see AsyncExecutor).
  index_t max_generation_skew = 4;
  /// Halo read point within a block execution (see AsyncExecutor).
  value_t read_fraction = 0.5;
  /// Host staging synchronization per AMC sweep (stream sync).
  value_t amc_host_sync_overhead_s = 1.0e-3;
  std::uint64_t seed = 99;
  /// Base delay of the exponential backoff applied when a sweep-end
  /// transfer hits a failed link (doubles per consecutive failure).
  value_t link_retry_backoff_s = 1.0e-3;
  /// Hardware-failure scenario (Section 4.5) — also exercised on
  /// multi-GPU runs as an exascale-resilience extension. Legacy
  /// single-event form; ignored when `scenario` is set.
  std::optional<FaultPlan> fault{};
  /// Composable fault timeline: component failures, halo corruption,
  /// device dropout/rejoin, transfer-link failures.
  std::optional<resilience::FaultScenario> scenario{};
  /// Active recovery: checkpoint/rollback, online SDC detection,
  /// watchdog supervision. Unset = plain run (legacy behavior).
  std::optional<resilience::Policy> resilience{};
};

struct MultiDeviceResult {
  /// Why the run stopped (kRecoveredConverged when resilience rewrote
  /// the iterate on the way to convergence).
  SolverStatus status = SolverStatus::kMaxIterations;
  [[nodiscard]] bool ok() const { return succeeded(status); }
  index_t global_iterations = 0;
  value_t virtual_time = 0.0;
  std::vector<value_t> residual_history;
  std::vector<value_t> time_history;
  /// Bytes moved per scheme accounting (for conservation tests).
  value_t bytes_host_device = 0.0;
  value_t bytes_device_device = 0.0;
  index_t num_transfers = 0;
  /// Resilience activity (rollbacks, reassignments, link retries, ...).
  resilience::Report resilience;
};

/// Runs the kernel on `num_devices` simulated GPUs.
class MultiDeviceExecutor {
 public:
  MultiDeviceExecutor(const BlockKernel& kernel, MultiDeviceOptions opts);

  MultiDeviceResult run(
      Vector& x, const std::function<value_t(const Vector&)>& residual_fn);

 private:
  const BlockKernel& kernel_;
  MultiDeviceOptions opts_;
};

}  // namespace bars::gpusim

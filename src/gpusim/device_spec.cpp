#include "gpusim/device_spec.hpp"

namespace bars::gpusim {

DeviceSpec DeviceSpec::fermi_c2070() {
  DeviceSpec d;
  d.name = "Fermi C2070";
  d.multiprocessors = 14;
  d.cores_per_mp = 32;
  d.clock_ghz = 1.15;
  d.mem_bandwidth_gbs = 144.0;
  d.kernel_launch_overhead_s = 7.0e-6;
  d.max_threads_per_block = 1024;
  return d;
}

HostSpec HostSpec::xeon_e5540() {
  HostSpec h;
  h.name = "Xeon E5540";
  h.cores = 4;
  h.clock_ghz = 2.53;
  h.mem_bandwidth_gbs = 25.6;
  return h;
}

InterconnectSpec InterconnectSpec::supermicro_x8dtg() {
  return InterconnectSpec{};
}

}  // namespace bars::gpusim

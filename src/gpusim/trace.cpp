#include "gpusim/trace.hpp"

#include <algorithm>
#include <cstdlib>

namespace bars::gpusim {

value_t ExecutionTrace::makespan() const {
  value_t m = 0.0;
  for (const auto& ev : events_) m = std::max(m, ev.write);
  return m;
}

value_t ExecutionTrace::average_concurrency() const {
  const value_t span = makespan();
  if (span <= 0.0) return 0.0;
  value_t busy = 0.0;
  for (const auto& ev : events_) busy += ev.write - ev.start;
  return busy / span;
}

value_t ExecutionTrace::occupancy(index_t slots) const {
  return slots > 0 ? average_concurrency() / static_cast<value_t>(slots)
                   : 0.0;
}

std::vector<index_t> ExecutionTrace::staleness_histogram() const {
  std::vector<index_t> hist;
  // For each execution, compare its generation with the generation of
  // every other block whose execution window contains this read time.
  // O(n^2) over trace events — traces are short by construction.
  for (const auto& ev : events_) {
    for (const auto& other : events_) {
      if (other.block == ev.block) continue;
      if (other.start <= ev.read && ev.read <= other.write) {
        const auto gap = static_cast<std::size_t>(
            std::abs(ev.generation - other.generation));
        if (hist.size() <= gap) hist.resize(gap + 1, 0);
        ++hist[gap];
      }
    }
  }
  return hist;
}

}  // namespace bars::gpusim

#include "gpusim/multi_device.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <queue>
#include <stdexcept>

#include "gpusim/stopping.hpp"
#include "stats/rng.hpp"

namespace bars::gpusim {

namespace {

enum class EventKind {
  kStart,          ///< block begins execution
  kRead,           ///< mid-execution: snapshot halo from device view
  kWrite,          ///< block commits into device view + canonical x
  kSegmentArrive,  ///< a remote segment becomes visible on a device
  kSweepResume,    ///< device may begin its next sweep (DC stall ends)
};

struct Event {
  value_t time = 0.0;
  EventKind kind = EventKind::kStart;
  index_t device = 0;
  index_t block = 0;  ///< for kStart/kWrite
  std::uint64_t seq = 0;
  /// kSegmentArrive payload: rows [seg_begin, seg_end) and their values
  /// snapshotted at transfer start.
  index_t seg_begin = 0;
  index_t seg_end = 0;
  std::shared_ptr<const Vector> payload;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

MultiDeviceExecutor::MultiDeviceExecutor(const BlockKernel& kernel,
                                         MultiDeviceOptions opts)
    : kernel_(kernel), opts_(opts) {
  if (opts_.num_devices <= 0 || opts_.num_devices > 8) {
    throw std::invalid_argument("MultiDeviceExecutor: 1..8 devices");
  }
  if (opts_.slots_per_device <= 0 || opts_.global_iteration_time <= 0.0) {
    throw std::invalid_argument("MultiDeviceExecutor: bad options");
  }
}

MultiDeviceResult MultiDeviceExecutor::run(
    Vector& x, const std::function<value_t(const Vector&)>& residual_fn) {
  const index_t q = kernel_.num_blocks();
  const index_t n = kernel_.num_rows();
  const index_t nd = std::min(opts_.num_devices, q);
  if (static_cast<index_t>(x.size()) != n) {
    throw std::invalid_argument("MultiDeviceExecutor::run: x size mismatch");
  }

  MultiDeviceResult res;
  if (q == 0) {
    res.residual_history.push_back(residual_fn(x));
    res.time_history.push_back(0.0);
    if (res.residual_history.back() <= opts_.stopping.tol) {
      res.status = SolverStatus::kConverged;
    }
    return res;
  }

  Topology topo(nd, InterconnectSpec::supermicro_x8dtg());
  Link master_link;  // the DC master GPU's P2P path
  Rng rng(opts_.seed);

  // Contiguous block ranges per device.
  std::vector<std::pair<index_t, index_t>> dev_blocks(
      static_cast<std::size_t>(nd));
  for (index_t d = 0; d < nd; ++d) {
    dev_blocks[d] = {q * d / nd, q * (d + 1) / nd};
  }
  // Row segment per device (contiguous because blocks are contiguous).
  std::vector<std::pair<index_t, index_t>> dev_rows(
      static_cast<std::size_t>(nd));
  for (index_t d = 0; d < nd; ++d) {
    dev_rows[d] = {kernel_.rows(dev_blocks[d].first).first,
                   kernel_.rows(dev_blocks[d].second - 1).second};
  }

  const bool dk = opts_.scheme == TransferScheme::kDK;
  // Device views of the iterate. In DK there is a single canonical
  // vector in the master's memory; views collapse onto view[0].
  std::vector<Vector> views(dk ? 1 : static_cast<std::size_t>(nd), x);
  const auto view_of = [&](index_t d) -> Vector& {
    return dk ? views[0] : views[static_cast<std::size_t>(d)];
  };
  // Canonical assembly of owner segments (residual monitoring). In DK
  // this *is* views[0].
  Vector canonical = x;
  const auto canonical_ref = [&]() -> Vector& {
    return dk ? views[0] : canonical;
  };

  const value_t per_block_duration =
      opts_.global_iteration_time *
      static_cast<value_t>(std::min(opts_.slots_per_device, q)) /
      static_cast<value_t>(q);

  const auto sample_duration = [&](index_t device) {
    value_t dur = per_block_duration *
                  (1.0 + opts_.jitter * rng.uniform(-1.0, 1.0));
    if (rng.uniform() < opts_.straggler_prob) dur *= opts_.straggler_factor;
    if (dk) {
      if (device != 0) {
        dur *= opts_.params.dk_remote_penalty;
      } else if (nd > 1) {
        // The master's memory controller also services every remote
        // peer's accesses.
        dur *= 1.0 + opts_.params.dk_master_penalty_per_peer *
                         static_cast<value_t>(nd - 1);
      }
    }
    return dur;
  };

  // Per-device scheduling state.
  struct DeviceState {
    std::deque<index_t> ready;
    index_t busy_slots = 0;
    index_t writes_in_sweep = 0;
    bool stalled = false;  ///< DC/AMC: waiting for the sweep-end transfer
  };
  std::vector<DeviceState> dev(static_cast<std::size_t>(nd));
  for (index_t d = 0; d < nd; ++d) {
    for (index_t b = dev_blocks[d].first; b < dev_blocks[d].second; ++b) {
      dev[d].ready.push_back(b);
    }
  }
  std::vector<index_t> write_generation(static_cast<std::size_t>(q), 0);

  // Fault timeline (Section 4.5 scenarios, multi-GPU variant): the
  // composable script covers component failures, halo corruption,
  // device dropout/rejoin, and transfer-link failures; a legacy
  // FaultPlan is adapted onto the same engine.
  std::optional<resilience::ScenarioTimeline> timeline;
  if (opts_.scenario && !opts_.scenario->empty()) {
    timeline.emplace(*opts_.scenario, n, nd);
  } else if (opts_.fault) {
    timeline.emplace(to_scenario(*opts_.fault), n, nd);
  }

  telemetry::SolveObserver* const obs = opts_.telemetry.observer;
  const bool emit_commits = obs != nullptr && opts_.telemetry.block_commits;

  IterationMonitor monitor(opts_.stopping,
                           opts_.resilience ? &*opts_.resilience : nullptr,
                           timeline ? &*timeline : nullptr, q, obs);
  monitor.record_initial(residual_fn(x));
  if (timeline) timeline->advance(0);

  std::vector<std::uint8_t> was_down(static_cast<std::size_t>(nd), 0);
  for (index_t d = 0; d < nd; ++d) {
    was_down[d] = timeline && timeline->device_down(d) ? 1 : 0;
  }
  // Link-failure retry/backoff accounting (consecutive failed attempts
  // per device; reset on the first healthy sweep-end transfer).
  std::vector<index_t> link_fails(static_cast<std::size_t>(nd), 0);
  index_t link_retries = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  value_t now = 0.0;

  const auto try_start = [&](index_t d) {
    DeviceState& s = dev[d];
    if (s.stalled) return;
    if (timeline && timeline->device_down(d)) return;
    const index_t slots =
        std::min(opts_.slots_per_device,
                 dev_blocks[d].second - dev_blocks[d].first);
    index_t min_gen = write_generation[dev_blocks[d].first];
    for (index_t b = dev_blocks[d].first; b < dev_blocks[d].second; ++b) {
      min_gen = std::min(min_gen, write_generation[b]);
    }
    std::deque<index_t> deferred;
    while (s.busy_slots < slots && !s.ready.empty()) {
      const index_t b = s.ready.front();
      s.ready.pop_front();
      if (write_generation[b] > min_gen + opts_.max_generation_skew) {
        deferred.push_back(b);
        continue;
      }
      ++s.busy_slots;
      Event e;
      e.time = now;
      e.kind = EventKind::kStart;
      e.device = d;
      e.block = b;
      e.seq = seq++;
      events.push(e);
    }
    for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
      s.ready.push_front(*it);
    }
  };
  for (index_t d = 0; d < nd; ++d) try_start(d);

  std::vector<Vector> halo_snapshot(static_cast<std::size_t>(q));

  index_t total_writes = 0;
  index_t global_iter = 0;
  bool stop = false;

  // Scheme transfer bookkeeping.
  const auto segment_bytes = [&](index_t d) {
    return 8.0 * static_cast<value_t>(dev_rows[d].second - dev_rows[d].first);
  };
  const value_t full_bytes = 8.0 * static_cast<value_t>(n);

  const auto push_arrival = [&](index_t dst, index_t src_dev, value_t at) {
    Event e;
    e.time = at;
    e.kind = EventKind::kSegmentArrive;
    e.device = dst;
    e.seq = seq++;
    e.seg_begin = dev_rows[src_dev].first;
    e.seg_end = dev_rows[src_dev].second;
    auto payload = std::make_shared<Vector>(
        canonical.begin() + e.seg_begin, canonical.begin() + e.seg_end);
    e.payload = std::move(payload);
    events.push(e);
  };

  // End-of-sweep transfer logic per scheme. Returns the virtual time at
  // which device d may start its next sweep (== `at` when no stall).
  const auto on_sweep_end = [&](index_t d, value_t at) -> value_t {
    if (timeline && timeline->link_down(d)) {
      // The transfer attempt fails: no segment becomes visible anywhere,
      // and the device backs off exponentially before computing on. The
      // next sweep end retries.
      ++link_retries;
      if (obs) {
        obs->on_recovery_event({telemetry::RecoveryEvent::Kind::kLinkRetry,
                                global_iter, 0.0, d});
      }
      const value_t backoff =
          opts_.link_retry_backoff_s *
          static_cast<value_t>(index_t{1} << std::min<index_t>(link_fails[d], 6));
      ++link_fails[d];
      return at + backoff;
    }
    link_fails[d] = 0;
    switch (opts_.scheme) {
      case TransferScheme::kAMC: {
        // Upload own segment to host on own link; stall for the stream
        // sync + upload, then keep computing. Host forwards to others.
        // Host staging memory lives on socket 0, so socket-1 devices
        // pay the QPI/NUMA staging cost synchronously (the paper's
        // observed >2-GPU penalty, Section 4.6).
        const bool cross = topo.socket_of(d) != 0;
        // The QPI staging cost is a per-round resource: the socket-1
        // devices' DMA batches pipeline through it, so each pays its
        // share (this is why the paper's 4-GPU run beats the 3-GPU run:
        // the QPI path "is included anyway", Section 4.6).
        index_t socket1_devices = 0;
        for (index_t e = 0; e < nd; ++e) {
          if (topo.socket_of(e) != 0) ++socket1_devices;
        }
        const value_t qpi_share =
            cross ? opts_.params.qpi_round_overhead_s /
                        static_cast<value_t>(std::max<index_t>(
                            socket1_devices, 1)) +
                        topo.spec().qpi_latency_s
                  : 0.0;
        const value_t up_dur = opts_.amc_host_sync_overhead_s +
                               topo.host_transfer_duration(segment_bytes(d)) +
                               qpi_share;
        const value_t up_done = topo.pcie(d).acquire(at, up_dur);
        res.bytes_host_device += segment_bytes(d);
        ++res.num_transfers;
        for (index_t e = 0; e < nd; ++e) {
          if (e == d) continue;
          const bool cross_e = topo.socket_of(e) != 0;
          const value_t down_done = topo.pcie(e).acquire(
              up_done, topo.host_transfer_duration(segment_bytes(d)));
          res.bytes_host_device += segment_bytes(d);
          ++res.num_transfers;
          // Downloads to socket-1 devices pay the QPI staging cost as a
          // pure visibility delay (asynchronous on the receiving side;
          // it must not block the receiver's own link horizon).
          const value_t visible_at =
              down_done +
              (cross_e ? opts_.params.qpi_round_overhead_s : 0.0);
          push_arrival(e, d, visible_at);
        }
        return up_done;
      }
      case TransferScheme::kDC: {
        if (d == 0) {
          // On Fermi, GPU-direct copies serialize with kernel
          // execution on the master: it cannot start its next sweep
          // while its copy engine is draining peer transfers.
          return std::max(at, master_link.busy_until());
        }
        // Push own segment to master, then pull the canonical vector
        // back; both serialize on the master's P2P link with a
        // GPU-direct sync cost each. The device stalls until the pull
        // completes (it needs the canonical x for its next sweep).
        const value_t push_dur =
            opts_.params.dc_sync_overhead_s +
            topo.p2p_transfer_duration(segment_bytes(d), d, 0);
        const value_t push_done = master_link.acquire(at, push_dur);
        res.bytes_device_device += segment_bytes(d);
        ++res.num_transfers;
        push_arrival(0, d, push_done);
        const value_t pull_dur = opts_.params.dc_sync_overhead_s +
                                 topo.p2p_transfer_duration(full_bytes, 0, d);
        const value_t pull_done = master_link.acquire(push_done, pull_dur);
        res.bytes_device_device += full_bytes;
        ++res.num_transfers;
        // The pulled vector is the master view at pull start; approximate
        // with master view at pull completion commit time (the master
        // only gains newer values in between).
        for (index_t other = 0; other < nd; ++other) {
          if (other == d) continue;
          push_arrival(d, other, pull_done);
        }
        return pull_done;
      }
      case TransferScheme::kDK:
        // Writes went straight to the master's memory; nothing to do,
        // but account the P2P traffic of the remote sweep.
        if (d != 0) {
          res.bytes_device_device += segment_bytes(d);
          ++res.num_transfers;
        }
        return at;
    }
    return at;
  };

  while (!stop && !events.empty()) {
    Event ev = events.top();
    events.pop();
    now = ev.time;
    const index_t d = ev.device;

    switch (ev.kind) {
      case EventKind::kStart: {
        const value_t duration = sample_duration(d);
        const value_t frac =
            std::clamp(opts_.read_fraction, value_t{0.0}, value_t{1.0});
        Event rd = ev;
        rd.kind = EventKind::kRead;
        rd.time = now + frac * duration;
        rd.seq = seq++;
        events.push(rd);
        Event w = ev;
        w.kind = EventKind::kWrite;
        w.time = now + duration;
        w.seq = seq++;
        events.push(w);
        break;
      }
      case EventKind::kRead: {
        const auto halo = kernel_.halo(ev.block);
        Vector& view = view_of(d);
        Vector& snap = halo_snapshot[ev.block];
        snap.resize(halo.size());
        for (std::size_t i = 0; i < halo.size(); ++i) snap[i] = view[halo[i]];
        if (timeline) timeline->maybe_corrupt_halo(snap);
        break;
      }
      case EventKind::kWrite: {
        ExecContext ctx;
        ctx.virtual_time = now;
        ctx.failed_components =
            timeline ? timeline->component_mask() : nullptr;
        Vector& view = view_of(d);
        kernel_.update(ev.block, halo_snapshot[ev.block], view, ctx);
        if (!dk) {
          // Mirror own rows into the canonical assembly.
          const auto [lo, hi] = kernel_.rows(ev.block);
          std::copy(view.begin() + lo, view.begin() + hi,
                    canonical.begin() + lo);
        }
        if (emit_commits) {
          telemetry::BlockCommitEvent cev;
          cev.block = ev.block;
          cev.device = d;
          cev.generation = write_generation[ev.block];
          cev.virtual_time = now;
          obs->on_block_commit(cev);
        }
        ++total_writes;
        ++write_generation[ev.block];
        DeviceState& s = dev[d];
        --s.busy_slots;
        ++s.writes_in_sweep;
        s.ready.push_back(ev.block);

        const index_t dq = dev_blocks[d].second - dev_blocks[d].first;
        if (s.writes_in_sweep >= dq) {
          s.writes_in_sweep = 0;
          const value_t resume_at = on_sweep_end(d, now);
          if (resume_at > now) {
            s.stalled = true;
            Event r;
            r.time = resume_at;
            r.kind = EventKind::kSweepResume;
            r.device = d;
            r.seq = seq++;
            events.push(r);
          }
        }

        if (total_writes % q == 0) {
          ++global_iter;
          const index_t mutations_before = monitor.iterate_mutations();
          const StopVerdict verdict = monitor.on_global_iteration(
              global_iter, now, canonical_ref(), residual_fn,
              write_generation);
          if (!dk && monitor.iterate_mutations() != mutations_before) {
            // A rollback / damped restart rewrote the canonical
            // iterate; broadcast it so no device writes stale state
            // back over the restored solution.
            for (Vector& v : views) v = canonical;
          }
          if (verdict != StopVerdict::kContinue) {
            res.status = monitor.status_for(verdict);
            stop = true;
            break;
          }
          // Device dropout transitions become visible after the
          // timeline advanced: a rejoining device refreshes its view
          // from the canonical vector and resumes launching blocks.
          if (timeline) {
            for (index_t e = 0; e < nd; ++e) {
              const bool down = timeline->device_down(e);
              if (was_down[e] && !down) {
                if (!dk) views[static_cast<std::size_t>(e)] = canonical;
                if (obs) {
                  obs->on_recovery_event(
                      {telemetry::RecoveryEvent::Kind::kDeviceRejoin,
                       global_iter, 0.0, e});
                }
                try_start(e);
              } else if (!was_down[e] && down && obs) {
                obs->on_recovery_event(
                    {telemetry::RecoveryEvent::Kind::kDeviceDropout,
                     global_iter, 0.0, e});
              }
              was_down[e] = down ? 1 : 0;
            }
          }
        }
        try_start(d);
        break;
      }
      case EventKind::kSegmentArrive: {
        if (!dk && ev.payload) {
          Vector& view = view_of(d);
          // Never clobber the device's own segment.
          const auto [own_lo, own_hi] = dev_rows[d];
          for (index_t i = ev.seg_begin; i < ev.seg_end; ++i) {
            if (i >= own_lo && i < own_hi) continue;
            view[i] = (*ev.payload)[i - ev.seg_begin];
          }
        }
        break;
      }
      case EventKind::kSweepResume: {
        dev[d].stalled = false;
        try_start(d);
        break;
      }
    }
  }

  res.global_iterations = global_iter;
  res.virtual_time = now;
  res.residual_history = std::move(monitor.residual_history());
  res.time_history = std::move(monitor.time_history());
  res.resilience = monitor.take_report();
  res.resilience.transfer_retries = link_retries;
  x = canonical_ref();
  return res;
}

}  // namespace bars::gpusim

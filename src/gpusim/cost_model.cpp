#include "gpusim/cost_model.hpp"

#include <algorithm>

namespace bars::gpusim {

namespace {

// Fallback formula constants fitted to the fv3 row of the paper's
// Tables 4/5 (seconds): sequential CPU sweep cost per nonzero, GPU
// kernel pipeline overhead per iteration, GPU cost per nonzero.
constexpr value_t kHostGsPerNnz = 1.443e-6;
constexpr value_t kGpuIterOverhead = 3.0e-4;
constexpr value_t kGpuPerNnz = 2.38e-7;
// Async marginal local sweep cost relative to the async-(1) base, from
// Table 4 (fv3: 0.513 ms marginal vs 11.25 ms base).
constexpr value_t kAsyncLocalFraction = 0.0456;
// CG: SpMV plus synchronizing dot-product reductions per iteration.
constexpr value_t kCgReductionOverhead = 2.5e-4;
constexpr value_t kCgSpmvFactor = 1.3;
// One-time CUDA context + allocation cost (paper Fig. 8 shows average
// per-iteration GPU time decaying ~ setup/N on top of the asymptote).
constexpr value_t kDeviceSetup = 0.30;

CalibrationEntry scaled(const CalibrationEntry& base, value_t f) {
  return CalibrationEntry{base.host_gauss_seidel * f, base.gpu_jacobi * f,
                          base.async_base * f, base.async_local * f};
}

}  // namespace

CostModel::CostModel(DeviceSpec device, HostSpec host,
                     InterconnectSpec interconnect)
    : device_(std::move(device)),
      host_(std::move(host)),
      interconnect_(std::move(interconnect)) {}

CostModel CostModel::calibrated_to_paper() {
  CostModel m(DeviceSpec::fermi_c2070(), HostSpec::xeon_e5540(),
              InterconnectSpec::supermicro_x8dtg());
  // Columns: GS-CPU and Jacobi-GPU from Table 5 verbatim. The async pair
  // (base, marginal) comes from Table 4 for fv3 (async-(1) at 500
  // iterations: 11.25 ms; marginal per local sweep: 0.513 ms) and is
  // scaled to the other matrices by their Table-5 async-(5) ratio, which
  // keeps both tables consistent within ~10%.
  const value_t fv3_async5 = 0.014737;
  const CalibrationEntry fv3{0.125577, 0.021009, 0.011250, 0.000513};
  const auto derived = [&](value_t gs, value_t jac,
                           value_t async5) -> CalibrationEntry {
    const value_t f = async5 / fv3_async5;
    CalibrationEntry e = scaled(fv3, f);
    e.host_gauss_seidel = gs;
    e.gpu_jacobi = jac;
    return e;
  };
  m.set_calibration("Chem97ZtZ", derived(0.008448, 0.002051, 0.001742));
  m.set_calibration("fv1", derived(0.120191, 0.019449, 0.012964));
  m.set_calibration("fv2", derived(0.125572, 0.020997, 0.014729));
  m.set_calibration("fv3", fv3);
  m.set_calibration("s1rmt3m1", derived(0.039530, 0.006442, 0.004967));
  m.set_calibration("Trefethen_2000", derived(0.007603, 0.001494, 0.001305));
  // Trefethen_20000 is not in Table 5 (it only appears in the multi-GPU
  // experiment); extrapolate from Trefethen_2000 by the nnz ratio.
  const value_t tref_ratio = 554466.0 / 41906.0;
  m.set_calibration("Trefethen_20000",
                    scaled(derived(0.007603, 0.001494, 0.001305), tref_ratio));
  return m;
}

void CostModel::set_calibration(const std::string& name,
                                CalibrationEntry entry) {
  for (auto& [n, e] : table_) {
    if (n == name) {
      e = entry;
      return;
    }
  }
  table_.emplace_back(name, entry);
}

std::optional<CalibrationEntry> CostModel::calibration(
    const std::string& name) const {
  for (const auto& [n, e] : table_) {
    if (n == name) return e;
  }
  return std::nullopt;
}

CalibrationEntry CostModel::resolve(const MatrixShape& m) const {
  if (auto e = calibration(m.name)) return *e;
  CalibrationEntry e;
  const auto nnz = static_cast<value_t>(std::max<index_t>(m.nnz, 1));
  e.host_gauss_seidel = kHostGsPerNnz * nnz;
  e.gpu_jacobi = kGpuIterOverhead + kGpuPerNnz * nnz;
  // Fallback heuristic: async-(1) costs ~55% of a synchronous Jacobi
  // iteration (no global barrier), and each extra local sweep adds
  // kAsyncLocalFraction of that base.
  e.async_base = 0.55 * e.gpu_jacobi;
  e.async_local = kAsyncLocalFraction * e.async_base;
  return e;
}

value_t CostModel::host_gauss_seidel_iteration(const MatrixShape& m) const {
  return resolve(m).host_gauss_seidel;
}

value_t CostModel::gpu_jacobi_iteration(const MatrixShape& m) const {
  return resolve(m).gpu_jacobi;
}

value_t CostModel::gpu_block_async_iteration(const MatrixShape& m,
                                             index_t local_iters) const {
  const CalibrationEntry e = resolve(m);
  const index_t k = std::max<index_t>(local_iters, 1);
  return e.async_base + static_cast<value_t>(k - 1) * e.async_local;
}

value_t CostModel::gpu_cg_iteration(const MatrixShape& m) const {
  return kCgSpmvFactor * gpu_jacobi_iteration(m) + kCgReductionOverhead;
}

value_t CostModel::device_setup_overhead(const MatrixShape& m) const {
  // Context/alloc plus the one-time matrix upload (12 bytes per stored
  // entry for CSR value+index, 8 bytes per row pointer/vector entry).
  const value_t bytes =
      12.0 * static_cast<value_t>(m.nnz) + 16.0 * static_cast<value_t>(m.n);
  return kDeviceSetup + pcie_transfer(bytes);
}

value_t CostModel::pcie_transfer(value_t bytes) const {
  return interconnect_.pcie_latency_s +
         bytes / (interconnect_.pcie_bandwidth_gbs * 1.0e9);
}

value_t CostModel::p2p_transfer(value_t bytes, bool crosses_qpi) const {
  const value_t bw = interconnect_.pcie_bandwidth_gbs *
                     (crosses_qpi ? interconnect_.qpi_derate : 1.0) * 1.0e9;
  const value_t lat = interconnect_.pcie_latency_s +
                      (crosses_qpi ? interconnect_.qpi_latency_s : 0.0);
  return lat + bytes / bw;
}

}  // namespace bars::gpusim

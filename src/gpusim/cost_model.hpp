#pragma once

#include <optional>
#include <string>

#include "gpusim/device_spec.hpp"
#include "sparse/types.hpp"

/// \file cost_model.hpp
/// Virtual-time cost model for the paper's testbed. Because this
/// reproduction runs on a machine without a GPU, all *timing* results
/// are produced by this model, calibrated against the per-iteration
/// timings the paper reports (Tables 4 and 5); all *numerical* results
/// (residuals, iteration counts, divergence) are computed for real.
/// See DESIGN.md §2 for the substitution rationale.

namespace bars::gpusim {

/// What the model needs to know about a matrix.
struct MatrixShape {
  std::string name;  ///< paper matrix name if applicable, else anything
  index_t n = 0;
  index_t nnz = 0;
};

/// Per-matrix calibration record (seconds per global iteration).
struct CalibrationEntry {
  value_t host_gauss_seidel = 0.0;  ///< Table 5, column "G.-S. (CPU)"
  value_t gpu_jacobi = 0.0;         ///< Table 5, column "Jacobi (GPU)"
  value_t async_base = 0.0;         ///< async-(1) global iteration (Table 4)
  value_t async_local = 0.0;        ///< marginal cost per extra local sweep
};

/// Virtual-time cost model.
///
/// Times are *modelled seconds on the paper's hardware*, not wall time
/// on this machine. Methods fall back to bandwidth/overhead formulas
/// derived from the device specs when the matrix name has no
/// calibration entry.
class CostModel {
 public:
  /// Model calibrated to the paper's Tables 4 and 5 (Fermi C2070 GPUs,
  /// Xeon E5540 host).
  static CostModel calibrated_to_paper();

  /// Uncalibrated model from raw hardware specs only.
  CostModel(DeviceSpec device, HostSpec host, InterconnectSpec interconnect);

  /// Sequential Gauss-Seidel sweep on the host CPU.
  [[nodiscard]] value_t host_gauss_seidel_iteration(
      const MatrixShape& m) const;

  /// One synchronous Jacobi iteration on the GPU (kernel + sync).
  [[nodiscard]] value_t gpu_jacobi_iteration(const MatrixShape& m) const;

  /// One *global* block-asynchronous iteration with `local_iters` Jacobi
  /// sweeps per block: base + (local_iters - 1) * marginal. The paper's
  /// headline hardware observation is that the marginal cost is tiny
  /// (<5% per extra sweep, Table 4) because subdomains fit in the
  /// multiprocessor cache.
  [[nodiscard]] value_t gpu_block_async_iteration(const MatrixShape& m,
                                                  index_t local_iters) const;

  /// One CG iteration on the GPU (SpMV + synchronizing reductions).
  [[nodiscard]] value_t gpu_cg_iteration(const MatrixShape& m) const;

  /// One-time device setup (context creation, allocation, matrix
  /// upload). Dominates average-per-iteration timings at small iteration
  /// counts (paper Fig. 8).
  [[nodiscard]] value_t device_setup_overhead(const MatrixShape& m) const;

  /// Host <-> device transfer of `bytes` over one PCIe link.
  [[nodiscard]] value_t pcie_transfer(value_t bytes) const;

  /// Device <-> device transfer of `bytes`; cross-socket paths are
  /// derated by the QPI factor.
  [[nodiscard]] value_t p2p_transfer(value_t bytes, bool crosses_qpi) const;

  [[nodiscard]] const DeviceSpec& device() const noexcept { return device_; }
  [[nodiscard]] const HostSpec& host() const noexcept { return host_; }
  [[nodiscard]] const InterconnectSpec& interconnect() const noexcept {
    return interconnect_;
  }

  /// Register/override a per-matrix calibration entry.
  void set_calibration(const std::string& name, CalibrationEntry entry);
  [[nodiscard]] std::optional<CalibrationEntry> calibration(
      const std::string& name) const;

 private:
  DeviceSpec device_;
  HostSpec host_;
  InterconnectSpec interconnect_;
  std::vector<std::pair<std::string, CalibrationEntry>> table_;

  [[nodiscard]] CalibrationEntry resolve(const MatrixShape& m) const;
};

}  // namespace bars::gpusim

#pragma once

#include <cstdint>
#include <optional>

#include "sparse/types.hpp"

/// \file fault.hpp
/// Hardware-failure scenario of the paper's Section 4.5: at global
/// iteration `fail_at`, a random fraction of components stops being
/// updated (their cores "break"); if `recover_after` is set, the
/// components are reassigned to healthy cores after that many further
/// global iterations and resume updating.

namespace bars::gpusim {

struct FaultPlan {
  index_t fail_at = 10;          ///< global iteration of the breakdown
  value_t fraction = 0.25;       ///< fraction of components that fail
  /// Recovery delay t_r in global iterations; nullopt = never recover
  /// (the paper's "no recovery" curve).
  std::optional<index_t> recover_after = {};
  std::uint64_t seed = 1234;     ///< which components fail
};

}  // namespace bars::gpusim

#pragma once

#include <cstdint>
#include <optional>

#include "resilience/scenario.hpp"
#include "sparse/types.hpp"

/// \file fault.hpp
/// Hardware-failure scenario of the paper's Section 4.5: at global
/// iteration `fail_at`, a random fraction of components stops being
/// updated (their cores "break"); if `recover_after` is set, the
/// components are reassigned to healthy cores after that many further
/// global iterations and resume updating.
///
/// FaultPlan is the legacy single-event interface; it is adapted onto
/// the composable resilience::FaultScenario timeline (to_scenario), so
/// both executors run every fault through one code path.

namespace bars::gpusim {

struct FaultPlan {
  index_t fail_at = 10;          ///< global iteration of the breakdown
  value_t fraction = 0.25;       ///< fraction of components that fail
  /// Recovery delay t_r in global iterations; nullopt = never recover
  /// (the paper's "no recovery" curve).
  std::optional<index_t> recover_after = {};
  std::uint64_t seed = 1234;     ///< which components fail
};

/// Adapter: a FaultPlan is a one-event scenario.
[[nodiscard]] inline resilience::FaultScenario to_scenario(
    const FaultPlan& plan) {
  resilience::FaultScenario s;
  s.fail_components(plan.fail_at, plan.fraction, plan.recover_after,
                    plan.seed);
  return s;
}

}  // namespace bars::gpusim

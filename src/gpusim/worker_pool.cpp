#include "gpusim/worker_pool.hpp"

#include <algorithm>

namespace bars::gpusim {

WorkerPool::WorkerPool(index_t threads)
    : threads_(std::max<index_t>(threads, 1)) {
  pool_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (index_t w = 1; w < threads_; ++w) {
    pool_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

index_t WorkerPool::drain(const std::function<void(index_t, index_t)>* fn,
                          index_t count, index_t worker) {
  // A stale waker may arrive after its batch fully drained; the
  // exhausted cursor then keeps it from ever dereferencing `fn`.
  index_t executed = 0;
  for (index_t task = next_.fetch_add(1, std::memory_order_relaxed);
       task < count;
       task = next_.fetch_add(1, std::memory_order_relaxed)) {
    (*fn)(task, worker);
    ++executed;
  }
  return executed;
}

void WorkerPool::worker_loop(index_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(index_t, index_t)>* fn = nullptr;
    index_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      fn = fn_;
      count = count_;
      ++in_flight_;
    }
    const index_t executed = drain(fn, count, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += executed;
      --in_flight_;
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(index_t count,
                     const std::function<void(index_t, index_t)>& fn) {
  if (count <= 0) return;
  if (threads_ == 1 || count == 1) {
    for (index_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A stale waker from the previous batch may still be draining the
    // (exhausted) cursor; re-arming it now could hand that worker a
    // fresh task with the old function. Wait for it to park first.
    done_cv_.wait(lock, [&] { return in_flight_ == 0; });
    fn_ = &fn;
    count_ = count;
    completed_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  const index_t executed = drain(&fn, count, /*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  completed_ += executed;
  // All tasks done AND every pool worker parked again: only then is it
  // safe for a subsequent run() to re-arm the shared cursor.
  done_cv_.wait(lock, [&] { return completed_ >= count_ && in_flight_ == 0; });
}

}  // namespace bars::gpusim

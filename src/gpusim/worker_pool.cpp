#include "gpusim/worker_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/verify_hooks.hpp"

namespace bars::gpusim {

WorkerPool::WorkerPool(index_t threads)
    : threads_(std::max<index_t>(threads, 1)) {
  pool_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (index_t w = 1; w < threads_; ++w) {
    pool_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    common::MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (common::Thread& t : pool_) t.join();
}

index_t WorkerPool::drain(const std::function<void(index_t, index_t)>* fn,
                          index_t count, index_t worker) {
  // A stale waker may arrive after its batch fully drained; the
  // exhausted cursor then keeps it from ever dereferencing `fn`.
  index_t executed = 0;
  for (index_t task = next_.fetch_add(1, std::memory_order_relaxed);
       task < count;
       task = next_.fetch_add(1, std::memory_order_relaxed)) {
    BARS_VERIFY_YIELD("worker_pool.drain");
    (*fn)(task, worker);
    ++executed;
  }
  return executed;
}

void WorkerPool::worker_loop(index_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(index_t, index_t)>* fn = nullptr;
    index_t count = 0;
    {
      common::MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen) work_cv_.wait(lock);
      if (shutdown_) return;
      seen = generation_;
      fn = fn_;
      count = count_;
      ++in_flight_;
    }
    const index_t executed = drain(fn, count, worker);
    {
      common::MutexLock lock(mu_);
      completed_ += executed;
      BARS_DCHECK(in_flight_ > 0) << "worker " << worker;
      --in_flight_;
      done_cv_.notify_all();
    }
  }
}

BARS_HOT_NOALLOC void WorkerPool::run(
    index_t count, const std::function<void(index_t, index_t)>& fn) {
  if (count <= 0) return;
  if (threads_ == 1 || count == 1) {
    for (index_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }
  {
    common::MutexLock lock(mu_);
    // A stale waker from the previous batch may still be draining the
    // (exhausted) cursor; re-arming it now could hand that worker a
    // fresh task with the old function. Wait for it to park first.
    while (in_flight_ != 0) done_cv_.wait(lock);
    fn_ = &fn;
    count_ = count;
    completed_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  const index_t executed = drain(&fn, count, /*worker=*/0);
  common::MutexLock lock(mu_);
  completed_ += executed;
  BARS_DCHECK(completed_ <= count_)
      << "batch over-drained: " << completed_ << " of " << count_;
  // All tasks done AND every pool worker parked again: only then is it
  // safe for a subsequent run() to re-arm the shared cursor.
  while (!(completed_ >= count_ && in_flight_ == 0)) done_cv_.wait(lock);
}

}  // namespace bars::gpusim

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread.hpp"
#include "sparse/types.hpp"

/// \file worker_pool.hpp
/// A small reusable fork-join worker pool for the executor's parallel
/// commit path. Threads are spawned once and reused across an arbitrary
/// number of `run` batches, so the per-batch cost is one wake/sleep
/// cycle instead of thread creation. The calling thread participates in
/// the batch, so a pool constructed with `threads == t` applies `t`
/// workers to every batch (t - 1 pool threads + the caller).

namespace bars::gpusim {

class WorkerPool {
 public:
  /// Total worker count applied to each batch (>= 1). `threads == 1`
  /// degenerates to inline execution on the caller.
  explicit WorkerPool(index_t threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Invoke fn(task, worker) for every task in [0, count), distributed
  /// over the workers via an atomic cursor; blocks until all tasks are
  /// done. `worker` is in [0, size()) and is stable within one batch,
  /// so callers may index per-worker scratch by it. fn must not throw.
  /// Not reentrant: one run() at a time per pool.
  void run(index_t count, const std::function<void(index_t task,
                                                   index_t worker)>& fn);

  [[nodiscard]] index_t size() const noexcept { return threads_; }

 private:
  void worker_loop(index_t worker);
  index_t drain(const std::function<void(index_t, index_t)>* fn,
                index_t count, index_t worker);

  index_t threads_;
  std::vector<common::Thread> pool_;

  common::Mutex mu_;
  common::ConditionVariable work_cv_;
  common::ConditionVariable done_cv_;
  /// Batch counter, bumped once per run(); workers park until it moves.
  std::uint64_t generation_ BARS_GUARDED_BY(mu_) = 0;
  bool shutdown_ BARS_GUARDED_BY(mu_) = false;

  /// Current batch: task body, size, and progress accounting. fn_ stays
  /// valid for the whole batch because run() blocks until completion.
  const std::function<void(index_t, index_t)>* fn_ BARS_GUARDED_BY(mu_) =
      nullptr;
  index_t count_ BARS_GUARDED_BY(mu_) = 0;      ///< tasks in the batch
  index_t completed_ BARS_GUARDED_BY(mu_) = 0;  ///< tasks finished
  index_t in_flight_ BARS_GUARDED_BY(mu_) = 0;  ///< workers draining
  std::atomic<index_t> next_{0};  ///< lock-free task cursor
};

}  // namespace bars::gpusim

#pragma once

#include <string>

#include "sparse/types.hpp"

/// \file device_spec.hpp
/// Hardware descriptions for the virtual-time GPU model. The presets
/// mirror the paper's testbed (Section 3.2): a Supermicro node with two
/// Intel Xeon E5540 sockets and four NVIDIA Fermi C2070 GPUs on
/// PCIe x16, pairs of GPUs per socket, sockets joined by QPI.

namespace bars::gpusim {

/// One GPU accelerator.
struct DeviceSpec {
  std::string name = "generic-gpu";
  index_t multiprocessors = 14;     ///< SMs
  index_t cores_per_mp = 32;        ///< CUDA cores per SM
  value_t clock_ghz = 1.15;
  value_t mem_bandwidth_gbs = 144.0;  ///< device memory bandwidth
  value_t kernel_launch_overhead_s = 7.0e-6;
  index_t max_threads_per_block = 1024;

  /// NVIDIA Tesla/Fermi C2070 (the paper's GPU).
  static DeviceSpec fermi_c2070();
};

/// The host CPU (runs the Gauss-Seidel baseline).
struct HostSpec {
  std::string name = "generic-cpu";
  index_t cores = 4;
  value_t clock_ghz = 2.53;
  value_t mem_bandwidth_gbs = 25.6;

  /// Intel Xeon E5540 @ 2.53 GHz (the paper's CPU).
  static HostSpec xeon_e5540();
};

/// Interconnect characteristics of the node.
struct InterconnectSpec {
  value_t pcie_bandwidth_gbs = 8.0;   ///< per-GPU PCIe x16 (gen2) effective
  value_t pcie_latency_s = 10.0e-6;
  value_t qpi_bandwidth_gbs = 12.8;   ///< socket-to-socket QPI
  value_t qpi_latency_s = 0.4e-6;
  /// Effective bandwidth derating when a P2P path crosses QPI (the
  /// paper observes inter-socket transfers limit performance, §4.6).
  value_t qpi_derate = 0.4;

  static InterconnectSpec supermicro_x8dtg();
};

}  // namespace bars::gpusim

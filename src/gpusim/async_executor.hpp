#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/solver_status.hpp"
#include "gpusim/block_kernel.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/stopping.hpp"
#include "gpusim/trace.hpp"
#include "resilience/recovery.hpp"
#include "resilience/scenario.hpp"
#include "sparse/types.hpp"
#include "telemetry/options.hpp"

/// \file async_executor.hpp
/// Discrete-event simulator of one GPU running an asynchronous
/// block-relaxation kernel (paper Section 3.3).
///
/// Execution model: the device has `concurrent_slots` multiprocessors.
/// Ready blocks start in scheduler order as slots free up. A block
/// execution is split into a START event (halo snapshot at virtual time
/// t) and a WRITE event (commit at t + duration). Between a block's
/// snapshot and its commit other blocks commit — exactly the chaotic
/// staleness of Chazan-Miranker iterations, with the shift function
/// realized by the seeded event interleaving. Durations carry seeded
/// jitter and occasional stragglers, mimicking the non-deterministic
/// GPU-internal scheduling the paper studies in Section 4.1.

namespace bars::gpusim {

class IncrementalResidual;
class WorkerPool;

/// How the device orders ready blocks.
enum class SchedulePolicy {
  /// Fixed order 0..q-1, no jitter: deterministic reference execution.
  kRoundRobin,
  /// Seeded duration jitter + stragglers with FIFO re-queue (default;
  /// models the GPU's non-deterministic block scheduler).
  kJittered,
  /// Like kJittered, plus a fresh random block permutation each sweep.
  kShuffled,
};

struct ExecutorOptions {
  /// Stopping knobs (max_global_iters / tol / divergence_limit), the
  /// same struct the IterationMonitor consumes. Convergence is
  /// residual_fn(x) <= tol (residual_fn decides the norm and scaling;
  /// the paper uses the relative l2 residual).
  StoppingCriteria stopping{};

  /// Observability hooks. The executor emits on_block_commit (gated by
  /// telemetry.block_commits) and feeds on_iteration /
  /// on_recovery_event through the IterationMonitor; solver front-ends
  /// emit on_start / on_finish. Disabled (null observer) costs one
  /// branch per commit.
  telemetry::TelemetryOptions telemetry{};

  index_t concurrent_slots = 14;  ///< multiprocessors (C2070: 14)
  /// Virtual seconds for one *global* iteration (all blocks once);
  /// per-block duration is derived as global_iteration_time *
  /// concurrent_slots / num_blocks (capped at num_blocks).
  value_t global_iteration_time = 1.0e-2;
  value_t jitter = 0.20;            ///< +- fraction on block durations
  value_t straggler_prob = 0.05;    ///< chance a block is delayed...
  value_t straggler_factor = 2.0;   ///< ...by this duration factor
  /// Chazan-Miranker condition 2 (bounded shift): a block may not run
  /// more than this many generations ahead of the slowest block. The
  /// GPU's greedy block scheduler provides the same guarantee because
  /// every queued block eventually gets a multiprocessor.
  index_t max_generation_skew = 2;
  /// Point within a block's execution at which the halo is read, as a
  /// fraction of the execution duration. 0 = most pessimistic (read at
  /// launch), 1 = freshest possible. A real kernel streams its inputs
  /// while running; 0.5 reproduces the paper's observation that
  /// async-(1) converges at essentially the synchronous Jacobi rate.
  value_t read_fraction = 0.5;

  SchedulePolicy policy = SchedulePolicy::kJittered;
  std::uint64_t seed = 99;
  /// When set, block durations follow a *recurring pattern* drawn from
  /// this seed (identical across runs), and `seed` only contributes a
  /// tiny multiplicative perturbation (`run_noise`). This models the
  /// paper's Section 4.1 observation that the GPU's internal scheduling
  /// appears to repeat a pattern, making run-to-run variation small and
  /// structured rather than fully random.
  std::optional<std::uint64_t> pattern_seed;
  /// Relative magnitude of the per-run perturbation under pattern mode.
  value_t run_noise = 2.0e-3;
  /// Record one TraceEvent per block execution (memory ~ O(executions)).
  bool record_trace = false;
  /// Legacy single-event failure (Section 4.5); adapted onto `scenario`
  /// internally. Ignored when `scenario` is set.
  std::optional<FaultPlan> fault;
  /// Composable fault timeline (component failures, halo corruption;
  /// device/link events are multi-GPU-only and ignored here).
  std::optional<resilience::FaultScenario> scenario;
  /// Active recovery: checkpoint/rollback, online SDC detection,
  /// watchdog supervision. Unset = plain run (legacy behavior).
  std::optional<resilience::Policy> resilience;

  /// > 1 enables the parallel commit path: all WRITE events that fall
  /// at the same virtual time are executed concurrently on a reusable
  /// worker pool (their owned row ranges are disjoint) and committed
  /// in deterministic event order, so results — iterate, histories,
  /// trace — are bit-identical to the serial path. Requires
  /// kernel.parallel_commit_safe(); fault timelines and resilience
  /// policies automatically fall back to serial commits because their
  /// iteration boundaries may mutate state mid-batch. 0 or 1 = serial.
  index_t num_workers = 0;

  /// Non-owning incremental residual tracker (see
  /// incremental_residual.hpp). When set — and no resilience policy is
  /// active, since rollbacks rewrite the iterate behind the tracker's
  /// back — the iteration monitor consumes the incrementally
  /// maintained relative residual instead of recomputing a full SpMV
  /// each global iteration. An exact recompute re-anchors the tracker
  /// every `residual_refresh_every` iterations, at the iteration
  /// limit, and before any convergence/divergence verdict, bounding
  /// the floating-point drift of recorded history entries.
  IncrementalResidual* residual_tracker = nullptr;
  index_t residual_refresh_every = 25;
};

struct ExecutorResult {
  /// Why the run stopped; kRecoveredConverged when the resilience
  /// layer rewrote the iterate on the way to convergence.
  SolverStatus status = SolverStatus::kMaxIterations;
  [[nodiscard]] bool ok() const { return succeeded(status); }
  index_t global_iterations = 0;
  value_t virtual_time = 0.0;  ///< simulated seconds at stop
  /// residual_history[k] = residual after k global iterations
  /// (residual_history[0] is the initial residual).
  std::vector<value_t> residual_history;
  /// Virtual time at which each history entry was recorded.
  std::vector<value_t> time_history;
  /// Number of completed executions per block (Chazan-Miranker
  /// condition 1: every block updated "infinitely often" — in practice,
  /// counts stay within a bounded spread).
  std::vector<index_t> block_executions;
  /// Largest generation lag observed between a reader and the halo
  /// source it read (bounded-shift condition 2); negative shifts (the
  /// source is *ahead*) are folded in by absolute value.
  index_t max_staleness = 0;
  /// Execution trace (only populated when options.record_trace).
  ExecutionTrace trace;
  /// What the resilience layer did (checkpoints, rollbacks, watchdog
  /// actions); all-zero for plain runs.
  resilience::Report resilience;
};

/// Runs the kernel to convergence (or max_global_iters) in virtual time.
class AsyncExecutor {
 public:
  AsyncExecutor(const BlockKernel& kernel, ExecutorOptions opts);
  ~AsyncExecutor();

  /// Iterate on x in place. residual_fn is called at most once per
  /// global iteration with the current iterate (with an incremental
  /// residual tracker configured, only at exact-recompute boundaries).
  ExecutorResult run(Vector& x,
                     const std::function<value_t(const Vector&)>& residual_fn);

 private:
  const BlockKernel& kernel_;
  ExecutorOptions opts_;
  /// Lazily created on the first parallel run(), then reused across
  /// runs so repeated solves pay thread spawn-up only once.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace bars::gpusim

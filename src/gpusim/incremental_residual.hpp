#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/partition.hpp"
#include "sparse/types.hpp"

/// \file incremental_residual.hpp
/// Incrementally-maintained residual r = b - A x for block-relaxation
/// solves, following the two-stage cost-accounting idea that residual
/// monitoring must not cost a full SpMV per convergence check.
///
/// A block commit changes x only on the block's owned rows, so the
/// residual changes only on rows that reference those columns:
///   r' = r - A[:, rows(block)] * dx.
/// The tracker pre-extracts that column slice per block (total storage
/// = nnz) and applies the exact delta at every WRITE, maintaining
/// per-block residual-norm contributions and the global norm as it
/// goes. Maintenance is exact in exact arithmetic; in floating point a
/// drift of order eps accumulates, so consumers periodically call
/// `reset` (an exact O(nnz) recompute) to re-anchor — the executor
/// does this every `residual_refresh_every` global iterations and
/// before declaring convergence.
///
/// Squared norms suffer catastrophic cancellation when maintained by
/// += (new^2 - old^2) across many orders of magnitude of decay, so the
/// headline `relative()` recomputes the norm from the maintained r
/// vector in O(n) at each call — still far cheaper than the O(nnz)
/// SpMV it replaces, and accurate to the drift of r itself.

namespace bars::gpusim {

class IncrementalResidual {
 public:
  /// Pre-extracts per-block column slices of `a`. Both `a` and `b` are
  /// captured by reference and must outlive the tracker.
  IncrementalResidual(const Csr& a, const Vector& b,
                      const RowPartition& partition);

  /// Exact re-anchor: r = b - A x, refresh contributions and norm.
  void reset(std::span<const value_t> x);

  /// Apply the exact residual delta for one committed block given the
  /// block's owned-row values before (`x_old`) and after (`x_new`) the
  /// commit. Spans must have length rows(block).size().
  void block_committed(index_t block, std::span<const value_t> x_old,
                       std::span<const value_t> x_new);

  /// ||r||_2 recomputed from the maintained residual vector (O(n)).
  [[nodiscard]] value_t norm() const;

  /// Relative residual ||r|| / ||b|| (absolute when ||b|| == 0). The
  /// exact same expression as bars::relative_residual, so right after
  /// reset() the value is bit-identical to the full recompute.
  [[nodiscard]] value_t relative() const { return norm() / den_; }

  /// Incrementally-maintained squared-norm contribution of rows owned
  /// by `block` (diagnostic; subject to floating-point drift).
  [[nodiscard]] value_t block_contribution(index_t block) const {
    return contrib_[static_cast<std::size_t>(block)];
  }

  [[nodiscard]] index_t num_blocks() const {
    return static_cast<index_t>(slices_.size());
  }

 private:
  /// Column slice A[:, rows(block)] stored row-major: `rows[k]` is a
  /// touched row, entries ptr[k]..ptr[k+1] hold (local column, value).
  struct Slice {
    std::vector<index_t> rows;
    std::vector<index_t> ptr;
    std::vector<index_t> col;  ///< column minus the block's first row
    std::vector<value_t> val;
  };

  const Csr& a_;
  const Vector& b_;
  std::vector<index_t> block_lo_;    ///< first owned row per block
  std::vector<index_t> row_owner_;   ///< row -> owning block
  std::vector<Slice> slices_;
  Vector r_;
  std::vector<value_t> contrib_;     ///< per-block sum of r_i^2
  value_t den_ = 1.0;                ///< ||b|| (1 when ||b|| == 0)
};

}  // namespace bars::gpusim

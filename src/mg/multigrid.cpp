#include "mg/multigrid.hpp"

#include <cmath>
#include <stdexcept>

#include "core/block_async.hpp"
#include "core/gauss_seidel.hpp"
#include "core/jacobi.hpp"
#include "matrices/generators.hpp"
#include "sparse/dense.hpp"
#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars::mg {

namespace {

bool is_pow2_minus_1(index_t m) {
  return m >= 3 && ((m + 1) & m) == 0;
}

index_t gi(index_t m, index_t i, index_t j) { return i * m + j; }

/// Full-weighting restriction from (2m+1)^2 fine grid to m^2 coarse.
Vector restrict_fw(const Vector& fine, index_t mf) {
  const index_t mc = (mf - 1) / 2;
  Vector coarse(static_cast<std::size_t>(mc * mc), 0.0);
  for (index_t ic = 0; ic < mc; ++ic) {
    for (index_t jc = 0; jc < mc; ++jc) {
      const index_t fi = 2 * ic + 1;
      const index_t fj = 2 * jc + 1;
      value_t s = 0.0;
      for (index_t di = -1; di <= 1; ++di) {
        for (index_t dj = -1; dj <= 1; ++dj) {
          const value_t w =
              (di == 0 ? 2.0 : 1.0) * (dj == 0 ? 2.0 : 1.0) / 16.0;
          s += w * fine[gi(mf, fi + di, fj + dj)];
        }
      }
      coarse[gi(mc, ic, jc)] = 4.0 * s;  // h^2 scaling of the stencil
    }
  }
  return coarse;
}

/// Bilinear prolongation from m^2 coarse to (2m+1)^2 fine; adds into x.
void prolong_add(const Vector& coarse, index_t mc, Vector& fine,
                 index_t mf) {
  for (index_t ic = 0; ic < mc; ++ic) {
    for (index_t jc = 0; jc < mc; ++jc) {
      const value_t v = coarse[gi(mc, ic, jc)];
      const index_t fi = 2 * ic + 1;
      const index_t fj = 2 * jc + 1;
      for (index_t di = -1; di <= 1; ++di) {
        for (index_t dj = -1; dj <= 1; ++dj) {
          const index_t ti = fi + di;
          const index_t tj = fj + dj;
          if (ti < 0 || ti >= mf || tj < 0 || tj >= mf) continue;
          const value_t w =
              (di == 0 ? 1.0 : 0.5) * (dj == 0 ? 1.0 : 0.5);
          fine[gi(mf, ti, tj)] += w * v;
        }
      }
    }
  }
}

}  // namespace

PoissonMultigrid::PoissonMultigrid(index_t m, value_t c, Smoother smoother)
    : smoother_(std::move(smoother)) {
  if (!is_pow2_minus_1(m)) {
    throw std::invalid_argument("PoissonMultigrid: m must be 2^k - 1, k>=2");
  }
  // With unscaled stencils (diag 4 + c), halving the grid multiplies
  // the Laplacian part by 4 relative to the fine grid, so the reaction
  // coefficient must be scaled by 4 per level (and the restricted
  // residual by 4, see vcycle) for a consistent coarse-grid correction.
  value_t c_level = c;
  for (index_t mm = m; mm >= 3; mm = (mm - 1) / 2) {
    levels_.push_back(fv_like(mm, c_level));
    sizes_.push_back(mm);
    c_level *= 4.0;
    if (!is_pow2_minus_1((mm - 1) / 2)) break;
  }
  if (!smoother_) {
    throw std::invalid_argument("PoissonMultigrid: null smoother");
  }
}

void PoissonMultigrid::vcycle(index_t level, const Vector& b, Vector& x,
                              const MgOptions& opts) const {
  const Csr& a = levels_[static_cast<std::size_t>(level)];
  const index_t m = sizes_[static_cast<std::size_t>(level)];
  const bool coarsest =
      level + 1 >= static_cast<index_t>(levels_.size()) ||
      m <= opts.coarsest_size;
  if (coarsest) {
    x = Dense::from_csr(a).solve(b);
    return;
  }
  smoother_(a, b, x, opts.pre_smooth);
  Vector r(b.size());
  a.residual(b, x, r);
  const Vector rc = restrict_fw(r, m);
  Vector ec(rc.size(), 0.0);
  vcycle(level + 1, rc, ec, opts);
  if (opts.cycle == CycleType::kW) {
    vcycle(level + 1, rc, ec, opts);  // second coarse visit (W-cycle)
  }
  prolong_add(ec, (m - 1) / 2, x, m);
  smoother_(a, b, x, opts.post_smooth);
}

SolveResult PoissonMultigrid::solve(const Vector& b,
                                    const MgOptions& opts) const {
  const Csr& a = levels_.front();
  if (static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("PoissonMultigrid::solve: size mismatch");
  }
  SolveResult res;
  res.x.assign(b.size(), 0.0);
  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;

  telemetry::SolveProbe probe(opts.solve.telemetry,
                              opts.cycle == CycleType::kW ? "multigrid-w"
                                                          : "multigrid-v");
  probe.start(a.rows(), a.nnz(), num_levels());

  Vector r(b.size());
  a.residual(b, res.x, r);
  value_t rel = norm2(r) / den;
  if (opts.solve.record_history) res.residual_history.push_back(rel);
  probe.iteration(0, rel);

  for (index_t cycle = 0; cycle < opts.solve.max_iters; ++cycle) {
    if (rel <= opts.solve.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.solve.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    if (common::cancel_requested(opts.solve.cancel)) {
      res.status = SolverStatus::kAborted;
      break;
    }
    vcycle(0, b, res.x, opts);
    a.residual(b, res.x, r);
    rel = norm2(r) / den;
    res.iterations = cycle + 1;
    if (opts.solve.record_history) res.residual_history.push_back(rel);
    probe.iteration(res.iterations, rel);
  }
  if (rel <= opts.solve.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  probe.finish(res.status, res.iterations, res.final_residual);
  return res;
}

Smoother gauss_seidel_smoother() {
  return [](const Csr& a, const Vector& b, Vector& x, index_t sweeps) {
    SolveOptions o;
    o.max_iters = sweeps;
    o.tol = 0.0;
    o.record_history = false;
    const SolveResult r = gauss_seidel_solve(a, b, o,
                                             SweepDirection::kForward, &x);
    x = r.x;
  };
}

Smoother jacobi_smoother(value_t omega) {
  return [omega](const Csr& a, const Vector& b, Vector& x, index_t sweeps) {
    SolveOptions o;
    o.max_iters = sweeps;
    o.tol = 0.0;
    o.record_history = false;
    const SolveResult r = scaled_jacobi_solve(a, b, omega, o, &x);
    x = r.x;
  };
}

Smoother block_async_smoother(index_t block_size, index_t local_iters,
                              std::uint64_t seed) {
  return [block_size, local_iters, seed](const Csr& a, const Vector& b,
                                         Vector& x, index_t sweeps) {
    BlockAsyncOptions o;
    o.solve.max_iters = sweeps;
    o.solve.tol = 0.0;
    o.solve.record_history = false;
    o.block_size = block_size;
    o.local_iters = local_iters;
    o.seed = seed;
    const BlockAsyncResult r = block_async_solve(a, b, o, &x);
    x = r.solve.x;
  };
}

std::optional<index_t> poisson_grid_size(const Csr& a) {
  if (a.rows() != a.cols() || a.rows() < 9) return std::nullopt;
  const auto m = static_cast<index_t>(
      std::lround(std::sqrt(static_cast<double>(a.rows()))));
  if (m * m != a.rows() || !is_pow2_minus_1(m)) return std::nullopt;
  // Recover c from the first diagonal entry, then demand an exact
  // structural and numerical match with the generator's stencil.
  const auto cols0 = a.row_cols(0);
  const auto vals0 = a.row_vals(0);
  value_t diag0 = 0.0;
  bool found = false;
  for (std::size_t k = 0; k < cols0.size(); ++k) {
    if (cols0[k] == 0) {
      diag0 = vals0[k];
      found = true;
      break;
    }
  }
  if (!found) return std::nullopt;
  const value_t c = diag0 - 4.0;
  const Csr ref = fv_like(m, c);
  if (ref.rows() != a.rows() || ref.nnz() != a.nnz()) return std::nullopt;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    const auto rc = ref.row_cols(i);
    const auto rv = ref.row_vals(i);
    if (ac.size() != rc.size()) return std::nullopt;
    for (std::size_t k = 0; k < ac.size(); ++k) {
      if (ac[k] != rc[k] || av[k] != rv[k]) return std::nullopt;
    }
  }
  return m;
}

}  // namespace bars::mg

#include "core/registry.hpp"

#include <memory>
#include <stdexcept>

#include "core/block_async.hpp"
#include "core/block_jacobi.hpp"
#include "core/cg.hpp"
#include "core/fcg.hpp"
#include "core/gauss_seidel.hpp"
#include "core/gmres.hpp"
#include "core/jacobi.hpp"
#include "core/thread_async.hpp"
#include "eigen/condition.hpp"
#include "mg/multigrid.hpp"

namespace bars {

namespace {

/// Builds the multigrid hierarchy for `a`, or throws when `a` is not a
/// matrix the geometric hierarchy can represent (fv_like(m, c) with
/// m = 2^k - 1).
mg::PoissonMultigrid make_hierarchy(const Csr& a, mg::Smoother smoother) {
  const auto m = mg::poisson_grid_size(a);
  if (!m) {
    throw std::invalid_argument(
        "multigrid solvers require an fv_like(m, c) matrix with "
        "m = 2^k - 1");
  }
  value_t c = 0.0;
  const auto cols = a.row_cols(0);
  const auto vals = a.row_vals(0);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (cols[k] == 0) c = vals[k] - 4.0;
  }
  return mg::PoissonMultigrid(*m, c, std::move(smoother));
}

struct Entry {
  const char* name;
  SolveResult (*run)(const Csr&, const Vector&, const RegistrySolveOptions&);
};

SolveResult run_jacobi(const Csr& a, const Vector& b,
                       const RegistrySolveOptions& o) {
  return jacobi_solve(a, b, o.solve);
}

SolveResult run_scaled_jacobi(const Csr& a, const Vector& b,
                              const RegistrySolveOptions& o) {
  return scaled_jacobi_solve(a, b, optimal_jacobi_tau(a), o.solve);
}

SolveResult run_gauss_seidel(const Csr& a, const Vector& b,
                             const RegistrySolveOptions& o) {
  return gauss_seidel_solve(a, b, o.solve);
}

SolveResult run_symmetric_gs(const Csr& a, const Vector& b,
                             const RegistrySolveOptions& o) {
  return gauss_seidel_solve(a, b, o.solve, SweepDirection::kSymmetric);
}

SolveResult run_sor(const Csr& a, const Vector& b,
                    const RegistrySolveOptions& o) {
  return sor_solve(a, b, o.omega, o.solve);
}

SolveResult run_cg(const Csr& a, const Vector& b,
                   const RegistrySolveOptions& o) {
  CgOptions co;
  co.solve = o.solve;
  return cg_solve(a, b, co);
}

SolveResult run_pcg_jacobi(const Csr& a, const Vector& b,
                           const RegistrySolveOptions& o) {
  CgOptions co;
  co.solve = o.solve;
  co.jacobi_preconditioner = true;
  return cg_solve(a, b, co);
}

SolveResult run_fcg_jacobi(const Csr& a, const Vector& b,
                           const RegistrySolveOptions& o) {
  FcgOptions fo;
  fo.solve = o.solve;
  fo.preconditioner = jacobi_preconditioner();
  return fcg_solve(a, b, fo);
}

SolveResult run_fcg_async(const Csr& a, const Vector& b,
                          const RegistrySolveOptions& o) {
  FcgOptions fo;
  fo.solve = o.solve;
  fo.preconditioner = block_async_preconditioner(
      /*global_sweeps=*/2, o.block_size, o.local_iters, o.seed);
  return fcg_solve(a, b, fo);
}

SolveResult run_block_jacobi(const Csr& a, const Vector& b,
                             const RegistrySolveOptions& o) {
  BlockJacobiOptions bo;
  bo.solve = o.solve;
  bo.block_size = o.block_size;
  bo.local_iters = o.local_iters;
  bo.backend = o.backend;
  return block_jacobi_solve(a, b, bo);
}

SolveResult run_gmres(const Csr& a, const Vector& b,
                      const RegistrySolveOptions& o) {
  GmresOptions go;
  go.solve = o.solve;
  return gmres_solve(a, b, go);
}

SolveResult run_async(const Csr& a, const Vector& b,
                      const RegistrySolveOptions& o) {
  BlockAsyncOptions ao;
  ao.solve = o.solve;
  ao.block_size = o.block_size;
  ao.local_iters = o.local_iters;
  ao.backend = o.backend;
  ao.seed = o.seed;
  return block_async_solve(a, b, ao).solve;
}

SolveResult run_thread_async(const Csr& a, const Vector& b,
                             const RegistrySolveOptions& o) {
  ThreadAsyncOptions to;
  to.solve = o.solve;
  to.block_size = o.block_size;
  to.local_iters = o.local_iters;
  to.num_threads = o.num_threads;
  to.backend = o.backend;
  return thread_async_solve(a, b, to).solve;
}

SolveResult run_mg(const Csr& a, const Vector& b,
                   const RegistrySolveOptions& o) {
  const auto hierarchy = make_hierarchy(a, mg::gauss_seidel_smoother());
  mg::MgOptions mo;
  mo.solve = o.solve;
  return hierarchy.solve(b, mo);
}

SolveResult run_mg_async(const Csr& a, const Vector& b,
                         const RegistrySolveOptions& o) {
  const auto hierarchy = make_hierarchy(
      a, mg::block_async_smoother(o.block_size, o.local_iters, o.seed));
  mg::MgOptions mo;
  mo.solve = o.solve;
  return hierarchy.solve(b, mo);
}

SolveResult run_fcg_mg(const Csr& a, const Vector& b,
                       const RegistrySolveOptions& o) {
  // One V-cycle from a zero initial guess is a linear, SPD-friendly
  // approximation of A^{-1} — exactly what FCG wants as z = M^{-1} r.
  auto hierarchy = std::make_shared<mg::PoissonMultigrid>(
      make_hierarchy(a, mg::gauss_seidel_smoother()));
  FcgOptions fo;
  fo.solve = o.solve;
  fo.preconditioner = [hierarchy](const Csr&, const Vector& r, Vector& z) {
    mg::MgOptions mo;
    mo.solve.max_iters = 1;
    mo.solve.tol = 0.0;
    mo.solve.record_history = false;
    z = hierarchy->solve(r, mo).x;
  };
  return fcg_solve(a, b, fo);
}

constexpr Entry kEntries[] = {
    {"jacobi", run_jacobi},
    {"scaled-jacobi", run_scaled_jacobi},
    {"gauss-seidel", run_gauss_seidel},
    {"symmetric-gs", run_symmetric_gs},
    {"sor", run_sor},
    {"cg", run_cg},
    {"gmres", run_gmres},
    {"pcg-jacobi", run_pcg_jacobi},
    {"fcg-jacobi", run_fcg_jacobi},
    {"fcg-async", run_fcg_async},
    {"block-jacobi", run_block_jacobi},
    {"block-async", run_async},
    {"thread-async", run_thread_async},
    {"mg", run_mg},
    {"mg-async", run_mg_async},
    {"fcg-mg", run_fcg_mg},
};

}  // namespace

std::vector<std::string> solver_names() {
  std::vector<std::string> names;
  for (const Entry& e : kEntries) names.emplace_back(e.name);
  return names;
}

RegistrySolver find_solver(const std::string& name) {
  for (const Entry& e : kEntries) {
    if (name == e.name) {
      return [run = e.run](const Csr& a, const Vector& b,
                           const RegistrySolveOptions& o) {
        return run(a, b, o);
      };
    }
  }
  std::string msg = "unknown solver '" + name + "'; valid:";
  for (const Entry& e : kEntries) msg += std::string(" ") + e.name;
  throw std::invalid_argument(msg);
}

}  // namespace bars

#pragma once

#include <functional>
#include <vector>

#include "core/solver_types.hpp"
#include "sparse/csr.hpp"

/// \file multigrid.hpp
/// Geometric two-/multi-grid for the 2D Poisson problem with a
/// pluggable smoother — the paper's Section 5 "future work": using
/// component-wise (block-asynchronous) relaxation as a multigrid
/// smoother. Grids are m x m with Dirichlet boundary, coarsened by
/// factor 2 with full-weighting restriction and bilinear prolongation.

namespace bars::mg {

/// A smoother applies `sweeps` relaxation passes to A x = b in place.
using Smoother = std::function<void(const Csr& a, const Vector& b, Vector& x,
                                    index_t sweeps)>;

/// Cycle shape: V visits each coarse level once per cycle, W twice.
enum class CycleType { kV, kW };

struct MgOptions {
  CycleType cycle = CycleType::kV;
  index_t pre_smooth = 2;
  index_t post_smooth = 2;
  index_t max_cycles = 100;
  value_t tol = 1e-10;          ///< relative residual on the fine grid
  index_t coarsest_size = 7;    ///< direct-solve when m <= this
};

struct MgResult {
  Vector x;
  bool converged = false;
  index_t cycles = 0;
  value_t final_residual = 0.0;
  std::vector<value_t> residual_history;  ///< per V-cycle
};

/// Multigrid hierarchy for the 5-point Laplacian (+ c*I) on m x m
/// grids, m = 2^k - 1 so coarsening is exact.
class PoissonMultigrid {
 public:
  /// Throws unless m is 2^k - 1 for some k >= 2.
  PoissonMultigrid(index_t m, value_t c, Smoother smoother);

  [[nodiscard]] MgResult solve(const Vector& b,
                               const MgOptions& opts = {}) const;

  [[nodiscard]] const Csr& fine_matrix() const { return levels_.front(); }
  [[nodiscard]] index_t num_levels() const {
    return static_cast<index_t>(levels_.size());
  }

 private:
  void vcycle(index_t level, const Vector& b, Vector& x,
              const MgOptions& opts) const;

  std::vector<Csr> levels_;       ///< level 0 = finest
  std::vector<index_t> sizes_;    ///< grid edge m per level
  Smoother smoother_;
};

/// Gauss-Seidel smoother (reference).
[[nodiscard]] Smoother gauss_seidel_smoother();
/// Damped Jacobi smoother (omega, default 4/5 optimal for Poisson).
[[nodiscard]] Smoother jacobi_smoother(value_t omega = 0.8);
/// Block-asynchronous smoother: async-(local_iters) sweeps on the
/// simulated GPU (paper Section 5 future-work scenario).
[[nodiscard]] Smoother block_async_smoother(index_t block_size = 64,
                                            index_t local_iters = 2,
                                            std::uint64_t seed = 99);

}  // namespace bars::mg

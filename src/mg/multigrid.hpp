#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/solver_types.hpp"
#include "sparse/csr.hpp"

/// \file multigrid.hpp
/// Geometric two-/multi-grid for the 2D Poisson problem with a
/// pluggable smoother — the paper's Section 5 "future work": using
/// component-wise (block-asynchronous) relaxation as a multigrid
/// smoother. Grids are m x m with Dirichlet boundary, coarsened by
/// factor 2 with full-weighting restriction and bilinear prolongation.

namespace bars::mg {

/// A smoother applies `sweeps` relaxation passes to A x = b in place.
using Smoother = std::function<void(const Csr& a, const Vector& b, Vector& x,
                                    index_t sweeps)>;

/// Cycle shape: V visits each coarse level once per cycle, W twice.
enum class CycleType { kV, kW };

struct MgOptions {
  CycleType cycle = CycleType::kV;
  index_t pre_smooth = 2;
  index_t post_smooth = 2;
  /// Shared stopping/telemetry knobs: max_iters counts V/W-cycles and
  /// tol is the relative residual on the fine grid. Defaults differ
  /// from a plain SolveOptions{} because a cycle is far more work than
  /// a relaxation sweep.
  SolveOptions solve = {.max_iters = 100, .tol = 1e-10};
  index_t coarsest_size = 7;    ///< direct-solve when m <= this
};

/// Multigrid hierarchy for the 5-point Laplacian (+ c*I) on m x m
/// grids, m = 2^k - 1 so coarsening is exact.
class PoissonMultigrid {
 public:
  /// Throws unless m is 2^k - 1 for some k >= 2.
  PoissonMultigrid(index_t m, value_t c, Smoother smoother);

  /// Runs cycles until the fine-grid relative residual meets
  /// opts.solve.tol. In the result, `iterations` counts cycles and
  /// `residual_history` has one entry per cycle (plus the initial).
  [[nodiscard]] SolveResult solve(const Vector& b,
                                  const MgOptions& opts = {}) const;

  [[nodiscard]] const Csr& fine_matrix() const { return levels_.front(); }
  [[nodiscard]] index_t num_levels() const {
    return static_cast<index_t>(levels_.size());
  }

 private:
  void vcycle(index_t level, const Vector& b, Vector& x,
              const MgOptions& opts) const;

  std::vector<Csr> levels_;       ///< level 0 = finest
  std::vector<index_t> sizes_;    ///< grid edge m per level
  Smoother smoother_;
};

/// Gauss-Seidel smoother (reference).
[[nodiscard]] Smoother gauss_seidel_smoother();
/// Damped Jacobi smoother (omega, default 4/5 optimal for Poisson).
[[nodiscard]] Smoother jacobi_smoother(value_t omega = 0.8);
/// Block-asynchronous smoother: async-(local_iters) sweeps on the
/// simulated GPU (paper Section 5 future-work scenario).
[[nodiscard]] Smoother block_async_smoother(index_t block_size = 64,
                                            index_t local_iters = 2,
                                            std::uint64_t seed = 99);

/// Returns the grid edge m when `a` is exactly fv_like(m, c) for some
/// reaction coefficient c and m = 2^k - 1 (i.e. a matrix that
/// PoissonMultigrid can coarsen), and std::nullopt otherwise. Used by
/// the solver registry to validate matrices before building a
/// hierarchy.
[[nodiscard]] std::optional<index_t> poisson_grid_size(const Csr& a);

}  // namespace bars::mg

#include "core/fcg.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/block_async.hpp"
#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

SolveResult fcg_solve(const Csr& a, const Vector& b, const FcgOptions& opts,
                      const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("fcg_solve: dimension mismatch");
  }
  if (!opts.preconditioner) {
    throw std::invalid_argument("fcg_solve: preconditioner required");
  }
  const std::size_t n = b.size();
  SolveResult res;
  res.x = x0 ? *x0 : Vector(n, 0.0);
  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;

  Vector r(n), r_prev(n), z(n), p(n), ap(n), diff(n);
  a.residual(b, res.x, r);
  opts.preconditioner(a, r, z);
  p = z;
  telemetry::SolveProbe probe(opts.solve.telemetry, "fcg");
  probe.start(a.rows(), a.nnz());

  value_t zr = dot(z, r);
  value_t rel = norm2(r) / den;
  if (opts.solve.record_history) res.residual_history.push_back(rel);
  probe.iteration(0, rel);

  for (index_t it = 0; it < opts.solve.max_iters; ++it) {
    if (rel <= opts.solve.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.solve.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    if (common::cancel_requested(opts.solve.cancel)) {
      res.status = SolverStatus::kAborted;
      break;
    }
    a.spmv(p, ap);
    const value_t pap = dot(p, ap);
    if (pap <= 0.0) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    const value_t alpha = zr / pap;
    axpy(alpha, p, res.x);
    r_prev = r;
    axpy(-alpha, ap, r);
    opts.preconditioner(a, r, z);
    // Polak-Ribiere: robust when the preconditioner varies per step.
    subtract(r, r_prev, diff);
    const value_t zr_next = dot(z, r);
    const value_t beta = zr > 0.0 ? dot(z, diff) / zr : 0.0;
    xpby(z, std::max(beta, value_t{0.0}), p);
    zr = zr_next;
    if (zr <= 0.0) {
      // Preconditioner lost positive definiteness on this application;
      // restart the search direction from the preconditioned residual.
      p = z;
      zr = dot(z, r);
      if (zr <= 0.0) {
        res.status = SolverStatus::kDiverged;
        break;
      }
    }
    rel = norm2(r) / den;
    res.iterations = it + 1;
    if (opts.solve.record_history) res.residual_history.push_back(rel);
    probe.iteration(res.iterations, rel);
  }
  if (rel <= opts.solve.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  probe.finish(res.status, res.iterations, res.final_residual);
  return res;
}

Preconditioner identity_preconditioner() {
  return [](const Csr&, const Vector& r, Vector& z) { z = r; };
}

Preconditioner jacobi_preconditioner() {
  return [](const Csr& a, const Vector& r, Vector& z) {
    const Vector d = a.diagonal();
    z.resize(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (d[i] == 0.0) {
        throw std::invalid_argument("jacobi_preconditioner: zero diagonal");
      }
      z[i] = r[i] / d[i];
    }
  };
}

Preconditioner block_async_preconditioner(index_t global_sweeps,
                                          index_t block_size,
                                          index_t local_iters,
                                          std::uint64_t seed) {
  // The counter makes successive applications distinct schedules —
  // exactly the "varying operator" scenario FCG exists for.
  auto counter = std::make_shared<std::uint64_t>(0);
  return [=](const Csr& a, const Vector& r, Vector& z) {
    BlockAsyncOptions o;
    o.block_size = block_size;
    o.local_iters = local_iters;
    o.seed = seed + (*counter)++;
    o.solve.max_iters = global_sweeps;
    o.solve.tol = 0.0;
    o.solve.record_history = false;
    const BlockAsyncResult res = block_async_solve(a, r, o);
    z = res.solve.x;
  };
}

}  // namespace bars

#pragma once

#include <optional>

#include "core/block_async.hpp"
#include "core/solver_types.hpp"
#include "resilience/recovery.hpp"

/// \file silent_error.hpp
/// Silent-error (SDC) injection and detection — the closing thought of
/// the paper's Section 4.5: "a convergence delay or non-converging
/// sequence of solution approximations indicates that a silent error
/// has occurred ... asynchronous methods can be used to detect silent
/// errors." We inject bit-flip-style corruptions into the iterate and
/// detect them from the residual history alone.

namespace bars {

/// A silent corruption: at global iteration `at`, component `component`
/// is overwritten with `magnitude` (no error signal — the solver only
/// sees its effect on the residual). component < 0 picks a
/// seed-dependent component.
struct SilentErrorPlan {
  index_t at = 10;
  index_t component = -1;
  value_t magnitude = 1.0e6;
  std::uint64_t seed = 4321;
};

/// Residual-history anomaly detector. A healthy relaxation run
/// contracts every iteration by roughly its asymptotic factor; a silent
/// corruption appears as a residual *jump* (ratio >> 1) or a long
/// stagnation. Both thresholds are relative to the recent contraction
/// trend, so no a-priori rate knowledge is needed.
struct SilentErrorReport {
  bool detected = false;
  index_t at_iteration = -1;   ///< first anomalous history index
  value_t jump_ratio = 0.0;    ///< residual ratio at the anomaly
};

struct DetectorOptions {
  /// Flag when r_{k+1} / r_k exceeds this multiple of the recent trend.
  value_t jump_factor = 10.0;
  /// Flag when the residual fails to contract by at least this factor
  /// over `stall_window` iterations (while far from the rounding floor).
  index_t stall_window = 10;
  value_t stall_factor = 0.9;
  value_t floor = 1e-13;
  /// Iterations to establish the trend before detection arms.
  index_t warmup = 3;
};

/// Scan a residual history for corruption signatures. Robust to
/// degenerate inputs: empty/one-entry histories, histories already at
/// the rounding floor, and warmup >= history.size() all return
/// detected = false. Implemented as a replay through the streaming
/// detector below, so batch and online verdicts always agree.
[[nodiscard]] SilentErrorReport detect_silent_error(
    const std::vector<value_t>& history, const DetectorOptions& opts = {});

/// Online/streaming mode of the same detector: push one residual per
/// global iteration and the anomaly is reported the moment it appears,
/// enabling mid-run rollback instead of post-hoc diagnosis. This is
/// what the executors run when BlockAsyncOptions::resilience enables
/// online_detection.
[[nodiscard]] resilience::OnlineResidualDetector make_online_detector(
    const DetectorOptions& opts = {});

/// DetectorOptions -> the resilience layer's equivalent.
[[nodiscard]] resilience::AnomalyOptions to_anomaly_options(
    const DetectorOptions& opts);

/// Run async-(k) with a silent corruption injected, returning the
/// solver result plus the detector's verdict on its residual history.
struct SdcRunResult {
  BlockAsyncResult solve;
  SilentErrorReport report;
};

[[nodiscard]] SdcRunResult block_async_solve_with_sdc(
    const Csr& a, const Vector& b, const BlockAsyncOptions& opts,
    const std::optional<SilentErrorPlan>& sdc);

}  // namespace bars

#pragma once

#include "core/solver_types.hpp"

/// \file gmres.hpp
/// Restarted GMRES (Saad & Schultz), the nonsymmetric Krylov method the
/// paper's introduction contrasts with asynchronous relaxation: its
/// orthogonalization is a synchronization wall on parallel hardware,
/// which is exactly the cost async-(k) avoids. Included so nonsymmetric
/// systems (e.g. unsymmetric perturbations of the suite) are solvable
/// and the comparison is available to benches.

namespace bars {

struct GmresOptions {
  SolveOptions solve{};
  index_t restart = 30;  ///< Krylov dimension per cycle (GMRES(m))
};

/// Solve A x = b by GMRES(m) with modified Gram-Schmidt and Givens
/// rotations. `iterations` counts inner steps across all cycles.
[[nodiscard]] SolveResult gmres_solve(const Csr& a, const Vector& b,
                                      const GmresOptions& opts = {},
                                      const Vector* x0 = nullptr);

}  // namespace bars

#include "core/gauss_seidel.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

namespace {

void sweep(const Csr& a, const Vector& b, Vector& x, const Vector& d,
           value_t omega, bool forward) {
  const index_t n = a.rows();
  for (index_t step = 0; step < n; ++step) {
    const index_t i = forward ? step : n - 1 - step;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    value_t s = b[i];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i) s -= vals[k] * x[cols[k]];
    }
    const value_t gs = s / d[i];
    x[i] = (1.0 - omega) * x[i] + omega * gs;
  }
}

}  // namespace

SolveResult sor_solve(const Csr& a, const Vector& b, value_t omega,
                      const SolveOptions& opts, SweepDirection dir,
                      const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("sor_solve: dimension mismatch");
  }
  if (omega <= 0.0 || omega >= 2.0) {
    throw std::invalid_argument("sor_solve: omega must lie in (0, 2)");
  }
  const Vector d = a.diagonal();
  for (value_t v : d) {
    if (v == 0.0) throw std::invalid_argument("sor_solve: zero diagonal");
  }
  const std::size_t n = b.size();
  SolveResult res;
  res.x = x0 ? *x0 : Vector(n, 0.0);
  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;

  telemetry::SolveProbe probe(
      opts.telemetry,
      omega == 1.0
          ? (dir == SweepDirection::kSymmetric ? "symmetric-gauss-seidel"
                                               : "gauss-seidel")
          : "sor");
  probe.start(a.rows(), a.nnz());

  value_t rel = relative_residual(a, b, res.x);
  if (opts.record_history) res.residual_history.push_back(rel);
  probe.iteration(0, rel);
  (void)den;

  for (index_t it = 0; it < opts.max_iters; ++it) {
    if (rel <= opts.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    if (common::cancel_requested(opts.cancel)) {
      res.status = SolverStatus::kAborted;
      break;
    }
    switch (dir) {
      case SweepDirection::kForward:
        sweep(a, b, res.x, d, omega, /*forward=*/true);
        break;
      case SweepDirection::kBackward:
        sweep(a, b, res.x, d, omega, /*forward=*/false);
        break;
      case SweepDirection::kSymmetric:
        sweep(a, b, res.x, d, omega, /*forward=*/true);
        sweep(a, b, res.x, d, omega, /*forward=*/false);
        break;
    }
    rel = relative_residual(a, b, res.x);
    res.iterations = it + 1;
    if (opts.record_history) res.residual_history.push_back(rel);
    probe.iteration(res.iterations, rel);
  }
  if (rel <= opts.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  probe.finish(res.status, res.iterations, res.final_residual);
  return res;
}

SolveResult gauss_seidel_solve(const Csr& a, const Vector& b,
                               const SolveOptions& opts, SweepDirection dir,
                               const Vector* x0) {
  return sor_solve(a, b, 1.0, opts, dir, x0);
}

}  // namespace bars

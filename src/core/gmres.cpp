#include "core/gmres.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

SolveResult gmres_solve(const Csr& a, const Vector& b,
                        const GmresOptions& opts, const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("gmres_solve: dimension mismatch");
  }
  if (opts.restart <= 0) {
    throw std::invalid_argument("gmres_solve: restart must be > 0");
  }
  const std::size_t n = b.size();
  const auto m = static_cast<std::size_t>(opts.restart);

  SolveResult res;
  res.x = x0 ? *x0 : Vector(n, 0.0);
  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;

  telemetry::SolveProbe probe(opts.solve.telemetry, "gmres");
  probe.start(a.rows(), a.nnz());

  Vector r(n);
  a.residual(b, res.x, r);
  value_t beta = norm2(r);
  value_t rel = beta / den;
  if (opts.solve.record_history) res.residual_history.push_back(rel);
  probe.iteration(0, rel);

  std::vector<Vector> v;                 // Krylov basis
  std::vector<std::vector<value_t>> h;   // Hessenberg columns
  Vector cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0);
  Vector w(n);

  while (res.iterations < opts.solve.max_iters) {
    if (rel <= opts.solve.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.solve.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    // Cancellation is honored at restart boundaries (a partial Arnoldi
    // cycle would be discarded anyway).
    if (common::cancel_requested(opts.solve.cancel)) {
      res.status = SolverStatus::kAborted;
      break;
    }
    // Start a cycle from the true residual.
    a.residual(b, res.x, r);
    beta = norm2(r);
    if (beta == 0.0) {
      rel = 0.0;
      res.status = SolverStatus::kConverged;
      break;
    }
    v.assign(1, r);
    scale(1.0 / beta, v[0]);
    h.clear();
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t k = 0;
    for (; k < m && res.iterations < opts.solve.max_iters; ++k) {
      a.spmv(v[k], w);
      std::vector<value_t> hk(k + 2, 0.0);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= k; ++i) {
        hk[i] = dot(w, v[i]);
        axpy(-hk[i], v[i], w);
      }
      hk[k + 1] = norm2(w);

      // Apply the accumulated Givens rotations to the new column.
      for (std::size_t i = 0; i < k; ++i) {
        const value_t t = cs[i] * hk[i] + sn[i] * hk[i + 1];
        hk[i + 1] = -sn[i] * hk[i] + cs[i] * hk[i + 1];
        hk[i] = t;
      }
      // New rotation to annihilate hk[k+1].
      const value_t denom =
          std::sqrt(hk[k] * hk[k] + hk[k + 1] * hk[k + 1]);
      if (denom == 0.0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = hk[k] / denom;
        sn[k] = hk[k + 1] / denom;
      }
      hk[k] = cs[k] * hk[k] + sn[k] * hk[k + 1];
      hk[k + 1] = 0.0;
      const value_t g_next = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      g[k + 1] = g_next;
      h.push_back(std::move(hk));

      ++res.iterations;
      rel = std::abs(g[k + 1]) / den;
      if (opts.solve.record_history) res.residual_history.push_back(rel);
      probe.iteration(res.iterations, rel);

      if (rel <= opts.solve.tol) {
        ++k;
        break;
      }
      // Lucky breakdown: exact solution found in this subspace.
      if (k + 1 < m) {
        const value_t wnorm = norm2(w);
        if (wnorm == 0.0) {
          ++k;
          break;
        }
        Vector next = w;
        scale(1.0 / wnorm, next);
        v.push_back(std::move(next));
      }
    }

    // Back-substitute y from the k x k triangular system and update x.
    std::vector<value_t> y(k, 0.0);
    for (std::size_t i = k; i-- > 0;) {
      value_t s = g[i];
      for (std::size_t j = i + 1; j < k; ++j) s -= h[j][i] * y[j];
      y[i] = h[i][i] != 0.0 ? s / h[i][i] : 0.0;
    }
    for (std::size_t i = 0; i < k; ++i) axpy(y[i], v[i], res.x);

    rel = relative_residual(a, b, res.x);
    if (opts.solve.record_history && !res.residual_history.empty()) {
      res.residual_history.back() = rel;  // replace estimate with true
    }
  }
  if (rel <= opts.solve.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  probe.finish(res.status, res.iterations, res.final_residual);
  return res;
}

}  // namespace bars

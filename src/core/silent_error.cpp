#include "core/silent_error.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "backend/registry.hpp"
#include "gpusim/async_executor.hpp"
#include "sparse/vector_ops.hpp"
#include "stats/rng.hpp"

namespace bars {

namespace {

/// Kernel decorator that injects one silent corruption into the shared
/// iterate after the trigger iteration. Single-threaded executor =>
/// mutable counters are safe.
class SdcKernel final : public gpusim::BlockKernel {
 public:
  SdcKernel(const gpusim::BlockKernel& inner, SilentErrorPlan plan)
      : inner_(inner), plan_(plan) {
    if (plan_.component >= inner.num_rows()) {
      throw std::invalid_argument("SilentErrorPlan: component out of range");
    }
    if (plan_.component < 0) {
      Rng rng(plan_.seed);
      plan_.component = rng.uniform_int(0, inner.num_rows() - 1);
    }
  }

  [[nodiscard]] index_t num_blocks() const override {
    return inner_.num_blocks();
  }
  [[nodiscard]] index_t num_rows() const override {
    return inner_.num_rows();
  }
  [[nodiscard]] std::span<const index_t> halo(index_t b) const override {
    return inner_.halo(b);
  }
  [[nodiscard]] std::pair<index_t, index_t> rows(index_t b) const override {
    return inner_.rows(b);
  }

  void update(index_t block, std::span<const value_t> halo_values,
              std::span<value_t> x,
              const gpusim::ExecContext& ctx) const override {
    inner_.update(block, halo_values, x, ctx);
    ++updates_;
    if (!injected_ &&
        updates_ >= plan_.at * inner_.num_blocks()) {
      // The corruption lands in device memory unnoticed — any block's
      // store can be hit, so we do not wait for the owner.
      x[plan_.component] = plan_.magnitude;
      injected_ = true;
    }
  }

 private:
  const gpusim::BlockKernel& inner_;
  SilentErrorPlan plan_;
  mutable index_t updates_ = 0;
  mutable bool injected_ = false;
};

}  // namespace

resilience::AnomalyOptions to_anomaly_options(const DetectorOptions& opts) {
  resilience::AnomalyOptions a;
  a.jump_factor = opts.jump_factor;
  a.stall_window = opts.stall_window;
  a.stall_factor = opts.stall_factor;
  a.floor = opts.floor;
  a.warmup = opts.warmup;
  return a;
}

resilience::OnlineResidualDetector make_online_detector(
    const DetectorOptions& opts) {
  return resilience::OnlineResidualDetector(to_anomaly_options(opts));
}

SilentErrorReport detect_silent_error(const std::vector<value_t>& history,
                                      const DetectorOptions& opts) {
  SilentErrorReport rep;
  if (history.size() < 2) return rep;
  resilience::OnlineResidualDetector detector = make_online_detector(opts);
  for (value_t r : history) {
    if (const auto anomaly = detector.push(r)) {
      rep.detected = true;
      rep.at_iteration = anomaly->at_iteration;
      rep.jump_ratio = anomaly->jump_ratio;
      return rep;
    }
  }
  return rep;
}

SdcRunResult block_async_solve_with_sdc(
    const Csr& a, const Vector& b, const BlockAsyncOptions& opts,
    const std::optional<SilentErrorPlan>& sdc) {
  // Mirror block_async_solve but wrap the kernel with the injector.
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument(
        "block_async_solve_with_sdc: dimension mismatch");
  }
  const RowPartition part = RowPartition::uniform(a.rows(), opts.block_size);
  const std::unique_ptr<backend::BlockSweepKernel> base =
      backend::build_kernel(
          opts.backend, a, b, part,
          {opts.local_iters, opts.local_sweep, opts.local_omega,
           opts.overlap},
          opts.solve.telemetry.metrics);
  std::optional<SdcKernel> wrapped;
  const gpusim::BlockKernel* kernel = base.get();
  if (sdc) {
    wrapped.emplace(*base, *sdc);
    kernel = &*wrapped;
  }

  static const gpusim::CostModel kModel =
      gpusim::CostModel::calibrated_to_paper();
  const gpusim::MatrixShape shape{opts.matrix_name, a.rows(), a.nnz()};
  gpusim::ExecutorOptions exec;
  exec.stopping.max_global_iters = opts.solve.max_iters;
  exec.stopping.tol = opts.solve.tol;
  exec.stopping.divergence_limit = opts.solve.divergence_limit;
  exec.telemetry = opts.solve.telemetry;
  exec.concurrent_slots = opts.concurrent_slots;
  exec.global_iteration_time =
      kModel.gpu_block_async_iteration(shape, opts.local_iters);
  exec.jitter = opts.jitter;
  exec.seed = opts.seed;
  exec.fault = opts.fault;
  exec.scenario = opts.scenario;
  exec.resilience = opts.resilience;

  SdcRunResult out;
  out.solve.solve.x = Vector(b.size(), 0.0);
  gpusim::AsyncExecutor executor(*kernel, exec);
  gpusim::ExecutorResult r = executor.run(
      out.solve.solve.x,
      [&](const Vector& x) { return relative_residual(a, b, x); });

  out.solve.solve.status = r.status;
  out.solve.solve.iterations = r.global_iterations;
  out.solve.solve.final_residual = r.residual_history.back();
  out.solve.solve.residual_history = r.residual_history;
  out.solve.solve.time_history = std::move(r.time_history);
  out.solve.block_executions = std::move(r.block_executions);
  out.solve.resilience = std::move(r.resilience);
  out.report = detect_silent_error(out.solve.solve.residual_history);
  return out;
}

}  // namespace bars

#pragma once

#include <optional>
#include <string>

#include "backend/kernel_backend.hpp"
#include "core/solver_types.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/multi_device.hpp"

/// \file multi_gpu_solver.hpp
/// Front-end for the multi-GPU block-asynchronous iteration (paper
/// Sections 3.4, 4.6): async-(k) across 1..4 simulated GPUs with one of
/// the AMC / DC / DK communication schemes.

namespace bars {

struct MultiGpuOptions {
  SolveOptions solve{};

  index_t num_devices = 1;
  gpusim::TransferScheme scheme = gpusim::TransferScheme::kAMC;
  gpusim::TransferParams transfer{};

  index_t block_size = 448;
  index_t local_iters = 5;
  LocalSweep local_sweep = LocalSweep::kJacobi;
  /// Compute backend building the block-sweep kernel ("scalar",
  /// "simd", "auto"; see docs/BACKENDS.md).
  std::string backend = "scalar";

  index_t slots_per_device = 14;
  value_t jitter = 0.20;
  value_t straggler_prob = 0.05;
  value_t straggler_factor = 2.0;
  std::uint64_t seed = 99;
  /// Legacy single-event failure; ignored when `scenario` is set.
  std::optional<gpusim::FaultPlan> fault{};
  /// Composable fault timeline incl. device dropout and link failures.
  std::optional<resilience::FaultScenario> scenario{};
  /// Active recovery layer (see docs/RESILIENCE.md).
  std::optional<resilience::Policy> resilience{};

  std::string matrix_name;
  const gpusim::CostModel* cost_model = nullptr;
};

struct MultiGpuResult {
  SolveResult solve;
  value_t bytes_host_device = 0.0;
  value_t bytes_device_device = 0.0;
  index_t num_transfers = 0;
  /// Virtual time at convergence — the quantity plotted in Fig. 11.
  value_t time_to_convergence = 0.0;
  /// Resilience activity (all-zero for plain runs).
  resilience::Report resilience;
};

[[nodiscard]] MultiGpuResult multi_gpu_block_async_solve(
    const Csr& a, const Vector& b, const MultiGpuOptions& opts = {},
    const Vector* x0 = nullptr);

}  // namespace bars

#pragma once

#include <cstdint>
#include <string>

#include "core/solver_types.hpp"

/// \file thread_async.hpp
/// A *real* asynchronous relaxation solver on host threads: no
/// simulation, no virtual time — worker threads update their blocks
/// chaotically with relaxed-atomic reads/writes of the shared iterate,
/// exactly the Chazan-Miranker setting. This complements the gpusim
/// executor: the simulator gives reproducibility, this gives native
/// hardware asynchrony (and demonstrates that convergence under
/// rho(|B|) < 1 does not depend on the simulation).

namespace bars {

struct ThreadAsyncOptions {
  SolveOptions solve{};
  index_t block_size = 256;
  index_t local_iters = 1;
  /// 0 = use std::thread::hardware_concurrency (at least 1).
  index_t num_threads = 0;
  /// Compute backend building the block-sweep kernel ("scalar",
  /// "simd", "auto"; see docs/BACKENDS.md). Unavailable backends
  /// degrade to "scalar".
  std::string backend = "scalar";
};

/// Extended result with per-block execution counts.
struct ThreadAsyncResult {
  SolveResult solve;
  std::vector<index_t> block_executions;
  index_t total_block_executions = 0;
};

/// Solve A x = b by chaotic relaxation on host threads. Residual
/// history is sampled once per completed global iteration (q block
/// executions). Non-deterministic by nature; convergence is guaranteed
/// for rho(|B|) < 1 (Strikwerda).
[[nodiscard]] ThreadAsyncResult thread_async_solve(
    const Csr& a, const Vector& b, const ThreadAsyncOptions& opts = {},
    const Vector* x0 = nullptr);

}  // namespace bars

#include "core/block_jacobi.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "backend/registry.hpp"
#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

SolveResult block_jacobi_solve(const Csr& a, const Vector& b,
                               const BlockJacobiOptions& opts,
                               const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("block_jacobi_solve: dimension mismatch");
  }
  const RowPartition part = RowPartition::uniform(a.rows(), opts.block_size);
  const std::unique_ptr<backend::BlockSweepKernel> kernel_ptr =
      backend::build_kernel(
          opts.backend, a, b, part,
          {opts.local_iters, opts.local_sweep, opts.local_omega,
           opts.overlap},
          opts.solve.telemetry.metrics);
  const backend::BlockSweepKernel& kernel = *kernel_ptr;
  const index_t q = kernel.num_blocks();

  SolveResult res;
  res.x = x0 ? *x0 : Vector(b.size(), 0.0);

  telemetry::SolveProbe probe(opts.solve.telemetry, "block-jacobi");
  probe.start(a.rows(), a.nnz(), q);

  value_t rel = relative_residual(a, b, res.x);
  if (opts.solve.record_history) res.residual_history.push_back(rel);
  probe.iteration(0, rel);

  // Pre-extract halo spans once; values are re-gathered per iteration.
  Vector snapshot(res.x.size());
  Vector halo_vals;
  for (index_t it = 0; it < opts.solve.max_iters; ++it) {
    if (rel <= opts.solve.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.solve.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    if (common::cancel_requested(opts.solve.cancel)) {
      res.status = SolverStatus::kAborted;
      break;
    }
    // Synchronous: all blocks read the same snapshot.
    snapshot = res.x;
    for (index_t blk = 0; blk < q; ++blk) {
      const auto halo = kernel.halo(blk);
      halo_vals.resize(halo.size());
      for (std::size_t i = 0; i < halo.size(); ++i) {
        halo_vals[i] = snapshot[halo[i]];
      }
      // The kernel seeds its local iterate from x's own rows; they are
      // still the snapshot values (blocks own disjoint rows).
      gpusim::ExecContext ctx;
      kernel.update(blk, halo_vals, res.x, ctx);
    }
    rel = relative_residual(a, b, res.x);
    res.iterations = it + 1;
    if (opts.solve.record_history) res.residual_history.push_back(rel);
    probe.iteration(res.iterations, rel);
  }
  if (rel <= opts.solve.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  probe.finish(res.status, res.iterations, res.final_residual);
  return res;
}

}  // namespace bars

#pragma once

#include "core/solver_types.hpp"

/// \file gauss_seidel.hpp
/// Gauss-Seidel and SOR relaxation — the sequential CPU baseline of the
/// paper (Sections 2.2, 4.2) plus the standard over-relaxed and
/// symmetric variants as extensions.

namespace bars {

enum class SweepDirection {
  kForward,    ///< rows 0..n-1 (the paper's baseline)
  kBackward,   ///< rows n-1..0
  kSymmetric,  ///< forward then backward per iteration
};

/// Gauss-Seidel: each component update immediately uses the freshest
/// values of all previously updated components.
[[nodiscard]] SolveResult gauss_seidel_solve(
    const Csr& a, const Vector& b, const SolveOptions& opts = {},
    SweepDirection dir = SweepDirection::kForward, const Vector* x0 = nullptr);

/// Successive over-relaxation with factor omega in (0, 2).
/// omega == 1 reduces to Gauss-Seidel.
[[nodiscard]] SolveResult sor_solve(const Csr& a, const Vector& b,
                                    value_t omega,
                                    const SolveOptions& opts = {},
                                    SweepDirection dir = SweepDirection::kForward,
                                    const Vector* x0 = nullptr);

}  // namespace bars

#include "core/jacobi.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

namespace {

SolveResult jacobi_impl(const Csr& a, const Vector& b, value_t tau,
                        const SolveOptions& opts, const Vector* x0,
                        const char* name) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("jacobi_solve: dimension mismatch");
  }
  const Vector d = a.diagonal();
  for (value_t v : d) {
    if (v == 0.0) throw std::invalid_argument("jacobi_solve: zero diagonal");
  }
  const std::size_t n = b.size();
  SolveResult res;
  res.x = x0 ? *x0 : Vector(n, 0.0);
  const value_t nb = norm2(b);
  const value_t scale_den = nb > 0.0 ? nb : 1.0;

  telemetry::SolveProbe probe(opts.telemetry, name);
  probe.start(a.rows(), a.nnz());

  Vector r(n);
  a.residual(b, res.x, r);
  value_t rel = norm2(r) / scale_den;
  if (opts.record_history) res.residual_history.push_back(rel);
  probe.iteration(0, rel);

  for (index_t it = 0; it < opts.max_iters; ++it) {
    if (rel <= opts.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    if (common::cancel_requested(opts.cancel)) {
      res.status = SolverStatus::kAborted;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) res.x[i] += tau * r[i] / d[i];
    a.residual(b, res.x, r);
    rel = norm2(r) / scale_den;
    res.iterations = it + 1;
    if (opts.record_history) res.residual_history.push_back(rel);
    probe.iteration(res.iterations, rel);
  }
  if (rel <= opts.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  probe.finish(res.status, res.iterations, res.final_residual);
  return res;
}

}  // namespace

SolveResult jacobi_solve(const Csr& a, const Vector& b,
                         const SolveOptions& opts, const Vector* x0) {
  return jacobi_impl(a, b, 1.0, opts, x0, "jacobi");
}

SolveResult scaled_jacobi_solve(const Csr& a, const Vector& b, value_t tau,
                                const SolveOptions& opts, const Vector* x0) {
  if (tau <= 0.0) {
    throw std::invalid_argument("scaled_jacobi_solve: tau must be > 0");
  }
  return jacobi_impl(a, b, tau, opts, x0, "scaled-jacobi");
}

}  // namespace bars

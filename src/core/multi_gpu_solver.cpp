#include "core/multi_gpu_solver.hpp"

#include <memory>
#include <stdexcept>

#include "backend/registry.hpp"
#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

MultiGpuResult multi_gpu_block_async_solve(const Csr& a, const Vector& b,
                                           const MultiGpuOptions& opts,
                                           const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument(
        "multi_gpu_block_async_solve: dimension mismatch");
  }
  const RowPartition part = RowPartition::uniform(a.rows(), opts.block_size);
  const std::unique_ptr<backend::BlockSweepKernel> kernel_ptr =
      backend::build_kernel(opts.backend, a, b, part,
                            {opts.local_iters, opts.local_sweep},
                            opts.solve.telemetry.metrics);
  const backend::BlockSweepKernel& kernel = *kernel_ptr;

  static const gpusim::CostModel kDefaultModel =
      gpusim::CostModel::calibrated_to_paper();
  const gpusim::CostModel& model =
      opts.cost_model ? *opts.cost_model : kDefaultModel;
  const gpusim::MatrixShape shape{opts.matrix_name, a.rows(), a.nnz()};

  gpusim::MultiDeviceOptions exec;
  exec.num_devices = opts.num_devices;
  exec.scheme = opts.scheme;
  exec.params = opts.transfer;
  exec.stopping.max_global_iters = opts.solve.max_iters;
  exec.stopping.tol = opts.solve.tol;
  exec.stopping.divergence_limit = opts.solve.divergence_limit;
  exec.stopping.cancel = opts.solve.cancel;
  exec.telemetry = opts.solve.telemetry;
  exec.slots_per_device = opts.slots_per_device;
  exec.global_iteration_time =
      model.gpu_block_async_iteration(shape, opts.local_iters);
  exec.jitter = opts.jitter;
  exec.straggler_prob = opts.straggler_prob;
  exec.straggler_factor = opts.straggler_factor;
  exec.seed = opts.seed;
  exec.fault = opts.fault;
  exec.scenario = opts.scenario;
  exec.resilience = opts.resilience;

  MultiGpuResult out;
  out.solve.x = x0 ? *x0 : Vector(b.size(), 0.0);

  telemetry::SolveProbe probe(opts.solve.telemetry, "multi-gpu-block-async");
  probe.start(a.rows(), a.nnz(), part.num_blocks(), opts.num_devices,
              telemetry::TimeDomain::kVirtual);

  gpusim::MultiDeviceExecutor executor(kernel, exec);
  const auto residual_fn = [&](const Vector& x) {
    return relative_residual(a, b, x);
  };
  gpusim::MultiDeviceResult r = executor.run(out.solve.x, residual_fn);

  out.solve.status = r.status;
  out.solve.iterations = r.global_iterations;
  out.solve.final_residual = r.residual_history.back();
  if (opts.solve.record_history) {
    out.solve.residual_history = std::move(r.residual_history);
    out.solve.time_history = std::move(r.time_history);
  }
  out.bytes_host_device = r.bytes_host_device;
  out.bytes_device_device = r.bytes_device_device;
  out.num_transfers = r.num_transfers;
  out.time_to_convergence = r.virtual_time;
  out.resilience = std::move(r.resilience);
  probe.finish(out.solve.status, out.solve.iterations,
               out.solve.final_residual, 0, 0, r.virtual_time,
               out.resilience.rollbacks + out.resilience.damped_restarts);
  return out;
}

}  // namespace bars

#pragma once

#include <functional>

#include "core/block_jacobi_kernel.hpp"
#include "core/solver_types.hpp"
#include "gpusim/async_executor.hpp"

/// \file nonlinear.hpp
/// Block-asynchronous two-stage iteration for *mildly nonlinear*
/// systems A x + phi(x) = b with a diagonal nonlinearity — the setting
/// of Bai, Migallon, Penades & Szyld (the paper's reference [5], which
/// inspired the local-iteration idea of async-(k)). Each block visit
/// freezes the off-block part and runs `local_iters` damped
/// Newton-Jacobi sweeps on the local nonlinear sub-system:
///   x_i <- x_i + (b_i - sum_j a_ij x_j - phi_i(x_i)) /
///               (a_ii + phi_i'(x_i)).

namespace bars {

/// Component-wise nonlinearity: value and derivative of phi_i at x_i.
/// Must be smooth and monotone non-decreasing (phi' >= 0) for the
/// convergence theory to apply.
struct DiagonalNonlinearity {
  std::function<value_t(index_t i, value_t xi)> value;
  std::function<value_t(index_t i, value_t xi)> derivative;
};

/// phi(x) = 0: reduces the nonlinear solver to the linear one.
[[nodiscard]] DiagonalNonlinearity zero_nonlinearity();

/// phi_i(x) = c * x^3 (odd, monotone — a classic mildly nonlinear
/// reaction term).
[[nodiscard]] DiagonalNonlinearity cubic_nonlinearity(value_t c);

/// phi_i(x) = c * (exp(x) - 1) (Bratu-like, monotone for c >= 0).
[[nodiscard]] DiagonalNonlinearity exponential_nonlinearity(value_t c);

struct NonlinearAsyncOptions {
  SolveOptions solve{};
  index_t block_size = 256;
  index_t local_iters = 3;
  /// Damping of the local Newton-Jacobi updates in (0, 1].
  value_t damping = 1.0;
  gpusim::SchedulePolicy policy = gpusim::SchedulePolicy::kJittered;
  index_t concurrent_slots = 14;
  value_t jitter = 0.20;
  std::uint64_t seed = 99;
};

struct NonlinearAsyncResult {
  SolveResult solve;  ///< residual = ||b - A x - phi(x)|| / ||b||
  std::vector<index_t> block_executions;
};

/// Solve A x + phi(x) = b by block-asynchronous two-stage iteration on
/// the simulated device. Requires a positive diagonal and phi' >= 0
/// along the iterates (checked: throws std::domain_error when the local
/// Jacobian a_ii + phi_i' becomes non-positive).
[[nodiscard]] NonlinearAsyncResult nonlinear_block_async_solve(
    const Csr& a, const Vector& b, const DiagonalNonlinearity& phi,
    const NonlinearAsyncOptions& opts = {}, const Vector* x0 = nullptr);

/// Reference synchronous damped Newton-Jacobi iteration for the same
/// system (baseline / oracle for tests).
[[nodiscard]] SolveResult nonlinear_jacobi_solve(
    const Csr& a, const Vector& b, const DiagonalNonlinearity& phi,
    const SolveOptions& opts = {}, value_t damping = 1.0,
    const Vector* x0 = nullptr);

}  // namespace bars

#include "core/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

SolveResult cg_solve(const Csr& a, const Vector& b, const CgOptions& opts,
                     const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("cg_solve: dimension mismatch");
  }
  const std::size_t n = b.size();
  SolveResult res;
  res.x = x0 ? *x0 : Vector(n, 0.0);
  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;

  Vector d;
  if (opts.jacobi_preconditioner) {
    d = a.diagonal();
    for (value_t v : d) {
      if (v <= 0.0) {
        throw std::invalid_argument(
            "cg_solve: Jacobi preconditioner needs a positive diagonal");
      }
    }
  }

  Vector r(n), z(n), p(n), ap(n);
  a.residual(b, res.x, r);
  const auto precondition = [&](const Vector& rin, Vector& zout) {
    if (opts.jacobi_preconditioner) {
      for (std::size_t i = 0; i < n; ++i) zout[i] = rin[i] / d[i];
    } else {
      zout = rin;
    }
  };
  precondition(r, z);
  p = z;
  telemetry::SolveProbe probe(opts.solve.telemetry,
                              opts.jacobi_preconditioner ? "pcg-jacobi" : "cg");
  probe.start(a.rows(), a.nnz());

  value_t rz = dot(r, z);
  value_t rel = norm2(r) / den;
  if (opts.solve.record_history) res.residual_history.push_back(rel);
  probe.iteration(0, rel);

  for (index_t it = 0; it < opts.solve.max_iters; ++it) {
    if (rel <= opts.solve.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.solve.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    if (common::cancel_requested(opts.solve.cancel)) {
      res.status = SolverStatus::kAborted;
      break;
    }
    a.spmv(p, ap);
    const value_t pap = dot(p, ap);
    if (pap <= 0.0) {
      res.status = SolverStatus::kDiverged;  // matrix not SPD along p
      break;
    }
    const value_t alpha = rz / pap;
    axpy(alpha, p, res.x);
    if (opts.recompute_every > 0 && (it + 1) % opts.recompute_every == 0) {
      a.residual(b, res.x, r);
    } else {
      axpy(-alpha, ap, r);
    }
    precondition(r, z);
    const value_t rz_next = dot(r, z);
    xpby(z, rz_next / rz, p);
    rz = rz_next;
    rel = norm2(r) / den;
    res.iterations = it + 1;
    if (opts.solve.record_history) res.residual_history.push_back(rel);
    probe.iteration(res.iterations, rel);
  }
  if (rel <= opts.solve.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  probe.finish(res.status, res.iterations, res.final_residual);
  return res;
}

}  // namespace bars

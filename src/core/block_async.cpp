#include "core/block_async.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "backend/registry.hpp"
#include "gpusim/incremental_residual.hpp"
#include "sparse/vector_ops.hpp"
#include "telemetry/probe.hpp"

namespace bars {

std::vector<index_t> adaptive_local_iter_counts(const Csr& a,
                                                const RowPartition& partition,
                                                index_t max_k) {
  if (max_k <= 0) {
    throw std::invalid_argument(
        "adaptive_local_iter_counts: max_k must be > 0");
  }
  const index_t q = partition.num_blocks();
  std::vector<index_t> counts(static_cast<std::size_t>(q), 1);
  for (index_t bi = 0; bi < q; ++bi) {
    const RowBlock blk = partition.block(bi);
    value_t inblock = 0.0, total = 0.0;
    for (index_t i = blk.begin; i < blk.end; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == i) continue;
        const value_t m = std::abs(vals[k]);
        total += m;
        if (cols[k] >= blk.begin && cols[k] < blk.end) inblock += m;
      }
    }
    const value_t f = total > 0.0 ? inblock / total : 0.0;
    counts[bi] = 1 + static_cast<index_t>(
                         std::llround(static_cast<double>(max_k - 1) * f));
  }
  return counts;
}

BlockAsyncResult block_async_solve(const Csr& a, const Vector& b,
                                   const BlockAsyncOptions& opts,
                                   const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("block_async_solve: dimension mismatch");
  }
  if (opts.block_size <= 0) {
    throw std::invalid_argument("block_async_solve: block_size must be > 0");
  }

  const RowPartition part = RowPartition::uniform(a.rows(), opts.block_size);
  const std::unique_ptr<backend::BlockSweepKernel> kernel =
      backend::build_kernel(
          opts.backend, a, b, part,
          {opts.local_iters, opts.local_sweep, opts.local_omega,
           opts.overlap},
          opts.solve.telemetry.metrics);
  if (opts.adaptive_local_iters) {
    kernel->set_per_block_iters(
        adaptive_local_iter_counts(a, part, opts.local_iters));
  }
  return block_async_solve_with_kernel(a, b, *kernel, opts, x0);
}

BlockAsyncResult block_async_solve_with_kernel(const Csr& a, const Vector& b,
                                               backend::BlockSweepKernel& kernel,
                                               const BlockAsyncOptions& opts,
                                               const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("block_async_solve: dimension mismatch");
  }
  if (kernel.num_rows() != a.rows()) {
    throw std::invalid_argument(
        "block_async_solve_with_kernel: kernel built for a different size");
  }
  kernel.set_rhs(b);
  const RowPartition& part = kernel.partition();

  static const gpusim::CostModel kDefaultModel =
      gpusim::CostModel::calibrated_to_paper();
  const gpusim::CostModel& model =
      opts.cost_model ? *opts.cost_model : kDefaultModel;
  const gpusim::MatrixShape shape{opts.matrix_name, a.rows(), a.nnz()};

  gpusim::ExecutorOptions exec;
  exec.stopping.max_global_iters = opts.solve.max_iters;
  exec.stopping.tol = opts.solve.tol;
  exec.stopping.divergence_limit = opts.solve.divergence_limit;
  exec.stopping.cancel = opts.solve.cancel;
  exec.telemetry = opts.solve.telemetry;
  exec.concurrent_slots = opts.concurrent_slots;
  exec.global_iteration_time =
      model.gpu_block_async_iteration(shape, opts.local_iters);
  exec.jitter = opts.jitter;
  exec.straggler_prob = opts.straggler_prob;
  exec.straggler_factor = opts.straggler_factor;
  exec.policy = opts.policy;
  exec.seed = opts.seed;
  exec.pattern_seed = opts.pattern_seed;
  exec.run_noise = opts.run_noise;
  exec.fault = opts.fault;
  exec.scenario = opts.scenario;
  exec.resilience = opts.resilience;
  exec.num_workers = opts.num_workers;
  exec.residual_refresh_every = opts.residual_refresh_every;
  std::optional<gpusim::IncrementalResidual> tracker;
  if (opts.incremental_residual && !opts.resilience) {
    tracker.emplace(a, b, part);
    exec.residual_tracker = &*tracker;
  }

  BlockAsyncResult out;
  out.solve.x = x0 ? *x0 : Vector(b.size(), 0.0);

  telemetry::SolveProbe probe(opts.solve.telemetry, "block-async");
  probe.start(a.rows(), a.nnz(), part.num_blocks(), opts.num_workers,
              telemetry::TimeDomain::kVirtual);

  gpusim::AsyncExecutor executor(kernel, exec);
  const auto residual_fn = [&](const Vector& x) {
    return relative_residual(a, b, x);
  };
  gpusim::ExecutorResult r = executor.run(out.solve.x, residual_fn);

  out.solve.status = r.status;
  out.solve.iterations = r.global_iterations;
  out.solve.final_residual = r.residual_history.back();
  if (opts.solve.record_history) {
    out.solve.residual_history = std::move(r.residual_history);
    out.solve.time_history = std::move(r.time_history);
  }
  out.block_executions = std::move(r.block_executions);
  out.max_staleness = r.max_staleness;
  out.resilience = std::move(r.resilience);

  index_t commits = 0;
  for (index_t c : out.block_executions) commits += c;
  probe.finish(out.solve.status, out.solve.iterations,
               out.solve.final_residual, commits, out.max_staleness,
               r.virtual_time,
               out.resilience.rollbacks + out.resilience.damped_restarts);
  return out;
}

std::vector<BlockAsyncResult> block_async_solve_multi(
    const Csr& a, std::span<const Vector> bs, const BlockAsyncOptions& opts,
    const Vector* x0) {
  if (bs.empty()) {
    throw std::invalid_argument("block_async_solve_multi: no right-hand sides");
  }
  if (a.rows() != a.cols() ||
      static_cast<index_t>(bs.front().size()) != a.rows()) {
    throw std::invalid_argument("block_async_solve_multi: dimension mismatch");
  }
  if (opts.block_size <= 0) {
    throw std::invalid_argument(
        "block_async_solve_multi: block_size must be > 0");
  }

  // The expensive part — partition + per-block analysis — happens once;
  // each RHS then replays the same (value-independent, seeded) executor
  // schedule, so every result is bit-identical to its standalone solve.
  const RowPartition part = RowPartition::uniform(a.rows(), opts.block_size);
  const std::unique_ptr<backend::BlockSweepKernel> kernel =
      backend::build_kernel(
          opts.backend, a, bs.front(), part,
          {opts.local_iters, opts.local_sweep, opts.local_omega,
           opts.overlap},
          opts.solve.telemetry.metrics);
  if (opts.adaptive_local_iters) {
    kernel->set_per_block_iters(
        adaptive_local_iter_counts(a, part, opts.local_iters));
  }

  std::vector<BlockAsyncResult> out;
  out.reserve(bs.size());
  for (const Vector& b : bs) {
    out.push_back(block_async_solve_with_kernel(a, b, *kernel, opts, x0));
  }
  return out;
}

}  // namespace bars

#pragma once

#include <optional>
#include <span>
#include <string>

#include "backend/kernel_backend.hpp"
#include "core/solver_types.hpp"
#include "gpusim/async_executor.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/fault.hpp"

/// \file block_async.hpp
/// The paper's primary contribution: async-(local_iters) — the
/// block-asynchronous relaxation method of Section 3.3, executed on the
/// simulated GPU (gpusim::AsyncExecutor) with virtual-time bookkeeping.

namespace bars {

struct BlockAsyncOptions {
  SolveOptions solve{};

  /// Rows per thread block ("subdomain"). The paper uses 448 for the
  /// production runs (Section 3.2) and 128 for the variation study.
  index_t block_size = 448;
  /// Local Jacobi sweeps per block visit: the k of async-(k).
  index_t local_iters = 1;
  LocalSweep local_sweep = LocalSweep::kJacobi;
  /// Local relaxation weight (1.0 = plain Jacobi; extension).
  value_t local_omega = 1.0;
  /// Subdomain overlap rows (restricted additive Schwarz; extension).
  index_t overlap = 0;
  /// Adaptive per-block sweep counts (extension; the paper's Section 5
  /// names the optimal local-iteration count an open tuning question):
  /// block b performs 1 + round((local_iters - 1) * f_b) sweeps, where
  /// f_b is the fraction of its off-diagonal mass that lies inside the
  /// block — blocks with diagonal local structure (where sweeps cannot
  /// help, cf. Chem97ZtZ) automatically drop to one sweep.
  bool adaptive_local_iters = false;

  /// Compute backend building the block-sweep kernel (see
  /// backend/registry.hpp and docs/BACKENDS.md): "scalar", "simd", or
  /// "auto". An unavailable backend degrades to "scalar" (counted on
  /// solve.telemetry.metrics when attached). The default stays "scalar"
  /// so seeded runs remain bit-identical across machines; opt into
  /// "simd"/"auto" where the documented FP tolerance is acceptable.
  std::string backend = "scalar";

  gpusim::SchedulePolicy policy = gpusim::SchedulePolicy::kJittered;
  index_t concurrent_slots = 14;
  value_t jitter = 0.20;
  value_t straggler_prob = 0.05;
  value_t straggler_factor = 2.0;
  std::uint64_t seed = 99;
  /// Recurring-pattern scheduling (see gpusim::ExecutorOptions).
  std::optional<std::uint64_t> pattern_seed{};
  value_t run_noise = 2.0e-3;

  /// Legacy single-event failure; ignored when `scenario` is set.
  std::optional<gpusim::FaultPlan> fault{};
  /// Composable fault timeline (resilience subsystem): multiple
  /// failure waves, transient halo corruption, ...
  std::optional<resilience::FaultScenario> scenario{};
  /// Active recovery: checkpoint/rollback, online SDC detection,
  /// watchdog supervision (see docs/RESILIENCE.md).
  std::optional<resilience::Policy> resilience{};

  /// > 1 runs same-virtual-time block commits concurrently on a worker
  /// pool (bit-identical results; see gpusim::ExecutorOptions). 0 or 1
  /// keeps the serial event loop.
  index_t num_workers = 0;
  /// Maintain the residual incrementally per block commit instead of a
  /// full SpMV each global iteration (see incremental_residual.hpp).
  /// Automatically disabled when a resilience policy is active.
  bool incremental_residual = false;
  /// Exact O(nnz) re-anchor cadence for the incremental residual.
  index_t residual_refresh_every = 25;

  /// Matrix name for the cost model's calibration lookup; empty uses
  /// the generic formula.
  std::string matrix_name;
  /// Cost model supplying the virtual global-iteration time. When null
  /// the paper-calibrated model is used.
  const gpusim::CostModel* cost_model = nullptr;
};

/// Extended result: SolveResult plus executor diagnostics.
struct BlockAsyncResult {
  SolveResult solve;
  /// Completed executions per block (Chazan-Miranker condition 1).
  std::vector<index_t> block_executions;
  /// Max generation lag observed between reader and halo source.
  index_t max_staleness = 0;
  /// Resilience activity (all-zero for plain runs).
  resilience::Report resilience;
};

/// Solve A x = b with async-(local_iters). Residual history entries are
/// per *global* iteration (every component updated local_iters times),
/// matching the paper's counting convention (Section 4.3).
[[nodiscard]] BlockAsyncResult block_async_solve(
    const Csr& a, const Vector& b, const BlockAsyncOptions& opts = {},
    const Vector* x0 = nullptr);

/// Solve A x = b reusing a prebuilt kernel (the expensive per-matrix
/// analysis: partition, halo lists, local/global splits, diagonal
/// factors, sized scratch). The kernel is repointed at `b` via
/// set_rhs() and must have been built from `a` with the same partition
/// and sweep configuration that `opts` describes — then the run is
/// bit-identical to block_async_solve(a, b, opts, x0), because the
/// executor schedule depends only on options and seed, never on values.
/// This is the amortization point the service layer's plan cache rides
/// on (see docs/SERVICE.md). Any backend's kernel works: the executor
/// consumes it through the BlockSweepKernel seam.
[[nodiscard]] BlockAsyncResult block_async_solve_with_kernel(
    const Csr& a, const Vector& b, backend::BlockSweepKernel& kernel,
    const BlockAsyncOptions& opts = {}, const Vector* x0 = nullptr);

/// Batched multi-RHS solve: one kernel build amortized over every
/// right-hand side in `bs`. Each RHS runs the full executor schedule
/// independently (same options, same seed), so result k is
/// bit-identical to block_async_solve(a, bs[k], opts, x0) — asserted by
/// tests/service/test_service_batching.cpp. Throws on empty `bs`.
[[nodiscard]] std::vector<BlockAsyncResult> block_async_solve_multi(
    const Csr& a, std::span<const Vector> bs,
    const BlockAsyncOptions& opts = {}, const Vector* x0 = nullptr);

/// The adaptive sweep-count heuristic used by
/// BlockAsyncOptions::adaptive_local_iters, exposed for inspection:
/// k_b = 1 + round((max_k - 1) * in-block off-diagonal mass fraction).
[[nodiscard]] std::vector<index_t> adaptive_local_iter_counts(
    const Csr& a, const RowPartition& partition, index_t max_k);

}  // namespace bars

#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

/// \file solver_types.hpp
/// Common option/result types for all iterative solvers in BARS.

namespace bars {

/// Stopping and bookkeeping options shared by every solver.
struct SolveOptions {
  index_t max_iters = 1000;
  /// Convergence when ||b - A x||_2 <= tol * ||b||_2 (absolute when
  /// ||b|| == 0). The paper reports relative l2 residuals throughout.
  value_t tol = 1e-14;
  /// Treat the run as diverged once the relative residual exceeds this.
  value_t divergence_limit = 1e30;
  /// Record the residual after every iteration (Figs. 6, 7, 9, 10).
  bool record_history = true;
};

/// Result of a solver run.
struct SolveResult {
  Vector x;
  bool converged = false;
  bool diverged = false;
  index_t iterations = 0;
  value_t final_residual = 0.0;  ///< relative l2 residual at exit
  /// residual_history[k] = relative residual after k iterations
  /// (entry 0 is the initial residual). Empty if record_history off.
  std::vector<value_t> residual_history;
  /// For solvers with a virtual-time model: simulated seconds at which
  /// each history entry was recorded. Empty for plain CPU solvers.
  std::vector<value_t> time_history;
};

/// Relative l2 residual ||b - A x|| / ||b|| (absolute when ||b|| == 0).
[[nodiscard]] value_t relative_residual(const Csr& a,
                                        std::span<const value_t> b,
                                        std::span<const value_t> x);

}  // namespace bars

#pragma once

#include <vector>

#include "common/cancel.hpp"
#include "common/solver_status.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"
#include "telemetry/options.hpp"

/// \file solver_types.hpp
/// Common option/result types for all iterative solvers in BARS.

namespace bars {

/// Stopping and bookkeeping options shared by every solver. Solver
/// families embed this struct (CgOptions::solve, MgOptions::solve,
/// BlockAsyncOptions::solve, ...) rather than re-declaring the knobs,
/// so one naming convention covers the whole library.
struct SolveOptions {
  index_t max_iters = 1000;
  /// Convergence when ||b - A x||_2 <= tol * ||b||_2 (absolute when
  /// ||b|| == 0). The paper reports relative l2 residuals throughout.
  value_t tol = 1e-14;
  /// Treat the run as diverged once the relative residual exceeds this.
  value_t divergence_limit = 1e30;
  /// Record the residual after every iteration (Figs. 6, 7, 9, 10).
  bool record_history = true;
  /// Observability hooks (observer + metrics registry). Null members
  /// disable the feature; see docs/OBSERVABILITY.md.
  telemetry::TelemetryOptions telemetry{};
  /// Cooperative cancellation: when non-null, every solver polls the
  /// token at iteration boundaries and exits with
  /// SolverStatus::kAborted once it is tripped (the iterate computed so
  /// far is returned). Null disables the check. The pointee must
  /// outlive the solve; see common/cancel.hpp.
  const common::CancelToken* cancel = nullptr;
};

/// Result of a solver run.
struct SolveResult {
  Vector x;
  /// Why the solve stopped (the unified vocabulary from
  /// common/solver_status.hpp).
  SolverStatus status = SolverStatus::kMaxIterations;
  index_t iterations = 0;
  value_t final_residual = 0.0;  ///< relative l2 residual at exit
  /// residual_history[k] = relative residual after k iterations
  /// (entry 0 is the initial residual). Empty if record_history off.
  std::vector<value_t> residual_history;
  /// For solvers with a virtual-time model: simulated seconds at which
  /// each history entry was recorded. Empty for plain CPU solvers.
  std::vector<value_t> time_history;

  /// The solve ended at or below tol (kConverged or
  /// kRecoveredConverged).
  [[nodiscard]] bool ok() const noexcept { return succeeded(status); }

  /// Legacy accessors for the retired converged/diverged bool pair.
  /// They are functions (not data members) so stale writes fail to
  /// compile instead of silently diverging from `status`.
  [[deprecated("read status (or ok()) instead")]] [[nodiscard]] bool
  converged() const noexcept {
    return succeeded(status);
  }
  [[deprecated("read status instead")]] [[nodiscard]] bool diverged()
      const noexcept {
    return status == SolverStatus::kDiverged;
  }
};

/// Relative l2 residual ||b - A x|| / ||b|| (absolute when ||b|| == 0).
[[nodiscard]] value_t relative_residual(const Csr& a,
                                        std::span<const value_t> b,
                                        std::span<const value_t> x);

}  // namespace bars

#include "core/solver_types.hpp"

#include "sparse/vector_ops.hpp"

namespace bars {

value_t relative_residual(const Csr& a, std::span<const value_t> b,
                          std::span<const value_t> x) {
  Vector r(b.size());
  a.residual(b, x, r);
  const value_t nb = norm2(b);
  const value_t nr = norm2(r);
  return nb > 0.0 ? nr / nb : nr;
}

}  // namespace bars

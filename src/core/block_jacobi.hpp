#pragma once

#include <string>

#include "backend/kernel_backend.hpp"
#include "core/solver_types.hpp"

/// \file block_jacobi.hpp
/// Synchronous two-stage block-Jacobi: the synchronized counterpart of
/// async-(k). Every outer iteration, all blocks read the SAME iterate
/// snapshot and perform `local_iters` local sweeps. Comparing this with
/// block_async_solve isolates the cost of asynchrony from the gain of
/// local iterations (the trade-off at the heart of the paper).

namespace bars {

struct BlockJacobiOptions {
  SolveOptions solve{};
  index_t block_size = 448;
  index_t local_iters = 1;
  LocalSweep local_sweep = LocalSweep::kJacobi;
  value_t local_omega = 1.0;
  index_t overlap = 0;
  /// Compute backend building the block-sweep kernel ("scalar",
  /// "simd", "auto"; see docs/BACKENDS.md).
  std::string backend = "scalar";
};

/// Solve A x = b by synchronous two-stage block-Jacobi iteration.
[[nodiscard]] SolveResult block_jacobi_solve(
    const Csr& a, const Vector& b, const BlockJacobiOptions& opts = {},
    const Vector* x0 = nullptr);

}  // namespace bars

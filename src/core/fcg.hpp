#pragma once

#include <functional>

#include "core/solver_types.hpp"

/// \file fcg.hpp
/// Flexible (Polak-Ribiere) preconditioned CG. The paper's Section 5
/// names "component-wise relaxation as preconditioner" as the natural
/// next use of block-asynchronous iteration; because an asynchronous
/// preconditioner is a *varying* operator, the flexible variant of CG
/// is required for robustness.

namespace bars {

/// Action z <- M^{-1} r of a (possibly nonlinear/varying)
/// preconditioner.
using Preconditioner =
    std::function<void(const Csr& a, const Vector& r, Vector& z)>;

struct FcgOptions {
  SolveOptions solve{};
  Preconditioner preconditioner;  ///< required
};

/// Flexible CG for SPD systems with a variable preconditioner
/// (Polak-Ribiere beta = <z_{k+1}, r_{k+1} - r_k> / <z_k, r_k>).
[[nodiscard]] SolveResult fcg_solve(const Csr& a, const Vector& b,
                                    const FcgOptions& opts,
                                    const Vector* x0 = nullptr);

/// Identity preconditioner (reduces FCG to plain CG).
[[nodiscard]] Preconditioner identity_preconditioner();

/// Diagonal (Jacobi) preconditioner.
[[nodiscard]] Preconditioner jacobi_preconditioner();

/// Block-asynchronous preconditioner: `global_sweeps` async-(local_iters)
/// iterations on A z = r starting from z = 0 (paper Section 5
/// future-work scenario). Each application re-seeds deterministically
/// from `seed` plus an internal counter, so applications differ — hence
/// flexible CG.
[[nodiscard]] Preconditioner block_async_preconditioner(
    index_t global_sweeps = 2, index_t block_size = 256,
    index_t local_iters = 2, std::uint64_t seed = 99);

}  // namespace bars

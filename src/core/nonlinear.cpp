#include "core/nonlinear.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "backend/registry.hpp"
#include "sparse/partition.hpp"
#include "sparse/vector_ops.hpp"

namespace bars {

namespace {

/// Nonlinear residual r = b - A x - phi(x); returns relative l2 norm.
value_t nonlinear_residual(const Csr& a, const Vector& b,
                           const DiagonalNonlinearity& phi, const Vector& x,
                           value_t den) {
  Vector r(b.size());
  a.residual(b, x, r);
  for (std::size_t i = 0; i < x.size(); ++i) {
    r[i] -= phi.value(static_cast<index_t>(i), x[i]);
  }
  return norm2(r) / den;
}

/// BlockKernel for the nonlinear two-stage update: freeze off-block
/// linear coupling, run damped Newton-Jacobi sweeps locally.
class NonlinearBlockKernel final : public gpusim::BlockKernel {
 public:
  NonlinearBlockKernel(const Csr& a, const Vector& b,
                       const DiagonalNonlinearity& phi,
                       RowPartition partition, index_t local_iters,
                       value_t damping)
      : linear_(backend::build_kernel("scalar", a, b, std::move(partition),
                                      {local_iters})),
        a_(a),
        b_(b),
        phi_(phi),
        local_iters_(local_iters),
        damping_(damping) {
    if (damping <= 0.0 || damping > 1.0) {
      throw std::invalid_argument(
          "NonlinearBlockKernel: damping must be in (0, 1]");
    }
  }

  [[nodiscard]] index_t num_blocks() const override {
    return linear_->num_blocks();
  }
  [[nodiscard]] index_t num_rows() const override {
    return linear_->num_rows();
  }
  [[nodiscard]] std::span<const index_t> halo(index_t block) const override {
    return linear_->halo(block);
  }
  [[nodiscard]] std::pair<index_t, index_t> rows(
      index_t block) const override {
    return linear_->rows(block);
  }

  void update(index_t block, std::span<const value_t> halo_values,
              std::span<value_t> x,
              const gpusim::ExecContext& ctx) const override {
    const auto [lo, hi] = rows(block);
    const auto halo_idx = halo(block);
    const index_t m = hi - lo;

    // Frozen off-block linear contribution s_i = b_i - sum_out a_ij x_j.
    Vector s(static_cast<std::size_t>(m));
    for (index_t i = lo; i < hi; ++i) {
      value_t acc = b_[i];
      const auto cols = a_.row_cols(i);
      const auto vals = a_.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t j = cols[k];
        if (j < lo || j >= hi) {
          // Halo value lookup: halo_idx is sorted.
          const auto it =
              std::lower_bound(halo_idx.begin(), halo_idx.end(), j);
          acc -= vals[k] *
                 halo_values[static_cast<std::size_t>(it - halo_idx.begin())];
        }
      }
      s[i - lo] = acc;
    }

    Vector xl(x.begin() + lo, x.begin() + hi);
    for (index_t sweep = 0; sweep < local_iters_; ++sweep) {
      Vector xn(xl);
      for (index_t i = lo; i < hi; ++i) {
        const index_t li = i - lo;
        value_t acc = s[li];
        value_t diag = 0.0;
        const auto cols = a_.row_cols(i);
        const auto vals = a_.row_vals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          const index_t j = cols[k];
          if (j == i) {
            diag = vals[k];
          } else if (j >= lo && j < hi) {
            acc -= vals[k] * xl[j - lo];
          }
        }
        const value_t jac = diag + phi_.derivative(i, xl[li]);
        if (jac <= 0.0) {
          throw std::domain_error(
              "nonlinear_block_async_solve: non-positive local Jacobian");
        }
        const value_t f = acc - diag * xl[li] - phi_.value(i, xl[li]);
        xn[li] = xl[li] + damping_ * f / jac;
      }
      xl = std::move(xn);
    }

    const std::vector<std::uint8_t>* mask = ctx.failed_components;
    for (index_t i = lo; i < hi; ++i) {
      if (mask && (*mask)[i]) continue;
      x[i] = xl[i - lo];
    }
  }

 private:
  /// Reused for partition/halo bookkeeping only; built through the
  /// scalar backend (the nonlinear sweep itself is hand-rolled above).
  std::unique_ptr<backend::BlockSweepKernel> linear_;
  const Csr& a_;
  const Vector& b_;
  const DiagonalNonlinearity& phi_;
  index_t local_iters_;
  value_t damping_;
};

}  // namespace

DiagonalNonlinearity zero_nonlinearity() {
  return {[](index_t, value_t) { return 0.0; },
          [](index_t, value_t) { return 0.0; }};
}

DiagonalNonlinearity cubic_nonlinearity(value_t c) {
  return {[c](index_t, value_t x) { return c * x * x * x; },
          [c](index_t, value_t x) { return 3.0 * c * x * x; }};
}

DiagonalNonlinearity exponential_nonlinearity(value_t c) {
  return {[c](index_t, value_t x) { return c * (std::exp(x) - 1.0); },
          [c](index_t, value_t x) { return c * std::exp(x); }};
}

NonlinearAsyncResult nonlinear_block_async_solve(
    const Csr& a, const Vector& b, const DiagonalNonlinearity& phi,
    const NonlinearAsyncOptions& opts, const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument(
        "nonlinear_block_async_solve: dimension mismatch");
  }
  if (!phi.value || !phi.derivative) {
    throw std::invalid_argument(
        "nonlinear_block_async_solve: nonlinearity callbacks required");
  }
  const RowPartition part = RowPartition::uniform(a.rows(), opts.block_size);
  const NonlinearBlockKernel kernel(a, b, phi, part, opts.local_iters,
                                    opts.damping);

  gpusim::ExecutorOptions exec;
  exec.stopping.max_global_iters = opts.solve.max_iters;
  exec.stopping.tol = opts.solve.tol;
  exec.stopping.divergence_limit = opts.solve.divergence_limit;
  exec.telemetry = opts.solve.telemetry;
  exec.concurrent_slots = opts.concurrent_slots;
  exec.policy = opts.policy;
  exec.jitter = opts.jitter;
  exec.seed = opts.seed;

  NonlinearAsyncResult out;
  out.solve.x = x0 ? *x0 : Vector(b.size(), 0.0);
  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;

  gpusim::AsyncExecutor executor(kernel, exec);
  const auto residual_fn = [&](const Vector& x) {
    return nonlinear_residual(a, b, phi, x, den);
  };
  gpusim::ExecutorResult r = executor.run(out.solve.x, residual_fn);

  out.solve.status = r.status;
  out.solve.iterations = r.global_iterations;
  out.solve.final_residual = r.residual_history.back();
  if (opts.solve.record_history) {
    out.solve.residual_history = std::move(r.residual_history);
    out.solve.time_history = std::move(r.time_history);
  }
  out.block_executions = std::move(r.block_executions);
  return out;
}

SolveResult nonlinear_jacobi_solve(const Csr& a, const Vector& b,
                                   const DiagonalNonlinearity& phi,
                                   const SolveOptions& opts, value_t damping,
                                   const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("nonlinear_jacobi_solve: dimension mismatch");
  }
  if (damping <= 0.0 || damping > 1.0) {
    throw std::invalid_argument(
        "nonlinear_jacobi_solve: damping must be in (0, 1]");
  }
  const std::size_t n = b.size();
  SolveResult res;
  res.x = x0 ? *x0 : Vector(n, 0.0);
  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;
  const Vector d = a.diagonal();

  value_t rel = nonlinear_residual(a, b, phi, res.x, den);
  if (opts.record_history) res.residual_history.push_back(rel);

  Vector ax(n);
  for (index_t it = 0; it < opts.max_iters; ++it) {
    if (rel <= opts.tol) {
      res.status = SolverStatus::kConverged;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.divergence_limit) {
      res.status = SolverStatus::kDiverged;
      break;
    }
    a.spmv(res.x, ax);
    Vector xn(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto ii = static_cast<index_t>(i);
      const value_t jac = d[i] + phi.derivative(ii, res.x[i]);
      if (jac <= 0.0) {
        throw std::domain_error(
            "nonlinear_jacobi_solve: non-positive Jacobian");
      }
      const value_t f = b[i] - ax[i] - phi.value(ii, res.x[i]);
      xn[i] = res.x[i] + damping * f / jac;
    }
    res.x = std::move(xn);
    rel = nonlinear_residual(a, b, phi, res.x, den);
    res.iterations = it + 1;
    if (opts.record_history) res.residual_history.push_back(rel);
  }
  if (rel <= opts.tol) res.status = SolverStatus::kConverged;
  res.final_residual = rel;
  return res;
}

}  // namespace bars

#pragma once

#include "core/solver_types.hpp"

/// \file cg.hpp
/// Conjugate Gradient — the "highly tuned GPU CG" comparison solver of
/// the paper's Section 4.4 (Fig. 9), with optional Jacobi (diagonal)
/// preconditioning as an extension.

namespace bars {

struct CgOptions {
  SolveOptions solve{};
  /// Use the diagonal of A as preconditioner.
  bool jacobi_preconditioner = false;
  /// Recompute the true residual every `recompute_every` iterations to
  /// avoid drift of the recurrence residual (0 = never).
  index_t recompute_every = 50;
};

/// CG for SPD systems. Fails over to `diverged` on indefinite
/// curvature (p^T A p <= 0).
[[nodiscard]] SolveResult cg_solve(const Csr& a, const Vector& b,
                                   const CgOptions& opts = {},
                                   const Vector* x0 = nullptr);

}  // namespace bars

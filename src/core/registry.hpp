#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/solver_types.hpp"

/// \file registry.hpp
/// Name-indexed access to every solver in the library, so tools and
/// examples (e.g. examples/solve_mtx) can select solvers from the
/// command line. The implementation lives in bars_mg (the top layer)
/// because the registry also exposes the multigrid solvers; link the
/// umbrella `bars::bars` target to use it.

namespace bars {

/// Knobs shared across registry solvers; each solver reads the subset
/// it understands.
struct RegistrySolveOptions {
  SolveOptions solve{};
  value_t omega = 1.0;        ///< SOR relaxation factor
  index_t block_size = 448;   ///< async block size
  index_t local_iters = 5;    ///< async-(k)
  std::uint64_t seed = 99;
  index_t num_threads = 0;    ///< thread-async worker count (0 = auto)
  /// Compute backend for the block-sweep solvers ("scalar", "simd",
  /// "auto"; see docs/BACKENDS.md). Solvers without a block kernel
  /// ignore it.
  std::string backend = "scalar";
};

using RegistrySolver = std::function<SolveResult(
    const Csr& a, const Vector& b, const RegistrySolveOptions& opts)>;

/// Names of all registered solvers, in presentation order.
[[nodiscard]] std::vector<std::string> solver_names();

/// Look up a solver by name. Throws std::invalid_argument for unknown
/// names (message lists the valid ones).
[[nodiscard]] RegistrySolver find_solver(const std::string& name);

}  // namespace bars

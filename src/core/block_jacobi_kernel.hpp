#pragma once

/// \file block_jacobi_kernel.hpp
/// Forwarding header: BlockJacobiKernel moved to the compute-backend
/// layer (src/backend) when the backend seam was introduced — it is the
/// scalar backend's kernel. This shim keeps historical includes
/// compiling; new code should include "backend/block_jacobi_kernel.hpp"
/// (or, better, build kernels through backend/registry.hpp).

#include "backend/block_jacobi_kernel.hpp"  // IWYU pragma: export

#pragma once

#include "core/solver_types.hpp"

/// \file jacobi.hpp
/// Synchronous (Jacobi-type) relaxation solvers — the GPU baseline of
/// the paper (Section 2.1) and the damped variant of Section 4.2.

namespace bars {

/// Plain Jacobi: x_{k+1} = x_k + D^{-1}(b - A x_k). Converges iff
/// rho(I - D^{-1}A) < 1. Throws on zero diagonal entries.
[[nodiscard]] SolveResult jacobi_solve(const Csr& a, const Vector& b,
                                       const SolveOptions& opts = {},
                                       const Vector* x0 = nullptr);

/// Damped/scaled Jacobi: x_{k+1} = x_k + tau * D^{-1}(b - A x_k).
/// With tau = 2/(lambda_1 + lambda_n) of D^{-1}A this converges for any
/// SPD system, including rho(B) > 1 cases like s1rmt3m1 (paper §4.2).
[[nodiscard]] SolveResult scaled_jacobi_solve(const Csr& a, const Vector& b,
                                              value_t tau,
                                              const SolveOptions& opts = {},
                                              const Vector* x0 = nullptr);

}  // namespace bars

#include "core/thread_async.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>

#include "backend/registry.hpp"
#include "common/check.hpp"
#include "common/thread.hpp"
#include "common/verify_hooks.hpp"
#include "sparse/partition.hpp"
#include "sparse/vector_ops.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/probe.hpp"

namespace bars {

namespace {

/// Shared iterate with relaxed atomic element access.
class AtomicVector {
 public:
  explicit AtomicVector(const Vector& init)
      : n_(init.size()), data_(std::make_unique<std::atomic<value_t>[]>(n_)) {
    for (std::size_t i = 0; i < n_; ++i) {
      data_[i].store(init[i], std::memory_order_relaxed);
    }
  }
  [[nodiscard]] value_t load(std::size_t i) const {
    BARS_DCHECK(i < n_) << "AtomicVector load " << i << " of " << n_;
    return data_[i].load(std::memory_order_relaxed);
  }
  void store(std::size_t i, value_t v) {
    BARS_DCHECK(i < n_) << "AtomicVector store " << i << " of " << n_;
    data_[i].store(v, std::memory_order_relaxed);
  }
  void snapshot_into(Vector& out) const {
    out.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) out[i] = load(i);
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::unique_ptr<std::atomic<value_t>[]> data_;
};

}  // namespace

ThreadAsyncResult thread_async_solve(const Csr& a, const Vector& b,
                                     const ThreadAsyncOptions& opts,
                                     const Vector* x0) {
  if (a.rows() != a.cols() ||
      static_cast<index_t>(b.size()) != a.rows()) {
    throw std::invalid_argument("thread_async_solve: dimension mismatch");
  }
  const RowPartition part = RowPartition::uniform(a.rows(), opts.block_size);
  const std::unique_ptr<backend::BlockSweepKernel> kernel_ptr =
      backend::build_kernel(opts.backend, a, b, part, {opts.local_iters},
                            opts.solve.telemetry.metrics);
  const backend::BlockSweepKernel& kernel = *kernel_ptr;
  const index_t q = part.num_blocks();
  if (q == 0) {
    // Empty system: with no blocks there are no workers, and the
    // monitor loop below would index empty per-worker counters.
    ThreadAsyncResult out;
    out.solve.status = SolverStatus::kConverged;
    if (opts.solve.record_history) out.solve.residual_history.push_back(0.0);
    return out;
  }

  index_t threads = opts.num_threads;
  if (threads <= 0) {
    threads = static_cast<index_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  threads = std::min(threads, q);

  ThreadAsyncResult out;
  out.block_executions.assign(static_cast<std::size_t>(q), 0);

  // Observability. All callbacks fire from this (monitor) thread only —
  // workers never touch the observer, so the callback-serial contract
  // holds even though the solve itself is multi-threaded. The phase
  // timers are real wall clock (TimeDomain::kWall).
  telemetry::SolveProbe probe(opts.solve.telemetry, "thread-async");
  telemetry::MetricsRegistry* const metrics = opts.solve.telemetry.metrics;
  probe.start(a.rows(), a.nnz(), q, threads, telemetry::TimeDomain::kWall);

  AtomicVector x(x0 ? *x0 : Vector(b.size(), 0.0));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> executions{0};
  // Per-block execution counts; the monitor reads them concurrently, so
  // they must be atomic.
  std::vector<std::atomic<index_t>> exec_counts(
      static_cast<std::size_t>(q));
  for (auto& c : exec_counts) c.store(0, std::memory_order_relaxed);
  // Completed stride passes per worker. A worker touches each of its
  // blocks once per pass, so min over workers bounds min over blocks
  // from below — the monitor polls `threads` atomics instead of q.
  std::vector<std::atomic<index_t>> pass_counts(
      static_cast<std::size_t>(threads));
  for (auto& c : pass_counts) c.store(0, std::memory_order_relaxed);

  const auto worker = [&](index_t tid) {
    Vector halo_vals;
    Vector xs(b.size());
    while (!stop.load(std::memory_order_relaxed)) {
      for (index_t blk = tid; blk < q; blk += threads) {
        BARS_VERIFY_YIELD("thread_async.block");
        const auto halo = kernel.halo(blk);
        halo_vals.resize(halo.size());
        for (std::size_t i = 0; i < halo.size(); ++i) {
          halo_vals[i] = x.load(static_cast<std::size_t>(halo[i]));
        }
        const auto [lo, hi] = kernel.rows(blk);
        // Stage the block's own rows into a scratch full-length vector,
        // run the kernel, and publish the result element-wise.
        for (index_t i = lo; i < hi; ++i) {
          xs[i] = x.load(static_cast<std::size_t>(i));
        }
        gpusim::ExecContext ctx;
        kernel.update(blk, halo_vals, xs, ctx);
        for (index_t i = lo; i < hi; ++i) {
          x.store(static_cast<std::size_t>(i), xs[i]);
        }
        exec_counts[blk].fetch_add(1, std::memory_order_relaxed);
        executions.fetch_add(1, std::memory_order_relaxed);
        if (stop.load(std::memory_order_relaxed)) return;
      }
      pass_counts[tid].fetch_add(1, std::memory_order_relaxed);
      // Give other workers a chance on oversubscribed machines so that
      // no block starves (Chazan-Miranker condition 1).
      BARS_VERIFY_YIELD("thread_async.pass");
      std::this_thread::yield();
    }
  };

  std::vector<common::Thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (index_t t = 0; t < threads; ++t) {
    pool.emplace_back([&worker, t] { worker(t); });
  }
  if (metrics != nullptr) {
    metrics->gauge("thread_async_setup_seconds").set(probe.elapsed_seconds());
  }

  const value_t nb = norm2(b);
  const value_t den = nb > 0.0 ? nb : 1.0;
  // Monitor scratch, allocated once: the poll loop below must not heap-
  // allocate per check (it runs every ~50us while workers iterate).
  Vector snap(b.size());
  Vector rbuf(b.size());
  const auto residual_of = [&](const Vector& xv) {
    a.residual(b, xv, rbuf);
    return norm2(rbuf) / den;
  };

  SolveResult& sr = out.solve;
  {
    x.snapshot_into(snap);
    const value_t rel = residual_of(snap);
    if (opts.solve.record_history) sr.residual_history.push_back(rel);
    sr.final_residual = rel;
    if (probe.active()) probe.iteration(0, rel, probe.elapsed_seconds());
  }
  // A "global iteration" completes when *every* block has executed at
  // least once more — the paper's counting convention, robust against
  // worker starvation on oversubscribed machines. Polled as the min
  // over per-worker pass counters (O(threads), not O(q)): a completed
  // pass means every block of that worker's stride set ran once more.
  const auto min_generation = [&]() {
    index_t mn = pass_counts[0].load(std::memory_order_relaxed);
    for (index_t t = 1; t < threads; ++t) {
      mn = std::min(mn, pass_counts[t].load(std::memory_order_relaxed));
    }
    return mn;
  };
  bool verdict_on_snap = false;
  while (true) {
    if (min_generation() <= sr.iterations) {
      if (common::verify::controlled()) {
        // Under the schedule controller a real sleep would keep the
        // serial token and livelock the workers; hand it over instead.
        BARS_VERIFY_YIELD("thread_async.monitor");
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      continue;
    }
    ++sr.iterations;
    x.snapshot_into(snap);
    const value_t rel = residual_of(snap);
    if (opts.solve.record_history) sr.residual_history.push_back(rel);
    sr.final_residual = rel;
    if (probe.active()) {
      probe.iteration(sr.iterations, rel, probe.elapsed_seconds());
    }
    if (rel <= opts.solve.tol) {
      sr.status = SolverStatus::kConverged;
      verdict_on_snap = true;
      break;
    }
    if (!std::isfinite(rel) || rel > opts.solve.divergence_limit) {
      sr.status = SolverStatus::kDiverged;
      verdict_on_snap = true;
      break;
    }
    if (common::cancel_requested(opts.solve.cancel)) {
      sr.status = SolverStatus::kAborted;
      verdict_on_snap = true;
      break;
    }
    if (sr.iterations >= opts.solve.max_iters) break;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : pool) t.join();
  if (metrics != nullptr) {
    metrics->gauge("thread_async_solve_seconds").set(probe.elapsed_seconds());
  }

  if (verdict_on_snap) {
    // The verdict was rendered on `snap`; returning that very iterate
    // keeps x and final_residual consistent and skips a recompute.
    sr.x = std::move(snap);
  } else {
    // Iteration limit: workers kept running until the join, so report
    // the freshest iterate and its residual.
    x.snapshot_into(sr.x);
    sr.final_residual = residual_of(sr.x);
    if (sr.final_residual <= opts.solve.tol) {
      sr.status = SolverStatus::kConverged;
    }
  }
  out.block_executions.resize(static_cast<std::size_t>(q));
  for (index_t blk = 0; blk < q; ++blk) {
    out.block_executions[blk] =
        exec_counts[blk].load(std::memory_order_relaxed);
  }
  out.total_block_executions = static_cast<index_t>(
      executions.load(std::memory_order_relaxed));
  if (metrics != nullptr) {
    // Per-worker progress spread: how evenly the chaotic schedule
    // distributed stride passes (the thread-pool analogue of the
    // paper's block-update-count spread).
    constexpr std::array<value_t, 10> kPassBounds = {
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0};
    telemetry::Histogram& passes =
        metrics->histogram("thread_async_worker_passes", kPassBounds);
    for (index_t t = 0; t < threads; ++t) {
      passes.record(static_cast<value_t>(
          pass_counts[t].load(std::memory_order_relaxed)));
    }
    metrics->counter("thread_async_block_executions")
        .inc(static_cast<std::uint64_t>(out.total_block_executions));
    metrics->gauge("thread_async_total_seconds").set(probe.elapsed_seconds());
  }
  probe.finish(sr.status, sr.iterations, sr.final_residual,
               out.total_block_executions);
  return out;
}

}  // namespace bars

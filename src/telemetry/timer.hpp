#pragma once

#include <chrono>

#include "sparse/types.hpp"

/// \file timer.hpp
/// Real wall-clock timing for telemetry. Lives in src/telemetry on
/// purpose: bars_lint's `nondeterminism` rule bans clock reads inside
/// the deterministic core (src/core, src/gpusim, src/sparse), so the
/// solvers measure wall time exclusively through this type rather
/// than touching std::chrono themselves.

namespace bars::telemetry {

/// Monotonic stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] value_t seconds() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<value_t>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bars::telemetry

#pragma once

#include <vector>

#include "common/annotations.hpp"
#include "telemetry/events.hpp"

/// \file observer.hpp
/// SolveObserver — the callback interface every execution layer speaks
/// — plus the composable multiplexer and an event recorder for tests.
///
/// Contract (see docs/OBSERVABILITY.md):
///  - Callbacks are invoked serially, from the solve's bookkeeping
///    thread (the event-loop / monitor thread, never a worker), so
///    implementations need no locking against the solver itself.
///  - Callbacks must not throw and must not mutate solve state.
///  - on_block_commit is on the hot path of the simulated executors;
///    implementations that cannot stay allocation-free there should be
///    attached only when per-commit detail is actually wanted
///    (TelemetryOptions::block_commits gates the stream).

namespace bars::telemetry {

/// Abstract observer. Every hook has an empty default so concrete
/// observers override only what they consume.
class SolveObserver {
 public:
  virtual ~SolveObserver() = default;

  virtual void on_start(const SolveStartEvent& /*ev*/) {}
  virtual void on_iteration(const IterationEvent& /*ev*/) {}
  virtual void on_block_commit(const BlockCommitEvent& /*ev*/) {}
  virtual void on_recovery_event(const RecoveryEvent& /*ev*/) {}
  virtual void on_finish(const SolveFinishEvent& /*ev*/) {}
};

/// Fans every event out to a list of observers, in registration order.
/// Non-owning: callers keep the children alive for the solve.
class MultiObserver final : public SolveObserver {
 public:
  MultiObserver() = default;

  /// Registration is setup-time and may allocate; ignores nullptr.
  void add(SolveObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }

  [[nodiscard]] std::size_t size() const noexcept { return children_.size(); }

  void on_start(const SolveStartEvent& ev) override {
    for (SolveObserver* c : children_) c->on_start(ev);
  }
  void on_iteration(const IterationEvent& ev) override {
    for (SolveObserver* c : children_) c->on_iteration(ev);
  }
  BARS_HOT_NOALLOC void on_block_commit(const BlockCommitEvent& ev) override {
    for (SolveObserver* c : children_) c->on_block_commit(ev);
  }
  void on_recovery_event(const RecoveryEvent& ev) override {
    for (SolveObserver* c : children_) c->on_recovery_event(ev);
  }
  void on_finish(const SolveFinishEvent& ev) override {
    for (SolveObserver* c : children_) c->on_finish(ev);
  }

 private:
  std::vector<SolveObserver*> children_;
};

/// Stores every event verbatim. Test helper — the vectors grow on the
/// record path, so it is not for production hot loops.
class RecordingObserver final : public SolveObserver {
 public:
  void on_start(const SolveStartEvent& ev) override { starts.push_back(ev); }
  void on_iteration(const IterationEvent& ev) override {
    iterations.push_back(ev);
  }
  void on_block_commit(const BlockCommitEvent& ev) override {
    commits.push_back(ev);
  }
  void on_recovery_event(const RecoveryEvent& ev) override {
    recoveries.push_back(ev);
  }
  void on_finish(const SolveFinishEvent& ev) override {
    finishes.push_back(ev);
  }

  void clear() {
    starts.clear();
    iterations.clear();
    commits.clear();
    recoveries.clear();
    finishes.clear();
  }

  std::vector<SolveStartEvent> starts;
  std::vector<IterationEvent> iterations;
  std::vector<BlockCommitEvent> commits;
  std::vector<RecoveryEvent> recoveries;
  std::vector<SolveFinishEvent> finishes;
};

}  // namespace bars::telemetry

#pragma once

#include "telemetry/events.hpp"
#include "telemetry/observer.hpp"
#include "telemetry/options.hpp"
#include "telemetry/timer.hpp"

/// \file probe.hpp
/// SolveProbe — the few lines a solver front-end needs to speak the
/// observer protocol. Wraps the null checks and the wall timer so a
/// CPU baseline adds telemetry with three calls:
///
///   telemetry::SolveProbe probe(opts.telemetry, "cg");
///   probe.start(a.rows(), a.nnz());
///   ... probe.iteration(it, rel); ...
///   probe.finish(res);                 // stamps wall_seconds itself
///
/// Every method is a no-op when no observer is attached, so the
/// disabled path costs one pointer test.

namespace bars::telemetry {

class SolveProbe {
 public:
  SolveProbe(const TelemetryOptions& opts, const char* solver)
      : obs_(opts.observer), solver_(solver) {}

  [[nodiscard]] bool active() const noexcept { return obs_ != nullptr; }

  /// Real elapsed seconds since construction (or last restart()).
  [[nodiscard]] value_t elapsed_seconds() const { return timer_.seconds(); }
  void restart() { timer_.reset(); }

  void start(index_t rows, index_t nnz, index_t num_blocks = 0,
             index_t num_workers = 0, TimeDomain domain = TimeDomain::kNone) {
    if (obs_ == nullptr) return;
    SolveStartEvent ev;
    ev.solver = solver_;
    ev.rows = rows;
    ev.nnz = nnz;
    ev.num_blocks = num_blocks;
    ev.num_workers = num_workers;
    ev.time_domain = domain;
    obs_->on_start(ev);
  }

  void iteration(index_t iter, value_t residual, value_t time = 0.0) {
    if (obs_ == nullptr) return;
    obs_->on_iteration({iter, residual, time});
  }

  void recovery(RecoveryEvent::Kind kind, index_t iter, value_t residual,
                index_t detail = 0) {
    if (obs_ == nullptr) return;
    obs_->on_recovery_event({kind, iter, residual, detail});
  }

  /// Emits on_finish; wall_seconds is stamped from this probe's timer.
  void finish(SolverStatus status, index_t iterations, value_t final_residual,
              index_t block_commits = 0, index_t max_staleness = 0,
              value_t virtual_time = 0.0, index_t recovery_actions = 0) {
    if (obs_ == nullptr) return;
    SolveFinishEvent ev;
    ev.status = status;
    ev.iterations = iterations;
    ev.final_residual = final_residual;
    ev.virtual_time = virtual_time;
    ev.wall_seconds = timer_.seconds();
    ev.block_commits = block_commits;
    ev.max_staleness = max_staleness;
    ev.recovery_actions = recovery_actions;
    obs_->on_finish(ev);
  }

 private:
  SolveObserver* obs_;
  const char* solver_;
  WallTimer timer_;
};

}  // namespace bars::telemetry

#pragma once

#include <iosfwd>

#include "telemetry/observer.hpp"

/// \file sinks.hpp
/// Structured event sinks. Each sink serialises the SolveObserver
/// stream to an ostream the caller owns; sinks never open files
/// themselves. Formats:
///
///   JsonLinesSink — one JSON object per line ("event" discriminator);
///                   the schema tools/validate_telemetry.py checks.
///   CsvSink       — one wide CSV table, empty cells where a column
///                   does not apply to the event type.
///
/// Prometheus text format is a *metrics* export, not an event stream —
/// see MetricsRegistry::write_prometheus in metrics.hpp.
///
/// Sinks do buffered stream IO in their callbacks and so are not
/// allocation-free; on the simulated executors attach them for
/// analysis runs, not timing runs (or set
/// TelemetryOptions::block_commits = false to keep only the
/// per-iteration stream).

namespace bars::telemetry {

/// JSON Lines (one object per line). Doubles are printed with %.17g so
/// the stream round-trips bit-exactly through a JSON parser.
class JsonLinesSink final : public SolveObserver {
 public:
  explicit JsonLinesSink(std::ostream& os) : os_(&os) {}

  void on_start(const SolveStartEvent& ev) override;
  void on_iteration(const IterationEvent& ev) override;
  void on_block_commit(const BlockCommitEvent& ev) override;
  void on_recovery_event(const RecoveryEvent& ev) override;
  void on_finish(const SolveFinishEvent& ev) override;

 private:
  std::ostream* os_;
};

/// Wide-schema CSV. The header row is written on construction.
class CsvSink final : public SolveObserver {
 public:
  explicit CsvSink(std::ostream& os);

  void on_start(const SolveStartEvent& ev) override;
  void on_iteration(const IterationEvent& ev) override;
  void on_block_commit(const BlockCommitEvent& ev) override;
  void on_recovery_event(const RecoveryEvent& ev) override;
  void on_finish(const SolveFinishEvent& ev) override;

 private:
  std::ostream* os_;
};

}  // namespace bars::telemetry

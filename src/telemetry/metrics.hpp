#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "telemetry/observer.hpp"

/// \file metrics.hpp
/// The metrics registry: named counters, gauges, and fixed-bucket
/// histograms.
///
/// The split that makes this safe for the simulated-GPU hot loops:
/// *registration* (counter()/gauge()/histogram()) happens once at
/// setup and may allocate; the *record* path (inc()/set()/record())
/// is BARS_HOT_NOALLOC and never touches the heap — bars_lint's
/// `telemetry-record-hot` rule enforces the marker and its
/// `hot-noalloc` rule audits the bodies. Instruments live in deques
/// inside the registry, so handles returned by registration stay
/// stable for the registry's lifetime.

namespace bars::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  BARS_HOT_NOALLOC void inc(std::uint64_t delta = 1) noexcept {
    value_ += delta;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written sample of a quantity that moves both ways.
class Gauge {
 public:
  BARS_HOT_NOALLOC void set(value_t v) noexcept { value_ = v; }
  [[nodiscard]] value_t value() const noexcept { return value_; }

 private:
  value_t value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket bounds are fixed at registration
/// (sorted upper bounds; an implicit +Inf bucket catches the rest), so
/// record() is a scan over a pre-sized array — no allocation, ever.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing. Registration-time
  /// only; allocates the count array once.
  explicit Histogram(std::span<const value_t> upper_bounds);

  BARS_HOT_NOALLOC void record(value_t v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    ++total_;
    sum_ += v;
  }

  /// Buckets including the final +Inf bucket.
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return counts_.size();
  }
  /// Upper bound of bucket i; the last bucket's bound is +infinity.
  [[nodiscard]] value_t upper_bound(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] value_t sum() const noexcept { return sum_; }

 private:
  std::vector<value_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  value_t sum_ = 0.0;
};

/// Owns named instruments and exports them. Requesting an existing
/// name returns the same instrument; requesting it as a different
/// type throws std::invalid_argument. Export order is registration
/// order, so output is deterministic.
///
/// Not thread-safe: one registry belongs to one solve's bookkeeping
/// thread (the same serial context SolveObserver callbacks run on).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Bounds are only consulted when the histogram is first created.
  Histogram& histogram(std::string_view name,
                       std::span<const value_t> upper_bounds);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Prometheus text exposition format (# TYPE lines, bars_ prefix,
  /// cumulative `le` histogram buckets).
  void write_prometheus(std::ostream& os) const;
  /// Flat CSV: metric,kind,field,value — one row per scalar.
  void write_csv(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  // into the per-kind deque
  };

  [[nodiscard]] const Entry* find(std::string_view name) const;

  std::vector<Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// Bridges the observer stream into a MetricsRegistry: commit counts,
/// staleness distribution, iteration/recovery counters, last-residual
/// gauge. Instruments are registered at construction; the callbacks
/// only touch pre-registered handles.
class MetricsObserver final : public SolveObserver {
 public:
  explicit MetricsObserver(MetricsRegistry& registry);

  void on_start(const SolveStartEvent& ev) override;
  void on_iteration(const IterationEvent& ev) override;
  BARS_HOT_NOALLOC void on_block_commit(const BlockCommitEvent& ev) override {
    commits_->inc();
    staleness_->record(static_cast<value_t>(ev.staleness));
  }
  void on_recovery_event(const RecoveryEvent& ev) override;
  void on_finish(const SolveFinishEvent& ev) override;

 private:
  Counter* solves_;
  Counter* iterations_;
  Counter* commits_;
  Counter* recoveries_;
  Counter* rollbacks_;
  Counter* restarts_;
  Gauge* last_residual_;
  Gauge* last_iteration_;
  Gauge* wall_seconds_;
  Histogram* staleness_;
  Histogram* residual_log10_;
};

}  // namespace bars::telemetry

#pragma once

/// \file options.hpp
/// TelemetryOptions — the one knob every solver exposes, embedded in
/// core SolveOptions (and mirrored down into the executor options).
/// Deliberately dependency-free: forward declarations only, so the
/// low-level option structs that carry it never pull in the event
/// model or iostream machinery.

namespace bars::telemetry {

class SolveObserver;
class MetricsRegistry;

/// All pointers are non-owning and may be null (null = feature off —
/// the disabled path is a single branch, preserving the ≤2 % overhead
/// contract). The caller keeps observer/metrics alive for the solve.
struct TelemetryOptions {
  /// Receives the event stream (see events.hpp for the model).
  SolveObserver* observer = nullptr;
  /// Receives solver-specific instruments (phase timers, per-worker
  /// pass distributions) in addition to anything a MetricsObserver
  /// attached to `observer` derives from the event stream.
  MetricsRegistry* metrics = nullptr;
  /// Gate for the high-volume per-commit stream; iteration, recovery,
  /// and start/finish events are always delivered when `observer` is
  /// set.
  bool block_commits = true;

  [[nodiscard]] bool enabled() const noexcept {
    return observer != nullptr || metrics != nullptr;
  }
};

}  // namespace bars::telemetry

#pragma once

#include "common/solver_status.hpp"
#include "sparse/types.hpp"

/// \file events.hpp
/// The solver-facing observability event model. One solve emits:
///
///   on_start            exactly once, before any work
///   on_iteration        once per global iteration (index 0 = initial
///                       residual), monotonically increasing index
///   on_block_commit     once per committed block execution (simulated
///                       executors; high volume, alloc-free path)
///   on_recovery_event   whenever the resilience layer acts
///   on_finish           exactly once, after the verdict
///
/// Events are plain structs with no owned memory, so constructing and
/// passing one never allocates; string fields are static-lifetime
/// C strings.

namespace bars::telemetry {

/// What the `time` field of IterationEvent (and the histories) means
/// for this solve.
enum class TimeDomain {
  kNone,     ///< iteration index only (plain CPU solvers)
  kVirtual,  ///< simulated seconds (gpusim executors)
  kWall,     ///< real elapsed seconds (host-thread solver)
};

[[nodiscard]] constexpr const char* to_string(TimeDomain d) noexcept {
  switch (d) {
    case TimeDomain::kNone:
      return "none";
    case TimeDomain::kVirtual:
      return "virtual";
    case TimeDomain::kWall:
      return "wall";
  }
  return "unknown";
}

/// Emitted once, before the first iteration.
struct SolveStartEvent {
  const char* solver = "";  ///< registry-style name; static lifetime
  index_t rows = 0;
  index_t nnz = 0;
  /// Row blocks ("subdomains"); 0 for unblocked CPU solvers.
  index_t num_blocks = 0;
  /// Devices (multi-GPU) or worker threads (thread-async); 0 = n/a.
  index_t num_workers = 0;
  TimeDomain time_domain = TimeDomain::kNone;
};

/// One residual sample at a global-iteration boundary. `iteration` is
/// monotone within a solve and starts at 0 (the initial residual).
struct IterationEvent {
  index_t iteration = 0;
  value_t residual = 0.0;  ///< relative l2 residual
  value_t time = 0.0;      ///< seconds in the solve's TimeDomain
};

/// One committed block execution on a simulated device. Emitted in
/// deterministic commit order (identical for the serial and parallel
/// commit paths).
struct BlockCommitEvent {
  index_t block = 0;
  index_t device = 0;      ///< owning device (multi-GPU); 0 otherwise
  index_t generation = 0;  ///< completed commits of this block before this
  value_t virtual_time = 0.0;
  /// Max |generation gap| to the halo sources read by this execution
  /// (the staleness the paper's Section 4.1 variance stems from).
  /// 0 when the executor does not track per-read staleness.
  index_t staleness = 0;
};

/// Something the resilience layer observed or did.
struct RecoveryEvent {
  enum class Kind {
    kCheckpointSaved,        ///< a clean iterate became the rollback target
    kAnomalyDetected,        ///< online detector flagged the residual
    kRollback,               ///< iterate restored from the checkpoint
    kDampedRestart,          ///< divergence restart (damped iterate)
    kBlockStalled,           ///< watchdog flagged a dead/stalled block
    kWatchdogReassignment,   ///< failed components reassigned
    kDeviceDropout,          ///< a device left the multi-GPU run
    kDeviceRejoin,           ///< a device came back and resynced
    kLinkRetry,              ///< sweep-end transfer failed; backing off
  };
  Kind kind = Kind::kCheckpointSaved;
  index_t iteration = 0;   ///< global iteration of the event
  value_t residual = 0.0;  ///< relative residual after the event
  /// Kind-specific payload: anomaly kind, stalled block id, components
  /// freed, or device id.
  index_t detail = 0;
};

[[nodiscard]] constexpr const char* to_string(RecoveryEvent::Kind k) noexcept {
  switch (k) {
    case RecoveryEvent::Kind::kCheckpointSaved:
      return "checkpoint-saved";
    case RecoveryEvent::Kind::kAnomalyDetected:
      return "anomaly-detected";
    case RecoveryEvent::Kind::kRollback:
      return "rollback";
    case RecoveryEvent::Kind::kDampedRestart:
      return "damped-restart";
    case RecoveryEvent::Kind::kBlockStalled:
      return "block-stalled";
    case RecoveryEvent::Kind::kWatchdogReassignment:
      return "watchdog-reassignment";
    case RecoveryEvent::Kind::kDeviceDropout:
      return "device-dropout";
    case RecoveryEvent::Kind::kDeviceRejoin:
      return "device-rejoin";
    case RecoveryEvent::Kind::kLinkRetry:
      return "link-retry";
  }
  return "unknown";
}

/// Emitted once, after the stopping verdict.
struct SolveFinishEvent {
  SolverStatus status = SolverStatus::kMaxIterations;
  index_t iterations = 0;
  value_t final_residual = 0.0;
  value_t virtual_time = 0.0;  ///< simulated seconds; 0 for CPU solvers
  value_t wall_seconds = 0.0;  ///< real host time of the whole solve
  index_t block_commits = 0;   ///< total committed executions; 0 = n/a
  index_t max_staleness = 0;
  index_t recovery_actions = 0;  ///< rollbacks + damped restarts
};

}  // namespace bars::telemetry

#include "telemetry/metrics.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "common/check.hpp"

namespace bars::telemetry {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; squash the rest.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::span<const value_t> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(upper_bounds.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    BARS_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

value_t Histogram::upper_bound(std::size_t i) const noexcept {
  if (i >= bounds_.size()) return std::numeric_limits<value_t>::infinity();
  return bounds_[i];
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (const Entry* e = find(name)) {
    if (e->kind != Kind::kCounter) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another type");
    }
    return counters_[e->index];
  }
  entries_.push_back({std::string(name), Kind::kCounter, counters_.size()});
  return counters_.emplace_back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (const Entry* e = find(name)) {
    if (e->kind != Kind::kGauge) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another type");
    }
    return gauges_[e->index];
  }
  entries_.push_back({std::string(name), Kind::kGauge, gauges_.size()});
  return gauges_.emplace_back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const value_t> upper_bounds) {
  if (const Entry* e = find(name)) {
    if (e->kind != Kind::kHistogram) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered with another type");
    }
    return histograms_[e->index];
  }
  entries_.push_back({std::string(name), Kind::kHistogram, histograms_.size()});
  return histograms_.emplace_back(upper_bounds);
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  for (const Entry& e : entries_) {
    const std::string name = "bars_" + sanitize(e.name);
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << counters_[e.index].value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << ' ' << gauges_[e.index].value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.num_buckets(); ++i) {
          cumulative += h.bucket_count(i);
          os << name << "_bucket{le=\"";
          if (i + 1 == h.num_buckets()) {
            os << "+Inf";
          } else {
            os << h.upper_bound(i);
          }
          os << "\"} " << cumulative << '\n';
        }
        os << name << "_sum " << h.sum() << '\n'
           << name << "_count " << h.total() << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "metric,kind,field,value\n";
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        os << e.name << ",counter,value," << counters_[e.index].value()
           << '\n';
        break;
      case Kind::kGauge:
        os << e.name << ",gauge,value," << gauges_[e.index].value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        for (std::size_t i = 0; i < h.num_buckets(); ++i) {
          os << e.name << ",histogram,le=";
          if (i + 1 == h.num_buckets()) {
            os << "inf";
          } else {
            os << h.upper_bound(i);
          }
          os << ',' << h.bucket_count(i) << '\n';
        }
        os << e.name << ",histogram,sum," << h.sum() << '\n'
           << e.name << ",histogram,count," << h.total() << '\n';
        break;
      }
    }
  }
}

namespace {

constexpr std::array<value_t, 7> kStalenessBounds = {0.0, 1.0, 2.0, 3.0,
                                                    4.0, 8.0, 16.0};
// log10 of the relative residual; spans hard divergence to machine eps.
constexpr std::array<value_t, 9> kResidualLog10Bounds = {
    -16.0, -14.0, -12.0, -10.0, -8.0, -6.0, -4.0, -2.0, 0.0};

}  // namespace

MetricsObserver::MetricsObserver(MetricsRegistry& registry)
    : solves_(&registry.counter("solve_starts")),
      iterations_(&registry.counter("solve_iterations")),
      commits_(&registry.counter("block_commits")),
      recoveries_(&registry.counter("recovery_events")),
      rollbacks_(&registry.counter("recovery_rollbacks")),
      restarts_(&registry.counter("recovery_damped_restarts")),
      last_residual_(&registry.gauge("last_residual")),
      last_iteration_(&registry.gauge("last_iteration")),
      wall_seconds_(&registry.gauge("last_solve_wall_seconds")),
      staleness_(&registry.histogram("commit_staleness", kStalenessBounds)),
      residual_log10_(
          &registry.histogram("iteration_residual_log10",
                              kResidualLog10Bounds)) {}

void MetricsObserver::on_start(const SolveStartEvent& /*ev*/) {
  solves_->inc();
}

void MetricsObserver::on_iteration(const IterationEvent& ev) {
  iterations_->inc();
  last_iteration_->set(static_cast<value_t>(ev.iteration));
  last_residual_->set(ev.residual);
  if (ev.residual > 0.0 && std::isfinite(ev.residual)) {
    residual_log10_->record(std::log10(ev.residual));
  }
}

void MetricsObserver::on_recovery_event(const RecoveryEvent& ev) {
  recoveries_->inc();
  if (ev.kind == RecoveryEvent::Kind::kRollback) rollbacks_->inc();
  if (ev.kind == RecoveryEvent::Kind::kDampedRestart) restarts_->inc();
}

void MetricsObserver::on_finish(const SolveFinishEvent& ev) {
  last_residual_->set(ev.final_residual);
  wall_seconds_->set(ev.wall_seconds);
}

}  // namespace bars::telemetry
